package edn

import (
	"testing"

	"edn/internal/switchfab"
)

// ablation_bench_test.go holds the design-choice ablations DESIGN.md
// calls out, expressed as benchmarks so their headline metrics land in
// bench_output.txt next to the figure reproductions:
//
//   - arbitration policy (priority vs round-robin vs random) — the
//     closed forms are arbitration-agnostic, so PA must not move;
//   - EDN vs d-dilated delta at matched ports and switch hardware;
//   - retirement order on the identity permutation (Figure 5 vs 6);
//   - RA-EDN scheduler choice;
//   - design-space enumeration and netlist construction throughput.

// BenchmarkAblationArbitration measures simulator PA at full load under
// each arbitration policy on EDN(16,4,4,2).
func BenchmarkAblationArbitration(b *testing.B) {
	cfg, err := New(16, 4, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	cases := []struct {
		name    string
		factory ArbiterFactory
	}{
		{"priority", nil},
		{"roundrobin", func() switchfab.Arbiter { return &switchfab.RoundRobinArbiter{} }},
	}
	for _, cse := range cases {
		b.Run(cse.name, func(b *testing.B) {
			var pa float64
			for i := 0; i < b.N; i++ {
				res, err := MeasureUniformPA(cfg, 1, SimOptions{Cycles: 200, Seed: uint64(i) + 1, Factory: cse.factory})
				if err != nil {
					b.Fatal(err)
				}
				pa = res.PA
			}
			b.ReportMetric(pa, "PA")
		})
	}
}

// BenchmarkAblationDilatedVsEDN compares the Equation 4 acceptance of a
// 4-dilated radix-4 delta against its equivalent EDN at the same port
// count, reporting the wire ratio the paper's introduction claims.
func BenchmarkAblationDilatedVsEDN(b *testing.B) {
	dd, err := NewDilatedDelta(4, 4, 4) // 256 ports
	if err != nil {
		b.Fatal(err)
	}
	equiv, err := dd.EquivalentEDN()
	if err != nil {
		b.Fatal(err)
	}
	var gap, ratio float64
	for i := 0; i < b.N; i++ {
		gap = dd.PA(1) - PA(equiv, 1)
		r, err := dd.WireRatioVersusEDN()
		if err != nil {
			b.Fatal(err)
		}
		ratio = r
	}
	b.ReportMetric(gap, "PA-gap")
	b.ReportMetric(ratio, "wire-ratio")
}

// BenchmarkAblationRetirementOrder routes the identity permutation on
// the MasPar geometry under both orders (the Figure 5 vs Figure 6
// comparison), one pair of passes per iteration.
func BenchmarkAblationRetirementOrder(b *testing.B) {
	cfg, err := New(64, 16, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	net, err := NewNetwork(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	identity := IdentityPattern(cfg.Inputs()).Dest
	order := ReversedOrder(cfg)
	remapped := make([]int, len(identity))
	for i, d := range identity {
		f, err := order.F(d)
		if err != nil {
			b.Fatal(err)
		}
		remapped[i] = f
	}
	var standardPA, reversedPA float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, cs1, err := net.RouteCycle(identity)
		if err != nil {
			b.Fatal(err)
		}
		_, cs2, err := net.RouteCycle(remapped)
		if err != nil {
			b.Fatal(err)
		}
		standardPA, reversedPA = cs1.PA(), cs2.PA()
	}
	b.ReportMetric(standardPA, "PA-standard")
	b.ReportMetric(reversedPA, "PA-reversed")
}

// BenchmarkAblationScheduler delivers one random permutation on a
// 64-port RA-EDN per iteration under each cluster schedule.
func BenchmarkAblationScheduler(b *testing.B) {
	sys, err := NewRAEDN(4, 4, 2, 8)
	if err != nil {
		b.Fatal(err)
	}
	for _, sched := range []Scheduler{RandomScheduler{}, FIFOScheduler{}, GreedyDistinctScheduler{}} {
		b.Run(sched.Name(), func(b *testing.B) {
			rng := NewRand(5)
			var cycles int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				perm := rng.Perm(sys.N())
				b.StartTimer()
				res, err := RoutePermutation(sys, perm, RouteOptions{Seed: rng.Uint64() | 1, Scheduler: sched})
				if err != nil {
					b.Fatal(err)
				}
				cycles = res.Cycles
			}
			b.ReportMetric(float64(cycles), "cycles")
		})
	}
}

// BenchmarkMonteCarloParallelism compares serial versus worker-split
// Monte-Carlo throughput on the MasPar network (the scaling lever the
// core engine's stage-level parallelism cannot provide; see
// internal/core/parallel.go).
func BenchmarkMonteCarloParallelism(b *testing.B) {
	cfg, err := New(64, 16, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	const cycles = 400
	b.Run("serial", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := MeasureUniformPA(cfg, 1, SimOptions{Cycles: cycles, Seed: uint64(i) + 1}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("workers8", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := MeasureUniformPAParallel(cfg, 1, SimOptions{Cycles: cycles, Seed: uint64(i) + 1}, 8); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkDesignExploration enumerates and Pareto-reduces the full
// 4096-port design space per iteration.
func BenchmarkDesignExploration(b *testing.B) {
	var frontSize int
	for i := 0; i < b.N; i++ {
		points, err := EnumerateDesigns(4096, 64)
		if err != nil {
			b.Fatal(err)
		}
		frontSize = len(ParetoFront(points))
	}
	b.ReportMetric(float64(frontSize), "front-size")
}

// BenchmarkNetlistBuild materializes the MasPar router's full physical
// netlist per iteration.
func BenchmarkNetlistBuild(b *testing.B) {
	cfg, err := New(64, 16, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	var wires int
	for i := 0; i < b.N; i++ {
		nl, err := BuildNetlist(cfg)
		if err != nil {
			b.Fatal(err)
		}
		wires = nl.WireCount()
	}
	b.ReportMetric(float64(wires), "wires")
}

// BenchmarkMultipassRandomPermutation drains one random permutation over
// repeated passes on the MasPar geometry per iteration.
func BenchmarkMultipassRandomPermutation(b *testing.B) {
	cfg, err := New(64, 16, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	rng := NewRand(3)
	var passes int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		perm := rng.Perm(cfg.Inputs())
		b.StartTimer()
		res, err := RouteMultipass(cfg, perm, nil, 0)
		if err != nil {
			b.Fatal(err)
		}
		passes = res.Passes
	}
	b.ReportMetric(float64(passes), "passes")
}
