package edn

import "testing"

// BenchmarkAnatomyOff pins the cost of detached anatomy: every packet
// engine hot path carries attribution hooks, and with no collector
// attached (the default) each hook must cost one predictable nil check
// — the steady-state loops stay at exactly 0 allocs/op under
// -benchmem, the same bar the probe hooks hold. The CI zero-alloc gate
// enforces this so attribution can never quietly tax a run that isn't
// explaining.
func BenchmarkAnatomyOff(b *testing.B) {
	cfg, err := New(64, 16, 4, 2) // EDN(64,16,4,2): the MasPar router
	if err != nil {
		b.Fatal(err)
	}
	b.Run("1Kports/queue", func(b *testing.B) {
		net, err := NewQueueNetwork(cfg, QueueOptions{Depth: 4, Policy: QueueBackpressure})
		if err != nil {
			b.Fatal(err)
		}
		net.SetAnatomy(nil)
		benchmarkProbeOffPacket(b, func(dest []int) error {
			_, err := net.Cycle(dest)
			return err
		}, cfg.Inputs(), cfg.Outputs())
	})
	b.Run("1Kports/dilated", func(b *testing.B) {
		dcfg, err := DilatedCounterpart(cfg)
		if err != nil {
			b.Fatal(err)
		}
		net, err := NewDilatedQueueNetwork(dcfg, DilatedQueueOptions{Depth: 4, Policy: QueueBackpressure})
		if err != nil {
			b.Fatal(err)
		}
		net.SetAnatomy(nil)
		benchmarkProbeOffPacket(b, func(dest []int) error {
			_, err := net.Cycle(dest)
			return err
		}, dcfg.Ports(), dcfg.Ports())
	})
	b.Run("1Kports/loop", func(b *testing.B) {
		mkFabric := func() ClosedLoopEngine {
			n, err := NewQueueNetwork(cfg, QueueOptions{Depth: 4, Policy: QueueDrop})
			if err != nil {
				b.Fatal(err)
			}
			return n
		}
		lo := ClosedLoopOptions{
			Window: 4, Rate: 0.4, Timeout: 32, MaxAttempts: 8,
			Retry: RetryBackoff, BackoffBase: 2, BackoffCap: 16,
		}
		loop, err := NewClosedLoop(mkFabric(), mkFabric(), cfg.Inputs(), cfg.Outputs(), lo)
		if err != nil {
			b.Fatal(err)
		}
		loop.SetAnatomy(nil)
		for i := 0; i < 100; i++ {
			if _, err := loop.Cycle(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := loop.Cycle(); err != nil {
				b.Fatal(err)
			}
		}
	})
}
