package edn

import (
	"fmt"
	"testing"

	"edn/internal/anatomy"
)

// TestAnatomyConservation pins the attribution conservation law on
// both packet engines across the depth × policy × fault-churn grid:
// every closed packet's wait + block + service equals its end-to-end
// latency under the engine's convention — Closed-Inject for buffered
// depths, Closed-Inject+1 for the depth-0 resubmission corner (whose
// latency convention counts the injection cycle) — for every class
// (delivered, dropped, stranded), and the per-class report totals are
// exactly the sums of the per-packet samples.
func TestAnatomyConservation(t *testing.T) {
	cfg, err := New(16, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	dcfg, err := DilatedCounterpart(cfg)
	if err != nil {
		t.Fatal(err)
	}

	for _, depth := range []int{0, 1, 4} {
		for _, bp := range []struct {
			name   string
			policy QueuePolicy
		}{{"backpressure", QueueBackpressure}, {"drop", QueueDrop}} {
			for _, faulted := range []bool{false, true} {
				name := fmt.Sprintf("depth%d/%s/faulted=%v", depth, bp.name, faulted)
				t.Run("queue/"+name, func(t *testing.T) {
					net, err := NewQueueNetwork(cfg, QueueOptions{Depth: depth, Policy: bp.policy})
					if err != nil {
						t.Fatal(err)
					}
					churn := func(c int) error {
						if faulted && c == 100 {
							m, err := CompileFaults(cfg, BernoulliFaults(cfg, FaultWires, 0.1, NewRand(29)))
							if err != nil {
								return err
							}
							return net.UpdateFaults(m)
						}
						return nil
					}
					runConservation(t, net.SetAnatomy, func(dest []int) error {
						_, err := net.Cycle(dest)
						return err
					}, cfg.Inputs(), cfg.Outputs(), depth == 0, churn)
				})
				t.Run("dilated/"+name, func(t *testing.T) {
					net, err := NewDilatedQueueNetwork(dcfg, DilatedQueueOptions{Depth: depth, Policy: bp.policy})
					if err != nil {
						t.Fatal(err)
					}
					churn := func(c int) error {
						if faulted && c == 100 {
							m, err := CompileDilatedMasks(dcfg, BernoulliDilatedSubWires(dcfg, 0.1, NewRand(29)))
							if err != nil {
								return err
							}
							return net.UpdateFaults(m)
						}
						return nil
					}
					runConservation(t, net.SetAnatomy, func(dest []int) error {
						_, err := net.Cycle(dest)
						return err
					}, dcfg.Ports(), dcfg.Ports(), depth == 0, churn)
				})
			}
		}
	}
}

// runConservation drives 300 cycles of uniform 0.9 traffic with a
// collector attached whose OnPacket asserts per-packet conservation,
// then cross-checks the report's class totals against the accumulated
// samples.
func runConservation(t *testing.T, attach func(*AnatomyCollector), cycle func([]int) error, inputs, outputs int, depth0 bool, hook func(int) error) {
	t.Helper()
	var sums [3]AnatomyClassTotals
	violations := 0
	opts := AnatomyOptions{OnPacket: func(s anatomy.PacketSample) {
		want := s.Closed - s.Inject
		if depth0 {
			want++
		}
		if got := s.Wait + s.Block + s.Service; got != want {
			violations++
			if violations <= 3 {
				t.Errorf("conservation violated: %+v attributed %d, latency %d", s, got, want)
			}
		}
		if s.Wait < 0 || s.Block < 0 || s.Service < 0 {
			t.Errorf("negative attribution: %+v", s)
		}
		agg := &sums[s.Class]
		agg.Count++
		agg.Wait += s.Wait
		agg.Block += s.Block
		agg.Service += s.Service
	}}
	col := NewAnatomyCollector(opts)
	attach(col)

	rng := NewRand(17)
	gen := Uniform{Rate: 0.9, Rng: rng}
	dest := make([]int, inputs)
	for c := 0; c < 300; c++ {
		if err := hook(c); err != nil {
			t.Fatal(err)
		}
		gen.GenerateInto(dest, outputs)
		if err := cycle(dest); err != nil {
			t.Fatal(err)
		}
	}
	rep := col.Report()
	if rep.Delivered.Count == 0 {
		t.Fatalf("nothing delivered; the test saw no traffic")
	}
	for class, got := range []AnatomyClassTotals{rep.Delivered, rep.Dropped, rep.Stranded} {
		if got != sums[class] {
			t.Fatalf("class %d totals %+v != sample sums %+v", class, got, sums[class])
		}
	}
}

// TestAnatomyClosedLoopTelescoping pins the closed-loop conservation
// law: every completed request's five-way split (client-queue,
// retry-wait, forward-fabric, service, reply-fabric) telescopes
// exactly to its total completion time, the components are ordered and
// non-negative, and the report's aggregate split is the sum of the
// per-request samples.
func TestAnatomyClosedLoopTelescoping(t *testing.T) {
	cfg, err := New(16, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, faulted := range []bool{false, true} {
		t.Run(fmt.Sprintf("faulted=%v", faulted), func(t *testing.T) {
			mkFabric := func() ClosedLoopEngine {
				n, err := NewQueueNetwork(cfg, QueueOptions{Depth: 1, Policy: QueueDrop})
				if err != nil {
					t.Fatal(err)
				}
				return n
			}
			fwd := mkFabric()
			lo := ClosedLoopOptions{
				Window: 4, Rate: 0.5, Timeout: 8, MaxAttempts: 4,
				Retry: RetryBackoff, BackoffBase: 2, BackoffCap: 8, Seed: 3,
			}
			loop, err := NewClosedLoop(fwd, mkFabric(), cfg.Inputs(), cfg.Outputs(), lo)
			if err != nil {
				t.Fatal(err)
			}
			var want RequestTimeSplit
			opts := AnatomyOptions{OnRequest: func(s anatomy.RequestSample) {
				cq := s.FirstIssue - s.Created
				rw := s.LastIssue - s.FirstIssue
				fw := s.Arrive - s.LastIssue
				sv := s.Reply - s.Arrive
				rp := s.Done - s.Reply
				if cq < 0 || rw < 0 || fw < 0 || sv <= 0 || rp < 0 {
					t.Errorf("malformed split: %+v", s)
				}
				if cq+rw+fw+sv+rp != s.Done-s.Created {
					t.Errorf("split does not telescope: %+v", s)
				}
				want.Completed++
				want.ClientQueue += cq
				want.RetryWait += rw
				want.Forward += fw
				want.Service += sv
				want.Reply += rp
			}}
			col := NewAnatomyCollector(opts)
			loop.SetAnatomy(col)
			for c := 0; c < 400; c++ {
				if faulted && c == 150 {
					m, err := CompileFaults(cfg, BernoulliFaults(cfg, FaultWires, 0.1, NewRand(29)))
					if err != nil {
						t.Fatal(err)
					}
					if err := fwd.(*QueueNetwork).UpdateFaults(m); err != nil {
						t.Fatal(err)
					}
				}
				if _, err := loop.Cycle(); err != nil {
					t.Fatal(err)
				}
			}
			rep := col.Report()
			if rep.Requests == nil || rep.Requests.Completed == 0 {
				t.Fatalf("no completed requests observed")
			}
			got := *rep.Requests
			got.GiveUps, got.GiveUpTime = 0, 0
			if got != want {
				t.Fatalf("report split %+v != sample sums %+v", got, want)
			}
			if led := loop.Ledger(); led.Completed != rep.Requests.Completed {
				t.Fatalf("split covers %d completions, ledger says %d", rep.Requests.Completed, led.Completed)
			}
			if lat := loop.Latency(); int64(lat.N()) == rep.Requests.Completed {
				// The histogram's total mass and the split's total must
				// agree: both are the summed completion times.
				if int64(lat.Sum()) != rep.Requests.Total() {
					t.Fatalf("split total %d != latency mass %.0f", rep.Requests.Total(), lat.Sum())
				}
			}
		})
	}
}
