package edn

import (
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
)

// anatomyGrid is the mode × engine × traffic coverage the explain
// surface supports. Every spec here must produce a non-empty anatomy
// report without moving a single measured byte.
func anatomyGrid() []JobSpec {
	geo := &GeometrySpec{A: 16, B: 4, C: 4, L: 2}
	return []JobSpec{
		{Mode: JobLatency, Geometry: geo, Load: 0.9,
			Queue: &QueueSpec{Depth: 2}, Sim: SimSpec{Cycles: 400, Warmup: 100, Seed: 3, Shards: 2}},
		{Mode: JobLatency, Engine: EngineDilated, Geometry: geo, Load: 0.9,
			Queue: &QueueSpec{Depth: 2}, Sim: SimSpec{Cycles: 400, Warmup: 100, Seed: 3, Shards: 2}},
		{Mode: JobLatency, Geometry: geo, Load: 0.9,
			Queue:  &QueueSpec{Depth: 0},
			Sim:    SimSpec{Cycles: 400, Warmup: 100, Seed: 3, Shards: 2},
			Faults: &FaultsSpec{Fraction: 0.05, Seed: 13}},
		{Mode: JobSaturation, Geometry: geo, Loads: []float64{0.5, 0.9},
			Queue:   &QueueSpec{Depth: 4, Policy: "drop"},
			Traffic: &TrafficSpec{Kind: "hotspot", HotFraction: 0.3, Hot: 5},
			Sim:     SimSpec{Cycles: 400, Warmup: 100, Seed: 3, Shards: 2}},
		{Mode: JobSaturation, Engine: EngineDilated, Geometry: geo, Loads: []float64{0.9},
			Traffic: &TrafficSpec{Kind: "moving-hotspot", HotFraction: 0.3, Period: 100, Stride: 3},
			Queue:   &QueueSpec{Depth: 4},
			Sim:     SimSpec{Cycles: 400, Warmup: 100, Seed: 3, Shards: 2}},
		{Mode: JobEstimate, Geometry: geo, Load: 0.8,
			Estimate: &EstimateSpec{Src: 3, Dst: 40},
			Queue:    &QueueSpec{Depth: 4},
			Sim:      SimSpec{Cycles: 400, Warmup: 100, Seed: 3, Shards: 2}},
		{Mode: JobClosedLoop, Geometry: geo, Rates: []float64{0.4},
			Loop:  &ClosedLoopSpec{Window: 4, Timeout: 16, MaxAttempts: 4, Retry: "backoff"},
			Queue: &QueueSpec{Depth: 1, Policy: "drop"},
			Sim:   SimSpec{Cycles: 400, Warmup: 100, Seed: 3, Shards: 2}},
		{Mode: JobClosedLoop, Engine: EngineDilated, Geometry: geo, Rates: []float64{0.4},
			Loop: &ClosedLoopSpec{Window: 4, Timeout: 16},
			Sim:  SimSpec{Cycles: 400, Warmup: 100, Seed: 3, Shards: 2}},
	}
}

// TestAnatomyDoesNotPerturbResults pins the standing contract on the
// job surface: for every mode/engine spec the explain grid covers, the
// JobResult payload of an explained run is byte-identical to the
// unexplained run's — cold and warm (geometry cache shared across
// runs), at every shard count the spec declares. Anatomy rides beside
// the result, never inside it.
func TestAnatomyDoesNotPerturbResults(t *testing.T) {
	cache := NewGeometryCache(0)
	for i, spec := range anatomyGrid() {
		engine := spec.Engine
		if engine == "" {
			engine = EngineEDN
		}
		name := fmt.Sprintf("%d/%s/%s", i, spec.Mode, engine)
		t.Run(name, func(t *testing.T) {
			run := func(explain bool) ([]byte, *AnatomyReport) {
				s := spec
				if explain {
					s.Explain = &ExplainSpec{TopK: 4}
				}
				var rep *AnatomyReport
				res, err := RunJob(context.Background(), s, RunOptions{
					Cache:     cache,
					OnExplain: func(r *AnatomyReport) { rep = r },
				})
				if err != nil {
					t.Fatal(err)
				}
				// The result echoes the input spec verbatim; strip the
				// explain section so the comparison covers exactly the
				// measured payload.
				res.Spec.Explain = nil
				b, err := json.Marshal(res)
				if err != nil {
					t.Fatal(err)
				}
				return b, rep
			}
			plainCold, nilRep := run(false)
			if nilRep != nil {
				t.Fatalf("unexplained run produced an anatomy report")
			}
			explainedCold, repCold := run(true)
			explainedWarm, repWarm := run(true)
			plainWarm, _ := run(false)
			if string(plainCold) != string(explainedCold) {
				t.Fatalf("explained run moved the result payload (cold):\n%s\nvs\n%s", plainCold, explainedCold)
			}
			if string(plainWarm) != string(explainedWarm) {
				t.Fatalf("explained run moved the result payload (warm):\n%s\nvs\n%s", plainWarm, explainedWarm)
			}
			if string(plainCold) != string(plainWarm) {
				t.Fatalf("cache warmth moved the result payload")
			}
			if repCold == nil || repWarm == nil {
				t.Fatalf("explained run produced no anatomy report")
			}
			if !reflect.DeepEqual(repCold, repWarm) {
				t.Fatalf("anatomy report not reproducible:\n%+v\nvs\n%+v", repCold, repWarm)
			}
			if spec.Mode == JobClosedLoop {
				if repCold.Requests == nil || repCold.Requests.Completed == 0 {
					t.Fatalf("closed-loop report missing request split: %+v", repCold)
				}
			} else if repCold.Delivered.Count == 0 {
				t.Fatalf("empty anatomy report: %+v", repCold)
			}
		})
	}
}

// TestAnatomyDoesNotPerturbEngines pins the same contract at the
// engine level, where mid-run fault churn lives: a network with a
// collector attached cycles bit-identically to a bare one through an
// UpdateFaults swap at cycle 100 — per-cycle stats, totals and the
// latency histogram all match.
func TestAnatomyDoesNotPerturbEngines(t *testing.T) {
	cfg, err := New(16, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	masks, err := CompileFaults(cfg, BernoulliFaults(cfg, FaultWires, 0.08, NewRand(13)))
	if err != nil {
		t.Fatal(err)
	}

	for _, bp := range []struct {
		name   string
		policy QueuePolicy
	}{{"backpressure", QueueBackpressure}, {"drop", QueueDrop}} {
		for _, depth := range []int{0, 4} {
			t.Run(fmt.Sprintf("queue/%s/depth%d", bp.name, depth), func(t *testing.T) {
				mk := func() *QueueNetwork {
					n, err := NewQueueNetwork(cfg, QueueOptions{Depth: depth, Policy: bp.policy})
					if err != nil {
						t.Fatal(err)
					}
					return n
				}
				plain, explained := mk(), mk()
				explained.SetAnatomy(NewAnatomyCollector(AnatomyOptions{}))
				runPerturbPair(t, cfg.Inputs(), cfg.Outputs(),
					plain.Cycle, explained.Cycle,
					func(c int) error {
						if c == 100 {
							if err := plain.UpdateFaults(masks); err != nil {
								return err
							}
							return explained.UpdateFaults(masks)
						}
						return nil
					})
				if plain.Totals() != explained.Totals() {
					t.Fatalf("totals diverged: %+v vs %+v", plain.Totals(), explained.Totals())
				}
				if plain.Latency().String() != explained.Latency().String() {
					t.Fatalf("latency diverged: %s vs %s", plain.Latency(), explained.Latency())
				}
			})
		}
	}

	t.Run("dilated", func(t *testing.T) {
		dcfg, err := DilatedCounterpart(cfg)
		if err != nil {
			t.Fatal(err)
		}
		mk := func() *DilatedQueueNetwork {
			n, err := NewDilatedQueueNetwork(dcfg, DilatedQueueOptions{Depth: 4, Policy: QueueBackpressure})
			if err != nil {
				t.Fatal(err)
			}
			return n
		}
		plain, explained := mk(), mk()
		explained.SetAnatomy(NewAnatomyCollector(AnatomyOptions{}))
		dmasks, err := CompileDilatedMasks(dcfg, BernoulliDilatedSubWires(dcfg, 0.08, NewRand(13)))
		if err != nil {
			t.Fatal(err)
		}
		runPerturbPair(t, dcfg.Ports(), dcfg.Ports(),
			plain.Cycle, explained.Cycle,
			func(c int) error {
				if c == 100 {
					if err := plain.UpdateFaults(dmasks); err != nil {
						return err
					}
					return explained.UpdateFaults(dmasks)
				}
				return nil
			})
		if plain.Totals() != explained.Totals() {
			t.Fatalf("totals diverged: %+v vs %+v", plain.Totals(), explained.Totals())
		}
		if plain.Latency().String() != explained.Latency().String() {
			t.Fatalf("latency diverged: %s vs %s", plain.Latency(), explained.Latency())
		}
	})

	t.Run("loop", func(t *testing.T) {
		lo := ClosedLoopOptions{
			Window: 4, Rate: 0.5, Timeout: 16, MaxAttempts: 4,
			Retry: RetryBackoff, BackoffBase: 2, BackoffCap: 8, Seed: 5,
		}
		mk := func() *ClosedLoop {
			fwd, err := NewQueueNetwork(cfg, QueueOptions{Depth: 1, Policy: QueueDrop})
			if err != nil {
				t.Fatal(err)
			}
			rev, err := NewQueueNetwork(cfg, QueueOptions{Depth: 1, Policy: QueueDrop})
			if err != nil {
				t.Fatal(err)
			}
			loop, err := NewClosedLoop(fwd, rev, cfg.Inputs(), cfg.Outputs(), lo)
			if err != nil {
				t.Fatal(err)
			}
			return loop
		}
		plain, explained := mk(), mk()
		explained.SetAnatomy(NewAnatomyCollector(AnatomyOptions{}))
		for c := 0; c < 300; c++ {
			cs1, err := plain.Cycle()
			if err != nil {
				t.Fatal(err)
			}
			cs2, err := explained.Cycle()
			if err != nil {
				t.Fatal(err)
			}
			if cs1 != cs2 {
				t.Fatalf("cycle %d: stats diverged: %+v vs %+v", c, cs1, cs2)
			}
		}
		if plain.Ledger() != explained.Ledger() {
			t.Fatalf("ledger diverged: %+v vs %+v", plain.Ledger(), explained.Ledger())
		}
	})
}

// TestExplainHotSpotNamesCongestionRoot pins the headline diagnosis:
// explain on a hot-spot workload must report a congestion tree whose
// root is the hot destination's final-stage switch — the tomography
// names the culprit, not just the symptom.
func TestExplainHotSpotNamesCongestionRoot(t *testing.T) {
	const hot = 5
	spec := JobSpec{
		Mode:     JobLatency,
		Geometry: &GeometrySpec{A: 16, B: 4, C: 4, L: 2},
		Load:     0.9,
		Traffic:  &TrafficSpec{Kind: "hotspot", HotFraction: 0.3, Hot: hot},
		Queue:    &QueueSpec{Depth: 4},
		Explain:  &ExplainSpec{},
		Sim:      SimSpec{Cycles: 2000, Warmup: 200, Seed: 1},
	}
	var rep *AnatomyReport
	if _, err := RunJob(context.Background(), spec, RunOptions{
		OnExplain: func(r *AnatomyReport) { rep = r },
	}); err != nil {
		t.Fatal(err)
	}
	if rep == nil || len(rep.Trees) == 0 {
		t.Fatalf("no congestion trees detected: %+v", rep)
	}
	top := rep.Trees[0]
	if top.RootStage != rep.Stages || top.RootTerminal != hot {
		t.Fatalf("top tree rooted at stage %d terminal %d, want the hot output (stage %d terminal %d); trees: %+v",
			top.RootStage, top.RootTerminal, rep.Stages, hot, rep.Trees)
	}
	if top.Depth < 2 {
		t.Fatalf("hot-spot tree did not spread backward (depth %d): %+v", top.Depth, top)
	}
}

// TestExplainSpecValidation: explain only rides the modes and engines
// whose runs have an anatomy source.
func TestExplainSpecValidation(t *testing.T) {
	geo := &GeometrySpec{A: 16, B: 4, C: 4, L: 2}
	bad := []JobSpec{
		{Mode: JobDrain, Geometry: geo, DrainQ: 2, Explain: &ExplainSpec{}},
		{Mode: JobLifetime, Geometry: geo, Explain: &ExplainSpec{},
			Lifetime: &LifetimeSpec{Epochs: 2, EpochCycles: 50, Load: 0.5}},
		{Mode: JobClosedLoop, Engine: EnginePair, Geometry: geo, Rates: []float64{0.4},
			Explain: &ExplainSpec{}},
	}
	for i, s := range bad {
		if _, err := Run(context.Background(), s); err == nil {
			t.Fatalf("spec %d (%s/%s): explain accepted where unsupported", i, s.Mode, s.Engine)
		}
	}
}
