package edn

import (
	"testing"

	"edn/internal/switchfab"
)

// bench_test.go regenerates every evaluation artifact of the paper under
// the Go benchmark harness — one benchmark per figure/table, each
// reporting the headline quantity via b.ReportMetric so `go test -bench`
// output doubles as the reproduction record:
//
//	FIG2  -> BenchmarkFigure2HyperbarRouting
//	FIG7  -> BenchmarkFigure7
//	FIG8  -> BenchmarkFigure8
//	FIG11 -> BenchmarkFigure11
//	EQ2/3 -> BenchmarkCostModel
//	SEC5  -> BenchmarkSection5Model / BenchmarkSection5Simulation
//
// plus throughput benchmarks for the underlying engines (routing trace,
// cycle-level simulator, MIMD system).

// BenchmarkFigure2HyperbarRouting arbitrates the paper's worked H(8->4x2)
// example once per iteration.
func BenchmarkFigure2HyperbarRouting(b *testing.B) {
	h := Hyperbar{A: 8, B: 4, C: 2}
	digits := []int{3, 2, 3, 1, 2, 2, 0, 3}
	rejected := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, rej, err := h.Route(digits, switchfab.PriorityArbiter{})
		if err != nil {
			b.Fatal(err)
		}
		rejected = rej
	}
	b.ReportMetric(float64(rejected), "rejected")
}

// BenchmarkFigure7 regenerates the full Figure 7 sweep (8-I/O hyperbar
// families up to 10^6 inputs) per iteration.
func BenchmarkFigure7(b *testing.B) {
	var pa float64
	for i := 0; i < b.N; i++ {
		chart, err := Figure7(DefaultMaxInputs)
		if err != nil {
			b.Fatal(err)
		}
		s := chart.Series[1] // EDN(8,2,4,*)
		pa = s.Y[len(s.Y)-1]
	}
	b.ReportMetric(pa, "PA(1)@1e6")
}

// BenchmarkFigure8 regenerates the full Figure 8 sweep (16-I/O hyperbar
// families) per iteration.
func BenchmarkFigure8(b *testing.B) {
	var pa float64
	for i := 0; i < b.N; i++ {
		chart, err := Figure8(DefaultMaxInputs)
		if err != nil {
			b.Fatal(err)
		}
		s := chart.Series[1] // EDN(16,2,8,*)
		pa = s.Y[len(s.Y)-1]
	}
	b.ReportMetric(pa, "PA(1)@1e6")
}

// BenchmarkFigure11 regenerates the resubmission comparison (Equation 10
// fixed points across two families) per iteration.
func BenchmarkFigure11(b *testing.B) {
	var gap float64
	for i := 0; i < b.N; i++ {
		chart, err := Figure11(DefaultMaxInputs)
		if err != nil {
			b.Fatal(err)
		}
		ign, res := chart.Series[0], chart.Series[1]
		gap = ign.Y[len(ign.Y)-1] - res.Y[len(res.Y)-1]
	}
	b.ReportMetric(gap, "resubmit-penalty")
}

// BenchmarkCostModel evaluates the Equation 2/3 closed forms and exact
// sums for the Figure 8 families (the cost table of cmd/edn-cost).
func BenchmarkCostModel(b *testing.B) {
	cfgs := make([]Config, 0, 8)
	for _, fam := range []Family{{A: 16, B: 16, C: 1}, {A: 16, B: 8, C: 2}, {A: 16, B: 4, C: 4}, {A: 16, B: 2, C: 8}} {
		cs, err := fam.Configs(2, 1<<16)
		if err != nil {
			b.Fatal(err)
		}
		cfgs = append(cfgs, cs...)
	}
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, cfg := range cfgs {
			sink = cfg.CrosspointCostClosedForm() + cfg.WireCostClosedForm() +
				float64(cfg.CrosspointCount()) + float64(cfg.WireCount())
		}
	}
	b.ReportMetric(sink, "last-cost")
}

// BenchmarkSection5Model evaluates the Section 5.1 analytic permutation
// time for the MasPar MP-1 system per iteration.
func BenchmarkSection5Model(b *testing.B) {
	sys := MasParMP1()
	var cycles float64
	for i := 0; i < b.N; i++ {
		model, err := ExpectedPermutationTime(sys.Network, sys.Q)
		if err != nil {
			b.Fatal(err)
		}
		cycles = model.Cycles()
	}
	b.ReportMetric(cycles, "cycles")
}

// BenchmarkSection5Simulation routes one full random permutation over the
// 16K-PE MasPar system per iteration (the Monte-Carlo counterpart of the
// Section 5.1 estimate).
func BenchmarkSection5Simulation(b *testing.B) {
	sys := MasParMP1()
	rng := NewRand(1)
	var cycles int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		perm := rng.Perm(sys.N())
		b.StartTimer()
		res, err := RoutePermutation(sys, perm, RouteOptions{Seed: rng.Uint64() | 1})
		if err != nil {
			b.Fatal(err)
		}
		cycles = res.Cycles
	}
	b.ReportMetric(float64(cycles), "cycles")
}

// BenchmarkEquation4 evaluates PA for the MasPar network per iteration —
// the innermost primitive of every figure.
func BenchmarkEquation4(b *testing.B) {
	cfg, err := New(64, 16, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	var pa float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pa = PA(cfg, 1)
	}
	b.ReportMetric(pa, "PA(1)")
}

// BenchmarkRouteCycle measures simulator throughput: one full-load cycle
// of the 1024-port MasPar network per iteration.
func BenchmarkRouteCycle(b *testing.B) {
	cfg, err := New(64, 16, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	net, err := NewNetwork(cfg, nil)
	if err != nil {
		b.Fatal(err)
	}
	rng := NewRand(7)
	dest := make([]int, cfg.Inputs())
	for i := range dest {
		dest[i] = rng.Intn(cfg.Outputs())
	}
	b.ResetTimer()
	var delivered int
	for i := 0; i < b.N; i++ {
		_, cs, err := net.RouteCycle(dest)
		if err != nil {
			b.Fatal(err)
		}
		delivered = cs.Delivered
	}
	b.ReportMetric(float64(delivered), "delivered")
}

// BenchmarkLemma1Trace walks one message end to end per iteration.
func BenchmarkLemma1Trace(b *testing.B) {
	cfg, err := New(64, 16, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	choices := []int{1, 2}
	for i := 0; i < b.N; i++ {
		if _, err := TraceRoute(cfg, 631, 422, choices); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMIMDSimulation runs a short Section 4 resubmission system per
// iteration (EDN(16,4,4,2), r=0.5).
func BenchmarkMIMDSimulation(b *testing.B) {
	cfg, err := New(16, 4, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	var pa float64
	for i := 0; i < b.N; i++ {
		res, err := SimulateMIMD(cfg, 0.5, MIMDOptions{Cycles: 200, Warmup: 50, Seed: uint64(i) + 1})
		if err != nil {
			b.Fatal(err)
		}
		pa = res.PA
	}
	b.ReportMetric(pa, "PA'")
}
