package edn

import (
	"fmt"
	"testing"
)

// BenchmarkClosedLoopCycle tracks the closed-loop steady-state advance —
// demand arrivals, the full timeout scan over every outstanding slot,
// forward issue, both fabric cycles and reply matching — over each
// packet engine. In-flight request records live in a fixed pooled slot
// array threaded with intrusive lists and the per-source backlogs are
// preallocated rings, so like every steady-state loop in the repository
// it must report exactly 0 allocs/op under -benchmem; the CI zero-alloc
// gate enforces that.
func BenchmarkClosedLoopCycle(b *testing.B) {
	geometries := []struct {
		name        string
		a, bb, c, l int
	}{
		{"1Kports", 64, 16, 4, 2}, // EDN(64,16,4,2): the MasPar router, square
		{"4Kports", 16, 4, 4, 5},  // EDN(16,4,4,5), square
	}
	lo := ClosedLoopOptions{
		Window: 4, Rate: 0.4, Timeout: 32, MaxAttempts: 8,
		Retry: RetryBackoff, BackoffBase: 2, BackoffCap: 16,
	}
	for _, g := range geometries {
		cfg, err := New(g.a, g.bb, g.c, g.l)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s/queue", g.name), func(b *testing.B) {
			fwd, err := NewQueueNetwork(cfg, QueueOptions{Depth: 4, Policy: QueueDrop})
			if err != nil {
				b.Fatal(err)
			}
			rev, err := NewQueueNetwork(cfg, QueueOptions{Depth: 4, Policy: QueueDrop})
			if err != nil {
				b.Fatal(err)
			}
			benchmarkClosedLoopCycle(b, fwd, rev, cfg.Inputs(), cfg.Outputs(), lo)
		})
		dcfg, err := DilatedCounterpart(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("%s/dilated", g.name), func(b *testing.B) {
			fwd, err := NewDilatedQueueNetwork(dcfg, DilatedQueueOptions{Depth: 4, Policy: QueueDrop})
			if err != nil {
				b.Fatal(err)
			}
			rev, err := NewDilatedQueueNetwork(dcfg, DilatedQueueOptions{Depth: 4, Policy: QueueDrop})
			if err != nil {
				b.Fatal(err)
			}
			benchmarkClosedLoopCycle(b, fwd, rev, dcfg.Ports(), dcfg.Ports(), lo)
		})
	}
}

func benchmarkClosedLoopCycle(b *testing.B, fwd, rev ClosedLoopEngine, inputs, outputs int, lo ClosedLoopOptions) {
	loop, err := NewClosedLoop(fwd, rev, inputs, outputs, lo)
	if err != nil {
		b.Fatal(err)
	}
	// Fill the windows and backlogs to steady state before measuring,
	// as BenchmarkQueueCycle does.
	for i := 0; i < 100; i++ {
		if _, err := loop.Cycle(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := loop.Cycle(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := loop.CheckConservation(); err != nil {
		b.Fatal(err)
	}
	led := loop.Ledger()
	b.ReportMetric(float64(led.Completed)/float64(loop.Now()), "completed/cycle")
}
