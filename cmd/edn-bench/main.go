// Command edn-bench is the ns/op regression harness around the repo's
// benchmark trajectory (BENCH_N.json). It parses `go test -bench`
// output — from a file, stdin, or a go test run it launches itself —
// and then any combination of:
//
//   - diffs the run against a committed snapshot (-baseline),
//   - enforces the committed per-benchmark ns/op budgets (-check
//     against -budgets, WARN within the noise band over a budget,
//     exit 1 beyond -hard-factor x budget or when a budgeted
//     benchmark vanished),
//   - records the run as the next trajectory snapshot (-record),
//   - derives a fresh budget file from the run (-write-budgets, with
//     -headroom and -budget-bench).
//
// Typical uses:
//
//	go test -run '^$' -bench . -benchmem ./... | edn-bench -input - -baseline BENCH_2.json
//	edn-bench -input bench.out -check -budgets BENCH_BUDGETS.json
//	edn-bench -bench 'QueueCycle' -pkg ./internal/queuesim -format csv
package main

import (
	"bytes"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strings"
	"time"

	"edn/internal/benchwatch"
	"edn/internal/cliutil"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "edn-bench:", err)
		os.Exit(1)
	}
}

type config struct {
	input        string
	bench        string
	benchtime    string
	count        int
	pkg          string
	baseline     string
	budgets      string
	check        bool
	hardFactor   float64
	record       string
	snapshot     string
	comment      string
	writeBudgets string
	headroom     float64
	budgetBench  string
	format       string
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("edn-bench", flag.ContinueOnError)
	var c config
	fs.StringVar(&c.input, "input", "", "parse this `go test -bench` output file (- = stdin) instead of running go test")
	fs.StringVar(&c.bench, "bench", ".", "benchmark regexp passed to go test -bench (when running)")
	fs.StringVar(&c.benchtime, "benchtime", "", "go test -benchtime (when running)")
	fs.IntVar(&c.count, "count", 1, "go test -count (when running); repeats keep the fastest ns/op")
	fs.StringVar(&c.pkg, "pkg", "./...", "package pattern for go test (when running)")
	fs.StringVar(&c.baseline, "baseline", "", "diff the run against this BENCH_N.json snapshot")
	fs.StringVar(&c.budgets, "budgets", "BENCH_BUDGETS.json", "per-benchmark ns/op budget file for -check")
	fs.BoolVar(&c.check, "check", false, "enforce -budgets: exit 1 on FAIL/MISSING, warn within the noise band")
	fs.Float64Var(&c.hardFactor, "hard-factor", 2, "FAIL threshold as a multiple of each budget; under it, over-budget is WARN")
	fs.StringVar(&c.record, "record", "", "write the run as this trajectory snapshot file (e.g. BENCH_3.json)")
	fs.StringVar(&c.snapshot, "snapshot", "", "snapshot name for -record (default: file basename without .json)")
	fs.StringVar(&c.comment, "comment", "", "headline comment embedded in the -record snapshot")
	fs.StringVar(&c.writeBudgets, "write-budgets", "", "derive a budget file from the run and write it here")
	fs.Float64Var(&c.headroom, "headroom", 1.15, "budget = measured ns/op x headroom for -write-budgets")
	fs.StringVar(&c.budgetBench, "budget-bench", "", "regexp limiting which benchmarks -write-budgets covers (empty = all)")
	fs.StringVar(&c.format, "format", "table", "report format: table, csv or json")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch c.format {
	case "table", "csv", "json":
	default:
		return fmt.Errorf("unknown format %q (want table, csv or json)", c.format)
	}

	benchmarks, command, err := collect(c, stdin, stdout)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "parsed %d benchmarks\n", len(benchmarks))

	if c.record != "" {
		if err := record(c, benchmarks, command); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "recorded %s\n", c.record)
	}
	if c.writeBudgets != "" {
		if err := writeBudgets(c, benchmarks); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote budgets %s\n", c.writeBudgets)
	}
	if c.baseline != "" {
		if err := diff(c, benchmarks, stdout); err != nil {
			return err
		}
	}
	if c.check {
		return check(c, benchmarks, stdout)
	}
	return nil
}

// collect obtains the benchmark results: from -input, or by running
// go test itself. It returns the results plus the command string the
// snapshot records.
func collect(c config, stdin io.Reader, stdout io.Writer) ([]benchwatch.Benchmark, string, error) {
	if c.input == "-" {
		bs, err := benchwatch.Parse(stdin)
		return bs, "go test -bench (stdin)", err
	}
	if c.input != "" {
		f, err := os.Open(c.input)
		if err != nil {
			return nil, "", err
		}
		defer f.Close() //nolint:errcheck
		bs, err := benchwatch.Parse(f)
		return bs, "go test -bench (from " + c.input + ")", err
	}
	args := []string{"test", "-run", "^$", "-bench", c.bench, "-benchmem"}
	if c.benchtime != "" {
		args = append(args, "-benchtime", c.benchtime)
	}
	if c.count > 1 {
		args = append(args, "-count", fmt.Sprint(c.count))
	}
	args = append(args, c.pkg)
	command := "go " + strings.Join(args, " ")
	fmt.Fprintf(stdout, "running %s\n", command)
	cmd := exec.Command("go", args...)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, "", fmt.Errorf("%s: %w", command, err)
	}
	bs, err := benchwatch.Parse(&out)
	return bs, command, err
}

func record(c config, benchmarks []benchwatch.Benchmark, command string) error {
	name := c.snapshot
	if name == "" {
		name = strings.TrimSuffix(strings.TrimSuffix(c.record, ".json"), "/")
		if i := strings.LastIndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
	}
	snap := benchwatch.Snapshot{
		Snapshot:   name,
		Date:       time.Now().UTC().Format("2006-01-02"),
		Go:         runtime.Version(),
		CPU:        cpuModel(),
		Command:    command,
		Benchmarks: benchmarks,
	}
	var headlineKey string
	var headline any
	if c.comment != "" {
		// BENCH_3 -> pr3_headline, matching the committed trajectory.
		n := strings.TrimPrefix(name, "BENCH_")
		headlineKey = "pr" + n + "_headline"
		headline = map[string]any{"comment": c.comment}
	}
	return benchwatch.WriteSnapshot(c.record, snap, headlineKey, headline)
}

func writeBudgets(c config, benchmarks []benchwatch.Benchmark) error {
	var filter *regexp.Regexp
	if c.budgetBench != "" {
		var err error
		if filter, err = regexp.Compile(c.budgetBench); err != nil {
			return fmt.Errorf("bad -budget-bench: %w", err)
		}
	}
	b := benchwatch.DeriveBudgets(benchmarks, filter, c.headroom)
	if len(b.NsPerOp) == 0 {
		return fmt.Errorf("-budget-bench %q matched no benchmarks", c.budgetBench)
	}
	b.Comment = fmt.Sprintf("ns/op budgets = measured x %.2f headroom; edn-bench -check warns over budget, fails over %.1fx budget", c.headroom, c.hardFactor)
	if c.record != "" {
		b.Source = c.record
	}
	return b.Write(c.writeBudgets)
}

var diffCols = []cliutil.Column{
	{Name: "benchmark", Format: "%-52s"},
	{Name: "old_ns_per_op", Head: "old ns/op", Format: "%12.1f"},
	{Name: "new_ns_per_op", Head: "new ns/op", Format: "%12.1f"},
	{Name: "delta_percent", Head: "delta%", Format: "%+8.1f"},
}

func diff(c config, benchmarks []benchwatch.Benchmark, stdout io.Writer) error {
	base, err := benchwatch.LoadSnapshot(c.baseline)
	if err != nil {
		return err
	}
	rows := benchwatch.Diff(base.Benchmarks, benchmarks)
	fmt.Fprintf(stdout, "diff vs %s (%s, %s): %d benchmarks matched\n",
		base.Snapshot, base.Date, base.Go, len(rows))
	if c.format == "json" {
		return cliutil.WriteJSON(stdout, rows)
	}
	cells := make([][]any, len(rows))
	for i, r := range rows {
		cells[i] = []any{r.Name, r.OldNs, r.NewNs, r.DeltaPc}
	}
	if c.format == "csv" {
		return cliutil.WriteCSV(stdout, diffCols, cells)
	}
	return cliutil.WriteTable(stdout, diffCols, cells)
}

var checkCols = []cliutil.Column{
	{Name: "benchmark", Format: "%-52s"},
	{Name: "status", Format: "%8s"},
	{Name: "ns_per_op", Head: "ns/op", Format: "%12.1f"},
	{Name: "budget_ns_per_op", Head: "budget", Format: "%12.1f"},
	{Name: "ratio", Format: "%7.2f"},
}

func check(c config, benchmarks []benchwatch.Benchmark, stdout io.Writer) error {
	budgets, err := benchwatch.LoadBudgets(c.budgets)
	if err != nil {
		return err
	}
	rep := benchwatch.Check(benchmarks, budgets, c.hardFactor)
	switch c.format {
	case "json":
		if err := cliutil.WriteJSON(stdout, rep); err != nil {
			return err
		}
	default:
		cells := make([][]any, len(rep.Rows))
		for i, r := range rep.Rows {
			cells[i] = []any{r.Name, r.Status, r.NsPerOp, r.Budget, r.Ratio}
		}
		if c.format == "csv" {
			err = cliutil.WriteCSV(stdout, checkCols, cells)
		} else {
			err = cliutil.WriteTable(stdout, checkCols, cells)
		}
		if err != nil {
			return err
		}
	}
	switch {
	case rep.Failed():
		return fmt.Errorf("bench check failed: %d failing, %d warning of %d budgeted (budgets %s, hard factor %.1fx)",
			rep.Failures, rep.Warnings, len(rep.Rows), c.budgets, c.hardFactor)
	case rep.Warnings > 0:
		fmt.Fprintf(stdout, "bench check: OK with %d warning(s) in the noise band (over budget, under %.1fx)\n",
			rep.Warnings, c.hardFactor)
	default:
		fmt.Fprintf(stdout, "bench check: all %d budgeted benchmarks within budget\n", len(rep.Rows))
	}
	return nil
}

// cpuModel best-effort reads the CPU model name for the snapshot
// header, matching the committed trajectory's format.
func cpuModel() string {
	b, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return runtime.GOARCH
	}
	for _, line := range strings.Split(string(b), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			return strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(name), ":"))
		}
	}
	return runtime.GOARCH
}
