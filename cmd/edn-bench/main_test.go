package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOut = `goos: linux
pkg: edn/internal/core
BenchmarkRouteCycleInto-8	22272	25889 ns/op	0 B/op	0 allocs/op
BenchmarkProbeOff-8	1000000	1042 ns/op	0 B/op	0 allocs/op
PASS
ok  	edn/internal/core	1.0s
`

func writeSample(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "bench.out")
	if err := os.WriteFile(path, []byte(sampleOut), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRecordBudgetsAndCheck(t *testing.T) {
	input := writeSample(t)
	dir := filepath.Dir(input)
	snap := filepath.Join(dir, "BENCH_X.json")
	budgets := filepath.Join(dir, "budgets.json")

	var out strings.Builder
	err := run([]string{
		"-input", input,
		"-record", snap, "-comment", "test run",
		"-write-budgets", budgets, "-headroom", "1.15",
		"-budget-bench", "RouteCycleInto|ProbeOff",
	}, nil, &out)
	if err != nil {
		t.Fatalf("record: %v\n%s", err, out.String())
	}
	raw, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"snapshot": "BENCH_X"`, "prX_headline", "BenchmarkRouteCycleInto"} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("snapshot missing %s:\n%s", want, raw)
		}
	}

	// The same run checks clean against its own derived budgets, and
	// diffs flat against its own snapshot.
	out.Reset()
	err = run([]string{"-input", input, "-check", "-budgets", budgets, "-baseline", snap}, nil, &out)
	if err != nil {
		t.Fatalf("self-check: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all 2 budgeted benchmarks within budget") {
		t.Errorf("self-check not clean:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "diff vs BENCH_X") {
		t.Errorf("baseline diff missing:\n%s", out.String())
	}

	// A 3x regression must fail the gate.
	slow := filepath.Join(dir, "slow.out")
	slowOut := strings.ReplaceAll(sampleOut, "25889 ns/op", "80000 ns/op")
	if err := os.WriteFile(slow, []byte(slowOut), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err = run([]string{"-input", slow, "-check", "-budgets", budgets}, nil, &out)
	if err == nil || !strings.Contains(err.Error(), "bench check failed") {
		t.Fatalf("3x regression passed the gate: err=%v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Errorf("report shows no FAIL row:\n%s", out.String())
	}
}

func TestCheckWarnsInNoiseBand(t *testing.T) {
	input := writeSample(t)
	dir := filepath.Dir(input)
	budgets := filepath.Join(dir, "budgets.json")
	var out strings.Builder
	if err := run([]string{"-input", input, "-write-budgets", budgets, "-headroom", "1.0"}, nil, &out); err != nil {
		t.Fatal(err)
	}
	// 1.5x budget: over, but within the 2x hard factor.
	warm := filepath.Join(dir, "warm.out")
	warmOut := strings.ReplaceAll(sampleOut, "25889 ns/op", "38000 ns/op")
	if err := os.WriteFile(warm, []byte(warmOut), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	err := run([]string{"-input", warm, "-check", "-budgets", budgets}, nil, &out)
	if err != nil {
		t.Fatalf("noise-band run must not fail: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "1 warning") || !strings.Contains(out.String(), "WARN") {
		t.Errorf("warning not reported:\n%s", out.String())
	}
}

func TestCommittedBudgetsCoverTestdata(t *testing.T) {
	// The committed budget file must check clean against the committed
	// reference run — this is exactly what CI's cli-smoke executes.
	for _, p := range []string{"testdata/bench.out", "../../BENCH_BUDGETS.json"} {
		if _, err := os.Stat(p); err != nil {
			t.Skipf("%s not present", p)
		}
	}
	var out strings.Builder
	err := run([]string{"-input", "testdata/bench.out", "-check", "-budgets", "../../BENCH_BUDGETS.json"}, nil, &out)
	if err != nil {
		t.Fatalf("committed budgets reject the committed run: %v\n%s", err, out.String())
	}
}

func TestStdinAndFormats(t *testing.T) {
	for _, format := range []string{"table", "csv", "json"} {
		var out strings.Builder
		err := run([]string{"-input", "-", "-format", format}, strings.NewReader(sampleOut), &out)
		if err != nil {
			t.Fatalf("format %s: %v", format, err)
		}
		if !strings.Contains(out.String(), "parsed 2 benchmarks") {
			t.Errorf("format %s: %s", format, out.String())
		}
	}
	if err := run([]string{"-input", "-", "-format", "yaml"}, strings.NewReader(sampleOut), nil); err == nil {
		t.Error("unknown format accepted")
	}
}
