// Command edn-cost prints the Section 3.1 cost model (Equations 2 and 3)
// as a table: crosspoint and wire costs for the crossbar, the delta
// network, the Figure 8 EDN families and the dilated-delta baseline.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"edn"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "edn-cost:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("edn-cost", flag.ContinueOnError)
	maxInputs := fs.Int("max-inputs", 1<<16, "largest network size to include")
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	table, err := edn.CostTable(*maxInputs)
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(w, table)
	return err
}
