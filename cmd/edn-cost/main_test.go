package main

import (
	"strings"
	"testing"
)

func TestRunTable(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-max-inputs", "4096"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"network", "crosspoints", "wires", "EDN(16,16,1,", "dilated delta"} {
		if !strings.Contains(out, want) {
			t.Errorf("cost table missing %q:\n%s", want, out)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-nope"}, &sb); err == nil {
		t.Fatal("expected flag parse error")
	}
}
