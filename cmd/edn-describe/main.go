// Command edn-describe prints the physical structure of an EDN(a,b,c,l):
// per-stage switch inventory, interstage permutations, bucket fan-out
// (for small networks, in the spirit of Figure 4) and optionally the
// complete wire-level netlist.
//
//	edn-describe -a 16 -b 4 -c 4 -l 2           # the Figure 4 network
//	edn-describe -a 64 -b 16 -c 4 -l 2          # the MasPar router
//	edn-describe -a 4 -b 2 -c 2 -l 2 -netlist   # full wire dump
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"edn"
	"edn/internal/netlist"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "edn-describe:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("edn-describe", flag.ContinueOnError)
	a := fs.Int("a", 16, "hyperbar inputs")
	b := fs.Int("b", 4, "hyperbar output buckets")
	c := fs.Int("c", 4, "bucket capacity")
	l := fs.Int("l", 2, "hyperbar stages")
	fanout := fs.Int("fanout", 8, "print per-switch fan-out when a stage has at most this many switches")
	dump := fs.Bool("netlist", false, "dump every physical wire")
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := edn.New(*a, *b, *c, *l)
	if err != nil {
		return err
	}
	desc, err := netlist.Describe(cfg, *fanout)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprint(w, desc); err != nil {
		return err
	}
	if *dump {
		nl, err := netlist.Build(cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "netlist (%d wires):\n", nl.WireCount())
		for _, wire := range nl.Wires {
			fmt.Fprintf(w, "  %v -> %v\n", wire.From, wire.To)
		}
	}
	return nil
}
