package main

import (
	"strings"
	"testing"
)

func TestRunFigure4Network(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"EDN(16,4,4,2)", "stage 1: 4 x H(16 -> 4x4)", "fan-out"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunNetlistDump(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-a", "4", "-b", "2", "-c", "2", "-l", "2", "-netlist"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "netlist (") || !strings.Contains(out, "in[0] -> s1.i0.p0") {
		t.Errorf("netlist dump missing:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-a", "5"}, &sb); err == nil {
		t.Error("expected validation error")
	}
	if err := run([]string{"-zzz"}, &sb); err == nil {
		t.Error("expected flag parse error")
	}
}
