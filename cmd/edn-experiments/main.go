// Command edn-experiments reproduces the paper's complete evaluation in
// one run: Figures 7, 8 and 11 (ASCII + CSV), the Equation 2/3 cost
// table, and the Section 5.1 MasPar case study, written into an output
// directory next to a summary index.
//
//	edn-experiments -out results/
//	edn-experiments -out results/ -simulate   # include Monte-Carlo runs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"edn"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "edn-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("edn-experiments", flag.ContinueOnError)
	out := fs.String("out", "results", "output directory")
	maxInputs := fs.Int("max-inputs", edn.DefaultMaxInputs, "largest network size to sweep")
	simulate := fs.Bool("simulate", false, "include Monte-Carlo measurements (slower)")
	seed := fs.Uint64("seed", 1, "RNG seed for -simulate")
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}

	var index strings.Builder
	index.WriteString("# Reproduction run index\n\n")

	figures := []struct {
		id    string
		build func(int) (edn.Chart, error)
	}{
		{"figure7", edn.Figure7},
		{"figure8", edn.Figure8},
		{"figure11", edn.Figure11},
	}
	for _, f := range figures {
		chart, err := f.build(*maxInputs)
		if err != nil {
			return fmt.Errorf("%s: %w", f.id, err)
		}
		txt := filepath.Join(*out, f.id+".txt")
		if err := os.WriteFile(txt, []byte(chart.Render()), 0o644); err != nil {
			return err
		}
		csvPath := filepath.Join(*out, f.id+".csv")
		var csv strings.Builder
		if err := chart.WriteCSV(&csv); err != nil {
			return err
		}
		if err := os.WriteFile(csvPath, []byte(csv.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(&index, "- %s: %s, %s\n", f.id, txt, csvPath)
		fmt.Fprintf(w, "wrote %s and %s\n", txt, csvPath)
	}

	costs, err := edn.CostTable(1 << 16)
	if err != nil {
		return err
	}
	costPath := filepath.Join(*out, "costs.txt")
	if err := os.WriteFile(costPath, []byte(costs), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(&index, "- cost table (Equations 2/3): %s\n", costPath)
	fmt.Fprintf(w, "wrote %s\n", costPath)

	trials := 0
	if *simulate {
		trials = 3
	}
	report, err := edn.MasParReport(*simulate, trials, *seed)
	if err != nil {
		return err
	}
	masparPath := filepath.Join(*out, "maspar.txt")
	if err := os.WriteFile(masparPath, []byte(report), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(&index, "- Section 5.1 case study: %s\n", masparPath)
	fmt.Fprintf(w, "wrote %s\n", masparPath)

	if *simulate {
		var sims strings.Builder
		sims.WriteString("Monte-Carlo cross-checks (seeded, deterministic)\n\n")
		for _, dims := range [][4]int{{16, 4, 4, 2}, {64, 16, 4, 2}, {8, 8, 1, 3}} {
			cfg, err := edn.New(dims[0], dims[1], dims[2], dims[3])
			if err != nil {
				return err
			}
			res, err := edn.MeasureUniformPAParallel(cfg, 1, edn.SimOptions{Cycles: 600, Seed: *seed}, 0)
			if err != nil {
				return err
			}
			fmt.Fprintf(&sims, "%v: measured PA %.4f (+-%.4f) vs Equation 4 %.4f\n",
				cfg, res.PA, res.PACI, edn.PA(cfg, 1))
		}
		simPath := filepath.Join(*out, "simulation.txt")
		if err := os.WriteFile(simPath, []byte(sims.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(&index, "- simulation cross-checks: %s\n", simPath)
		fmt.Fprintf(w, "wrote %s\n", simPath)
	}

	indexPath := filepath.Join(*out, "INDEX.md")
	if err := os.WriteFile(indexPath, []byte(index.String()), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(w, "wrote %s\n", indexPath)
	return nil
}
