package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesAllArtifacts(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-out", dir, "-max-inputs", "4096"}, &sb); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"figure7.txt", "figure7.csv", "figure8.txt", "figure8.csv",
		"figure11.txt", "figure11.csv", "costs.txt", "maspar.txt", "INDEX.md",
	} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Errorf("missing artifact %s: %v", name, err)
			continue
		}
		if len(data) == 0 {
			t.Errorf("artifact %s is empty", name)
		}
	}
	// Without -simulate no simulation file appears.
	if _, err := os.Stat(filepath.Join(dir, "simulation.txt")); err == nil {
		t.Error("simulation.txt should not exist without -simulate")
	}
	maspar, err := os.ReadFile(filepath.Join(dir, "maspar.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(maspar), "0.544") {
		t.Errorf("maspar report missing PA(1):\n%s", maspar)
	}
}

func TestRunWithSimulation(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	if err := run([]string{"-out", dir, "-max-inputs", "1024", "-simulate", "-seed", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(dir, "simulation.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Equation 4") {
		t.Errorf("simulation artifact malformed:\n%s", data)
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-nah"}, &sb); err == nil {
		t.Fatal("expected flag parse error")
	}
}
