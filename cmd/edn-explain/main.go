// Command edn-explain answers "where did the latency go": it runs a
// workload with the latency-anatomy collector attached and renders the
// causal decomposition of every delivered, dropped and stranded
// packet's time — per stage, split into queue wait (cycles behind
// packets ahead in the same FIFO), head-of-line blocking (cycles a
// queue head spent stalled on a full downstream queue or lost
// arbitration), and service (the traversal cycles themselves) — plus
// the switch blame ledger (who *caused* the blocked cycles) and the
// congestion trees the blocking formed (root switch, depth, spread,
// lifetime).
//
//	edn-explain -a 16 -b 4 -c 4 -l 2 -load 0.9
//	edn-explain -a 16 -b 4 -c 4 -l 2 -engine dilated -traffic hotspot
//	edn-explain -a 16 -b 4 -c 4 -l 2 -traffic moving-hotspot -period 200
//	edn-explain -a 16 -b 4 -c 4 -l 2 -mode loop -load 0.4
//	edn-explain -spec job.json
//
// -mode loop runs the closed-loop request/response workload instead
// and additionally prints the five-way request-time split
// (client-queue / retry-wait / forward-fabric / service /
// reply-fabric). -spec replays a saved JobSpec — an explain section is
// injected when the spec has none — and renders its anatomy the same
// way. Attribution is observation-only: the measured numbers of an
// explained run are byte-identical to an unexplained one's.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"edn"
	"edn/internal/cliutil"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "edn-explain:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("edn-explain", flag.ContinueOnError)
	a, b, c, l := cliutil.GeometryFlags(fs, 16, 4, 4, 2)
	engine := fs.String("engine", "edn", "engine: edn, dilated")
	mode := fs.String("mode", "latency", "workload: latency (open-loop packets), loop (closed-loop requests)")
	depth := fs.Int("depth", 4, "per-wire FIFO depth (-1 unbounded, 0 unbuffered resubmission)")
	policy := fs.String("policy", "backpressure", "blocked-packet policy: backpressure, drop")
	load := fs.Float64("load", 0.9, "offered load (demand rate for -mode loop)")
	pattern := fs.String("traffic", "uniform", "traffic: uniform, onoff, hotspot, moving-hotspot")
	burst := fs.Float64("burst", 16, "mean burst length for onoff traffic")
	hotFraction := fs.Float64("hot-fraction", 0.2, "fraction of requests aimed at the hot output")
	hot := fs.Int("hot", 0, "initial hot output (hotspot, moving-hotspot)")
	period := fs.Int("period", 0, "cycles between hot-spot moves (moving-hotspot; 0 = never)")
	stride := fs.Int("stride", 1, "hot-output step per move (moving-hotspot)")
	cycles := fs.Int("cycles", 4000, "measured cycles (split across shards)")
	warmup := fs.Int("warmup", 500, "warmup cycles discarded per shard")
	shards := fs.Int("shards", 0, "parallel shards (0 = GOMAXPROCS); anatomy is shard-invariant")
	seed := fs.Uint64("seed", 1, "RNG seed")
	arb := fs.String("arb", "priority", "arbitration: priority, roundrobin, random")
	topK := fs.Int("top-k", 8, "entries kept in the blame and congestion-tree lists")
	format := fs.String("format", "table", "output: table, json")
	window := fs.Int("window", 4, "outstanding requests per source (-mode loop)")
	timeout := fs.Int("timeout", 32, "attempt timeout in cycles (-mode loop)")
	attempts := fs.Int("attempts", 8, "max attempts per request (-mode loop)")
	retry := fs.String("retry", "backoff", "retry policy: immediate, backoff (-mode loop)")
	sf := cliutil.SpecFlags(fs)
	prof := cliutil.ProfileFlags(fs)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()

	var spec edn.JobSpec
	if *sf.Path != "" {
		if err := cliutil.LoadSpec(*sf.Path, &spec); err != nil {
			return err
		}
		if spec.Explain == nil {
			spec.Explain = &edn.ExplainSpec{TopK: *topK}
		}
	} else {
		spec = edn.JobSpec{
			Geometry: &edn.GeometrySpec{A: *a, B: *b, C: *c, L: *l},
			Engine:   *engine,
			Queue:    &edn.QueueSpec{Depth: *depth, Policy: *policy, Arbiter: *arb},
			Sim:      edn.SimSpec{Cycles: *cycles, Warmup: *warmup, Seed: *seed, Shards: *shards},
			Explain:  &edn.ExplainSpec{TopK: *topK},
		}
		switch *mode {
		case "latency":
			spec.Mode, spec.Load = edn.JobLatency, *load
		case "loop":
			spec.Mode, spec.Rates = edn.JobClosedLoop, []float64{*load}
			spec.Loop = &edn.ClosedLoopSpec{
				Window: *window, Timeout: *timeout, MaxAttempts: *attempts,
				Retry: *retry, BackoffBase: 2, BackoffCap: 16,
			}
		default:
			return fmt.Errorf("unknown mode %q (want latency or loop)", *mode)
		}
		switch *pattern {
		case "uniform":
		case "onoff":
			spec.Traffic = &edn.TrafficSpec{Kind: "bursty", MeanBurst: *burst}
		case "hotspot":
			spec.Traffic = &edn.TrafficSpec{Kind: "hotspot", HotFraction: *hotFraction, Hot: *hot}
		case "moving-hotspot":
			spec.Traffic = &edn.TrafficSpec{
				Kind: "moving-hotspot", HotFraction: *hotFraction,
				Hot: *hot, Period: *period, Stride: *stride,
			}
		default:
			return fmt.Errorf("unknown traffic %q", *pattern)
		}
	}
	if *sf.Dump {
		return cliutil.WriteJSON(w, spec)
	}

	var rep *edn.AnatomyReport
	res, err := edn.RunJob(context.Background(), spec, edn.RunOptions{
		OnExplain: func(r *edn.AnatomyReport) { rep = r },
	})
	if err != nil {
		return err
	}
	if rep == nil {
		return fmt.Errorf("no anatomy report collected")
	}

	if *format == "json" {
		return cliutil.WriteJSON(w, explainReport{Spec: spec, Result: res, Explain: rep})
	}
	return render(w, spec, rep)
}

// explainReport is the machine-readable output: the job, its untouched
// result, and the anatomy riding beside it.
type explainReport struct {
	Spec    edn.JobSpec        `json:"spec"`
	Result  *edn.JobResult     `json:"result"`
	Explain *edn.AnatomyReport `json:"explain"`
}

func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

func render(w io.Writer, spec edn.JobSpec, rep *edn.AnatomyReport) error {
	fmt.Fprintf(w, "latency anatomy: %d stages, %d inputs -> %d outputs, %d observed cycles\n",
		rep.Stages, rep.Inputs, rep.Outputs, rep.Cycles)
	for _, cl := range []struct {
		name string
		t    edn.AnatomyClassTotals
	}{{"delivered", rep.Delivered}, {"dropped", rep.Dropped}, {"stranded", rep.Stranded}} {
		total := cl.t.Wait + cl.t.Block + cl.t.Service
		if cl.t.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "%-9s %8d packets, %10d cycles = wait %5.1f%% + block %5.1f%% + service %5.1f%%\n",
			cl.name, cl.t.Count, total,
			pct(cl.t.Wait, total), pct(cl.t.Block, total), pct(cl.t.Service, total))
	}
	if rep.FaultParked > 0 {
		fmt.Fprintf(w, "fault-parked ring-cycles: %d (packets stalled on failed wires)\n", rep.FaultParked)
	}

	if len(rep.PerStage) > 0 {
		fmt.Fprintln(w, "\nper-stage ledger (cycles attributed to packets queued at the stage):")
		rows := make([][]any, len(rep.PerStage))
		for i, st := range rep.PerStage {
			rows[i] = []any{st.Stage, st.Wait, st.Block, st.Service, st.Blame,
				st.DwellSummary.P50, st.DwellSummary.P95, st.DwellSummary.Max}
		}
		if err := cliutil.WriteTable(w, stageColumns, rows); err != nil {
			return err
		}
	}

	if len(rep.Blame) > 0 {
		fmt.Fprintln(w, "\nswitch blame (blocked ring-cycles this switch's full queues caused upstream):")
		var total int64
		for _, st := range rep.PerStage {
			total += st.Blame
		}
		rows := make([][]any, len(rep.Blame))
		for i, sb := range rep.Blame {
			rows[i] = []any{sb.Stage, sb.Switch, sb.Cycles, pct(sb.Cycles, total)}
		}
		if err := cliutil.WriteTable(w, blameColumns, rows); err != nil {
			return err
		}
	}

	if len(rep.Trees) > 0 {
		fmt.Fprintln(w, "\ncongestion trees (by total blocked ring-cycles):")
		for _, t := range rep.Trees {
			root := fmt.Sprintf("stage %d switch %d", t.RootStage, t.RootSwitch)
			if t.RootTerminal >= 0 {
				root = fmt.Sprintf("output %d (stage %d switch %d)", t.RootTerminal, t.RootStage, t.RootSwitch)
			}
			fmt.Fprintf(w, "  root %-32s depth %2d  spread %3d  cycles %d..%d  blocked %d\n",
				root, t.Depth, t.Spread, t.FirstCycle, t.LastCycle, t.BlockedCycles)
		}
	}

	if r := rep.Requests; r != nil && r.Completed > 0 {
		total := r.Total()
		fmt.Fprintf(w, "\nrequest time split (%d completed requests, %d total cycles):\n", r.Completed, total)
		for _, seg := range []struct {
			name string
			v    int64
		}{
			{"client-queue", r.ClientQueue}, {"retry-wait", r.RetryWait},
			{"forward-fabric", r.Forward}, {"service", r.Service}, {"reply-fabric", r.Reply},
		} {
			fmt.Fprintf(w, "  %-14s %10d cycles  %5.1f%%  (%.2f/request)\n",
				seg.name, seg.v, pct(seg.v, total), float64(seg.v)/float64(r.Completed))
		}
		if r.GiveUps > 0 {
			fmt.Fprintf(w, "  gave up: %d requests after %d cycles\n", r.GiveUps, r.GiveUpTime)
		}
	}
	return nil
}

var stageColumns = []cliutil.Column{
	{Name: "stage", Format: "%5d"},
	{Name: "wait", Format: "%10d"},
	{Name: "block", Format: "%10d"},
	{Name: "service", Format: "%10d"},
	{Name: "blame", Format: "%10d"},
	{Name: "dwell_p50", Head: "dwl-p50", Format: "%8.1f"},
	{Name: "dwell_p95", Head: "dwl-p95", Format: "%8.1f"},
	{Name: "dwell_max", Head: "dwl-max", Format: "%8.0f"},
}

var blameColumns = []cliutil.Column{
	{Name: "stage", Format: "%5d"},
	{Name: "switch", Format: "%6d"},
	{Name: "cycles", Format: "%10d"},
	{Name: "share", Head: "share%", Format: "%7.1f"},
}
