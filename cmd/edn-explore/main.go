// Command edn-explore searches the EDN design space for a required
// machine size: every square EDN(bc,b,c,l) geometry is evaluated on
// Equation 4 acceptance and Equation 2/3 costs, ranked, and reduced to
// its cost/performance Pareto front — the capacity trade-off the paper's
// abstract highlights.
//
//	edn-explore -ports 1024 -max-switch 64
//	edn-explore -ports 4096 -budget 500000      # best PA within a crosspoint budget
//	edn-explore -ports 1024 -floor 0.5          # cheapest design above a PA floor
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"edn"
	"edn/internal/design"
	"edn/internal/plot"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "edn-explore:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("edn-explore", flag.ContinueOnError)
	ports := fs.Int("ports", 1024, "required number of network ports (power of two)")
	maxSwitch := fs.Int("max-switch", 64, "widest buildable switch (a = b*c)")
	budget := fs.Int64("budget", 0, "crosspoint budget; 0 disables the budget query")
	floor := fs.Float64("floor", 0, "PA(1) floor; 0 disables the floor query")
	all := fs.Bool("all", false, "list every candidate, not just the Pareto front")
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}

	points, err := design.Enumerate(*ports, *maxSwitch)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%d square EDN candidates with %d ports and switches up to %d wide\n",
		len(points), *ports, *maxSwitch)
	fmt.Fprintf(w, "crossbar reference: PA(1) = %.4f at %d crosspoints\n\n",
		edn.CrossbarPA(*ports, 1), int64(*ports)*int64(*ports))

	rows := func(ps []design.Point) [][]string {
		out := make([][]string, 0, len(ps))
		for _, p := range ps {
			out = append(out, []string{
				p.Config.String(),
				fmt.Sprintf("%.4f", p.PA1),
				fmt.Sprint(p.Crosspoints),
				fmt.Sprint(p.Wires),
				fmt.Sprint(p.Config.PathCount()),
			})
		}
		return out
	}
	headers := []string{"network", "PA(1)", "crosspoints", "wires", "paths"}
	if *all {
		fmt.Fprintln(w, "all candidates (by PA):")
		fmt.Fprint(w, plot.Table(headers, rows(points)))
	}
	front := design.ParetoFront(points)
	fmt.Fprintln(w, "cost/performance Pareto front:")
	fmt.Fprint(w, plot.Table(headers, rows(front)))

	if *budget > 0 {
		if p, ok := design.BestUnderBudget(points, *budget); ok {
			fmt.Fprintf(w, "\nbest within %d crosspoints: %v\n", *budget, p)
		} else {
			fmt.Fprintf(w, "\nno design fits within %d crosspoints\n", *budget)
		}
	}
	if *floor > 0 {
		if p, ok := design.CheapestAtFloor(points, *floor); ok {
			fmt.Fprintf(w, "cheapest with PA(1) >= %.3f: %v\n", *floor, p)
		} else {
			fmt.Fprintf(w, "no design reaches PA(1) >= %.3f\n", *floor)
		}
	}
	return nil
}
