package main

import (
	"strings"
	"testing"
)

func TestRunDefault(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"Pareto front", "EDN(", "crossbar reference", "PA(1)"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// The MasPar router design must be among the 1024-port candidates.
	if !strings.Contains(out, "EDN(64,16,4,2)") {
		t.Errorf("MasPar design missing from front:\n%s", out)
	}
}

func TestRunBudgetAndFloor(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-ports", "1024", "-budget", "200000", "-floor", "0.5", "-all"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"best within 200000 crosspoints", "cheapest with PA(1) >= 0.500", "all candidates"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunImpossibleQueries(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-ports", "1024", "-budget", "10", "-floor", "0.99"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "no design fits") || !strings.Contains(out, "no design reaches") {
		t.Errorf("impossible queries should report failure:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-ports", "1000"}, &sb); err == nil {
		t.Error("expected error for non-power-of-two ports")
	}
	if err := run([]string{"-wat"}, &sb); err == nil {
		t.Error("expected flag parse error")
	}
}
