// Command edn-faults sweeps a fault fraction over the degraded-mode
// queueing simulator and emits the graceful-degradation curve —
// delivered bandwidth, output reachability and P99 delivery latency per
// fault fraction — as a table, CSV or JSON:
//
//	edn-faults -a 4 -b 4 -c 2 -l 3 -fractions 0,0.05,0.1,0.2,0.4
//	edn-faults -a 16 -b 4 -c 4 -l 2 -mode switches -policy drop -format csv
//	edn-faults -a 4 -b 4 -c 2 -l 3 -expected -shards 4 -format json
//	edn-faults -a 16 -b 4 -c 4 -l 2 -dilated
//
// With -dilated the sweep also evaluates the EDN's dilated-delta
// counterpart (same port count, dilation equal to the bucket capacity)
// at each fraction: the counterpart's sub-wires die at the same rate
// (the analytic Binomial capacity-reduction model of internal/dilated)
// and its degraded throughput per input lands in the `dilated` column —
// the degraded half of the paper's Section 1 wire-cost comparison,
// with the wire counts of both networks in the header.
//
// Each shard grows one nested fault plan (rising fractions add faults,
// never retract them) under an identical traffic replay, so curves
// degrade monotonically and runs are deterministic for a fixed
// (seed, shards) pair. With -expected the analytic per-wire recursion
// (the Theorem 3 generalization over the masked topology) is evaluated
// on every sampled fault set and reported alongside the measurement.
//
// The sweep is one edn.JobSpec availability job executed through
// edn.Run: -dump-spec prints that spec as JSON instead of running it,
// and -spec file.json replays a saved spec — whatever its mode — and
// emits the JobResult as JSON, exactly as the edn-serve daemon would.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"edn"
	"edn/internal/cliutil"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "edn-faults:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("edn-faults", flag.ContinueOnError)
	a, b, c, l := cliutil.GeometryFlags(fs, 4, 4, 2, 3)
	fractionsFlag := fs.String("fractions", "0,0.02,0.05,0.1,0.2,0.3,0.5", "comma-separated fault fractions to sweep")
	mode := fs.String("mode", "wires", "failing population: wires, switches, mixed")
	load := fs.Float64("load", 1, "offered load per input during measurement")
	depth := fs.Int("depth", 4, "per-wire FIFO depth (-1 unbounded, 0 unbuffered resubmission)")
	policy := fs.String("policy", "drop", "blocked-packet policy: backpressure, drop (drop recommended with dead terminals)")
	cycles := fs.Int("cycles", 2000, "measured cycles per fraction (split across shards)")
	warmup := fs.Int("warmup", 500, "warmup cycles discarded per shard")
	shards := fs.Int("shards", 0, "parallel shards per fraction, one fault sample each (0 = GOMAXPROCS)")
	seed := fs.Uint64("seed", 1, "RNG seed (fault plans and traffic)")
	arb := fs.String("arb", "priority", "arbitration: priority, roundrobin, random")
	expected := fs.Bool("expected", false, "also evaluate the analytic degradation recursion per fault sample")
	dilatedCmp := cliutil.DilatedFlag(fs, "analytic sub-wire model at each fraction")
	sf := cliutil.SpecFlags(fs)
	format := fs.String("format", "table", "output: table, csv, json")
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *sf.Path != "" {
		var spec edn.JobSpec
		if err := cliutil.LoadSpec(*sf.Path, &spec); err != nil {
			return err
		}
		res, err := edn.Run(context.Background(), spec)
		if err != nil {
			return err
		}
		return cliutil.WriteJSON(w, res)
	}

	cfg, err := edn.New(*a, *b, *c, *l)
	if err != nil {
		return err
	}
	fractions, err := cliutil.ParseFloatList(*fractionsFlag, 0, 1, "fraction")
	if err != nil {
		return err
	}
	faultMode, err := edn.ParseFaultMode(*mode)
	if err != nil {
		return err
	}
	if *load <= 0 || *load > 1 {
		return fmt.Errorf("load %g out of (0,1]", *load)
	}
	spec := edn.JobSpec{
		Mode:     edn.JobAvailability,
		Geometry: &edn.GeometrySpec{A: *a, B: *b, C: *c, L: *l},
		Queue:    &edn.QueueSpec{Depth: *depth, Policy: *policy, Arbiter: *arb},
		Avail: &edn.AvailabilitySpec{
			Fractions:    fractions,
			Mode:         *mode,
			Load:         *load,
			WithExpected: *expected,
		},
		Sim: edn.SimSpec{Cycles: *cycles, Warmup: *warmup, Seed: *seed, Shards: *shards},
	}
	if *sf.Dump {
		return cliutil.WriteJSON(w, spec)
	}
	res, err := edn.Run(context.Background(), spec)
	if err != nil {
		return err
	}
	results := res.Availability

	// The dilated comparison kills the counterpart's sub-wires at the
	// same fraction the sweep applies to the EDN — the two networks lose
	// the same share of their path redundancy — and reports the
	// analytic degraded throughput per input alongside the measurement.
	var dcfg edn.DilatedDelta
	dilatedThr := make([]float64, len(results))
	if *dilatedCmp {
		if dcfg, err = cliutil.DilatedCounterpart(cfg); err != nil {
			return err
		}
		for i, r := range results {
			deg, err := edn.ExpectedDilatedDegraded(dcfg, r.FaultFraction)
			if err != nil {
				return err
			}
			dilatedThr[i] = deg.PA(*load) * *load
		}
	}

	cols := []cliutil.Column{
		{Name: "fraction", Format: "%9.3f"},
		{Name: "throughput", Head: "thr/cycle", Format: "%10.2f"},
		{Name: "throughput_per_input", Head: "thr/input", Format: "%10.3f"},
		{Name: "accepted_fraction", CSVOnly: true},
		{Name: "reachable_fraction", Head: "reachable", Format: "%10.3f"},
		{Name: "live_input_fraction", CSVOnly: true},
		{Name: "dead_switches", Head: "deadsw", Format: "%7.1f"},
		{Name: "dead_wires", Head: "deadwires", Format: "%10.1f"},
		{Name: "latency_p50", CSVOnly: true},
		{Name: "latency_p95", CSVOnly: true},
		{Name: "latency_p99", Head: "p99", Format: "%8.0f"},
		{Name: "latency_mean", CSVOnly: true},
		{Name: "latency_max", CSVOnly: true},
		{Name: "expected_throughput", Head: "model", Format: "%8.2f", CSVOnly: !*expected},
		{Name: "dilated_throughput_per_input", Head: "dilated", Format: "%8.3f", CSVOnly: !*dilatedCmp},
		{Name: "injected", CSVOnly: true},
		{Name: "refused", CSVOnly: true},
		{Name: "delivered", CSVOnly: true},
		{Name: "dropped", CSVOnly: true},
	}
	rows := make([][]any, len(results))
	for i, r := range results {
		rows[i] = []any{
			r.FaultFraction, r.Throughput, r.ThroughputPerInput, r.AcceptedFraction,
			r.ReachableFraction, r.LiveInputFraction, r.DeadSwitches, r.DeadWires,
			r.LatencyP50, r.LatencyP95, r.LatencyP99, r.LatencyMean, r.LatencyMax,
			r.ExpectedThroughput, dilatedThr[i], r.Injected, r.Refused, r.Delivered, r.Dropped,
		}
	}
	switch *format {
	case "table":
		fmt.Fprintf(w, "%v — %d inputs, %d outputs, %d paths/pair, mode=%s, load=%g, depth=%d, policy=%s\n",
			cfg, cfg.Inputs(), cfg.Outputs(), cfg.PathCount(), faultMode, *load, *depth, *policy)
		if *dilatedCmp {
			cliutil.DilatedHeader(w, cfg, dcfg)
		}
		return cliutil.WriteTable(w, cols, rows)
	case "csv":
		return cliutil.WriteCSV(w, cols, rows)
	case "json":
		report := faultReport{
			Network: cfg.String(),
			Inputs:  cfg.Inputs(),
			Outputs: cfg.Outputs(),
			Paths:   cfg.PathCount(),
			Mode:    faultMode.String(),
			Load:    *load,
			Depth:   *depth,
			Policy:  *policy,
			Seed:    *seed,
		}
		for i, r := range results {
			p := faultPoint{
				Fraction:           r.FaultFraction,
				Throughput:         r.Throughput,
				ThroughputPerInput: r.ThroughputPerInput,
				AcceptedFraction:   r.AcceptedFraction,
				ReachableFraction:  r.ReachableFraction,
				LiveInputFraction:  r.LiveInputFraction,
				DeadSwitches:       r.DeadSwitches,
				DeadWires:          r.DeadWires,
				LatencyP50:         r.LatencyP50,
				LatencyP95:         r.LatencyP95,
				LatencyP99:         r.LatencyP99,
				LatencyMean:        r.LatencyMean,
				Injected:           r.Injected,
				Refused:            r.Refused,
				Delivered:          r.Delivered,
				Dropped:            r.Dropped,
			}
			if *expected {
				v := r.ExpectedThroughput
				p.ExpectedThroughput = &v
			}
			if *dilatedCmp {
				v := dilatedThr[i]
				p.DilatedThroughput = &v
			}
			report.Points = append(report.Points, p)
		}
		if *dilatedCmp {
			report.Dilated = dcfg.String()
			report.DilatedWires = dcfg.WireCount()
			report.EDNWires = cfg.WireCount()
		}
		return cliutil.WriteJSON(w, report)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

// faultReport is the machine-readable form of one degradation sweep.
type faultReport struct {
	Network string       `json:"network"`
	Inputs  int          `json:"inputs"`
	Outputs int          `json:"outputs"`
	Paths   int          `json:"pathsPerPair"`
	Mode    string       `json:"mode"`
	Load    float64      `json:"load"`
	Depth   int          `json:"depth"`
	Policy  string       `json:"policy"`
	Seed    uint64       `json:"seed"`
	Points  []faultPoint `json:"points"`
	// Dilated-counterpart comparison, present with -dilated.
	Dilated      string `json:"dilatedCounterpart,omitempty"`
	DilatedWires int64  `json:"dilatedWireCount,omitempty"`
	EDNWires     int64  `json:"ednWireCount,omitempty"`
}

type faultPoint struct {
	Fraction           float64  `json:"faultFraction"`
	Throughput         float64  `json:"throughputPerCycle"`
	ThroughputPerInput float64  `json:"throughputPerInput"`
	AcceptedFraction   float64  `json:"acceptedFraction"`
	ReachableFraction  float64  `json:"reachableFraction"`
	LiveInputFraction  float64  `json:"liveInputFraction"`
	DeadSwitches       float64  `json:"deadSwitches"`
	DeadWires          float64  `json:"deadWires"`
	LatencyP50         float64  `json:"latencyP50"`
	LatencyP95         float64  `json:"latencyP95"`
	LatencyP99         float64  `json:"latencyP99"`
	LatencyMean        float64  `json:"latencyMean"`
	ExpectedThroughput *float64 `json:"expectedThroughput,omitempty"`
	DilatedThroughput  *float64 `json:"dilatedThroughputPerInput,omitempty"`
	Injected           int64    `json:"injected"`
	Refused            int64    `json:"refused"`
	Delivered          int64    `json:"delivered"`
	Dropped            int64    `json:"dropped"`
}
