package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunTableSweep(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-a", "4", "-b", "4", "-c", "2", "-l", "2",
		"-fractions", "0,0.2", "-cycles", "200", "-warmup", "40", "-shards", "2"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"EDN(4,4,2,2)", "thr/input", "reachable", "p99", "mode=wires"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "\n"); got != 4 { // title + header + 2 fraction rows
		t.Errorf("expected 4 lines, got %d:\n%s", got, out)
	}
	if strings.Contains(out, "model") {
		t.Errorf("table shows the model column without -expected:\n%s", out)
	}
}

func TestRunExpectedColumn(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-a", "4", "-b", "4", "-c", "2", "-l", "2",
		"-fractions", "0", "-cycles", "100", "-warmup", "20", "-shards", "1", "-expected"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "model") {
		t.Errorf("-expected did not surface the model column:\n%s", sb.String())
	}
}

func TestRunCSV(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-a", "4", "-b", "4", "-c", "2", "-l", "2",
		"-fractions", "0.1", "-cycles", "100", "-warmup", "20", "-shards", "1", "-format", "csv"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want header + 1 row, got %d lines:\n%s", len(lines), sb.String())
	}
	header := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(header) != len(row) {
		t.Errorf("csv row has %d fields for %d columns", len(row), len(header))
	}
	if header[0] != "fraction" || !strings.Contains(lines[0], "reachable_fraction") {
		t.Errorf("unexpected csv header %q", lines[0])
	}
}

func TestRunJSON(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-a", "4", "-b", "4", "-c", "2", "-l", "3",
		"-fractions", "0,0.3", "-cycles", "150", "-warmup", "30", "-shards", "2",
		"-mode", "mixed", "-format", "json", "-expected"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Network string `json:"network"`
		Mode    string `json:"mode"`
		Points  []struct {
			Fraction  float64  `json:"faultFraction"`
			Thr       float64  `json:"throughputPerCycle"`
			Reachable float64  `json:"reachableFraction"`
			Expected  *float64 `json:"expectedThroughput"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &report); err != nil {
		t.Fatalf("bad json: %v\n%s", err, sb.String())
	}
	if report.Network != "EDN(4,4,2,3)" || report.Mode != "mixed" || len(report.Points) != 2 {
		t.Errorf("unexpected report: %+v", report)
	}
	if report.Points[0].Thr <= 0 || report.Points[0].Reachable != 1 {
		t.Errorf("fault-free point looks wrong: %+v", report.Points[0])
	}
	if report.Points[0].Expected == nil || *report.Points[0].Expected <= 0 {
		t.Errorf("-expected missing from json: %+v", report.Points[0])
	}
	if report.Points[1].Thr > report.Points[0].Thr {
		t.Errorf("degradation curve rose: %+v", report.Points)
	}
}

func TestRunDilatedComparison(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-a", "16", "-b", "4", "-c", "4", "-l", "2",
		"-fractions", "0,0.2", "-cycles", "100", "-warmup", "20", "-shards", "1",
		"-dilated"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"dilated counterpart 4-dilated delta(b=4,l=3)", "dilated", "wires vs EDN"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}

	sb.Reset()
	err = run([]string{"-a", "16", "-b", "4", "-c", "4", "-l", "2",
		"-fractions", "0,0.2", "-cycles", "100", "-warmup", "20", "-shards", "1",
		"-dilated", "-format", "json"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Dilated string `json:"dilatedCounterpart"`
		Points  []struct {
			Dilated *float64 `json:"dilatedThroughputPerInput"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &report); err != nil {
		t.Fatalf("bad json: %v\n%s", err, sb.String())
	}
	if report.Dilated == "" || len(report.Points) != 2 {
		t.Fatalf("dilated fields missing: %+v", report)
	}
	if report.Points[0].Dilated == nil || *report.Points[0].Dilated <= 0 {
		t.Errorf("fault-free dilated throughput missing: %+v", report.Points[0])
	}
	if *report.Points[1].Dilated >= *report.Points[0].Dilated {
		t.Errorf("dilated model did not degrade: %+v", report.Points)
	}

	// No dilated column without the flag (already covered for table by
	// TestRunTableSweep's line count; check json omits the field).
	sb.Reset()
	if err := run([]string{"-a", "4", "-b", "4", "-c", "2", "-l", "2",
		"-fractions", "0", "-cycles", "60", "-warmup", "10", "-shards", "1",
		"-format", "json"}, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "dilated") {
		t.Errorf("json shows dilated fields without -dilated:\n%s", sb.String())
	}
}

func TestRunEveryModePolicyArb(t *testing.T) {
	for _, mode := range []string{"wires", "switches", "mixed"} {
		for _, policy := range []string{"drop", "backpressure"} {
			var sb strings.Builder
			err := run([]string{"-a", "4", "-b", "4", "-c", "2", "-l", "2",
				"-fractions", "0.1", "-cycles", "60", "-warmup", "10", "-shards", "1",
				"-mode", mode, "-policy", policy}, &sb)
			if err != nil {
				t.Errorf("mode %s policy %s: %v", mode, policy, err)
			}
		}
	}
	for _, arb := range []string{"priority", "roundrobin", "random"} {
		var sb strings.Builder
		err := run([]string{"-a", "4", "-b", "4", "-c", "2", "-l", "2",
			"-fractions", "0.1", "-cycles", "60", "-warmup", "10", "-shards", "1", "-arb", arb}, &sb)
		if err != nil {
			t.Errorf("arb %s: %v", arb, err)
		}
	}
}

func TestRunShardedDeterminism(t *testing.T) {
	var a, b strings.Builder
	args := []string{"-a", "4", "-b", "4", "-c", "2", "-l", "3",
		"-fractions", "0,0.1,0.3", "-cycles", "300", "-warmup", "60", "-shards", "4", "-format", "csv"}
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("sweep not deterministic for fixed seed/shards:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-fractions", "1.5"},
		{"-fractions", ""},
		{"-mode", "gremlins"},
		{"-policy", "teleport"},
		{"-format", "xml"},
		{"-arb", "coinflip"},
		{"-load", "0"},
		{"-load", "2"},
		{"-a", "3"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}
