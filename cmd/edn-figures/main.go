// Command edn-figures regenerates the paper's evaluation figures as
// ASCII charts or CSV:
//
//	edn-figures -fig 7          # Figure 7 (8-I/O hyperbar families)
//	edn-figures -fig 8          # Figure 8 (16-I/O hyperbar families)
//	edn-figures -fig 11         # Figure 11 (resubmission effect)
//	edn-figures -fig all -csv   # everything, machine readable
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"edn"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "edn-figures:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("edn-figures", flag.ContinueOnError)
	fig := fs.String("fig", "all", "figure to regenerate: 7, 8, 11 or all")
	maxInputs := fs.Int("max-inputs", edn.DefaultMaxInputs, "largest network size to sweep")
	csv := fs.Bool("csv", false, "emit CSV instead of an ASCII chart")
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}

	builders := map[string]func(int) (edn.Chart, error){
		"7":  edn.Figure7,
		"8":  edn.Figure8,
		"11": edn.Figure11,
	}
	order := []string{"7", "8", "11"}

	selected := order
	if *fig != "all" {
		if _, ok := builders[*fig]; !ok {
			return fmt.Errorf("unknown figure %q (want 7, 8, 11 or all)", *fig)
		}
		selected = []string{*fig}
	}
	for _, name := range selected {
		chart, err := builders[name](*maxInputs)
		if err != nil {
			return fmt.Errorf("figure %s: %w", name, err)
		}
		if *csv {
			if err := chart.WriteCSV(w); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintln(w, chart.Render()); err != nil {
			return err
		}
	}
	return nil
}
