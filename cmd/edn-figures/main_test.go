package main

import (
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "7", "-max-inputs", "4096"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "Figure 7") || !strings.Contains(out, "EDN(8,2,4,*)") {
		t.Errorf("missing figure content:\n%s", out)
	}
	if strings.Contains(out, "Figure 8") {
		t.Error("figure 8 should not appear for -fig 7")
	}
}

func TestRunAllCSV(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "all", "-csv", "-max-inputs", "4096"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "series,x,y") {
		t.Errorf("missing CSV header:\n%s", out)
	}
	for _, want := range []string{"Full Crossbar", "EDN(16,4,4,*)", "resubmitted"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q", want)
		}
	}
}

func TestRunUnknownFigure(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "12"}, &sb); err == nil {
		t.Fatal("expected error for unknown figure")
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-definitely-not-a-flag"}, &sb); err == nil {
		t.Fatal("expected flag parse error")
	}
}
