// Command edn-latency sweeps offered load over the buffered packet-level
// queueing simulator and emits the latency-vs-load curve — throughput
// plus P50/P95/P99 delivery latency per load point — as a table, CSV or
// JSON:
//
//	edn-latency -a 64 -b 16 -c 4 -l 2 -loads 0.1,0.3,0.5,0.7,0.9
//	edn-latency -a 16 -b 4 -c 4 -l 2 -depth 16 -traffic onoff -burst 32 -format csv
//	edn-latency -a 4 -b 4 -c 2 -l 3 -depth 1 -policy drop -shards 8 -format json
//	edn-latency -a 64 -b 16 -c 4 -l 2 -drain 16 -depth 0
//	edn-latency -a 4 -b 4 -c 2 -l 3 -dilated
//
// With -dilated the sweep also runs the EDN's equal-redundancy dilated
// delta counterpart (same port count, dilation equal to the bucket
// capacity) through the dilated packet simulator at every load point —
// a measured curve, not the analytic overlay of edn-faults — under the
// identical per-input injection replay (same seeds, same shard split),
// so the throughput and tail columns are a paired comparison. Both
// networks' wire costs land in the table header.
//
// With -drain q the command instead runs the closed-loop permutation
// drain (q packets per input) and compares the measured cycle count
// against the Section 5.1 closed form ExpectedPermutationTime.
//
// Every run is one (or, with -dilated, two) edn.JobSpec jobs executed
// through edn.Run: -dump-spec prints those specs as JSON instead of
// running them, and -spec file.json replays a saved spec — whatever
// its mode — and emits the JobResult as JSON, exactly as the edn-serve
// daemon would.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"edn"
	"edn/internal/cliutil"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "edn-latency:", err)
		os.Exit(1)
	}
}

// sweepColumns is the report schema: the table shows the headline
// subset, CSV (and the JSON point struct) carry everything.
var sweepColumns = []cliutil.Column{
	{Name: "load", Format: "%8.3f"},
	{Name: "throughput", Head: "thr/cycle", Format: "%10.2f"},
	{Name: "accepted_fraction", Head: "accepted", Format: "%9.4f"},
	{Name: "latency_p50", Head: "p50", Format: "%8.0f"},
	{Name: "latency_p95", Head: "p95", Format: "%8.0f"},
	{Name: "latency_p99", Head: "p99", Format: "%8.0f"},
	{Name: "latency_mean", Head: "mean", Format: "%8.2f"},
	{Name: "latency_max", CSVOnly: true},
	{Name: "avg_queued", CSVOnly: true},
	{Name: "injected", CSVOnly: true},
	{Name: "refused", Format: "%9d"},
	{Name: "delivered", CSVOnly: true},
	{Name: "dropped", Format: "%9d"},
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("edn-latency", flag.ContinueOnError)
	a, b, c, l := cliutil.GeometryFlags(fs, 64, 16, 4, 2)
	depth := fs.Int("depth", 4, "per-wire FIFO depth (-1 unbounded, 0 unbuffered resubmission)")
	policy := fs.String("policy", "backpressure", "blocked-packet policy: backpressure, drop")
	loadsFlag := fs.String("loads", "0.1,0.2,0.3,0.4,0.5,0.6,0.7,0.8,0.9,1.0", "comma-separated offered loads to sweep")
	pattern := fs.String("traffic", "uniform", "traffic: uniform, onoff, hotspot")
	burst := fs.Float64("burst", 16, "mean burst length for onoff traffic")
	hotFraction := fs.Float64("hot-fraction", 0.1, "fraction of requests aimed at output 0 (hotspot traffic)")
	cycles := fs.Int("cycles", 2000, "measured cycles per load point (split across shards)")
	warmup := fs.Int("warmup", 500, "warmup cycles discarded per shard")
	shards := fs.Int("shards", 0, "parallel shards per load point (0 = GOMAXPROCS)")
	seed := fs.Uint64("seed", 1, "RNG seed")
	arb := fs.String("arb", "priority", "arbitration: priority, roundrobin, random")
	format := fs.String("format", "table", "output: table, csv, json")
	drain := fs.Int("drain", 0, "instead of a sweep, drain this many permutation packets per input")
	dilatedCmp := cliutil.DilatedFlag(fs, "measured packet-level sweep from the same traffic replay")
	sf := cliutil.SpecFlags(fs)
	pf := cliutil.ProbeFlags(fs)
	prof := cliutil.ProfileFlags(fs)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()

	if *sf.Path != "" {
		var spec edn.JobSpec
		if err := cliutil.LoadSpec(*sf.Path, &spec); err != nil {
			return err
		}
		res, err := edn.Run(context.Background(), spec)
		if err != nil {
			return err
		}
		return cliutil.WriteJSON(w, res)
	}

	cfg, err := edn.New(*a, *b, *c, *l)
	if err != nil {
		return err
	}
	spec := edn.JobSpec{
		Mode:     edn.JobSaturation,
		Geometry: &edn.GeometrySpec{A: *a, B: *b, C: *c, L: *l},
		Queue:    &edn.QueueSpec{Depth: *depth, Policy: *policy, Arbiter: *arb},
		Probe:    edn.NewProbeSpec(pf.Options()),
		Sim:      edn.SimSpec{Cycles: *cycles, Warmup: *warmup, Seed: *seed, Shards: *shards},
	}

	if *drain > 0 {
		if *dilatedCmp {
			return fmt.Errorf("-dilated applies to load sweeps, not -drain")
		}
		spec.Mode, spec.DrainQ = edn.JobDrain, *drain
		if *sf.Dump {
			return cliutil.WriteJSON(w, spec)
		}
		res, err := edn.Run(context.Background(), spec)
		if err != nil {
			return err
		}
		return renderDrain(w, cfg, *drain, *depth, res.Drain)
	}

	loads, err := cliutil.ParseFloatList(*loadsFlag, 0, 1, "load")
	if err != nil {
		return err
	}
	spec.Loads = loads
	switch *pattern {
	case "uniform":
	case "onoff":
		spec.Traffic = &edn.TrafficSpec{Kind: "bursty", MeanBurst: *burst}
	case "hotspot":
		spec.Traffic = &edn.TrafficSpec{Kind: "hotspot", HotFraction: *hotFraction}
	default:
		return fmt.Errorf("unknown traffic %q", *pattern)
	}

	// The measured counterpart is the same job on the dilated engine: it
	// runs the same loads with the same shard seeding, so both networks
	// see the identical per-input injection realization (destinations
	// are drawn in each network's own output space from the same
	// stream).
	specs := []edn.JobSpec{spec}
	var dcfg edn.DilatedDelta
	if *dilatedCmp {
		if dcfg, err = cliutil.DilatedCounterpart(cfg); err != nil {
			return err
		}
		dspec := spec
		dspec.Engine = edn.EngineDilated
		specs = append(specs, dspec)
	}
	if *sf.Dump {
		for _, s := range specs {
			if err := cliutil.WriteJSON(w, s); err != nil {
				return err
			}
		}
		return nil
	}
	res, err := edn.Run(context.Background(), spec)
	if err != nil {
		return err
	}
	results := res.Points
	var dresults []edn.LatencyResult
	if *dilatedCmp {
		dres, err := edn.Run(context.Background(), specs[1])
		if err != nil {
			return err
		}
		dresults = dres.Points
	}

	cols := sweepColumns
	if *dilatedCmp {
		cols = append(append([]cliutil.Column{}, sweepColumns...),
			cliutil.Column{Name: "dilated_throughput", Head: "dil-thr", Format: "%9.2f"},
			cliutil.Column{Name: "dilated_accepted_fraction", Head: "dil-acc", Format: "%9.4f"},
			cliutil.Column{Name: "dilated_latency_p50", CSVOnly: true},
			cliutil.Column{Name: "dilated_latency_p95", CSVOnly: true},
			cliutil.Column{Name: "dilated_latency_p99", Head: "dil-p99", Format: "%9.0f"},
			cliutil.Column{Name: "dilated_latency_mean", CSVOnly: true},
			cliutil.Column{Name: "dilated_refused", CSVOnly: true},
			cliutil.Column{Name: "dilated_dropped", CSVOnly: true},
		)
	}
	rows := make([][]any, len(results))
	for i, r := range results {
		rows[i] = []any{
			loads[i], r.Throughput, r.AcceptedFraction,
			r.LatencyP50, r.LatencyP95, r.LatencyP99, r.LatencyMean, r.LatencyMax,
			r.AvgQueued, r.Injected, r.Refused, r.Delivered, r.Dropped,
		}
		if *dilatedCmp {
			d := dresults[i]
			rows[i] = append(rows[i],
				d.Throughput, d.AcceptedFraction,
				d.LatencyP50, d.LatencyP95, d.LatencyP99, d.LatencyMean,
				d.Refused, d.Dropped,
			)
		}
	}
	switch *format {
	case "table":
		fmt.Fprintf(w, "%v — %d inputs, %d outputs, depth=%d, policy=%s, traffic=%s\n",
			cfg, cfg.Inputs(), cfg.Outputs(), *depth, *policy, *pattern)
		if *dilatedCmp {
			cliutil.DilatedHeader(w, cfg, dcfg)
		}
		if err := cliutil.WriteTable(w, cols, rows); err != nil {
			return err
		}
		if pf.Enabled() {
			for i, r := range results {
				fmt.Fprintf(w, "probe @ load=%g\n", loads[i])
				if err := cliutil.WriteProbeReport(w, r.Observed, *pf.Heatmap); err != nil {
					return err
				}
			}
			for i, d := range dresults {
				fmt.Fprintf(w, "probe @ load=%g (dilated)\n", loads[i])
				if err := cliutil.WriteProbeReport(w, d.Observed, *pf.Heatmap); err != nil {
					return err
				}
			}
		}
		return nil
	case "csv":
		return cliutil.WriteCSV(w, cols, rows)
	case "json":
		report := sweepReport{
			Network: cfg.String(),
			Inputs:  cfg.Inputs(),
			Outputs: cfg.Outputs(),
			Depth:   *depth,
			Policy:  *policy,
			Traffic: *pattern,
			Seed:    *seed,
		}
		if *dilatedCmp {
			report.Dilated = dcfg.String()
			report.DilatedWires = dcfg.WireCount()
			report.EDNWires = cfg.WireCount()
		}
		for i, r := range results {
			p := sweepPoint{
				Load:             loads[i],
				Throughput:       r.Throughput,
				AcceptedFraction: r.AcceptedFraction,
				LatencyP50:       r.LatencyP50,
				LatencyP95:       r.LatencyP95,
				LatencyP99:       r.LatencyP99,
				LatencyMean:      r.LatencyMean,
				LatencyMax:       r.LatencyMax,
				AvgQueued:        r.AvgQueued,
				Injected:         r.Injected,
				Refused:          r.Refused,
				Delivered:        r.Delivered,
				Dropped:          r.Dropped,
			}
			if *dilatedCmp {
				d := dresults[i]
				p.Dilated = &dilatedSweepPoint{
					Throughput:       d.Throughput,
					AcceptedFraction: d.AcceptedFraction,
					LatencyP50:       d.LatencyP50,
					LatencyP95:       d.LatencyP95,
					LatencyP99:       d.LatencyP99,
					LatencyMean:      d.LatencyMean,
					Refused:          d.Refused,
					Dropped:          d.Dropped,
				}
			}
			report.Points = append(report.Points, p)
		}
		return cliutil.WriteJSON(w, report)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

func renderDrain(w io.Writer, cfg edn.Config, q, depth int, res *edn.DrainResult) error {
	fmt.Fprintf(w, "%v closed-loop drain of %d permutation packets per input (depth=%d)\n",
		cfg, q, depth)
	fmt.Fprintf(w, "  measured   %d cycles, mean latency %.2f, P95 %.0f\n",
		res.Cycles, res.LatencyMean, res.LatencyP95)
	if model, err := edn.ExpectedPermutationTime(cfg, q); err == nil {
		fmt.Fprintf(w, "  Section 5.1 model  q/PA(1) + J = %.2f cycles (PA(1)=%.4f, J=%d)\n",
			model.Cycles(), model.PA1, model.J)
	}
	return nil
}

// sweepReport is the machine-readable form of one sweep.
type sweepReport struct {
	Network string       `json:"network"`
	Inputs  int          `json:"inputs"`
	Outputs int          `json:"outputs"`
	Depth   int          `json:"depth"`
	Policy  string       `json:"policy"`
	Traffic string       `json:"traffic"`
	Seed    uint64       `json:"seed"`
	Points  []sweepPoint `json:"points"`
	// Dilated-counterpart comparison, present with -dilated.
	Dilated      string `json:"dilatedCounterpart,omitempty"`
	DilatedWires int64  `json:"dilatedWireCount,omitempty"`
	EDNWires     int64  `json:"ednWireCount,omitempty"`
}

type sweepPoint struct {
	Load             float64            `json:"load"`
	Throughput       float64            `json:"throughputPerCycle"`
	AcceptedFraction float64            `json:"acceptedFraction"`
	LatencyP50       float64            `json:"latencyP50"`
	LatencyP95       float64            `json:"latencyP95"`
	LatencyP99       float64            `json:"latencyP99"`
	LatencyMean      float64            `json:"latencyMean"`
	LatencyMax       float64            `json:"latencyMax"`
	AvgQueued        float64            `json:"avgQueued"`
	Injected         int64              `json:"injected"`
	Refused          int64              `json:"refused"`
	Delivered        int64              `json:"delivered"`
	Dropped          int64              `json:"dropped"`
	Dilated          *dilatedSweepPoint `json:"dilated,omitempty"`
}

// dilatedSweepPoint is the measured counterpart at the same load under
// the same traffic replay.
type dilatedSweepPoint struct {
	Throughput       float64 `json:"throughputPerCycle"`
	AcceptedFraction float64 `json:"acceptedFraction"`
	LatencyP50       float64 `json:"latencyP50"`
	LatencyP95       float64 `json:"latencyP95"`
	LatencyP99       float64 `json:"latencyP99"`
	LatencyMean      float64 `json:"latencyMean"`
	Refused          int64   `json:"refused"`
	Dropped          int64   `json:"dropped"`
}
