package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunTableSweep(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-a", "16", "-b", "4", "-c", "4", "-l", "2",
		"-loads", "0.2,0.8", "-cycles", "200", "-warmup", "50", "-shards", "2"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"EDN(16,4,4,2)", "thr/cycle", "p99"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if got := strings.Count(out, "\n"); got != 4 { // header x2 + 2 load rows
		t.Errorf("expected 4 lines, got %d:\n%s", got, out)
	}
}

func TestRunCSV(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-a", "16", "-b", "4", "-c", "4", "-l", "2",
		"-loads", "0.5", "-cycles", "100", "-warmup", "20", "-shards", "1", "-format", "csv"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want header + 1 row, got %d lines:\n%s", len(lines), sb.String())
	}
	header := strings.Split(lines[0], ",")
	row := strings.Split(lines[1], ",")
	if len(header) != len(row) {
		t.Errorf("csv row has %d fields for %d columns", len(row), len(header))
	}
	if header[0] != "load" || !strings.Contains(lines[0], "latency_p99") {
		t.Errorf("unexpected csv header %q", lines[0])
	}
}

func TestRunJSON(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-a", "16", "-b", "4", "-c", "4", "-l", "2",
		"-loads", "0.3,0.9", "-cycles", "150", "-warmup", "30", "-shards", "2", "-format", "json"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Network string `json:"network"`
		Points  []struct {
			Load       float64 `json:"load"`
			Throughput float64 `json:"throughputPerCycle"`
			LatencyP99 float64 `json:"latencyP99"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &report); err != nil {
		t.Fatalf("bad json: %v\n%s", err, sb.String())
	}
	if report.Network != "EDN(16,4,4,2)" || len(report.Points) != 2 {
		t.Errorf("unexpected report: %+v", report)
	}
	if report.Points[0].Throughput <= 0 || report.Points[0].LatencyP99 <= 0 {
		t.Errorf("empty measurement: %+v", report.Points[0])
	}
}

func TestRunEveryTrafficPolicyArb(t *testing.T) {
	for _, traffic := range []string{"uniform", "onoff", "hotspot"} {
		for _, policy := range []string{"backpressure", "drop"} {
			var sb strings.Builder
			err := run([]string{"-a", "8", "-b", "2", "-c", "4", "-l", "2",
				"-loads", "0.5", "-cycles", "60", "-warmup", "10", "-shards", "1",
				"-traffic", traffic, "-policy", policy}, &sb)
			if err != nil {
				t.Errorf("traffic %s policy %s: %v", traffic, policy, err)
			}
		}
	}
	for _, arb := range []string{"priority", "roundrobin", "random"} {
		var sb strings.Builder
		err := run([]string{"-a", "8", "-b", "2", "-c", "4", "-l", "2",
			"-loads", "0.5", "-cycles", "60", "-warmup", "10", "-shards", "1", "-arb", arb}, &sb)
		if err != nil {
			t.Errorf("arb %s: %v", arb, err)
		}
	}
}

func TestRunRandomArbiterSharded(t *testing.T) {
	// The random-arbiter factory is invoked lazily from every shard's
	// goroutine; its shared seed source must be serialized. Run it under
	// the CI race job (-race over this package) with real parallelism.
	var sb strings.Builder
	err := run([]string{"-a", "8", "-b", "2", "-c", "4", "-l", "2",
		"-loads", "0.5,0.8", "-cycles", "200", "-warmup", "20", "-shards", "8", "-arb", "random"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunDrainMode(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-a", "16", "-b", "4", "-c", "4", "-l", "2",
		"-drain", "4", "-depth", "0"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"closed-loop drain", "measured", "Section 5.1 model"} {
		if !strings.Contains(out, want) {
			t.Errorf("drain output missing %q:\n%s", want, out)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-loads", "1.5"},
		{"-loads", ""},
		{"-policy", "teleport"},
		{"-traffic", "fractal"},
		{"-format", "xml"},
		{"-arb", "coinflip"},
		{"-a", "3"},
	}
	for _, args := range cases {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestRunDilatedComparison(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-a", "4", "-b", "4", "-c", "2", "-l", "3",
		"-loads", "0.5,1", "-cycles", "200", "-warmup", "50", "-shards", "2",
		"-policy", "drop", "-dilated"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"dilated counterpart 2-dilated delta(b=4,l=2)", "dil-thr", "dil-p99", "wires vs EDN"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDilatedJSON(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-a", "4", "-b", "4", "-c", "2", "-l", "3",
		"-loads", "1", "-cycles", "150", "-warmup", "30", "-shards", "2",
		"-policy", "drop", "-dilated", "-format", "json"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Dilated      string `json:"dilatedCounterpart"`
		DilatedWires int64  `json:"dilatedWireCount"`
		EDNWires     int64  `json:"ednWireCount"`
		Points       []struct {
			Injected int64 `json:"injected"`
			Dilated  *struct {
				Throughput float64 `json:"throughputPerCycle"`
				LatencyP99 float64 `json:"latencyP99"`
			} `json:"dilated"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &report); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, sb.String())
	}
	if report.Dilated == "" || report.DilatedWires == 0 || report.EDNWires == 0 {
		t.Errorf("dilated header fields missing: %+v", report)
	}
	for i, p := range report.Points {
		if p.Dilated == nil {
			t.Fatalf("point %d missing dilated block", i)
		}
		if p.Dilated.Throughput <= 0 {
			t.Errorf("point %d dilated throughput %g", i, p.Dilated.Throughput)
		}
	}
}

// TestRunDilatedDeterministic: the paired sweep is reproducible per
// (seed, shards), the acceptance criterion for the measured comparison.
func TestRunDilatedDeterministic(t *testing.T) {
	args := []string{"-a", "4", "-b", "4", "-c", "2", "-l", "3",
		"-loads", "1", "-cycles", "150", "-warmup", "30", "-shards", "2",
		"-policy", "drop", "-dilated", "-seed", "42", "-format", "csv"}
	var a, b strings.Builder
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed, different output:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestRunDilatedRejectsDrain(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-a", "16", "-b", "4", "-c", "4", "-l", "2",
		"-drain", "4", "-depth", "0", "-dilated"}, &sb); err == nil {
		t.Error("-dilated with -drain accepted")
	}
}
