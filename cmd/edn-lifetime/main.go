// Command edn-lifetime simulates a network's whole service life under
// continuous failure-and-repair churn and emits the availability time
// series — delivered bandwidth, output reachability, dead-component
// census and P99 latency per epoch — plus the lifetime aggregates
// (lifetime-average bandwidth, time below threshold, recovery
// half-life) as a table, CSV or JSON:
//
//	edn-lifetime -a 4 -b 4 -c 2 -l 3 -epochs 60 -mtbf 40 -mttr 10
//	edn-lifetime -a 16 -b 4 -c 4 -l 2 -mode switches -policy drop -format csv
//	edn-lifetime -a 4 -b 4 -c 2 -l 3 -blast-rate 0.05 -blast-radius 2 -format json
//	edn-lifetime -a 4 -b 4 -c 2 -l 3 -dilated
//
// With -dilated the command also lives out the EDN's equal-redundancy
// dilated delta counterpart (same port count, dilation equal to the
// bucket capacity) in the dilated packet simulator: its sub-wires churn
// on the same MTBF/MTTR clocks (blast overlays, which name EDN
// structures, do not apply) under the identical per-input traffic
// replay, and the measured per-epoch series plus lifetime aggregates
// land next to the EDN's — the measured lifetime half of the paper's
// Section 1 comparison.
//
// Components fail and repair per shard-independent lifecycle processes
// (exponential or deterministic MTBF/MTTR, optional correlated blast
// arrivals); the running simulator is re-masked in place at every epoch
// boundary — queue contents and arbiter state survive — so the series
// is what a deployed machine would measure, not a sequence of cold
// starts. Runs are deterministic for a fixed (seed, shards) pair,
// except under -arb random with more than one shard, where the
// stream-to-switch assignment depends on goroutine scheduling (see
// cliutil.ArbiterFactory) and reproducibility is statistical only.
//
// Every run is one (or, with -dilated, two) edn.JobSpec lifetime jobs
// executed through edn.Run: -dump-spec prints those specs as JSON
// instead of running them, and -spec file.json replays a saved spec —
// whatever its mode — and emits the JobResult as JSON, exactly as the
// edn-serve daemon would.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"edn"
	"edn/internal/cliutil"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "edn-lifetime:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("edn-lifetime", flag.ContinueOnError)
	a, b, c, l := cliutil.GeometryFlags(fs, 4, 4, 2, 3)
	epochs := fs.Int("epochs", 60, "failure/repair epochs to simulate")
	epochCycles := fs.Int("epoch-cycles", 200, "network cycles per epoch")
	mtbf := fs.Float64("mtbf", 40, "mean epochs between failures per component")
	mttr := fs.Float64("mttr", 10, "mean epochs to repair a component")
	timing := fs.String("timing", "exponential", "holding times: exponential, deterministic")
	mode := fs.String("mode", "wires", "churning population: wires, switches, mixed")
	blastRate := fs.Float64("blast-rate", 0, "per-epoch probability of a correlated switch-block blast")
	blastRadius := fs.Int("blast-radius", 1, "blast kills switches within this radius of a random center")
	repairWindow := fs.Int("repair-window", 0, "batch repairs to epoch-multiple maintenance windows (0/1 = immediate)")
	load := fs.Float64("load", 1, "offered load per input")
	depth := fs.Int("depth", 4, "per-wire FIFO depth (-1 unbounded, 0 unbuffered resubmission)")
	policy := fs.String("policy", "drop", "blocked-packet policy: backpressure, drop")
	threshold := fs.Float64("threshold", 0, "bandwidth/input floor for time-below-threshold (0 = half of healthy)")
	warmup := fs.Int("warmup", 500, "fault-free warmup cycles per shard")
	shards := fs.Int("shards", 0, "parallel shards, one independent lifetime each (0 = GOMAXPROCS)")
	seed := fs.Uint64("seed", 1, "RNG seed (failure processes and traffic)")
	arb := fs.String("arb", "priority", "arbitration: priority, roundrobin, random")
	format := fs.String("format", "table", "output: table, csv, json")
	dilatedCmp := cliutil.DilatedFlag(fs, "measured sub-wire churn from the same traffic replay")
	sf := cliutil.SpecFlags(fs)
	pf := cliutil.ProbeFlags(fs)
	prof := cliutil.ProfileFlags(fs)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()

	if *sf.Path != "" {
		var spec edn.JobSpec
		if err := cliutil.LoadSpec(*sf.Path, &spec); err != nil {
			return err
		}
		res, err := edn.Run(context.Background(), spec)
		if err != nil {
			return err
		}
		return cliutil.WriteJSON(w, res)
	}

	cfg, err := edn.New(*a, *b, *c, *l)
	if err != nil {
		return err
	}
	faultMode, err := edn.ParseFaultMode(*mode)
	if err != nil {
		return err
	}
	lifeTiming, err := edn.ParseLifecycleTiming(*timing)
	if err != nil {
		return err
	}
	if *load <= 0 || *load > 1 {
		return fmt.Errorf("load %g out of (0,1]", *load)
	}
	// lspec is the display copy of the churn process (the steady-state
	// dead fraction in the header); the job compiles its own from the
	// same fields.
	lspec := edn.LifecycleSpec{
		Mode:         faultMode,
		MTBF:         *mtbf,
		MTTR:         *mttr,
		Timing:       lifeTiming,
		BlastRate:    *blastRate,
		BlastRadius:  *blastRadius,
		RepairWindow: *repairWindow,
	}
	spec := edn.JobSpec{
		Mode:     edn.JobLifetime,
		Geometry: &edn.GeometrySpec{A: *a, B: *b, C: *c, L: *l},
		Queue:    &edn.QueueSpec{Depth: *depth, Policy: *policy, Arbiter: *arb},
		Lifetime: &edn.LifetimeSpec{
			Epochs:       *epochs,
			EpochCycles:  *epochCycles,
			Load:         *load,
			Threshold:    *threshold,
			Mode:         *mode,
			MTBF:         *mtbf,
			MTTR:         *mttr,
			Timing:       *timing,
			BlastRate:    *blastRate,
			BlastRadius:  *blastRadius,
			RepairWindow: *repairWindow,
		},
		Probe: edn.NewProbeSpec(pf.Options()),
		Sim:   edn.SimSpec{Warmup: *warmup, Seed: *seed, Shards: *shards},
	}

	// The measured counterpart lives the same epochs with the same
	// shard seeding — the same job on the dilated engine: identical
	// traffic replays, identically distributed sub-wire outages.
	specs := []edn.JobSpec{spec}
	var dcfg edn.DilatedDelta
	if *dilatedCmp {
		if dcfg, err = cliutil.DilatedCounterpart(cfg); err != nil {
			return err
		}
		dspec := spec
		dspec.Engine = edn.EngineDilated
		specs = append(specs, dspec)
	}
	if *sf.Dump {
		for _, s := range specs {
			if err := cliutil.WriteJSON(w, s); err != nil {
				return err
			}
		}
		return nil
	}
	out, err := edn.Run(context.Background(), spec)
	if err != nil {
		return err
	}
	res := *out.Lifetime
	var dres edn.DilatedLifetimeResult
	if *dilatedCmp {
		dout, err := edn.Run(context.Background(), specs[1])
		if err != nil {
			return err
		}
		dres = *dout.DilatedLifetime
	}

	cols := []cliutil.Column{
		{Name: "epoch", Format: "%5d"},
		{Name: "dead_fraction", Head: "deadfrac", Format: "%9.3f"},
		{Name: "throughput_per_input", Head: "thr/input", Format: "%10.3f"},
		{Name: "throughput_ci95", CSVOnly: true},
		{Name: "reachable_fraction", Head: "reachable", Format: "%10.3f"},
		{Name: "latency_p99", Head: "p99", Format: "%8.0f"},
		{Name: "parked_per_cycle", Head: "parked", Format: "%7.1f"},
	}
	if *dilatedCmp {
		cols = append(cols,
			cliutil.Column{Name: "dilated_dead_fraction", CSVOnly: true},
			cliutil.Column{Name: "dilated_throughput_per_input", Head: "dil-thr/in", Format: "%11.3f"},
			cliutil.Column{Name: "dilated_reachable_fraction", CSVOnly: true},
			cliutil.Column{Name: "dilated_latency_p99", Head: "dil-p99", Format: "%8.0f"},
		)
	}
	rows := make([][]any, res.Epochs)
	for e := 0; e < res.Epochs; e++ {
		rows[e] = []any{
			e, res.DeadFraction.Mean(e), res.Bandwidth.Mean(e), res.Bandwidth.CI95(e),
			res.Reachable.Mean(e), res.LatencyP99.Mean(e), res.Parked.Mean(e),
		}
		if *dilatedCmp {
			rows[e] = append(rows[e],
				dres.DeadFraction.Mean(e), dres.Bandwidth.Mean(e),
				dres.Reachable.Mean(e), dres.LatencyP99.Mean(e),
			)
		}
	}
	halfLife := res.RecoveryHalfLife
	switch *format {
	case "table":
		fmt.Fprintf(w, "%v — %d inputs, %d paths/pair, mode=%s, mtbf=%g, mttr=%g (steady-state dead %.1f%%), timing=%s, load=%g, depth=%d, policy=%s\n",
			cfg, cfg.Inputs(), cfg.PathCount(), faultMode, *mtbf, *mttr,
			100*lspec.DeadFractionSteadyState(), lifeTiming, *load, *depth, *policy)
		if *dilatedCmp {
			cliutil.DilatedHeader(w, cfg, dcfg)
		}
		if err := cliutil.WriteTable(w, cols, rows); err != nil {
			return err
		}
		fmt.Fprintf(w, "lifetime: thr=%.3f/input delivered=%.1f%% below-threshold(%.3f)=%.1f%% of epochs",
			res.LifetimeBandwidth, 100*res.DeliveredFraction, res.Threshold, 100*res.TimeBelowThreshold)
		if !math.IsNaN(halfLife) {
			fmt.Fprintf(w, " recovery-half-life=%.1f epochs", halfLife)
		}
		fmt.Fprintln(w)
		if res.Stranded > 0 {
			fmt.Fprintf(w, "stranded: %d packets died on wires that failed under them\n", res.Stranded)
		}
		if *dilatedCmp {
			fmt.Fprintf(w, "dilated lifetime: thr=%.3f/input delivered=%.1f%% below-threshold(%.3f)=%.1f%% of epochs",
				dres.LifetimeBandwidth, 100*dres.DeliveredFraction, dres.Threshold, 100*dres.TimeBelowThreshold)
			if !math.IsNaN(dres.RecoveryHalfLife) {
				fmt.Fprintf(w, " recovery-half-life=%.1f epochs", dres.RecoveryHalfLife)
			}
			fmt.Fprintln(w)
			if dres.Stranded > 0 {
				fmt.Fprintf(w, "dilated stranded: %d packets died on sub-wires that failed under them\n", dres.Stranded)
			}
		}
		if pf.Enabled() {
			if err := cliutil.WriteProbeReport(w, res.Observed, *pf.Heatmap); err != nil {
				return err
			}
			if *dilatedCmp {
				fmt.Fprintln(w, "dilated probe:")
				if err := cliutil.WriteProbeReport(w, dres.Observed, *pf.Heatmap); err != nil {
					return err
				}
			}
		}
		return nil
	case "csv":
		return cliutil.WriteCSV(w, cols, rows)
	case "json":
		report := lifetimeReport{
			Network:            cfg.String(),
			Inputs:             cfg.Inputs(),
			Outputs:            cfg.Outputs(),
			Paths:              cfg.PathCount(),
			Mode:               faultMode.String(),
			MTBF:               *mtbf,
			MTTR:               *mttr,
			Timing:             lifeTiming.String(),
			BlastRate:          *blastRate,
			Load:               *load,
			Depth:              *depth,
			Policy:             *policy,
			Seed:               *seed,
			Shards:             res.Shards,
			EpochCycles:        res.EpochCycles,
			Threshold:          res.Threshold,
			LifetimeBandwidth:  res.LifetimeBandwidth,
			DeliveredFraction:  res.DeliveredFraction,
			TimeBelowThreshold: res.TimeBelowThreshold,
			Injected:           res.Injected,
			Refused:            res.Refused,
			Delivered:          res.Delivered,
			Dropped:            res.Dropped,
			Stranded:           res.Stranded,
		}
		if !math.IsNaN(halfLife) {
			report.RecoveryHalfLife = &halfLife
		}
		if *dilatedCmp {
			dr := &dilatedLifetimeReport{
				Network:            dcfg.String(),
				Ports:              dcfg.Ports(),
				DilatedWires:       dcfg.WireCount(),
				EDNWires:           cfg.WireCount(),
				Threshold:          dres.Threshold,
				LifetimeBandwidth:  dres.LifetimeBandwidth,
				DeliveredFraction:  dres.DeliveredFraction,
				TimeBelowThreshold: dres.TimeBelowThreshold,
				Injected:           dres.Injected,
				Refused:            dres.Refused,
				Delivered:          dres.Delivered,
				Dropped:            dres.Dropped,
				Stranded:           dres.Stranded,
			}
			if hl := dres.RecoveryHalfLife; !math.IsNaN(hl) {
				dr.RecoveryHalfLife = &hl
			}
			report.Dilated = dr
		}
		for e := 0; e < res.Epochs; e++ {
			le := lifetimeEpoch{
				Epoch:              e,
				DeadFraction:       res.DeadFraction.Mean(e),
				ThroughputPerInput: res.Bandwidth.Mean(e),
				ThroughputCI95:     res.Bandwidth.CI95(e),
				ReachableFraction:  res.Reachable.Mean(e),
				LatencyP99:         res.LatencyP99.Mean(e),
				ParkedPerCycle:     res.Parked.Mean(e),
			}
			if *dilatedCmp {
				le.Dilated = &dilatedLifetimeEpoch{
					DeadFraction:       dres.DeadFraction.Mean(e),
					ThroughputPerInput: dres.Bandwidth.Mean(e),
					ReachableFraction:  dres.Reachable.Mean(e),
					LatencyP99:         dres.LatencyP99.Mean(e),
				}
			}
			report.Epochs = append(report.Epochs, le)
		}
		return cliutil.WriteJSON(w, report)
	default:
		return fmt.Errorf("unknown format %q", *format)
	}
}

// lifetimeReport is the machine-readable form of one lifetime run.
type lifetimeReport struct {
	Network            string          `json:"network"`
	Inputs             int             `json:"inputs"`
	Outputs            int             `json:"outputs"`
	Paths              int             `json:"pathsPerPair"`
	Mode               string          `json:"mode"`
	MTBF               float64         `json:"mtbf"`
	MTTR               float64         `json:"mttr"`
	Timing             string          `json:"timing"`
	BlastRate          float64         `json:"blastRate"`
	Load               float64         `json:"load"`
	Depth              int             `json:"depth"`
	Policy             string          `json:"policy"`
	Seed               uint64          `json:"seed"`
	Shards             int             `json:"shards"`
	EpochCycles        int             `json:"epochCycles"`
	Threshold          float64         `json:"threshold"`
	LifetimeBandwidth  float64         `json:"lifetimeBandwidthPerInput"`
	DeliveredFraction  float64         `json:"deliveredFraction"`
	TimeBelowThreshold float64         `json:"timeBelowThreshold"`
	RecoveryHalfLife   *float64        `json:"recoveryHalfLifeEpochs,omitempty"`
	Injected           int64           `json:"injected"`
	Refused            int64           `json:"refused"`
	Delivered          int64           `json:"delivered"`
	Dropped            int64           `json:"dropped"`
	Stranded           int64           `json:"stranded"`
	Epochs             []lifetimeEpoch `json:"epochs"`
	// Dilated-counterpart lifetime, present with -dilated.
	Dilated *dilatedLifetimeReport `json:"dilated,omitempty"`
}

type lifetimeEpoch struct {
	Epoch              int                   `json:"epoch"`
	DeadFraction       float64               `json:"deadFraction"`
	ThroughputPerInput float64               `json:"throughputPerInput"`
	ThroughputCI95     float64               `json:"throughputCI95"`
	ReachableFraction  float64               `json:"reachableFraction"`
	LatencyP99         float64               `json:"latencyP99"`
	ParkedPerCycle     float64               `json:"parkedPerCycle"`
	Dilated            *dilatedLifetimeEpoch `json:"dilated,omitempty"`
}

// dilatedLifetimeReport summarizes the measured counterpart's lifetime
// under the same churn clocks and traffic replay.
type dilatedLifetimeReport struct {
	Network            string   `json:"network"`
	Ports              int      `json:"ports"`
	DilatedWires       int64    `json:"dilatedWireCount"`
	EDNWires           int64    `json:"ednWireCount"`
	Threshold          float64  `json:"threshold"`
	LifetimeBandwidth  float64  `json:"lifetimeBandwidthPerInput"`
	DeliveredFraction  float64  `json:"deliveredFraction"`
	TimeBelowThreshold float64  `json:"timeBelowThreshold"`
	RecoveryHalfLife   *float64 `json:"recoveryHalfLifeEpochs,omitempty"`
	Injected           int64    `json:"injected"`
	Refused            int64    `json:"refused"`
	Delivered          int64    `json:"delivered"`
	Dropped            int64    `json:"dropped"`
	Stranded           int64    `json:"stranded"`
}

type dilatedLifetimeEpoch struct {
	DeadFraction       float64 `json:"deadFraction"`
	ThroughputPerInput float64 `json:"throughputPerInput"`
	ReachableFraction  float64 `json:"reachableFraction"`
	LatencyP99         float64 `json:"latencyP99"`
}
