package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunTable(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-a", "4", "-b", "4", "-c", "2", "-l", "2",
		"-epochs", "6", "-epoch-cycles", "40", "-mtbf", "10", "-mttr", "4",
		"-warmup", "40", "-shards", "2"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"EDN(4,4,2,2)", "thr/input", "deadfrac", "reachable", "lifetime:", "mtbf=10", "mode=wires"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Title + header + 6 epoch rows + lifetime summary (stranded line
	// only when packets strand; Drop at depth 4 with wire churn may or
	// may not, so allow 9 or 10).
	if got := strings.Count(out, "\n"); got != 9 && got != 10 {
		t.Errorf("expected 9-10 lines, got %d:\n%s", got, out)
	}
}

func TestRunDeterministicTimingAndBlast(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-a", "4", "-b", "4", "-c", "2", "-l", "2",
		"-epochs", "5", "-epoch-cycles", "30", "-mtbf", "8", "-mttr", "2",
		"-timing", "det", "-mode", "switches", "-blast-rate", "0.5", "-blast-radius", "1",
		"-warmup", "20", "-shards", "1"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "timing=deterministic") {
		t.Errorf("missing timing in header:\n%s", sb.String())
	}
}

func TestRunCSV(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-a", "4", "-b", "4", "-c", "2", "-l", "2",
		"-epochs", "4", "-epoch-cycles", "30", "-warmup", "20", "-shards", "2",
		"-format", "csv"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 {
		t.Fatalf("want header + 4 epoch rows, got %d lines:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "epoch,dead_fraction,throughput_per_input") {
		t.Errorf("unexpected csv header %q", lines[0])
	}
	for _, line := range lines[1:] {
		if got := strings.Count(line, ","); got != strings.Count(lines[0], ",") {
			t.Errorf("field count mismatch: %q", line)
		}
	}
}

func TestRunJSON(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-a", "4", "-b", "4", "-c", "2", "-l", "2",
		"-epochs", "4", "-epoch-cycles", "30", "-warmup", "20", "-shards", "2",
		"-seed", "9", "-format", "json"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	var rep lifetimeReport
	if err := json.Unmarshal([]byte(sb.String()), &rep); err != nil {
		t.Fatalf("invalid json: %v\n%s", err, sb.String())
	}
	if rep.Network != "EDN(4,4,2,2)" || len(rep.Epochs) != 4 || rep.Shards != 2 {
		t.Errorf("unexpected report shape: %+v", rep)
	}
	if rep.LifetimeBandwidth <= 0 {
		t.Errorf("lifetime bandwidth %g", rep.LifetimeBandwidth)
	}
	if rep.Injected != rep.Refused+rep.Delivered+rep.Dropped+rep.Stranded &&
		rep.Injected < rep.Refused+rep.Delivered+rep.Dropped+rep.Stranded {
		t.Errorf("conservation violated: %+v", rep)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-epochs", "0"},
		{"-mtbf", "0.5"},
		{"-load", "2"},
		{"-timing", "sometimes"},
		{"-mode", "gremlins"},
		{"-policy", "hope"},
		{"-format", "yaml"},
	} {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v should fail", args)
		}
	}
}

func TestRunDilatedComparison(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-a", "4", "-b", "4", "-c", "2", "-l", "3",
		"-epochs", "5", "-epoch-cycles", "40", "-mtbf", "10", "-mttr", "4",
		"-warmup", "20", "-shards", "2", "-dilated"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"dilated counterpart 2-dilated delta(b=4,l=2)",
		"dil-thr/in", "dil-p99", "dilated lifetime: thr=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunDilatedJSON(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-a", "4", "-b", "4", "-c", "2", "-l", "3",
		"-epochs", "4", "-epoch-cycles", "40", "-mtbf", "10", "-mttr", "4",
		"-warmup", "20", "-shards", "2", "-dilated", "-format", "json"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Dilated *struct {
			Network           string  `json:"network"`
			LifetimeBandwidth float64 `json:"lifetimeBandwidthPerInput"`
		} `json:"dilated"`
		Epochs []struct {
			Dilated *struct {
				ThroughputPerInput float64 `json:"throughputPerInput"`
			} `json:"dilated"`
		} `json:"epochs"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &report); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, sb.String())
	}
	if report.Dilated == nil || report.Dilated.LifetimeBandwidth <= 0 {
		t.Fatalf("dilated aggregate block missing or empty: %s", sb.String())
	}
	for i, e := range report.Epochs {
		if e.Dilated == nil {
			t.Fatalf("epoch %d missing dilated block", i)
		}
	}
}

// TestRunDilatedDeterministic: the paired lifetime is reproducible per
// (seed, shards).
func TestRunDilatedDeterministic(t *testing.T) {
	args := []string{"-a", "4", "-b", "4", "-c", "2", "-l", "3",
		"-epochs", "4", "-epoch-cycles", "40", "-mtbf", "10", "-mttr", "4",
		"-warmup", "20", "-shards", "2", "-dilated", "-seed", "7", "-format", "csv"}
	var a, b strings.Builder
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed, different output:\n%s\nvs\n%s", a.String(), b.String())
	}
}
