// Command edn-loop measures the closed-loop request/response workload:
// sources issue memory requests through a forward fabric, memory ports
// service them, replies return through a second fabric instance, and
// each source holds at most W requests in flight, re-issuing on timeout
// per a retry policy. The default mode sweeps demand rates and reports
// goodput, SLA attainment, end-to-end latency quantiles and the
// retry/timeout/give-up ledger; -lifetime runs the workload over a
// whole churned service life instead and reports the per-epoch
// availability series plus the SLA-weighted cost of downtime:
//
//	edn-loop -a 4 -b 4 -c 2 -l 3 -rates 0.2,0.4,0.6,0.8
//	edn-loop -a 4 -b 4 -c 2 -l 3 -dilated -retry backoff -format csv
//	edn-loop -a 4 -b 4 -c 2 -l 3 -lifetime -mtbf 32 -mttr 8 -format json
//	edn-loop -a 4 -b 4 -c 2 -l 3 -lifetime -dilated -repair-window 4
//
// With -dilated the equal-redundancy dilated counterpart runs the same
// sweep under the same shard seeding: the demand streams are replayed
// bit-for-bit (the harness asserts equal offered counts in the rate
// sweep), so any difference in goodput or tail latency is the fabric's
// doing, not the workload's. Runs are deterministic for a fixed
// (seed, shards) pair, except under -arb random with more than one
// shard (see cliutil.ArbiterFactory).
//
// Every run is an edn.JobSpec job executed through edn.Run — the rate
// sweep with -dilated is the single pair-engine job, the lifetime
// comparison two jobs: -dump-spec prints those specs as JSON instead
// of running them, and -spec file.json replays a saved spec — whatever
// its mode — and emits the JobResult as JSON, exactly as the edn-serve
// daemon would.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"edn"
	"edn/internal/cliutil"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "edn-loop:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("edn-loop", flag.ContinueOnError)
	a, b, c, l := cliutil.GeometryFlags(fs, 4, 4, 2, 3)
	ratesFlag := fs.String("rates", "0.2,0.4,0.6,0.8,1.0", "comma-separated demand rates to sweep (requests per source per cycle)")
	window := fs.Int("window", 4, "outstanding-request window per source")
	service := fs.Int("service", 1, "memory service cycles per request")
	timeout := fs.Int("timeout", 64, "cycles before an outstanding request times out")
	maxAttempts := fs.Int("max-attempts", 0, "attempts before giving a request up (0 = never)")
	retry := fs.String("retry", "backoff", "retry policy: immediate, backoff")
	backoffBase := fs.Int("backoff-base", 2, "backoff delay after the first timeout, cycles")
	backoffCap := fs.Int("backoff-cap", 64, "backoff delay ceiling, cycles")
	maxBacklog := fs.Int("max-backlog", 64, "demand arrivals queued per source before shedding")
	slaDeadline := fs.Float64("sla-deadline", 0, "SLA: zero credit past this end-to-end latency (0 = credit every completion)")
	slaZero := fs.Float64("sla-zero", 0, "SLA: full credit at or under this latency, linear decay to the deadline")
	depth := fs.Int("depth", 4, "per-wire FIFO depth (-1 unbounded, 0 unbuffered resubmission)")
	policy := fs.String("policy", "drop", "blocked-packet policy: backpressure, drop")
	cycles := fs.Int("cycles", 4000, "measured cycles per rate point (rate sweep)")
	warmup := fs.Int("warmup", 500, "warmup cycles per shard")
	shards := fs.Int("shards", 0, "parallel shards (0 = GOMAXPROCS)")
	seed := fs.Uint64("seed", 1, "RNG seed (demand, destinations, backoff jitter, churn)")
	arb := fs.String("arb", "priority", "arbitration: priority, roundrobin, random")
	format := fs.String("format", "table", "output: table, csv, json")
	dilatedCmp := cliutil.DilatedFlag(fs, "replay-matched closed-loop demand")
	lifetime := fs.Bool("lifetime", false, "run the workload over a churned service life instead of a rate sweep")
	epochs := fs.Int("epochs", 60, "lifetime: failure/repair epochs")
	epochCycles := fs.Int("epoch-cycles", 200, "lifetime: network cycles per epoch")
	rate := fs.Float64("rate", 0.5, "lifetime: demand rate per source per cycle")
	mtbf := fs.Float64("mtbf", 40, "lifetime: mean epochs between failures per component")
	mttr := fs.Float64("mttr", 10, "lifetime: mean epochs to repair a component")
	timing := fs.String("timing", "exponential", "lifetime: holding times: exponential, deterministic")
	mode := fs.String("mode", "wires", "lifetime: churning population: wires, switches, mixed")
	repairWindow := fs.Int("repair-window", 0, "lifetime: batch repairs to epoch-multiple maintenance windows (0/1 = immediate)")
	sf := cliutil.SpecFlags(fs)
	pf := cliutil.ProbeFlags(fs)
	prof := cliutil.ProfileFlags(fs)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}
	defer stopProf()

	if *sf.Path != "" {
		var spec edn.JobSpec
		if err := cliutil.LoadSpec(*sf.Path, &spec); err != nil {
			return err
		}
		res, err := edn.Run(context.Background(), spec)
		if err != nil {
			return err
		}
		return cliutil.WriteJSON(w, res)
	}

	cfg, err := edn.New(*a, *b, *c, *l)
	if err != nil {
		return err
	}
	var dcfg edn.DilatedDelta
	if *dilatedCmp {
		if dcfg, err = cliutil.DilatedCounterpart(cfg); err != nil {
			return err
		}
	}
	spec := edn.JobSpec{
		Geometry: &edn.GeometrySpec{A: *a, B: *b, C: *c, L: *l},
		Queue:    &edn.QueueSpec{Depth: *depth, Policy: *policy, Arbiter: *arb},
		Loop: &edn.ClosedLoopSpec{
			Window:        *window,
			ServiceCycles: *service,
			Timeout:       *timeout,
			MaxAttempts:   *maxAttempts,
			Retry:         *retry,
			BackoffBase:   *backoffBase,
			BackoffCap:    *backoffCap,
			MaxBacklog:    *maxBacklog,
			SLAZero:       *slaZero,
			SLADeadline:   *slaDeadline,
		},
		Probe: edn.NewProbeSpec(pf.Options()),
		Sim:   edn.SimSpec{Cycles: *cycles, Warmup: *warmup, Seed: *seed, Shards: *shards},
	}

	if *lifetime {
		faultMode, err := edn.ParseFaultMode(*mode)
		if err != nil {
			return err
		}
		lifeTiming, err := edn.ParseLifecycleTiming(*timing)
		if err != nil {
			return err
		}
		lspec := edn.LifecycleSpec{
			Mode:         faultMode,
			MTBF:         *mtbf,
			MTTR:         *mttr,
			Timing:       lifeTiming,
			RepairWindow: *repairWindow,
		}
		spec.Mode = edn.JobClosedLoopLifetime
		spec.Lifetime = &edn.LifetimeSpec{
			Epochs:       *epochs,
			EpochCycles:  *epochCycles,
			Load:         *rate,
			Mode:         *mode,
			MTBF:         *mtbf,
			MTTR:         *mttr,
			Timing:       *timing,
			RepairWindow: *repairWindow,
		}
		// The lifetime comparison is two jobs: the same churned life on
		// each engine under the same shard seeding.
		specs := []edn.JobSpec{spec}
		if *dilatedCmp {
			dspec := spec
			dspec.Engine = edn.EngineDilated
			specs = append(specs, dspec)
		}
		if *sf.Dump {
			for _, s := range specs {
				if err := cliutil.WriteJSON(w, s); err != nil {
					return err
				}
			}
			return nil
		}
		out, err := edn.Run(context.Background(), spec)
		if err != nil {
			return err
		}
		res := *out.ClosedLoopLifetime
		var dres edn.ClosedLoopLifetimeResult
		if *dilatedCmp {
			dout, err := edn.Run(context.Background(), specs[1])
			if err != nil {
				return err
			}
			dres = *dout.ClosedLoopLifetime
		}
		return renderLifetime(w, cfg, dcfg, *dilatedCmp, spec, lspec, res, dres, *format, pf)
	}

	rates, err := cliutil.ParseFloatList(*ratesFlag, 0, 1, "rate")
	if err != nil {
		return err
	}
	spec.Mode = edn.JobClosedLoop
	spec.Rates = rates
	if *dilatedCmp {
		// The paired comparison is one job on the pair engine: both
		// networks run replay-matched inside a single barriered sweep.
		spec.Engine = edn.EnginePair
	}
	if *sf.Dump {
		return cliutil.WriteJSON(w, spec)
	}
	out, err := edn.Run(context.Background(), spec)
	if err != nil {
		return err
	}
	return renderSweep(w, cfg, dcfg, *dilatedCmp, spec, out.ClosedLoop, out.DilatedClosedLoop, *format, pf)
}

func renderSweep(w io.Writer, cfg edn.Config, dcfg edn.DilatedDelta, dilatedCmp bool, spec edn.JobSpec, results, dresults []edn.ClosedLoopResult, format string, pf *cliutil.ProbeFlagSet) error {
	rates := spec.Rates
	cols := []cliutil.Column{
		{Name: "rate", Format: "%5.2f"},
		{Name: "offered_per_source", Head: "offered", Format: "%8.3f"},
		{Name: "goodput_per_source", Head: "goodput", Format: "%8.3f"},
		{Name: "sla_attainment", Head: "sla", Format: "%6.3f"},
		{Name: "latency_p50", Head: "p50", Format: "%6.0f"},
		{Name: "latency_p95", Head: "p95", Format: "%6.0f"},
		{Name: "latency_p99", CSVOnly: true},
		{Name: "retries", Format: "%8d"},
		{Name: "timeouts", CSVOnly: true},
		{Name: "givenup", Head: "givenup", Format: "%8d"},
		{Name: "shed", CSVOnly: true},
	}
	if dilatedCmp {
		cols = append(cols,
			cliutil.Column{Name: "dilated_goodput_per_source", Head: "dil-goodput", Format: "%12.3f"},
			cliutil.Column{Name: "dilated_sla_attainment", Head: "dil-sla", Format: "%8.3f"},
			cliutil.Column{Name: "dilated_latency_p95", Head: "dil-p95", Format: "%8.0f"},
			cliutil.Column{Name: "dilated_retries", CSVOnly: true},
		)
	}
	rows := make([][]any, len(results))
	for i, r := range results {
		rows[i] = []any{
			r.Rate, r.OfferedRate, r.Goodput, r.SLAAttainment,
			r.LatencyP50, r.LatencyP95, r.LatencyP99,
			r.Ledger.Retries, r.Ledger.Timeouts, r.Ledger.GivenUp, r.Ledger.Shed,
		}
		if dilatedCmp {
			d := dresults[i]
			rows[i] = append(rows[i], d.Goodput, d.SLAAttainment, d.LatencyP95, d.Ledger.Retries)
		}
	}
	switch format {
	case "table":
		fmt.Fprintf(w, "%v closed loop — %d sources, %d memory ports, W=%d, timeout=%d, retry=%s, depth=%d, policy=%v\n",
			cfg, cfg.Inputs(), cfg.Outputs(), spec.Loop.Window, spec.Loop.Timeout, spec.Loop.Retry, spec.Queue.Depth, spec.Queue.Policy)
		if dilatedCmp {
			cliutil.DilatedHeader(w, cfg, dcfg)
		}
		if err := cliutil.WriteTable(w, cols, rows); err != nil {
			return err
		}
		if pf.Enabled() {
			for i, r := range results {
				fmt.Fprintf(w, "probe @ rate=%g\n", rates[i])
				if err := cliutil.WriteProbeReport(w, r.Observed, *pf.Heatmap); err != nil {
					return err
				}
			}
		}
		return nil
	case "csv":
		return cliutil.WriteCSV(w, cols, rows)
	case "json":
		report := sweepReport{
			Network: cfg.String(),
			Inputs:  cfg.Inputs(),
			Outputs: cfg.Outputs(),
			Window:  spec.Loop.Window,
			Timeout: spec.Loop.Timeout,
			Retry:   spec.Loop.Retry,
			Seed:    spec.Sim.Seed,
			Points:  sweepPoints(results),
		}
		if dilatedCmp {
			report.DilatedNetwork = dcfg.String()
			report.Dilated = sweepPoints(dresults)
		}
		return cliutil.WriteJSON(w, report)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

func renderLifetime(w io.Writer, cfg edn.Config, dcfg edn.DilatedDelta, dilatedCmp bool, spec edn.JobSpec, lspec edn.LifecycleSpec, res, dres edn.ClosedLoopLifetimeResult, format string, pf *cliutil.ProbeFlagSet) error {
	cols := []cliutil.Column{
		{Name: "epoch", Format: "%5d"},
		{Name: "dead_fraction", Head: "deadfrac", Format: "%9.3f"},
		{Name: "reachable_fraction", Head: "reachable", Format: "%10.3f"},
		{Name: "goodput_per_source", Head: "goodput", Format: "%8.3f"},
		{Name: "sla_attainment", Head: "sla", Format: "%6.3f"},
		{Name: "latency_p95", Head: "p95", Format: "%6.0f"},
		{Name: "retries_per_source", Head: "retries", Format: "%8.4f"},
		{Name: "timeouts_per_source", CSVOnly: true},
	}
	if dilatedCmp {
		cols = append(cols,
			cliutil.Column{Name: "dilated_goodput_per_source", Head: "dil-goodput", Format: "%12.3f"},
			cliutil.Column{Name: "dilated_sla_attainment", Head: "dil-sla", Format: "%8.3f"},
			cliutil.Column{Name: "dilated_latency_p95", CSVOnly: true},
		)
	}
	rows := make([][]any, spec.Lifetime.Epochs)
	for e := 0; e < spec.Lifetime.Epochs; e++ {
		rows[e] = []any{
			e, res.DeadFraction.Mean(e), res.Reachable.Mean(e),
			res.Goodput.Mean(e), res.SLAAttainment.Mean(e),
			res.LatencyP95.Mean(e), res.Retries.Mean(e), res.Timeouts.Mean(e),
		}
		if dilatedCmp {
			rows[e] = append(rows[e],
				dres.Goodput.Mean(e), dres.SLAAttainment.Mean(e), dres.LatencyP95.Mean(e))
		}
	}
	switch format {
	case "table":
		fmt.Fprintf(w, "%v closed loop lifetime — mtbf=%g mttr=%g (steady-state dead %.1f%%), rate=%g, W=%d, retry=%s, repair-window=%d\n",
			cfg, spec.Lifetime.MTBF, spec.Lifetime.MTTR, 100*lspec.DeadFractionSteadyState(),
			spec.Lifetime.Load, spec.Loop.Window, spec.Loop.Retry, spec.Lifetime.RepairWindow)
		if dilatedCmp {
			cliutil.DilatedHeader(w, cfg, dcfg)
		}
		if err := cliutil.WriteTable(w, cols, rows); err != nil {
			return err
		}
		fmt.Fprintf(w, "lifetime: goodput=%.3f/source sla=%.3f downtime-cost=%.1f%% retries=%d timeouts=%d givenup=%d\n",
			res.GoodputOverall, res.SLAAttainmentOverall, 100*res.CostOfDowntime,
			res.Ledger.Retries, res.Ledger.Timeouts, res.Ledger.GivenUp)
		if dilatedCmp {
			fmt.Fprintf(w, "dilated lifetime: goodput=%.3f/source sla=%.3f downtime-cost=%.1f%% retries=%d timeouts=%d givenup=%d\n",
				dres.GoodputOverall, dres.SLAAttainmentOverall, 100*dres.CostOfDowntime,
				dres.Ledger.Retries, dres.Ledger.Timeouts, dres.Ledger.GivenUp)
		}
		if pf.Enabled() {
			if err := cliutil.WriteProbeReport(w, res.Observed, *pf.Heatmap); err != nil {
				return err
			}
			if dilatedCmp {
				fmt.Fprintln(w, "dilated probe:")
				if err := cliutil.WriteProbeReport(w, dres.Observed, *pf.Heatmap); err != nil {
					return err
				}
			}
		}
		return nil
	case "csv":
		return cliutil.WriteCSV(w, cols, rows)
	case "json":
		report := lifetimeReport{
			Network:        cfg.String(),
			MTBF:           spec.Lifetime.MTBF,
			MTTR:           spec.Lifetime.MTTR,
			RepairWindow:   spec.Lifetime.RepairWindow,
			Rate:           spec.Lifetime.Load,
			Window:         spec.Loop.Window,
			Retry:          spec.Loop.Retry,
			Seed:           spec.Sim.Seed,
			Goodput:        res.GoodputOverall,
			SLAAttainment:  res.SLAAttainmentOverall,
			CostOfDowntime: res.CostOfDowntime,
			Ledger:         res.Ledger,
		}
		for e := 0; e < spec.Lifetime.Epochs; e++ {
			le := lifetimeEpoch{
				Epoch:         e,
				DeadFraction:  res.DeadFraction.Mean(e),
				Reachable:     res.Reachable.Mean(e),
				Goodput:       res.Goodput.Mean(e),
				SLAAttainment: res.SLAAttainment.Mean(e),
				LatencyP95:    res.LatencyP95.Mean(e),
				Retries:       res.Retries.Mean(e),
				Timeouts:      res.Timeouts.Mean(e),
			}
			report.Epochs = append(report.Epochs, le)
		}
		if dilatedCmp {
			report.Dilated = &dilatedLifetime{
				Network:        dcfg.String(),
				Goodput:        dres.GoodputOverall,
				SLAAttainment:  dres.SLAAttainmentOverall,
				CostOfDowntime: dres.CostOfDowntime,
				Ledger:         dres.Ledger,
			}
		}
		return cliutil.WriteJSON(w, report)
	default:
		return fmt.Errorf("unknown format %q", format)
	}
}

// sweepReport is the machine-readable rate sweep.
type sweepReport struct {
	Network        string       `json:"network"`
	Inputs         int          `json:"inputs"`
	Outputs        int          `json:"outputs"`
	Window         int          `json:"window"`
	Timeout        int          `json:"timeout"`
	Retry          string       `json:"retry"`
	Seed           uint64       `json:"seed"`
	Points         []sweepPoint `json:"points"`
	DilatedNetwork string       `json:"dilatedNetwork,omitempty"`
	Dilated        []sweepPoint `json:"dilated,omitempty"`
}

type sweepPoint struct {
	Rate          float64              `json:"rate"`
	OfferedRate   float64              `json:"offeredPerSource"`
	Goodput       float64              `json:"goodputPerSource"`
	SLAAttainment float64              `json:"slaAttainment"`
	LatencyMean   float64              `json:"latencyMean"`
	LatencyP50    float64              `json:"latencyP50"`
	LatencyP95    float64              `json:"latencyP95"`
	LatencyP99    float64              `json:"latencyP99"`
	Ledger        edn.ClosedLoopLedger `json:"ledger"`
}

func sweepPoints(results []edn.ClosedLoopResult) []sweepPoint {
	pts := make([]sweepPoint, len(results))
	for i, r := range results {
		pts[i] = sweepPoint{
			Rate: r.Rate, OfferedRate: r.OfferedRate,
			Goodput: r.Goodput, SLAAttainment: r.SLAAttainment,
			LatencyMean: r.LatencyMean, LatencyP50: r.LatencyP50,
			LatencyP95: r.LatencyP95, LatencyP99: r.LatencyP99,
			Ledger: r.Ledger,
		}
	}
	return pts
}

// lifetimeReport is the machine-readable churned lifetime.
type lifetimeReport struct {
	Network        string               `json:"network"`
	MTBF           float64              `json:"mtbf"`
	MTTR           float64              `json:"mttr"`
	RepairWindow   int                  `json:"repairWindow"`
	Rate           float64              `json:"rate"`
	Window         int                  `json:"window"`
	Retry          string               `json:"retry"`
	Seed           uint64               `json:"seed"`
	Goodput        float64              `json:"goodputPerSource"`
	SLAAttainment  float64              `json:"slaAttainment"`
	CostOfDowntime float64              `json:"costOfDowntime"`
	Ledger         edn.ClosedLoopLedger `json:"ledger"`
	Epochs         []lifetimeEpoch      `json:"epochs"`
	Dilated        *dilatedLifetime     `json:"dilated,omitempty"`
}

type lifetimeEpoch struct {
	Epoch         int     `json:"epoch"`
	DeadFraction  float64 `json:"deadFraction"`
	Reachable     float64 `json:"reachableFraction"`
	Goodput       float64 `json:"goodputPerSource"`
	SLAAttainment float64 `json:"slaAttainment"`
	LatencyP95    float64 `json:"latencyP95"`
	Retries       float64 `json:"retriesPerSource"`
	Timeouts      float64 `json:"timeoutsPerSource"`
}

type dilatedLifetime struct {
	Network        string               `json:"network"`
	Goodput        float64              `json:"goodputPerSource"`
	SLAAttainment  float64              `json:"slaAttainment"`
	CostOfDowntime float64              `json:"costOfDowntime"`
	Ledger         edn.ClosedLoopLedger `json:"ledger"`
}
