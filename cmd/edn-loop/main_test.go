package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunSweepTable(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-a", "4", "-b", "2", "-c", "2", "-l", "2",
		"-rates", "0.3,0.6", "-cycles", "400", "-warmup", "50", "-shards", "2",
		"-dilated"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"EDN(4,2,2,2)", "closed loop", "goodput", "sla", "retries", "dil-goodput", "dilated counterpart"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Title + dilated header + column header + 2 rate rows.
	if got := strings.Count(out, "\n"); got != 5 {
		t.Errorf("expected 5 lines, got %d:\n%s", got, out)
	}
}

func TestRunSweepCSVAndJSON(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-a", "4", "-b", "2", "-c", "2", "-l", "2",
		"-rates", "0.4", "-cycles", "300", "-warmup", "50", "-shards", "2",
		"-retry", "immediate", "-format", "csv"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want header + 1 rate row, got %d lines:\n%s", len(lines), sb.String())
	}
	if !strings.HasPrefix(lines[0], "rate,offered_per_source,goodput_per_source") {
		t.Errorf("unexpected csv header %q", lines[0])
	}

	sb.Reset()
	err = run([]string{"-a", "4", "-b", "2", "-c", "2", "-l", "2",
		"-rates", "0.4", "-cycles", "300", "-warmup", "50", "-shards", "2",
		"-sla-deadline", "48", "-format", "json"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Network string `json:"network"`
		Points  []struct {
			Rate    float64 `json:"rate"`
			Goodput float64 `json:"goodputPerSource"`
			SLA     float64 `json:"slaAttainment"`
		} `json:"points"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &report); err != nil {
		t.Fatalf("bad json: %v\n%s", err, sb.String())
	}
	if report.Network != "EDN(4,2,2,2)" || len(report.Points) != 1 {
		t.Fatalf("unexpected report: %+v", report)
	}
	if p := report.Points[0]; p.Goodput <= 0 || p.SLA <= 0 || p.SLA > 1 {
		t.Errorf("implausible point: %+v", p)
	}
}

func TestRunLifetime(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-a", "4", "-b", "2", "-c", "2", "-l", "2",
		"-lifetime", "-epochs", "5", "-epoch-cycles", "40", "-mtbf", "10", "-mttr", "3",
		"-repair-window", "2", "-rate", "0.4", "-warmup", "40", "-shards", "2",
		"-dilated"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"closed loop lifetime", "repair-window=2", "downtime-cost=", "dilated lifetime:", "deadfrac", "goodput"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Title + dilated header + column header + 5 epoch rows + 2 summaries.
	if got := strings.Count(out, "\n"); got != 10 {
		t.Errorf("expected 10 lines, got %d:\n%s", got, out)
	}
}

func TestRunLifetimeJSON(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-a", "4", "-b", "2", "-c", "2", "-l", "2",
		"-lifetime", "-epochs", "4", "-epoch-cycles", "40", "-mtbf", "10", "-mttr", "3",
		"-rate", "0.4", "-warmup", "40", "-shards", "1", "-format", "json"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Network string  `json:"network"`
		Cost    float64 `json:"costOfDowntime"`
		Epochs  []struct {
			DeadFraction float64 `json:"deadFraction"`
		} `json:"epochs"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &report); err != nil {
		t.Fatalf("bad json: %v\n%s", err, sb.String())
	}
	if len(report.Epochs) != 4 {
		t.Fatalf("want 4 epochs, got %d", len(report.Epochs))
	}
	if report.Cost < 0 || report.Cost >= 1 {
		t.Errorf("cost of downtime %g outside [0,1)", report.Cost)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-a", "3", "-b", "2", "-c", "2", "-l", "2"},          // invalid geometry
		{"-retry", "never"},                                   // unknown retry policy
		{"-rates", "1.5"},                                     // rate out of range
		{"-format", "xml", "-rates", "0.4", "-cycles", "100"}, // unknown format
		{"-lifetime", "-epochs", "0"},                         // zero epochs
		{"-lifetime", "-repair-window", "-2", "-epochs", "3"}, // negative window
		{"-lifetime", "-rate", "1.5", "-epochs", "3"},         // demand above 1
	} {
		var sb strings.Builder
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v should have failed", args)
		}
	}
}
