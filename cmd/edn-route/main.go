// Command edn-route traces a single message through an EDN(a,b,c,l),
// showing the Lemma 1 walk stage by stage — which switch, which digit is
// retired, which bucket and wire, and the interstage permutation:
//
//	edn-route -a 64 -b 16 -c 4 -l 2 -src 631 -dst 422
//	edn-route -a 64 -b 16 -c 4 -l 2 -src 0 -dst 0 -choices 1,3
//	edn-route -a 64 -b 16 -c 4 -l 2 -src 5 -dst 5 -order reversed
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"edn"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "edn-route:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("edn-route", flag.ContinueOnError)
	a := fs.Int("a", 64, "hyperbar inputs")
	b := fs.Int("b", 16, "hyperbar output buckets")
	c := fs.Int("c", 4, "bucket capacity")
	l := fs.Int("l", 2, "hyperbar stages")
	src := fs.Int("src", 0, "source terminal")
	dst := fs.Int("dst", 0, "destination terminal")
	choicesArg := fs.String("choices", "", "comma-separated per-stage wire choices in [0,c) (default: all zero)")
	order := fs.String("order", "standard", "digit retirement order: standard or reversed (Corollary 2)")
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := edn.New(*a, *b, *c, *l)
	if err != nil {
		return err
	}
	var choices []int
	if *choicesArg != "" {
		for _, part := range strings.Split(*choicesArg, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad wire choice %q: %w", part, err)
			}
			choices = append(choices, v)
		}
	}

	tag, err := edn.EncodeTag(cfg, *dst)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%v: %d inputs, %d outputs, %d paths per source/destination pair\n",
		cfg, cfg.Inputs(), cfg.Outputs(), cfg.PathCount())
	fmt.Fprintf(w, "destination tag %v\n", tag)

	switch *order {
	case "standard":
		tr, err := edn.TraceRoute(cfg, *src, *dst, choices)
		if err != nil {
			return err
		}
		fmt.Fprint(w, tr.String())
	case "reversed":
		ro := edn.ReversedOrder(cfg)
		f, err := ro.F(*dst)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "reversed retirement (%v): network delivers to F(%d) = %d;\n", ro, *dst, f)
		fmt.Fprintf(w, "the Figure 6 compensating output permutation maps it back to %d\n", *dst)
		tr, err := edn.TraceRoute(cfg, *src, f, choices)
		if err != nil {
			return err
		}
		fmt.Fprint(w, tr.String())
	default:
		return fmt.Errorf("unknown order %q (want standard or reversed)", *order)
	}
	return nil
}
