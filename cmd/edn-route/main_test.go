package main

import (
	"strings"
	"testing"
)

func TestRunStandardTrace(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-src", "631", "-dst", "422"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"EDN(64,16,4,2)", "destination tag", "stage 1", "crossbar", "route 631 -> 422"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestRunWithChoices(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-src", "0", "-dst", "10", "-choices", "1,3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wire 3") {
		t.Errorf("choice not honored:\n%s", sb.String())
	}
}

func TestRunReversedOrder(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-src", "5", "-dst", "5", "-order", "reversed"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "compensating output permutation") {
		t.Errorf("reversed order output missing compensation note:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-choices", "x"}, &sb); err == nil {
		t.Error("expected bad choice error")
	}
	if err := run([]string{"-order", "sideways"}, &sb); err == nil {
		t.Error("expected unknown order error")
	}
	if err := run([]string{"-dst", "99999"}, &sb); err == nil {
		t.Error("expected destination range error")
	}
	if err := run([]string{"-flagless"}, &sb); err == nil {
		t.Error("expected flag parse error")
	}
}

func TestRunCustomGeometry(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-a", "4", "-b", "4", "-c", "2", "-l", "3", "-src", "7", "-dst", "100"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"EDN(4,4,2,3)", "16 inputs", "128 outputs", "8 paths", "route 7 -> 100"} {
		if !strings.Contains(out, want) {
			t.Errorf("custom geometry trace missing %q:\n%s", want, out)
		}
	}
	// Every hyperbar stage plus the crossbar appears in the walk.
	for _, stage := range []string{"stage 1", "stage 2", "stage 3", "crossbar"} {
		if !strings.Contains(out, stage) {
			t.Errorf("trace missing %q:\n%s", stage, out)
		}
	}
}

func TestRunChoicesValidation(t *testing.T) {
	// A wire choice outside [0, c) must be rejected, as must more
	// choices than hyperbar stages.
	var sb strings.Builder
	if err := run([]string{"-src", "0", "-dst", "1", "-choices", "9"}, &sb); err == nil {
		t.Error("out-of-range wire choice accepted")
	}
	if err := run([]string{"-src", "0", "-dst", "1", "-choices", "0,0,0,0,0"}, &sb); err == nil {
		t.Error("too many wire choices accepted")
	}
}

func TestRunSourceRangeError(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-src", "99999", "-dst", "0"}, &sb); err == nil {
		t.Error("out-of-range source accepted")
	}
	if err := run([]string{"-src", "-1", "-dst", "0"}, &sb); err == nil {
		t.Error("negative source accepted")
	}
}

func TestRunReversedOrderDeliversToF(t *testing.T) {
	// With reversed retirement the physical delivery terminal F(dst)
	// generally differs from dst; the compensation line must name both.
	var sb strings.Builder
	if err := run([]string{"-a", "4", "-b", "4", "-c", "2", "-l", "3", "-src", "0", "-dst", "3", "-order", "reversed"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "maps it back to 3") {
		t.Errorf("reversed order output missing the compensation target:\n%s", out)
	}
}
