package main

import (
	"strings"
	"testing"
)

func TestRunStandardTrace(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-src", "631", "-dst", "422"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"EDN(64,16,4,2)", "destination tag", "stage 1", "crossbar", "route 631 -> 422"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %q:\n%s", want, out)
		}
	}
}

func TestRunWithChoices(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-src", "0", "-dst", "10", "-choices", "1,3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "wire 3") {
		t.Errorf("choice not honored:\n%s", sb.String())
	}
}

func TestRunReversedOrder(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-src", "5", "-dst", "5", "-order", "reversed"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "compensating output permutation") {
		t.Errorf("reversed order output missing compensation note:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-choices", "x"}, &sb); err == nil {
		t.Error("expected bad choice error")
	}
	if err := run([]string{"-order", "sideways"}, &sb); err == nil {
		t.Error("expected unknown order error")
	}
	if err := run([]string{"-dst", "99999"}, &sb); err == nil {
		t.Error("expected destination range error")
	}
	if err := run([]string{"-flagless"}, &sb); err == nil {
		t.Error("expected flag parse error")
	}
}
