// Command edn-serve is the long-lived simulation service: it keeps
// built routing tables and compiled fault masks cached across
// requests, schedules JobSpec jobs over a bounded worker pool, and
// streams per-point results as sweeps progress — the daemon role in a
// co-simulation arrangement where an external system-level simulator
// (or a sweep harness) asks this repository for network timing instead
// of forking a CLI per question.
//
// By default it speaks the JSON-line protocol on stdin/stdout:
//
//	echo '{"id":"j1","op":"run","spec":{"mode":"latency",
//	  "geometry":{"a":16,"b":4,"c":4,"l":2},"sim":{"cycles":2000}}}' | edn-serve
//
// With -http it (also) serves the HTTP API:
//
//	edn-serve -http :8080 &
//	curl -s -d @spec.json localhost:8080/v1/jobs      # NDJSON event stream
//	curl -s localhost:8080/v1/stats                   # scheduler + cache counters
//	curl -s localhost:8080/metrics                    # Prometheus text
//
// The JSON-line grammar and the event stream are documented in
// internal/serve; specs are the same edn.JobSpec every sweep CLI can
// emit with -dump-spec, so any CLI run replays through the daemon
// byte-identically (results are pinned bit-for-bit to the facade
// functions, cache hits included).
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"edn/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "edn-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("edn-serve", flag.ContinueOnError)
	httpAddr := fs.String("http", "", "serve the HTTP API on this address (e.g. :8080); empty = stdio only")
	stdio := fs.Bool("stdio", true, "speak the JSON-line protocol on stdin/stdout")
	workers := fs.Int("workers", 0, "concurrently running jobs (0 = GOMAXPROCS); excess jobs queue")
	cacheBytes := fs.Int64("cache-bytes", 0, "geometry/mask cache budget in bytes (0 = 256 MiB)")
	spans := fs.Bool("spans", true, "record a span tree per job, delivered on the terminal event")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (requires -http)")
	logOn := fs.Bool("log", false, "emit structured JSON job-completion logs on stderr")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*stdio && *httpAddr == "" {
		return fmt.Errorf("nothing to serve: enable -stdio or set -http")
	}
	if *pprofOn && *httpAddr == "" {
		return fmt.Errorf("-pprof needs -http: profiles are served over the HTTP API")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var logger *slog.Logger
	if *logOn {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}
	srv := serve.New(serve.Options{
		Workers:      *workers,
		CacheBytes:   *cacheBytes,
		DisableSpans: !*spans,
		Pprof:        *pprofOn,
		Log:          logger,
	})

	errc := make(chan error, 2)
	if *httpAddr != "" {
		hs := &http.Server{Addr: *httpAddr, Handler: srv.Handler()}
		go func() { errc <- hs.ListenAndServe() }()
		go func() {
			<-ctx.Done()
			hs.Shutdown(context.Background()) //nolint:errcheck
		}()
		fmt.Fprintf(os.Stderr, "edn-serve: http on %s\n", *httpAddr)
	}
	if *stdio {
		go func() { errc <- srv.ServeStdio(ctx, os.Stdin, os.Stdout) }()
	}

	select {
	case err := <-errc:
		if err == http.ErrServerClosed || err == context.Canceled {
			return nil
		}
		return err
	case <-ctx.Done():
		srv.CancelAll()
		return nil
	}
}
