// Command edn-sim runs a Monte-Carlo measurement of an arbitrary
// EDN(a,b,c,l) under a chosen traffic pattern and compares the result
// with the paper's closed forms:
//
//	edn-sim -a 64 -b 16 -c 4 -l 2 -r 1 -cycles 1000
//	edn-sim -a 16 -b 4 -c 4 -l 2 -traffic permutation
//	edn-sim -a 16 -b 4 -c 4 -l 3 -traffic hotspot -hot-fraction 0.2
//	edn-sim -a 16 -b 4 -c 4 -l 2 -traffic identity -arb roundrobin
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"edn"
	"edn/internal/switchfab"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "edn-sim:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("edn-sim", flag.ContinueOnError)
	a := fs.Int("a", 64, "hyperbar inputs")
	b := fs.Int("b", 16, "hyperbar output buckets")
	c := fs.Int("c", 4, "bucket capacity")
	l := fs.Int("l", 2, "hyperbar stages")
	r := fs.Float64("r", 1, "offered request rate (uniform/hotspot traffic)")
	cycles := fs.Int("cycles", 1000, "cycles to simulate")
	seed := fs.Uint64("seed", 1, "RNG seed")
	pattern := fs.String("traffic", "uniform", "traffic: uniform, permutation, partial, hotspot, identity, bitreversal")
	hotFraction := fs.Float64("hot-fraction", 0.1, "fraction of requests aimed at output 0 (hotspot traffic)")
	arb := fs.String("arb", "priority", "arbitration: priority, roundrobin, random")
	asJSON := fs.Bool("json", false, "emit the result as JSON instead of text")
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := edn.New(*a, *b, *c, *l)
	if err != nil {
		return err
	}
	opts := edn.SimOptions{Cycles: *cycles, Seed: *seed}
	switch *arb {
	case "priority":
		// default
	case "roundrobin":
		opts.Factory = func() switchfab.Arbiter { return &switchfab.RoundRobinArbiter{} }
	case "random":
		rng := edn.NewRand(*seed + 0x9e37)
		opts.Factory = func() switchfab.Arbiter {
			s := rng.Split()
			return switchfab.RandomArbiter{Perm: s.Perm}
		}
	default:
		return fmt.Errorf("unknown arbitration %q", *arb)
	}

	rng := edn.NewRand(*seed)
	var pat edn.Pattern
	switch *pattern {
	case "uniform":
		pat = edn.Uniform{Rate: *r, Rng: rng}
	case "permutation":
		pat = &edn.RandomPermutation{Rng: rng}
	case "partial":
		pat = &edn.PartialPermutation{Rate: *r, Rng: rng}
	case "hotspot":
		pat = edn.HotSpot{Rate: *r, Fraction: *hotFraction, Hot: 0, Rng: rng}
	case "identity":
		pat = edn.IdentityPattern(cfg.Inputs())
	case "bitreversal":
		fp, err := edn.BitReversalPattern(cfg.Inputs())
		if err != nil {
			return err
		}
		pat = fp
	default:
		return fmt.Errorf("unknown traffic %q", *pattern)
	}

	res, err := edn.MeasurePA(cfg, pat, opts)
	if err != nil {
		return err
	}
	if *asJSON {
		report := jsonReport{
			Network:         cfg.String(),
			Inputs:          cfg.Inputs(),
			Outputs:         cfg.Outputs(),
			Paths:           cfg.PathCount(),
			Crosspoints:     cfg.CrosspointCount(),
			Wires:           cfg.WireCount(),
			Traffic:         res.Pattern,
			Cycles:          res.Cycles,
			Arbitration:     *arb,
			Seed:            *seed,
			MeasuredPA:      res.PA,
			PAConfidence:    res.PACI,
			Bandwidth:       res.Bandwidth,
			OfferedRate:     res.OfferedRate,
			BlockedPerStage: res.BlockedPerStage,
		}
		if *pattern == "uniform" {
			pa := edn.PA(cfg, *r)
			report.ModelPA = &pa
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}
	fmt.Fprintf(w, "%v — %d inputs, %d outputs, %d paths/pair, %d crosspoints, %d wires\n",
		cfg, cfg.Inputs(), cfg.Outputs(), cfg.PathCount(), cfg.CrosspointCount(), cfg.WireCount())
	fmt.Fprintf(w, "traffic %s, %d cycles, %s arbitration, seed %d\n", res.Pattern, res.Cycles, *arb, *seed)
	fmt.Fprintf(w, "  measured  PA = %.4f (+-%.4f), bandwidth = %.1f req/cycle, offered rate = %.4f\n",
		res.PA, res.PACI, res.Bandwidth, res.OfferedRate)
	fmt.Fprintf(w, "  blocked per stage: %v\n", res.BlockedPerStage)
	switch *pattern {
	case "uniform":
		fmt.Fprintf(w, "  Equation 4    PA = %.4f (iid uniform model)\n", edn.PA(cfg, *r))
	case "permutation", "partial", "identity", "bitreversal":
		fmt.Fprintf(w, "  Equation 5    PAp = %.4f (permutation model at measured rate)\n",
			edn.PAPermutation(cfg, res.OfferedRate))
	}
	return nil
}

// jsonReport is the machine-readable form of one measurement run.
type jsonReport struct {
	Network         string   `json:"network"`
	Inputs          int      `json:"inputs"`
	Outputs         int      `json:"outputs"`
	Paths           int      `json:"pathsPerPair"`
	Crosspoints     int64    `json:"crosspoints"`
	Wires           int64    `json:"wires"`
	Traffic         string   `json:"traffic"`
	Cycles          int      `json:"cycles"`
	Arbitration     string   `json:"arbitration"`
	Seed            uint64   `json:"seed"`
	MeasuredPA      float64  `json:"measuredPA"`
	PAConfidence    float64  `json:"paConfidence95"`
	Bandwidth       float64  `json:"bandwidthPerCycle"`
	OfferedRate     float64  `json:"offeredRate"`
	BlockedPerStage []int    `json:"blockedPerStage"`
	ModelPA         *float64 `json:"equation4PA,omitempty"`
}
