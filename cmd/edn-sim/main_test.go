package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRunUniform(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-a", "16", "-b", "4", "-c", "4", "-l", "2", "-cycles", "50"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"EDN(16,4,4,2)", "measured", "Equation 4", "blocked per stage"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunPermutationTraffic(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-a", "16", "-b", "4", "-c", "4", "-l", "2", "-traffic", "permutation", "-cycles", "20"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "Equation 5") {
		t.Errorf("permutation run should cite Equation 5:\n%s", sb.String())
	}
}

func TestRunEveryTrafficKind(t *testing.T) {
	for _, traffic := range []string{"uniform", "permutation", "partial", "hotspot", "identity", "bitreversal"} {
		var sb strings.Builder
		err := run([]string{"-a", "16", "-b", "4", "-c", "4", "-l", "2", "-traffic", traffic, "-cycles", "10"}, &sb)
		if err != nil {
			t.Errorf("traffic %s: %v", traffic, err)
		}
	}
}

func TestRunEveryArbiter(t *testing.T) {
	for _, arb := range []string{"priority", "roundrobin", "random"} {
		var sb strings.Builder
		err := run([]string{"-a", "16", "-b", "4", "-c", "4", "-l", "2", "-arb", arb, "-cycles", "10"}, &sb)
		if err != nil {
			t.Errorf("arb %s: %v", arb, err)
		}
	}
}

func TestRunJSONOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-a", "16", "-b", "4", "-c", "4", "-l", "2", "-cycles", "20", "-json"}, &sb); err != nil {
		t.Fatal(err)
	}
	var report struct {
		Network     string   `json:"network"`
		MeasuredPA  float64  `json:"measuredPA"`
		Equation4PA *float64 `json:"equation4PA"`
		Blocked     []int    `json:"blockedPerStage"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &report); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, sb.String())
	}
	if report.Network != "EDN(16,4,4,2)" {
		t.Errorf("network = %q", report.Network)
	}
	if report.MeasuredPA <= 0 || report.MeasuredPA > 1 {
		t.Errorf("measuredPA = %g", report.MeasuredPA)
	}
	if report.Equation4PA == nil {
		t.Error("uniform run should include equation4PA")
	}
	if len(report.Blocked) != 3 {
		t.Errorf("blockedPerStage = %v", report.Blocked)
	}

	// Non-uniform traffic omits the Equation 4 reference.
	sb.Reset()
	if err := run([]string{"-a", "16", "-b", "4", "-c", "4", "-l", "2", "-cycles", "5", "-traffic", "identity", "-json"}, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "equation4PA") {
		t.Error("identity run should omit equation4PA")
	}
}

func TestRunRejectsBadInputs(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-a", "7"}, &sb); err == nil {
		t.Error("expected validation error for a=7")
	}
	if err := run([]string{"-traffic", "nope"}, &sb); err == nil {
		t.Error("expected error for unknown traffic")
	}
	if err := run([]string{"-arb", "nope"}, &sb); err == nil {
		t.Error("expected error for unknown arbiter")
	}
	if err := run([]string{"-what"}, &sb); err == nil {
		t.Error("expected flag parse error")
	}
}

func TestRunOfferedRateHonored(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-a", "16", "-b", "4", "-c", "4", "-l", "2",
		"-r", "0.5", "-cycles", "400", "-json"}, &sb); err != nil {
		t.Fatal(err)
	}
	var report struct {
		OfferedRate float64 `json:"offeredRate"`
	}
	if err := json.Unmarshal([]byte(sb.String()), &report); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if report.OfferedRate < 0.45 || report.OfferedRate > 0.55 {
		t.Errorf("offered rate %g, want ~0.5", report.OfferedRate)
	}
}

func TestRunCornerGeometries(t *testing.T) {
	// The crossbar corner EDN(4,4,1,1) and the delta corner EDN(4,4,1,2)
	// exercise the degenerate switch shapes end to end.
	for _, args := range [][]string{
		{"-a", "4", "-b", "4", "-c", "1", "-l", "1", "-cycles", "30"},
		{"-a", "4", "-b", "4", "-c", "1", "-l", "2", "-cycles", "30"},
	} {
		var sb strings.Builder
		if err := run(args, &sb); err != nil {
			t.Errorf("args %v: %v", args, err)
		} else if !strings.Contains(sb.String(), "measured") {
			t.Errorf("args %v produced no measurement:\n%s", args, sb.String())
		}
	}
}

func TestRunSeedDeterminism(t *testing.T) {
	args := []string{"-a", "16", "-b", "4", "-c", "4", "-l", "2", "-cycles", "100", "-seed", "7"}
	var a, b strings.Builder
	if err := run(args, &a); err != nil {
		t.Fatal(err)
	}
	if err := run(args, &b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("same seed, different output:\n%s\nvs\n%s", a.String(), b.String())
	}
}
