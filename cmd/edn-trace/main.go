// Command edn-trace runs a workload with the flight recorder attached
// and explains behavior packet by packet: which stages sampled packets
// crossed, where the blocked cycles went, and what the P99 tail did
// that the median did not.
//
//	edn-trace -a 64 -b 16 -c 4 -l 2 -load 0.9
//	edn-trace -a 16 -b 4 -c 4 -l 2 -engine dilated -load 0.95 -heatmap
//	edn-trace -a 16 -b 4 -c 4 -l 2 -engine loop -load 0.4
//	edn-trace -a 64 -b 16 -c 4 -l 2 -load 0.9 -dump
//	edn-trace -a 64 -b 16 -c 4 -l 2 -load 0.9 -export prom
//
// The default summary prints the sampled-trace cohort (latency
// quantiles over the traced packets), the per-stage event counts, and
// the tail-vs-median cohort breakdown: for every stage, how many
// stall events (block, park, timeout, retry) the median-latency cohort
// accumulated there versus the P99 cohort — the hop-by-hop location of
// the tail. -engine selects which of the four engines runs: the
// circuit-switched core, the buffered EDN packet engine, the dilated
// counterpart, or the closed-loop request/response workload (where a
// trace's "stage" is the attempt number). -dump prints raw traces,
// -export emits the registry metrics as Prometheus text or JSON lines.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"edn"
	"edn/internal/cliutil"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "edn-trace:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("edn-trace", flag.ContinueOnError)
	a, b, c, l := cliutil.GeometryFlags(fs, 64, 16, 4, 2)
	engine := fs.String("engine", "edn", "engine: core, edn, dilated, loop")
	depth := fs.Int("depth", 4, "per-wire FIFO depth (-1 unbounded, 0 unbuffered resubmission)")
	policy := fs.String("policy", "backpressure", "blocked-packet policy: backpressure, drop")
	load := fs.Float64("load", 0.9, "offered load (demand rate for -engine loop)")
	cycles := fs.Int("cycles", 4000, "measured cycles")
	warmup := fs.Int("warmup", 500, "warmup cycles before the recorder attaches")
	seed := fs.Uint64("seed", 1, "RNG seed")
	arb := fs.String("arb", "priority", "arbitration: priority, roundrobin, random")
	sample := fs.Int("sample", 16, "sample every ~Nth accepted injection")
	traceCap := fs.Int("trace-cap", 256, "trace ring capacity")
	bins := fs.Int("heat-bins", 32, "heat series time bins")
	heatmap := fs.Bool("heatmap", false, "print per-stage heat rows")
	dump := fs.Bool("dump", false, "print raw traces, one hop per line")
	explain := fs.Bool("explain", false, "annotate dumped trace hops with their wait/block/service split (implies -dump)")
	export := fs.String("export", "", "emit registry metrics instead of the summary: prom, jsonl")
	format := fs.String("format", "table", "cohort breakdown output: table, csv, json")
	window := fs.Int("window", 4, "outstanding requests per source (-engine loop)")
	timeout := fs.Int("timeout", 32, "attempt timeout in cycles (-engine loop)")
	attempts := fs.Int("attempts", 8, "max attempts per request (-engine loop)")
	retry := fs.String("retry", "backoff", "retry policy: immediate, backoff (-engine loop)")
	prof := cliutil.ProfileFlags(fs)
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProf, err := prof.Start()
	if err != nil {
		return err
	}

	cfg, err := edn.New(*a, *b, *c, *l)
	if err != nil {
		return err
	}
	po := &edn.ProbeOptions{SampleEvery: *sample, TraceCap: *traceCap, Bins: *bins}
	opts := edn.SimOptions{Cycles: *cycles, Warmup: *warmup, Seed: *seed, Probe: po}
	if opts.Factory, err = cliutil.ArbiterFactory(*arb, *seed); err != nil {
		return err
	}

	var rep *edn.ProbeReport
	var network string
	switch *engine {
	case "core":
		res, err := edn.MeasureUniformPA(cfg, *load, opts)
		if err != nil {
			return err
		}
		rep, network = res.Observed, cfg.String()
	case "edn":
		qopts := edn.QueueOptions{Depth: *depth, Factory: opts.Factory}
		if qopts.Policy, err = cliutil.ParsePolicy(*policy); err != nil {
			return err
		}
		rng := edn.NewRand(*seed)
		res, err := edn.MeasureLatency(cfg, edn.Uniform{Rate: *load, Rng: rng}, qopts, opts)
		if err != nil {
			return err
		}
		rep, network = res.Observed, cfg.String()
	case "dilated":
		dcfg, err := edn.DilatedCounterpart(cfg)
		if err != nil {
			return err
		}
		dopts := edn.DilatedQueueOptions{Depth: *depth, Factory: opts.Factory}
		if dopts.Policy, err = cliutil.ParsePolicy(*policy); err != nil {
			return err
		}
		rng := edn.NewRand(*seed)
		res, err := edn.MeasureDilatedLatency(dcfg, edn.Uniform{Rate: *load, Rng: rng}, dopts, opts)
		if err != nil {
			return err
		}
		rep, network = res.Observed, dcfg.String()
	case "loop":
		qopts := edn.QueueOptions{Depth: *depth, Factory: opts.Factory}
		if qopts.Policy, err = cliutil.ParsePolicy(*policy); err != nil {
			return err
		}
		lo := edn.ClosedLoopOptions{
			Window:      *window,
			Timeout:     *timeout,
			MaxAttempts: *attempts,
			BackoffBase: 2,
			BackoffCap:  16,
		}
		if lo.Retry, err = edn.ParseRetryPolicy(*retry); err != nil {
			return err
		}
		results, err := edn.MeasureClosedLoop(cfg, []float64{*load}, lo, qopts, opts, 1)
		if err != nil {
			return err
		}
		rep, network = results[0].Observed, cfg.String()
	default:
		return fmt.Errorf("unknown engine %q (want core, edn, dilated or loop)", *engine)
	}

	if rep == nil {
		return fmt.Errorf("no probe report collected")
	}
	defer stopProf()

	if *export != "" {
		reg := edn.NewMetricsRegistry()
		reg.AddReport(rep, []edn.MetricLabel{
			{Key: "network", Value: network},
			{Key: "engine", Value: *engine},
			{Key: "load", Value: fmt.Sprintf("%g", *load)},
		})
		switch *export {
		case "prom":
			return reg.WritePrometheus(w)
		case "jsonl":
			return reg.WriteJSONLines(w)
		default:
			return fmt.Errorf("unknown export %q (want prom or jsonl)", *export)
		}
	}

	if *dump || *explain {
		return dumpTraces(w, rep, *explain)
	}

	if *format == "json" {
		return cliutil.WriteJSON(w, traceReport{
			Network: network,
			Engine:  *engine,
			Load:    *load,
			Seed:    *seed,
			Sampled: rep.Sampled,
			Traces:  rep.Traces,
			Cohort:  cohortRows(rep),
		})
	}

	fmt.Fprintf(w, "%s engine=%s load=%g cycles=%d sample=1/%d\n", network, *engine, *load, *cycles, *sample)
	if err := cliutil.WriteProbeReport(w, rep, *heatmap); err != nil {
		return err
	}
	rows := cohortRows(rep)
	if len(rows) == 0 {
		fmt.Fprintln(w, "cohort breakdown: too few completed traces")
		return nil
	}
	cells := make([][]any, len(rows))
	for i, r := range rows {
		cells[i] = []any{r.Stage, r.MedianVisits, r.MedianStalls, r.TailVisits, r.TailStalls}
	}
	fmt.Fprintln(w, "cohort breakdown (stall events per trace: block/park/timeout/retry):")
	if *format == "csv" {
		return cliutil.WriteCSV(w, cohortColumns, cells)
	}
	return cliutil.WriteTable(w, cohortColumns, cells)
}

var cohortColumns = []cliutil.Column{
	{Name: "stage", Format: "%5d"},
	{Name: "median_visits", Head: "med-vis", Format: "%8.2f"},
	{Name: "median_stalls", Head: "med-stall", Format: "%9.2f"},
	{Name: "tail_visits", Head: "p99-vis", Format: "%8.2f"},
	{Name: "tail_stalls", Head: "p99-stall", Format: "%9.2f"},
}

// cohortRow compares the median-latency cohort against the P99 cohort
// at one stage: how often each cohort's traces touched the stage and
// how many stall events they accumulated there.
type cohortRow struct {
	Stage        int     `json:"stage"`
	MedianVisits float64 `json:"medianVisits"`
	MedianStalls float64 `json:"medianStalls"`
	TailVisits   float64 `json:"tailVisits"`
	TailStalls   float64 `json:"tailStalls"`
}

// cohortRows splits completed traces into the at-or-under-median
// cohort and the at-or-over-P99 cohort and reports each cohort's mean
// per-stage visit and stall-event counts — the hop-by-hop answer to
// "where does the tail spend its extra cycles".
func cohortRows(rep *edn.ProbeReport) []cohortRow {
	type done struct {
		idx int
		lat float64
	}
	var completed []done
	maxStage := 0
	for i := range rep.Traces {
		if lat, ok := rep.Traces[i].Latency(); ok {
			completed = append(completed, done{i, lat})
		}
		for _, h := range rep.Traces[i].Hops {
			if h.Stage > maxStage {
				maxStage = h.Stage
			}
		}
	}
	if len(completed) < 4 {
		return nil
	}
	sort.Slice(completed, func(i, j int) bool { return completed[i].lat < completed[j].lat })
	p50 := completed[len(completed)/2].lat
	p99 := completed[(len(completed)-1)*99/100].lat

	visits := make([][2]float64, maxStage+1)
	stalls := make([][2]float64, maxStage+1)
	var n [2]int
	for _, d := range completed {
		var cohort int
		switch {
		case d.lat <= p50:
			cohort = 0
		case d.lat >= p99:
			cohort = 1
		default:
			continue
		}
		n[cohort]++
		for _, h := range rep.Traces[d.idx].Hops {
			visits[h.Stage][cohort]++
			switch h.Event {
			case edn.EvBlock, edn.EvPark, edn.EvTimeout, edn.EvRetry:
				stalls[h.Stage][cohort]++
			}
		}
	}
	rows := make([]cohortRow, 0, maxStage+1)
	for s := 0; s <= maxStage; s++ {
		r := cohortRow{Stage: s}
		if n[0] > 0 {
			r.MedianVisits = visits[s][0] / float64(n[0])
			r.MedianStalls = stalls[s][0] / float64(n[0])
		}
		if n[1] > 0 {
			r.TailVisits = visits[s][1] / float64(n[1])
			r.TailStalls = stalls[s][1] / float64(n[1])
		}
		rows = append(rows, r)
	}
	return rows
}

// dumpTraces prints every sampled trace, one hop per line. With
// explain, each hop that ends a stage visit (traverse, deliver, drop,
// strand) is annotated with the visit's wait/block/service split — the
// per-packet view of the anatomy ledgers (see edn.SplitTraceHops).
func dumpTraces(w io.Writer, rep *edn.ProbeReport, explain bool) error {
	for i := range rep.Traces {
		t := &rep.Traces[i]
		status := "open"
		if t.Done {
			status = "done"
		}
		if _, err := fmt.Fprintf(w, "trace %d input=%d dest=%d inject=%d %s\n", t.ID, t.Input, t.Dest, t.Inject, status); err != nil {
			return err
		}
		var splits []edn.TraceSplit
		if explain {
			splits = edn.SplitTraceHops(t.Hops)
		}
		si := 0
		for _, h := range t.Hops {
			suffix := ""
			if si < len(splits) {
				switch h.Event {
				case edn.EvTraverse, edn.EvDeliver, edn.EvDrop, edn.EvStrand:
					s := splits[si]
					si++
					suffix = fmt.Sprintf("   wait=%-4d block=%-4d service=%d", s.Wait, s.Block, s.Service)
				}
			}
			if _, err := fmt.Fprintf(w, "  cycle=%-8d stage=%-3d %-8s%s\n", h.Cycle, h.Stage, h.Event, suffix); err != nil {
				return err
			}
		}
	}
	return nil
}

// traceReport is the machine-readable summary.
type traceReport struct {
	Network string            `json:"network"`
	Engine  string            `json:"engine"`
	Load    float64           `json:"load"`
	Seed    uint64            `json:"seed"`
	Sampled int64             `json:"sampled"`
	Traces  []edn.PacketTrace `json:"traces"`
	Cohort  []cohortRow       `json:"cohort,omitempty"`
}
