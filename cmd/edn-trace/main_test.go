package main

import (
	"encoding/json"
	"strings"
	"testing"
)

var baseArgs = []string{"-a", "16", "-b", "4", "-c", "4", "-l", "2",
	"-cycles", "400", "-warmup", "100", "-sample", "4"}

func runTrace(t *testing.T, extra ...string) string {
	t.Helper()
	var sb strings.Builder
	if err := run(append(append([]string{}, baseArgs...), extra...), &sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

func TestRunSummaryAllEngines(t *testing.T) {
	for _, engine := range []string{"core", "edn", "dilated", "loop"} {
		t.Run(engine, func(t *testing.T) {
			out := runTrace(t, "-engine", engine, "-load", "0.5")
			for _, want := range []string{"engine=" + engine, "probe: sampled=", "stage"} {
				if !strings.Contains(out, want) {
					t.Errorf("output missing %q:\n%s", want, out)
				}
			}
		})
	}
}

func TestRunCohortTable(t *testing.T) {
	out := runTrace(t, "-load", "0.9")
	if !strings.Contains(out, "cohort breakdown") {
		t.Fatalf("missing cohort breakdown:\n%s", out)
	}
	if !strings.Contains(out, "med-stall") || !strings.Contains(out, "p99-stall") {
		t.Errorf("missing cohort columns:\n%s", out)
	}
}

func TestRunHeatmap(t *testing.T) {
	out := runTrace(t, "-load", "0.9", "-heatmap")
	if !strings.Contains(out, "heat occupancy") {
		t.Errorf("missing heat rows:\n%s", out)
	}
}

func TestRunDump(t *testing.T) {
	out := runTrace(t, "-load", "0.9", "-dump")
	if !strings.Contains(out, "trace ") || !strings.Contains(out, "inject=") {
		t.Errorf("missing trace headers:\n%s", out)
	}
	if !strings.Contains(out, "deliver") {
		t.Errorf("missing terminal hop lines:\n%s", out)
	}
}

func TestRunJSON(t *testing.T) {
	out := runTrace(t, "-load", "0.9", "-format", "json")
	var rep struct {
		Network string `json:"network"`
		Sampled int64  `json:"sampled"`
		Traces  []struct {
			ID   int64 `json:"id"`
			Hops []struct {
				Event string `json:"event"`
			} `json:"hops"`
		} `json:"traces"`
		Cohort []struct {
			Stage int `json:"stage"`
		} `json:"cohort"`
	}
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("not JSON: %v\n%s", err, out)
	}
	if rep.Network != "EDN(16,4,4,2)" || rep.Sampled == 0 || len(rep.Traces) == 0 {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if rep.Traces[0].Hops[0].Event != "inject" {
		t.Errorf("first hop should be inject: %+v", rep.Traces[0])
	}
}

func TestRunExportProm(t *testing.T) {
	out := runTrace(t, "-load", "0.9", "-export", "prom")
	for _, want := range []string{
		"# TYPE edn_trace_sampled_total counter",
		`engine="edn"`,
		"edn_heat_stage_mean",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom export missing %q:\n%s", want, out)
		}
	}
}

func TestRunExportJSONL(t *testing.T) {
	out := runTrace(t, "-load", "0.9", "-export", "jsonl")
	lines := strings.Split(strings.TrimSpace(out), "\n")
	for _, line := range lines {
		var m struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		}
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if m.Name == "" {
			t.Fatalf("unnamed metric in %q", line)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-engine", "warp"}, &sb); err == nil {
		t.Error("unknown engine should error")
	}
	if err := run([]string{"-export", "xml"}, &sb); err == nil {
		t.Error("unknown export should error")
	}
}
