// Command maspar reproduces the Section 5.1 worked example: the expected
// time for the RA-EDN(16,4,2,16) system — the MasPar MP-1 16K router —
// to deliver a random permutation among its 16384 processing elements.
//
//	maspar            # analytic estimate only
//	maspar -simulate  # plus a Monte-Carlo measurement
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"edn"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "maspar:", err)
		os.Exit(1)
	}
}

func run(args []string, w io.Writer) error {
	fs := flag.NewFlagSet("maspar", flag.ContinueOnError)
	simulate := fs.Bool("simulate", false, "also measure with the cycle-level simulator")
	trials := fs.Int("trials", 3, "random permutations to measure with -simulate")
	seed := fs.Uint64("seed", 1, "RNG seed for -simulate")
	fs.SetOutput(w)
	if err := fs.Parse(args); err != nil {
		return err
	}
	report, err := edn.MasParReport(*simulate, *trials, *seed)
	if err != nil {
		return err
	}
	_, err = fmt.Fprint(w, report)
	return err
}
