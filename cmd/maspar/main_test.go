package main

import (
	"strings"
	"testing"
)

func TestRunAnalytic(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"RA-EDN(16,4,2,16)", "0.544", "34.41"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "measured time") {
		t.Error("measurement should not run without -simulate")
	}
}

func TestRunSimulated(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-simulate", "-trials", "1", "-seed", "7"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "measured time") {
		t.Errorf("missing measurement:\n%s", sb.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-bogus"}, &sb); err == nil {
		t.Fatal("expected flag parse error")
	}
}
