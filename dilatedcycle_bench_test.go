package edn

import (
	"fmt"
	"testing"
)

// BenchmarkDilatedQueueCycle tracks the dilated packet engine's advance
// loop and its epoch primitive at the counterparts of the geometries
// the other hot-path benchmarks use: the equal-redundancy dilated
// deltas of the 1K-port MasPar router EDN(64,16,4,2) and the 4K-port
// EDN(16,4,4,5). One op of the advance sub-benchmarks is one network
// cycle under sustained uniform load; the swap sub-benchmarks prepend
// an UpdateFaults mask swap, alternating two 5%-dead-sub-wire masks and
// the full repair so every swap direction is exercised. Like the
// RouteCycleInto/QueueCycle/LifetimeEpoch families, every variant must
// report exactly 0 allocs/op under -benchmem — all ring, scratch and
// mask-view storage is preallocated — and the CI zero-alloc gate
// enforces that.
func BenchmarkDilatedQueueCycle(b *testing.B) {
	parents := []struct {
		name        string
		a, bb, c, l int
	}{
		{"1Kports", 64, 16, 4, 2}, // counterpart: 4-dilated delta(b=2,l=10)
		{"4Kports", 16, 4, 4, 5},  // counterpart: 4-dilated delta(b=4,l=6)
	}
	for _, g := range parents {
		cfg, err := New(g.a, g.bb, g.c, g.l)
		if err != nil {
			b.Fatal(err)
		}
		dcfg, err := DilatedCounterpart(cfg)
		if err != nil {
			b.Fatal(err)
		}
		masks := []*DilatedMasks{
			mustDilatedMasks(b, dcfg, BernoulliDilatedSubWires(dcfg, 0.05, NewRand(13))),
			mustDilatedMasks(b, dcfg, BernoulliDilatedSubWires(dcfg, 0.05, NewRand(29))),
			mustDilatedMasks(b, dcfg, DilatedFaultSet{}),
		}
		for _, qc := range []struct {
			name   string
			depth  int
			policy QueuePolicy
		}{
			{"depth4-drop", 4, QueueDrop},
			{"depth4-backpressure", 4, QueueBackpressure},
		} {
			b.Run(fmt.Sprintf("%s/%s/advance", g.name, qc.name), func(b *testing.B) {
				benchmarkDilatedCycle(b, dcfg, DilatedQueueOptions{Depth: qc.depth, Policy: qc.policy}, nil)
			})
		}
		b.Run(fmt.Sprintf("%s/depth4-drop/swap", g.name), func(b *testing.B) {
			benchmarkDilatedCycle(b, dcfg, DilatedQueueOptions{Depth: 4, Policy: QueueDrop}, masks)
		})
	}
}

func mustDilatedMasks(b *testing.B, cfg DilatedDelta, set DilatedFaultSet) *DilatedMasks {
	b.Helper()
	m, err := CompileDilatedMasks(cfg, set)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// benchmarkDilatedCycle runs the steady-state loop; a non-nil mask
// rotation swaps one in before every cycle (the LifetimeEpoch shape:
// worst-case swap amortization, one cycle of dwell).
func benchmarkDilatedCycle(b *testing.B, dcfg DilatedDelta, dopts DilatedQueueOptions, masks []*DilatedMasks) {
	net, err := NewDilatedQueueNetwork(dcfg, dopts)
	if err != nil {
		b.Fatal(err)
	}
	rng := NewRand(7)
	gen := Uniform{Rate: 0.9, Rng: rng}
	dest := make([]int, dcfg.Ports())
	// Reach ring steady state before the measured window.
	for i := 0; i < 50; i++ {
		gen.GenerateInto(dest, dcfg.Ports())
		if _, err := net.Cycle(dest); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if masks != nil {
			if err := net.UpdateFaults(masks[i%len(masks)]); err != nil {
				b.Fatal(err)
			}
		}
		gen.GenerateInto(dest, dcfg.Ports())
		if _, err := net.Cycle(dest); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	tot := net.Totals()
	b.ReportMetric(float64(tot.Delivered)/float64(net.Now()), "delivered/cycle")
	b.ReportMetric(net.Latency().Quantile(0.99), "p99-cycles")
	b.ReportMetric(float64(dcfg.Ports())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mports/s")
}
