// Package edn is a library-quality reproduction of "Expanded Delta
// Networks for Very Large Parallel Computers" (Alleyne & Scherson, UC
// Irvine ICS TR 92-02 / ISCA 1992).
//
// An Expanded Delta Network EDN(a,b,c,l) is a multistage interconnection
// network built from hyperbar switches H(a -> b x c): a-input switches
// whose b output "buckets" are groups of c interchangeable wires. Routing
// is digit-controlled exactly as in Patel's delta networks — no global
// controller — but every source/destination pair enjoys c^l distinct
// paths, which absorbs internal contention. The crossbar (EDN(n,n,1,1))
// and the classical delta network (EDN(a,b,1,l)) are the degenerate
// corners of the family; the MasPar MP-1 router is RA-EDN(16,4,2,16),
// logically EDN(64,16,4,2).
//
// The package exposes four layers:
//
//   - Structure: Config describes a network (stages, switches, wiring,
//     Equation 2/3 costs); Tag, TraceRoute and RetirementOrder implement
//     digit-retirement routing (Lemma 1, Corollary 2).
//   - Closed forms: PA, PAPermutation, CrossbarPA, Resubmission and
//     ExpectedPermutationTime evaluate the paper's Equations 4-11 and the
//     Section 5.1 model.
//   - Simulation: Network routes cycle-level request batches; the
//     Measure* helpers, SimulateMIMD and RoutePermutation drive
//     Monte-Carlo experiments that cross-check every closed form. The
//     cycle engine is table driven: interstage gamma permutations are
//     precomputed as flat lookup tables, destination tags are decomposed
//     into per-stage digits once per cycle, and RouteCycleInto plus the
//     traffic IntoGenerator fast path let steady-state measurement loops
//     run with zero allocations per cycle (see BenchmarkRouteCycleInto).
//   - Queueing: QueueNetwork is the buffered packet-level simulator the
//     paper's memoryless model cannot express — per-wire FIFOs of
//     configurable depth at every stage input, head-of-line arbitration,
//     one hop per cycle, and per-packet injection timestamps feeding
//     latency Histograms. MeasureLatency and SaturationSweep produce
//     throughput and P50/P95/P99 latency-vs-load curves (with run-level
//     parallel sharding), DrainPermutations measures the Section 5.1
//     permutation time against ExpectedPermutationTime, and the bursty
//     MarkovOnOff / MovingHotSpot sources supply the temporally
//     correlated load that makes queues interesting. The depth-1 Drop
//     configuration is pinned bit-for-bit to the unbuffered Network;
//     the advance loop is allocation-free for bounded depths
//     (BenchmarkQueueCycle). See cmd/edn-latency for the CLI.
//   - Fault tolerance and lifecycle: FaultSet/CompileFaults turn dead
//     switches, wires and ports into per-stage availability masks both
//     engines route around (NewNetworkWithFaults, QueueOptions.Faults);
//     AvailabilitySweep measures frozen degradation curves, and the
//     lifecycle layer makes the masks a function of time — a
//     LifecycleSpec's failure/repair process drives running engines
//     through UpdateFaults (in-place, allocation-free mask swaps) and
//     LifetimeSweep records bandwidth/reachability/latency per epoch
//     with lifetime aggregates. See cmd/edn-faults and cmd/edn-lifetime.
//   - Measured dilated counterpart: DilatedQueueNetwork is a packet-level
//     simulator for the d-dilated delta networks the introduction
//     compares EDNs against, sharing the queueing engine's architecture
//     (ring FIFOs, policies, in-place DilatedMasks swaps; at d=1 it is
//     bit-for-bit the plain-delta QueueNetwork). MeasureDilatedLatency,
//     DilatedSaturationSweep, DilatedAvailabilitySweep and
//     DilatedLifetimeSweep pair with their EDN twins seed-for-seed, so
//     edn-latency -dilated and edn-lifetime -dilated run both networks
//     under identical replayed traffic — latency tails and lifetime
//     churn included, where previously only the mean-field
//     DilatedDegraded model spoke (edn-faults -dilated keeps that
//     model as its cheap analytic overlay).
//   - Closed-loop workloads: NewClosedLoop layers a request/response
//     memory workload over two instances of either packet engine —
//     requests route forward, memory ports service them, replies route
//     back — with per-source outstanding-request windows, timeout
//     detection, immediate or capped-exponential-backoff retries,
//     give-up-after-N, and a fault-fed avoidance list of unreachable
//     memory ports. A request-level conservation ledger (Issued ==
//     Completed + GivenUp + InFlight + RetryWaiting) is asserted on top
//     of both fabrics' packet ledgers. MeasureClosedLoopPair sweeps
//     demand with bit-equal offered requests on the EDN and its dilated
//     counterpart, and ClosedLoopLifetimeSweep runs the workload
//     through churn with an SLA response-deadline curve that prices
//     degradation as a cost of downtime; the steady-state advance is
//     allocation-free (BenchmarkClosedLoopCycle). Batch-repair
//     maintenance windows (LifecycleSpec.RepairWindow) model repairs
//     that only land on epoch boundaries. See cmd/edn-loop.
//   - Observability: a flight-recorder Probe attaches to any of the
//     four engines (SetProbe) and records three things without moving
//     a single measured number — sampled packet traces (every ~Nth
//     accepted injection gets a per-hop event log in a preallocated
//     ring: inject/traverse/block/park/drop/strand/deliver for the
//     packet engines, issue/timeout/retry/complete/giveup with attempt
//     numbers for the closed-loop layer), per-stage per-cycle heat
//     surfaces (queue occupancy, blocked and parked packets, folded
//     into time bins), and an exportable metrics registry (Prometheus
//     text and JSON-lines). With no probe attached every hook is one
//     nil check and the hot loops stay at 0 allocs/op
//     (BenchmarkProbeOff, CI-gated); with a probe attached the results
//     are bit-identical to an unprobed run, and sweeps collect their
//     observation from a dedicated pass whose seed ignores the shard
//     split, so the same Options yield the same trace set at any shard
//     count. See cmd/edn-trace and the -trace/-heatmap flags on
//     edn-latency, edn-lifetime and edn-loop.
//   - Jobs and service: JobSpec is the single serializable description
//     of any experiment the facade can run — every mode (latency,
//     saturation, drain, availability, lifetime, closed-loop,
//     closed-loop lifetime, estimate) on either engine (or the
//     replay-matched pair), with queueing, faults, lifecycle, probe and
//     sharding sections — and Run executes one bit-for-bit against the
//     facade functions. Every sweep CLI emits its JobSpec with
//     -dump-spec and replays any saved spec with -spec, so a
//     command-line run, a JSON file and a daemon request are the same
//     experiment. NewGeometryCache is a byte-budgeted LRU over routing
//     tables and compiled fault masks (hits return the identical
//     immutable artifacts, so cached results are bit-equal to
//     uncached); internal/serve and cmd/edn-serve wrap both in a
//     long-lived daemon — a JSON-line protocol over stdio and an HTTP
//     API that schedule jobs across a bounded worker pool, stream
//     per-point events as sweeps progress, and answer one-shot
//     estimate requests (geometry + src/dst + load -> latency
//     quantiles) in the co-simulation role BookSim2 plays for
//     system-level simulators. See EXPERIMENTS.md for the protocol
//     grammar and measured cold-vs-warm request latencies.
//   - Performance observatory: every daemon job records a
//     deterministic span tree (SpanCollector) — queue wait, spec
//     validation, table builds with their cache verdicts, per-shard
//     execution, merge, serialization — delivered beside (never
//     inside) the result event, aggregated per stage on /v1/stats, and
//     summarized as a structured JSON completion log on stderr
//     (edn-serve -log). The tree's shape is a pure function of the
//     JobSpec; like the Probe, tracing is observation-only and a
//     traced run's result is byte-identical to an untraced one
//     (property-tested). /metrics adds live worker-pool gauges, a job
//     duration histogram, jobs-by-mode/engine/outcome counters,
//     geometry-cache hit/miss/eviction/byte counters and Go runtime
//     stats, and edn-serve -pprof mounts net/http/pprof on the same
//     mux. Off the daemon path, internal/benchwatch and cmd/edn-bench
//     form the ns/op regression harness: they parse go test -bench
//     output into the BENCH_N.json trajectory schema, diff runs
//     against committed snapshots, and enforce BENCH_BUDGETS.json
//     per-benchmark ceilings in CI — over budget is a warning inside
//     the shared-runner noise band, past 2x the budget (or a budgeted
//     benchmark disappearing) fails the build.
//   - Latency anatomy: where the Probe records what happened, the
//     anatomy layer explains where the time went. An AnatomyCollector
//     attaches to any of the four engines (SetAnatomy) and decomposes
//     every closed packet's life — delivered, dropped or stranded —
//     into wait (queued behind another packet), block (at the head but
//     unable to advance) and service (cycles that moved it), an exact
//     partition of its latency: wait + block + service == closed −
//     inject for the buffered engines (+1 at depth 0, whose latency
//     convention counts the injection cycle — property-tested across
//     every depth x policy x fault-churn combination). Each blocked
//     cycle is charged to the switch that caused it (blame ledgers,
//     per-stage dwell histograms, per-source/per-destination flows),
//     and a congestion-tree detector follows blocked-by edges
//     downstream to name the root switch of each backpressure tree
//     with its depth, spread and lifetime — tomography for questions
//     like "which hot output is really responsible for this tail".
//     Closed-loop requests get a five-way split instead: client-queue,
//     retry-wait, forward-fabric, service, reply-fabric. Reports are
//     shard-mergeable and ride the same dedicated observation pass as
//     the probe, so explaining a run never moves a measured number
//     (byte-identity property-tested, fault churn included) and a
//     detached collector costs one nil check per hook
//     (BenchmarkAnatomyOff, 0 allocs/op, CI-gated). The surface is a
//     JobSpec explain section, the daemon's /v1/explain endpoint and
//     stdio explain verb (the report arrives beside the result event,
//     never inside it), cmd/edn-explain for the human-facing table,
//     and edn-trace -explain to annotate sampled per-hop traces with
//     their per-stage split (SplitTraceHops).
//   - Reproduction: Figure7, Figure8, Figure11, CostTable and
//     MasParCaseStudy regenerate the paper's evaluation artifacts (see
//     cmd/edn-figures and EXPERIMENTS.md).
//
// All randomness is drawn from a deterministic SplitMix64 stream (Rand),
// so every number in EXPERIMENTS.md reproduces bit-for-bit.
package edn
