package edn

import (
	"edn/internal/analytic"
	"edn/internal/anatomy"
	"edn/internal/closedloop"
	"edn/internal/core"
	"edn/internal/design"
	"edn/internal/dilated"
	"edn/internal/dilatedsim"
	"edn/internal/faults"
	"edn/internal/lifecycle"
	"edn/internal/mimd"
	"edn/internal/netlist"
	"edn/internal/probe"
	"edn/internal/queuesim"
	"edn/internal/routing"
	"edn/internal/simd"
	"edn/internal/simulate"
	"edn/internal/stats"
	"edn/internal/switchfab"
	"edn/internal/topology"
	"edn/internal/traffic"
	"edn/internal/xrand"
)

// ---------------------------------------------------------------------------
// Structure (Section 2)

// Config identifies an EDN(a,b,c,l): l stages of H(a -> b x c) hyperbars
// followed by a stage of c x c crossbars. See internal/topology for the
// full method set (Inputs, Outputs, costs, wiring, path enumeration).
type Config = topology.Config

// Family is a fixed-switch family EDN(a,b,c,*) swept over stage count,
// as in Figures 7, 8 and 11.
type Family = topology.Family

// New validates and returns an EDN(a,b,c,l) configuration.
func New(a, b, c, l int) (Config, error) { return topology.New(a, b, c, l) }

// NewCrossbar returns EDN(n,n,1,1), which degenerates to an n x n crossbar.
func NewCrossbar(n int) (Config, error) { return topology.NewCrossbar(n) }

// NewDelta returns EDN(a,b,1,l): Patel's a^l x b^l delta network.
func NewDelta(a, b, l int) (Config, error) { return topology.NewDelta(a, b, l) }

// Hyperbar is the H(a -> b x c) switch of Definition 1, the generalized
// MasPar MP-1 router switch.
type Hyperbar = switchfab.Hyperbar

// Crossbar is an n x m crosspoint switch (the c=1 hyperbar).
type Crossbar = switchfab.Crossbar

// Arbiter resolves bucket oversubscription inside a switch.
type Arbiter = switchfab.Arbiter

// PriorityArbiter is the paper's input-label priority rule (Figure 2).
type PriorityArbiter = switchfab.PriorityArbiter

// RoundRobinArbiter rotates priority across cycles (fairness ablation).
type RoundRobinArbiter = switchfab.RoundRobinArbiter

// RandomArbiter draws a fresh random arbitration order each cycle.
type RandomArbiter = switchfab.RandomArbiter

// ---------------------------------------------------------------------------
// Routing (Section 2, Lemma 1, Corollary 2)

// Tag is a decoded destination tag D = d_(l-1)...d_0 x.
type Tag = routing.Tag

// EncodeTag decodes destination label dst into its routing tag.
func EncodeTag(cfg Config, dst int) (Tag, error) { return routing.Encode(cfg, dst) }

// Trace is a full per-stage record of one message's path (Lemma 1 walk).
type Trace = routing.Trace

// Hop is one stage of a Trace.
type Hop = routing.Hop

// TraceRoute walks a message from src to dst under the standard
// retirement order, taking choices as the free per-stage wire choices.
func TraceRoute(cfg Config, src, dst int, choices []int) (Trace, error) {
	return routing.TraceRoute(cfg, src, dst, choices)
}

// RetirementOrder is a Corollary 2 digit-retirement order together with
// its compensating output permutation (Figure 6).
type RetirementOrder = routing.RetirementOrder

// StandardOrder retires d_(l-i) at stage i (the paper's default).
func StandardOrder(cfg Config) RetirementOrder { return routing.StandardOrder(cfg) }

// ReversedOrder retires d_0 first — the Figure 6 construction.
func ReversedOrder(cfg Config) RetirementOrder { return routing.ReversedOrder(cfg) }

// NewRetirementOrder builds a custom order from a permutation of [0, l).
func NewRetirementOrder(cfg Config, perm []int) (RetirementOrder, error) {
	return routing.NewRetirementOrder(cfg, perm)
}

// ---------------------------------------------------------------------------
// Closed-form performance models (Sections 3-5)

// PA evaluates Equation 4: the probability of acceptance of cfg under
// uniform independent traffic at offered rate r.
func PA(cfg Config, r float64) float64 { return analytic.PA(cfg, r) }

// PAPermutation evaluates Equation 5 (Lemma 2-consistent form): the
// probability of acceptance when the requests form a permutation.
func PAPermutation(cfg Config, r float64) float64 { return analytic.PAPermutation(cfg, r) }

// CrossbarPA is the full-crossbar reference curve of Figures 7 and 8.
func CrossbarPA(n int, r float64) float64 { return analytic.CrossbarPA(n, r) }

// Bandwidth returns expected satisfied requests per cycle at rate r.
func Bandwidth(cfg Config, r float64) float64 { return analytic.Bandwidth(cfg, r) }

// StageRates returns the per-wire request rate after every stage.
func StageRates(cfg Config, r float64) []float64 { return analytic.StageRates(cfg, r) }

// MIMDModel is the Section 4 steady state (Equations 7-11).
type MIMDModel = analytic.MIMDResult

// Resubmission solves the Section 4 Markov fixed point for a shared
// memory system in which blocked requests are resubmitted until accepted.
func Resubmission(cfg Config, r float64) (MIMDModel, error) {
	return analytic.Resubmission(cfg, r, analytic.ResubmissionOptions{})
}

// PermutationTimeModel is the Section 5.1 permutation-time estimate.
type PermutationTimeModel = analytic.PermutationTime

// ExpectedPermutationTime evaluates the Section 5.1 model (q/PA(1) + J)
// for a square network serving clusters of q PEs.
func ExpectedPermutationTime(cfg Config, q int) (PermutationTimeModel, error) {
	return analytic.ExpectedPermutationTime(cfg, q)
}

// ---------------------------------------------------------------------------
// Cycle-level simulation

// Network is an instantiated EDN that routes request batches with the
// exact hyperbar semantics (one call = one circuit-switched cycle).
type Network = core.Network

// NoRequest marks an idle input in request vectors and outcomes.
const NoRequest = core.NoRequest

// ArbiterFactory builds one arbiter per physical switch.
type ArbiterFactory = core.ArbiterFactory

// Outcome is the per-input result of a routed cycle.
type Outcome = core.Outcome

// CycleStats aggregates one routed cycle.
type CycleStats = core.CycleStats

// NewNetwork builds a cycle-level network (nil factory = priority rule).
func NewNetwork(cfg Config, factory ArbiterFactory) (*Network, error) {
	return core.NewNetwork(cfg, factory)
}

// SimOptions configures a Monte-Carlo measurement run.
type SimOptions = simulate.Options

// SimResult is an aggregated measurement.
type SimResult = simulate.Result

// MeasurePA measures acceptance for an arbitrary traffic pattern.
func MeasurePA(cfg Config, pattern Pattern, opts SimOptions) (SimResult, error) {
	return simulate.MeasurePA(cfg, pattern, opts)
}

// MeasureUniformPA measures acceptance under uniform traffic at rate r,
// the Monte-Carlo counterpart of PA.
func MeasureUniformPA(cfg Config, r float64, opts SimOptions) (SimResult, error) {
	return simulate.MeasureUniformPA(cfg, r, opts)
}

// MeasureUniformPAParallel splits the cycle budget across independent
// worker runs (exact Welford merge); workers <= 0 selects GOMAXPROCS.
func MeasureUniformPAParallel(cfg Config, r float64, opts SimOptions, workers int) (SimResult, error) {
	return simulate.MeasureUniformPAParallel(cfg, r, opts, workers)
}

// MeasurePermutationPA measures acceptance under fresh random
// permutations, the counterpart of PAPermutation.
func MeasurePermutationPA(cfg Config, opts SimOptions) (SimResult, error) {
	return simulate.MeasurePermutationPA(cfg, opts)
}

// StageRateResult compares measured per-stage survivor rates with the
// Theorem 3 recursion.
type StageRateResult = simulate.StageRateResult

// MeasureStageRates measures the per-wire request rate at every stage
// boundary under uniform traffic — the element-wise validation of the
// r_{i+1} = E(r_i)/c recursion.
func MeasureStageRates(cfg Config, r float64, opts SimOptions) (StageRateResult, error) {
	return simulate.MeasureStageRates(cfg, r, opts)
}

// MultipassResult reports a fixed request set drained over repeated
// network passes.
type MultipassResult = simulate.MultipassResult

// RouteMultipass re-offers blocked requests pass after pass until every
// message of dest is delivered — how an SIMD machine actually completes
// a permutation on a blocking network.
func RouteMultipass(cfg Config, dest []int, factory ArbiterFactory, maxPasses int) (MultipassResult, error) {
	return simulate.RouteMultipass(cfg, dest, factory, maxPasses)
}

// MIMDOptions configures a Section 4 system simulation.
type MIMDOptions = mimd.Options

// MIMDMeasured is the measured steady state of the resubmission system.
type MIMDMeasured = mimd.Result

// SimulateMIMD runs the processor-memory system with resubmission, the
// Monte-Carlo counterpart of Resubmission.
func SimulateMIMD(cfg Config, r float64, opts MIMDOptions) (MIMDMeasured, error) {
	return mimd.Simulate(cfg, r, opts)
}

// ---------------------------------------------------------------------------
// Buffered packet-level queueing simulation

// QueueNetwork is an instantiated buffered EDN: per-wire FIFOs at every
// stage input, head-of-line arbitration per switch, one hop per cycle,
// and per-packet latency measurement. See internal/queuesim for the
// depth and policy semantics (depth-1 Drop reproduces Network exactly;
// depth 0 is the unbuffered closed-loop resubmission corner).
type QueueNetwork = queuesim.Network

// QueueOptions configures a queueing network (FIFO depth, blocked-packet
// policy, arbitration, latency histogram shape).
type QueueOptions = queuesim.Options

// QueuePolicy selects the blocked-packet discipline.
type QueuePolicy = queuesim.Policy

// QueueBackpressure retains blocked packets at their FIFO head (lossless
// store-and-forward); QueueDrop discards them (circuit-switched).
const (
	QueueBackpressure = queuesim.Backpressure
	QueueDrop         = queuesim.Drop
)

// QueueUnbounded selects per-wire FIFOs that grow without limit.
const QueueUnbounded = queuesim.Unbounded

// QueueTotals are a queueing network's lifetime packet counters; they
// satisfy Injected == Refused + Delivered + Dropped + Queued() after
// every cycle.
type QueueTotals = queuesim.Totals

// NewQueueNetwork builds a buffered packet-level network over cfg.
func NewQueueNetwork(cfg Config, opts QueueOptions) (*QueueNetwork, error) {
	return queuesim.New(cfg, opts)
}

// LatencyResult aggregates one queueing measurement: throughput plus
// P50/P95/P99 delivery latency.
type LatencyResult = simulate.LatencyResult

// MeasureLatency runs pattern through a queueing network and reports
// throughput and the latency distribution after warmup.
func MeasureLatency(cfg Config, pattern Pattern, qopts QueueOptions, opts SimOptions) (LatencyResult, error) {
	return simulate.MeasureLatency(cfg, pattern, qopts, opts)
}

// LoadPattern builds the traffic source for one offered-load point of a
// sweep; nil selects uniform iid traffic.
type LoadPattern = simulate.LoadPattern

// BurstyLoad returns a LoadPattern of Markov on/off sources with the
// given mean burst length and a long-run load matching the sweep axis.
func BurstyLoad(meanBurst float64) LoadPattern { return simulate.BurstyLoad(meanBurst) }

// SaturationSweep measures the latency-vs-load curve: one LatencyResult
// per offered load, each load's cycle budget split across parallel
// shards and merged exactly. shards <= 0 selects GOMAXPROCS.
func SaturationSweep(cfg Config, loads []float64, src LoadPattern, qopts QueueOptions, opts SimOptions, shards int) ([]LatencyResult, error) {
	return simulate.SaturationSweep(cfg, loads, src, qopts, opts, shards)
}

// DrainResult reports a closed-loop drain of q preloaded permutations
// per input, the measured counterpart of ExpectedPermutationTime.
type DrainResult = simulate.DrainResult

// DrainPermutations preloads q permutation packets per input and runs
// the network closed-loop until all are delivered.
func DrainPermutations(cfg Config, q int, qopts QueueOptions, opts SimOptions) (DrainResult, error) {
	return simulate.DrainPermutations(cfg, q, qopts, opts)
}

// Histogram is the fixed-bucket streaming latency histogram with
// nearest-rank quantiles and exact shard merging.
type Histogram = stats.Histogram

// NewHistogram returns a histogram of `buckets` bins of the given width.
func NewHistogram(buckets int, width float64) *Histogram { return stats.NewHistogram(buckets, width) }

// ---------------------------------------------------------------------------
// Fault injection and degraded-mode operation

// FaultSet is a declarative fault specification: dead switches, dead
// interstage wires and dead switch output ports. The zero value is the
// fault-free network.
type FaultSet = faults.Set

// FaultSwitchID names one switch (1-based stage; stage l+1 is the
// output crossbars).
type FaultSwitchID = faults.SwitchID

// FaultWireID names one wire at a stage boundary (boundary 0 is the
// network inputs).
type FaultWireID = faults.WireID

// FaultPortID names one switch output port; on the crossbar stage it is
// a network output terminal.
type FaultPortID = faults.PortID

// FaultMasks is a compiled fault set: the per-stage availability rows
// the engines route around. Compile once, share freely.
type FaultMasks = faults.Masks

// FaultMode selects the failing component population of a sampler.
type FaultMode = faults.Mode

// FaultWires kills interstage wires (bucket multipath territory);
// FaultSwitches kills whole switches; FaultMixed does both.
const (
	FaultWires    = faults.WireFaults
	FaultSwitches = faults.SwitchFaults
	FaultMixed    = faults.MixedFaults
)

// ParseFaultMode maps a flag value ("wires", "switches", "mixed") onto
// a FaultMode.
func ParseFaultMode(s string) (FaultMode, error) { return faults.ParseMode(s) }

// CompileFaults validates a fault set against cfg and folds it into
// availability masks.
func CompileFaults(cfg Config, set FaultSet) (*FaultMasks, error) { return faults.Compile(cfg, set) }

// BernoulliFaults samples each component of the mode's population dead
// independently with probability p.
func BernoulliFaults(cfg Config, mode FaultMode, p float64, rng *Rand) FaultSet {
	return faults.Bernoulli(cfg, mode, p, rng)
}

// BlastFaults kills the switches within radius of center in one stage —
// the correlated board/cabinet failure pattern.
func BlastFaults(cfg Config, stage, center, radius int) (FaultSet, error) {
	return faults.Blast(cfg, stage, center, radius)
}

// FaultPlan is a nested family of fault sets: At(f1) is a subset of
// At(f2) whenever f1 <= f2, so sweeps degrade one fixed failure story.
type FaultPlan = faults.Plan

// NewFaultPlan draws the per-component severities for cfg.
func NewFaultPlan(cfg Config, mode FaultMode, rng *Rand) *FaultPlan {
	return faults.NewPlan(cfg, mode, rng)
}

// ExpectedDegradedBandwidth evaluates the per-wire generalization of
// the Theorem 3 recursion over the masked topology: the analytic
// prediction of delivered requests per cycle under uniform traffic at
// rate r. With an empty compiled mask it equals Bandwidth(cfg, r); m
// must come from CompileFaults (a nil mask has no topology to walk).
func ExpectedDegradedBandwidth(m *FaultMasks, r float64) float64 {
	return faults.ExpectedUniformBandwidth(m, r)
}

// NewNetworkWithFaults builds a cycle-level network that grants only
// live wires: requests route around dead components while any sibling
// bucket wire survives, and are blocked where none does. A nil or
// empty mask is exactly NewNetwork. The queueing engine takes the same
// masks via QueueOptions.Faults.
func NewNetworkWithFaults(cfg Config, factory ArbiterFactory, m *FaultMasks) (*Network, error) {
	return core.NewNetworkWithFaults(cfg, factory, m)
}

// AvailabilityOptions configures a degraded-mode sweep (fault-fraction
// axis, failing population, offered load).
type AvailabilityOptions = simulate.AvailabilityOptions

// AvailabilityResult is one point of the degradation curve: delivered
// bandwidth, reachability and latency tail at one fault fraction.
type AvailabilityResult = simulate.AvailabilityResult

// AvailabilitySweep measures the graceful-degradation curve: one
// AvailabilityResult per fault fraction, each averaged over parallel
// shards that grow nested fault plans under identical traffic replays.
// shards <= 0 selects GOMAXPROCS; src nil selects uniform traffic.
func AvailabilitySweep(cfg Config, aopts AvailabilityOptions, src LoadPattern, qopts QueueOptions, opts SimOptions, shards int) ([]AvailabilityResult, error) {
	return simulate.AvailabilitySweep(cfg, aopts, src, qopts, opts, shards)
}

// ---------------------------------------------------------------------------
// Lifecycle simulation: time-varying faults, repair and availability

// LifecycleSpec describes a failure/repair process: per-component MTBF
// and MTTR (exponential or deterministic holding times) plus optional
// correlated blast arrivals. See internal/lifecycle.
type LifecycleSpec = lifecycle.Spec

// LifecycleProcess is an instantiated failure/repair process; each Step
// advances one epoch and returns the fault set now in effect.
type LifecycleProcess = lifecycle.Process

// LifecycleTiming selects the holding-time distribution.
type LifecycleTiming = lifecycle.Timing

// LifecycleExponential draws geometric (memoryless) holding times;
// LifecycleDeterministic uses fixed staggered maintenance periods.
const (
	LifecycleExponential   = lifecycle.Exponential
	LifecycleDeterministic = lifecycle.Deterministic
)

// ParseLifecycleTiming maps a flag value ("exponential", "deterministic")
// onto a LifecycleTiming.
func ParseLifecycleTiming(s string) (LifecycleTiming, error) { return lifecycle.ParseTiming(s) }

// NewLifecycleProcess validates spec and instantiates the process over
// cfg with phases drawn from rng.
func NewLifecycleProcess(cfg Config, spec LifecycleSpec, rng *Rand) (*LifecycleProcess, error) {
	return lifecycle.New(cfg, spec, rng)
}

// TimeSeries is the per-epoch accumulator behind lifetime results: one
// streaming mean/CI per epoch with exact cross-shard merging.
type TimeSeries = stats.TimeSeries

// LifetimeOptions configures a lifetime simulation (epoch count, dwell
// cycles per epoch, the failure/repair spec, offered load).
type LifetimeOptions = simulate.LifetimeOptions

// LifetimeResult is the availability-over-time view: per-epoch
// bandwidth/reachability/latency series plus lifetime aggregates
// (lifetime-average bandwidth, time below threshold, recovery
// half-life).
type LifetimeResult = simulate.LifetimeResult

// LifetimeSweep simulates a network's whole service life under
// failure/repair churn: running engines are re-masked in place between
// epochs (no rebuilds; queue and arbiter state survive every swap) and
// each epoch's metrics are recorded into exact-merge time series.
// shards <= 0 selects GOMAXPROCS; src nil selects uniform traffic.
func LifetimeSweep(cfg Config, lopts LifetimeOptions, src LoadPattern, qopts QueueOptions, opts SimOptions, shards int) (LifetimeResult, error) {
	return simulate.LifetimeSweep(cfg, lopts, src, qopts, opts, shards)
}

// ---------------------------------------------------------------------------
// SIMD clustering (Section 5)

// RAEDN is a Restricted-Access EDN: p = b^l*c clusters of q PEs sharing
// one network port each.
type RAEDN = simd.System

// NewRAEDN builds RA-EDN(b,c,l,q) over the network EDN(bc,b,c,l).
func NewRAEDN(b, c, l, q int) (RAEDN, error) { return simd.RAEDN(b, c, l, q) }

// MasParMP1 returns RA-EDN(16,4,2,16): the 16K-PE MasPar MP-1 router.
func MasParMP1() RAEDN { return simd.MasParMP1() }

// Scheduler selects each cluster's offered message per cycle.
type Scheduler = simd.Scheduler

// RandomScheduler is the paper's random schedule.
type RandomScheduler = simd.RandomScheduler

// FIFOScheduler offers each cluster's oldest message.
type FIFOScheduler = simd.FIFOScheduler

// GreedyDistinctScheduler prefers pairwise-distinct destination clusters.
type GreedyDistinctScheduler = simd.GreedyDistinctScheduler

// RouteOptions configures a permutation-routing run.
type RouteOptions = simd.RouteOptions

// RouteResult reports one permutation delivery.
type RouteResult = simd.RouteResult

// RoutePermutation delivers a permutation over the system's PEs and
// returns the cycle count the Section 5.1 model estimates.
func RoutePermutation(sys RAEDN, perm []int, opts RouteOptions) (RouteResult, error) {
	return simd.RoutePermutation(sys, perm, opts)
}

// ---------------------------------------------------------------------------
// Traffic and randomness

// Pattern produces one request vector per cycle.
type Pattern = traffic.Pattern

// IntoGenerator is a Pattern that can fill a caller-provided request
// vector in place, the traffic-side half of the allocation-free
// steady-state loop around Network.RouteCycleInto. All built-in patterns
// implement it (RandomPermutation and PartialPermutation by pointer).
type IntoGenerator = traffic.IntoGenerator

// Uniform is iid uniform traffic at a given rate (Section 3.2).
type Uniform = traffic.Uniform

// RandomPermutation draws a fresh permutation each cycle.
type RandomPermutation = traffic.RandomPermutation

// PartialPermutation keeps each permutation entry with a given rate.
type PartialPermutation = traffic.PartialPermutation

// HotSpot concentrates a fraction of requests on one output (NUTS).
type HotSpot = traffic.HotSpot

// MarkovOnOff is the two-state bursty source: geometrically distributed
// ON bursts and OFF silences with long-run load Rate*POn/(POn+POff).
type MarkovOnOff = traffic.MarkovOnOff

// MovingHotSpot is a hotspot whose hot output advances by Stride every
// Period cycles — congestion that re-aims before queues drain.
type MovingHotSpot = traffic.MovingHotSpot

// FixedPattern replays a static request vector every cycle.
type FixedPattern = traffic.Fixed

// IdentityPattern returns the identity permutation on n ports.
func IdentityPattern(n int) FixedPattern { return traffic.Identity(n) }

// BitReversalPattern returns the bit-reversal permutation on n ports.
func BitReversalPattern(n int) (FixedPattern, error) { return traffic.BitReversal(n) }

// Rand is the deterministic SplitMix64 generator used everywhere.
type Rand = xrand.Rand

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return xrand.New(seed) }

// ---------------------------------------------------------------------------
// Dilated-delta baseline (Section 1 comparison)

// DilatedDelta is a d-dilated square delta network, the multipath
// alternative whose wire cost the introduction compares EDNs against.
type DilatedDelta = dilated.Config

// NewDilatedDelta builds a d-dilated radix-b delta of l stages.
func NewDilatedDelta(b, d, l int) (DilatedDelta, error) { return dilated.New(b, d, l) }

// DilatedCounterpart returns the dilated delta comparable to an EDN:
// same input port count, dilation equal to the EDN's bucket capacity.
func DilatedCounterpart(cfg Config) (DilatedDelta, error) { return dilated.Counterpart(cfg) }

// DilatedFaultSet names dead dilated sub-wires; the zero value is the
// fault-free network.
type DilatedFaultSet = dilated.FaultSet

// DilatedSubWireID names one sub-wire of a dilated link group.
type DilatedSubWireID = dilated.SubWireID

// DilatedDegraded is a compiled dilated fault state: per-stage group
// capacity histograms feeding the degraded acceptance recursion.
type DilatedDegraded = dilated.Degraded

// CompileDilatedFaults folds dead sub-wires into per-stage capacity
// reductions.
func CompileDilatedFaults(cfg DilatedDelta, set DilatedFaultSet) (*DilatedDegraded, error) {
	return cfg.CompileFaults(set)
}

// BernoulliDilatedSubWires kills each dilated sub-wire independently
// with probability p.
func BernoulliDilatedSubWires(cfg DilatedDelta, p float64, rng *Rand) DilatedFaultSet {
	return dilated.BernoulliSubWires(cfg, p, rng)
}

// ExpectedDilatedDegraded returns the Binomial-expectation fault state
// at sub-wire death fraction f — the smooth analytic degradation curve
// to plot against an EDN availability sweep at the same fraction.
func ExpectedDilatedDegraded(cfg DilatedDelta, f float64) (*DilatedDegraded, error) {
	return cfg.ExpectedDegraded(f)
}

// ---------------------------------------------------------------------------
// Measured dilated counterpart (packet-level dilated simulator)

// DilatedQueueNetwork is an instantiated buffered d-dilated delta: the
// packet-level engine behind the measured side of every -dilated
// comparison. It shares queuesim's architecture — per-sub-wire ring
// FIFOs, Drop/Backpressure, head-of-line arbitration, in-place fault
// mask swaps — and at d=1 reproduces the plain-delta QueueNetwork bit
// for bit. See internal/dilatedsim.
type DilatedQueueNetwork = dilatedsim.Network

// DilatedQueueOptions configures a dilated queueing network (FIFO
// depth, policy, arbitration, latency histogram shape, faults).
type DilatedQueueOptions = dilatedsim.Options

// NewDilatedQueueNetwork builds a buffered packet-level network over a
// dilated delta configuration.
func NewDilatedQueueNetwork(cfg DilatedDelta, opts DilatedQueueOptions) (*DilatedQueueNetwork, error) {
	return dilatedsim.New(cfg, opts)
}

// DilatedMasks is a compiled dilated fault set in the engine's
// per-sub-wire label space — the simulator-facing sibling of
// DilatedDegraded's capacity histograms.
type DilatedMasks = dilatedsim.Masks

// CompileDilatedMasks folds dead sub-wires into engine availability
// rows; DilatedQueueNetwork.UpdateFaults swaps them in place.
func CompileDilatedMasks(cfg DilatedDelta, set DilatedFaultSet) (*DilatedMasks, error) {
	return dilatedsim.Compile(cfg, set)
}

// DilatedFaultPlan is a nested family of dilated fault sets: At(f1) is
// a subset of At(f2) whenever f1 <= f2, the dilated twin of FaultPlan.
type DilatedFaultPlan = dilatedsim.Plan

// NewDilatedFaultPlan draws the per-sub-wire severities for cfg.
func NewDilatedFaultPlan(cfg DilatedDelta, rng *Rand) *DilatedFaultPlan {
	return dilatedsim.NewPlan(cfg, rng)
}

// DilatedChurn is a failure/repair process over a dilated network's
// sub-wires, drawing holding times from the same renewal primitives as
// LifecycleProcess so matched lifetime comparisons churn both networks
// identically.
type DilatedChurn = dilatedsim.Churn

// NewDilatedChurn instantiates sub-wire churn with the given MTBF/MTTR
// epochs and timing.
func NewDilatedChurn(cfg DilatedDelta, mtbf, mttr float64, timing LifecycleTiming, rng *Rand) (*DilatedChurn, error) {
	return dilatedsim.NewChurn(cfg, mtbf, mttr, timing, rng)
}

// MeasureDilatedLatency is MeasureLatency over the dilated engine; the
// result sets Dilated instead of Config.
func MeasureDilatedLatency(cfg DilatedDelta, pattern Pattern, dopts DilatedQueueOptions, opts SimOptions) (LatencyResult, error) {
	return simulate.MeasureDilatedLatency(cfg, pattern, dopts, opts)
}

// DilatedSaturationSweep measures the counterpart's latency-vs-load
// curve with the same shard seeding as SaturationSweep: identical
// Options and shard count drive both networks with identical per-input
// injection replays.
func DilatedSaturationSweep(cfg DilatedDelta, loads []float64, src LoadPattern, dopts DilatedQueueOptions, opts SimOptions, shards int) ([]LatencyResult, error) {
	return simulate.DilatedSaturationSweep(cfg, loads, src, dopts, opts, shards)
}

// DilatedAvailabilityResult is one measured point of the counterpart's
// degradation curve.
type DilatedAvailabilityResult = simulate.DilatedAvailabilityResult

// DilatedAvailabilitySweep measures the counterpart's graceful-
// degradation curve as sub-wires die (nested per-shard plans, replayed
// traffic), pairing with AvailabilitySweep under the same Options.
func DilatedAvailabilitySweep(cfg DilatedDelta, aopts AvailabilityOptions, src LoadPattern, dopts DilatedQueueOptions, opts SimOptions, shards int) ([]DilatedAvailabilityResult, error) {
	return simulate.DilatedAvailabilitySweep(cfg, aopts, src, dopts, opts, shards)
}

// DilatedLifetimeResult is the counterpart's availability-over-time
// view under sub-wire churn.
type DilatedLifetimeResult = simulate.DilatedLifetimeResult

// DilatedLifetimeSweep simulates the counterpart's whole service life
// under sub-wire churn (MTBF/MTTR/Timing from lopts.Spec; the dilated
// population is always the sub-wires), pairing with LifetimeSweep under
// the same Options.
func DilatedLifetimeSweep(cfg DilatedDelta, lopts LifetimeOptions, src LoadPattern, dopts DilatedQueueOptions, opts SimOptions, shards int) (DilatedLifetimeResult, error) {
	return simulate.DilatedLifetimeSweep(cfg, lopts, src, dopts, opts, shards)
}

// DilatedDrainPermutations preloads q permutation rounds per port into
// the dilated engine and drains to empty — the counterpart of
// DrainPermutations, bit-equal to it at d=1.
func DilatedDrainPermutations(cfg DilatedDelta, q int, dopts DilatedQueueOptions, opts SimOptions) (DrainResult, error) {
	return simulate.DilatedDrainPermutations(cfg, q, dopts, opts)
}

// ---------------------------------------------------------------------------
// Closed-loop request/response workload
//
// Everything above measures open-loop traffic: sources inject and
// deliveries are the end of the story. The closed-loop layer models
// what a processor actually does with an interconnect — issue a memory
// request, wait for the reply, retry on timeout — over TWO fabric
// instances of the same network (requests forward, replies back through
// the output/input concentrator), with per-source outstanding-request
// windows, timeout/retry/give-up accounting, fault-fed avoidance of
// unreachable memory ports, and an SLA response-deadline curve that
// prices degradation in delivered-work terms.

// ClosedLoopEngine is the packet-fabric seam the closed-loop layer
// drives: both QueueNetwork and DilatedQueueNetwork satisfy it.
type ClosedLoopEngine = closedloop.Engine

// ClosedLoopOptions configures the workload: window W, demand rate,
// service time, timeout, retry policy and backoff, backlog bound, SLA
// curve, seed.
type ClosedLoopOptions = closedloop.Options

// ClosedLoop is a running request/response workload over a forward and
// a return fabric.
type ClosedLoop = closedloop.Loop

// ClosedLoopLedger is the request-level conservation ledger: Offered ==
// Shed + Backlogged + Issued and Issued == Completed + GivenUp +
// InFlight + RetryWaiting at every cycle.
type ClosedLoopLedger = closedloop.Ledger

// SLA is a response-deadline curve: full credit at or under Zero,
// linear decay to none past Deadline (a step when Zero == Deadline; the
// zero SLA credits every completion).
type SLA = closedloop.SLA

// RetryPolicy selects how timed-out requests are re-issued.
type RetryPolicy = closedloop.RetryPolicy

// Retry policies: immediate re-issue, or capped exponential backoff
// with deterministic jitter.
const (
	RetryImmediate = closedloop.RetryImmediate
	RetryBackoff   = closedloop.RetryBackoff
)

// ParseRetryPolicy is the inverse of RetryPolicy.String, for flags.
func ParseRetryPolicy(s string) (RetryPolicy, error) {
	return closedloop.ParseRetryPolicy(s)
}

// NewClosedLoop wires a closed-loop workload over two engine instances
// of the same fabric (inputs sources, outputs memory ports; outputs
// must be a multiple of inputs, the concentrator ratio).
func NewClosedLoop(fwd, rev ClosedLoopEngine, inputs, outputs int, opts ClosedLoopOptions) (*ClosedLoop, error) {
	return closedloop.New(fwd, rev, inputs, outputs, opts)
}

// ClosedLoopResult is one measured closed-loop operating point:
// goodput, SLA attainment, end-to-end latency quantiles and the full
// retry/timeout ledger.
type ClosedLoopResult = simulate.ClosedLoopResult

// MeasureClosedLoop sweeps the closed-loop workload over an EDN at each
// demand rate, sharded and exactly merged like SaturationSweep.
func MeasureClosedLoop(cfg Config, rates []float64, lo ClosedLoopOptions, qopts QueueOptions, opts SimOptions, shards int) ([]ClosedLoopResult, error) {
	return simulate.MeasureClosedLoop(cfg, rates, lo, qopts, opts, shards)
}

// MeasureDilatedClosedLoop is MeasureClosedLoop over the dilated
// engine; identical Options replay identical demand.
func MeasureDilatedClosedLoop(cfg DilatedDelta, rates []float64, lo ClosedLoopOptions, dopts DilatedQueueOptions, opts SimOptions, shards int) ([]ClosedLoopResult, error) {
	return simulate.MeasureDilatedClosedLoop(cfg, rates, lo, dopts, opts, shards)
}

// MeasureClosedLoopPair runs the replay-matched EDN vs dilated
// comparison and asserts bit-equal offered demand at every rate point.
func MeasureClosedLoopPair(cfg Config, dcfg DilatedDelta, rates []float64, lo ClosedLoopOptions, qopts QueueOptions, dopts DilatedQueueOptions, opts SimOptions, shards int) (ednRes, dilRes []ClosedLoopResult, err error) {
	return simulate.MeasureClosedLoopPair(cfg, dcfg, rates, lo, qopts, dopts, opts, shards)
}

// ClosedLoopLifetimeResult is the closed-loop availability-over-time
// view: per-epoch goodput/SLA/latency/retry series plus the
// SLA-weighted cost-of-downtime aggregate.
type ClosedLoopLifetimeResult = simulate.ClosedLoopLifetimeResult

// ClosedLoopLifetimeSweep runs the closed-loop workload over an EDN's
// whole service life under lopts.Spec churn on both fabrics, avoidance
// list refreshed from forward-fabric reachability every epoch, request
// conservation asserted at every epoch boundary.
func ClosedLoopLifetimeSweep(cfg Config, lopts LifetimeOptions, lo ClosedLoopOptions, qopts QueueOptions, opts SimOptions, shards int) (ClosedLoopLifetimeResult, error) {
	return simulate.ClosedLoopLifetimeSweep(cfg, lopts, lo, qopts, opts, shards)
}

// DilatedClosedLoopLifetimeSweep is ClosedLoopLifetimeSweep over the
// dilated counterpart under sub-wire churn, replay-matched to the EDN
// sweep by the same Options.
func DilatedClosedLoopLifetimeSweep(cfg DilatedDelta, lopts LifetimeOptions, lo ClosedLoopOptions, dopts DilatedQueueOptions, opts SimOptions, shards int) (ClosedLoopLifetimeResult, error) {
	return simulate.DilatedClosedLoopLifetimeSweep(cfg, lopts, lo, dopts, opts, shards)
}

// ---------------------------------------------------------------------------
// Observability: flight-recorder probes and metrics export
//
// A Probe attaches to any of the four engines (Network, QueueNetwork,
// DilatedQueueNetwork, ClosedLoop via SetProbe) and records two things
// without perturbing the run: sampled per-packet flight traces (every
// ~Nth accepted injection gets a hop-by-hop event record) and
// per-stage, per-cycle heat series (occupancy, head-of-line blocking,
// parked and dropped counts). A nil probe keeps every hot path
// bit-for-bit identical and allocation-free. The simulate sweeps
// accept SimOptions.Probe and surface the merged ProbeReport on their
// results; cmd/edn-trace turns reports into hop-by-hop breakdowns.

// Probe is a flight recorder for one engine instance.
type Probe = probe.Probe

// ProbeOptions configures sampling rate, trace ring capacity and heat
// binning. The zero value of SampleEvery disables tracing (heat only).
type ProbeOptions = probe.Options

// NewProbe builds a probe; attach it with an engine's SetProbe.
func NewProbe(opts ProbeOptions) *Probe { return probe.New(opts) }

// ProbeReport is a probe's collected output: sampled traces plus heat
// series, mergeable across shards.
type ProbeReport = probe.Report

// PacketTrace is one sampled packet's recorded flight: identity,
// injection, and the per-hop event list.
type PacketTrace = probe.Trace

// PacketHop is one recorded event of a sampled packet's flight.
type PacketHop = probe.Hop

// ProbeEvent enumerates the recordable flight events.
type ProbeEvent = probe.Event

// Flight events: packet-level inject/traverse/block/park/drop/strand/
// deliver, and closed-loop request-level issue/timeout/retry/complete/
// give-up.
const (
	EvInject   = probe.EvInject
	EvTraverse = probe.EvTraverse
	EvBlock    = probe.EvBlock
	EvPark     = probe.EvPark
	EvDrop     = probe.EvDrop
	EvStrand   = probe.EvStrand
	EvDeliver  = probe.EvDeliver
	EvIssue    = probe.EvIssue
	EvTimeout  = probe.EvTimeout
	EvRetry    = probe.EvRetry
	EvComplete = probe.EvComplete
	EvGiveUp   = probe.EvGiveUp
)

// Heatmap is the per-stage, per-bin heat series a probe folds each
// cycle's occupancy and blocking scratch into.
type Heatmap = probe.Heat

// MetricsRegistry collects final counter/gauge samples and exports
// them deterministically as JSON lines or Prometheus text.
type MetricsRegistry = probe.Registry

// MetricLabel is one metric dimension (key="value").
type MetricLabel = probe.Label

// NewMetricsRegistry returns an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return probe.NewRegistry() }

// LiveMetrics is the concurrent instrument surface behind long-lived
// processes: counters, gauges and histograms updated lock-free from
// worker goroutines, gathered into a MetricsRegistry for export.
type LiveMetrics = probe.Metrics

// NewLiveMetrics returns an empty live-instrument surface.
func NewLiveMetrics() *LiveMetrics { return probe.NewMetrics() }

// ---------------------------------------------------------------------------
// Latency anatomy: causal time attribution and congestion-tree tomography
//
// Where a Probe records what happened, an AnatomyCollector explains
// where the time went: every delivered, dropped or stranded packet's
// end-to-end latency is decomposed per stage into queue-wait,
// head-of-line blocking and service, blocked heads are attributed to
// the downstream FIFO or terminal that refused them, and the per-cycle
// blocked-by edges are folded into congestion trees (root switch,
// depth, spread, lifetime). Attach with an engine's SetAnatomy; the
// same non-perturbation contract as probes holds (nil = one branch per
// site, BenchmarkAnatomyOff pins 0 allocs/op; attached anatomy never
// moves a measured number). Job-level access: the JobSpec "explain"
// section plus RunOptions.OnExplain, the serve layer's /v1/explain,
// or cmd/edn-explain.

// AnatomyCollector accumulates latency anatomy for one engine run.
type AnatomyCollector = anatomy.Collector

// AnatomyOptions configures a collector (top-K list sizes, dwell
// histogram shape, test callbacks).
type AnatomyOptions = anatomy.Options

// NewAnatomyCollector builds a collector; attach it with an engine's
// SetAnatomy and read it with Report after the run.
func NewAnatomyCollector(opts AnatomyOptions) *AnatomyCollector { return anatomy.New(opts) }

// AnatomyReport is a collector's mergeable output: per-class and
// per-stage wait/block/service ledgers, per-switch blame, top-K
// congestion trees, per-source/per-destination flows, and the
// closed-loop request split.
type AnatomyReport = anatomy.Report

// StageAnatomy is one stage's wait/block/service/blame ledger row.
type StageAnatomy = anatomy.StageTotals

// AnatomyClassTotals aggregates the attributed time of one packet
// class (delivered, dropped or stranded).
type AnatomyClassTotals = anatomy.ClassTotals

// CongestionTree is one detected congestion tree: root switch, depth,
// spread, lifetime and total blocked ring-cycles.
type CongestionTree = anatomy.Tree

// RequestTimeSplit is the closed-loop five-way request-time
// decomposition (client-queue / retry-wait / forward-fabric / service
// / reply-fabric).
type RequestTimeSplit = anatomy.RequestSplit

// TraceSplit is one stage-visit of a sampled trace annotated with its
// wait/block/service share (see SplitTraceHops).
type TraceSplit = anatomy.TraceSplit

// SplitTraceHops decomposes a sampled packet trace's hops into
// per-stage wait/block/service segments — the per-packet view of the
// anatomy ledgers, used by edn-trace -explain.
func SplitTraceHops(hops []PacketHop) []TraceSplit { return anatomy.SplitHops(hops) }

// ---------------------------------------------------------------------------
// Design-space exploration and physical netlists

// DesignPoint is one candidate network on the PA/cost axes.
type DesignPoint = design.Point

// EnumerateDesigns returns every square EDN with the given port count
// and buildable switch width, sorted by descending PA(1).
func EnumerateDesigns(ports, maxSwitch int) ([]DesignPoint, error) {
	return design.Enumerate(ports, maxSwitch)
}

// ParetoFront reduces candidates to the PA/crosspoint Pareto front.
func ParetoFront(points []DesignPoint) []DesignPoint { return design.ParetoFront(points) }

// BestDesignUnderBudget returns the highest-PA candidate within a
// crosspoint budget.
func BestDesignUnderBudget(points []DesignPoint, budget int64) (DesignPoint, bool) {
	return design.BestUnderBudget(points, budget)
}

// CheapestDesignAtFloor returns the lowest-cost candidate meeting a
// PA(1) floor.
func CheapestDesignAtFloor(points []DesignPoint, floor float64) (DesignPoint, bool) {
	return design.CheapestAtFloor(points, floor)
}

// Netlist is the full physical wire enumeration of a network.
type Netlist = netlist.Netlist

// BuildNetlist materializes every wire of cfg; its wire count equals the
// Equation 3 cost exactly.
func BuildNetlist(cfg Config) (*Netlist, error) { return netlist.Build(cfg) }

// DescribeNetwork renders a stage-by-stage structural summary (Figure 4
// style) of cfg.
func DescribeNetwork(cfg Config, maxFanout int) (string, error) {
	return netlist.Describe(cfg, maxFanout)
}
