package edn

import (
	"math"
	"strings"
	"testing"
)

// edn_test.go exercises the public facade end to end, the way the
// examples and a downstream user would.

func TestQuickstartFlow(t *testing.T) {
	// Build the MasPar router network.
	cfg, err := New(64, 16, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Inputs() != 1024 || cfg.Outputs() != 1024 || cfg.PathCount() != 16 {
		t.Fatalf("geometry: %d x %d, %d paths", cfg.Inputs(), cfg.Outputs(), cfg.PathCount())
	}

	// Ask the closed forms.
	if pa := PA(cfg, 1); math.Abs(pa-0.5437) > 0.001 {
		t.Fatalf("PA(1) = %.4f", pa)
	}
	if bw := Bandwidth(cfg, 1); math.Abs(bw-0.5437*1024) > 1 {
		t.Fatalf("Bandwidth = %.1f", bw)
	}
	rates := StageRates(cfg, 1)
	if len(rates) != 4 {
		t.Fatalf("stage rates: %v", rates)
	}

	// Trace one message.
	tr, err := TraceRoute(cfg, 631, 422, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Hops[len(tr.Hops)-1].OutLine; got != 422 {
		t.Fatalf("trace delivered to %d", got)
	}
	if !strings.Contains(tr.String(), "crossbar") {
		t.Fatal("trace rendering lost the crossbar stage")
	}

	// Simulate a batch.
	net, err := NewNetwork(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(42)
	dest := make([]int, cfg.Inputs())
	for i := range dest {
		dest[i] = rng.Intn(cfg.Outputs())
	}
	_, cs, err := net.RouteCycle(dest)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Offered != 1024 || cs.Delivered == 0 {
		t.Fatalf("cycle stats: %+v", cs)
	}
}

func TestTagFacade(t *testing.T) {
	cfg, err := New(16, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	tag, err := EncodeTag(cfg, 54)
	if err != nil {
		t.Fatal(err)
	}
	if tag.Dest() != 54 {
		t.Fatalf("tag round trip: %d", tag.Dest())
	}
}

// TestCorollary2IdentityFix is the Figure 5/6 story through the public
// API: the identity permutation blocks badly on EDN(64,16,4,2) under the
// standard retirement order, routes losslessly in one pass under the
// reversed order, and the compensating output permutation restores every
// destination.
func TestCorollary2IdentityFix(t *testing.T) {
	cfg, err := New(64, 16, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	identity := IdentityPattern(cfg.Inputs()).Dest

	// Standard order: exactly 1/16 of the messages survive.
	_, cs, err := net.RouteCycle(identity)
	if err != nil {
		t.Fatal(err)
	}
	if got := cs.PA(); math.Abs(got-1.0/16) > 1e-9 {
		t.Fatalf("standard-order identity PA = %.4f, want 1/16", got)
	}

	// Reversed order: feed F(dst) and undo with the output table.
	order := ReversedOrder(cfg)
	remapped := make([]int, len(identity))
	for i, d := range identity {
		f, err := order.F(d)
		if err != nil {
			t.Fatal(err)
		}
		remapped[i] = f
	}
	table, err := order.OutputPermutation()
	if err != nil {
		t.Fatal(err)
	}
	out, cs2, err := net.RouteCycle(remapped)
	if err != nil {
		t.Fatal(err)
	}
	if cs2.PA() != 1 {
		t.Fatalf("reversed-order identity PA = %.4f, want 1 (one-pass routing)", cs2.PA())
	}
	for i, o := range out {
		if !o.Delivered() || table[o.Output] != identity[i] {
			t.Fatalf("input %d: delivered %v, compensated %d, want %d", i, o, table[o.Output], identity[i])
		}
	}
}

func TestResubmissionFacade(t *testing.T) {
	cfg, err := New(16, 4, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	model, err := Resubmission(cfg, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if model.PAPrime <= 0 || model.PAPrime >= 1 {
		t.Fatalf("PA' = %g", model.PAPrime)
	}
	if model.Efficiency() <= 0 || model.Efficiency() > 1 {
		t.Fatalf("efficiency = %g", model.Efficiency())
	}
}

func TestDilatedFacade(t *testing.T) {
	dd, err := NewDilatedDelta(4, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	ratio, err := dd.WireRatioVersusEDN()
	if err != nil {
		t.Fatal(err)
	}
	if ratio != 4 {
		t.Fatalf("wire ratio = %g, want 4", ratio)
	}
}

func TestPatternFacades(t *testing.T) {
	if _, err := BitReversalPattern(64); err != nil {
		t.Fatal(err)
	}
	if _, err := BitReversalPattern(63); err == nil {
		t.Fatal("expected power-of-two error")
	}
	u := Uniform{Rate: 0.5, Rng: NewRand(1)}
	if len(u.Generate(16, 16)) != 16 {
		t.Fatal("uniform pattern length")
	}
	h := HotSpot{Rate: 1, Fraction: 0.5, Hot: 3, Rng: NewRand(2)}
	if len(h.Generate(16, 16)) != 16 {
		t.Fatal("hotspot pattern length")
	}
	p := PartialPermutation{Rate: 0.5, Rng: NewRand(3)}
	if len(p.Generate(16, 16)) != 16 {
		t.Fatal("partial permutation length")
	}
}

func TestSIMDFacade(t *testing.T) {
	sys, err := NewRAEDN(4, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	perm := NewRand(9).Perm(sys.N())
	res, err := RoutePermutation(sys, perm, RouteOptions{Seed: 1, Scheduler: GreedyDistinctScheduler{}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < sys.Q {
		t.Fatalf("cycles %d below q", res.Cycles)
	}
	var _ Scheduler = RandomScheduler{}
	var _ Scheduler = FIFOScheduler{}
}

func TestMeasureFacades(t *testing.T) {
	cfg, err := New(16, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureUniformPA(cfg, 1, SimOptions{Cycles: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.PA <= 0 || res.PA > 1 {
		t.Fatalf("measured PA = %g", res.PA)
	}
	pres, err := MeasurePermutationPA(cfg, SimOptions{Cycles: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if pres.PA <= res.PA {
		t.Fatalf("permutation PA %.4f should beat uniform %.4f", pres.PA, res.PA)
	}
	m, err := SimulateMIMD(cfg, 0.5, MIMDOptions{Cycles: 200, Warmup: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m.PA <= 0 {
		t.Fatalf("MIMD measured: %+v", m)
	}
	fp, err := MeasurePA(cfg, IdentityPattern(cfg.Inputs()), SimOptions{Cycles: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if fp.PA <= 0 {
		t.Fatalf("fixed pattern PA = %g", fp.PA)
	}
}

func TestConstructorFacades(t *testing.T) {
	if _, err := NewCrossbar(16); err != nil {
		t.Fatal(err)
	}
	if _, err := NewDelta(8, 8, 3); err != nil {
		t.Fatal(err)
	}
	if _, err := New(7, 4, 2, 1); err == nil {
		t.Fatal("expected validation error")
	}
	if _, err := NewRetirementOrder(mustNew(t, 8, 4, 2, 3), []int{2, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if !StandardOrder(mustNew(t, 8, 4, 2, 3)).IsStandard() {
		t.Fatal("standard order not standard")
	}
}

func mustNew(t *testing.T, a, b, c, l int) Config {
	t.Helper()
	cfg, err := New(a, b, c, l)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}
