// Closed-loop round trips: what does a processor actually experience?
//
// Every earlier example measures the fabric open-loop — packets go in,
// deliveries are counted. A shared-memory machine doesn't work that
// way: a processor issues a request, the memory port services it, the
// reply comes back through a second fabric, and the processor stalls
// when its outstanding-request window fills. Loss becomes a timeout,
// timeout becomes a retry, and a dead region of the machine becomes
// latency seen by every source that keeps asking for it.
//
// This example runs that workload over the headline EDN(4,4,2,3) — 16
// processors, 128 memory ports — against its equal-redundancy 2-dilated
// counterpart, with bit-identical demand streams on both fabrics.
// First healthy, sweeping demand; then through a churned service life
// (MTBF 32 / MTTR 8 per wire: ~20% dead in steady state) under an SLA
// response-deadline curve. The two phases disagree, and that is the
// point: healthy, the EDN's expansion wins every rate; churned, the
// verdict flips, because a round trip must survive every hop twice and
// the EDN's extra expansion stage compounds loss faster than its
// bucket redundancy recovers it.
//
//	go run ./examples/closedloop
package main

import (
	"fmt"
	"log"

	"edn"
)

func main() {
	cfg, err := edn.New(4, 4, 2, 3) // 16 sources, 128 memory ports
	if err != nil {
		log.Fatal(err)
	}
	dcfg, err := edn.DilatedCounterpart(cfg)
	if err != nil {
		log.Fatal(err)
	}

	lo := edn.ClosedLoopOptions{
		Window:      4,
		Timeout:     64,
		Retry:       edn.RetryBackoff,
		BackoffBase: 2, BackoffCap: 32,
		SLA: edn.SLA{Deadline: 48, Zero: 16}, // full credit <= 16 cycles, none past 48
	}
	qopts := edn.QueueOptions{Depth: 4, Policy: edn.QueueDrop}
	dopts := edn.DilatedQueueOptions{Depth: 4, Policy: edn.QueueDrop}
	opts := edn.SimOptions{Cycles: 2000, Warmup: 300, Seed: 1}
	const shards = 4 // fixed so the run is deterministic

	// Healthy rate sweep, replay-matched: the harness asserts both
	// fabrics saw bit-equal offered request counts at every rate. The
	// rates straddle the dilated counterpart's knee — the EDN's extra
	// wiring keeps it comfortable well past where the counterpart
	// starts missing deadlines.
	rates := []float64{0.1, 0.2, 0.25}
	ednRes, dilRes, err := edn.MeasureClosedLoopPair(cfg, dcfg, rates, lo, qopts, dopts, opts, shards)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healthy closed loop — %v vs %v, W=%d, timeout=%d, retry=%v\n",
		cfg, dcfg, lo.Window, lo.Timeout, lo.Retry)
	fmt.Println(" rate   EDN goodput  sla    p95 | dilated goodput  sla    p95")
	for i, r := range ednRes {
		d := dilRes[i]
		fmt.Printf(" %.2f     %.3f    %.3f  %4.0f |       %.3f    %.3f  %4.0f\n",
			r.Rate, r.Goodput, r.SLAAttainment, r.LatencyP95,
			d.Goodput, d.SLAAttainment, d.LatencyP95)
	}

	// The same workload over a churned service life: both fabrics of
	// each machine churn independently, sources avoid unreachable
	// memory ports, and the SLA curve prices every late or lost round
	// trip into a single cost-of-downtime number.
	spec := edn.LifecycleSpec{Mode: edn.FaultWires, MTBF: 32, MTTR: 8}
	lopts := edn.LifetimeOptions{Epochs: 30, EpochCycles: 200, Load: 0.2, Spec: spec}
	ednLife, err := edn.ClosedLoopLifetimeSweep(cfg, lopts, lo, qopts, opts, shards)
	if err != nil {
		log.Fatal(err)
	}
	dilLife, err := edn.DilatedClosedLoopLifetimeSweep(dcfg, lopts, lo, dopts, opts, shards)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nchurned lifetime (mtbf=%g, mttr=%g: %.0f%% of wires dead in steady state, rate=%g)\n",
		spec.MTBF, spec.MTTR, 100*spec.DeadFractionSteadyState(), lopts.Load)
	for _, r := range []edn.ClosedLoopLifetimeResult{ednLife, dilLife} {
		fmt.Printf("  %-28s goodput=%.3f/src/cycle sla=%.3f downtime-cost=%.1f%% retries=%d givenup=%d\n",
			r.Network(), r.GoodputOverall, r.SLAAttainmentOverall,
			100*r.CostOfDowntime, r.Ledger.Retries, r.Ledger.GivenUp)
	}
	fmt.Println("\nBoth machines asked for the same work, bit for bit. Healthy, the")
	fmt.Println("EDN's 128 service ports and spare paths keep its tail flat well")
	fmt.Println("past the counterpart's knee. Under churn the shallower dilated")
	fmt.Println("fabric loses fewer round trips — survival is exponential in hop")
	fmt.Println("count, and depth is the one thing expansion cannot buy back.")
	fmt.Println("Open-loop bandwidth (examples/lifetime) and closed-loop deadline")
	fmt.Println("credit rank the same two machines differently; which one is")
	fmt.Println("'more robust' depends on which question the workload asks.")
}
