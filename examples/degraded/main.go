// Degraded mode: what does EDN expansion buy when the network starts
// dying?
//
// Theorem 2 gives EDN(a,b,c,l) exactly c^l equivalent paths per
// source/destination pair. The bandwidth story of that freedom is in
// examples/latency; this example tells the survival story. Interstage
// wires die at a rising fault fraction and the router grants around
// them: a bucket with a dead wire keeps carrying traffic on its
// siblings, so the expanded EDN(4,4,2,3) (two wires per bucket, 8 paths
// per pair) sheds bandwidth gracefully, while the same fraction applied
// to its delta-network corner EDN(4,4,1,2) (single path) severs whole
// routes — its reachable-output fraction collapses with the wires.
//
//	go run ./examples/degraded
package main

import (
	"fmt"
	"log"

	"edn"
)

func main() {
	expanded, err := edn.New(4, 4, 2, 3) // 16 inputs, 2 wires/bucket, 8 paths/pair
	if err != nil {
		log.Fatal(err)
	}
	delta, err := edn.New(4, 4, 1, 2) // same 16 inputs, single path
	if err != nil {
		log.Fatal(err)
	}

	aopts := edn.AvailabilityOptions{
		Fractions: []float64{0, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5},
		Mode:      edn.FaultWires,
		Load:      1,
	}
	// Drop policy: degraded circuit-switched operation. (Backpressure
	// would park packets behind dead components instead of measuring
	// what still flows.)
	qopts := edn.QueueOptions{Depth: 4, Policy: edn.QueueDrop}
	opts := edn.SimOptions{Cycles: 4000, Warmup: 1000, Seed: 1}
	const shards = 4 // fixed so the run is deterministic

	for _, cfg := range []edn.Config{expanded, delta} {
		results, err := edn.AvailabilitySweep(cfg, aopts, nil, qopts, opts, shards)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v — %d inputs, %d paths/pair, dead wires at rising fraction\n",
			cfg, cfg.Inputs(), cfg.PathCount())
		fmt.Printf("  %9s %11s %10s %8s %10s\n", "fraction", "thr/input", "reachable", "p99", "deadwires")
		for _, r := range results {
			fmt.Printf("  %9.2f %11.3f %10.3f %8.0f %10.1f\n",
				r.FaultFraction, r.ThroughputPerInput, r.ReachableFraction, r.LatencyP99, r.DeadWires)
		}
		fmt.Println()
	}
	fmt.Println("The expanded network's spare bucket wires absorb the first faults almost")
	fmt.Println("for free and keep every output reachable deep into the sweep; the")
	fmt.Println("single-path delta corner loses destinations in proportion to its dead")
	fmt.Println("wires and its delivered bandwidth falls with them.")
}
