// Hot-spot (NUTS) study: the introduction motivates EDN multipath as a
// defense against Non-Uniform Traffic Spots (Lang & Kurisaki). This
// example concentrates a growing fraction of all requests onto a single
// memory module and measures how acceptance degrades on three networks
// of identical port count: a pure delta network, the MasPar-geometry
// EDN, and a higher-capacity EDN. Multipath absorbs internal contention
// created by the hot module's back-pressure; the singleton hot output
// itself saturates identically everywhere (it is one wire), so the
// interesting signal is the fate of the *background* traffic.
//
//	go run ./examples/hotspot
package main

import (
	"fmt"
	"log"

	"edn"
)

func main() {
	// Three 1024-port designs from the edn-explore Pareto sweep.
	configs := []struct {
		name       string
		a, b, c, l int
	}{
		{"delta   EDN(4,4,1,5)", 4, 4, 1, 5},
		{"maspar  EDN(64,16,4,2)", 64, 16, 4, 2},
		{"high-c  EDN(64,4,16,3)", 64, 4, 16, 3},
	}

	fmt.Println("hot-spot traffic at r=0.75, 1024 ports: fraction of ALL requests aimed at module 0")
	fmt.Printf("%-24s", "network")
	fractions := []float64{0, 0.01, 0.05, 0.1, 0.2}
	for _, f := range fractions {
		fmt.Printf("  f=%-6.2f", f)
	}
	fmt.Println()

	for _, cse := range configs {
		cfg, err := edn.New(cse.a, cse.b, cse.c, cse.l)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s", cse.name)
		for _, f := range fractions {
			pattern := edn.HotSpot{Rate: 0.75, Fraction: f, Hot: 0, Rng: edn.NewRand(11)}
			res, err := edn.MeasurePA(cfg, pattern, edn.SimOptions{Cycles: 300, Seed: 13})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %.4f  ", res.PA)
		}
		fmt.Println()
	}

	fmt.Println("\nmultipass drain of a worst-case pattern (every input -> module 0, 32-port networks):")
	for _, dims := range [][4]int{{4, 4, 1, 2}, {8, 4, 2, 2}} {
		cfg, err := edn.New(dims[0], dims[1], dims[2], dims[3])
		if err != nil {
			log.Fatal(err)
		}
		dest := make([]int, cfg.Inputs())
		res, err := edn.RouteMultipass(cfg, dest, nil, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %v: %d messages to one port drain in %d passes (1 per pass — the output wire is the bottleneck)\n",
			cfg, cfg.Inputs(), res.Passes)
	}
}
