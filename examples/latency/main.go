// Latency-vs-load: what does EDN expansion buy a *buffered* network?
//
// The paper argues expansion (c > 1) absorbs contention in a
// circuit-switched network. This example asks the queueing-side
// question: with identical 4x4-bucket switches, identical 16 input
// ports and identical FIFO depth, how do queueing delay and saturation
// throughput compare between the expanded EDN(4,4,2,3) (16 -> 128, two
// wires per bucket, 8 paths per pair) and its delta-network corner
// EDN(4,4,1,2) (16 -> 16, single path)?
//
//	go run ./examples/latency
package main

import (
	"fmt"
	"log"

	"edn"
)

func main() {
	expanded, err := edn.New(4, 4, 2, 3) // EDN(4,4,2,3): 16 inputs, 128 outputs
	if err != nil {
		log.Fatal(err)
	}
	delta, err := edn.New(4, 4, 1, 2) // EDN(4,4,1,2): the c=1 corner with the same 16 inputs
	if err != nil {
		log.Fatal(err)
	}

	loads := []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1.0}
	qopts := edn.QueueOptions{Depth: 4, Policy: edn.QueueBackpressure}
	opts := edn.SimOptions{Cycles: 4000, Warmup: 1000, Seed: 1}

	for _, cfg := range []edn.Config{expanded, delta} {
		results, err := edn.SaturationSweep(cfg, loads, nil, qopts, opts, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%v — %d inputs, %d outputs, %d paths/pair, depth %d FIFOs\n",
			cfg, cfg.Inputs(), cfg.Outputs(), cfg.PathCount(), qopts.Depth)
		fmt.Printf("  %6s %11s %8s %8s %8s\n", "load", "thr/input", "p50", "p95", "p99")
		for i, r := range results {
			fmt.Printf("  %6.2f %11.3f %8.0f %8.0f %8.0f\n",
				loads[i], r.Throughput/float64(cfg.Inputs()),
				r.LatencyP50, r.LatencyP95, r.LatencyP99)
		}
		fmt.Println()
	}
	fmt.Println("The expanded network's extra bucket wires keep per-input throughput")
	fmt.Println("near the offered load and the latency tail flat, while the single-path")
	fmt.Println("delta corner saturates early and its P99 grows with the queues.")
}
