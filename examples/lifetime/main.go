// Lifetime churn: what does EDN expansion buy over a machine's whole
// service life?
//
// examples/degraded froze a fault set and measured the wreckage; real
// machines live under continuous churn — components fail stochastically
// and repair crews bring them back. This example runs the expanded
// EDN(4,4,2,3) through such a lifetime (exponential MTBF/MTTR per
// interstage wire, ~20% of wires dead in steady state) and compares its
// lifetime-average bandwidth against the same family's delta-network
// corner EDN(4,4,1,2) running with NO faults at all. The expanded
// network's spare bucket wires absorb the churn so well that even while
// perpetually broken it outdelivers the pristine single-path delta —
// the static dominance result of examples/degraded extended to the
// time axis.
//
//	go run ./examples/lifetime
package main

import (
	"fmt"
	"log"

	"edn"
)

func main() {
	expanded, err := edn.New(4, 4, 2, 3) // 16 inputs, 2 wires/bucket, 8 paths/pair
	if err != nil {
		log.Fatal(err)
	}
	delta, err := edn.New(4, 4, 1, 2) // same 16 inputs, single path
	if err != nil {
		log.Fatal(err)
	}

	// MTBF 32, MTTR 8: each wire spends 1/5 of its life dead — an
	// aggressively unreliable machine.
	spec := edn.LifecycleSpec{Mode: edn.FaultWires, MTBF: 32, MTTR: 8}
	lopts := edn.LifetimeOptions{Epochs: 40, EpochCycles: 200, Spec: spec}
	qopts := edn.QueueOptions{Depth: 4, Policy: edn.QueueDrop}
	opts := edn.SimOptions{Warmup: 500, Seed: 1}
	const shards = 4 // fixed so the run is deterministic

	churned, err := edn.LifetimeSweep(expanded, lopts, nil, qopts, opts, shards)
	if err != nil {
		log.Fatal(err)
	}
	// The delta corner lives a charmed life: zero churn. (Its healthy
	// bandwidth is its lifetime bandwidth; measuring it through the same
	// harness keeps the comparison apples-to-apples.)
	healthySpec := edn.LifecycleSpec{Mode: edn.FaultWires, MTBF: 1e12, MTTR: 1}
	healthyOpts := lopts
	healthyOpts.Spec = healthySpec
	pristine, err := edn.LifetimeSweep(delta, healthyOpts, nil, qopts, opts, shards)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%v under churn (mtbf=%g, mttr=%g: %.0f%% of wires dead in steady state)\n",
		expanded, spec.MTBF, spec.MTTR, 100*spec.DeadFractionSteadyState())
	fmt.Printf("  %6s %9s %10s %10s\n", "epoch", "deadfrac", "thr/input", "reachable")
	for e := 0; e < churned.Epochs; e += 5 {
		fmt.Printf("  %6d %9.3f %10.3f %10.3f\n",
			e, churned.DeadFraction.Mean(e), churned.Bandwidth.Mean(e), churned.Reachable.Mean(e))
	}
	fmt.Println()
	fmt.Printf("lifetime-average bandwidth per input:\n")
	fmt.Printf("  %v, perpetually breaking:  %.3f\n", expanded, churned.LifetimeBandwidth)
	fmt.Printf("  %v, never failing at all: %.3f\n", delta, pristine.LifetimeBandwidth)
	if churned.LifetimeBandwidth > pristine.LifetimeBandwidth {
		fmt.Println("\nThe expanded network spends its whole life losing wires and still")
		fmt.Println("outdelivers the fault-free single-path delta: Theorem 2's path")
		fmt.Println("redundancy is worth more than perfect hardware.")
	}
	if churned.Stranded > 0 {
		fmt.Printf("\n(%d packets were stranded on wires that died under them and were\n", churned.Stranded)
		fmt.Println("dropped at the epoch boundary — the price of in-place failure,")
		fmt.Println("which a rebuild-per-epoch simulation could never observe.)")
	}
}
