// MIMD shared-memory study (Section 4): processors share memory modules
// through an EDN; blocked requests are resubmitted until satisfied. The
// example sweeps the fresh request rate, solves the Equation 7-11 Markov
// fixed point, measures the same system with the cycle-level simulator,
// and reports both side by side — the Figure 11 phenomenon plus the
// processor-efficiency numbers the paper derives.
//
//	go run ./examples/mimd
package main

import (
	"fmt"
	"log"

	"edn"
)

func main() {
	// A 256-port shared-memory machine: EDN(16,4,4,4) between 256
	// processors and 256 memory modules (the NYU Ultracomputer scale).
	cfg, err := edn.New(16, 4, 4, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shared-memory system over %v (%d processors, %d memory modules)\n\n",
		cfg, cfg.Inputs(), cfg.Outputs())

	fmt.Printf("%-6s  %-28s  %-28s  %-10s\n", "r", "model (Eq. 7-11)", "simulated", "efficiency")
	fmt.Printf("%-6s  %-28s  %-28s  %-10s\n", "", "PA'     r'      qA", "PA'     r'      qA", "(model)")
	for _, r := range []float64{0.1, 0.25, 0.5, 0.75, 1.0} {
		model, err := edn.Resubmission(cfg, r)
		if err != nil {
			log.Fatal(err)
		}
		meas, err := edn.SimulateMIMD(cfg, r, edn.MIMDOptions{Cycles: 2000, Warmup: 300, Seed: 7})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6.2f  %-7.4f %-7.4f %-11.4f  %-7.4f %-7.4f %-11.4f  %.4f\n",
			r, model.PAPrime, model.EffectiveRate, model.QActive,
			meas.PA, meas.EffectiveRate, meas.QActive, model.Efficiency())
	}

	// The resubmission penalty at r = 0.5 (the Figure 11 comparison).
	const r = 0.5
	ignored := edn.PA(cfg, r)
	model, err := edn.Resubmission(cfg, r)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat r=%.1f: PA with rejects ignored = %.4f, sustained PA' with resubmission = %.4f\n",
		r, ignored, model.PAPrime)
	fmt.Printf("resubmission inflates the offered rate from %.2f to r' = %.4f\n", r, model.EffectiveRate)

	// Realism ablation: physically persistent retries (same module every
	// cycle) versus the paper's uniform-redraw assumption.
	redraw, err := edn.SimulateMIMD(cfg, r, edn.MIMDOptions{Cycles: 2000, Warmup: 300, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	persistent, err := edn.SimulateMIMD(cfg, r, edn.MIMDOptions{
		Cycles: 2000, Warmup: 300, Seed: 7, PersistentDestinations: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nretry model ablation at r=%.1f:\n", r)
	fmt.Printf("  uniform redraw (paper's assumption): PA'=%.4f, waiting %.1f%%, avg wait %.2f cycles\n",
		redraw.PA, 100*redraw.QWaiting, redraw.AvgWaitCycles)
	fmt.Printf("  persistent destination (realistic):  PA'=%.4f, waiting %.1f%%, avg wait %.2f cycles\n",
		persistent.PA, 100*persistent.QWaiting, persistent.AvgWaitCycles)
}
