// Quickstart: build an Expanded Delta Network, inspect its structure and
// cost, query the closed-form performance model, trace one message, and
// route a full cycle of random traffic through the cycle-level simulator.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"edn"
)

func main() {
	// The MasPar MP-1 router network: EDN(64,16,4,2) — 1024x1024, built
	// from H(64 -> 16x4) hyperbars and 4x4 output crossbars.
	cfg, err := edn.New(64, 16, 4, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network          %v\n", cfg)
	fmt.Printf("terminals        %d inputs, %d outputs\n", cfg.Inputs(), cfg.Outputs())
	fmt.Printf("stages           %d hyperbar + 1 crossbar\n", cfg.L)
	fmt.Printf("paths per pair   %d (Theorem 2: c^l)\n", cfg.PathCount())
	fmt.Printf("crosspoint cost  %d (Equation 2)\n", cfg.CrosspointCount())
	fmt.Printf("wire cost        %d (Equation 3)\n", cfg.WireCount())

	// Closed-form performance (Section 3.2).
	fmt.Printf("\nPA(1)   = %.4f  (Equation 4, uniform traffic at full load)\n", edn.PA(cfg, 1))
	fmt.Printf("PAp(1)  = %.4f  (Equation 5, permutation traffic)\n", edn.PAPermutation(cfg, 1))
	fmt.Printf("crossbar reference at the same size: %.4f\n", edn.CrossbarPA(cfg.Inputs(), 1))

	// Trace one message through the Lemma 1 walk.
	tr, err := edn.TraceRoute(cfg, 631, 422, []int{1, 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", tr)

	// Route one cycle of uniform random traffic.
	net, err := edn.NewNetwork(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	rng := edn.NewRand(42)
	dest := make([]int, cfg.Inputs())
	for i := range dest {
		dest[i] = rng.Intn(cfg.Outputs())
	}
	_, stats, err := net.RouteCycle(dest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\none simulated cycle at full load: %d/%d delivered (PA=%.4f, model %.4f)\n",
		stats.Delivered, stats.Offered, stats.PA(), edn.PA(cfg, 1))
	fmt.Printf("blocked per stage: %v\n", stats.Blocked)
}
