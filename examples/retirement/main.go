// Retirement-order demonstration (Corollary 2, Figures 5 and 6): the
// EDN(64,16,4,2) network cannot route the identity permutation in one
// pass — every first-stage switch funnels its entire load into a single
// bucket — but retiring the tag digits in reverse order spreads the load
// perfectly, and a fixed compensating permutation at the outputs restores
// every destination. Average-case behavior is unchanged; specific
// permutations differ dramatically, exactly as the paper notes.
//
//	go run ./examples/retirement
package main

import (
	"fmt"
	"log"

	"edn"
)

func main() {
	cfg, err := edn.New(64, 16, 4, 2)
	if err != nil {
		log.Fatal(err)
	}
	net, err := edn.NewNetwork(cfg, nil)
	if err != nil {
		log.Fatal(err)
	}
	identity := edn.IdentityPattern(cfg.Inputs()).Dest

	// Pass 1: standard retirement order (Figure 5).
	_, stats, err := net.RouteCycle(identity)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%v, identity permutation, standard order d1 then d0:\n", cfg)
	fmt.Printf("  delivered %d/%d (PA = %.4f) — every switch fights over one bucket\n\n",
		stats.Delivered, stats.Offered, stats.PA())

	// Pass 2: reversed retirement order (Figure 6): route to F(dst), then
	// apply the fixed compensating permutation F^-1 at the outputs.
	order := edn.ReversedOrder(cfg)
	table, err := order.OutputPermutation()
	if err != nil {
		log.Fatal(err)
	}
	remapped := make([]int, len(identity))
	for i, d := range identity {
		f, err := order.F(d)
		if err != nil {
			log.Fatal(err)
		}
		remapped[i] = f
	}
	out, stats2, err := net.RouteCycle(remapped)
	if err != nil {
		log.Fatal(err)
	}
	correct := 0
	for i, o := range out {
		if o.Delivered() && table[o.Output] == identity[i] {
			correct++
		}
	}
	fmt.Printf("reversed order d0 then d1, plus the Figure 6 output permutation:\n")
	fmt.Printf("  delivered %d/%d (PA = %.4f), %d arrive at their original destinations\n\n",
		stats2.Delivered, stats2.Offered, stats2.PA(), correct)

	// Average case is unchanged: random traffic sees the same acceptance
	// under either order (Corollary 2's closing remark).
	res, err := edn.MeasureUniformPA(cfg, 1, edn.SimOptions{Cycles: 300, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("uniform random traffic for reference: PA = %.4f (order-independent)\n", res.PA)

	// Show the first few entries of the compensating permutation.
	fmt.Printf("\ncompensating output permutation (first 8 entries): %v\n", table[:8])
}
