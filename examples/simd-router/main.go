// SIMD global-router study (Section 5): a MasPar MP-1-style machine in
// which clusters of PEs share network ports (the Restricted-Access EDN).
// The example routes random permutations over all 16K processing
// elements, compares the measured delivery time with the Section 5.1
// estimate q/PA(1) + J, and ablates the cluster schedule.
//
//	go run ./examples/simd-router
package main

import (
	"fmt"
	"log"

	"edn"
)

func main() {
	sys := edn.MasParMP1()
	fmt.Printf("system    %v — the MasPar MP-1 16K router\n", sys)
	fmt.Printf("network   %v (%d ports)\n", sys.Network, sys.P())
	fmt.Printf("clusters  %d x %d PEs = %d processors\n\n", sys.P(), sys.Q, sys.N())

	model, err := edn.ExpectedPermutationTime(sys.Network, sys.Q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Section 5.1 estimate: q/PA(1) + J = %.2f/%.4f + %d = %.2f cycles (paper: 34.41)\n\n",
		float64(sys.Q), model.PA1, model.J, model.Cycles())

	// Route three random permutations and watch the drain.
	rng := edn.NewRand(2024)
	for trial := 1; trial <= 3; trial++ {
		perm := rng.Perm(sys.N())
		res, err := edn.RoutePermutation(sys, perm, edn.RouteOptions{Seed: rng.Uint64() | 1})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trial %d: %d cycles; deliveries per cycle: first %v ... last %v\n",
			trial, res.Cycles, res.Delivered[:3], res.Delivered[len(res.Delivered)-3:])
	}

	// Schedule ablation on a smaller sibling so each variant runs many
	// trials quickly: RA-EDN(4,4,2,8) = EDN(16,4,4,2) with 64 ports.
	small, err := edn.NewRAEDN(4, 4, 2, 8)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nschedule ablation on %v (%d PEs):\n", small, small.N())
	for _, sched := range []edn.Scheduler{
		edn.RandomScheduler{}, edn.FIFOScheduler{}, edn.GreedyDistinctScheduler{},
	} {
		var total int
		const trials = 10
		r := edn.NewRand(77)
		for i := 0; i < trials; i++ {
			perm := r.Perm(small.N())
			res, err := edn.RoutePermutation(small, perm, edn.RouteOptions{Seed: r.Uint64() | 1, Scheduler: sched})
			if err != nil {
				log.Fatal(err)
			}
			total += res.Cycles
		}
		fmt.Printf("  %-16s mean %.1f cycles over %d permutations\n",
			sched.Name(), float64(total)/trials, trials)
	}
	smallModel, err := edn.ExpectedPermutationTime(small.Network, small.Q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-16s %.1f cycles\n", "(model)", smallModel.Cycles())
}
