package edn

import (
	"math"
	"strings"
	"testing"
)

// experiments_test.go holds the golden paper-vs-measured assertions: one
// test per evaluation artifact of the paper, checking the *shape* the
// paper reports (who wins, by roughly what factor, where curves sit) on
// the exact configurations the paper plots. EXPERIMENTS.md records the
// corresponding numbers.

func seriesByName(t *testing.T, c Chart, name string) ChartSeries {
	t.Helper()
	for _, s := range c.Series {
		if s.Name == name {
			return s
		}
	}
	t.Fatalf("chart %q has no series %q", c.Title, name)
	return ChartSeries{}
}

func valueAt(t *testing.T, s ChartSeries, x float64) float64 {
	t.Helper()
	for i := range s.X {
		if s.X[i] == x {
			return s.Y[i]
		}
	}
	t.Fatalf("series %q has no point at x=%g", s.Name, x)
	return 0
}

// TestFigure7Shape checks Figure 7's qualitative content: the crossbar
// dominates, capacity ordering holds at every common size, the delta
// family decays fastest, and the EDN(8,2,4,*) family stays near the
// crossbar even at 10^6 inputs (the paper's headline claim).
func TestFigure7Shape(t *testing.T) {
	chart, err := Figure7(DefaultMaxInputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(chart.Series) != 4 {
		t.Fatalf("Figure 7 has %d series, want 4", len(chart.Series))
	}
	xbar := seriesByName(t, chart, "Full Crossbar")
	c4 := seriesByName(t, chart, "EDN(8,2,4,*)")
	c2 := seriesByName(t, chart, "EDN(8,4,2,*)")
	c1 := seriesByName(t, chart, "EDN(8,8,1,*)")

	// Common sizes of all three families: 8 and 512 and 32768.
	for _, size := range []float64{512, 32768} {
		pa1 := valueAt(t, c1, size)
		pa2 := valueAt(t, c2, size)
		pa4 := valueAt(t, c4, size)
		if !(pa1 < pa2 && pa2 < pa4) {
			t.Errorf("size %g: capacity ordering violated: %.4f, %.4f, %.4f", size, pa1, pa2, pa4)
		}
	}
	// Crossbar floor is 1 - 1/e; every family sits below the crossbar at
	// matched size.
	last := xbar.Y[len(xbar.Y)-1]
	if last < 1-1/math.E-1e-3 || last > 0.70 {
		t.Errorf("crossbar tail %.4f out of expected band", last)
	}
	// Delta decays hard: below 0.45 by 512 inputs (the "falls off
	// rapidly" claim).
	if pa := valueAt(t, c1, 512); pa > 0.45 {
		t.Errorf("delta at 512 inputs = %.4f, expected < 0.45", pa)
	}
	big := c4.X[len(c4.X)-1]
	if big < 1<<19 {
		t.Errorf("EDN(8,2,4,*) sweep stops at %g inputs; want ~1e6", big)
	}
	// The c=4 family degrades gently: still above 0.35 at ~1e6 inputs and
	// well clear of the delta family at the largest common size.
	paBig := c4.Y[len(c4.Y)-1]
	if paBig < 0.35 {
		t.Errorf("EDN(8,2,4,*) at %g inputs = %.4f; expected a gentle decay (>0.35)", big, paBig)
	}
	if pa4, pa1 := valueAt(t, c4, 32768), valueAt(t, c1, 32768); pa4 < 1.4*pa1 {
		t.Errorf("EDN(8,2,4,*) %.4f should exceed the delta %.4f by >1.4x at 32768", pa4, pa1)
	}
}

// TestFigure8Shape checks Figure 8: four 16-wide families, same capacity
// ordering, and strictly better than the 8-wide families of Figure 7 at
// matched capacity and size.
func TestFigure8Shape(t *testing.T) {
	chart, err := Figure8(DefaultMaxInputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(chart.Series) != 5 {
		t.Fatalf("Figure 8 has %d series, want 5", len(chart.Series))
	}
	c8 := seriesByName(t, chart, "EDN(16,2,8,*)")
	c4 := seriesByName(t, chart, "EDN(16,4,4,*)")
	c2 := seriesByName(t, chart, "EDN(16,8,2,*)")
	c1 := seriesByName(t, chart, "EDN(16,16,1,*)")

	// Common sizes: the four families share sizes where 2^l*8 = 4^m*4 =
	// 8^n*2 = 16^k intersect; 65536 = 2^13*8 = 4^7*4 = 8^5*2 = 16^4.
	const size = 65536
	pa1 := valueAt(t, c1, size)
	pa2 := valueAt(t, c2, size)
	pa4 := valueAt(t, c4, size)
	pa8 := valueAt(t, c8, size)
	if !(pa1 < pa2 && pa2 < pa4 && pa4 < pa8) {
		t.Errorf("capacity ordering violated at %d: %.4f %.4f %.4f %.4f", size, pa1, pa2, pa4, pa8)
	}

	// Cross-figure: 16-wide c=2 beats 8-wide c=2 at 8192 inputs.
	fig7, err := Figure7(DefaultMaxInputs)
	if err != nil {
		t.Fatal(err)
	}
	pa842 := valueAt(t, seriesByName(t, fig7, "EDN(8,4,2,*)"), 8192)
	pa1682 := valueAt(t, c2, 8192)
	if pa1682 <= pa842 {
		t.Errorf("EDN(16,8,2,*) %.4f should beat EDN(8,4,2,*) %.4f at 8192 inputs", pa1682, pa842)
	}
}

// TestFigure11Shape checks Figure 11: resubmission strictly lowers the
// sustained acceptance for both plotted families at every size, and the
// richer EDN(16,4,4,*) dominates EDN(4,2,2,*) under both regimes.
func TestFigure11Shape(t *testing.T) {
	chart, err := Figure11(DefaultMaxInputs)
	if err != nil {
		t.Fatal(err)
	}
	if len(chart.Series) != 4 {
		t.Fatalf("Figure 11 has %d series, want 4", len(chart.Series))
	}
	ign1644 := seriesByName(t, chart, "EDN(16,4,4,*) rejected requests ignored")
	res1644 := seriesByName(t, chart, "EDN(16,4,4,*) rejected requests resubmitted")
	ign422 := seriesByName(t, chart, "EDN(4,2,2,*) rejected requests ignored")
	res422 := seriesByName(t, chart, "EDN(4,2,2,*) rejected requests resubmitted")

	check := func(ign, res ChartSeries) {
		if len(ign.X) != len(res.X) {
			t.Fatalf("series length mismatch: %d vs %d", len(ign.X), len(res.X))
		}
		for i := range ign.X {
			if res.Y[i] > ign.Y[i]+1e-12 {
				t.Errorf("%s at %g: resubmitted %.4f above ignored %.4f", res.Name, res.X[i], res.Y[i], ign.Y[i])
			}
		}
	}
	check(ign1644, res1644)
	check(ign422, res422)

	// Common size 1024 = 4^4*4 = 2^9*2: the 16-wide family wins under
	// both regimes, and resubmission hurts the weak network more.
	gapSmall := valueAt(t, ign422, 1024) - valueAt(t, res422, 1024)
	gapBig := valueAt(t, ign1644, 1024) - valueAt(t, res1644, 1024)
	if valueAt(t, res1644, 1024) <= valueAt(t, res422, 1024) {
		t.Error("EDN(16,4,4,*) should dominate EDN(4,2,2,*) under resubmission")
	}
	if gapSmall <= gapBig {
		t.Errorf("resubmission penalty should be larger for the weaker network: %.4f vs %.4f", gapSmall, gapBig)
	}
}

// TestMasParExample pins the Section 5.1 case study through the public
// facade (the internal packages pin the same numbers independently).
func TestMasParExample(t *testing.T) {
	sys := MasParMP1()
	model, err := ExpectedPermutationTime(sys.Network, sys.Q)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(model.PA1-0.544) > 0.001 {
		t.Errorf("PA(1) = %.4f, want 0.544", model.PA1)
	}
	if math.Abs(model.Cycles()-33.41) > 0.05 {
		t.Errorf("model cycles %.2f, want 33.41 (paper prints 34.41)", model.Cycles())
	}
	report, err := MasParReport(false, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"RA-EDN(16,4,2,16)", "EDN(64,16,4,2)", "0.544", "34.41"} {
		if !strings.Contains(report, want) {
			t.Errorf("MasPar report missing %q:\n%s", want, report)
		}
	}
}

// TestCostTableContent: the Equation 2/3 table carries the crossbar's
// quadratic blowup and the EDN families' near-delta cost — the paper's
// "crossbar performance at delta-like cost" claim.
func TestCostTableContent(t *testing.T) {
	table, err := CostTable(1 << 12)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"EDN(16,16,1,", "EDN(16,4,4,", "crosspoints", "wires", "dilated delta"} {
		if !strings.Contains(table, want) {
			t.Errorf("cost table missing %q:\n%s", want, table)
		}
	}

	// Quantitative spot check at 4096 ports: crossbar crosspoints dwarf
	// the EDN's by orders of magnitude, while the EDN stays within a
	// small factor of the pure delta.
	xb, err := NewCrossbar(4096)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := NewDelta(16, 16, 3)
	if err != nil {
		t.Fatal(err)
	}
	ednCfg, err := New(16, 4, 4, 5) // 4^5*4 = 4096 inputs
	if err != nil {
		t.Fatal(err)
	}
	if ednCfg.Inputs() != 4096 || delta.Inputs() != 4096 {
		t.Fatalf("geometry mismatch: edn %d delta %d", ednCfg.Inputs(), delta.Inputs())
	}
	xbCost := float64(xb.CrosspointCount())
	ednCost := float64(ednCfg.CrosspointCount())
	deltaCost := float64(delta.CrosspointCount())
	if xbCost/ednCost < 20 {
		t.Errorf("crossbar %.0f should cost >20x the EDN %.0f", xbCost, ednCost)
	}
	if ednCost/deltaCost > 8 {
		t.Errorf("EDN %.0f should stay within 8x of delta %.0f", ednCost, deltaCost)
	}
	// And the performance side of the trade, using the highest-capacity
	// 16-wide family (EDN(16,2,8,*)) at the same 4096 ports: close to the
	// crossbar, far above the delta.
	highCap, err := New(16, 2, 8, 9) // 2^9*8 = 4096 inputs
	if err != nil {
		t.Fatal(err)
	}
	paEDN := PA(highCap, 1)
	paDelta := PA(delta, 1)
	paXbar := CrossbarPA(4096, 1)
	if paXbar-paEDN > 0.15 {
		t.Errorf("EDN(16,2,8,9) PA %.4f should track crossbar %.4f", paEDN, paXbar)
	}
	if paEDN < 1.3*paDelta {
		t.Errorf("EDN(16,2,8,9) PA %.4f should beat delta %.4f by >1.3x", paEDN, paDelta)
	}
}

// TestFigureChartsRenderAndExport: every figure renders to ASCII and
// exports CSV without error — the harness the cmd tools rely on.
func TestFigureChartsRenderAndExport(t *testing.T) {
	for _, build := range []func(int) (Chart, error){Figure7, Figure8, Figure11} {
		chart, err := build(1 << 14)
		if err != nil {
			t.Fatal(err)
		}
		if out := chart.Render(); !strings.Contains(out, "Figure") {
			t.Errorf("render missing title:\n%s", out)
		}
		var sb strings.Builder
		if err := chart.WriteCSV(&sb); err != nil {
			t.Fatal(err)
		}
		if lines := strings.Count(sb.String(), "\n"); lines < 10 {
			t.Errorf("CSV too small: %d lines", lines)
		}
	}
}

// TestDegradationCurveShape pins the PR 3 headline experiment (the
// shipped examples/degraded run, same parameters): under rising
// interstage-wire fault fractions the delivered bandwidth of both
// networks decays monotonically, and the expanded EDN(4,4,2,3) —
// two wires per bucket, 8 paths per pair — strictly dominates its
// single-path delta corner EDN(4,4,1,2) in per-input throughput at
// every fraction, fault-free included. Nested per-shard fault plans
// with identical traffic replays make the sweep deterministic, so
// these are exact assertions, not statistical ones.
func TestDegradationCurveShape(t *testing.T) {
	expanded, err := New(4, 4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	delta, err := New(4, 4, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	aopts := AvailabilityOptions{
		Fractions: []float64{0, 0.02, 0.05, 0.1, 0.2, 0.3, 0.5},
		Mode:      FaultWires,
		Load:      1,
	}
	qopts := QueueOptions{Depth: 4, Policy: QueueDrop}
	opts := SimOptions{Cycles: 4000, Warmup: 1000, Seed: 1}
	const shards = 4

	sweep := func(cfg Config) []AvailabilityResult {
		res, err := AvailabilitySweep(cfg, aopts, nil, qopts, opts, shards)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	exp, del := sweep(expanded), sweep(delta)

	for name, res := range map[string][]AvailabilityResult{"expanded": exp, "delta": del} {
		for i := 1; i < len(res); i++ {
			if res[i].Throughput > res[i-1].Throughput {
				t.Errorf("%s: delivered bandwidth rose %.3f -> %.3f at fraction %g",
					name, res[i-1].Throughput, res[i].Throughput, res[i].FaultFraction)
			}
			if res[i].ReachableFraction > res[i-1].ReachableFraction {
				t.Errorf("%s: reachability rose at fraction %g", name, res[i].FaultFraction)
			}
		}
	}
	for i := range exp {
		if exp[i].ThroughputPerInput <= del[i].ThroughputPerInput {
			t.Errorf("fraction %g: expanded %.3f/input does not dominate delta corner %.3f/input",
				exp[i].FaultFraction, exp[i].ThroughputPerInput, del[i].ThroughputPerInput)
		}
		// Reachability: the expanded network has ~7x the wire population,
		// so at tiny fractions it absorbs more absolute faults and can
		// momentarily trail; from 10% on, multipath must dominate.
		if exp[i].FaultFraction >= 0.1 && exp[i].ReachableFraction < del[i].ReachableFraction {
			t.Errorf("fraction %g: expanded reaches %.3f of outputs, delta %.3f — multipath should not reach less",
				exp[i].FaultFraction, exp[i].ReachableFraction, del[i].ReachableFraction)
		}
	}
	// The headline numbers EXPERIMENTS.md quotes: at a 20% wire fault
	// fraction the expanded network still delivers more per input than
	// the delta corner does fault-free.
	if exp[4].FaultFraction != 0.2 {
		t.Fatalf("fraction axis shifted: %g", exp[4].FaultFraction)
	}
	if exp[4].ThroughputPerInput <= del[0].ThroughputPerInput {
		t.Errorf("expanded at 20%% faults (%.3f/input) should beat the fault-free delta corner (%.3f/input)",
			exp[4].ThroughputPerInput, del[0].ThroughputPerInput)
	}
}
