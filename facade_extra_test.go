package edn

import (
	"strings"
	"testing"
)

// facade_extra_test.go covers the design-exploration, netlist,
// stage-rate and multipass surfaces of the public API.

func TestEnumerateDesignsFacade(t *testing.T) {
	points, err := EnumerateDesigns(1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) == 0 {
		t.Fatal("no candidates")
	}
	front := ParetoFront(points)
	if len(front) == 0 || len(front) > len(points) {
		t.Fatalf("front size %d of %d", len(front), len(points))
	}
	// The MasPar router must be on the 1024-port Pareto front — the
	// production machine picked a non-dominated design.
	foundMasPar := false
	for _, p := range front {
		if p.Config.String() == "EDN(64,16,4,2)" {
			foundMasPar = true
		}
	}
	if !foundMasPar {
		t.Error("EDN(64,16,4,2) missing from the 1024-port Pareto front")
	}
	if _, ok := BestDesignUnderBudget(points, 1<<60); !ok {
		t.Error("unlimited budget found nothing")
	}
	if _, ok := CheapestDesignAtFloor(points, 0.5); !ok {
		t.Error("no design at PA floor 0.5")
	}
}

func TestNetlistFacade(t *testing.T) {
	cfg := mustNew(t, 16, 4, 4, 2)
	nl, err := BuildNetlist(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if int64(nl.WireCount()) != cfg.WireCount() {
		t.Fatalf("netlist %d wires vs Equation 3 %d", nl.WireCount(), cfg.WireCount())
	}
	if err := nl.Validate(); err != nil {
		t.Fatal(err)
	}
	desc, err := DescribeNetwork(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc, "EDN(16,4,4,2)") {
		t.Errorf("description missing header:\n%s", desc)
	}
}

func TestMeasureStageRatesFacade(t *testing.T) {
	cfg := mustNew(t, 16, 4, 4, 2)
	res, err := MeasureStageRates(cfg, 1, SimOptions{Cycles: 100, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Measured) != cfg.Stages()+1 {
		t.Fatalf("measured %d boundaries, want %d", len(res.Measured), cfg.Stages()+1)
	}
	model := StageRates(cfg, 1)
	for i := range model {
		if res.Measured[i] < 0 || res.Measured[i] > 1 {
			t.Fatalf("rate %d out of range: %g", i, res.Measured[i])
		}
	}
}

func TestRouteMultipassFacade(t *testing.T) {
	cfg := mustNew(t, 16, 4, 4, 2)
	perm := NewRand(4).Perm(cfg.Inputs())
	res, err := RouteMultipass(cfg, perm, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes < 1 {
		t.Fatalf("passes = %d", res.Passes)
	}
	total := 0
	for _, d := range res.Delivered {
		total += d
	}
	if total != cfg.Inputs() {
		t.Fatalf("delivered %d of %d", total, cfg.Inputs())
	}
}
