package edn

import (
	"testing"
)

// facade_queue_test.go exercises the queueing layer through the public
// facade, the way cmd/edn-latency and the examples consume it.

func TestFacadeQueueNetwork(t *testing.T) {
	cfg, err := New(16, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	q, err := NewQueueNetwork(cfg, QueueOptions{Depth: 4, Policy: QueueBackpressure})
	if err != nil {
		t.Fatal(err)
	}
	rng := NewRand(1)
	gen := Uniform{Rate: 0.5, Rng: rng}
	dest := make([]int, cfg.Inputs())
	for cycle := 0; cycle < 50; cycle++ {
		gen.GenerateInto(dest, cfg.Outputs())
		if _, err := q.Cycle(dest); err != nil {
			t.Fatal(err)
		}
	}
	tot := q.Totals()
	if tot.Delivered == 0 {
		t.Fatal("no packets delivered")
	}
	if tot.Injected != tot.Refused+tot.Delivered+tot.Dropped+q.Queued() {
		t.Fatalf("conservation broken through the facade: %+v queued=%d", tot, q.Queued())
	}
	if q.Latency().N() != tot.Delivered {
		t.Fatalf("latency histogram holds %d samples, delivered %d", q.Latency().N(), tot.Delivered)
	}
}

func TestFacadeMeasureLatencyAndSweep(t *testing.T) {
	cfg, err := New(16, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := MeasureLatency(cfg, Uniform{Rate: 0.3, Rng: NewRand(2)},
		QueueOptions{Depth: 8}, SimOptions{Cycles: 400, Warmup: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.LatencyP50 < float64(cfg.Stages()) {
		t.Errorf("P50 %.1f below the pipeline floor %d", res.LatencyP50, cfg.Stages())
	}
	sweep, err := SaturationSweep(cfg, []float64{0.2, 0.8}, BurstyLoad(16),
		QueueOptions{Depth: 8}, SimOptions{Cycles: 300, Warmup: 50}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != 2 || sweep[1].LatencyMean < sweep[0].LatencyMean {
		t.Errorf("sweep latency should rise with load: %+v", sweep)
	}
}

func TestFacadeDrainPermutations(t *testing.T) {
	cfg, err := New(16, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := DrainPermutations(cfg, 4, QueueOptions{Depth: QueueUnbounded}, SimOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles < int64(4-1+cfg.Stages()) {
		t.Errorf("drain of 4 waves in %d cycles is below the physical floor", res.Cycles)
	}
}

func TestFacadeHistogram(t *testing.T) {
	h := NewHistogram(16, 1)
	for i := 0; i < 100; i++ {
		h.Add(float64(i % 10))
	}
	if h.Quantile(0.5) != 4 {
		t.Errorf("P50 = %g, want 4", h.Quantile(0.5))
	}
}

func TestFacadeTemporalTraffic(t *testing.T) {
	src := &MarkovOnOff{Rate: 1, POn: 0.1, POff: 0.1, Rng: NewRand(4)}
	dest := src.Generate(32, 64)
	if len(dest) != 32 {
		t.Fatalf("generated %d entries", len(dest))
	}
	hs := &MovingHotSpot{Rate: 1, Fraction: 1, Period: 2, Rng: NewRand(5)}
	hs.GenerateInto(dest, 64)
	var _ IntoGenerator = src
	var _ IntoGenerator = hs
}
