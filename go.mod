module edn

go 1.24
