// Package analytic implements the closed-form performance models of
// Section 3.2 (probability of acceptance under uniform traffic,
// Equations 4 and 5), Section 4 (MIMD resubmission Markov model,
// Equations 7-11) and Section 5 (SIMD restricted-access permutation
// time) of the paper.
//
// All models share the Section 3.2 assumptions: requests are uniformly
// and independently distributed over the outputs, each input carries a
// request with probability r at the start of a cycle, and the network is
// circuit switched with no internal buffering.
package analytic

import (
	"fmt"
	"math"

	"edn/internal/topology"
)

// BucketAcceptance returns E(r): the expected number of requests accepted
// by one output bucket of an H(a -> b x c) hyperbar per cycle, when each
// of the a inputs carries a request with probability r and requests are
// uniform over the b buckets.
//
//	E(r) = c - sum_{n=0}^{c-1} (c-n) * C(a,n) p^n (1-p)^(a-n),  p = r/b
//
// i.e. capacity minus the expected shortfall on undersubscribed cycles.
func BucketAcceptance(a, b, c int, r float64) float64 {
	if a <= 0 || b <= 0 || c <= 0 {
		panic(fmt.Sprintf("analytic: invalid hyperbar H(%d->%dx%d)", a, b, c))
	}
	if r < 0 || r > 1 {
		panic(fmt.Sprintf("analytic: request rate %g out of [0,1]", r))
	}
	p := r / float64(b)
	switch {
	case p <= 0:
		return 0
	case p >= 1:
		// Every input requests this bucket; capacity bounds acceptance.
		return math.Min(float64(a), float64(c))
	}
	if c >= a {
		// Capacity can never be exceeded: every request is accepted.
		return float64(a) * p
	}
	// Walk the binomial pmf iteratively; only the first c terms matter.
	pmf := math.Pow(1-p, float64(a)) // P(N = 0)
	shortfall := 0.0
	for n := 0; n < c; n++ {
		shortfall += float64(c-n) * pmf
		pmf *= float64(a-n) / float64(n+1) * p / (1 - p)
	}
	return float64(c) - shortfall
}

// HyperbarStageRate maps the per-wire request rate at the inputs of a
// hyperbar stage to the rate at its outputs: r_out = E(r_in)/c.
func HyperbarStageRate(a, b, c int, r float64) float64 {
	return BucketAcceptance(a, b, c, r) / float64(c)
}

// StageRates returns the per-wire request rates through an EDN at offered
// rate r: element 0 is r itself, element i (1 <= i <= l) the rate on the
// wires after hyperbar stage i, and the last element the rate on the
// network outputs after the crossbar stage,
//
//	r_final = 1 - (1 - r_l/c)^c.
func StageRates(cfg topology.Config, r float64) []float64 {
	rates := make([]float64, 0, cfg.L+2)
	rates = append(rates, r)
	ri := r
	for i := 1; i <= cfg.L; i++ {
		ri = HyperbarStageRate(cfg.A, cfg.B, cfg.C, ri)
		rates = append(rates, ri)
	}
	c := float64(cfg.C)
	rates = append(rates, 1-math.Pow(1-ri/c, c))
	return rates
}

// PA returns the probability of acceptance of Equation 4: the ratio of
// expected requests satisfied per cycle to expected requests generated,
//
//	PA(r) = (b^l c * r_final) / ((a/c)^l c * r).
//
// PA(0) is defined as 1 (an idle network blocks nothing).
func PA(cfg topology.Config, r float64) float64 {
	if r == 0 {
		return 1
	}
	rates := StageRates(cfg, r)
	rFinal := rates[len(rates)-1]
	return float64(cfg.Outputs()) * rFinal / (float64(cfg.Inputs()) * r)
}

// Bandwidth returns the expected number of requests satisfied per cycle
// at offered rate r: Outputs * r_final.
func Bandwidth(cfg topology.Config, r float64) float64 {
	rates := StageRates(cfg, r)
	return float64(cfg.Outputs()) * rates[len(rates)-1]
}

// PAPermutation returns PAp of Equation 5: the probability of acceptance
// when the offered requests form a (partial) permutation. By Lemma 2
// there is then no blocking at the last two stages — the final hyperbar
// stage and the crossbar stage — so only hyperbar stages 1..l-1 reject
// requests and every survivor of stage l-1 is delivered:
//
//	PAp(r) = (b^(l-1) c / a^(l-1) ... ) = W_(l-1)*r_(l-1) / (Inputs * r).
//
// Note: the paper prints the recursion bound as 0 <= i < l-2, which would
// exempt the last *three* stages; Lemma 2 only justifies two, so this
// function uses l-1 blocking transitions minus one — see
// PAPermutationPaperEq5 for the printed variant.
func PAPermutation(cfg topology.Config, r float64) float64 {
	return paPermutationStages(cfg, r, cfg.L-1)
}

// PAPermutationPaperEq5 evaluates Equation 5 exactly as printed in the
// paper (blocking recursion over 0 <= i < l-2, exempting the last three
// stages). Kept for comparison against the corrected PAPermutation.
func PAPermutationPaperEq5(cfg topology.Config, r float64) float64 {
	return paPermutationStages(cfg, r, cfg.L-2)
}

// paPermutationStages computes acceptance when only the first `blocking`
// hyperbar stages can reject requests and everything alive after them is
// delivered.
func paPermutationStages(cfg topology.Config, r float64, blocking int) float64 {
	if r == 0 {
		return 1
	}
	if blocking < 0 {
		blocking = 0
	}
	ri := r
	for i := 1; i <= blocking; i++ {
		ri = HyperbarStageRate(cfg.A, cfg.B, cfg.C, ri)
	}
	// Survivors after the last blocking stage: W_blocking * r_blocking;
	// all are delivered.
	survivors := float64(cfg.WiresAfterStage(blocking)) * ri
	offered := float64(cfg.Inputs()) * r
	return survivors / offered
}

// CrossbarPA returns the probability of acceptance of a full n x n
// crossbar at offered rate r: the only losses are output conflicts, so
//
//	PA(r) = (1 - (1 - r/n)^n) * n / (n*r).
//
// This is the reference curve in Figures 7 and 8; at r=1 it decreases
// from 1 toward 1 - 1/e as n grows.
func CrossbarPA(n int, r float64) float64 {
	if n <= 0 {
		panic(fmt.Sprintf("analytic: crossbar size %d must be positive", n))
	}
	if r == 0 {
		return 1
	}
	nf := float64(n)
	return (1 - math.Pow(1-r/nf, nf)) / r
}
