package analytic

import (
	"math"
	"testing"
	"testing/quick"

	"edn/internal/topology"
)

func mustCfg(t *testing.T, a, b, c, l int) topology.Config {
	t.Helper()
	cfg, err := topology.New(a, b, c, l)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func approx(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestBucketAcceptanceEdges(t *testing.T) {
	if got := BucketAcceptance(8, 4, 2, 0); got != 0 {
		t.Errorf("E(0) = %g, want 0", got)
	}
	// p >= 1: all a inputs hit one bucket; acceptance is min(a, c).
	if got := BucketAcceptance(8, 1, 2, 1); got != 2 {
		t.Errorf("E at p=1 = %g, want capacity 2", got)
	}
	if got := BucketAcceptance(2, 1, 4, 1); got != 2 {
		t.Errorf("E at p=1 with c>a = %g, want a=2", got)
	}
	// c >= a: no rejection possible, E = a*p exactly.
	if got, want := BucketAcceptance(4, 2, 4, 0.6), 4*0.3; !approx(got, want, 1e-12) {
		t.Errorf("E with c>=a = %g, want %g", got, want)
	}
}

func TestBucketAcceptanceMatchesDirectSum(t *testing.T) {
	// Direct evaluation of E(r) = sum_n min(n,c) C(a,n) p^n (1-p)^(a-n).
	direct := func(a, b, c int, r float64) float64 {
		p := r / float64(b)
		sum := 0.0
		for n := 0; n <= a; n++ {
			pmf := binom(a, n) * math.Pow(p, float64(n)) * math.Pow(1-p, float64(a-n))
			sum += math.Min(float64(n), float64(c)) * pmf
		}
		return sum
	}
	cases := []struct {
		a, b, c int
		r       float64
	}{
		{8, 4, 2, 1}, {8, 4, 2, 0.5}, {16, 4, 4, 1}, {64, 16, 4, 1},
		{64, 16, 4, 0.25}, {8, 8, 1, 1}, {8, 2, 4, 0.9}, {4, 2, 2, 0.1},
	}
	for _, cse := range cases {
		got := BucketAcceptance(cse.a, cse.b, cse.c, cse.r)
		want := direct(cse.a, cse.b, cse.c, cse.r)
		if !approx(got, want, 1e-10) {
			t.Errorf("E(%d,%d,%d,%g) = %.12f, want %.12f", cse.a, cse.b, cse.c, cse.r, got, want)
		}
	}
}

func TestDeltaStageRateMatchesPatel(t *testing.T) {
	// With c=1 the stage recursion must reduce to Patel's classical
	// delta-network recursion r_out = 1 - (1 - r/b)^a.
	for _, r := range []float64{0.1, 0.5, 0.9, 1} {
		for _, ab := range [][2]int{{2, 2}, {4, 4}, {8, 8}, {8, 4}} {
			a, b := ab[0], ab[1]
			got := HyperbarStageRate(a, b, 1, r)
			want := 1 - math.Pow(1-r/float64(b), float64(a))
			if !approx(got, want, 1e-12) {
				t.Errorf("delta stage rate a=%d b=%d r=%g: %g, want %g", a, b, r, got, want)
			}
		}
	}
}

// TestMasParPA1 pins the paper's Section 5.1 headline number: for
// EDN(64,16,4,2) — the MasPar MP-1 router equivalent — PA(1) = .544.
func TestMasParPA1(t *testing.T) {
	cfg := mustCfg(t, 64, 16, 4, 2)
	got := PA(cfg, 1)
	if !approx(got, 0.544, 0.001) {
		t.Fatalf("PA(1) for EDN(64,16,4,2) = %.6f, want 0.544 +- 0.001", got)
	}
}

func TestPAEdgeCases(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	if got := PA(cfg, 0); got != 1 {
		t.Errorf("PA(0) = %g, want 1", got)
	}
	// PA decreases with offered load.
	prev := math.Inf(1)
	for _, r := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 1} {
		pa := PA(cfg, r)
		if pa > prev+1e-12 {
			t.Errorf("PA not monotone: PA(%g) = %g > previous %g", r, pa, prev)
		}
		if pa <= 0 || pa > 1 {
			t.Errorf("PA(%g) = %g out of (0,1]", r, pa)
		}
		prev = pa
	}
}

func TestStageRatesShape(t *testing.T) {
	cfg := mustCfg(t, 64, 16, 4, 2)
	rates := StageRates(cfg, 1)
	if len(rates) != cfg.L+2 {
		t.Fatalf("len(rates) = %d, want %d", len(rates), cfg.L+2)
	}
	if rates[0] != 1 {
		t.Errorf("rates[0] = %g, want offered rate", rates[0])
	}
	for i, r := range rates {
		if r < 0 || r > 1 {
			t.Errorf("rates[%d] = %g out of [0,1]", i, r)
		}
		if i > 0 && r > rates[i-1]+1e-12 {
			t.Errorf("rates must not increase through square-stage losses: rates[%d]=%g > rates[%d]=%g", i, r, i-1, rates[i-1])
		}
	}
}

// TestCapacityImprovesPA reproduces the qualitative claim of Figures 7
// and 8: within a fixed switch size, higher capacity c gives strictly
// better acceptance at the same network size, with the delta network
// (c=1) worst; and every EDN sits below the full crossbar.
func TestCapacityImprovesPA(t *testing.T) {
	paAt := func(fam topology.Family, size int) float64 {
		cfgs, err := fam.Configs(size, size)
		if err != nil || len(cfgs) != 1 {
			t.Fatalf("%v: no config of size %d (err=%v)", fam, size, err)
		}
		return PA(cfgs[0], 1)
	}
	// 512 inputs is in all three 8-I/O family series: 8^3, 4^4*2, 2^7*4.
	pa841 := paAt(topology.Family{A: 8, B: 8, C: 1}, 512)
	pa842 := paAt(topology.Family{A: 8, B: 4, C: 2}, 512)
	pa824 := paAt(topology.Family{A: 8, B: 2, C: 4}, 512)
	xbar := CrossbarPA(512, 1)
	if !(pa841 < pa842 && pa842 < pa824) {
		t.Errorf("capacity ordering violated: c=1 %.4f, c=2 %.4f, c=4 %.4f", pa841, pa842, pa824)
	}
	if !(pa824 < xbar) {
		t.Errorf("EDN(8,2,4,*) %.4f should stay below crossbar %.4f", pa824, xbar)
	}
	// 16-wide switches beat 8-wide switches at the same size and capacity
	// (Figure 8 vs Figure 7): compare EDN(16,8,2,*) and EDN(8,4,2,*) at
	// 8192 inputs (8^4*2 and 4^6*2 respectively).
	pa1682 := paAt(topology.Family{A: 16, B: 8, C: 2}, 8192)
	pa842big := paAt(topology.Family{A: 8, B: 4, C: 2}, 8192)
	if !(pa1682 > pa842big) {
		t.Errorf("EDN(16,8,2,*) %.4f should beat EDN(8,4,2,*) %.4f at 8192 inputs", pa1682, pa842big)
	}
}

func TestCrossbarPA(t *testing.T) {
	if got := CrossbarPA(1, 1); !approx(got, 1, 1e-12) {
		t.Errorf("1x1 crossbar PA(1) = %g, want 1", got)
	}
	if got := CrossbarPA(4, 0); got != 1 {
		t.Errorf("crossbar PA(0) = %g, want 1", got)
	}
	// Large-n limit at r=1 is 1 - 1/e.
	if got, want := CrossbarPA(1<<20, 1), 1-1/math.E; !approx(got, want, 1e-4) {
		t.Errorf("large crossbar PA(1) = %.6f, want %.6f", got, want)
	}
	// An EDN(n,n,1,1) has the same acceptance as an n x n crossbar.
	cfg := mustCfg(t, 16, 16, 1, 1)
	for _, r := range []float64{0.25, 0.5, 1} {
		if got, want := PA(cfg, r), CrossbarPA(16, r); !approx(got, want, 1e-12) {
			t.Errorf("EDN(16,16,1,1) PA(%g) = %g, want crossbar %g", r, got, want)
		}
	}
}

func TestPAPermutationNoBlockingForShortNetworks(t *testing.T) {
	// With l = 1 both the final hyperbar stage and the crossbar stage are
	// "the last two stages": a permutation routes without loss.
	cfg := mustCfg(t, 16, 4, 4, 1)
	if got := PAPermutation(cfg, 1); !approx(got, 1, 1e-12) {
		t.Errorf("PAp(l=1) = %g, want 1", got)
	}
	// Permutation acceptance must dominate uniform-traffic acceptance.
	cfg2 := mustCfg(t, 64, 16, 4, 2)
	for _, r := range []float64{0.25, 0.5, 1} {
		pap := PAPermutation(cfg2, r)
		pa := PA(cfg2, r)
		if pap < pa-1e-12 {
			t.Errorf("PAp(%g) = %g below PA = %g", r, pap, pa)
		}
		if pap > 1+1e-12 {
			t.Errorf("PAp(%g) = %g exceeds 1", r, pap)
		}
	}
	// The printed Equation 5 bound exempts one stage more, so it must be
	// at least as optimistic as the Lemma-2-consistent version.
	cfg3 := mustCfg(t, 8, 4, 2, 4)
	for _, r := range []float64{0.5, 1} {
		if PAPermutationPaperEq5(cfg3, r) < PAPermutation(cfg3, r)-1e-12 {
			t.Errorf("printed Eq5 should be >= corrected PAp at r=%g", r)
		}
	}
}

func TestResubmissionFixedPoint(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 6)
	res, err := Resubmission(cfg, 0.5, ResubmissionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Fixed point consistency: PA' == PA(r').
	if got := PA(cfg, res.EffectiveRate); !approx(got, res.PAPrime, 1e-9) {
		t.Errorf("fixed point violated: PA(r')=%g, PA'=%g", got, res.PAPrime)
	}
	// Markov chain sanity: probabilities sum to one; waiting is nonzero
	// whenever some requests are rejected.
	if !approx(res.QActive+res.QWaiting, 1, 1e-9) {
		t.Errorf("qA + qW = %g, want 1", res.QActive+res.QWaiting)
	}
	if res.PAPrime >= 1 && res.QWaiting > 1e-9 {
		t.Errorf("no rejections but qW = %g", res.QWaiting)
	}
	// Resubmission raises the load and lowers acceptance.
	if res.EffectiveRate < 0.5 {
		t.Errorf("r' = %g below fresh rate", res.EffectiveRate)
	}
	if res.PAPrime > PA(cfg, 0.5)+1e-12 {
		t.Errorf("PA' = %g above PA = %g", res.PAPrime, PA(cfg, 0.5))
	}
	if res.Efficiency() <= 0 || res.Efficiency() > 1 {
		t.Errorf("efficiency %g out of (0,1]", res.Efficiency())
	}
}

func TestResubmissionZeroRate(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	res, err := Resubmission(cfg, 0, ResubmissionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PAPrime != 1 || res.QActive != 1 || res.EffectiveRate != 0 {
		t.Errorf("zero-rate steady state wrong: %+v", res)
	}
	if _, err := Resubmission(cfg, 1.5, ResubmissionOptions{}); err == nil {
		t.Error("expected range error for r > 1")
	}
}

// TestMasParPermutationTime pins the Section 5.1 worked example:
// RA-EDN(16,4,2,16) = EDN(64,16,4,2) with 1024 clusters of 16 PEs.
// The paper reports PA(1) = .544, J = 5 and T ~= 34.41 cycles. Our PA(1)
// matches to three digits, but the drain recursion as printed converges
// in four steps (r_1=.456, r_2=.0885, r_3=.0029, r_4=3.2e-6; the first
// rate with r*p < 1 is r_4), giving J = 4 and T ~= 33.41: exactly one
// network cycle below the paper's figure. We pin the reproducible values
// and record the one-cycle delta in EXPERIMENTS.md.
func TestMasParPermutationTime(t *testing.T) {
	cfg := mustCfg(t, 64, 16, 4, 2)
	pt, err := ExpectedPermutationTime(cfg, 16)
	if err != nil {
		t.Fatal(err)
	}
	if pt.P != 1024 {
		t.Errorf("p = %d, want 1024", pt.P)
	}
	if !approx(pt.PA1, 0.544, 0.001) {
		t.Errorf("PA(1) = %.6f, want 0.544", pt.PA1)
	}
	if pt.J != 4 {
		t.Errorf("J = %d, want 4 (tail rates %v)", pt.J, pt.TailRates)
	}
	if !approx(pt.Cycles(), 33.41, 0.05) {
		t.Errorf("expected time = %.3f, want ~33.41 (paper prints 34.41; see EXPERIMENTS.md)", pt.Cycles())
	}
	// Paper-shape check: within one cycle of the published number.
	if math.Abs(pt.Cycles()-34.41) > 1.01 {
		t.Errorf("expected time %.3f drifted more than one cycle from the paper's 34.41", pt.Cycles())
	}
}

func TestExpectedPermutationTimeValidation(t *testing.T) {
	// Non-square networks are rejected.
	cfg := mustCfg(t, 8, 2, 2, 2)
	if _, err := ExpectedPermutationTime(cfg, 4); err == nil {
		t.Error("expected error for non-square network")
	}
	sq := mustCfg(t, 16, 4, 4, 2)
	if _, err := ExpectedPermutationTime(sq, 0); err == nil {
		t.Error("expected error for q=0")
	}
}

// Property: for random square configs and rates, 0 <= PA <= 1 and
// bandwidth never exceeds the output count.
func TestQuickPABounds(t *testing.T) {
	f := func(rawB, rawC, rawL uint8, rawR uint16) bool {
		b := 1 << (rawB%3 + 1) // 2..8
		c := 1 << (rawC % 3)   // 1..4
		l := int(rawL%4) + 1   // 1..4
		cfg := topology.Config{A: b * c, B: b, C: c, L: l}
		if cfg.Validate() != nil {
			return true
		}
		r := float64(rawR%1001) / 1000
		pa := PA(cfg, r)
		if pa < 0 || pa > 1+1e-9 {
			return false
		}
		bw := Bandwidth(cfg, r)
		return bw >= 0 && bw <= float64(cfg.Outputs())+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Fatal(err)
	}
}

// binom computes C(n,k) in floating point for the direct-sum oracle.
func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}
