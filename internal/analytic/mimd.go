package analytic

import (
	"fmt"
	"math"

	"edn/internal/topology"
)

// MIMDResult captures the steady state of the Section 4 processor-memory
// model: processors issue requests at rate r, blocked processors wait and
// resubmit the same request every cycle until accepted (the two-state
// Markov chain of Figure 10).
type MIMDResult struct {
	R             float64 // fresh request rate of an active processor
	PAPrime       float64 // PA'(r): acceptance seen at the elevated load (Equation 9/10)
	EffectiveRate float64 // r': actual per-input request rate (Equation 8)
	QActive       float64 // steady-state probability a processor is active (Equation 7)
	QWaiting      float64 // steady-state probability a processor is waiting
	Iterations    int     // fixed-point iterations used
}

// Efficiency returns the Section 4 (Equation 11) efficiency of the system
// relative to an ideal machine whose every memory request is satisfied
// immediately: the fraction of time a processor spends active.
func (m MIMDResult) Efficiency() float64 { return m.QActive }

// MeanWaitCycles returns the expected number of cycles a request spends
// blocked before acceptance, by Little's law: the waiting population
// qW per processor divided by the per-processor throughput r'*PA'.
// A request accepted on first submission waits zero cycles.
func (m MIMDResult) MeanWaitCycles() float64 {
	throughput := m.EffectiveRate * m.PAPrime
	if throughput == 0 {
		return 0
	}
	return m.QWaiting / throughput
}

// Bandwidth returns the expected number of satisfied requests per cycle
// for a system with the given number of network inputs.
func (m MIMDResult) Bandwidth(inputs int) float64 {
	return float64(inputs) * m.EffectiveRate * m.PAPrime
}

// ResubmissionOptions tunes the Equation 10 fixed-point iteration.
type ResubmissionOptions struct {
	Tolerance     float64 // convergence threshold on |PA' - PA'_prev|; default 1e-12
	MaxIterations int     // default 10000
}

func (o ResubmissionOptions) withDefaults() ResubmissionOptions {
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-12
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 10000
	}
	return o
}

// Resubmission solves the Section 4 model for an EDN shared-memory system:
// it iterates Equation 10,
//
//	PA'_(n+1)(r) = PA( r / (r + PA'_n(r) - r*PA'_n(r)) )
//
// from PA'_0(r) = PA(r) until convergence, then derives r', qA and qW
// from Equations 7 and 8.
func Resubmission(cfg topology.Config, r float64, opts ResubmissionOptions) (MIMDResult, error) {
	if r < 0 || r > 1 {
		return MIMDResult{}, fmt.Errorf("analytic: request rate %g out of [0,1]", r)
	}
	opts = opts.withDefaults()
	if r == 0 {
		return MIMDResult{R: 0, PAPrime: 1, EffectiveRate: 0, QActive: 1}, nil
	}
	pa := PA(cfg, r)
	iters := 0
	for ; iters < opts.MaxIterations; iters++ {
		rPrime := r / (r + pa - r*pa)
		next := PA(cfg, rPrime)
		if math.Abs(next-pa) <= opts.Tolerance {
			pa = next
			break
		}
		pa = next
	}
	if iters == opts.MaxIterations {
		return MIMDResult{}, fmt.Errorf("analytic: resubmission fixed point did not converge for %v at r=%g", cfg, r)
	}
	denom := r + pa - r*pa
	res := MIMDResult{
		R:             r,
		PAPrime:       pa,
		EffectiveRate: r / denom,
		QActive:       pa / denom,
		QWaiting:      r * (1 - pa) / denom,
		Iterations:    iters + 1,
	}
	return res, nil
}
