package analytic

import (
	"fmt"

	"edn/internal/topology"
)

// PermutationTime is the Section 5.1 estimate of how many network cycles
// an RA-EDN system needs to route a random permutation among p clusters
// of q processors each.
type PermutationTime struct {
	P   int     // clusters (network ports)
	Q   int     // processors per cluster
	PA1 float64 // PA(1): acceptance under full load
	// DrainCycles is the q/PA(1) phase during which nearly every cluster
	// still holds undelivered messages and offers a request every cycle.
	DrainCycles float64
	// TailRates[j] is r_(j+1) of the drain recursion
	// r_(j+1) = (1 - PA(r_j)) * r_j, starting from r_0 = 1; the tail ends
	// at the first rate with r*p < 1.
	TailRates []float64
	// J is the number of tail cycles (the paper's J).
	J int
}

// Cycles returns the expected total time, q/PA(1) + J.
func (pt PermutationTime) Cycles() float64 { return pt.DrainCycles + float64(pt.J) }

// ExpectedPermutationTime evaluates the Section 5.1 model for an
// RA-EDN(b,c,l,q) system whose network is cfg = EDN(bc,b,c,l) with
// p = b^l*c ports. The worked example in the paper is EDN(64,16,4,2) with
// q=16: PA(1) = .544, J = 5, T ~= 34.41 cycles.
func ExpectedPermutationTime(cfg topology.Config, q int) (PermutationTime, error) {
	if err := cfg.Validate(); err != nil {
		return PermutationTime{}, err
	}
	if !cfg.IsSquare() {
		return PermutationTime{}, fmt.Errorf("analytic: RA-EDN needs a square network, got %v (%d x %d)", cfg, cfg.Inputs(), cfg.Outputs())
	}
	if q < 1 {
		return PermutationTime{}, fmt.Errorf("analytic: cluster size q=%d must be positive", q)
	}
	p := cfg.Inputs()
	pa1 := PA(cfg, 1)
	pt := PermutationTime{P: p, Q: q, PA1: pa1, DrainCycles: float64(q) / pa1}

	// Tail: r_0 = 1, r_(j+1) = (1 - PA(r_j)) r_j until r*p < 1. Guard the
	// loop: the recursion contracts (PA > 0), but cap iterations anyway.
	r := 1.0
	for j := 0; j < 10000; j++ {
		r = (1 - PA(cfg, r)) * r
		pt.TailRates = append(pt.TailRates, r)
		if r*float64(p) < 1 {
			pt.J = j + 1
			return pt, nil
		}
	}
	return PermutationTime{}, fmt.Errorf("analytic: drain recursion did not converge for %v", cfg)
}
