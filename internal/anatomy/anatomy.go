// Package anatomy is the causal time-attribution layer: it explains
// *where* every packet's latency went, stage by stage, and *which*
// switch is to blame when queues back up.
//
// The packet engines (internal/queuesim, internal/dilatedsim) already
// expose probe hooks that record what happened; anatomy answers why it
// took that long. An attached Collector mirrors every FIFO in the
// network as a queue of record handles, kept in lockstep with the real
// rings by the engine hooks (Inject/Advance/Deliver/Block/Drop/Strand
// plus an EndCycle sweep). Each cycle of each in-flight packet's life
// is attributed to exactly one of three bins at the stage the packet
// currently occupies:
//
//   - service: the packet won arbitration and traversed a stage (or
//     was delivered) this cycle;
//   - block:   the packet was at the head of its queue and could not
//     advance — head-of-line blocking, loss, or a fault park;
//   - wait:    the packet sat behind other packets in its queue.
//
// Because every live cycle lands in exactly one bin, the per-packet
// sums obey a conservation law: wait + block + service equals the
// end-to-end latency for every packet class (delivered, dropped,
// stranded) — the property tests pin this for every depth/policy/
// fault/churn combination.
//
// Blocked heads additionally record *what* blocked them: the full
// downstream ring or the contended terminal. Those per-cycle blocked-by
// edges feed two consumers: a per-switch blame ledger (how many
// ring-cycles of blocking each switch caused) and the TreeDetector,
// which walks the edges to their roots each cycle and tracks congestion
// trees over time — root switch, depth, spread, and lifetime.
//
// The contract mirrors internal/probe's: a nil *Collector costs the
// engines one branch per hook site and zero allocations (the
// AnatomyOff benchmark gates this), and an attached Collector only
// observes — it never changes an arbitration decision, so every
// measured number is byte-identical with anatomy on or off.
package anatomy

import "edn/internal/stats"

// Options configures a Collector.
type Options struct {
	// TopK bounds the blame and congestion-tree lists kept in reports
	// (default 8).
	TopK int
	// HistBuckets / HistBucketWidth shape the per-stage dwell-time
	// histograms (defaults 64 buckets of width 4 cycles).
	HistBuckets     int
	HistBucketWidth float64

	// OnPacket, when set, receives every closed packet's attribution
	// record. Used by the conservation property tests; nil in normal
	// operation.
	OnPacket func(PacketSample)
	// OnRequest receives every completed closed-loop request's time
	// split. Used by the conservation property tests; nil otherwise.
	OnRequest func(RequestSample)
}

func (o Options) topK() int {
	if o.TopK <= 0 {
		return 8
	}
	return o.TopK
}

func (o Options) buckets() int {
	if o.HistBuckets <= 0 {
		return 64
	}
	return o.HistBuckets
}

func (o Options) width() float64 {
	if o.HistBucketWidth <= 0 {
		return 4
	}
	return o.HistBucketWidth
}

// Layout describes the attachment geometry an engine reports in
// SetAnatomy. Node IDs used in blocked-by edges live in a single space:
// ring r is node r (0 <= r < Rings) and output terminal t is node
// Rings+t. Depth-0 engines bind with Rings == 0 and use the *0 hooks.
type Layout struct {
	Stages  int // routing stages, 1-based; terminal delivery happens at stage Stages
	Inputs  int
	Outputs int
	Rings   int // total FIFO count across all stage boundaries (0 for depth-0)

	// RingStage[r] is the 1-based stage that consumes ring r (the
	// stage whose switches pop it). RingSwitch[r] is the index of that
	// switch within its stage. TermSwitch[t] is the final-stage switch
	// that owns output terminal t.
	RingStage  []int32
	RingSwitch []int32
	TermSwitch []int32
}

// Class labels a closed packet record.
type Class uint8

const (
	ClassDelivered Class = iota
	ClassDropped
	ClassStranded
	numClasses
)

func (c Class) String() string {
	switch c {
	case ClassDelivered:
		return "delivered"
	case ClassDropped:
		return "dropped"
	case ClassStranded:
		return "stranded"
	}
	return "class(?)"
}

// PacketSample is one closed packet's attribution record, delivered to
// Options.OnPacket. Wait+Block+Service is the packet's attributed
// latency; the conservation tests compare it against the engine's own
// latency convention (Closed-Inject for buffered engines,
// Closed-Inject+1 for depth-0).
type PacketSample struct {
	Class   Class
	Src     int
	Dest    int
	Inject  int64
	Closed  int64
	Wait    int64
	Block   int64
	Service int64
}

// RequestSample is one completed closed-loop request's five-way time
// split, delivered to Options.OnRequest. The five components telescope:
// (FirstIssue-Created) + (LastIssue-FirstIssue) + (Arrive-LastIssue) +
// (Reply-Arrive) + (Done-Reply) == Done-Created.
type RequestSample struct {
	Src        int
	Dest       int
	Created    int64
	FirstIssue int64
	LastIssue  int64
	Arrive     int64
	Reply      int64
	Done       int64
}

// rec is one in-flight packet's attribution state.
type rec struct {
	src, dest int32
	stage     int32 // current 1-based stage
	inject    int64
	entered   int64 // cycle the packet entered its current stage's queue
	touched   int64 // last cycle attributed by an event hook
	wait      int32
	block     int32
	service   int32
}

// fifo mirrors one ring as a queue of record handles.
type fifo struct {
	buf  []int32
	head int
}

func (f *fifo) push(i int32) { f.buf = append(f.buf, i) }

func (f *fifo) pop() int32 {
	i := f.buf[f.head]
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	}
	return i
}

func (f *fifo) empty() bool { return f.head == len(f.buf) }

type stageAgg struct {
	wait, block, service int64
	blame                int64
	hist                 *stats.Histogram
}

type flowAgg struct {
	count, wait, block, service int64
}

type classAgg struct {
	count, wait, block, service int64
}

type reqAgg struct {
	completed   int64
	clientQueue int64
	retryWait   int64
	forward     int64
	service     int64
	reply       int64
	giveUps     int64
	giveUpTime  int64
}

const (
	// blockedBy sentinel values (per ring, per cycle).
	bbNone   = -2 // ring head not blocked this cycle
	bbParked = -1 // ring head parked by a fault (no congestion edge)
)

// Collector accumulates latency anatomy for one engine run. Create
// with New, hand to the engine's SetAnatomy, read with Report after
// the run. Not safe for concurrent use (engines are single-threaded).
type Collector struct {
	opt Options
	lay Layout

	recs []rec
	free []int32 // freelist of rec indices

	mirror []fifo  // per ring, depth>0 engines
	slot0  []int32 // per input, depth-0 engines (-1 = idle)

	ringAdvanced []int64 // per ring: last cycle a packet advanced OUT of it
	blockedBy    []int32 // per ring, this cycle (bbNone/bbParked/node)
	blockedList  []int32 // rings blocked this cycle (excl. parked)
	parkedList   []int32 // rings fault-parked this cycle

	stages      []stageAgg
	blame       []int64 // per node (Rings+Outputs)
	srcs        []flowAgg
	dsts        []flowAgg
	classes     [numClasses]classAgg
	faultParked int64
	reqs        reqAgg
	hasReqs     bool

	trees  treeDetector
	cycles int64
}

// New returns an unbound Collector; the engine's SetAnatomy binds it.
func New(opt Options) *Collector {
	return &Collector{opt: opt}
}

// Bind attaches the collector to an engine geometry, resetting any
// prior state. Engines call this from SetAnatomy.
func (c *Collector) Bind(lay Layout) {
	c.lay = lay
	c.recs = c.recs[:0]
	c.free = c.free[:0]
	c.mirror = make([]fifo, lay.Rings)
	c.slot0 = nil
	if lay.Rings == 0 && lay.Inputs > 0 {
		c.slot0 = make([]int32, lay.Inputs)
		for i := range c.slot0 {
			c.slot0[i] = -1
		}
	}
	c.ringAdvanced = make([]int64, lay.Rings)
	for i := range c.ringAdvanced {
		c.ringAdvanced[i] = -1
	}
	c.blockedBy = make([]int32, lay.Rings)
	for i := range c.blockedBy {
		c.blockedBy[i] = bbNone
	}
	c.blockedList = c.blockedList[:0]
	c.parkedList = c.parkedList[:0]
	c.hasReqs = false
	c.stages = make([]stageAgg, lay.Stages)
	for i := range c.stages {
		c.stages[i].hist = stats.NewHistogram(c.opt.buckets(), c.opt.width())
	}
	c.blame = make([]int64, lay.Rings+lay.Outputs)
	c.srcs = make([]flowAgg, lay.Inputs)
	c.dsts = make([]flowAgg, lay.Outputs)
	c.classes = [numClasses]classAgg{}
	c.faultParked = 0
	c.reqs = reqAgg{}
	c.trees.reset(c.opt.topK())
	c.cycles = 0
}

// BindRequests attaches the collector to a closed-loop driver: only
// the request-time split is collected (the fabric-level breakdown is
// available by running the same geometry in latency/saturation mode).
func (c *Collector) BindRequests(inputs, outputs int) {
	c.Bind(Layout{Inputs: inputs, Outputs: outputs})
	c.slot0 = nil
	c.hasReqs = true
}

func (c *Collector) alloc(src, dest int, now int64) int32 {
	var i int32
	if n := len(c.free); n > 0 {
		i = c.free[n-1]
		c.free = c.free[:n-1]
	} else {
		c.recs = append(c.recs, rec{})
		i = int32(len(c.recs) - 1)
	}
	c.recs[i] = rec{src: int32(src), dest: int32(dest), inject: now, entered: now, touched: now}
	return i
}

// close retires a record into the aggregate ledgers.
func (c *Collector) close(i int32, class Class, now int64) {
	r := &c.recs[i]
	w, b, s := int64(r.wait), int64(r.block), int64(r.service)
	ca := &c.classes[class]
	ca.count++
	ca.wait += w
	ca.block += b
	ca.service += s
	if int(r.src) < len(c.srcs) {
		f := &c.srcs[r.src]
		f.count++
		f.wait += w
		f.block += b
		f.service += s
	}
	if int(r.dest) < len(c.dsts) {
		f := &c.dsts[r.dest]
		f.count++
		f.wait += w
		f.block += b
		f.service += s
	}
	if c.opt.OnPacket != nil {
		c.opt.OnPacket(PacketSample{
			Class: class, Src: int(r.src), Dest: int(r.dest),
			Inject: r.inject, Closed: now, Wait: w, Block: b, Service: s,
		})
	}
	c.free = append(c.free, i)
}

// dwell records a stage-departure into the per-stage dwell histogram:
// the number of cycles the packet spent queued at the stage it is
// leaving, inclusive of the departing (or dropping) cycle.
func (c *Collector) dwell(r *rec, now int64) {
	c.stages[r.stage-1].hist.Add(float64(now - r.entered + 1))
}

// Inject mirrors a packet entering ring (the stage-1 queue it was
// pushed onto). The injection cycle itself attributes nothing: latency
// for buffered engines is Closed-Inject, counting cycles *after*
// injection.
func (c *Collector) Inject(ring, src, dest int, now int64) {
	i := c.alloc(src, dest, now)
	c.recs[i].stage = c.lay.RingStage[ring]
	c.mirror[ring].push(i)
}

// Advance mirrors the head of ring `from` traversing a stage into ring
// `to`: one service cycle at the stage it left.
func (c *Collector) Advance(from, to int, now int64) {
	i := c.mirror[from].pop()
	c.mirror[to].push(i)
	r := &c.recs[i]
	r.service++
	c.stages[r.stage-1].service++
	c.dwell(r, now)
	r.stage = c.lay.RingStage[to]
	r.entered = now
	r.touched = now
	c.ringAdvanced[from] = now
}

// Deliver mirrors the head of ring `from` being retired at its
// destination terminal: one service cycle at the final stage, then the
// record closes as delivered.
func (c *Collector) Deliver(from int, now int64) {
	i := c.mirror[from].pop()
	r := &c.recs[i]
	r.service++
	c.stages[r.stage-1].service++
	c.dwell(r, now)
	r.touched = now
	c.ringAdvanced[from] = now
	c.close(i, ClassDelivered, now)
}

// Block mirrors the head of ring being refused this cycle. blocker is
// the node that refused it — a full ring (node ID = ring index) or a
// contended terminal (node ID = Rings+terminal) — or -1 when the loss
// was pure arbitration (no full FIFO downstream to blame).
func (c *Collector) Block(ring, blocker int, now int64) {
	i := c.mirror[ring].buf[c.mirror[ring].head]
	r := &c.recs[i]
	r.block++
	c.stages[r.stage-1].block++
	r.touched = now
	if blocker >= 0 {
		c.blame[blocker]++
		if c.blockedBy[ring] == bbNone {
			c.blockedList = append(c.blockedList, int32(ring))
		}
		c.blockedBy[ring] = int32(blocker)
	}
}

// Park mirrors the head of ring being held by a fault (its target wire
// or terminal is masked dead): a blocked cycle with no congestion edge.
func (c *Collector) Park(ring int, now int64) {
	i := c.mirror[ring].buf[c.mirror[ring].head]
	r := &c.recs[i]
	r.block++
	c.stages[r.stage-1].block++
	r.touched = now
	c.faultParked++
	if c.blockedBy[ring] == bbNone {
		c.parkedList = append(c.parkedList, int32(ring))
	}
	c.blockedBy[ring] = bbParked
}

// Drop mirrors the head of ring being discarded (Drop policy): the
// dropping cycle is a blocked cycle, then the record closes as dropped.
func (c *Collector) Drop(ring, blocker int, now int64) {
	i := c.mirror[ring].pop()
	r := &c.recs[i]
	r.block++
	c.stages[r.stage-1].block++
	if blocker >= 0 {
		c.blame[blocker]++
	}
	c.dwell(r, now)
	r.touched = now
	c.close(i, ClassDropped, now)
}

// Strand mirrors a queued packet being discarded by fault churn (its
// ring died between cycles). All attribution through the last EndCycle
// stands; the stranding itself costs nothing.
func (c *Collector) Strand(ring int, now int64) {
	i := c.mirror[ring].pop()
	c.close(i, ClassStranded, now)
}

// EndCycle sweeps every mirrored packet the event hooks did not touch
// this cycle and charges it one cycle: heads of rings nothing advanced
// out of are parked (dead ring under Backpressure) and charged a
// blocked cycle; everything else sat behind a neighbor and is charged
// a waiting cycle. It then folds this cycle's blocked-by edges into
// the congestion-tree detector and resets them.
func (c *Collector) EndCycle(now int64) {
	for ringI := range c.mirror {
		f := &c.mirror[ringI]
		for k := f.head; k < len(f.buf); k++ {
			r := &c.recs[f.buf[k]]
			if r.touched == now {
				continue
			}
			r.touched = now
			if k == f.head && c.ringAdvanced[ringI] != now {
				// Untouched head of a ring no packet left this cycle:
				// the engine never offered it (dead/parked ring).
				r.block++
				c.stages[r.stage-1].block++
				c.faultParked++
			} else {
				r.wait++
				c.stages[r.stage-1].wait++
			}
		}
	}
	c.trees.observe(now, c.blockedList, c.blockedBy, c.lay)
	for _, ring := range c.blockedList {
		c.blockedBy[ring] = bbNone
	}
	for _, ring := range c.parkedList {
		c.blockedBy[ring] = bbNone
	}
	c.blockedList = c.blockedList[:0]
	c.parkedList = c.parkedList[:0]
	c.cycles++
}

// Inject0 latches a depth-0 request at an input. Depth-0 engines give
// every pending input exactly one outcome hook per cycle (including
// the injection cycle), matching their latency convention of
// Closed-Inject+1.
func (c *Collector) Inject0(input, src, dest int, now int64) {
	c.slot0[input] = c.alloc(src, dest, now)
}

// Block0 charges a pending depth-0 request one blocked cycle at the
// stage that refused it. parked marks fault-induced holds.
func (c *Collector) Block0(input, stage int, parked bool, now int64) {
	i := c.slot0[input]
	if i < 0 {
		return
	}
	r := &c.recs[i]
	r.block++
	r.stage = int32(stage)
	c.stages[stage-1].block++
	r.touched = now
	if parked {
		c.faultParked++
	}
}

// Deliver0 retires a pending depth-0 request: one service cycle at the
// final stage.
func (c *Collector) Deliver0(input int, now int64) {
	i := c.slot0[input]
	if i < 0 {
		return
	}
	c.slot0[input] = -1
	r := &c.recs[i]
	r.service++
	r.stage = int32(c.lay.Stages)
	c.stages[c.lay.Stages-1].service++
	c.dwell(r, now)
	r.touched = now
	c.close(i, ClassDelivered, now)
}

// Drop0 discards a pending depth-0 request at the stage that refused
// it; the dropping cycle is a blocked cycle.
func (c *Collector) Drop0(input, stage int, now int64) {
	i := c.slot0[input]
	if i < 0 {
		return
	}
	c.slot0[input] = -1
	r := &c.recs[i]
	r.block++
	r.stage = int32(stage)
	c.stages[stage-1].block++
	c.dwell(r, now)
	r.touched = now
	c.close(i, ClassDropped, now)
}

// EndCycle0 advances the cycle count for depth-0 engines (they have no
// mirrored queues to sweep — every pending input got exactly one
// outcome hook).
func (c *Collector) EndCycle0() { c.cycles++ }

// ReqComplete records a completed closed-loop request's five-way time
// split. The components telescope to now-created exactly; see
// RequestSample.
func (c *Collector) ReqComplete(src, dest int, created, firstIssue, lastIssue, arrive, reply, now int64) {
	c.reqs.completed++
	c.reqs.clientQueue += firstIssue - created
	c.reqs.retryWait += lastIssue - firstIssue
	c.reqs.forward += arrive - lastIssue
	c.reqs.service += reply - arrive
	c.reqs.reply += now - reply
	if src >= 0 && src < len(c.srcs) {
		c.srcs[src].count++
	}
	if dest >= 0 && dest < len(c.dsts) {
		c.dsts[dest].count++
	}
	if c.opt.OnRequest != nil {
		c.opt.OnRequest(RequestSample{
			Src: src, Dest: dest, Created: created, FirstIssue: firstIssue,
			LastIssue: lastIssue, Arrive: arrive, Reply: reply, Done: now,
		})
	}
}

// ReqGiveUp records a closed-loop request abandoned after exhausting
// its attempts, with the client time it burned.
func (c *Collector) ReqGiveUp(src, dest int, created, now int64) {
	c.reqs.giveUps++
	c.reqs.giveUpTime += now - created
}
