package anatomy

import (
	"reflect"
	"testing"

	"edn/internal/probe"
)

// chainLayout is a 2-stage toy fabric: rings 0,1 feed stage 1 (switch
// 0), rings 2,3 feed stage 2 (switch 0), terminals 0,1 behind switch 0.
func chainLayout() Layout {
	return Layout{
		Stages: 2, Inputs: 2, Outputs: 2, Rings: 4,
		RingStage:  []int32{1, 1, 2, 2},
		RingSwitch: []int32{0, 0, 0, 0},
		TermSwitch: []int32{0, 0},
	}
}

// TestCollectorAttribution walks one packet through a hand-built
// blocking scenario and checks every cycle lands in the right bin.
func TestCollectorAttribution(t *testing.T) {
	var samples []PacketSample
	c := New(Options{OnPacket: func(s PacketSample) { samples = append(samples, s) }})
	c.Bind(chainLayout())

	// Cycle 0: packet injected into ring 0 (stage 1).
	c.Inject(0, 0, 1, 0)
	c.EndCycle(0)
	// Cycle 1: head of ring 0, blocked by full ring 2 downstream.
	c.Block(0, 2, 1)
	c.EndCycle(1)
	// Cycle 2: advances into ring 2 (stage 2).
	c.Advance(0, 2, 2)
	c.EndCycle(2)
	// Cycle 3: delivered from ring 2.
	c.Deliver(2, 3)
	c.EndCycle(3)

	if len(samples) != 1 {
		t.Fatalf("want 1 closed packet, got %d", len(samples))
	}
	s := samples[0]
	// Life: injected at 0, delivered at 3 => latency 3 = 1 block (cycle
	// 1) + 2 service (the advance and the delivery). Cycle 0 is the
	// injection cycle itself — the buffered convention doesn't count it.
	want := PacketSample{Class: ClassDelivered, Src: 0, Dest: 1, Inject: 0, Closed: 3,
		Wait: 0, Block: 1, Service: 2}
	if s != want {
		t.Fatalf("sample %+v, want %+v", s, want)
	}

	rep := c.Report()
	if rep.Delivered.Count != 1 || rep.Delivered.Block != 1 || rep.Delivered.Service != 2 {
		t.Fatalf("report totals %+v", rep.Delivered)
	}
	// The blame ledger charges ring 2's owner (stage 2, switch 0) with
	// the one blocked ring-cycle it caused.
	if len(rep.Blame) != 1 || rep.Blame[0] != (SwitchBlame{Stage: 2, Switch: 0, Cycles: 1}) {
		t.Fatalf("blame %+v", rep.Blame)
	}
	// One single-edge congestion tree rooted at the non-blocked ring 2.
	if len(rep.Trees) != 1 {
		t.Fatalf("trees %+v", rep.Trees)
	}
	tr := rep.Trees[0]
	if tr.RootStage != 2 || tr.RootSwitch != 0 || tr.RootTerminal != -1 || tr.Depth != 1 || tr.BlockedCycles != 1 {
		t.Fatalf("tree %+v", tr)
	}
}

// TestCollectorWaitBehindHead pins the wait bin: a packet queued behind
// a blocked head accrues wait, not block.
func TestCollectorWaitBehindHead(t *testing.T) {
	var samples []PacketSample
	c := New(Options{OnPacket: func(s PacketSample) { samples = append(samples, s) }})
	c.Bind(chainLayout())

	c.Inject(0, 0, 0, 0) // head
	c.Inject(0, 1, 1, 0) // queued behind it in the same ring
	c.EndCycle(0)
	c.Block(0, 2, 1) // head blocked; follower waits
	c.EndCycle(1)
	c.Advance(0, 2, 2) // head advances
	c.Block(0, 2, 2)   // follower is now the blocked head
	c.EndCycle(2)
	c.Deliver(2, 3)    // head delivered
	c.Advance(0, 3, 3) // follower advances
	c.EndCycle(3)
	c.Deliver(3, 4) // follower delivered
	c.EndCycle(4)

	if len(samples) != 2 {
		t.Fatalf("want 2 closed packets, got %d", len(samples))
	}
	head, follower := samples[0], samples[1]
	if head.Wait != 0 || head.Block != 1 || head.Service != 2 {
		t.Fatalf("head %+v", head)
	}
	// Follower: cycle 1 waiting behind the head, cycle 2 blocked as the
	// new head, cycles 3 and 4 service.
	if follower.Wait != 1 || follower.Block != 1 || follower.Service != 2 {
		t.Fatalf("follower %+v", follower)
	}
	if got, want := follower.Wait+follower.Block+follower.Service, follower.Closed-follower.Inject; got != want {
		t.Fatalf("conservation: %d != %d", got, want)
	}
}

// TestReportMerge checks shard merges are lossless: totals sum, dwell
// summaries recompute from merged mass, blame re-ranks, and merging
// mismatched geometries fails loudly.
func TestReportMerge(t *testing.T) {
	mk := func(seedCycle int64) *Report {
		c := New(Options{TopK: 2})
		c.Bind(chainLayout())
		c.Inject(0, 0, 1, seedCycle)
		c.EndCycle(seedCycle)
		c.Block(0, 2, seedCycle+1)
		c.EndCycle(seedCycle + 1)
		c.Advance(0, 2, seedCycle+2)
		c.EndCycle(seedCycle + 2)
		c.Deliver(2, seedCycle+3)
		c.EndCycle(seedCycle + 3)
		return c.Report()
	}
	a, b := mk(0), mk(100)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Delivered.Count != 2 || a.Delivered.Block != 2 || a.Delivered.Service != 4 {
		t.Fatalf("merged totals %+v", a.Delivered)
	}
	if a.Cycles != 8 {
		t.Fatalf("merged cycles %d", a.Cycles)
	}
	if len(a.Blame) != 1 || a.Blame[0].Cycles != 2 {
		t.Fatalf("merged blame %+v", a.Blame)
	}
	if len(a.Trees) != 2 {
		t.Fatalf("merged trees %+v", a.Trees)
	}
	for _, st := range a.PerStage {
		if st.DwellSummary.N != st.Dwell.N() {
			t.Fatalf("stage %d dwell summary stale: %+v vs N=%d", st.Stage, st.DwellSummary, st.Dwell.N())
		}
	}

	other := New(Options{})
	other.Bind(Layout{Stages: 3, Inputs: 4, Outputs: 4, Rings: 0})
	if err := a.Merge(other.Report()); err == nil {
		t.Fatalf("merged mismatched geometries without error")
	}
}

// TestTreeDetectorChain feeds a three-deep blocked-by chain and checks
// the detector finds one tree with the right root, depth and spread.
func TestTreeDetectorChain(t *testing.T) {
	lay := Layout{
		Stages: 3, Inputs: 2, Outputs: 2, Rings: 6,
		RingStage:  []int32{1, 1, 2, 2, 3, 3},
		RingSwitch: []int32{0, 0, 0, 0, 0, 0},
		TermSwitch: []int32{0, 0},
	}
	var td treeDetector
	td.reset(4)
	// Ring 0 blocked by ring 2, ring 2 blocked by ring 4, ring 4 blocked
	// by terminal 0 (node Rings+0 = 6): one tree rooted at the terminal,
	// chain depth 3, spread 3.
	blockedBy := []int32{2, bbNone, 4, bbNone, 6, bbNone}
	for now := int64(0); now < 5; now++ {
		td.observe(now, []int32{0, 2, 4}, blockedBy, lay)
	}
	trees := td.report(lay)
	if len(trees) != 1 {
		t.Fatalf("trees %+v", trees)
	}
	tr := trees[0]
	if tr.RootTerminal != 0 || tr.RootStage != 3 || tr.Depth != 3 || tr.Spread != 3 {
		t.Fatalf("tree %+v", tr)
	}
	if tr.FirstCycle != 0 || tr.LastCycle != 4 || tr.BlockedCycles != 15 {
		t.Fatalf("tree lifetime %+v", tr)
	}
}

// TestSplitHops decomposes a compressed probe trace and checks the
// segments telescope to the trace latency.
func TestSplitHops(t *testing.T) {
	hops := []probe.Hop{
		{Cycle: 10, Stage: 0, Event: probe.EvInject},
		{Cycle: 14, Stage: 1, Event: probe.EvBlock},    // waited 11..13, blocked from 14
		{Cycle: 16, Stage: 1, Event: probe.EvTraverse}, // blocked 14..15, served 16
		{Cycle: 17, Stage: 2, Event: probe.EvTraverse}, // straight through
		{Cycle: 20, Stage: 3, Event: probe.EvDeliver},  // waited 18..19, served 20
	}
	got := SplitHops(hops)
	want := []TraceSplit{
		{Stage: 1, Wait: 3, Block: 2, Service: 1},
		{Stage: 2, Wait: 0, Block: 0, Service: 1},
		{Stage: 3, Wait: 2, Block: 0, Service: 1},
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("splits %+v, want %+v", got, want)
	}
	var total int64
	for _, s := range got {
		total += s.Wait + s.Block + s.Service
	}
	if total != 10 { // delivered at 20, injected at 10
		t.Fatalf("splits sum to %d, want 10", total)
	}

	if SplitHops(nil) != nil {
		t.Fatalf("empty hops should split to nil")
	}
	if SplitHops([]probe.Hop{{Cycle: 1, Event: probe.EvIssue}}) != nil {
		t.Fatalf("request traces should split to nil")
	}
}
