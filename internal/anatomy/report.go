package anatomy

import (
	"fmt"
	"sort"

	"edn/internal/stats"
)

// ClassTotals aggregates the attributed time of one packet class. By
// the conservation law, Wait+Block+Service is the class's total
// in-network time (for delivered packets: the sum of their latencies,
// under the engine's latency convention).
type ClassTotals struct {
	Count   int64 `json:"count"`
	Wait    int64 `json:"wait"`
	Block   int64 `json:"block"`
	Service int64 `json:"service"`
}

func (ct *ClassTotals) add(o ClassTotals) {
	ct.Count += o.Count
	ct.Wait += o.Wait
	ct.Block += o.Block
	ct.Service += o.Service
}

// StageTotals is one stage's time ledger: cycles attributed to packets
// queued at this stage, split wait/block/service, the blocking
// ring-cycles this stage's switches *caused* (Blame), and the dwell
// histogram (cycles a packet spends queued at the stage, inclusive of
// its departing cycle).
type StageTotals struct {
	Stage   int   `json:"stage"`
	Wait    int64 `json:"wait"`
	Block   int64 `json:"block"`
	Service int64 `json:"service"`
	Blame   int64 `json:"blame"`
	// Dwell is the exact dwell histogram backing shard merges;
	// stats.Histogram does not serialize, so the JSON surface carries
	// its headline quantiles in DwellSummary instead.
	Dwell        *stats.Histogram `json:"-"`
	DwellSummary DwellSummary     `json:"dwell"`
}

// DwellSummary is the JSON face of a stage's dwell histogram.
type DwellSummary struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
}

func summarizeDwell(h *stats.Histogram) DwellSummary {
	if h == nil || h.N() == 0 {
		return DwellSummary{}
	}
	return DwellSummary{
		N: h.N(), Mean: h.Mean(),
		P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99),
		Max: h.Max(),
	}
}

// SwitchBlame is one switch's entry in the blame ledger: how many
// blocked ring-cycles its full input queues (or contended terminals)
// inflicted on upstream heads.
type SwitchBlame struct {
	Stage  int   `json:"stage"`
	Switch int   `json:"switch"`
	Cycles int64 `json:"cycles"`
}

// Flow is one source's (or destination's) closed-packet ledger.
type Flow struct {
	Count   int64 `json:"count"`
	Wait    int64 `json:"wait"`
	Block   int64 `json:"block"`
	Service int64 `json:"service"`
}

func (f *Flow) add(o Flow) {
	f.Count += o.Count
	f.Wait += o.Wait
	f.Block += o.Block
	f.Service += o.Service
}

// RequestSplit is the closed-loop five-way decomposition of request
// time, summed over completed requests: client-queue (created to first
// issue), retry-wait (first to last issue), forward-fabric (last issue
// to service arrival), service (arrival to reply injection, inclusive
// of reply-queue wait at the server), and reply-fabric. The five sum
// exactly to total completion time.
type RequestSplit struct {
	Completed   int64 `json:"completed"`
	ClientQueue int64 `json:"client_queue"`
	RetryWait   int64 `json:"retry_wait"`
	Forward     int64 `json:"forward"`
	Service     int64 `json:"service"`
	Reply       int64 `json:"reply"`
	GiveUps     int64 `json:"give_ups,omitempty"`
	GiveUpTime  int64 `json:"give_up_time,omitempty"`
}

// Total returns the summed completion time of all completed requests.
func (r *RequestSplit) Total() int64 {
	return r.ClientQueue + r.RetryWait + r.Forward + r.Service + r.Reply
}

// Report is a latency-anatomy snapshot: streaming aggregates only, so
// reports from different shards or runs merge losslessly (except the
// top-K truncation of blame and tree lists).
type Report struct {
	Stages      int           `json:"stages"`
	Inputs      int           `json:"inputs"`
	Outputs     int           `json:"outputs"`
	Cycles      int64         `json:"cycles"`
	Depth0      bool          `json:"depth0,omitempty"`
	Delivered   ClassTotals   `json:"delivered"`
	Dropped     ClassTotals   `json:"dropped"`
	Stranded    ClassTotals   `json:"stranded"`
	PerStage    []StageTotals `json:"per_stage,omitempty"`
	Blame       []SwitchBlame `json:"blame,omitempty"`
	Trees       []Tree        `json:"trees,omitempty"`
	Sources     []Flow        `json:"sources,omitempty"`
	Dests       []Flow        `json:"dests,omitempty"`
	FaultParked int64         `json:"fault_parked,omitempty"`
	Requests    *RequestSplit `json:"requests,omitempty"`

	topK int
}

// Report snapshots the collector into a mergeable Report. It drains
// the tree detector (trees still live are closed), so it is meant to
// be called once, at end of run.
func (c *Collector) Report() *Report {
	rep := &Report{
		Stages:      c.lay.Stages,
		Inputs:      c.lay.Inputs,
		Outputs:     c.lay.Outputs,
		Cycles:      c.cycles,
		Depth0:      c.lay.Rings == 0 && !c.hasReqs,
		Delivered:   c.classes[ClassDelivered].totals(),
		Dropped:     c.classes[ClassDropped].totals(),
		Stranded:    c.classes[ClassStranded].totals(),
		FaultParked: c.faultParked,
		topK:        c.opt.topK(),
	}
	if c.hasReqs {
		r := RequestSplit{
			Completed: c.reqs.completed, ClientQueue: c.reqs.clientQueue,
			RetryWait: c.reqs.retryWait, Forward: c.reqs.forward,
			Service: c.reqs.service, Reply: c.reqs.reply,
			GiveUps: c.reqs.giveUps, GiveUpTime: c.reqs.giveUpTime,
		}
		rep.Requests = &r
	}
	if c.lay.Stages > 0 {
		rep.PerStage = make([]StageTotals, c.lay.Stages)
		for i := range rep.PerStage {
			sa := &c.stages[i]
			rep.PerStage[i] = StageTotals{
				Stage: i + 1, Wait: sa.wait, Block: sa.block,
				Service: sa.service, Dwell: sa.hist.Clone(),
				DwellSummary: summarizeDwell(sa.hist),
			}
		}
		// Fold the per-node blame ledger into per-stage totals and a
		// per-switch top-K list.
		type key struct{ stage, sw int }
		bySwitch := make(map[key]int64)
		for node, cycles := range c.blame {
			if cycles == 0 {
				continue
			}
			stage, sw := c.nodeLoc(int32(node))
			rep.PerStage[stage-1].Blame += cycles
			bySwitch[key{stage, sw}] += cycles
		}
		for k, v := range bySwitch {
			rep.Blame = append(rep.Blame, SwitchBlame{Stage: k.stage, Switch: k.sw, Cycles: v})
		}
		sortBlame(rep.Blame)
		if len(rep.Blame) > rep.topK {
			rep.Blame = rep.Blame[:rep.topK]
		}
		rep.Trees = c.trees.report(c.lay)
	}
	if len(c.srcs) > 0 {
		rep.Sources = make([]Flow, len(c.srcs))
		for i, f := range c.srcs {
			rep.Sources[i] = Flow{Count: f.count, Wait: f.wait, Block: f.block, Service: f.service}
		}
	}
	if len(c.dsts) > 0 {
		rep.Dests = make([]Flow, len(c.dsts))
		for i, f := range c.dsts {
			rep.Dests[i] = Flow{Count: f.count, Wait: f.wait, Block: f.block, Service: f.service}
		}
	}
	return rep
}

func (ca classAgg) totals() ClassTotals {
	return ClassTotals{Count: ca.count, Wait: ca.wait, Block: ca.block, Service: ca.service}
}

// nodeLoc maps a blame-ledger node to its (1-based stage, switch).
func (c *Collector) nodeLoc(node int32) (stage, sw int) {
	if int(node) >= c.lay.Rings {
		term := int(node) - c.lay.Rings
		return c.lay.Stages, int(c.lay.TermSwitch[term])
	}
	return int(c.lay.RingStage[node]), int(c.lay.RingSwitch[node])
}

// Merge folds another report into r. Geometries must match. Cycles
// sum, so merging two shards of the same sweep yields per-cycle rates
// over the combined observation window; blame and tree lists re-rank
// and re-truncate to the receiver's top-K.
func (r *Report) Merge(o *Report) error {
	if o == nil {
		return nil
	}
	if r.Stages != o.Stages || r.Inputs != o.Inputs || r.Outputs != o.Outputs || r.Depth0 != o.Depth0 {
		return fmt.Errorf("anatomy: merging mismatched reports (%d/%d/%d vs %d/%d/%d stages/in/out)",
			r.Stages, r.Inputs, r.Outputs, o.Stages, o.Inputs, o.Outputs)
	}
	r.Cycles += o.Cycles
	r.Delivered.add(o.Delivered)
	r.Dropped.add(o.Dropped)
	r.Stranded.add(o.Stranded)
	r.FaultParked += o.FaultParked
	for i := range r.PerStage {
		a, b := &r.PerStage[i], &o.PerStage[i]
		a.Wait += b.Wait
		a.Block += b.Block
		a.Service += b.Service
		a.Blame += b.Blame
		if a.Dwell != nil && b.Dwell != nil {
			if err := a.Dwell.Merge(b.Dwell); err != nil {
				return err
			}
			a.DwellSummary = summarizeDwell(a.Dwell)
		}
	}
	type key struct{ stage, sw int }
	bySwitch := make(map[key]int64)
	for _, sb := range r.Blame {
		bySwitch[key{sb.Stage, sb.Switch}] += sb.Cycles
	}
	for _, sb := range o.Blame {
		bySwitch[key{sb.Stage, sb.Switch}] += sb.Cycles
	}
	r.Blame = r.Blame[:0]
	for k, v := range bySwitch {
		r.Blame = append(r.Blame, SwitchBlame{Stage: k.stage, Switch: k.sw, Cycles: v})
	}
	sortBlame(r.Blame)
	topK := r.topK
	if topK <= 0 {
		topK = 8
	}
	if len(r.Blame) > topK {
		r.Blame = r.Blame[:topK]
	}
	r.Trees = append(r.Trees, o.Trees...)
	sortTrees(r.Trees)
	if len(r.Trees) > topK {
		r.Trees = r.Trees[:topK]
	}
	for i := range r.Sources {
		if i < len(o.Sources) {
			r.Sources[i].add(o.Sources[i])
		}
	}
	for i := range r.Dests {
		if i < len(o.Dests) {
			r.Dests[i].add(o.Dests[i])
		}
	}
	if o.Requests != nil {
		if r.Requests == nil {
			cp := *o.Requests
			r.Requests = &cp
		} else {
			r.Requests.Completed += o.Requests.Completed
			r.Requests.ClientQueue += o.Requests.ClientQueue
			r.Requests.RetryWait += o.Requests.RetryWait
			r.Requests.Forward += o.Requests.Forward
			r.Requests.Service += o.Requests.Service
			r.Requests.Reply += o.Requests.Reply
			r.Requests.GiveUps += o.Requests.GiveUps
			r.Requests.GiveUpTime += o.Requests.GiveUpTime
		}
	}
	return nil
}

func sortBlame(b []SwitchBlame) {
	sort.Slice(b, func(i, j int) bool {
		if b[i].Cycles != b[j].Cycles {
			return b[i].Cycles > b[j].Cycles
		}
		if b[i].Stage != b[j].Stage {
			return b[i].Stage < b[j].Stage
		}
		return b[i].Switch < b[j].Switch
	})
}
