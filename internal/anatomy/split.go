package anatomy

import "edn/internal/probe"

// TraceSplit is one stage-visit of a sampled packet trace, annotated
// with its wait/block/service decomposition. The splits of a delivered
// buffered-engine trace telescope to the trace latency; depth-0 traces
// telescope to latency+1 (the engines' depth-0 latency convention
// counts the injection cycle).
type TraceSplit struct {
	Stage   int   `json:"stage"`
	Wait    int64 `json:"wait"`
	Block   int64 `json:"block"`
	Service int64 `json:"service"`
}

// SplitHops decomposes a packet trace's hops into per-stage-visit
// wait/block/service segments. It understands the probe's hop
// compression (a run of blocked cycles at one stage is recorded as a
// single block hop at the run's first cycle): the gap between entering
// a stage and the first blocked cycle is queue wait, the span from
// first block to departure is head-of-line blocking, and the departing
// cycle itself is service (dropping and stranding cycles count as
// blocked, matching the Collector's ledger attribution). Closed-loop
// request traces (issue/retry/complete) have no stage geometry and
// return nil.
func SplitHops(hops []probe.Hop) []TraceSplit {
	if len(hops) == 0 || hops[0].Event != probe.EvInject {
		return nil
	}
	var out []TraceSplit
	prev := hops[0].Cycle // cycle the packet entered the current stage's queue
	blockStart := int64(-1)
	for _, h := range hops[1:] {
		switch h.Event {
		case probe.EvBlock, probe.EvPark:
			if blockStart < 0 {
				blockStart = h.Cycle
			}
		case probe.EvTraverse, probe.EvDeliver:
			seg := TraceSplit{Stage: h.Stage, Service: 1}
			if blockStart >= 0 {
				seg.Block = h.Cycle - blockStart
				seg.Wait = blockStart - prev - 1
			} else {
				seg.Wait = h.Cycle - prev - 1
			}
			if seg.Wait < 0 {
				// Depth-0 engines can inject and resolve in the same
				// cycle; there is no queue to wait in.
				seg.Wait = 0
			}
			out = append(out, seg)
			prev = h.Cycle
			blockStart = -1
		case probe.EvDrop, probe.EvStrand:
			seg := TraceSplit{Stage: h.Stage}
			if blockStart >= 0 {
				seg.Block = h.Cycle - blockStart + 1
				seg.Wait = blockStart - prev - 1
			} else {
				seg.Block = 1
				seg.Wait = h.Cycle - prev - 1
			}
			if seg.Wait < 0 {
				seg.Wait = 0
			}
			out = append(out, seg)
			prev = h.Cycle
			blockStart = -1
		default:
			// A request-family event inside a packet trace: not ours.
			return out
		}
	}
	return out
}
