package anatomy

import "sort"

// A congestion tree is the signature failure mode of a hot spot in a
// multistage network: the queues in front of the hot output fill, the
// switches feeding them block, *their* input queues fill, and the
// blocking spreads backward stage by stage until traffic that never
// wanted the hot output is stuck behind traffic that did (the
// Ultracomputer literature's "tree saturation"). The TreeDetector
// reconstructs these trees from the per-cycle blocked-by edges the
// Collector records: each cycle it walks every blocked ring's edge
// chain downstream to the first node that is not itself blocked — the
// tree's root — and aggregates per-root statistics over the tree's
// lifetime.

// Tree is one detected congestion tree, reported with the location of
// its root, how far back the blocking reached (Depth, in stages), how
// many wires it froze at its widest (Spread), when it lived, and its
// total cost in blocked ring-cycles.
type Tree struct {
	RootStage     int   `json:"root_stage"`          // 1-based stage of the root node
	RootSwitch    int   `json:"root_switch"`         // switch index within that stage
	RootTerminal  int   `json:"root_terminal"`       // output terminal, or -1 for a ring root
	Depth         int   `json:"depth"`               // longest blocked-by chain observed (edges)
	Spread        int   `json:"spread"`              // max simultaneously blocked rings
	FirstCycle    int64 `json:"first_cycle"`         // cycle the tree appeared
	LastCycle     int64 `json:"last_cycle"`          // last cycle it was observed
	BlockedCycles int64 `json:"blocked_ring_cycles"` // sum of spread over its lifetime
}

// treeState tracks one live tree keyed by its root node.
type treeState struct {
	root      int32
	first     int64
	last      int64
	cycles    int64
	maxDepth  int32
	maxSpread int32
}

type cycleRoot struct {
	spread int32
	depth  int32
}

type treeDetector struct {
	topK     int
	active   map[int32]*treeState
	finished []Tree
	agg      map[int32]*cycleRoot // reused per cycle
}

func (td *treeDetector) reset(topK int) {
	td.topK = topK
	td.active = make(map[int32]*treeState)
	td.finished = td.finished[:0]
	td.agg = make(map[int32]*cycleRoot)
}

// observe folds one cycle's blocked-by edges in. blockedBy[r] is the
// node blocking ring r (bbNone when r's head is not blocked, bbParked
// for fault parks, which never join a tree).
func (td *treeDetector) observe(now int64, blocked []int32, blockedBy []int32, lay Layout) {
	if len(blocked) == 0 {
		td.closeStale(now, lay)
		return
	}
	for _, b := range blocked {
		// Walk downstream to the root: the first node that is not
		// itself a blocked ring. Edges point strictly downstream (a
		// head is blocked by a *later*-stage ring or a terminal), so
		// the walk terminates; the bound is defensive.
		cur := b
		depth := int32(0)
		for hops := 0; hops <= lay.Stages+1; hops++ {
			next := blockedBy[cur]
			depth++
			if next >= int32(lay.Rings) {
				// Terminal node: never blocked, always a root.
				cur = next
				break
			}
			if blockedBy[next] < 0 {
				// A full ring whose own head is not blocked (it is
				// draining, just not fast enough), or a parked ring.
				cur = next
				break
			}
			cur = next
		}
		ca := td.agg[cur]
		if ca == nil {
			ca = &cycleRoot{}
			td.agg[cur] = ca
		}
		ca.spread++
		if depth > ca.depth {
			ca.depth = depth
		}
	}
	for root, ca := range td.agg {
		ts := td.active[root]
		if ts == nil {
			ts = &treeState{root: root, first: now}
			td.active[root] = ts
		}
		ts.last = now
		ts.cycles += int64(ca.spread)
		if ca.depth > ts.maxDepth {
			ts.maxDepth = ca.depth
		}
		if ca.spread > ts.maxSpread {
			ts.maxSpread = ca.spread
		}
		delete(td.agg, root)
	}
	td.closeStale(now, lay)
}

// closeStale retires trees that were not observed this cycle.
func (td *treeDetector) closeStale(now int64, lay Layout) {
	for root, ts := range td.active {
		if ts.last == now {
			continue
		}
		td.finished = append(td.finished, ts.tree(lay))
		delete(td.active, root)
	}
	if len(td.finished) > 8*td.topK+64 {
		sortTrees(td.finished)
		td.finished = td.finished[:td.topK]
	}
}

func (ts *treeState) tree(lay Layout) Tree {
	t := Tree{
		Depth: int(ts.maxDepth), Spread: int(ts.maxSpread),
		FirstCycle: ts.first, LastCycle: ts.last, BlockedCycles: ts.cycles,
		RootTerminal: -1,
	}
	if int(ts.root) >= lay.Rings {
		term := int(ts.root) - lay.Rings
		t.RootStage = lay.Stages
		t.RootSwitch = int(lay.TermSwitch[term])
		t.RootTerminal = term
	} else {
		t.RootStage = int(lay.RingStage[ts.root])
		t.RootSwitch = int(lay.RingSwitch[ts.root])
	}
	return t
}

// report drains the detector into a final top-K tree list, closing the
// trees still live at end of run.
func (td *treeDetector) report(lay Layout) []Tree {
	out := append([]Tree(nil), td.finished...)
	for _, ts := range td.active {
		out = append(out, ts.tree(lay))
	}
	sortTrees(out)
	if len(out) > td.topK {
		out = out[:td.topK]
	}
	return out
}

// sortTrees orders by blocked ring-cycles (the tree's total cost),
// breaking ties deterministically so reports are reproducible.
func sortTrees(trees []Tree) {
	sort.Slice(trees, func(i, j int) bool {
		a, b := trees[i], trees[j]
		if a.BlockedCycles != b.BlockedCycles {
			return a.BlockedCycles > b.BlockedCycles
		}
		if a.FirstCycle != b.FirstCycle {
			return a.FirstCycle < b.FirstCycle
		}
		if a.RootStage != b.RootStage {
			return a.RootStage < b.RootStage
		}
		if a.RootSwitch != b.RootSwitch {
			return a.RootSwitch < b.RootSwitch
		}
		return a.RootTerminal < b.RootTerminal
	})
}
