// Package benchwatch is the ns/op regression harness: it parses
// `go test -bench` output into the repo's BENCH_N.json trajectory
// schema, diffs runs against a committed snapshot, and enforces
// per-benchmark ns/op budgets with a two-level verdict — WARN inside
// the shared-runner noise band above a budget, FAIL beyond the hard
// factor (or when a budgeted benchmark disappears). cmd/edn-bench is
// the CLI face; CI runs it as the bench-regression gate.
package benchwatch

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line: the benchmark's name (with the
// trailing -GOMAXPROCS suffix stripped), its iteration count, and
// every reported metric — ns/op, B/op, allocs/op and any custom
// ReportMetric units — keyed by unit string.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// NsPerOp returns the benchmark's ns/op metric (0 when absent).
func (b Benchmark) NsPerOp() float64 { return b.Metrics["ns/op"] }

// Snapshot is one BENCH_N.json trajectory entry. Decoding tolerates
// the per-PR headline blocks (prN_headline) the committed snapshots
// carry; they are not round-tripped.
type Snapshot struct {
	Snapshot   string      `json:"snapshot"`
	Date       string      `json:"date"`
	Go         string      `json:"go"`
	CPU        string      `json:"cpu"`
	Command    string      `json:"command"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// gomaxprocsSuffix matches the -N the bench runner appends to every
// benchmark name.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

// Parse reads `go test -bench` output and returns the benchmark
// results in input order. Non-benchmark lines (package headers, PASS,
// ok) are skipped. When -count ran a benchmark several times, the
// fastest ns/op run wins — the repeat exists to beat scheduler noise,
// and minimum-of-runs is the standard noise filter for that.
func Parse(r io.Reader) ([]Benchmark, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var out []Benchmark
	index := make(map[string]int)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A result line is "Name iterations value unit [value unit]...";
		// a bare "BenchmarkFoo" progress line has no fields to parse.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // "Benchmark..." prose, not a result line
		}
		b := Benchmark{
			Name:       gomaxprocsSuffix.ReplaceAllString(fields[0], ""),
			Iterations: iters,
			Metrics:    make(map[string]float64, (len(fields)-2)/2),
		}
		bad := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				bad = true
				break
			}
			b.Metrics[fields[i+1]] = v
		}
		if bad {
			continue
		}
		if at, dup := index[b.Name]; dup {
			if b.NsPerOp() < out[at].NsPerOp() {
				out[at] = b
			}
			continue
		}
		index[b.Name] = len(out)
		out = append(out, b)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchwatch: no benchmark result lines found")
	}
	return out, nil
}

// LoadSnapshot reads one BENCH_N.json file.
func LoadSnapshot(path string) (Snapshot, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, err
	}
	var s Snapshot
	if err := json.Unmarshal(b, &s); err != nil {
		return Snapshot{}, fmt.Errorf("benchwatch: %s: %w", path, err)
	}
	return s, nil
}

// WriteSnapshot writes s as indented JSON. When headlineKey is
// non-empty (e.g. "pr3_headline"), headline is embedded under it —
// the free-form per-PR comment block the committed trajectory carries.
func WriteSnapshot(path string, s Snapshot, headlineKey string, headline any) error {
	doc := map[string]any{
		"snapshot":   s.Snapshot,
		"date":       s.Date,
		"go":         s.Go,
		"cpu":        s.CPU,
		"command":    s.Command,
		"benchmarks": s.Benchmarks,
	}
	if headlineKey != "" {
		doc[headlineKey] = headline
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// Budgets is the committed per-benchmark ns/op ceiling file the
// regression gate enforces.
type Budgets struct {
	// Comment documents the derivation for the next reader.
	Comment string `json:"comment,omitempty"`
	// Source names the snapshot the budgets derive from.
	Source string `json:"source,omitempty"`
	// Headroom is the multiplier applied to the source ns/op.
	Headroom float64 `json:"headroom,omitempty"`
	// NsPerOp maps benchmark name to its ns/op budget.
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

// DeriveBudgets builds budgets from a run: every benchmark matching
// filter (nil = all) gets budget ns/op * headroom.
func DeriveBudgets(benchmarks []Benchmark, filter *regexp.Regexp, headroom float64) Budgets {
	if headroom <= 0 {
		headroom = 1
	}
	b := Budgets{Headroom: headroom, NsPerOp: make(map[string]float64)}
	for _, bm := range benchmarks {
		if filter != nil && !filter.MatchString(bm.Name) {
			continue
		}
		if ns := bm.NsPerOp(); ns > 0 {
			b.NsPerOp[bm.Name] = ns * headroom
		}
	}
	return b
}

// LoadBudgets reads a budget file.
func LoadBudgets(path string) (Budgets, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Budgets{}, err
	}
	var b Budgets
	if err := json.Unmarshal(raw, &b); err != nil {
		return Budgets{}, fmt.Errorf("benchwatch: %s: %w", path, err)
	}
	if len(b.NsPerOp) == 0 {
		return Budgets{}, fmt.Errorf("benchwatch: %s: no ns_per_op budgets", path)
	}
	return b, nil
}

// WriteBudgets writes b as indented JSON.
func (b Budgets) Write(path string) error {
	raw, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Check statuses, ordered by severity.
const (
	StatusOK      = "OK"      // at or under budget
	StatusWarn    = "WARN"    // over budget but within the hard factor: noise band
	StatusFail    = "FAIL"    // over hardFactor x budget: a real regression
	StatusMissing = "MISSING" // budgeted benchmark absent from the run
)

// CheckRow is one budgeted benchmark's verdict.
type CheckRow struct {
	Name    string  `json:"name"`
	Status  string  `json:"status"`
	NsPerOp float64 `json:"ns_per_op"` // measured (0 when missing)
	Budget  float64 `json:"budget_ns_per_op"`
	Ratio   float64 `json:"ratio"` // measured / budget
}

// CheckReport is the regression gate's output over every budgeted
// benchmark, sorted by name.
type CheckReport struct {
	Rows     []CheckRow `json:"rows"`
	Warnings int        `json:"warnings"`
	Failures int        `json:"failures"` // FAIL + MISSING rows
}

// Failed reports whether the gate should reject the run.
func (r CheckReport) Failed() bool { return r.Failures > 0 }

// Check compares a run against budgets. A benchmark at or under its
// budget is OK; over budget but within hardFactor x budget is WARN
// (shared-runner noise floor — reported, not fatal); beyond that, or
// missing from the run entirely, is a failure. hardFactor <= 1 selects
// the default 2.
func Check(benchmarks []Benchmark, budgets Budgets, hardFactor float64) CheckReport {
	if hardFactor <= 1 {
		hardFactor = 2
	}
	byName := make(map[string]Benchmark, len(benchmarks))
	for _, b := range benchmarks {
		byName[b.Name] = b
	}
	var rep CheckReport
	for name, budget := range budgets.NsPerOp {
		row := CheckRow{Name: name, Budget: budget}
		b, ok := byName[name]
		switch ns := b.NsPerOp(); {
		case !ok || ns <= 0:
			row.Status = StatusMissing
			rep.Failures++
		default:
			row.NsPerOp = ns
			row.Ratio = ns / budget
			switch {
			case ns <= budget:
				row.Status = StatusOK
			case ns <= hardFactor*budget:
				row.Status = StatusWarn
				rep.Warnings++
			default:
				row.Status = StatusFail
				rep.Failures++
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	sort.Slice(rep.Rows, func(i, j int) bool { return rep.Rows[i].Name < rep.Rows[j].Name })
	return rep
}

// DiffRow is one benchmark's ns/op movement between two runs.
type DiffRow struct {
	Name    string  `json:"name"`
	OldNs   float64 `json:"old_ns_per_op"`
	NewNs   float64 `json:"new_ns_per_op"`
	DeltaPc float64 `json:"delta_percent"` // (new-old)/old * 100
}

// Diff matches benchmarks by name between a baseline and a run and
// reports ns/op movement, sorted by descending regression. Benchmarks
// present on only one side are skipped — Check, not Diff, owns
// absence.
func Diff(baseline, current []Benchmark) []DiffRow {
	base := make(map[string]float64, len(baseline))
	for _, b := range baseline {
		if ns := b.NsPerOp(); ns > 0 {
			base[b.Name] = ns
		}
	}
	var rows []DiffRow
	for _, b := range current {
		old, ok := base[b.Name]
		ns := b.NsPerOp()
		if !ok || ns <= 0 {
			continue
		}
		rows = append(rows, DiffRow{
			Name:    b.Name,
			OldNs:   old,
			NewNs:   ns,
			DeltaPc: (ns - old) / old * 100,
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].DeltaPc != rows[j].DeltaPc {
			return rows[i].DeltaPc > rows[j].DeltaPc
		}
		return rows[i].Name < rows[j].Name
	})
	return rows
}
