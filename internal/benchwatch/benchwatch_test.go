package benchwatch

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: edn/internal/core
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkRouteCycleInto-8   	   22272	     25889 ns/op	     526.0 delivered	       0 B/op	       0 allocs/op
BenchmarkQueueCycle/1Kports/depth1-drop-8         	    9033	     65922 ns/op	       15.53 Mports/s	     525.4 delivered/cycle	       0 B/op	       0 allocs/op
BenchmarkProbeOff-16      	 1000000	      1042 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	edn/internal/core	4.2s
`

func TestParse(t *testing.T) {
	bs, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %+v", len(bs), bs)
	}
	if bs[0].Name != "BenchmarkRouteCycleInto" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", bs[0].Name)
	}
	if bs[0].Iterations != 22272 || bs[0].NsPerOp() != 25889 {
		t.Errorf("bad first row: %+v", bs[0])
	}
	if bs[1].Name != "BenchmarkQueueCycle/1Kports/depth1-drop" {
		t.Errorf("sub-benchmark name mangled: %q", bs[1].Name)
	}
	if got := bs[1].Metrics["Mports/s"]; got != 15.53 {
		t.Errorf("custom metric lost: %v", bs[1].Metrics)
	}
	if got := bs[2].Metrics["allocs/op"]; got != 0 {
		t.Errorf("allocs/op = %v, want 0", got)
	}
}

func TestParseKeepsFastestRepeat(t *testing.T) {
	in := `BenchmarkX-8	100	2000 ns/op
BenchmarkX-8	100	1500 ns/op
BenchmarkX-8	100	1800 ns/op
`
	bs, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != 1 || bs[0].NsPerOp() != 1500 {
		t.Fatalf("want one row at min 1500 ns/op, got %+v", bs)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("PASS\nok edn 1s\n")); err == nil {
		t.Fatal("want error on output with no benchmarks")
	}
}

func TestBudgetsDeriveAndCheck(t *testing.T) {
	bs, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	budgets := DeriveBudgets(bs, regexp.MustCompile(`RouteCycleInto|ProbeOff`), 1.15)
	if len(budgets.NsPerOp) != 2 {
		t.Fatalf("filter ignored: %+v", budgets.NsPerOp)
	}
	if want := 25889 * 1.15; budgets.NsPerOp["BenchmarkRouteCycleInto"] != want {
		t.Errorf("headroom not applied: %v", budgets.NsPerOp)
	}

	// Same run against its own derived budgets: everything OK.
	rep := Check(bs, budgets, 2)
	if rep.Failed() || rep.Warnings != 0 {
		t.Fatalf("self-check not clean: %+v", rep)
	}

	// 1.5x the budget: WARN (within the 2x hard factor), not fatal.
	warm := []Benchmark{
		{Name: "BenchmarkRouteCycleInto", Metrics: map[string]float64{"ns/op": 25889 * 1.15 * 1.5}},
		{Name: "BenchmarkProbeOff", Metrics: map[string]float64{"ns/op": 1042}},
	}
	rep = Check(warm, budgets, 2)
	if rep.Failed() || rep.Warnings != 1 {
		t.Fatalf("noise band should warn, not fail: %+v", rep)
	}

	// 3x the budget: FAIL.
	slow := []Benchmark{
		{Name: "BenchmarkRouteCycleInto", Metrics: map[string]float64{"ns/op": 25889 * 1.15 * 3}},
		{Name: "BenchmarkProbeOff", Metrics: map[string]float64{"ns/op": 1042}},
	}
	rep = Check(slow, budgets, 2)
	if !rep.Failed() || rep.Failures != 1 {
		t.Fatalf("3x budget must fail: %+v", rep)
	}

	// A budgeted benchmark missing from the run: FAIL.
	rep = Check(slow[1:], budgets, 2)
	missing := false
	for _, row := range rep.Rows {
		if row.Name == "BenchmarkRouteCycleInto" && row.Status == StatusMissing {
			missing = true
		}
	}
	if !missing || !rep.Failed() {
		t.Fatalf("missing benchmark must fail: %+v", rep)
	}
}

func TestSnapshotRoundTripToleratesHeadline(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_X.json")
	bs, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	snap := Snapshot{
		Snapshot: "BENCH_X", Date: "2026-08-08", Go: "go1.24.0",
		CPU: "test", Command: "go test -bench .", Benchmarks: bs,
	}
	headline := map[string]any{"comment": "test headline"}
	if err := WriteSnapshot(path, snap, "prX_headline", headline); err != nil {
		t.Fatal(err)
	}
	got, err := LoadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Snapshot != "BENCH_X" || len(got.Benchmarks) != 3 {
		t.Fatalf("round trip lost data: %+v", got)
	}
	raw, _ := os.ReadFile(path)
	if !strings.Contains(string(raw), "prX_headline") {
		t.Error("headline block not embedded")
	}
}

func TestLoadCommittedTrajectory(t *testing.T) {
	// The committed snapshots (with their prN_headline blocks) must
	// stay loadable — they are the -baseline inputs.
	for _, name := range []string{"../../BENCH_1.json", "../../BENCH_2.json"} {
		if _, err := os.Stat(name); err != nil {
			t.Skipf("%s not present", name)
		}
		s, err := LoadSnapshot(name)
		if err != nil {
			t.Fatal(err)
		}
		if len(s.Benchmarks) == 0 {
			t.Fatalf("%s: no benchmarks decoded", name)
		}
		for _, b := range s.Benchmarks {
			if b.Name == "" || len(b.Metrics) == 0 {
				t.Fatalf("%s: malformed benchmark %+v", name, b)
			}
		}
	}
}

func TestDiff(t *testing.T) {
	old := []Benchmark{
		{Name: "A", Metrics: map[string]float64{"ns/op": 100}},
		{Name: "B", Metrics: map[string]float64{"ns/op": 200}},
		{Name: "Gone", Metrics: map[string]float64{"ns/op": 5}},
	}
	cur := []Benchmark{
		{Name: "A", Metrics: map[string]float64{"ns/op": 150}}, // +50%
		{Name: "B", Metrics: map[string]float64{"ns/op": 180}}, // -10%
		{Name: "New", Metrics: map[string]float64{"ns/op": 7}},
	}
	rows := Diff(old, cur)
	if len(rows) != 2 {
		t.Fatalf("want 2 matched rows, got %+v", rows)
	}
	if rows[0].Name != "A" || rows[0].DeltaPc != 50 {
		t.Errorf("worst regression not first: %+v", rows[0])
	}
	if rows[1].Name != "B" || rows[1].DeltaPc != -10 {
		t.Errorf("improvement wrong: %+v", rows[1])
	}
}
