// Package cliutil holds the flag-parsing and report-writing helpers the
// cmd/ sweep tools share: geometry flags, comma-separated float axes,
// policy/arbitration selection, and the aligned-table / CSV / JSON
// writers. Each command keeps its own column list (a table is a
// statement about what matters for that sweep) but renders it through
// one implementation, so output conventions — header alignment, CSV
// field naming, JSON indentation — stay identical across tools.
package cliutil

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"sync"

	"edn/internal/core"
	"edn/internal/probe"
	"edn/internal/queuesim"
	"edn/internal/switchfab"
	"edn/internal/xrand"
)

// GeometryFlags registers the four EDN(a,b,c,l) flags with the given
// defaults and returns their destinations.
func GeometryFlags(fs *flag.FlagSet, a, b, c, l int) (pa, pb, pc, pl *int) {
	pa = fs.Int("a", a, "hyperbar inputs")
	pb = fs.Int("b", b, "hyperbar output buckets")
	pc = fs.Int("c", c, "bucket capacity")
	pl = fs.Int("l", l, "hyperbar stages")
	return pa, pb, pc, pl
}

// ParseFloatList parses a comma-separated list of floats, requiring
// every value in [lo, hi] and at least one value. noun names the axis
// in error messages ("load", "fraction").
func ParseFloatList(s string, lo, hi float64, noun string) ([]float64, error) {
	var vals []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad %s %q: %w", noun, part, err)
		}
		if v < lo || v > hi {
			return nil, fmt.Errorf("%s %g out of [%g,%g]", noun, v, lo, hi)
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("no %ss to sweep", noun)
	}
	return vals, nil
}

// ParsePolicy maps a -policy flag value onto the queueing discipline.
func ParsePolicy(name string) (queuesim.Policy, error) {
	switch name {
	case "backpressure":
		return queuesim.Backpressure, nil
	case "drop":
		return queuesim.Drop, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (want backpressure or drop)", name)
	}
}

// ArbiterFactory maps an -arb flag value onto a switch-arbiter factory;
// nil selects the fused priority fast path. The random factory draws
// per-switch streams from one seed source under a mutex, so it is safe
// to call lazily from shard goroutines; with more than one shard the
// stream-to-switch assignment depends on scheduling, making random
// arbitration statistically but not bit-for-bit reproducible.
func ArbiterFactory(name string, seed uint64) (core.ArbiterFactory, error) {
	switch name {
	case "priority":
		return nil, nil
	case "roundrobin":
		return func() switchfab.Arbiter { return &switchfab.RoundRobinArbiter{} }, nil
	case "random":
		var mu sync.Mutex
		rng := xrand.New(seed + 0x9e37)
		return func() switchfab.Arbiter {
			mu.Lock()
			s := rng.Split()
			mu.Unlock()
			return switchfab.RandomArbiter{Perm: s.Perm}
		}, nil
	default:
		return nil, fmt.Errorf("unknown arbitration %q (want priority, roundrobin or random)", name)
	}
}

// Column describes one value column of a sweep report. Name is the CSV
// header field; Head overrides it for the aligned table (tables
// abbreviate, CSV spells out). Format is the table cell verb — its
// leading width also pads the header — and CSVOnly columns carry data
// too detailed for the table.
type Column struct {
	Name    string
	Head    string
	Format  string
	CSVOnly bool
}

func (c Column) head() string {
	if c.Head != "" {
		return c.Head
	}
	return c.Name
}

// width extracts the leading field width of the column's format verb
// ("%10.2f" -> 10) for header alignment.
func (c Column) width() int {
	w := 0
	for _, r := range strings.TrimPrefix(c.Format, "%") {
		if r < '0' || r > '9' {
			break
		}
		w = w*10 + int(r-'0')
	}
	return w
}

// WriteTable renders the non-CSVOnly columns as an aligned table: one
// header line, one line per row. Rows carry one cell per column of
// cols, CSVOnly ones included (they are skipped here and used by
// WriteCSV), so a command builds each row exactly once.
func WriteTable(w io.Writer, cols []Column, rows [][]any) error {
	var sb strings.Builder
	for _, c := range cols {
		if c.CSVOnly {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%*s", c.width(), c.head())
	}
	if _, err := fmt.Fprintln(w, sb.String()); err != nil {
		return err
	}
	for _, row := range rows {
		if len(row) != len(cols) {
			return fmt.Errorf("cliutil: row has %d cells for %d columns", len(row), len(cols))
		}
		sb.Reset()
		for i, c := range cols {
			if c.CSVOnly {
				continue
			}
			if sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, c.Format, row[i])
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders every column: a header of the Names, then %v-encoded
// cells (floats print as %g, integers in decimal).
func WriteCSV(w io.Writer, cols []Column, rows [][]any) error {
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	if _, err := fmt.Fprintln(w, strings.Join(names, ",")); err != nil {
		return err
	}
	cells := make([]string, len(cols))
	for _, row := range rows {
		if len(row) != len(cols) {
			return fmt.Errorf("cliutil: row has %d cells for %d columns", len(row), len(cols))
		}
		for i, v := range row {
			cells[i] = fmt.Sprintf("%v", v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders v with the cmd-wide two-space indentation.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

// ProbeFlagSet holds the shared flight-recorder flags: -trace selects
// the packet sampling stride, -heatmap turns on per-stage heat series,
// and the two shape knobs bound the recorder's memory.
type ProbeFlagSet struct {
	Sample  *int
	Cap     *int
	Heatmap *bool
	Bins    *int
}

// ProbeFlags registers the flight-recorder flags on fs.
func ProbeFlags(fs *flag.FlagSet) *ProbeFlagSet {
	return &ProbeFlagSet{
		Sample:  fs.Int("trace", 0, "sample every ~Nth accepted packet into the flight recorder (0 = off)"),
		Cap:     fs.Int("trace-cap", 256, "flight-recorder trace ring capacity"),
		Heatmap: fs.Bool("heatmap", false, "collect and print per-stage occupancy/blocking heat series"),
		Bins:    fs.Int("heat-bins", 32, "heat series time bins"),
	}
}

// Enabled reports whether any probe output was requested.
func (p *ProbeFlagSet) Enabled() bool { return *p.Sample > 0 || *p.Heatmap }

// Options builds the probe configuration, or nil when no probe output
// was requested — the nil keeps the measurement paths untouched.
func (p *ProbeFlagSet) Options() *probe.Options {
	if !p.Enabled() {
		return nil
	}
	return &probe.Options{SampleEvery: *p.Sample, TraceCap: *p.Cap, Bins: *p.Bins}
}

// heatLevels is the 10-step intensity scale heat rows render with.
const heatLevels = " .:-=+*#%@"

// WriteProbeReport renders a probe report for humans: the trace cohort
// summary with its latency quantiles, the per-stage event counts, and
// (when showHeat) one intensity row per stage per heat metric, each
// bin normalized against the metric's hottest bin.
func WriteProbeReport(w io.Writer, rep *probe.Report, showHeat bool) error {
	if rep == nil {
		_, err := fmt.Fprintln(w, "probe: no report")
		return err
	}
	completed := 0
	maxStage := 0
	for i := range rep.Traces {
		if _, ok := rep.Traces[i].Latency(); ok {
			completed++
		}
		for _, hp := range rep.Traces[i].Hops {
			if hp.Stage > maxStage {
				maxStage = hp.Stage
			}
		}
	}
	if _, err := fmt.Fprintf(w, "probe: sampled=%d traces=%d completed=%d\n", rep.Sampled, len(rep.Traces), completed); err != nil {
		return err
	}
	if h := rep.LatencyHistogram(); h.N() > 0 {
		if _, err := fmt.Fprintf(w, "trace latency: %s\n", h); err != nil {
			return err
		}
	}
	if len(rep.Traces) > 0 {
		counts := rep.EventCounts(maxStage) // counts[event][stage]
		// Only events that actually occurred earn a column.
		var events []probe.Event
		for ev := range counts {
			var total int64
			for _, n := range counts[ev] {
				total += n
			}
			if total > 0 {
				events = append(events, probe.Event(ev))
			}
		}
		var sb strings.Builder
		sb.WriteString("stage")
		for _, ev := range events {
			fmt.Fprintf(&sb, " %8s", ev)
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
		for s := 0; s <= maxStage; s++ {
			sb.Reset()
			fmt.Fprintf(&sb, "%5d", s)
			for _, ev := range events {
				fmt.Fprintf(&sb, " %8d", counts[ev][s])
			}
			if _, err := fmt.Fprintln(w, sb.String()); err != nil {
				return err
			}
		}
	}
	if showHeat && rep.Heat != nil {
		ht := rep.Heat
		for m, name := range ht.Metrics {
			var peak float64
			for s := 0; s < ht.Stages; s++ {
				for b := 0; b < ht.Bins; b++ {
					if ht.Series[m][s].N(b) > 0 && ht.Series[m][s].Mean(b) > peak {
						peak = ht.Series[m][s].Mean(b)
					}
				}
			}
			if _, err := fmt.Fprintf(w, "heat %s (bin=%d cycles, peak=%.3g/cycle):\n", name, ht.BinCycles, peak); err != nil {
				return err
			}
			for s := 0; s < ht.Stages; s++ {
				row := make([]byte, ht.Bins)
				for b := 0; b < ht.Bins; b++ {
					row[b] = ' '
					if ht.Series[m][s].N(b) > 0 && peak > 0 {
						lvl := int(ht.Series[m][s].Mean(b) / peak * float64(len(heatLevels)-1))
						if lvl < 0 {
							lvl = 0
						}
						if lvl >= len(heatLevels) {
							lvl = len(heatLevels) - 1
						}
						row[b] = heatLevels[lvl]
					}
				}
				if _, err := fmt.Fprintf(w, "  s%-2d |%s|\n", s+1, row); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ProfileFlagSet holds the optional pprof flags every sweep command
// shares.
type ProfileFlagSet struct {
	cpu *string
	mem *string
}

// ProfileFlags registers -cpuprofile and -memprofile on fs.
func ProfileFlags(fs *flag.FlagSet) *ProfileFlagSet {
	return &ProfileFlagSet{
		cpu: fs.String("cpuprofile", "", "write a CPU profile to this file"),
		mem: fs.String("memprofile", "", "write a heap profile to this file at exit"),
	}
}

// Start begins CPU profiling when requested and returns a stop
// function that finalizes both requested profiles; call the stop
// exactly once (deferred) after the measured work.
func (p *ProfileFlagSet) Start() (stop func() error, err error) {
	var cpuFile *os.File
	if *p.cpu != "" {
		cpuFile, err = os.Create(*p.cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, err
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return err
			}
		}
		if *p.mem != "" {
			f, err := os.Create(*p.mem)
			if err != nil {
				return err
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				return err
			}
		}
		return nil
	}, nil
}
