// Package cliutil holds the flag-parsing and report-writing helpers the
// cmd/ sweep tools share: geometry flags, comma-separated float axes,
// policy/arbitration selection, and the aligned-table / CSV / JSON
// writers. Each command keeps its own column list (a table is a
// statement about what matters for that sweep) but renders it through
// one implementation, so output conventions — header alignment, CSV
// field naming, JSON indentation — stay identical across tools.
package cliutil

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"

	"edn/internal/core"
	"edn/internal/queuesim"
	"edn/internal/switchfab"
	"edn/internal/xrand"
)

// GeometryFlags registers the four EDN(a,b,c,l) flags with the given
// defaults and returns their destinations.
func GeometryFlags(fs *flag.FlagSet, a, b, c, l int) (pa, pb, pc, pl *int) {
	pa = fs.Int("a", a, "hyperbar inputs")
	pb = fs.Int("b", b, "hyperbar output buckets")
	pc = fs.Int("c", c, "bucket capacity")
	pl = fs.Int("l", l, "hyperbar stages")
	return pa, pb, pc, pl
}

// ParseFloatList parses a comma-separated list of floats, requiring
// every value in [lo, hi] and at least one value. noun names the axis
// in error messages ("load", "fraction").
func ParseFloatList(s string, lo, hi float64, noun string) ([]float64, error) {
	var vals []float64
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.ParseFloat(part, 64)
		if err != nil {
			return nil, fmt.Errorf("bad %s %q: %w", noun, part, err)
		}
		if v < lo || v > hi {
			return nil, fmt.Errorf("%s %g out of [%g,%g]", noun, v, lo, hi)
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		return nil, fmt.Errorf("no %ss to sweep", noun)
	}
	return vals, nil
}

// ParsePolicy maps a -policy flag value onto the queueing discipline.
func ParsePolicy(name string) (queuesim.Policy, error) {
	switch name {
	case "backpressure":
		return queuesim.Backpressure, nil
	case "drop":
		return queuesim.Drop, nil
	default:
		return 0, fmt.Errorf("unknown policy %q (want backpressure or drop)", name)
	}
}

// ArbiterFactory maps an -arb flag value onto a switch-arbiter factory;
// nil selects the fused priority fast path. The random factory draws
// per-switch streams from one seed source under a mutex, so it is safe
// to call lazily from shard goroutines; with more than one shard the
// stream-to-switch assignment depends on scheduling, making random
// arbitration statistically but not bit-for-bit reproducible.
func ArbiterFactory(name string, seed uint64) (core.ArbiterFactory, error) {
	switch name {
	case "priority":
		return nil, nil
	case "roundrobin":
		return func() switchfab.Arbiter { return &switchfab.RoundRobinArbiter{} }, nil
	case "random":
		var mu sync.Mutex
		rng := xrand.New(seed + 0x9e37)
		return func() switchfab.Arbiter {
			mu.Lock()
			s := rng.Split()
			mu.Unlock()
			return switchfab.RandomArbiter{Perm: s.Perm}
		}, nil
	default:
		return nil, fmt.Errorf("unknown arbitration %q (want priority, roundrobin or random)", name)
	}
}

// Column describes one value column of a sweep report. Name is the CSV
// header field; Head overrides it for the aligned table (tables
// abbreviate, CSV spells out). Format is the table cell verb — its
// leading width also pads the header — and CSVOnly columns carry data
// too detailed for the table.
type Column struct {
	Name    string
	Head    string
	Format  string
	CSVOnly bool
}

func (c Column) head() string {
	if c.Head != "" {
		return c.Head
	}
	return c.Name
}

// width extracts the leading field width of the column's format verb
// ("%10.2f" -> 10) for header alignment.
func (c Column) width() int {
	w := 0
	for _, r := range strings.TrimPrefix(c.Format, "%") {
		if r < '0' || r > '9' {
			break
		}
		w = w*10 + int(r-'0')
	}
	return w
}

// WriteTable renders the non-CSVOnly columns as an aligned table: one
// header line, one line per row. Rows carry one cell per column of
// cols, CSVOnly ones included (they are skipped here and used by
// WriteCSV), so a command builds each row exactly once.
func WriteTable(w io.Writer, cols []Column, rows [][]any) error {
	var sb strings.Builder
	for _, c := range cols {
		if c.CSVOnly {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%*s", c.width(), c.head())
	}
	if _, err := fmt.Fprintln(w, sb.String()); err != nil {
		return err
	}
	for _, row := range rows {
		if len(row) != len(cols) {
			return fmt.Errorf("cliutil: row has %d cells for %d columns", len(row), len(cols))
		}
		sb.Reset()
		for i, c := range cols {
			if c.CSVOnly {
				continue
			}
			if sb.Len() > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, c.Format, row[i])
		}
		if _, err := fmt.Fprintln(w, sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV renders every column: a header of the Names, then %v-encoded
// cells (floats print as %g, integers in decimal).
func WriteCSV(w io.Writer, cols []Column, rows [][]any) error {
	names := make([]string, len(cols))
	for i, c := range cols {
		names[i] = c.Name
	}
	if _, err := fmt.Fprintln(w, strings.Join(names, ",")); err != nil {
		return err
	}
	cells := make([]string, len(cols))
	for _, row := range rows {
		if len(row) != len(cols) {
			return fmt.Errorf("cliutil: row has %d cells for %d columns", len(row), len(cols))
		}
		for i, v := range row {
			cells[i] = fmt.Sprintf("%v", v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(cells, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders v with the cmd-wide two-space indentation.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
