package cliutil

import (
	"flag"
	"io"
	"strings"
	"testing"

	"edn/internal/queuesim"
	"edn/internal/topology"
)

func TestParseFloatList(t *testing.T) {
	got, err := ParseFloatList(" 0.1, 0.5 ,1.0", 0, 1, "load")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 0.1 || got[2] != 1 {
		t.Errorf("parsed %v", got)
	}
	for _, bad := range []string{"", "nope", "1.5", "-0.1"} {
		if _, err := ParseFloatList(bad, 0, 1, "load"); err == nil {
			t.Errorf("%q parsed without error", bad)
		}
	}
}

func TestParsePolicy(t *testing.T) {
	if p, err := ParsePolicy("drop"); err != nil || p != queuesim.Drop {
		t.Errorf("drop -> %v, %v", p, err)
	}
	if p, err := ParsePolicy("backpressure"); err != nil || p != queuesim.Backpressure {
		t.Errorf("backpressure -> %v, %v", p, err)
	}
	if _, err := ParsePolicy("teleport"); err == nil {
		t.Error("bad policy accepted")
	}
}

func TestArbiterFactory(t *testing.T) {
	if f, err := ArbiterFactory("priority", 1); err != nil || f != nil {
		t.Errorf("priority should be the nil fast path, got %v, %v", f, err)
	}
	for _, name := range []string{"roundrobin", "random"} {
		f, err := ArbiterFactory(name, 1)
		if err != nil || f == nil {
			t.Errorf("%s: %v, %v", name, f, err)
			continue
		}
		if order := f().Order(4); len(order) != 4 {
			t.Errorf("%s arbiter order %v", name, order)
		}
	}
	if _, err := ArbiterFactory("coinflip", 1); err != nil {
		// expected
	} else {
		t.Error("bad arbitration accepted")
	}
}

func TestGeometryFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	a, b, c, l := GeometryFlags(fs, 64, 16, 4, 2)
	if err := fs.Parse([]string{"-a", "8", "-l", "3"}); err != nil {
		t.Fatal(err)
	}
	if *a != 8 || *b != 16 || *c != 4 || *l != 3 {
		t.Errorf("parsed a=%d b=%d c=%d l=%d", *a, *b, *c, *l)
	}
}

func TestWriteTableAndCSV(t *testing.T) {
	cols := []Column{
		{Name: "load", Format: "%8.3f"},
		{Name: "throughput", Head: "thr/cycle", Format: "%10.2f"},
		{Name: "injected", CSVOnly: true},
		{Name: "dropped", Format: "%9d"},
	}
	rows := [][]any{
		{0.5, 12.25, int64(640), int64(3)},
		{1.0, 14.5, int64(1280), int64(71)},
	}
	var tab strings.Builder
	if err := WriteTable(&tab, cols, rows); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(tab.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("table lines: %q", tab.String())
	}
	if lines[0] != "    load  thr/cycle   dropped" {
		t.Errorf("header misaligned: %q", lines[0])
	}
	if strings.Contains(tab.String(), "640") {
		t.Errorf("CSV-only column leaked into the table:\n%s", tab.String())
	}
	if lines[1] != "   0.500      12.25         3" {
		t.Errorf("row misformatted: %q", lines[1])
	}

	var csv strings.Builder
	if err := WriteCSV(&csv, cols, rows); err != nil {
		t.Fatal(err)
	}
	want := "load,throughput,injected,dropped\n0.5,12.25,640,3\n1,14.5,1280,71\n"
	if csv.String() != want {
		t.Errorf("csv:\n%q\nwant:\n%q", csv.String(), want)
	}

	// Mismatched row width is an error, not a panic.
	if err := WriteTable(io.Discard, cols, [][]any{{1.0}}); err == nil {
		t.Error("short row accepted by WriteTable")
	}
	if err := WriteCSV(io.Discard, cols, [][]any{{1.0}}); err == nil {
		t.Error("short row accepted by WriteCSV")
	}
}

func TestWriteJSON(t *testing.T) {
	var sb strings.Builder
	if err := WriteJSON(&sb, map[string]int{"x": 1}); err != nil {
		t.Fatal(err)
	}
	if got := sb.String(); got != "{\n  \"x\": 1\n}\n" {
		t.Errorf("json: %q", got)
	}
}

func TestDilatedHelpers(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	on := DilatedFlag(fs, "test comparison")
	if err := fs.Parse([]string{"-dilated"}); err != nil {
		t.Fatal(err)
	}
	if !*on {
		t.Fatal("-dilated did not set the flag")
	}

	cfg, err := topology.New(4, 4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	dcfg, err := DilatedCounterpart(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dcfg.Ports() != cfg.Inputs() {
		t.Errorf("counterpart %v has %d ports for %d inputs", dcfg, dcfg.Ports(), cfg.Inputs())
	}
	var sb strings.Builder
	DilatedHeader(&sb, cfg, dcfg)
	out := sb.String()
	for _, want := range []string{"dilated counterpart", "ports", "wires vs EDN"} {
		if !strings.Contains(out, want) {
			t.Errorf("header missing %q: %s", want, out)
		}
	}
}
