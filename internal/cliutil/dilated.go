package cliutil

import (
	"flag"
	"fmt"
	"io"

	"edn/internal/dilated"
	"edn/internal/topology"
)

// DilatedFlag registers the shared -dilated comparison flag with the
// wording the sweep commands (edn-latency, edn-faults, edn-lifetime)
// present identically: run the EDN's equal-redundancy dilated delta
// counterpart next to the EDN measurement. what names the comparison
// each command adds ("measured saturation curve", "analytic sub-wire
// model", ...).
func DilatedFlag(fs *flag.FlagSet, what string) *bool {
	return fs.Bool("dilated", false,
		"also evaluate the equal-redundancy dilated delta counterpart ("+what+")")
}

// DilatedCounterpart resolves the dilated delta comparable to cfg —
// same port count, dilation equal to the bucket capacity — wrapping the
// failure in flag-level context so the three CLIs report it uniformly.
func DilatedCounterpart(cfg topology.Config) (dilated.Config, error) {
	dcfg, err := dilated.Counterpart(cfg)
	if err != nil {
		return dilated.Config{}, fmt.Errorf("-dilated: %w", err)
	}
	return dcfg, nil
}

// DilatedHeader writes the standard table-format counterpart line: the
// counterpart's identity, port count and the Section 1 wire-cost ratio
// against the EDN.
func DilatedHeader(w io.Writer, cfg topology.Config, dcfg dilated.Config) {
	fmt.Fprintf(w, "dilated counterpart %v — %d ports, %d wires vs EDN %d (%.1fx)\n",
		dcfg, dcfg.Ports(), dcfg.WireCount(), cfg.WireCount(),
		float64(dcfg.WireCount())/float64(cfg.WireCount()))
}
