package cliutil

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
)

// SpecFlagSet holds the job-spec replay flags every sweep CLI shares:
// -spec runs a saved JobSpec file through the unified dispatcher and
// emits the JobResult as JSON (the daemon-equivalent replay of a
// measurement, whatever its mode), -dump-spec prints the spec the
// other flags would have run — one JSON document per job — and exits
// without measuring anything.
type SpecFlagSet struct {
	Path *string
	Dump *bool
}

// SpecFlags registers the replay flags on fs.
func SpecFlags(fs *flag.FlagSet) *SpecFlagSet {
	return &SpecFlagSet{
		Path: fs.String("spec", "", "run this JobSpec JSON file and emit the JobResult as JSON (ignores the measurement flags)"),
		Dump: fs.Bool("dump-spec", false, "print the JobSpec the flags describe as JSON and exit without running"),
	}
}

// LoadSpec reads the JSON job spec at path into spec (a *edn.JobSpec;
// typed any because cliutil sits under the root package and cannot
// import it). Unknown fields are rejected so a typo in a hand-written
// spec file fails loudly instead of silently measuring the default.
func LoadSpec(path string, spec any) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(spec); err != nil {
		return fmt.Errorf("spec %s: %w", path, err)
	}
	return nil
}
