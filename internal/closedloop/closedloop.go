// Package closedloop layers a request/response workload on top of the
// packet-level engines (internal/queuesim for EDNs, internal/dilatedsim
// for dilated deltas). Everything measured through the open-loop
// harnesses sprays independent packets; the workload the paper's
// networks were built for is closed-loop — a processor issues a memory
// request, waits for the reply to come back through the fabric, retries
// on loss, and moves on only when the round trip completes.
//
// The orchestrator drives two fabric instances of identical geometry: a
// forward fabric carrying requests from the Inputs sources to the
// Outputs memory ports, and a return fabric carrying replies back. When
// the geometry is non-square (an EDN has b*c/a > 1 fan-out), memory
// ports share return-fabric inputs through an r = Outputs/Inputs
// concentrator: port m replies through return input m/r, and source i
// receives replies at its home output i*r. A square fabric degenerates
// to the identity on both sides.
//
// Each source holds a window of W outstanding request slots. A demand
// that arrives while the backlog ring is full is shed at the source;
// otherwise it waits in the backlog until a slot and the forward input
// are both free. Losses — packets dropped by policy, parked behind
// faults, or simply late — are detected by a per-attempt timeout and
// re-issued under a configurable retry policy (immediate, capped
// exponential backoff with deterministic xrand jitter, give-up-after-N
// attempts). Destination draws consult an avoidance list fed by
// fault-mask reachability (SetLiveOutputs), so sources stop addressing
// memory ports the current fault state has cut off.
//
// Timeouts are attempt-scoped: a request that was written off but whose
// packet later arrives anyway is counted (Orphans at the memory side,
// StaleReplies at the source side) and discarded, never double-
// completed. The Ledger extends the engines' packet-conservation
// invariant to the request layer; CheckConservation asserts both layers
// after any cycle.
//
// The steady-state advance is allocation-free: slots are a fixed pool
// linked through intrusive lists, backlogs are preallocated rings, and
// the engine delivery hooks are installed once at construction.
// BenchmarkClosedLoopCycle pins 0 allocs/op over both engines.
package closedloop

import (
	"fmt"

	"edn/internal/anatomy"
	"edn/internal/probe"
	"edn/internal/queuesim"
	"edn/internal/ringbuf"
	"edn/internal/stats"
	"edn/internal/xrand"
)

// NoRequest marks an idle input in an injection vector.
const NoRequest = queuesim.NoRequest

// Engine is the slice of the packet-engine surface the orchestrator
// drives. Both queuesim.Network and dilatedsim.Network satisfy it; the
// loop code is written once against this seam, exactly as the simulate
// harnesses are written against their packetEngine seam.
type Engine interface {
	Cycle(dest []int) (queuesim.CycleStats, error)
	InputFree(i int) bool
	Queued() int64
	Totals() queuesim.Totals
	Now() int64
	SetDeliveryHook(func(dest int, inject int64))
}

// RetryPolicy selects how a timed-out request is rescheduled.
type RetryPolicy int

const (
	// RetryImmediate re-issues a timed-out request as soon as a forward
	// input slot is free, with no waiting period.
	RetryImmediate RetryPolicy = iota
	// RetryBackoff waits a capped exponential delay before re-issuing:
	// attempt k (1-based) waits min(BackoffCap, BackoffBase<<(k-1))
	// cycles, jittered deterministically to a uniform draw in
	// [ceil(d/2), d] from the loop's own xrand stream.
	RetryBackoff
)

// String renders the policy for reports.
func (p RetryPolicy) String() string {
	switch p {
	case RetryImmediate:
		return "immediate"
	case RetryBackoff:
		return "backoff"
	default:
		return fmt.Sprintf("retry(%d)", int(p))
	}
}

// ParseRetryPolicy is the inverse of RetryPolicy.String, for flags.
func ParseRetryPolicy(s string) (RetryPolicy, error) {
	switch s {
	case "immediate", "imm":
		return RetryImmediate, nil
	case "backoff", "exp":
		return RetryBackoff, nil
	default:
		return 0, fmt.Errorf("closedloop: unknown retry policy %q (want immediate or backoff)", s)
	}
}

// SLA is a response-deadline curve: a completion within Deadline cycles
// earns full credit 1, credit decays linearly to 0 at Zero cycles, and
// anything slower earns nothing. Zero <= Deadline degenerates to a step
// at Deadline. A zero-valued SLA (Deadline <= 0) disables weighting:
// every completion earns 1, so SLA-weighted goodput equals goodput.
type SLA struct {
	Deadline float64
	Zero     float64
}

// Weight returns the credit earned by a completion with the given
// end-to-end latency.
func (s SLA) Weight(lat float64) float64 {
	if s.Deadline <= 0 || lat <= s.Deadline {
		return 1
	}
	if s.Zero <= s.Deadline || lat >= s.Zero {
		return 0
	}
	return (s.Zero - lat) / (s.Zero - s.Deadline)
}

// Options configures a closed-loop workload.
type Options struct {
	// Window is the per-source outstanding-request limit W (default 4).
	Window int
	// Rate is the per-source demand probability per cycle in [0, 1].
	Rate float64
	// ServiceCycles is the memory service time between a request's
	// arrival and its reply becoming ready (default 1, minimum 1).
	ServiceCycles int
	// Timeout is the per-attempt round-trip deadline in cycles; an
	// attempt not completed Timeout cycles after issue is written off
	// and rescheduled (default 64).
	Timeout int
	// MaxAttempts caps the issue count per request; a request timing out
	// on its MaxAttempts-th attempt is given up. 0 retries forever.
	MaxAttempts int
	// Retry selects the rescheduling policy (default RetryImmediate).
	Retry RetryPolicy
	// BackoffBase and BackoffCap shape RetryBackoff (defaults 2 and 64).
	BackoffBase int
	BackoffCap  int
	// MaxBacklog bounds the per-source demand queue; arrivals beyond it
	// are shed (default 64).
	MaxBacklog int
	// SLA is the response-deadline curve for weighted goodput (zero
	// value: unweighted).
	SLA SLA
	// Seed derives the three deterministic streams: demand coins,
	// destination draws, and backoff jitter (default 1). Two loops with
	// the same seed, source count and rate draw bit-identical demand
	// coins regardless of fabric, which is what makes EDN-vs-dilated
	// comparisons replay-matched at the request level.
	Seed uint64
	// LatencyBuckets and LatencyBucketWidth shape the end-to-end latency
	// histogram (defaults: 4096 buckets of 1 cycle).
	LatencyBuckets     int
	LatencyBucketWidth float64
}

func (o Options) withDefaults() Options {
	if o.Window <= 0 {
		o.Window = 4
	}
	if o.ServiceCycles <= 0 {
		o.ServiceCycles = 1
	}
	if o.Timeout <= 0 {
		o.Timeout = 64
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 2
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = 64
	}
	if o.MaxBacklog <= 0 {
		o.MaxBacklog = 64
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.LatencyBuckets <= 0 {
		o.LatencyBuckets = 4096
	}
	if o.LatencyBucketWidth <= 0 {
		o.LatencyBucketWidth = 1
	}
	return o
}

// Ledger is the request-level conservation ledger. The cumulative
// counters never reset; Backlogged, InFlight and RetryWaiting are
// instantaneous gauges. Two balances hold after every cycle:
//
//	Offered == Shed + Backlogged + Issued
//	Issued  == Completed + GivenUp + InFlight + RetryWaiting
//
// RetryWaiting is the "Retrying + TimedOut-pending" population: every
// request whose latest attempt was written off and which now waits for
// its retry delay (or the forward input) before re-issuing. A third
// balance ties the layers together — every issue or retry injects
// exactly one forward packet, so ForwardInjected == Issued + Retries.
// CheckConservation asserts all of these plus both engines' own packet
// ledgers.
type Ledger struct {
	Offered   int64 // demands generated at the sources
	Shed      int64 // demands dropped because the backlog ring was full
	Issued    int64 // requests that entered the window (first attempts)
	Completed int64 // round trips finished (reply delivered in time)
	GivenUp   int64 // requests abandoned after MaxAttempts timeouts
	Timeouts  int64 // attempts written off at their deadline
	Retries   int64 // re-issues after a timeout
	Orphans   int64 // written-off requests arriving late at the memory
	Stale     int64 // written-off replies arriving late at the source
	Avoided   int64 // destination draws steered by the avoidance list

	Backlogged   int64 // gauge: demands waiting in source backlogs
	InFlight     int64 // gauge: requests with a live attempt in either fabric or in service
	RetryWaiting int64 // gauge: timed-out requests waiting to re-issue
}

// CycleStats reports one closed-loop cycle.
type CycleStats struct {
	Arrived   int // demands accepted into backlogs
	Shed      int // demands shed at full backlogs
	Issued    int // first attempts injected
	Retried   int // retry attempts injected
	Completed int // round trips finished
	TimedOut  int // attempts written off
	GivenUp   int // requests abandoned
}

// slot states.
const (
	slotFree    uint8 = iota
	slotFwd           // request packet in the forward fabric
	slotService       // at the memory port (serving, or waiting for the return input)
	slotReply         // reply packet in the return fabric
	slotRetry         // timed out, waiting to re-issue
)

// slot is one pooled in-flight request record. Slots live in a fixed
// array (W per source) and thread through the per-key intrusive lists
// below, so the steady state never allocates.
type slot struct {
	state     uint8
	attempts  int32
	src       int32 // owning source
	dest      int32 // memory port
	createdAt int64 // demand arrival cycle (latency epoch)
	issuedAt  int64 // forward injection cycle of the current attempt
	firstAt   int64 // forward injection cycle of the first attempt
	deadline  int64 // issuedAt + Timeout
	readyAt   int64 // service completion cycle (slotService)
	replyAt   int64 // return injection cycle (slotReply)
	nextRetry int64 // earliest re-issue cycle (slotRetry)
	prev      int32
	next      int32
	trace     int32 // probe trace record handle, -1 = untraced
}

// Loop orchestrates one closed-loop workload over a forward and a
// return fabric. Build one with New, advance it with Cycle, and read
// the Ledger, latency histogram and SLA credit at any cycle boundary.
// Not safe for concurrent use; sharded harnesses build one per shard.
type Loop struct {
	fwd, rev Engine
	inputs   int // sources = fabric inputs
	outputs  int // memory ports = fabric outputs
	ratio    int // outputs / inputs (concentration factor)
	opts     Options

	slots            []slot
	fwdHead, fwdTail []int32 // [memory port] slotFwd requests keyed by destination
	svcHead, svcTail []int32 // [return input] slotService requests keyed by port group
	repHead, repTail []int32 // [source] slotReply requests keyed by owner
	backlog          []ringbuf.Ring
	destFwd, destRev []int

	demandRng  *xrand.Rand
	destRng    *xrand.Rand
	backoffRng *xrand.Rand

	liveOut   []bool
	liveList  []int32
	liveCount int

	now    int64
	led    Ledger
	lat    *stats.Histogram
	slaSum float64
	cycle  CycleStats

	// probe, when set, flight-records sampled requests (Hop.Stage is the
	// attempt number) and per-cycle ledger gauges; see SetProbe.
	probe *probe.Probe

	// anat, when set, receives every completed request's five-way time
	// split (client-queue / retry-wait / forward-fabric / service /
	// reply-fabric); see SetAnatomy.
	anat *anatomy.Collector
}

// New builds a closed-loop workload over the given fabrics. fwd and rev
// must be two fresh engine instances (cycle 0) of identical geometry —
// inputs injection ports and outputs delivery ports each; outputs must
// be a multiple of inputs (1x for square fabrics, the EDN fan-out
// otherwise). New installs the delivery hooks on both engines.
func New(fwd, rev Engine, inputs, outputs int, opts Options) (*Loop, error) {
	opts = opts.withDefaults()
	switch {
	case inputs < 1:
		return nil, fmt.Errorf("closedloop: %d sources invalid", inputs)
	case outputs < inputs || outputs%inputs != 0:
		return nil, fmt.Errorf("closedloop: %d memory ports not a multiple of %d sources", outputs, inputs)
	case opts.Rate < 0 || opts.Rate > 1:
		return nil, fmt.Errorf("closedloop: demand rate %g outside [0,1]", opts.Rate)
	case opts.MaxAttempts < 0:
		return nil, fmt.Errorf("closedloop: MaxAttempts %d negative", opts.MaxAttempts)
	case opts.BackoffCap < opts.BackoffBase:
		return nil, fmt.Errorf("closedloop: backoff cap %d below base %d", opts.BackoffCap, opts.BackoffBase)
	case fwd.Now() != 0 || rev.Now() != 0:
		return nil, fmt.Errorf("closedloop: fabrics must be fresh (forward at cycle %d, return at %d)", fwd.Now(), rev.Now())
	}
	switch opts.Retry {
	case RetryImmediate, RetryBackoff:
	default:
		return nil, fmt.Errorf("closedloop: unknown retry policy %d", int(opts.Retry))
	}
	l := &Loop{
		fwd:     fwd,
		rev:     rev,
		inputs:  inputs,
		outputs: outputs,
		ratio:   outputs / inputs,
		opts:    opts,
		slots:   make([]slot, inputs*opts.Window),
		fwdHead: newLinks(outputs), fwdTail: newLinks(outputs),
		svcHead: newLinks(inputs), svcTail: newLinks(inputs),
		repHead: newLinks(inputs), repTail: newLinks(inputs),
		backlog:  make([]ringbuf.Ring, inputs),
		destFwd:  make([]int, inputs),
		destRev:  make([]int, inputs),
		liveOut:  make([]bool, outputs),
		liveList: make([]int32, outputs),
		lat:      stats.NewHistogram(opts.LatencyBuckets, opts.LatencyBucketWidth),
	}
	root := xrand.New(opts.Seed)
	l.demandRng = root.Split()
	l.destRng = root.Split()
	l.backoffRng = root.Split()
	for i := range l.slots {
		l.slots[i].prev, l.slots[i].next, l.slots[i].trace = -1, -1, -1
	}
	// Power-of-two backlog backing at least MaxBacklog deep, so the
	// bounded Push never grows.
	slotCap := 1
	for slotCap < opts.MaxBacklog {
		slotCap <<= 1
	}
	backing := make([]uint64, inputs*slotCap)
	for i := range l.backlog {
		l.backlog[i].Buf = backing[i*slotCap : (i+1)*slotCap]
	}
	if err := l.SetLiveOutputs(nil); err != nil {
		return nil, err
	}
	fwd.SetDeliveryHook(l.onRequestDelivered)
	rev.SetDeliveryHook(l.onReplyDelivered)
	return l, nil
}

func newLinks(n int) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = -1
	}
	return s
}

// Inputs returns the source count.
func (l *Loop) Inputs() int { return l.inputs }

// Outputs returns the memory-port count.
func (l *Loop) Outputs() int { return l.outputs }

// Now returns the number of cycles advanced.
func (l *Loop) Now() int64 { return l.now }

// Ledger returns a snapshot of the request ledger.
func (l *Loop) Ledger() Ledger { return l.led }

// Latency returns the live end-to-end latency histogram, measured in
// cycles from demand arrival at the source to reply delivery — backlog
// wait, every attempt, service and the return transit included.
func (l *Loop) Latency() *stats.Histogram { return l.lat }

// ResetLatency starts a fresh latency measurement window.
func (l *Loop) ResetLatency() { l.lat.Reset() }

// SLACredit returns the cumulative response-deadline credit earned by
// completions: each completed round trip adds Options.SLA.Weight of its
// end-to-end latency. With the zero SLA this equals Ledger().Completed.
func (l *Loop) SLACredit() float64 { return l.slaSum }

// ProbeMetrics names the per-cycle heat gauges this layer reports, in
// the AddStage index order of the pm* constants. The closed-loop probe
// has a single "stage": its metrics are ledger gauges, not per-network-
// stage counters (attach probes to the fabrics for those).
var ProbeMetrics = []string{"backlogged", "in_flight", "retry_waiting", "timeouts"}

const (
	pmBacklogged = iota
	pmInFlight
	pmRetryWaiting
	pmTimeouts
)

// SetProbe attaches a flight-recorder probe to the request layer (nil
// detaches). Sampled requests record issue/timeout/retry/complete/
// give-up hops with Hop.Stage carrying the attempt number; the
// non-perturbation contract matches the engines' SetProbe. Not safe to
// swap mid-cycle.
func (l *Loop) SetProbe(p *probe.Probe) {
	l.probe = p
	for i := range l.slots {
		l.slots[i].trace = -1
	}
	if p != nil {
		p.Bind(1, ProbeMetrics)
	}
}

// SetAnatomy attaches a latency-anatomy collector to the request layer
// (nil detaches): every completed request reports its five-way time
// split — client-queue, retry-wait, forward-fabric, service (inclusive
// of reply-injection wait at the server), reply-fabric — which sums
// exactly to its completion latency. The fabric-internal per-stage
// breakdown is available by running the same geometry in latency or
// saturation mode. The non-perturbation contract matches SetProbe.
// Not safe to swap mid-cycle.
func (l *Loop) SetAnatomy(a *anatomy.Collector) {
	l.anat = a
	if a != nil {
		a.BindRequests(l.inputs, l.outputs)
	}
}

// SetLiveOutputs installs the avoidance list: live[m] reports whether
// memory port m is currently reachable (typically a fault mask's
// ReachableOutputsInto vector). New destination draws are steered to
// live ports; requests already addressed are left to time out. nil
// restores the fault-free list. If nothing is live the list is ignored
// — draws fall back to the full range and time out naturally.
func (l *Loop) SetLiveOutputs(live []bool) error {
	if live == nil {
		for i := range l.liveOut {
			l.liveOut[i] = true
			l.liveList[i] = int32(i)
		}
		l.liveCount = l.outputs
		return nil
	}
	if len(live) != l.outputs {
		return fmt.Errorf("closedloop: live list has %d ports, want %d", len(live), l.outputs)
	}
	n := 0
	for m, ok := range live {
		l.liveOut[m] = ok
		if ok {
			l.liveList[n] = int32(m)
			n++
		}
	}
	l.liveCount = n
	return nil
}

// drawDest draws a destination memory port for a new demand.
func (l *Loop) drawDest() int {
	if l.liveCount == l.outputs || l.liveCount == 0 {
		return l.destRng.Intn(l.outputs)
	}
	l.led.Avoided++
	return int(l.liveList[l.destRng.Intn(l.liveCount)])
}

// retryDelay returns the wait before re-issuing after the given number
// of completed attempts.
func (l *Loop) retryDelay(attempts int) int64 {
	if l.opts.Retry == RetryImmediate {
		return 0
	}
	d := l.opts.BackoffCap
	if shift := attempts - 1; shift < 31 && l.opts.BackoffBase<<shift < d {
		d = l.opts.BackoffBase << shift
	}
	lo := (d + 1) / 2
	return int64(lo + l.backoffRng.Intn(d-lo+1))
}

// list plumbing: append at tail, unlink anywhere. k is the list key
// (memory port, return input, or source depending on the family).
func (l *Loop) listAppend(head, tail []int32, k int, s int32) {
	sl := &l.slots[s]
	sl.prev, sl.next = tail[k], -1
	if tail[k] >= 0 {
		l.slots[tail[k]].next = s
	} else {
		head[k] = s
	}
	tail[k] = s
}

func (l *Loop) listRemove(head, tail []int32, k int, s int32) {
	sl := &l.slots[s]
	if sl.prev >= 0 {
		l.slots[sl.prev].next = sl.next
	} else {
		head[k] = sl.next
	}
	if sl.next >= 0 {
		l.slots[sl.next].prev = sl.prev
	} else {
		tail[k] = sl.prev
	}
	sl.prev, sl.next = -1, -1
}

// onRequestDelivered is the forward fabric's delivery hook: a request
// packet for memory port dest, injected at cycle inject (32-bit
// truncated), just retired. Match it to the oldest outstanding attempt
// with that (port, cycle) pair; a miss is a late arrival of a
// written-off attempt.
func (l *Loop) onRequestDelivered(dest int, inject int64) {
	for s := l.fwdHead[dest]; s >= 0; s = l.slots[s].next {
		sl := &l.slots[s]
		if int64(uint32(sl.issuedAt)) == inject {
			l.listRemove(l.fwdHead, l.fwdTail, dest, s)
			sl.state = slotService
			sl.readyAt = l.now + int64(l.opts.ServiceCycles)
			l.listAppend(l.svcHead, l.svcTail, dest/l.ratio, s)
			return
		}
	}
	l.led.Orphans++
}

// onReplyDelivered is the return fabric's delivery hook: a reply for
// home output dest just retired at the owning source. A miss is a stale
// reply whose request was already written off.
func (l *Loop) onReplyDelivered(dest int, inject int64) {
	src := dest / l.ratio
	for s := l.repHead[src]; s >= 0; s = l.slots[s].next {
		sl := &l.slots[s]
		if int64(uint32(sl.replyAt)) == inject {
			l.listRemove(l.repHead, l.repTail, src, s)
			lat := float64(l.now - sl.createdAt)
			l.lat.Add(lat)
			l.slaSum += l.opts.SLA.Weight(lat)
			l.led.Completed++
			l.led.InFlight--
			sl.state = slotFree
			l.cycle.Completed++
			if l.probe != nil {
				l.probe.CloseRec(sl.trace, int(sl.attempts), probe.EvComplete, l.now)
				sl.trace = -1
			}
			if l.anat != nil {
				arrive := sl.readyAt - int64(l.opts.ServiceCycles)
				l.anat.ReqComplete(int(sl.src), int(sl.dest), sl.createdAt,
					sl.firstAt, sl.issuedAt, arrive, sl.replyAt, l.now)
			}
			return
		}
	}
	l.led.Stale++
}

// Cycle advances the workload and both fabrics by one cycle: demand
// arrivals, the timeout scan, forward issue (retries first, then fresh
// requests from the backlog), the forward fabric cycle, reply issue at
// the memory side, and the return fabric cycle. The whole advance is
// allocation-free in steady state.
func (l *Loop) Cycle() (CycleStats, error) {
	l.now++
	l.cycle = CycleStats{}

	// Demand arrivals. One coin per source per cycle from the demand
	// stream, drawn in source order regardless of fabric, keeps two
	// same-seed loops bit-identical in what they offer.
	for i := 0; i < l.inputs; i++ {
		if !l.demandRng.Bool(l.opts.Rate) {
			continue
		}
		l.led.Offered++
		r := &l.backlog[i]
		if !r.HasSpace(l.opts.MaxBacklog) {
			l.led.Shed++
			l.cycle.Shed++
			continue
		}
		r.Push(ringbuf.Pack(l.drawDest(), l.now))
		l.led.Backlogged++
		l.cycle.Arrived++
	}

	// Timeout scan: write off every attempt past its deadline, wherever
	// it is in the round trip.
	for s := range l.slots {
		sl := &l.slots[s]
		if sl.state == slotFree || sl.state == slotRetry || l.now < sl.deadline {
			continue
		}
		switch sl.state {
		case slotFwd:
			l.listRemove(l.fwdHead, l.fwdTail, int(sl.dest), int32(s))
		case slotService:
			l.listRemove(l.svcHead, l.svcTail, int(sl.dest)/l.ratio, int32(s))
		case slotReply:
			l.listRemove(l.repHead, l.repTail, int(sl.src), int32(s))
		}
		l.led.Timeouts++
		l.led.InFlight--
		l.cycle.TimedOut++
		if l.probe != nil {
			l.probe.AddStage(pmTimeouts, 0, 1)
			l.probe.HopRec(sl.trace, int(sl.attempts), probe.EvTimeout, l.now)
		}
		if l.opts.MaxAttempts > 0 && int(sl.attempts) >= l.opts.MaxAttempts {
			sl.state = slotFree
			l.led.GivenUp++
			l.cycle.GivenUp++
			if l.probe != nil {
				l.probe.CloseRec(sl.trace, int(sl.attempts), probe.EvGiveUp, l.now)
				sl.trace = -1
			}
			if l.anat != nil {
				l.anat.ReqGiveUp(int(sl.src), int(sl.dest), sl.createdAt, l.now)
			}
			continue
		}
		sl.state = slotRetry
		sl.nextRetry = l.now + l.retryDelay(int(sl.attempts))
		l.led.RetryWaiting++
	}

	// Forward issue: each source injects at most one request per cycle —
	// the due retry with the earliest deadline first, else the oldest
	// backlogged demand if a window slot is free.
	for i := 0; i < l.inputs; i++ {
		l.destFwd[i] = NoRequest
		base := i * l.opts.Window
		pick, free := -1, -1
		for w := 0; w < l.opts.Window; w++ {
			sl := &l.slots[base+w]
			switch {
			case sl.state == slotRetry && sl.nextRetry <= l.now &&
				(pick < 0 || sl.nextRetry < l.slots[pick].nextRetry):
				pick = base + w
			case sl.state == slotFree && free < 0:
				free = base + w
			}
		}
		if pick < 0 && (free < 0 || l.backlog[i].N == 0) {
			continue
		}
		if !l.fwd.InputFree(i) {
			continue
		}
		var s int32
		if pick >= 0 {
			s = int32(pick)
			l.led.RetryWaiting--
			l.led.Retries++
			l.cycle.Retried++
		} else {
			p := l.backlog[i].Pop()
			l.led.Backlogged--
			s = int32(free)
			sl := &l.slots[s]
			sl.src = int32(i)
			sl.dest = int32(ringbuf.Dest(p))
			sl.createdAt = l.now - int64(uint32(l.now)-uint32(p>>32))
			sl.attempts = 0
			l.led.Issued++
			l.cycle.Issued++
		}
		sl := &l.slots[s]
		sl.state = slotFwd
		sl.attempts++
		sl.issuedAt = l.now // the engine stamps injections with this cycle
		if sl.attempts == 1 {
			sl.firstAt = l.now
		}
		sl.deadline = l.now + int64(l.opts.Timeout)
		l.led.InFlight++
		l.listAppend(l.fwdHead, l.fwdTail, int(sl.dest), s)
		l.destFwd[i] = int(sl.dest)
		if l.probe != nil {
			if pick >= 0 {
				l.probe.HopRec(sl.trace, int(sl.attempts), probe.EvRetry, l.now)
			} else {
				sl.trace = -1
				if rec := l.probe.SampleInject(i, int(sl.dest), l.now); rec >= 0 {
					sl.trace = rec
					l.probe.HopRec(rec, 1, probe.EvIssue, l.now)
				}
			}
		}
	}
	if _, err := l.fwd.Cycle(l.destFwd); err != nil {
		return CycleStats{}, err
	}

	// Reply issue: each return input forwards the head of its service
	// queue once service is complete — head-of-line, modeling the
	// port-group concentrator as a single reply injector.
	for r := 0; r < l.inputs; r++ {
		l.destRev[r] = NoRequest
		h := l.svcHead[r]
		if h < 0 || l.slots[h].readyAt > l.now || !l.rev.InputFree(r) {
			continue
		}
		sl := &l.slots[h]
		l.listRemove(l.svcHead, l.svcTail, r, h)
		sl.state = slotReply
		sl.replyAt = l.now
		l.listAppend(l.repHead, l.repTail, int(sl.src), h)
		l.destRev[r] = int(sl.src) * l.ratio
	}
	if _, err := l.rev.Cycle(l.destRev); err != nil {
		return CycleStats{}, err
	}
	if l.probe != nil {
		l.probe.AddStage(pmBacklogged, 0, float64(l.led.Backlogged))
		l.probe.AddStage(pmInFlight, 0, float64(l.led.InFlight))
		l.probe.AddStage(pmRetryWaiting, 0, float64(l.led.RetryWaiting))
		l.probe.EndCycle()
	}
	return l.cycle, nil
}

// CheckConservation asserts the two request-ledger balances, the
// cross-layer balance (forward injections == issues + retries), the
// gauge recounts against the actual slot and backlog state, and both
// engines' packet-conservation invariants. It is cheap enough to call
// every cycle in property tests and every epoch in lifetime sweeps.
func (l *Loop) CheckConservation() error {
	led := l.led
	if led.Offered != led.Shed+led.Backlogged+led.Issued {
		return fmt.Errorf("closedloop: offered %d != shed %d + backlogged %d + issued %d",
			led.Offered, led.Shed, led.Backlogged, led.Issued)
	}
	if led.Issued != led.Completed+led.GivenUp+led.InFlight+led.RetryWaiting {
		return fmt.Errorf("closedloop: issued %d != completed %d + given up %d + in flight %d + retry-waiting %d",
			led.Issued, led.Completed, led.GivenUp, led.InFlight, led.RetryWaiting)
	}
	var backlogged, inFlight, retryWaiting int64
	for i := range l.backlog {
		backlogged += int64(l.backlog[i].N)
	}
	for s := range l.slots {
		switch l.slots[s].state {
		case slotFwd, slotService, slotReply:
			inFlight++
		case slotRetry:
			retryWaiting++
		}
	}
	if backlogged != led.Backlogged || inFlight != led.InFlight || retryWaiting != led.RetryWaiting {
		return fmt.Errorf("closedloop: gauges (backlogged %d, in flight %d, retry-waiting %d) disagree with state (%d, %d, %d)",
			led.Backlogged, led.InFlight, led.RetryWaiting, backlogged, inFlight, retryWaiting)
	}
	ft := l.fwd.Totals()
	if ft.Injected != led.Issued+led.Retries {
		return fmt.Errorf("closedloop: forward fabric injected %d != issued %d + retries %d",
			ft.Injected, led.Issued, led.Retries)
	}
	if err := checkPacketLedger("forward", ft, l.fwd.Queued()); err != nil {
		return err
	}
	return checkPacketLedger("return", l.rev.Totals(), l.rev.Queued())
}

func checkPacketLedger(which string, t queuesim.Totals, queued int64) error {
	if t.Injected != t.Refused+t.Delivered+t.Dropped+t.Stranded+queued {
		return fmt.Errorf("closedloop: %s fabric ledger broken: injected %d != refused %d + delivered %d + dropped %d + stranded %d + queued %d",
			which, t.Injected, t.Refused, t.Delivered, t.Dropped, t.Stranded, queued)
	}
	return nil
}
