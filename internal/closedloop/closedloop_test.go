package closedloop

import (
	"math"
	"testing"

	"edn/internal/dilated"
	"edn/internal/dilatedsim"
	"edn/internal/queuesim"
	"edn/internal/topology"
)

// newQueuePair builds fresh forward and return EDN fabrics.
func newQueuePair(t testing.TB, cfg topology.Config, qopts queuesim.Options) (*queuesim.Network, *queuesim.Network) {
	t.Helper()
	fwd, err := queuesim.New(cfg, qopts)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := queuesim.New(cfg, qopts)
	if err != nil {
		t.Fatal(err)
	}
	return fwd, rev
}

func newDilatedPair(t testing.TB, dcfg dilated.Config, dopts dilatedsim.Options) (*dilatedsim.Network, *dilatedsim.Network) {
	t.Helper()
	fwd, err := dilatedsim.New(dcfg, dopts)
	if err != nil {
		t.Fatal(err)
	}
	rev, err := dilatedsim.New(dcfg, dopts)
	if err != nil {
		t.Fatal(err)
	}
	return fwd, rev
}

func mustEDN(t testing.TB, a, b, c, l int) topology.Config {
	t.Helper()
	cfg, err := topology.New(a, b, c, l)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func runChecked(t *testing.T, l *Loop, cycles int) {
	t.Helper()
	for c := 0; c < cycles; c++ {
		if _, err := l.Cycle(); err != nil {
			t.Fatalf("cycle %d: %v", c, err)
		}
		if err := l.CheckConservation(); err != nil {
			t.Fatalf("cycle %d: %v", c, err)
		}
	}
}

// A healthy square EDN completes nearly everything it issues, with no
// timeouts at a generous deadline.
func TestRoundTripsComplete(t *testing.T) {
	cfg := mustEDN(t, 4, 2, 2, 2) // 8x8 square
	fwd, rev := newQueuePair(t, cfg, queuesim.Options{Depth: 4})
	loop, err := New(fwd, rev, cfg.Inputs(), cfg.Outputs(), Options{
		Rate: 0.3, Window: 4, Timeout: 128, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	runChecked(t, loop, 3000)
	led := loop.Ledger()
	if led.Offered == 0 || led.Issued == 0 {
		t.Fatalf("no traffic: %+v", led)
	}
	if led.Timeouts != 0 {
		t.Fatalf("healthy fabric timed out %d attempts: %+v", led.Timeouts, led)
	}
	if led.Completed < led.Issued-led.InFlight {
		t.Fatalf("completions leaked: %+v", led)
	}
	// End-to-end latency floor: forward transit (stages cycles) plus one
	// service cycle plus return transit.
	if min := loop.Latency().Min(); min < float64(2*cfg.Stages()) {
		t.Fatalf("latency min %.0f below the physical floor %d", min, 2*cfg.Stages())
	}
	// The zero SLA credits every completion with 1.
	if got, want := loop.SLACredit(), float64(led.Completed); got != want {
		t.Fatalf("zero-SLA credit %.1f != completed %.1f", got, want)
	}
}

// A non-square EDN (fan-out 4) concentrates replies without losing any.
func TestNonSquareGeometry(t *testing.T) {
	cfg := mustEDN(t, 4, 4, 2, 2) // 8 inputs, 32 outputs
	fwd, rev := newQueuePair(t, cfg, queuesim.Options{Depth: 4})
	loop, err := New(fwd, rev, cfg.Inputs(), cfg.Outputs(), Options{
		Rate: 0.4, Timeout: 128, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if loop.ratio != 4 {
		t.Fatalf("ratio %d, want 4", loop.ratio)
	}
	runChecked(t, loop, 3000)
	led := loop.Ledger()
	if led.Completed == 0 {
		t.Fatalf("nothing completed: %+v", led)
	}
	if led.Timeouts != 0 || led.Orphans != 0 || led.Stale != 0 {
		t.Fatalf("healthy run lost attempts: %+v", led)
	}
}

// The dilated engine drives the same orchestrator.
func TestDilatedEngine(t *testing.T) {
	dcfg, err := dilated.New(2, 2, 3) // 8 ports, 2-dilated
	if err != nil {
		t.Fatal(err)
	}
	fwd, rev := newDilatedPair(t, dcfg, dilatedsim.Options{Depth: 4})
	loop, err := New(fwd, rev, dcfg.Ports(), dcfg.Ports(), Options{
		Rate: 0.3, Timeout: 128, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	runChecked(t, loop, 3000)
	if led := loop.Ledger(); led.Completed == 0 || led.Timeouts != 0 {
		t.Fatalf("dilated run: %+v", led)
	}
}

// Two loops with the same seed, source count and rate offer bit-equal
// demand, regardless of which fabric they drive — the replay-matching
// contract of EDN vs dilated comparisons.
func TestOfferedBitEqualAcrossEngines(t *testing.T) {
	cfg := mustEDN(t, 4, 2, 2, 2) // 8x8
	dcfg, err := dilated.New(2, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	qf, qr := newQueuePair(t, cfg, queuesim.Options{Depth: 2})
	df, dr := newDilatedPair(t, dcfg, dilatedsim.Options{Depth: 2})
	opts := Options{Rate: 0.45, Timeout: 64, Seed: 99}
	ql, err := New(qf, qr, cfg.Inputs(), cfg.Outputs(), opts)
	if err != nil {
		t.Fatal(err)
	}
	dl, err := New(df, dr, dcfg.Ports(), dcfg.Ports(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 2000; c++ {
		if _, err := ql.Cycle(); err != nil {
			t.Fatal(err)
		}
		if _, err := dl.Cycle(); err != nil {
			t.Fatal(err)
		}
		if qo, do := ql.Ledger().Offered, dl.Ledger().Offered; qo != do {
			t.Fatalf("cycle %d: offered diverged, EDN %d vs dilated %d", c, qo, do)
		}
	}
	if ql.Ledger().Offered == 0 {
		t.Fatal("no demand offered")
	}
}

// An impossible deadline times every attempt out; MaxAttempts turns the
// timeouts into give-ups, and the late deliveries surface as orphans
// and stale replies, never as completions.
func TestTimeoutGiveUpAndOrphans(t *testing.T) {
	cfg := mustEDN(t, 4, 2, 2, 2)
	fwd, rev := newQueuePair(t, cfg, queuesim.Options{Depth: 4})
	loop, err := New(fwd, rev, cfg.Inputs(), cfg.Outputs(), Options{
		Rate: 0.2, Timeout: 1, MaxAttempts: 3, MaxBacklog: 4, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	runChecked(t, loop, 2000)
	led := loop.Ledger()
	if led.Completed != 0 {
		t.Fatalf("timeout 1 cannot complete a >= 4-cycle round trip: %+v", led)
	}
	if led.GivenUp == 0 || led.Timeouts == 0 || led.Retries == 0 {
		t.Fatalf("expected give-ups after retries: %+v", led)
	}
	if led.Orphans == 0 {
		t.Fatalf("late deliveries should be orphans: %+v", led)
	}
	if led.Timeouts != led.Retries+led.GivenUp+led.RetryWaiting {
		t.Fatalf("every timeout retries, gives up, or still waits: %+v", led)
	}
}

// Backoff spreads retries out: with the same demand, the backoff loop
// issues no more retries than the immediate loop, and both replay
// bit-for-bit under the same seed.
func TestRetryPolicies(t *testing.T) {
	cfg := mustEDN(t, 4, 2, 2, 2)
	run := func(policy RetryPolicy) Ledger {
		fwd, rev := newQueuePair(t, cfg, queuesim.Options{Depth: 4})
		loop, err := New(fwd, rev, cfg.Inputs(), cfg.Outputs(), Options{
			Rate: 0.2, Timeout: 2, MaxAttempts: 6, Retry: policy,
			BackoffBase: 4, BackoffCap: 32, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		runChecked(t, loop, 1500)
		return loop.Ledger()
	}
	imm, back := run(RetryImmediate), run(RetryBackoff)
	if imm != run(RetryImmediate) {
		t.Fatal("immediate policy not deterministic under a fixed seed")
	}
	if back != run(RetryBackoff) {
		t.Fatal("backoff policy not deterministic under a fixed seed")
	}
	if back.Retries > imm.Retries {
		t.Fatalf("backoff retried more (%d) than immediate (%d)", back.Retries, imm.Retries)
	}
	if back.Retries == 0 {
		t.Fatalf("backoff never retried: %+v", back)
	}
}

// The avoidance list steers new draws to live outputs only.
func TestAvoidanceList(t *testing.T) {
	cfg := mustEDN(t, 4, 2, 2, 2)
	fwd, rev := newQueuePair(t, cfg, queuesim.Options{Depth: 4})
	loop, err := New(fwd, rev, cfg.Inputs(), cfg.Outputs(), Options{Rate: 1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	live := make([]bool, cfg.Outputs())
	for m := range live {
		live[m] = m%2 == 0
	}
	if err := loop.SetLiveOutputs(live); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if d := loop.drawDest(); d%2 != 0 {
			t.Fatalf("draw %d hit avoided output %d", i, d)
		}
	}
	if loop.Ledger().Avoided != 1000 {
		t.Fatalf("avoided draws %d, want 1000", loop.Ledger().Avoided)
	}
	// An all-dead list falls back to the full range rather than stalling.
	if err := loop.SetLiveOutputs(make([]bool, cfg.Outputs())); err != nil {
		t.Fatal(err)
	}
	odd := false
	for i := 0; i < 200 && !odd; i++ {
		odd = loop.drawDest()%2 == 1
	}
	if !odd {
		t.Fatal("all-dead avoidance list should fall back to the full range")
	}
	if err := loop.SetLiveOutputs(nil); err != nil {
		t.Fatal(err)
	}
	if loop.liveCount != cfg.Outputs() {
		t.Fatalf("nil list should restore all %d outputs, got %d", cfg.Outputs(), loop.liveCount)
	}
}

// Per-source occupancy never exceeds the window.
func TestWindowCap(t *testing.T) {
	cfg := mustEDN(t, 4, 2, 2, 2)
	fwd, rev := newQueuePair(t, cfg, queuesim.Options{Depth: 1})
	const w = 2
	loop, err := New(fwd, rev, cfg.Inputs(), cfg.Outputs(), Options{
		Rate: 1, Window: w, Timeout: 4, MaxAttempts: 2, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 1000; c++ {
		if _, err := loop.Cycle(); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < loop.inputs; i++ {
			busy := 0
			for k := 0; k < w; k++ {
				if loop.slots[i*w+k].state != slotFree {
					busy++
				}
			}
			if busy > w {
				t.Fatalf("cycle %d: source %d holds %d > %d outstanding", c, i, busy, w)
			}
		}
	}
	if loop.Ledger().Shed == 0 {
		t.Fatal("rate 1 with window 2 should shed at the backlog")
	}
}

func TestSLAWeight(t *testing.T) {
	var zero SLA
	if zero.Weight(1e9) != 1 {
		t.Fatal("zero SLA must credit everything")
	}
	step := SLA{Deadline: 10}
	if step.Weight(10) != 1 || step.Weight(11) != 0 {
		t.Fatal("Zero <= Deadline must behave as a step")
	}
	ramp := SLA{Deadline: 10, Zero: 20}
	if ramp.Weight(5) != 1 || ramp.Weight(25) != 0 {
		t.Fatal("ramp endpoints wrong")
	}
	if got := ramp.Weight(15); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("ramp midpoint %.3f, want 0.5", got)
	}
}

func TestNewRejectsBadConfig(t *testing.T) {
	cfg := mustEDN(t, 4, 2, 2, 2)
	fwd, rev := newQueuePair(t, cfg, queuesim.Options{Depth: 1})
	cases := []struct {
		name    string
		in, out int
		opts    Options
	}{
		{"indivisible", 3, 8, Options{Rate: 0.5}},
		{"rate", cfg.Inputs(), cfg.Outputs(), Options{Rate: 1.5}},
		{"retry", cfg.Inputs(), cfg.Outputs(), Options{Rate: 0.5, Retry: RetryPolicy(9)}},
		{"cap", cfg.Inputs(), cfg.Outputs(), Options{Rate: 0.5, BackoffBase: 8, BackoffCap: 4}},
	}
	for _, c := range cases {
		if _, err := New(fwd, rev, c.in, c.out, c.opts); err == nil {
			t.Errorf("%s: no error", c.name)
		}
	}
	// A used fabric is rejected.
	loop, err := New(fwd, rev, cfg.Inputs(), cfg.Outputs(), Options{Rate: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := loop.Cycle(); err != nil {
		t.Fatal(err)
	}
	if _, err := New(fwd, rev, cfg.Inputs(), cfg.Outputs(), Options{Rate: 0.5}); err == nil {
		t.Fatal("stale fabrics accepted")
	}
}
