package closedloop

import (
	"fmt"
	"testing"

	"edn/internal/dilated"
	"edn/internal/dilatedsim"
	"edn/internal/faults"
	"edn/internal/lifecycle"
	"edn/internal/queuesim"
	"edn/internal/xrand"
)

// The extended conservation invariant — request ledger, gauge recounts,
// cross-layer balance, and both fabrics' packet ledgers — must hold
// after every cycle under every depth/policy/retry/fault combination,
// including mid-epoch fault swaps that strand, park and orphan packets.
func TestConservationEverywhere(t *testing.T) {
	depths := []int{0, 2, queuesim.Unbounded}
	policies := []queuesim.Policy{queuesim.Backpressure, queuesim.Drop}
	retries := []RetryPolicy{RetryImmediate, RetryBackoff}
	for _, depth := range depths {
		for _, policy := range policies {
			for _, retry := range retries {
				for _, churn := range []bool{false, true} {
					name := fmt.Sprintf("depth=%d/%v/%v/churn=%v", depth, policy, retry, churn)
					t.Run("edn/"+name, func(t *testing.T) {
						conservationEDN(t, depth, policy, retry, churn)
					})
					t.Run("dilated/"+name, func(t *testing.T) {
						conservationDilated(t, depth, policy, retry, churn)
					})
				}
			}
		}
	}
}

func loopOptions(retry RetryPolicy) Options {
	return Options{
		Rate: 0.5, Window: 3, Timeout: 12, MaxAttempts: 4,
		Retry: retry, BackoffBase: 2, BackoffCap: 16,
		MaxBacklog: 8, Seed: 23,
	}
}

const (
	consCycles = 600
	epochEvery = 20
)

func conservationEDN(t *testing.T, depth int, policy queuesim.Policy, retry RetryPolicy, churn bool) {
	cfg := mustEDN(t, 4, 2, 2, 2) // 8x8 square
	qopts := queuesim.Options{Depth: depth, Policy: policy}
	fwd, rev := newQueuePair(t, cfg, qopts)
	loop, err := New(fwd, rev, cfg.Inputs(), cfg.Outputs(), loopOptions(retry))
	if err != nil {
		t.Fatal(err)
	}
	var proc *lifecycle.Process
	if churn {
		spec := lifecycle.Spec{Mode: faults.WireFaults, MTBF: 40, MTTR: 10}
		proc, err = lifecycle.New(cfg, spec, xrand.New(41))
		if err != nil {
			t.Fatal(err)
		}
	}
	live := make([]bool, cfg.Outputs())
	for c := 0; c < consCycles; c++ {
		if churn && c%epochEvery == 0 {
			masks, err := faults.Compile(cfg, proc.Step())
			if err != nil {
				t.Fatal(err)
			}
			if err := fwd.UpdateFaults(masks); err != nil {
				t.Fatal(err)
			}
			if err := rev.UpdateFaults(masks); err != nil {
				t.Fatal(err)
			}
			masks.ReachableOutputsInto(live)
			if err := loop.SetLiveOutputs(live); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := loop.Cycle(); err != nil {
			t.Fatalf("cycle %d: %v", c, err)
		}
		if err := loop.CheckConservation(); err != nil {
			t.Fatalf("cycle %d: %v", c, err)
		}
	}
	if loop.Ledger().Issued == 0 {
		t.Fatal("nothing issued; the sweep tested nothing")
	}
	if churn && policy == queuesim.Drop && loop.Ledger().Timeouts == 0 {
		t.Fatal("churn under Drop should force timeouts")
	}
}

func conservationDilated(t *testing.T, depth int, policy queuesim.Policy, retry RetryPolicy, churn bool) {
	dcfg, err := dilated.New(2, 2, 3) // 8 ports, 2-dilated
	if err != nil {
		t.Fatal(err)
	}
	dopts := dilatedsim.Options{Depth: depth, Policy: policy}
	fwd, rev := newDilatedPair(t, dcfg, dopts)
	loop, err := New(fwd, rev, dcfg.Ports(), dcfg.Ports(), loopOptions(retry))
	if err != nil {
		t.Fatal(err)
	}
	var churnProc *dilatedsim.Churn
	if churn {
		churnProc, err = dilatedsim.NewChurn(dcfg, 40, 10, lifecycle.Exponential, xrand.New(43))
		if err != nil {
			t.Fatal(err)
		}
	}
	live := make([]bool, dcfg.Ports())
	for c := 0; c < consCycles; c++ {
		if churn && c%epochEvery == 0 {
			masks, err := dilatedsim.Compile(dcfg, churnProc.Step())
			if err != nil {
				t.Fatal(err)
			}
			if err := fwd.UpdateFaults(masks); err != nil {
				t.Fatal(err)
			}
			if err := rev.UpdateFaults(masks); err != nil {
				t.Fatal(err)
			}
			masks.ReachableOutputsInto(live)
			if err := loop.SetLiveOutputs(live); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := loop.Cycle(); err != nil {
			t.Fatalf("cycle %d: %v", c, err)
		}
		if err := loop.CheckConservation(); err != nil {
			t.Fatalf("cycle %d: %v", c, err)
		}
	}
	if loop.Ledger().Issued == 0 {
		t.Fatal("nothing issued; the sweep tested nothing")
	}
}
