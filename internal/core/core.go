// Package core implements the paper's primary contribution as an
// executable artifact: a cycle-level, circuit-switched Expanded Delta
// Network. It binds the static structure of internal/topology, the
// hyperbar/crossbar behavior of internal/switchfab and the
// digit-retirement routing of internal/routing into a Network that
// arbitrates whole request batches exactly as Section 2 describes.
//
// One RouteCycle call models one network cycle: every request propagates
// stage by stage; a hyperbar bucket accepts at most c requests; losers
// are dropped (circuit switched, no buffering); survivors of the final
// c x c crossbar stage appear on their destination terminals.
package core

import (
	"fmt"

	"edn/internal/switchfab"
	"edn/internal/topology"
)

// NoRequest marks an idle input in a request vector, and "not delivered"
// in an output assignment.
const NoRequest = -1

// ArbiterFactory builds one arbiter per physical switch. Stateful
// arbiters (round robin, random) need per-switch instances; stateless
// ones may return a shared value.
type ArbiterFactory func() switchfab.Arbiter

// PriorityArbiters is the default factory: the paper's input-label
// priority rule.
func PriorityArbiters() switchfab.Arbiter { return switchfab.PriorityArbiter{} }

// Network is an instantiated EDN ready to route request batches. It is
// not safe for concurrent use; build one per goroutine (construction is
// cheap — switch state is lazily allocated).
type Network struct {
	cfg      topology.Config
	factory  ArbiterFactory
	arbiters [][]switchfab.Arbiter // [stage-1][switch]
	workers  int                   // goroutines per stage; <=1 means serial
	// scratch buffers reused across cycles
	lineOwner []int
	digits    []int
}

// NewNetwork builds a network for cfg. A nil factory selects the paper's
// priority arbitration.
func NewNetwork(cfg topology.Config, factory ArbiterFactory) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if factory == nil {
		factory = PriorityArbiters
	}
	n := &Network{cfg: cfg, factory: factory}
	n.arbiters = make([][]switchfab.Arbiter, cfg.Stages())
	for s := 1; s <= cfg.Stages(); s++ {
		n.arbiters[s-1] = make([]switchfab.Arbiter, cfg.SwitchesInStage(s))
	}
	maxW := cfg.Inputs()
	for i := 0; i <= cfg.L+1; i++ {
		if w := cfg.WiresAfterStage(i); w > maxW {
			maxW = w
		}
	}
	n.lineOwner = make([]int, maxW)
	n.digits = make([]int, cfg.A)
	return n, nil
}

// Config returns the network's configuration.
func (n *Network) Config() topology.Config { return n.cfg }

func (n *Network) arbiter(stage, sw int) switchfab.Arbiter {
	if n.arbiters[stage-1][sw] == nil {
		n.arbiters[stage-1][sw] = n.factory()
	}
	return n.arbiters[stage-1][sw]
}

// Outcome reports the fate of one input's request in a cycle.
type Outcome struct {
	// Output is the network output terminal the request reached, or
	// NoRequest if the input was idle or the request was blocked.
	Output int
	// BlockedStage is the 1-based stage at which the request lost
	// arbitration, or 0 if it was idle or delivered.
	BlockedStage int
}

// Delivered reports whether the request reached an output.
func (o Outcome) Delivered() bool { return o.Output != NoRequest }

// CycleStats aggregates one RouteCycle call.
type CycleStats struct {
	Offered   int   // inputs carrying a request
	Delivered int   // requests that reached their destination
	Blocked   []int // Blocked[s-1] = requests dropped at stage s
}

// BlockedTotal returns the total number of dropped requests.
func (cs CycleStats) BlockedTotal() int {
	t := 0
	for _, b := range cs.Blocked {
		t += b
	}
	return t
}

// PA returns the cycle's empirical probability of acceptance
// (delivered/offered), or 1 for an idle cycle.
func (cs CycleStats) PA() float64 {
	if cs.Offered == 0 {
		return 1
	}
	return float64(cs.Delivered) / float64(cs.Offered)
}

// RouteCycle routes one batch of requests: dest[i] is the destination
// terminal requested by input i, or NoRequest. It returns one Outcome per
// input plus aggregate statistics.
//
// Digit retirement follows Section 2: stage i consumes d_(l-i) of the
// destination tag, the final crossbar stage consumes x. The c-way wire
// freedom inside each bucket (Theorem 2) is resolved by arbitration
// order, which is how the MasPar hyperbar behaves.
func (n *Network) RouteCycle(dest []int) ([]Outcome, CycleStats, error) {
	cfg := n.cfg
	if len(dest) != cfg.Inputs() {
		return nil, CycleStats{}, fmt.Errorf("core: %v got %d requests, want %d inputs", cfg, len(dest), cfg.Inputs())
	}

	outcomes := make([]Outcome, len(dest))
	stats := CycleStats{Blocked: make([]int, cfg.Stages())}

	// Live message bookkeeping: line[i] = current wire of input i's
	// request, or NoRequest once dropped/idle.
	line := make([]int, len(dest))
	for i, d := range dest {
		if d == NoRequest {
			line[i] = NoRequest
			outcomes[i] = Outcome{Output: NoRequest}
			continue
		}
		if d < 0 || d >= cfg.Outputs() {
			return nil, CycleStats{}, fmt.Errorf("core: input %d requests output %d out of range [0,%d)", i, d, cfg.Outputs())
		}
		line[i] = i
		stats.Offered++
	}

	hb := cfg.Hyperbar()
	xb := cfg.OutputCrossbar()

	for s := 1; s <= cfg.L; s++ {
		wires := cfg.WiresAfterStage(s - 1)
		n.resetOwners(wires)
		for i, ln := range line {
			if ln != NoRequest {
				n.lineOwner[ln] = i
			}
		}
		if n.workers > 1 {
			blocked, _, err := n.routeStageParallel(s, dest, line, outcomes)
			if err != nil {
				return nil, CycleStats{}, err
			}
			stats.Blocked[s-1] = blocked
			continue
		}
		g := cfg.InterstageGamma(s)
		switches := cfg.SwitchesInStage(s)
		for sw := 0; sw < switches; sw++ {
			base := sw * cfg.A
			busy := false
			for p := 0; p < cfg.A; p++ {
				owner := n.lineOwner[base+p]
				if owner == NoRequest {
					n.digits[p] = switchfab.Idle
					continue
				}
				busy = true
				// Retire d_(l-s): positional digit index l-s of dest/c.
				n.digits[p] = digitAt(dest[owner]/cfg.C, cfg.B, cfg.L-s)
			}
			if !busy {
				continue
			}
			grants, _, err := hb.Route(n.digits[:cfg.A], n.arbiter(s, sw))
			if err != nil {
				return nil, CycleStats{}, fmt.Errorf("core: stage %d switch %d: %w", s, sw, err)
			}
			for p, o := range grants {
				owner := n.lineOwner[base+p]
				if owner == NoRequest {
					continue
				}
				if o == switchfab.Idle {
					line[owner] = NoRequest
					outcomes[owner] = Outcome{Output: NoRequest, BlockedStage: s}
					stats.Blocked[s-1]++
					continue
				}
				line[owner] = g.Apply(sw*(cfg.B*cfg.C) + o)
			}
		}
	}

	// Final stage: c x c crossbars, digit x = dest mod c.
	wires := cfg.WiresAfterStage(cfg.L)
	n.resetOwners(wires)
	for i, ln := range line {
		if ln != NoRequest {
			n.lineOwner[ln] = i
		}
	}
	lastStage := cfg.L + 1
	if n.workers > 1 {
		blocked, delivered, err := n.routeStageParallel(lastStage, dest, line, outcomes)
		if err != nil {
			return nil, CycleStats{}, err
		}
		stats.Blocked[lastStage-1] = blocked
		stats.Delivered = delivered
		return outcomes, stats, nil
	}
	for sw := 0; sw < cfg.SwitchesInStage(lastStage); sw++ {
		base := sw * cfg.C
		busy := false
		for p := 0; p < cfg.C; p++ {
			owner := n.lineOwner[base+p]
			if owner == NoRequest {
				n.digits[p] = switchfab.Idle
				continue
			}
			busy = true
			n.digits[p] = dest[owner] % cfg.C
		}
		if !busy {
			continue
		}
		grants, _, err := xb.Route(n.digits[:cfg.C], n.arbiter(lastStage, sw))
		if err != nil {
			return nil, CycleStats{}, fmt.Errorf("core: crossbar %d: %w", sw, err)
		}
		for p, o := range grants {
			owner := n.lineOwner[base+p]
			if owner == NoRequest {
				continue
			}
			if o == switchfab.Idle {
				outcomes[owner] = Outcome{Output: NoRequest, BlockedStage: lastStage}
				stats.Blocked[lastStage-1]++
				continue
			}
			out := base + o
			outcomes[owner] = Outcome{Output: out}
			stats.Delivered++
		}
	}
	return outcomes, stats, nil
}

func (n *Network) resetOwners(wires int) {
	for i := 0; i < wires; i++ {
		n.lineOwner[i] = NoRequest
	}
}

// digitAt returns the base-b digit with positional weight b^idx of v.
func digitAt(v, b, idx int) int {
	for ; idx > 0; idx-- {
		v /= b
	}
	return v % b
}
