// Package core implements the paper's primary contribution as an
// executable artifact: a cycle-level, circuit-switched Expanded Delta
// Network. It binds the static structure of internal/topology, the
// hyperbar/crossbar behavior of internal/switchfab and the
// digit-retirement routing of internal/routing into a Network that
// arbitrates whole request batches exactly as Section 2 describes.
//
// One RouteCycle call models one network cycle: every request propagates
// stage by stage; a hyperbar bucket accepts at most c requests; losers
// are dropped (circuit switched, no buffering); survivors of the final
// c x c crossbar stage appear on their destination terminals.
//
// The cycle engine is table driven and allocation-free in steady state:
// NewNetwork precomputes every interstage gamma as a flat permutation
// table, each cycle decomposes every destination into its per-stage
// routing digits exactly once, and RouteCycleInto reuses all scratch
// buffers, so the Monte-Carlo harnesses in internal/simulate can run
// millions of cycles without touching the allocator.
package core

import (
	"fmt"
	"math"

	"edn/internal/faults"
	"edn/internal/probe"
	"edn/internal/switchfab"
	"edn/internal/topology"
)

// NoRequest marks an idle input in a request vector, and "not delivered"
// in an output assignment.
const NoRequest = -1

// ArbiterFactory builds one arbiter per physical switch. Stateful
// arbiters (round robin, random) need per-switch instances; stateless
// ones may return a shared value.
type ArbiterFactory func() switchfab.Arbiter

// PriorityArbiters is the default factory: the paper's input-label
// priority rule.
func PriorityArbiters() switchfab.Arbiter { return switchfab.PriorityArbiter{} }

// Network is an instantiated EDN ready to route request batches. It is
// not safe for concurrent use; build one per goroutine (construction
// cost is dominated by the interstage tables, a small multiple of one
// wire-state slice).
type Network struct {
	cfg      topology.Config
	factory  ArbiterFactory
	arbiters [][]switchfab.Arbiter // [stage-1][switch]
	workers  int                   // goroutines per stage; <=1 means serial
	// fastPriority marks the default nil-factory network: every switch
	// arbitrates with the stateless input-label priority rule, so the
	// stage kernel can fuse gather/arbitrate/apply into one pass without
	// consulting (or even instantiating) per-switch arbiters.
	fastPriority bool

	// Precomputed routing state, immutable after NewNetwork.
	gammaTab   [][]int32 // [interstage-1] flat permutation; nil = identity
	logB, logC int       // log2 of cfg.B / cfg.C
	maskB      int32     // cfg.B - 1
	maskC      int32     // cfg.C - 1

	// Fault availability, swapped atomically between cycles by
	// UpdateFaults. liveIn masks the network inputs; live[s-1] masks
	// stage s's output labels. nil slices mean fully live, and every
	// unfaulted stage keeps the original kernels, so a fault-free (or
	// repaired-back-to-empty) network is bit-for-bit (and
	// instruction-for-instruction) identical to one built without masks.
	// liveRows is the preallocated backing store live points into when a
	// mask is active, so an epoch's row swap performs no allocations.
	liveIn   []bool
	live     [][]bool
	liveRows [][]bool

	// Scratch reused across cycles. RouteCycleInto owns these; nothing
	// here survives into caller-visible state except via explicit copies.
	lineOwner []int   // wire -> input currently holding it, or NoRequest
	cleared   []int   // NoRequest-filled template; lineOwner resets by copy
	line      []int   // input -> current wire, or NoRequest once dropped
	tags      []int32 // [stage][input] routing digit, row-major, L+1 rows
	blocked   []int   // CycleStats.Blocked backing store
	scratch   stageScratch
	wscratch  []stageScratch // per-worker scratch, parallel mode only

	// Optional flight-recorder probe. All hooks live at the cycle level
	// (injection loop and per-stage outcome scan), never inside the
	// routeStage kernels, so the parallel workers and the fused fast
	// paths are untouched and a nil probe costs one predictable branch.
	probe    *probe.Probe
	traceIn  []int   // input index of each sampled request this cycle
	traceRec []int32 // matching open trace record handles
	traceN   int
	pcycle   int64 // probe timestamp: cycles routed since SetProbe
}

// stageScratch is the per-goroutine working set of routeStage: the digit
// vector presented to one switch plus the switch-level grant buffers.
type stageScratch struct {
	digits []int
	route  switchfab.RouteScratch
}

func newStageScratch(cfg topology.Config) stageScratch {
	buckets := cfg.B
	if cfg.C > buckets {
		buckets = cfg.C // the output crossbar has C single-wire buckets
	}
	return stageScratch{
		digits: make([]int, cfg.A),
		route:  *switchfab.NewRouteScratch(cfg.A, buckets),
	}
}

// NewNetwork builds a network for cfg. A nil factory selects the paper's
// priority arbitration.
func NewNetwork(cfg topology.Config, factory ArbiterFactory) (*Network, error) {
	return NewNetworkWithFaults(cfg, factory, nil)
}

// NewNetworkWithFaults builds a network that routes around the
// components disabled by m (see internal/faults): grants only go to
// live candidate wires, a request whose whole bucket is dead is blocked
// at that stage, and a request arriving on a dead input is blocked at
// stage 1. A nil or empty mask is exactly NewNetwork.
func NewNetworkWithFaults(cfg topology.Config, factory ArbiterFactory, m *faults.Masks) (*Network, error) {
	return newNetwork(cfg, nil, factory, m)
}

// NewNetworkFromTables is NewNetworkWithFaults over prebuilt interstage
// tables: the network shares t's read-only slices instead of
// materializing its own, so repeated constructions over one cached
// Tables skip the dominant O(wires) build cost while remaining
// bit-for-bit identical to a fresh build.
func NewNetworkFromTables(t *topology.Tables, factory ArbiterFactory, m *faults.Masks) (*Network, error) {
	if t == nil {
		return nil, fmt.Errorf("core: nil tables")
	}
	return newNetwork(t.Config(), t, factory, m)
}

func newNetwork(cfg topology.Config, tables *topology.Tables, factory ArbiterFactory, m *faults.Masks) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	fastPriority := factory == nil
	if factory == nil {
		factory = PriorityArbiters
	}
	n := &Network{cfg: cfg, factory: factory, fastPriority: fastPriority}
	n.arbiters = make([][]switchfab.Arbiter, cfg.Stages())
	for s := 1; s <= cfg.Stages(); s++ {
		n.arbiters[s-1] = make([]switchfab.Arbiter, cfg.SwitchesInStage(s))
	}
	maxW := cfg.Inputs()
	for i := 0; i <= cfg.L+1; i++ {
		if w := cfg.WiresAfterStage(i); w > maxW {
			maxW = w
		}
	}
	if maxW > math.MaxInt32 {
		// The int32 interstage tables (and any realistic memory budget)
		// cap the simulable geometry well below the topology package's
		// 40-bit structural limit.
		return nil, fmt.Errorf("core: %v has %d wires in one stage, beyond the simulable limit", cfg, maxW)
	}
	n.lineOwner = make([]int, maxW)
	n.cleared = make([]int, maxW)
	for i := range n.cleared {
		n.cleared[i] = NoRequest
	}
	n.line = make([]int, cfg.Inputs())
	n.tags = make([]int32, cfg.Stages()*cfg.Inputs())
	n.blocked = make([]int, cfg.Stages())
	n.gammaTab = make([][]int32, cfg.L)
	for s := 1; s <= cfg.L; s++ {
		if tables != nil {
			n.gammaTab[s-1] = tables.Interstage(s)
		} else {
			n.gammaTab[s-1] = cfg.InterstageTable(s)
		}
	}
	n.logB = topology.Log2(cfg.B)
	n.logC = topology.Log2(cfg.C)
	n.maskB = int32(cfg.B - 1)
	n.maskC = int32(cfg.C - 1)
	n.scratch = newStageScratch(cfg)
	n.liveRows = make([][]bool, cfg.Stages())
	if err := n.UpdateFaults(m); err != nil {
		return nil, err
	}
	return n, nil
}

// UpdateFaults swaps the network's availability masks in place: the next
// RouteCycle routes around exactly the components m disables, without
// rebuilding tables, scratch or arbiter state. A nil or empty mask
// restores the unmasked fast paths bit-for-bit (the network becomes
// indistinguishable from one built by NewNetwork, arbiter state aside).
// The swap itself allocates nothing, so an epoch-driven lifecycle loop
// stays allocation-free in steady state. Masks must have been compiled
// for this network's configuration; on error the previous masks remain
// in effect. Not safe to call concurrently with RouteCycleInto.
func (n *Network) UpdateFaults(m *faults.Masks) error {
	if m.Empty() {
		n.liveIn, n.live = nil, nil
		return nil
	}
	if got := m.Config(); got != n.cfg {
		return fmt.Errorf("core: masks compiled for %v, network is %v", got, n.cfg)
	}
	for s := 1; s <= n.cfg.Stages(); s++ {
		n.liveRows[s-1] = m.LiveStageOutputs(s)
	}
	n.liveIn = m.LiveInputs()
	n.live = n.liveRows
	return nil
}

// Faulted reports whether the network was built with a non-empty fault
// mask.
func (n *Network) Faulted() bool { return n.liveIn != nil || n.live != nil }

// ProbeMetrics is the per-stage heat metric set a core network binds
// its probe to: requests offered (stage 1 row), requests dropped per
// stage, and requests delivered (crossbar row).
var ProbeMetrics = []string{"offered", "blocked", "delivered"}

const (
	pmOffered = iota
	pmBlocked
	pmDelivered
)

// SetProbe attaches (or with nil, detaches) a flight-recorder probe.
// The probe's cycle clock starts at 0 on attach: core networks keep no
// wall time of their own, so hop stamps count RouteCycle calls since
// SetProbe. A nil probe restores the uninstrumented cycle path
// bit-for-bit. Not safe to call concurrently with RouteCycleInto.
func (n *Network) SetProbe(p *probe.Probe) {
	n.probe = p
	if p != nil {
		p.Bind(n.cfg.Stages(), ProbeMetrics)
		if n.traceIn == nil {
			n.traceIn = make([]int, n.cfg.Inputs())
			n.traceRec = make([]int32, n.cfg.Inputs())
		}
	}
	n.traceN = 0
	n.pcycle = 0
}

// Config returns the network's configuration.
func (n *Network) Config() topology.Config { return n.cfg }

func (n *Network) arbiter(stage, sw int) switchfab.Arbiter {
	if n.arbiters[stage-1][sw] == nil {
		n.arbiters[stage-1][sw] = n.factory()
	}
	return n.arbiters[stage-1][sw]
}

// Outcome reports the fate of one input's request in a cycle.
type Outcome struct {
	// Output is the network output terminal the request reached, or
	// NoRequest if the input was idle or the request was blocked.
	Output int
	// BlockedStage is the 1-based stage at which the request lost
	// arbitration, or 0 if it was idle or delivered.
	BlockedStage int
}

// Delivered reports whether the request reached an output.
func (o Outcome) Delivered() bool { return o.Output != NoRequest }

// CycleStats aggregates one RouteCycle call.
type CycleStats struct {
	Offered   int   // inputs carrying a request
	Delivered int   // requests that reached their destination
	Blocked   []int // Blocked[s-1] = requests dropped at stage s
}

// BlockedTotal returns the total number of dropped requests.
func (cs CycleStats) BlockedTotal() int {
	t := 0
	for _, b := range cs.Blocked {
		t += b
	}
	return t
}

// PA returns the cycle's empirical probability of acceptance
// (delivered/offered), or 1 for an idle cycle.
func (cs CycleStats) PA() float64 {
	if cs.Offered == 0 {
		return 1
	}
	return float64(cs.Delivered) / float64(cs.Offered)
}

// RouteCycle routes one batch of requests: dest[i] is the destination
// terminal requested by input i, or NoRequest. It returns one Outcome per
// input plus aggregate statistics.
//
// Digit retirement follows Section 2: stage i consumes d_(l-i) of the
// destination tag, the final crossbar stage consumes x. The c-way wire
// freedom inside each bucket (Theorem 2) is resolved by arbitration
// order, which is how the MasPar hyperbar behaves.
//
// RouteCycle allocates its result slices; steady-state measurement loops
// should call RouteCycleInto instead.
func (n *Network) RouteCycle(dest []int) ([]Outcome, CycleStats, error) {
	outcomes := make([]Outcome, n.cfg.Inputs())
	cs, err := n.RouteCycleInto(dest, outcomes)
	if err != nil {
		return nil, CycleStats{}, err
	}
	cs.Blocked = append([]int(nil), cs.Blocked...)
	return outcomes, cs, nil
}

// RouteCycleInto is RouteCycle with caller-owned memory: outcomes (one
// slot per input) receives every input's fate, and all engine scratch —
// wire state, digit tags, grant buffers, the stats' Blocked slice — is
// reused across calls, so a steady-state loop performs no allocations.
//
// The returned CycleStats.Blocked aliases an internal buffer that the
// next RouteCycleInto call on this network overwrites; callers that keep
// it across cycles must copy it (RouteCycle does exactly that).
func (n *Network) RouteCycleInto(dest []int, outcomes []Outcome) (CycleStats, error) {
	cfg := n.cfg
	inputs := cfg.Inputs()
	if len(dest) != inputs {
		return CycleStats{}, fmt.Errorf("core: %v got %d requests, want %d inputs", cfg, len(dest), inputs)
	}
	if len(outcomes) != inputs {
		return CycleStats{}, fmt.Errorf("core: %v got %d outcome slots, want %d inputs", cfg, len(outcomes), inputs)
	}
	for i := range n.blocked {
		n.blocked[i] = 0
	}
	stats := CycleStats{Blocked: n.blocked}
	if n.probe != nil {
		n.traceN = 0
	}

	// Live message bookkeeping: line[i] = current wire of input i's
	// request, or NoRequest once dropped/idle. The destination of every
	// live request is decomposed into its per-stage routing digits once,
	// here, instead of re-dividing inside every stage's switch loop:
	// row s-1 of the tag buffer holds d_(l-s) (the digit stage s
	// retires), row l holds the crossbar digit x = dest mod c.
	line := n.line
	tags := n.tags
	outputs := cfg.Outputs()
	lastRow := cfg.L * inputs
	for i, d := range dest {
		if d == NoRequest {
			line[i] = NoRequest
			outcomes[i] = Outcome{Output: NoRequest}
			continue
		}
		if d < 0 || d >= outputs {
			return CycleStats{}, fmt.Errorf("core: input %d requests output %d out of range [0,%d)", i, d, outputs)
		}
		stats.Offered++
		if n.liveIn != nil && !n.liveIn[i] {
			// The request enters on a severed input wire (or a dead
			// stage-1 switch): blocked at stage 1 before any arbitration.
			line[i] = NoRequest
			outcomes[i] = Outcome{Output: NoRequest, BlockedStage: 1}
			stats.Blocked[0]++
			continue
		}
		line[i] = i
		v := int32(d >> n.logC)
		for row := (cfg.L - 1) * inputs; row >= 0; row -= inputs {
			tags[row+i] = v & n.maskB
			v >>= n.logB
		}
		tags[lastRow+i] = int32(d) & n.maskC
		if n.probe != nil {
			if rec := n.probe.SampleInject(i, d, n.pcycle); rec >= 0 {
				n.traceIn[n.traceN] = i
				n.traceRec[n.traceN] = rec
				n.traceN++
				n.probe.HopRec(rec, 0, probe.EvInject, n.pcycle)
			}
		}
	}

	for s := 1; s <= cfg.L+1; s++ {
		// Reset wire ownership for the wires feeding this stage; copying
		// from a NoRequest-filled template is a plain memmove, far
		// cheaper than a store loop at large wire counts.
		wires := cfg.WiresAfterStage(s - 1)
		copy(n.lineOwner[:wires], n.cleared[:wires])
		for i, ln := range line {
			if ln != NoRequest {
				n.lineOwner[ln] = i
			}
		}
		var blocked, delivered int
		var err error
		if n.workers > 1 {
			blocked, delivered, err = n.routeStageParallel(s, outcomes)
		} else {
			blocked, delivered, err = n.routeStage(s, 0, cfg.SwitchesInStage(s), outcomes, &n.scratch)
		}
		if err != nil {
			return CycleStats{}, err
		}
		stats.Blocked[s-1] += blocked
		stats.Delivered += delivered
		if n.probe != nil {
			n.traceStage(s, outcomes)
		}
	}
	if n.probe != nil {
		n.probe.AddStage(pmOffered, 0, float64(stats.Offered))
		for s := 0; s < cfg.Stages(); s++ {
			n.probe.AddStage(pmBlocked, s, float64(stats.Blocked[s]))
		}
		n.probe.AddStage(pmDelivered, cfg.Stages()-1, float64(stats.Delivered))
		n.probe.EndCycle()
		n.pcycle++
	}
	return stats, nil
}

// traceStage advances every open trace record past stage s: a request
// still holding a wire traversed, a request whose outcome shows an
// output was delivered at the crossbar, and a request dropped by
// arbitration closes at its blocking stage (circuit switching makes
// every loss terminal).
func (n *Network) traceStage(s int, outcomes []Outcome) {
	for t := 0; t < n.traceN; t++ {
		rec := n.traceRec[t]
		if rec < 0 {
			continue
		}
		i := n.traceIn[t]
		switch {
		case outcomes[i].Delivered():
			n.probe.CloseRec(rec, s, probe.EvDeliver, n.pcycle)
			n.traceRec[t] = -1
		case n.line[i] == NoRequest:
			n.probe.CloseRec(rec, outcomes[i].BlockedStage, probe.EvDrop, n.pcycle)
			n.traceRec[t] = -1
		default:
			n.probe.HopRec(rec, s, probe.EvTraverse, n.pcycle)
		}
	}
}

// routeStage arbitrates switches [lo, hi) of one stage: it gathers each
// switch's digit vector from the precomputed tag rows, runs the
// allocation-free switch arbitration, and applies the grants — advancing
// winners through the interstage table (hyperbar stages) or recording
// deliveries (the final crossbar stage). It is the single kernel behind
// both the serial cycle and the parallel workers; switches within a
// stage share no wires or arbitration state, so disjoint ranges may run
// concurrently as long as each goroutine brings its own scratch.
func (n *Network) routeStage(stage, lo, hi int, outcomes []Outcome, sc *stageScratch) (blocked, delivered int, err error) {
	if n.live != nil {
		if live := n.live[stage-1]; live != nil {
			return n.routeStageMasked(stage, lo, hi, outcomes, sc, live)
		}
	}
	cfg := n.cfg
	inputs := cfg.Inputs()
	isCrossbar := stage == cfg.L+1
	width, buckets, capacity := cfg.A, cfg.B, cfg.C
	var tab []int32
	var bc int
	if isCrossbar {
		width, buckets, capacity = cfg.C, cfg.C, 1
	} else {
		tab = n.gammaTab[stage-1]
		bc = cfg.B * cfg.C
	}
	tags := n.tags[(stage-1)*inputs : stage*inputs]
	lineOwner := n.lineOwner
	line := n.line

	if n.fastPriority {
		// Default-arbitration fast path. The priority rule considers
		// inputs in their natural order, and every tag-buffer digit is
		// in range by construction (it was masked out of a validated
		// destination), so the gather, the arbitration and the grant
		// application fuse into a single pass per switch with no
		// per-switch arbiter state at all.
		used := sc.route.Used[:buckets]
		for sw := lo; sw < hi; sw++ {
			base := sw * width
			outBase := sw * bc // hyperbar stage-output wire base
			for i := range used {
				used[i] = 0
			}
			for p := 0; p < width; p++ {
				owner := lineOwner[base+p]
				if owner == NoRequest {
					continue
				}
				d := int(tags[owner])
				if used[d] == capacity {
					line[owner] = NoRequest
					outcomes[owner] = Outcome{Output: NoRequest, BlockedStage: stage}
					blocked++
					continue
				}
				o := d*capacity + used[d]
				used[d]++
				switch {
				case isCrossbar:
					outcomes[owner] = Outcome{Output: base + o}
					delivered++
				case tab != nil:
					line[owner] = int(tab[outBase+o])
				default: // identity interstage (the last hyperbar stage)
					line[owner] = outBase + o
				}
			}
		}
		return blocked, delivered, nil
	}

	hb := cfg.Hyperbar()
	xb := cfg.OutputCrossbar()
	digits := sc.digits[:width]
	for sw := lo; sw < hi; sw++ {
		base := sw * width
		busy := false
		for p := 0; p < width; p++ {
			owner := lineOwner[base+p]
			if owner == NoRequest {
				digits[p] = switchfab.Idle
				continue
			}
			busy = true
			digits[p] = int(tags[owner])
		}
		if !busy {
			continue
		}
		var grants []int
		var routeErr error
		if isCrossbar {
			grants, _, routeErr = xb.RouteInto(digits, n.arbiter(stage, sw), &sc.route)
		} else {
			grants, _, routeErr = hb.RouteInto(digits, n.arbiter(stage, sw), &sc.route)
		}
		if routeErr != nil {
			if isCrossbar {
				return 0, 0, fmt.Errorf("core: crossbar %d: %w", sw, routeErr)
			}
			return 0, 0, fmt.Errorf("core: stage %d switch %d: %w", stage, sw, routeErr)
		}
		for p, o := range grants {
			owner := lineOwner[base+p]
			if owner == NoRequest {
				continue
			}
			switch {
			case o == switchfab.Idle:
				line[owner] = NoRequest
				outcomes[owner] = Outcome{Output: NoRequest, BlockedStage: stage}
				blocked++
			case isCrossbar:
				outcomes[owner] = Outcome{Output: base + o}
				delivered++
			case tab != nil:
				line[owner] = int(tab[sw*bc+o])
			default: // identity interstage (the last hyperbar stage)
				line[owner] = sw*bc + o
			}
		}
	}
	return blocked, delivered, nil
}

// routeStageMasked is the degraded-mode stage kernel, taken only for
// stages whose availability row is non-nil: the bucket scan skips dead
// output wires (a dead wire is unusable forever, so it is consumed from
// the cursor exactly once), and a request whose bucket has no live wire
// left is blocked at this stage. It remains a fused single pass with no
// allocations; unfaulted stages of the same network never reach it, so
// the empty mask costs nothing.
func (n *Network) routeStageMasked(stage, lo, hi int, outcomes []Outcome, sc *stageScratch, live []bool) (blocked, delivered int, err error) {
	cfg := n.cfg
	inputs := cfg.Inputs()
	isCrossbar := stage == cfg.L+1
	width, buckets, capacity := cfg.A, cfg.B, cfg.C
	var tab []int32
	bc := cfg.B * cfg.C
	if isCrossbar {
		// The crossbar's stage-local output label is sw*c + port, so the
		// same outBase + d*capacity + k addressing serves both switch
		// kinds (capacity 1 makes k always 0).
		width, buckets, capacity = cfg.C, cfg.C, 1
		bc = cfg.C
	} else {
		tab = n.gammaTab[stage-1]
	}
	tags := n.tags[(stage-1)*inputs : stage*inputs]
	lineOwner := n.lineOwner
	line := n.line
	used := sc.route.Used[:buckets]
	digits := sc.digits[:width]

	for sw := lo; sw < hi; sw++ {
		base := sw * width
		outBase := sw * bc
		// Arbitration order: natural for the fused priority default,
		// otherwise from the switch's arbiter — consulted only when the
		// switch is busy, so stateful arbiters advance exactly as they do
		// on the unmasked path.
		var order []int
		if !n.fastPriority {
			busy := false
			for p := 0; p < width; p++ {
				owner := lineOwner[base+p]
				if owner == NoRequest {
					digits[p] = switchfab.Idle
					continue
				}
				busy = true
				digits[p] = int(tags[owner])
			}
			if !busy {
				continue
			}
			switch a := n.arbiter(stage, sw).(type) {
			case switchfab.PriorityArbiter:
				// natural order
			case switchfab.InPlaceArbiter:
				order = sc.route.Order[:width]
				a.OrderInto(order)
			default:
				order = a.Order(width)
			}
		}
		for i := range used {
			used[i] = 0
		}
		for idx := 0; idx < width; idx++ {
			p := idx
			if order != nil {
				p = order[idx]
			}
			owner := lineOwner[base+p]
			if owner == NoRequest {
				continue
			}
			d := int(tags[owner])
			k := used[d]
			for k < capacity && !live[outBase+d*capacity+k] {
				k++
			}
			if k == capacity {
				used[d] = capacity
				line[owner] = NoRequest
				outcomes[owner] = Outcome{Output: NoRequest, BlockedStage: stage}
				blocked++
				continue
			}
			o := d*capacity + k
			used[d] = k + 1
			switch {
			case isCrossbar:
				outcomes[owner] = Outcome{Output: outBase + o}
				delivered++
			case tab != nil:
				line[owner] = int(tab[outBase+o])
			default: // identity interstage (the last hyperbar stage)
				line[owner] = outBase + o
			}
		}
	}
	return blocked, delivered, nil
}
