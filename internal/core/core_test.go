package core

import (
	"testing"
	"testing/quick"

	"edn/internal/switchfab"
	"edn/internal/topology"
	"edn/internal/xrand"
)

func mustNet(t *testing.T, a, b, c, l int) *Network {
	t.Helper()
	cfg, err := topology.New(a, b, c, l)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNetwork(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestSingleMessageAlwaysDelivered(t *testing.T) {
	// Theorem 1: with no contention a message reaches any destination.
	nets := []*Network{
		mustNet(t, 4, 2, 2, 2),
		mustNet(t, 8, 2, 4, 2),
		mustNet(t, 8, 4, 2, 3),
		mustNet(t, 16, 4, 4, 2),
		mustNet(t, 4, 4, 1, 3), // delta
		mustNet(t, 4, 8, 2, 2), // expanding
		mustNet(t, 8, 2, 2, 2), // contracting
	}
	for _, n := range nets {
		cfg := n.Config()
		dest := make([]int, cfg.Inputs())
		for src := 0; src < cfg.Inputs(); src++ {
			for d := 0; d < cfg.Outputs(); d++ {
				for i := range dest {
					dest[i] = NoRequest
				}
				dest[src] = d
				out, stats, err := n.RouteCycle(dest)
				if err != nil {
					t.Fatalf("%v: %v", cfg, err)
				}
				if !out[src].Delivered() || out[src].Output != d {
					t.Fatalf("%v: %d->%d not delivered: %+v", cfg, src, d, out[src])
				}
				if stats.Offered != 1 || stats.Delivered != 1 || stats.BlockedTotal() != 0 {
					t.Fatalf("%v: stats %+v", cfg, stats)
				}
			}
		}
	}
}

func TestRouteCycleValidation(t *testing.T) {
	n := mustNet(t, 16, 4, 4, 2)
	if _, _, err := n.RouteCycle(make([]int, 3)); err == nil {
		t.Error("expected length error")
	}
	bad := make([]int, n.Config().Inputs())
	bad[0] = n.Config().Outputs()
	if _, _, err := n.RouteCycle(bad); err == nil {
		t.Error("expected destination range error")
	}
}

func TestIdleCycle(t *testing.T) {
	n := mustNet(t, 16, 4, 4, 2)
	dest := make([]int, n.Config().Inputs())
	for i := range dest {
		dest[i] = NoRequest
	}
	out, stats, err := n.RouteCycle(dest)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Offered != 0 || stats.Delivered != 0 {
		t.Fatalf("idle cycle stats: %+v", stats)
	}
	if stats.PA() != 1 {
		t.Fatalf("idle PA = %g, want 1", stats.PA())
	}
	for i, o := range out {
		if o.Delivered() || o.BlockedStage != 0 {
			t.Fatalf("idle input %d got outcome %+v", i, o)
		}
	}
}

// TestDeliveryCorrectness: every delivered message lands exactly on its
// requested destination, and no output terminal is granted twice.
func TestDeliveryCorrectness(t *testing.T) {
	n := mustNet(t, 16, 4, 4, 2)
	cfg := n.Config()
	rng := xrand.New(77)
	for cycle := 0; cycle < 200; cycle++ {
		dest := make([]int, cfg.Inputs())
		for i := range dest {
			if rng.Bool(0.7) {
				dest[i] = rng.Intn(cfg.Outputs())
			} else {
				dest[i] = NoRequest
			}
		}
		out, stats, err := n.RouteCycle(dest)
		if err != nil {
			t.Fatal(err)
		}
		usedOutputs := map[int]bool{}
		delivered, blocked := 0, 0
		for i, o := range out {
			switch {
			case dest[i] == NoRequest:
				if o.Delivered() || o.BlockedStage != 0 {
					t.Fatalf("cycle %d: idle input %d outcome %+v", cycle, i, o)
				}
			case o.Delivered():
				delivered++
				if o.Output != dest[i] {
					t.Fatalf("cycle %d: input %d wanted %d got %d", cycle, i, dest[i], o.Output)
				}
				if usedOutputs[o.Output] {
					t.Fatalf("cycle %d: output %d double-granted", cycle, o.Output)
				}
				usedOutputs[o.Output] = true
				if o.BlockedStage != 0 {
					t.Fatalf("cycle %d: delivered with BlockedStage=%d", cycle, o.BlockedStage)
				}
			default:
				blocked++
				if o.BlockedStage < 1 || o.BlockedStage > cfg.Stages() {
					t.Fatalf("cycle %d: blocked stage %d out of range", cycle, o.BlockedStage)
				}
			}
		}
		if delivered != stats.Delivered || delivered+blocked != stats.Offered {
			t.Fatalf("cycle %d: stats mismatch %+v vs delivered=%d blocked=%d", cycle, stats, delivered, blocked)
		}
	}
}

// TestLemma2NoTailBlocking: when the offered requests form a permutation
// on a square EDN, no request is ever dropped at the last hyperbar stage
// or at the crossbar stage.
func TestLemma2NoTailBlocking(t *testing.T) {
	nets := []*Network{
		mustNet(t, 16, 4, 4, 2),
		mustNet(t, 8, 4, 2, 3),
		mustNet(t, 8, 2, 4, 2),
		mustNet(t, 64, 16, 4, 2),
	}
	for _, n := range nets {
		cfg := n.Config()
		rng := xrand.New(101)
		for trial := 0; trial < 30; trial++ {
			dest := rng.Perm(cfg.Outputs())[:cfg.Inputs()]
			_, stats, err := n.RouteCycle(dest)
			if err != nil {
				t.Fatal(err)
			}
			if b := stats.Blocked[cfg.L-1]; b != 0 {
				t.Fatalf("%v trial %d: %d blocks at final hyperbar stage", cfg, trial, b)
			}
			if b := stats.Blocked[cfg.L]; b != 0 {
				t.Fatalf("%v trial %d: %d blocks at crossbar stage", cfg, trial, b)
			}
		}
	}
}

// TestDeltaUniquePathBlocking: a delta network (c=1) must block whenever
// two requests need the same internal wire; the classic example is two
// inputs of the same first-stage switch asking for destinations that
// share the leading digit.
func TestDeltaUniquePathBlocking(t *testing.T) {
	n := mustNet(t, 2, 2, 1, 2) // 4x4 delta of 2x2 switches
	dest := []int{0, 1, NoRequest, NoRequest}
	// Inputs 0 and 1 sit on the same first-stage switch; destinations 0
	// and 1 share d_1 = 0, so they contend for the single upper wire.
	out, stats, err := n.RouteCycle(dest)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != 1 || stats.BlockedTotal() != 1 {
		t.Fatalf("delta conflict: %+v (outcomes %+v)", stats, out)
	}
	if stats.Blocked[0] != 1 {
		t.Fatalf("conflict should be at stage 1, got %v", stats.Blocked)
	}

	// The same pair on an EDN with c=2 routes without loss.
	n2 := mustNet(t, 4, 2, 2, 2)
	dest2 := make([]int, n2.Config().Inputs())
	for i := range dest2 {
		dest2[i] = NoRequest
	}
	dest2[0], dest2[1] = 0, 1
	_, stats2, err := n2.RouteCycle(dest2)
	if err != nil {
		t.Fatal(err)
	}
	if stats2.Delivered != 2 {
		t.Fatalf("EDN(4,2,2,2) should deliver both: %+v", stats2)
	}
}

// TestCrossbarNetworkNeverBlocksPermutations: EDN(n,n,1,1) is an n x n
// crossbar; permutations route losslessly.
func TestCrossbarNetworkNeverBlocksPermutations(t *testing.T) {
	n := mustNet(t, 16, 16, 1, 1)
	rng := xrand.New(5)
	for trial := 0; trial < 50; trial++ {
		dest := rng.Perm(16)
		_, stats, err := n.RouteCycle(dest)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Delivered != 16 {
			t.Fatalf("crossbar dropped a permutation request: %+v", stats)
		}
	}
}

// TestFullFanInContention: all inputs request output 0. Exactly one
// message can be delivered; capacity limits losses to specific stages.
func TestFullFanInContention(t *testing.T) {
	n := mustNet(t, 16, 4, 4, 2)
	cfg := n.Config()
	dest := make([]int, cfg.Inputs())
	for i := range dest {
		dest[i] = 0
	}
	out, stats, err := n.RouteCycle(dest)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Delivered != 1 {
		t.Fatalf("fan-in should deliver exactly 1, got %d", stats.Delivered)
	}
	winners := 0
	for _, o := range out {
		if o.Delivered() {
			winners++
			if o.Output != 0 {
				t.Fatalf("winner landed on %d", o.Output)
			}
		}
	}
	if winners != 1 {
		t.Fatalf("%d winners", winners)
	}
}

// TestArbiterFactoryPerSwitchState: round-robin arbiters must not share
// state across switches; two separate switches both start at input 0.
func TestArbiterFactoryPerSwitchState(t *testing.T) {
	cfg, err := topology.New(4, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	made := 0
	n, err := NewNetwork(cfg, func() switchfab.Arbiter {
		made++
		return &switchfab.RoundRobinArbiter{}
	})
	if err != nil {
		t.Fatal(err)
	}
	dest := make([]int, cfg.Inputs())
	for i := range dest {
		dest[i] = i % cfg.Outputs()
	}
	if _, _, err := n.RouteCycle(dest); err != nil {
		t.Fatal(err)
	}
	if made == 0 {
		t.Fatal("factory never invoked")
	}
	// Each (stage, switch) gets its own arbiter, allocated lazily.
	total := 0
	for s := 1; s <= cfg.Stages(); s++ {
		total += cfg.SwitchesInStage(s)
	}
	if made > total {
		t.Fatalf("made %d arbiters for %d switches", made, total)
	}
}

// Property: conservation — offered = delivered + blocked, and per-stage
// blocked counts are consistent, for random loads on random geometries.
func TestQuickConservation(t *testing.T) {
	f := func(rawB, rawC, rawL uint8, seed uint64) bool {
		b := 1 << (rawB%2 + 1) // 2 or 4
		c := 1 << (rawC % 3)   // 1, 2, 4
		l := int(rawL%3) + 1   // 1..3
		cfg := topology.Config{A: b * c, B: b, C: c, L: l}
		if cfg.Validate() != nil || cfg.Inputs() > 4096 {
			return true
		}
		n, err := NewNetwork(cfg, nil)
		if err != nil {
			return false
		}
		rng := xrand.New(seed)
		dest := make([]int, cfg.Inputs())
		for i := range dest {
			if rng.Bool(0.8) {
				dest[i] = rng.Intn(cfg.Outputs())
			} else {
				dest[i] = NoRequest
			}
		}
		out, stats, err := n.RouteCycle(dest)
		if err != nil {
			return false
		}
		delivered := 0
		for _, o := range out {
			if o.Delivered() {
				delivered++
			}
		}
		return delivered == stats.Delivered &&
			stats.Offered == stats.Delivered+stats.BlockedTotal()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestAgainstTraceRoute: a single message's path through RouteCycle ends
// where the analytical Lemma 1 walk says it must.
func TestAgainstTraceRoute(t *testing.T) {
	n := mustNet(t, 8, 2, 4, 3)
	cfg := n.Config()
	dest := make([]int, cfg.Inputs())
	for src := 0; src < cfg.Inputs(); src += 3 {
		for d := 0; d < cfg.Outputs(); d += 5 {
			for i := range dest {
				dest[i] = NoRequest
			}
			dest[src] = d
			out, _, err := n.RouteCycle(dest)
			if err != nil {
				t.Fatal(err)
			}
			if out[src].Output != d {
				t.Fatalf("core delivered %d->%d to %d", src, d, out[src].Output)
			}
		}
	}
}
