package core

import (
	"fmt"
	"testing"

	"edn/internal/switchfab"
	"edn/internal/topology"
	"edn/internal/xrand"
)

// This file pins the table-driven engine to the original (pre-table)
// RouteCycle semantics. referenceEngine is a line-for-line transcription
// of the seed implementation — per-cycle slice allocation, per-stage
// digit division, interface-dispatched gamma application, allocating
// switch arbitration — and the equivalence suite asserts bit-identical
// Outcomes and CycleStats between it, RouteCycleInto, the RouteCycle
// wrapper, and the stage-parallel path, across geometries, request
// loads, seeds and every arbiter factory.

type referenceEngine struct {
	cfg     topology.Config
	factory ArbiterFactory
	arbs    [][]switchfab.Arbiter
}

func newReferenceEngine(cfg topology.Config, factory ArbiterFactory) *referenceEngine {
	if factory == nil {
		factory = PriorityArbiters
	}
	arbs := make([][]switchfab.Arbiter, cfg.Stages())
	for s := 1; s <= cfg.Stages(); s++ {
		arbs[s-1] = make([]switchfab.Arbiter, cfg.SwitchesInStage(s))
	}
	return &referenceEngine{cfg: cfg, factory: factory, arbs: arbs}
}

// arbiter reproduces the seed's lazy busy-switch-only instantiation, so
// stateful factories observe the same call sequence as the live engine.
func (e *referenceEngine) arbiter(stage, sw int) switchfab.Arbiter {
	if e.arbs[stage-1][sw] == nil {
		e.arbs[stage-1][sw] = e.factory()
	}
	return e.arbs[stage-1][sw]
}

// refDigitAt is the seed's digitAt: base-b digit of positional weight
// b^idx, by repeated division.
func refDigitAt(v, b, idx int) int {
	for ; idx > 0; idx-- {
		v /= b
	}
	return v % b
}

func (e *referenceEngine) routeCycle(dest []int) ([]Outcome, CycleStats, error) {
	cfg := e.cfg
	if len(dest) != cfg.Inputs() {
		return nil, CycleStats{}, fmt.Errorf("core: %v got %d requests, want %d inputs", cfg, len(dest), cfg.Inputs())
	}
	outcomes := make([]Outcome, len(dest))
	stats := CycleStats{Blocked: make([]int, cfg.Stages())}
	line := make([]int, len(dest))
	for i, d := range dest {
		if d == NoRequest {
			line[i] = NoRequest
			outcomes[i] = Outcome{Output: NoRequest}
			continue
		}
		if d < 0 || d >= cfg.Outputs() {
			return nil, CycleStats{}, fmt.Errorf("core: input %d requests output %d out of range [0,%d)", i, d, cfg.Outputs())
		}
		line[i] = i
		stats.Offered++
	}

	maxW := cfg.Inputs()
	for i := 0; i <= cfg.L+1; i++ {
		if w := cfg.WiresAfterStage(i); w > maxW {
			maxW = w
		}
	}
	lineOwner := make([]int, maxW)
	resetOwners := func(wires int) {
		for i := 0; i < wires; i++ {
			lineOwner[i] = NoRequest
		}
	}

	hb := cfg.Hyperbar()
	xb := cfg.OutputCrossbar()
	digits := make([]int, cfg.A)

	for s := 1; s <= cfg.L; s++ {
		resetOwners(cfg.WiresAfterStage(s - 1))
		for i, ln := range line {
			if ln != NoRequest {
				lineOwner[ln] = i
			}
		}
		g := cfg.InterstageGamma(s)
		for sw := 0; sw < cfg.SwitchesInStage(s); sw++ {
			base := sw * cfg.A
			busy := false
			for p := 0; p < cfg.A; p++ {
				owner := lineOwner[base+p]
				if owner == NoRequest {
					digits[p] = switchfab.Idle
					continue
				}
				busy = true
				digits[p] = refDigitAt(dest[owner]/cfg.C, cfg.B, cfg.L-s)
			}
			if !busy {
				continue
			}
			grants, _, err := hb.Route(digits[:cfg.A], e.arbiter(s, sw))
			if err != nil {
				return nil, CycleStats{}, fmt.Errorf("core: stage %d switch %d: %w", s, sw, err)
			}
			for p, o := range grants {
				owner := lineOwner[base+p]
				if owner == NoRequest {
					continue
				}
				if o == switchfab.Idle {
					line[owner] = NoRequest
					outcomes[owner] = Outcome{Output: NoRequest, BlockedStage: s}
					stats.Blocked[s-1]++
					continue
				}
				line[owner] = g.Apply(sw*(cfg.B*cfg.C) + o)
			}
		}
	}

	resetOwners(cfg.WiresAfterStage(cfg.L))
	for i, ln := range line {
		if ln != NoRequest {
			lineOwner[ln] = i
		}
	}
	lastStage := cfg.L + 1
	for sw := 0; sw < cfg.SwitchesInStage(lastStage); sw++ {
		base := sw * cfg.C
		busy := false
		for p := 0; p < cfg.C; p++ {
			owner := lineOwner[base+p]
			if owner == NoRequest {
				digits[p] = switchfab.Idle
				continue
			}
			busy = true
			digits[p] = dest[owner] % cfg.C
		}
		if !busy {
			continue
		}
		grants, _, err := xb.Route(digits[:cfg.C], e.arbiter(lastStage, sw))
		if err != nil {
			return nil, CycleStats{}, fmt.Errorf("core: crossbar %d: %w", sw, err)
		}
		for p, o := range grants {
			owner := lineOwner[base+p]
			if owner == NoRequest {
				continue
			}
			if o == switchfab.Idle {
				outcomes[owner] = Outcome{Output: NoRequest, BlockedStage: lastStage}
				stats.Blocked[lastStage-1]++
				continue
			}
			outcomes[owner] = Outcome{Output: base + o}
			stats.Delivered++
		}
	}
	return outcomes, stats, nil
}

// factoryCase builds one independent arbiter factory per engine so that
// stateful arbiters advance through identical streams in every engine.
type factoryCase struct {
	name string
	make func(seed uint64) ArbiterFactory
	// parallel marks factories safe under stage-parallel workers. The
	// random factory shares one RNG across all of a network's arbiters,
	// which is deterministic serially (switches are visited in order)
	// but racy across worker goroutines, so it is excluded there.
	parallel bool
}

func equivalenceFactories() []factoryCase {
	return []factoryCase{
		{name: "default-priority", make: func(uint64) ArbiterFactory { return nil }, parallel: true},
		{name: "explicit-priority", make: func(uint64) ArbiterFactory { return PriorityArbiters }, parallel: true},
		{name: "round-robin", make: func(uint64) ArbiterFactory {
			return func() switchfab.Arbiter { return &switchfab.RoundRobinArbiter{} }
		}, parallel: true},
		{name: "random", make: func(seed uint64) ArbiterFactory {
			rng := xrand.New(seed)
			return func() switchfab.Arbiter { return switchfab.RandomArbiter{Perm: rng.Perm} }
		}, parallel: false},
	}
}

var equivalenceConfigs = [][4]int{
	{4, 2, 2, 1},   // single hyperbar stage: identity interstage only
	{8, 8, 1, 2},   // classical delta (c=1)
	{8, 4, 2, 2},   // square EDN
	{16, 4, 4, 2},  // square EDN, wider buckets
	{64, 16, 4, 2}, // the MasPar geometry, 1K ports
	{4, 4, 2, 2},   // expander: more outputs than inputs
	{16, 4, 2, 2},  // concentrator: more inputs than outputs
	{8, 2, 4, 3},   // deep, narrow buckets
}

func TestRouteCycleEquivalence(t *testing.T) {
	for _, dims := range equivalenceConfigs {
		cfg, err := topology.New(dims[0], dims[1], dims[2], dims[3])
		if err != nil {
			t.Fatal(err)
		}
		for _, fc := range equivalenceFactories() {
			for seed := uint64(1); seed <= 3; seed++ {
				t.Run(fmt.Sprintf("%v/%s/seed%d", cfg, fc.name, seed), func(t *testing.T) {
					ref := newReferenceEngine(cfg, fc.make(seed))
					into, err := NewNetwork(cfg, fc.make(seed))
					if err != nil {
						t.Fatal(err)
					}
					wrapper, err := NewNetwork(cfg, fc.make(seed))
					if err != nil {
						t.Fatal(err)
					}
					var par *Network
					if fc.parallel {
						par, err = NewNetwork(cfg, fc.make(seed))
						if err != nil {
							t.Fatal(err)
						}
						par.SetParallelism(3)
					}

					trafficRng := xrand.New(seed * 977)
					dest := make([]int, cfg.Inputs())
					intoOut := make([]Outcome, cfg.Inputs())
					parOut := make([]Outcome, cfg.Inputs())
					rates := []float64{0, 0.25, 0.6, 1}
					for trial := 0; trial < 12; trial++ {
						rate := rates[trial%len(rates)]
						for i := range dest {
							if trafficRng.Bool(rate) {
								dest[i] = trafficRng.Intn(cfg.Outputs())
							} else {
								dest[i] = NoRequest
							}
						}
						wantOut, wantStats, err := ref.routeCycle(dest)
						if err != nil {
							t.Fatal(err)
						}

						// Dirty the reused outcome buffers to prove every
						// slot is rewritten each cycle.
						for i := range intoOut {
							intoOut[i] = Outcome{Output: -99, BlockedStage: -99}
							parOut[i] = Outcome{Output: -99, BlockedStage: -99}
						}
						gotStats, err := into.RouteCycleInto(dest, intoOut)
						if err != nil {
							t.Fatal(err)
						}
						compareCycle(t, trial, "RouteCycleInto", wantOut, wantStats, intoOut, gotStats)

						wOut, wStats, err := wrapper.RouteCycle(dest)
						if err != nil {
							t.Fatal(err)
						}
						compareCycle(t, trial, "RouteCycle", wantOut, wantStats, wOut, wStats)

						if par != nil {
							pStats, err := par.RouteCycleInto(dest, parOut)
							if err != nil {
								t.Fatal(err)
							}
							compareCycle(t, trial, "parallel", wantOut, wantStats, parOut, pStats)
						}
					}
				})
			}
		}
	}
}

func compareCycle(t *testing.T, trial int, engine string, wantOut []Outcome, wantStats CycleStats, gotOut []Outcome, gotStats CycleStats) {
	t.Helper()
	if gotStats.Offered != wantStats.Offered || gotStats.Delivered != wantStats.Delivered {
		t.Fatalf("trial %d %s: offered/delivered %d/%d, want %d/%d",
			trial, engine, gotStats.Offered, gotStats.Delivered, wantStats.Offered, wantStats.Delivered)
	}
	if len(gotStats.Blocked) != len(wantStats.Blocked) {
		t.Fatalf("trial %d %s: %d blocked stages, want %d", trial, engine, len(gotStats.Blocked), len(wantStats.Blocked))
	}
	for s := range wantStats.Blocked {
		if gotStats.Blocked[s] != wantStats.Blocked[s] {
			t.Fatalf("trial %d %s: stage %d blocked %d, want %d",
				trial, engine, s+1, gotStats.Blocked[s], wantStats.Blocked[s])
		}
	}
	for i := range wantOut {
		if gotOut[i] != wantOut[i] {
			t.Fatalf("trial %d %s: input %d outcome %+v, want %+v", trial, engine, i, gotOut[i], wantOut[i])
		}
	}
}

// TestRouteCycleIntoZeroAlloc pins the headline property: a steady-state
// RouteCycleInto cycle performs no allocations, under both the fused
// default-priority kernel and the generic in-place arbiter path.
func TestRouteCycleIntoZeroAlloc(t *testing.T) {
	cfg, err := topology.New(16, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	factories := map[string]ArbiterFactory{
		"default-priority": nil,
		"round-robin":      func() switchfab.Arbiter { return &switchfab.RoundRobinArbiter{} },
	}
	for name, factory := range factories {
		net, err := NewNetwork(cfg, factory)
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(9)
		dest := make([]int, cfg.Inputs())
		for i := range dest {
			dest[i] = rng.Intn(cfg.Outputs())
		}
		outcomes := make([]Outcome, cfg.Inputs())
		if _, err := net.RouteCycleInto(dest, outcomes); err != nil {
			t.Fatal(err) // warm-up instantiates the lazy arbiters
		}
		allocs := testing.AllocsPerRun(20, func() {
			if _, err := net.RouteCycleInto(dest, outcomes); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("%s: RouteCycleInto allocated %.1f objects per cycle, want 0", name, allocs)
		}
	}
}

// TestRouteCycleIntoValidation covers the error paths of the Into entry
// point, which must reject bad geometry without touching caller state.
func TestRouteCycleIntoValidation(t *testing.T) {
	cfg, err := topology.New(8, 4, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetwork(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	good := make([]int, cfg.Inputs())
	outcomes := make([]Outcome, cfg.Inputs())
	if _, err := net.RouteCycleInto(good[:3], outcomes); err == nil {
		t.Fatal("short dest accepted")
	}
	if _, err := net.RouteCycleInto(good, outcomes[:3]); err == nil {
		t.Fatal("short outcomes accepted")
	}
	good[0] = cfg.Outputs()
	if _, err := net.RouteCycleInto(good, outcomes); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
	good[0] = -7
	if _, err := net.RouteCycleInto(good, outcomes); err == nil {
		t.Fatal("negative destination accepted")
	}
}
