package core

import (
	"fmt"
	"math"
	"testing"

	"edn/internal/faults"
	"edn/internal/switchfab"
	"edn/internal/topology"
	"edn/internal/traffic"
	"edn/internal/xrand"
)

func faultCfg(t testing.TB, a, b, c, l int) topology.Config {
	t.Helper()
	cfg, err := topology.New(a, b, c, l)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestEmptyMaskBitForBit pins the first fault-tolerance invariant: a
// network built with an empty (or nil-compiled) fault mask produces
// exactly the same Outcomes and CycleStats as one built without masks,
// across geometries, arbiter factories, traffic and the parallel path.
func TestEmptyMaskBitForBit(t *testing.T) {
	geometries := []struct{ a, b, c, l int }{
		{4, 4, 2, 2}, {8, 2, 4, 2}, {16, 4, 4, 2}, {4, 4, 1, 2},
	}
	factories := []struct {
		name    string
		factory ArbiterFactory
	}{
		{"priority", nil},
		{"explicit-priority", PriorityArbiters},
		{"roundrobin", func() switchfab.Arbiter { return &switchfab.RoundRobinArbiter{} }},
	}
	for _, g := range geometries {
		cfg := faultCfg(t, g.a, g.b, g.c, g.l)
		empty, err := faults.Compile(cfg, faults.Set{})
		if err != nil {
			t.Fatal(err)
		}
		for _, fac := range factories {
			t.Run(fmt.Sprintf("%v/%s", cfg, fac.name), func(t *testing.T) {
				// Stateful arbiters advance with traffic, so every
				// comparison needs its own fresh reference network.
				newRef := func() *Network {
					ref, err := NewNetwork(cfg, fac.factory)
					if err != nil {
						t.Fatal(err)
					}
					return ref
				}
				masked, err := NewNetworkWithFaults(cfg, fac.factory, empty)
				if err != nil {
					t.Fatal(err)
				}
				if masked.Faulted() {
					t.Fatal("empty mask marked the network faulted")
				}
				par, err := NewNetworkWithFaults(cfg, fac.factory, nil)
				if err != nil {
					t.Fatal(err)
				}
				par.SetParallelism(3)
				compareNetworksBitForBit(t, cfg, newRef(), masked, 40, 11)
				compareNetworksBitForBit(t, cfg, newRef(), par, 40, 11)
			})
		}
	}
}

// compareNetworksBitForBit drives both networks with an identical
// traffic stream and requires identical Outcomes and CycleStats every
// cycle.
func compareNetworksBitForBit(t *testing.T, cfg topology.Config, ref, got *Network, cycles int, seed uint64) {
	t.Helper()
	gen := traffic.Uniform{Rate: 0.9, Rng: xrand.New(seed)}
	dest := make([]int, cfg.Inputs())
	refOut := make([]Outcome, cfg.Inputs())
	gotOut := make([]Outcome, cfg.Inputs())
	for cycle := 0; cycle < cycles; cycle++ {
		gen.GenerateInto(dest, cfg.Outputs())
		rcs, err := ref.RouteCycleInto(dest, refOut)
		if err != nil {
			t.Fatal(err)
		}
		gcs, err := got.RouteCycleInto(dest, gotOut)
		if err != nil {
			t.Fatal(err)
		}
		if rcs.Offered != gcs.Offered || rcs.Delivered != gcs.Delivered {
			t.Fatalf("cycle %d: stats diverge: ref %+v, got %+v", cycle, rcs, gcs)
		}
		for s := range rcs.Blocked {
			if rcs.Blocked[s] != gcs.Blocked[s] {
				t.Fatalf("cycle %d stage %d: blocked %d vs %d", cycle, s+1, rcs.Blocked[s], gcs.Blocked[s])
			}
		}
		for i := range refOut {
			if refOut[i] != gotOut[i] {
				t.Fatalf("cycle %d input %d: outcome %+v vs %+v", cycle, i, refOut[i], gotOut[i])
			}
		}
	}
}

// TestMaskedFastPathMatchesMaskedArbiterPath cross-validates the two
// masked kernels: the nil-factory fused priority path and the explicit
// PriorityArbiters factory path must make identical grant decisions on
// a faulted network.
func TestMaskedFastPathMatchesMaskedArbiterPath(t *testing.T) {
	for _, g := range []struct{ a, b, c, l int }{{4, 4, 2, 2}, {16, 4, 4, 2}, {4, 4, 1, 2}} {
		cfg := faultCfg(t, g.a, g.b, g.c, g.l)
		set := faults.Bernoulli(cfg, faults.MixedFaults, 0.15, xrand.New(3))
		m, err := faults.Compile(cfg, set)
		if err != nil {
			t.Fatal(err)
		}
		fast, err := NewNetworkWithFaults(cfg, nil, m)
		if err != nil {
			t.Fatal(err)
		}
		slow, err := NewNetworkWithFaults(cfg, PriorityArbiters, m)
		if err != nil {
			t.Fatal(err)
		}
		par, err := NewNetworkWithFaults(cfg, nil, m)
		if err != nil {
			t.Fatal(err)
		}
		par.SetParallelism(3)
		t.Run(cfg.String(), func(t *testing.T) {
			compareNetworksBitForBit(t, cfg, fast, slow, 50, 17)
			compareNetworksBitForBit(t, cfg, fast, par, 50, 17)
		})
	}
}

// TestDeadWireRoutesAround: with c=2 every bucket has a spare wire, so
// a single dead interstage wire must not change which requests are
// *deliverable* under light conflict-free load — only which wire they
// ride.
func TestDeadWireRoutesAround(t *testing.T) {
	cfg := faultCfg(t, 4, 4, 2, 2) // 4 inputs, c=2: two wires per bucket
	m, err := faults.Compile(cfg, faults.Set{Wires: []faults.WireID{{Boundary: 1, Wire: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetworkWithFaults(cfg, nil, m)
	if err != nil {
		t.Fatal(err)
	}
	// A single request can always be delivered: it meets no contention
	// and every bucket on its path keeps at least one live wire.
	for dst := 0; dst < cfg.Outputs(); dst++ {
		dest := make([]int, cfg.Inputs())
		for i := range dest {
			dest[i] = NoRequest
		}
		dest[0] = dst
		outcomes, cs, err := net.RouteCycle(dest)
		if err != nil {
			t.Fatal(err)
		}
		if cs.Delivered != 1 || outcomes[0].Output != dst {
			t.Fatalf("dst %d: single request not delivered around the dead wire: %+v", dst, outcomes[0])
		}
	}
}

// TestDeltaCornerDeadWireDisconnects is the structural contrast: in the
// c=1 corner the same single dead wire severs every path through it, so
// some destination becomes unreachable.
func TestDeltaCornerDeadWireDisconnects(t *testing.T) {
	cfg := faultCfg(t, 4, 4, 1, 2)
	m, err := faults.Compile(cfg, faults.Set{Wires: []faults.WireID{{Boundary: 1, Wire: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetworkWithFaults(cfg, nil, m)
	if err != nil {
		t.Fatal(err)
	}
	// Each (src, dst) pair has exactly one path; the dead wire must cut
	// at least one of them, no matter where gamma puts it.
	blockedSomewhere := false
	for src := 0; src < cfg.Inputs() && !blockedSomewhere; src++ {
		for dst := 0; dst < cfg.Outputs(); dst++ {
			dest := make([]int, cfg.Inputs())
			for i := range dest {
				dest[i] = NoRequest
			}
			dest[src] = dst
			outcomes, _, err := net.RouteCycle(dest)
			if err != nil {
				t.Fatal(err)
			}
			if !outcomes[src].Delivered() {
				blockedSomewhere = true
				break
			}
		}
	}
	if !blockedSomewhere {
		t.Fatal("single-path delta delivered everywhere despite a dead interstage wire")
	}
}

// TestFullyDeadStage kills every switch of a middle stage: the network
// must route nothing, block everything, and not panic — on the fused
// path, the arbiter path and the parallel path.
func TestFullyDeadStage(t *testing.T) {
	cfg := faultCfg(t, 16, 4, 4, 2)
	var set faults.Set
	for sw := 0; sw < cfg.SwitchesInStage(2); sw++ {
		set.Switches = append(set.Switches, faults.SwitchID{Stage: 2, Switch: sw})
	}
	m, err := faults.Compile(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	for _, fac := range []struct {
		name    string
		factory ArbiterFactory
	}{{"priority", nil}, {"roundrobin", func() switchfab.Arbiter { return &switchfab.RoundRobinArbiter{} }}} {
		for _, workers := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/workers=%d", fac.name, workers), func(t *testing.T) {
				net, err := NewNetworkWithFaults(cfg, fac.factory, m)
				if err != nil {
					t.Fatal(err)
				}
				if workers > 1 {
					net.SetParallelism(workers)
				}
				gen := traffic.Uniform{Rate: 1, Rng: xrand.New(2)}
				dest := make([]int, cfg.Inputs())
				outcomes := make([]Outcome, cfg.Inputs())
				for cycle := 0; cycle < 10; cycle++ {
					gen.GenerateInto(dest, cfg.Outputs())
					cs, err := net.RouteCycleInto(dest, outcomes)
					if err != nil {
						t.Fatal(err)
					}
					if cs.Delivered != 0 {
						t.Fatalf("delivered %d through a fully dead stage", cs.Delivered)
					}
					if cs.BlockedTotal() != cs.Offered {
						t.Fatalf("offered %d but blocked only %d", cs.Offered, cs.BlockedTotal())
					}
					// Everything dies at stage 1: the dead stage-2 switches
					// mask every stage-1 output wire.
					if cs.Blocked[0] != cs.Offered {
						t.Fatalf("blocked %v, want all %d at stage 1", cs.Blocked, cs.Offered)
					}
				}
			})
		}
	}
}

// TestDeadInputsBlockAtStageOne: requests entering on severed inputs
// are offered, blocked at stage 1, and never perturb live traffic.
func TestDeadInputsBlockAtStageOne(t *testing.T) {
	cfg := faultCfg(t, 16, 4, 4, 2)
	m, err := faults.Compile(cfg, faults.Set{Switches: []faults.SwitchID{{Stage: 1, Switch: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	net, err := NewNetworkWithFaults(cfg, nil, m)
	if err != nil {
		t.Fatal(err)
	}
	dest := make([]int, cfg.Inputs())
	for i := range dest {
		dest[i] = i % cfg.Outputs()
	}
	outcomes, cs, err := net.RouteCycle(dest)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Offered != cfg.Inputs() {
		t.Fatalf("offered %d, want %d (dead inputs still count as offered)", cs.Offered, cfg.Inputs())
	}
	for i := 0; i < cfg.A; i++ {
		if outcomes[i].Delivered() || outcomes[i].BlockedStage != 1 {
			t.Fatalf("input %d on the dead switch: outcome %+v, want blocked at stage 1", i, outcomes[i])
		}
	}
	if cs.Blocked[0] < cfg.A {
		t.Fatalf("stage-1 blocked %d, want at least the %d dead inputs", cs.Blocked[0], cfg.A)
	}
}

// TestSingleFaultMatchesExpectedDegradation is the analytic cross-check:
// for single-fault cases the measured mean bandwidth must track the
// per-wire generalization of the Theorem 3 recursion about as closely
// as the unfaulted closed form tracks the unfaulted simulator.
func TestSingleFaultMatchesExpectedDegradation(t *testing.T) {
	cfg := faultCfg(t, 16, 4, 4, 2)
	singles := []struct {
		name string
		set  faults.Set
	}{
		{"none", faults.Set{}},
		{"one-wire", faults.Set{Wires: []faults.WireID{{Boundary: 1, Wire: 7}}}},
		{"one-port", faults.Set{Ports: []faults.PortID{{Stage: 1, Switch: 2, Bucket: 1, Wire: 0}}}},
		{"one-output", faults.Set{Ports: []faults.PortID{{Stage: cfg.L + 1, Switch: 3, Bucket: 2, Wire: 0}}}},
		{"one-switch-stage2", faults.Set{Switches: []faults.SwitchID{{Stage: 2, Switch: 1}}}},
		{"one-input-switch", faults.Set{Switches: []faults.SwitchID{{Stage: 1, Switch: 3}}}},
	}
	const cycles = 3000
	for _, tc := range singles {
		t.Run(tc.name, func(t *testing.T) {
			m, err := faults.Compile(cfg, tc.set)
			if err != nil {
				t.Fatal(err)
			}
			net, err := NewNetworkWithFaults(cfg, nil, m)
			if err != nil {
				t.Fatal(err)
			}
			gen := traffic.Uniform{Rate: 1, Rng: xrand.New(12345)}
			dest := make([]int, cfg.Inputs())
			outcomes := make([]Outcome, cfg.Inputs())
			var delivered int64
			for cycle := 0; cycle < cycles; cycle++ {
				gen.GenerateInto(dest, cfg.Outputs())
				cs, err := net.RouteCycleInto(dest, outcomes)
				if err != nil {
					t.Fatal(err)
				}
				delivered += int64(cs.Delivered)
			}
			measured := float64(delivered) / cycles
			expected := faults.ExpectedUniformBandwidth(m, 1)
			if rel := math.Abs(measured-expected) / expected; rel > 0.05 {
				t.Errorf("measured bandwidth %.2f vs expected %.2f (%.1f%% off)", measured, expected, rel*100)
			}
		})
	}
}
