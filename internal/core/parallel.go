package core

import (
	"runtime"
	"sync"
)

// SetParallelism configures RouteCycle to arbitrate the switches of each
// stage across up to n goroutines. Switches within a stage are mutually
// independent — they share no wires, no arbitration state and no message
// ownership — so the parallel result is bit-identical to the serial one.
// n <= 1 restores serial operation; n <= 0 selects GOMAXPROCS.
//
// SetParallelism instantiates every per-switch arbiter eagerly (the lazy
// path would race on the factory when workers > 1), so stateful
// factories observe all their calls up front, in deterministic
// stage/switch order, regardless of the worker count that results.
//
// Performance note: on the geometries evaluated in this repository
// (up to 16K ports) stage-level parallelism does NOT pay off — after the
// interstage shuffle, neighbouring switches write to scattered slots of
// the shared line/outcome arrays and the workers bottleneck on cache
// traffic (see BenchmarkRouteCycleSerialVsParallel). The knob is kept
// because it is correct, race-clean and useful for very wide switches;
// for Monte-Carlo throughput, parallelize across independent runs
// instead (simulate.MeasureUniformPAParallel).
func (n *Network) SetParallelism(workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n.workers = workers
	for s := 1; s <= n.cfg.Stages(); s++ {
		for sw := range n.arbiters[s-1] {
			if n.arbiters[s-1][sw] == nil {
				n.arbiters[s-1][sw] = n.factory()
			}
		}
	}
	if workers > 1 && len(n.wscratch) < workers {
		n.wscratch = make([]stageScratch, workers)
		for w := range n.wscratch {
			n.wscratch[w] = newStageScratch(n.cfg)
		}
	}
}

// routeStageParallel fans the routeStage kernel out over the configured
// worker count: each worker owns a contiguous switch range and a private
// stageScratch, and the per-worker blocked/delivered tallies are merged
// after the barrier.
func (n *Network) routeStageParallel(stage int, outcomes []Outcome) (blocked, delivered int, err error) {
	switches := n.cfg.SwitchesInStage(stage)
	workers := n.workers
	if workers > switches {
		workers = switches
	}
	type result struct {
		blocked   int
		delivered int
		err       error
	}
	results := make([]result, workers)
	var wg sync.WaitGroup
	chunk := (switches + workers - 1) / workers
	for wkr := 0; wkr < workers; wkr++ {
		lo := wkr * chunk
		hi := lo + chunk
		if hi > switches {
			hi = switches
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(wkr, lo, hi int) {
			defer wg.Done()
			res := &results[wkr]
			res.blocked, res.delivered, res.err = n.routeStage(stage, lo, hi, outcomes, &n.wscratch[wkr])
		}(wkr, lo, hi)
	}
	wg.Wait()
	for _, r := range results {
		if r.err != nil {
			return 0, 0, r.err
		}
		blocked += r.blocked
		delivered += r.delivered
	}
	return blocked, delivered, nil
}
