package core

import (
	"fmt"
	"runtime"
	"sync"

	"edn/internal/switchfab"
)

// SetParallelism configures RouteCycle to arbitrate the switches of each
// stage across up to n goroutines. Switches within a stage are mutually
// independent — they share no wires, no arbitration state and no message
// ownership — so the parallel result is bit-identical to the serial one.
// n <= 1 restores serial operation; n <= 0 selects GOMAXPROCS.
//
// Parallel mode instantiates every per-switch arbiter eagerly (the lazy
// path would race on the factory), so stateful factories observe all
// their calls up front, in deterministic stage/switch order.
//
// Performance note: on the geometries evaluated in this repository
// (up to 16K ports) stage-level parallelism does NOT pay off — after the
// interstage shuffle, neighbouring switches write to scattered slots of
// the shared line/outcome arrays and the workers bottleneck on cache
// traffic (see BenchmarkRouteCycleSerialVsParallel). The knob is kept
// because it is correct, race-clean and useful for very wide switches;
// for Monte-Carlo throughput, parallelize across independent runs
// instead (simulate.MeasureUniformPAParallel).
func (n *Network) SetParallelism(workers int) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	n.workers = workers
	if workers > 1 {
		for s := 1; s <= n.cfg.Stages(); s++ {
			for sw := range n.arbiters[s-1] {
				if n.arbiters[s-1][sw] == nil {
					n.arbiters[s-1][sw] = n.factory()
				}
			}
		}
	}
}

// routeStageParallel arbitrates one hyperbar or crossbar stage with the
// configured worker count. It mirrors the serial loops in RouteCycle;
// each worker owns a contiguous switch range, a private digit buffer and
// a private blocked counter, merged after the barrier.
func (n *Network) routeStageParallel(stage int, dest, line []int, outcomes []Outcome) (blocked, delivered int, err error) {
	cfg := n.cfg
	switches := cfg.SwitchesInStage(stage)
	isCrossbar := stage == cfg.L+1
	width := cfg.A
	if isCrossbar {
		width = cfg.C
	}
	var g interface{ Apply(int) int }
	if !isCrossbar {
		g = cfg.InterstageGamma(stage)
	}
	hb := cfg.Hyperbar()
	xb := cfg.OutputCrossbar()

	workers := n.workers
	if workers > switches {
		workers = switches
	}
	type result struct {
		blocked   int
		delivered int
		err       error
	}
	results := make([]result, workers)
	var wg sync.WaitGroup
	chunk := (switches + workers - 1) / workers
	for wkr := 0; wkr < workers; wkr++ {
		lo := wkr * chunk
		hi := lo + chunk
		if hi > switches {
			hi = switches
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(wkr, lo, hi int) {
			defer wg.Done()
			digits := make([]int, width)
			res := &results[wkr]
			for sw := lo; sw < hi; sw++ {
				base := sw * width
				busy := false
				for p := 0; p < width; p++ {
					owner := n.lineOwner[base+p]
					if owner == NoRequest {
						digits[p] = switchfab.Idle
						continue
					}
					busy = true
					if isCrossbar {
						digits[p] = dest[owner] % cfg.C
					} else {
						digits[p] = digitAt(dest[owner]/cfg.C, cfg.B, cfg.L-stage)
					}
				}
				if !busy {
					continue
				}
				var grants []int
				var routeErr error
				if isCrossbar {
					grants, _, routeErr = xb.Route(digits, n.arbiters[stage-1][sw])
				} else {
					grants, _, routeErr = hb.Route(digits, n.arbiters[stage-1][sw])
				}
				if routeErr != nil {
					res.err = fmt.Errorf("core: stage %d switch %d: %w", stage, sw, routeErr)
					return
				}
				for p, o := range grants {
					owner := n.lineOwner[base+p]
					if owner == NoRequest {
						continue
					}
					switch {
					case o == switchfab.Idle:
						line[owner] = NoRequest
						outcomes[owner] = Outcome{Output: NoRequest, BlockedStage: stage}
						res.blocked++
					case isCrossbar:
						outcomes[owner] = Outcome{Output: base + o}
						res.delivered++
					default:
						line[owner] = g.Apply(sw*(cfg.B*cfg.C) + o)
					}
				}
			}
		}(wkr, lo, hi)
	}
	wg.Wait()
	for _, r := range results {
		if r.err != nil {
			return 0, 0, r.err
		}
		blocked += r.blocked
		delivered += r.delivered
	}
	return blocked, delivered, nil
}
