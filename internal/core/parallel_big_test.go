package core

import (
	"testing"

	"edn/internal/topology"
	"edn/internal/xrand"
)

// BenchmarkRouteCycleBigNetwork compares serial and parallel cycle
// routing on a 16K-port EDN(64,16,4,3), where each stage carries enough
// independent switch work to amortize the fan-out barrier.
func BenchmarkRouteCycleBigNetwork(b *testing.B) {
	cfg, err := topology.New(64, 16, 4, 3)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(7)
	dest := make([]int, cfg.Inputs())
	for i := range dest {
		dest[i] = rng.Intn(cfg.Outputs())
	}
	for _, workers := range []int{1, 8} {
		name := "serial"
		if workers > 1 {
			name = "parallel8"
		}
		b.Run(name, func(b *testing.B) {
			n, err := NewNetwork(cfg, nil)
			if err != nil {
				b.Fatal(err)
			}
			if workers > 1 {
				n.SetParallelism(workers)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := n.RouteCycle(dest); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
