package core

import (
	"testing"

	"edn/internal/switchfab"
	"edn/internal/topology"
	"edn/internal/xrand"
)

// TestParallelMatchesSerial: switches within a stage are independent, so
// the parallel cycle must be bit-identical to the serial one — same
// outcomes, same per-stage blocking — across loads and geometries.
func TestParallelMatchesSerial(t *testing.T) {
	for _, dims := range [][4]int{{16, 4, 4, 2}, {64, 16, 4, 2}, {8, 4, 2, 3}, {8, 8, 1, 2}} {
		cfg, err := topology.New(dims[0], dims[1], dims[2], dims[3])
		if err != nil {
			t.Fatal(err)
		}
		serial, err := NewNetwork(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := NewNetwork(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		parallel.SetParallelism(4)

		rng := xrand.New(55)
		dest := make([]int, cfg.Inputs())
		for trial := 0; trial < 20; trial++ {
			for i := range dest {
				if rng.Bool(0.8) {
					dest[i] = rng.Intn(cfg.Outputs())
				} else {
					dest[i] = NoRequest
				}
			}
			so, ss, err := serial.RouteCycle(dest)
			if err != nil {
				t.Fatal(err)
			}
			po, ps, err := parallel.RouteCycle(dest)
			if err != nil {
				t.Fatal(err)
			}
			if ss.Delivered != ps.Delivered || ss.Offered != ps.Offered {
				t.Fatalf("%v trial %d: stats diverge: %+v vs %+v", cfg, trial, ss, ps)
			}
			for s := range ss.Blocked {
				if ss.Blocked[s] != ps.Blocked[s] {
					t.Fatalf("%v trial %d: stage %d blocking %d vs %d", cfg, trial, s+1, ss.Blocked[s], ps.Blocked[s])
				}
			}
			for i := range so {
				if so[i] != po[i] {
					t.Fatalf("%v trial %d input %d: outcome %+v vs %+v", cfg, trial, i, so[i], po[i])
				}
			}
		}
	}
}

// TestParallelStatefulArbiters: round-robin arbiters keep per-switch
// state; the parallel engine must produce the same sequence of grants as
// the serial one across consecutive cycles.
func TestParallelStatefulArbiters(t *testing.T) {
	cfg, err := topology.New(16, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	factory := func() switchfab.Arbiter { return &switchfab.RoundRobinArbiter{} }
	serial, err := NewNetwork(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := NewNetwork(cfg, factory)
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetParallelism(3)

	dest := make([]int, cfg.Inputs())
	for i := range dest {
		dest[i] = i % cfg.Outputs()
	}
	for cycle := 0; cycle < 10; cycle++ {
		so, _, err := serial.RouteCycle(dest)
		if err != nil {
			t.Fatal(err)
		}
		po, _, err := parallel.RouteCycle(dest)
		if err != nil {
			t.Fatal(err)
		}
		for i := range so {
			if so[i] != po[i] {
				t.Fatalf("cycle %d input %d: %+v vs %+v", cycle, i, so[i], po[i])
			}
		}
	}
}

func TestSetParallelismDefaults(t *testing.T) {
	cfg, err := topology.New(16, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	n, err := NewNetwork(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	n.SetParallelism(0) // GOMAXPROCS
	if n.workers < 1 {
		t.Fatalf("workers = %d", n.workers)
	}
	// All arbiters eagerly instantiated.
	for s := 1; s <= cfg.Stages(); s++ {
		for sw, arb := range n.arbiters[s-1] {
			if arb == nil {
				t.Fatalf("stage %d switch %d arbiter not instantiated", s, sw)
			}
		}
	}
	// And the network still routes correctly.
	dest := make([]int, cfg.Inputs())
	for i := range dest {
		dest[i] = NoRequest
	}
	dest[3] = 42
	out, _, err := n.RouteCycle(dest)
	if err != nil {
		t.Fatal(err)
	}
	if out[3].Output != 42 {
		t.Fatalf("parallel single-message delivery failed: %+v", out[3])
	}
}

func BenchmarkRouteCycleSerialVsParallel(b *testing.B) {
	cfg, err := topology.New(64, 16, 4, 2)
	if err != nil {
		b.Fatal(err)
	}
	rng := xrand.New(7)
	dest := make([]int, cfg.Inputs())
	for i := range dest {
		dest[i] = rng.Intn(cfg.Outputs())
	}
	for _, workers := range []int{1, 4} {
		name := "serial"
		if workers > 1 {
			name = "parallel4"
		}
		b.Run(name, func(b *testing.B) {
			n, err := NewNetwork(cfg, nil)
			if err != nil {
				b.Fatal(err)
			}
			if workers > 1 {
				n.SetParallelism(workers)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := n.RouteCycle(dest); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
