package core

import (
	"fmt"
	"testing"

	"edn/internal/faults"
	"edn/internal/switchfab"
	"edn/internal/topology"
	"edn/internal/xrand"
)

// epochMasks draws a fault timeline for cfg: a sequence of compiled
// masks including failures, partial repairs and a full repair (the
// empty mask), so an incremental consumer exercises both directions of
// the swap.
func epochMasks(t testing.TB, cfg topology.Config, mode faults.Mode, seed uint64, epochs int) []*faults.Masks {
	t.Helper()
	rng := xrand.New(seed)
	masks := make([]*faults.Masks, epochs)
	for e := range masks {
		var set faults.Set
		switch {
		case e == epochs/2:
			// Mid-life full repair: the empty mask must restore the
			// fast paths exactly.
			set = faults.Set{}
		case e%3 == 2:
			// A correlated blast on top of Bernoulli churn.
			set = faults.Bernoulli(cfg, mode, 0.05+0.1*rng.Float64(), rng)
			blast, err := faults.Blast(cfg, 1+rng.Intn(cfg.L+1), rng.Intn(cfg.SwitchesInStage(1)), 1)
			if err != nil {
				t.Fatal(err)
			}
			set.Switches = append(set.Switches, blast.Switches...)
		default:
			set = faults.Bernoulli(cfg, mode, 0.05+0.1*rng.Float64(), rng)
		}
		m, err := faults.Compile(cfg, set)
		if err != nil {
			t.Fatal(err)
		}
		masks[e] = m
	}
	return masks
}

// TestUpdateFaultsMatchesRebuildPerEpoch is the incremental-mask
// property test: one network receiving UpdateFaults at every epoch
// boundary must route every cycle bit-for-bit like a network freshly
// rebuilt with that epoch's masks. The engine is memoryless across
// cycles under the stateless priority arbitration (fused and
// non-fused), so rebuild-from-scratch is well-defined; geometries
// cover expanded, wide-switch and delta-corner shapes, and the mask
// timeline includes a mid-life full repair.
func TestUpdateFaultsMatchesRebuildPerEpoch(t *testing.T) {
	geometries := []struct{ a, b, c, l int }{
		{4, 4, 2, 2}, {8, 2, 4, 2}, {16, 4, 4, 2}, {4, 4, 1, 2},
	}
	factories := []struct {
		name    string
		factory ArbiterFactory
	}{
		{"priority", nil},
		{"explicit-priority", PriorityArbiters},
	}
	const epochs, cyclesPerEpoch = 9, 12
	for _, g := range geometries {
		cfg := faultCfg(t, g.a, g.b, g.c, g.l)
		for _, mode := range []faults.Mode{faults.WireFaults, faults.MixedFaults} {
			masks := epochMasks(t, cfg, mode, 0x1234+uint64(g.a*g.l), epochs)
			for _, fac := range factories {
				t.Run(fmt.Sprintf("%v/%v/%s", cfg, mode, fac.name), func(t *testing.T) {
					inc, err := NewNetwork(cfg, fac.factory)
					if err != nil {
						t.Fatal(err)
					}
					rng := xrand.New(77)
					dest := make([]int, cfg.Inputs())
					incOut := make([]Outcome, cfg.Inputs())
					refOut := make([]Outcome, cfg.Inputs())
					for e, m := range masks {
						if err := inc.UpdateFaults(m); err != nil {
							t.Fatal(err)
						}
						ref, err := NewNetworkWithFaults(cfg, fac.factory, m)
						if err != nil {
							t.Fatal(err)
						}
						if inc.Faulted() != ref.Faulted() {
							t.Fatalf("epoch %d: Faulted() %v vs rebuilt %v", e, inc.Faulted(), ref.Faulted())
						}
						for c := 0; c < cyclesPerEpoch; c++ {
							for i := range dest {
								if rng.Bool(0.9) {
									dest[i] = rng.Intn(cfg.Outputs())
								} else {
									dest[i] = NoRequest
								}
							}
							ics, err := inc.RouteCycleInto(dest, incOut)
							if err != nil {
								t.Fatal(err)
							}
							rcs, err := ref.RouteCycleInto(dest, refOut)
							if err != nil {
								t.Fatal(err)
							}
							if ics.Offered != rcs.Offered || ics.Delivered != rcs.Delivered {
								t.Fatalf("epoch %d cycle %d: stats %+v vs rebuilt %+v", e, c, ics, rcs)
							}
							for s := range ics.Blocked {
								if ics.Blocked[s] != rcs.Blocked[s] {
									t.Fatalf("epoch %d cycle %d: blocked[%d] %d vs %d", e, c, s, ics.Blocked[s], rcs.Blocked[s])
								}
							}
							for i := range incOut {
								if incOut[i] != refOut[i] {
									t.Fatalf("epoch %d cycle %d input %d: %+v vs rebuilt %+v", e, c, i, incOut[i], refOut[i])
								}
							}
						}
					}
				})
			}
		}
	}
}

// TestUpdateFaultsMatchesConstructionPerMask covers the stateful
// arbiters the rebuild-per-epoch reference cannot (a rebuilt arbiter
// starts fresh while an incremental one has history): for every mask in
// a timeline, a virgin network that receives the mask via UpdateFaults
// must match a network constructed with it directly — same factory
// semantics, same virgin arbiter state — across a burst of cycles.
func TestUpdateFaultsMatchesConstructionPerMask(t *testing.T) {
	cfg := faultCfg(t, 8, 4, 2, 2)
	factories := []struct {
		name    string
		factory func(seed uint64) ArbiterFactory
	}{
		{"roundrobin", func(uint64) ArbiterFactory {
			return func() switchfab.Arbiter { return &switchfab.RoundRobinArbiter{} }
		}},
		{"random", func(seed uint64) ArbiterFactory {
			rng := xrand.New(seed)
			return func() switchfab.Arbiter { return switchfab.RandomArbiter{Perm: rng.Split().Perm} }
		}},
	}
	masks := epochMasks(t, cfg, faults.MixedFaults, 42, 6)
	for _, fac := range factories {
		t.Run(fac.name, func(t *testing.T) {
			for e, m := range masks {
				// Identical factory seeds: serial networks instantiate
				// arbiters lazily in deterministic order, so the two draw
				// identical per-switch streams.
				inc, err := NewNetwork(cfg, fac.factory(uint64(e)+9))
				if err != nil {
					t.Fatal(err)
				}
				if err := inc.UpdateFaults(m); err != nil {
					t.Fatal(err)
				}
				ref, err := NewNetworkWithFaults(cfg, fac.factory(uint64(e)+9), m)
				if err != nil {
					t.Fatal(err)
				}
				rng := xrand.New(uint64(e)*13 + 1)
				dest := make([]int, cfg.Inputs())
				incOut := make([]Outcome, cfg.Inputs())
				refOut := make([]Outcome, cfg.Inputs())
				for c := 0; c < 10; c++ {
					for i := range dest {
						dest[i] = rng.Intn(cfg.Outputs())
					}
					ics, err := inc.RouteCycleInto(dest, incOut)
					if err != nil {
						t.Fatal(err)
					}
					rcs, err := ref.RouteCycleInto(dest, refOut)
					if err != nil {
						t.Fatal(err)
					}
					if ics.Delivered != rcs.Delivered {
						t.Fatalf("mask %d cycle %d: delivered %d vs %d", e, c, ics.Delivered, rcs.Delivered)
					}
					for i := range incOut {
						if incOut[i] != refOut[i] {
							t.Fatalf("mask %d cycle %d input %d: %+v vs %+v", e, c, i, incOut[i], refOut[i])
						}
					}
				}
			}
		})
	}
}

// TestUpdateFaultsConfigMismatch pins the error path: masks for another
// geometry are refused and the previous masks stay in effect.
func TestUpdateFaultsConfigMismatch(t *testing.T) {
	cfg := faultCfg(t, 4, 4, 2, 2)
	other := faultCfg(t, 8, 2, 4, 2)
	net, err := NewNetwork(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m := faults.MustCompile(cfg, faults.Bernoulli(cfg, faults.WireFaults, 0.2, xrand.New(1)))
	if err := net.UpdateFaults(m); err != nil {
		t.Fatal(err)
	}
	wrong := faults.MustCompile(other, faults.Bernoulli(other, faults.WireFaults, 0.2, xrand.New(1)))
	if err := net.UpdateFaults(wrong); err == nil {
		t.Fatal("masks for another config should be refused")
	}
	if !net.Faulted() {
		t.Error("failed update cleared the previous masks")
	}
}

// TestUpdateFaultsZeroAlloc pins the epoch hot path: swapping
// precompiled masks and routing allocates nothing.
func TestUpdateFaultsZeroAlloc(t *testing.T) {
	cfg := faultCfg(t, 16, 4, 4, 2)
	net, err := NewNetwork(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	m1 := faults.MustCompile(cfg, faults.Bernoulli(cfg, faults.WireFaults, 0.1, xrand.New(3)))
	m2 := faults.MustCompile(cfg, faults.Bernoulli(cfg, faults.WireFaults, 0.2, xrand.New(4)))
	empty := faults.MustCompile(cfg, faults.Set{})
	masks := []*faults.Masks{m1, m2, empty}
	dest := make([]int, cfg.Inputs())
	out := make([]Outcome, cfg.Inputs())
	rng := xrand.New(5)
	for i := range dest {
		dest[i] = rng.Intn(cfg.Outputs())
	}
	i := 0
	allocs := testing.AllocsPerRun(100, func() {
		if err := net.UpdateFaults(masks[i%len(masks)]); err != nil {
			t.Fatal(err)
		}
		if _, err := net.RouteCycleInto(dest, out); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if allocs != 0 {
		t.Errorf("mask swap + route allocated %.1f times per epoch", allocs)
	}
}
