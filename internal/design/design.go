// Package design explores the EDN design space that Sections 2-3 open
// up: for a required machine size, every square EDN(bc,b,c,l) geometry
// is a candidate, trading switch width and bucket capacity against
// crosspoint and wire cost. The paper's headline claim is that members
// of the family reach crossbar-like acceptance at delta-like cost; this
// package makes that trade-off queryable — enumerate the candidates,
// rank them, and extract the cost/performance Pareto front.
package design

import (
	"fmt"
	"sort"

	"edn/internal/analytic"
	"edn/internal/topology"
)

// Point is one candidate network evaluated on the three axes the paper
// uses: acceptance at full load (Equation 4), crosspoint cost
// (Equation 2) and wire cost (Equation 3).
type Point struct {
	Config      topology.Config
	PA1         float64
	Crosspoints int64
	Wires       int64
}

// String renders the point compactly.
func (p Point) String() string {
	return fmt.Sprintf("%v: PA(1)=%.4f, %d crosspoints, %d wires", p.Config, p.PA1, p.Crosspoints, p.Wires)
}

// Enumerate returns every square EDN(bc,b,c,l) with exactly `ports`
// inputs and a switch no wider than maxSwitch (a = b*c <= maxSwitch),
// evaluated and sorted by descending PA(1). The crossbar appears when
// maxSwitch >= ports; the delta families always do.
func Enumerate(ports, maxSwitch int) ([]Point, error) {
	if ports < 2 || ports&(ports-1) != 0 {
		return nil, fmt.Errorf("design: ports=%d must be a power of two >= 2", ports)
	}
	if maxSwitch < 2 {
		return nil, fmt.Errorf("design: maxSwitch=%d must be at least 2", maxSwitch)
	}
	var points []Point
	for b := 2; b <= maxSwitch; b *= 2 {
		for c := 1; b*c <= maxSwitch; c *= 2 {
			// Square network: inputs = b^l * c; find an integral l.
			rest := ports / c
			if rest*c != ports {
				continue
			}
			l, ok := logBase(rest, b)
			if !ok || l < 1 {
				continue
			}
			cfg, err := topology.New(b*c, b, c, l)
			if err != nil {
				continue // size guard; skip
			}
			points = append(points, Point{
				Config:      cfg,
				PA1:         analytic.PA(cfg, 1),
				Crosspoints: cfg.CrosspointCount(),
				Wires:       cfg.WireCount(),
			})
		}
	}
	if len(points) == 0 {
		return nil, fmt.Errorf("design: no square EDN with %d ports and switches <= %d", ports, maxSwitch)
	}
	sort.Slice(points, func(i, j int) bool {
		if points[i].PA1 != points[j].PA1 {
			return points[i].PA1 > points[j].PA1
		}
		return points[i].Crosspoints < points[j].Crosspoints
	})
	return points, nil
}

// BestUnderBudget returns the highest-PA point whose crosspoint cost
// stays within budget, and whether one exists.
func BestUnderBudget(points []Point, budget int64) (Point, bool) {
	best := Point{PA1: -1}
	for _, p := range points {
		if p.Crosspoints <= budget && p.PA1 > best.PA1 {
			best = p
		}
	}
	return best, best.PA1 >= 0
}

// CheapestAtFloor returns the lowest-cost point with PA(1) >= floor, and
// whether one exists.
func CheapestAtFloor(points []Point, floor float64) (Point, bool) {
	var best Point
	found := false
	for _, p := range points {
		if p.PA1 < floor {
			continue
		}
		if !found || p.Crosspoints < best.Crosspoints {
			best = p
			found = true
		}
	}
	return best, found
}

// ParetoFront returns the points not dominated on (PA(1), crosspoints):
// a point is dominated if another has at least its acceptance for
// strictly less cost, or more acceptance for at most the same cost. The
// result is sorted by ascending cost (and therefore ascending PA).
func ParetoFront(points []Point) []Point {
	var front []Point
	for _, p := range points {
		dominated := false
		for _, q := range points {
			if q.Config == p.Config {
				continue
			}
			if (q.PA1 >= p.PA1 && q.Crosspoints < p.Crosspoints) ||
				(q.PA1 > p.PA1 && q.Crosspoints <= p.Crosspoints) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	sort.Slice(front, func(i, j int) bool { return front[i].Crosspoints < front[j].Crosspoints })
	return front
}

// logBase returns (log_base(v), true) when v is an exact power of base.
func logBase(v, base int) (int, bool) {
	if v < 1 || base < 2 {
		return 0, false
	}
	l := 0
	for v > 1 {
		if v%base != 0 {
			return 0, false
		}
		v /= base
		l++
	}
	return l, true
}
