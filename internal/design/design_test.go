package design

import (
	"testing"

	"edn/internal/topology"
)

func TestEnumerateValidation(t *testing.T) {
	if _, err := Enumerate(1000, 64); err == nil {
		t.Error("expected error for non-power-of-two ports")
	}
	if _, err := Enumerate(1024, 1); err == nil {
		t.Error("expected error for tiny switch cap")
	}
	if _, err := Enumerate(0, 64); err == nil {
		t.Error("expected error for zero ports")
	}
}

func TestEnumerateContainsKnownDesigns(t *testing.T) {
	points, err := Enumerate(1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{
		"EDN(64,16,4,2)": false, // the MasPar router
		"EDN(2,2,1,10)":  false, // the binary delta
		"EDN(4,2,2,9)":   false,
	}
	for _, p := range points {
		name := p.Config.String()
		if _, ok := want[name]; ok {
			want[name] = true
		}
		if p.Config.Inputs() != 1024 || !p.Config.IsSquare() {
			t.Fatalf("non-square or wrong-size candidate %v", p.Config)
		}
		if p.Config.A > 64 {
			t.Fatalf("switch too wide: %v", p.Config)
		}
		if p.PA1 <= 0 || p.PA1 > 1 {
			t.Fatalf("bad PA for %v: %g", p.Config, p.PA1)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("expected candidate %s missing", name)
		}
	}
	// Sorted by descending PA.
	for i := 1; i < len(points); i++ {
		if points[i].PA1 > points[i-1].PA1+1e-12 {
			t.Fatalf("points not sorted by PA at %d", i)
		}
	}
}

func TestCrossbarAppearsOnlyWithWideSwitches(t *testing.T) {
	narrow, err := Enumerate(256, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range narrow {
		if p.Config.IsCrossbarNetwork() {
			t.Fatalf("crossbar %v should not fit in 64-wide switches", p.Config)
		}
	}
	wide, err := Enumerate(256, 256)
	if err != nil {
		t.Fatal(err)
	}
	foundXbar := false
	for _, p := range wide {
		if p.Config.IsCrossbarNetwork() {
			foundXbar = true
			// The crossbar tops the PA ranking.
			if p.Config != wide[0].Config {
				t.Errorf("crossbar should rank first, got %v", wide[0].Config)
			}
		}
	}
	if !foundXbar {
		t.Error("crossbar missing from wide enumeration")
	}
}

func TestBestUnderBudget(t *testing.T) {
	points, err := Enumerate(1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	var cheapest int64 = 1 << 62
	for _, p := range points {
		if p.Crosspoints < cheapest {
			cheapest = p.Crosspoints
		}
	}
	if _, ok := BestUnderBudget(points, cheapest-1); ok {
		t.Error("sub-minimal budget should find nothing")
	}
	best, ok := BestUnderBudget(points, 1<<62)
	if !ok {
		t.Fatal("unlimited budget found nothing")
	}
	if best.PA1 != points[0].PA1 {
		t.Errorf("unlimited budget should return the top point, got %v", best)
	}
	// A mid budget returns something affordable and maximal among the
	// affordable.
	mid := (cheapest + points[0].Crosspoints) / 2
	p, ok := BestUnderBudget(points, mid)
	if !ok {
		t.Fatal("mid budget found nothing")
	}
	if p.Crosspoints > mid {
		t.Errorf("selected point over budget: %v", p)
	}
	for _, q := range points {
		if q.Crosspoints <= mid && q.PA1 > p.PA1 {
			t.Errorf("better affordable point exists: %v beats %v", q, p)
		}
	}
}

func TestCheapestAtFloor(t *testing.T) {
	points, err := Enumerate(1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := CheapestAtFloor(points, 0.999); ok {
		t.Error("no 1024-port EDN with 64-wide switches reaches PA 0.999")
	}
	p, ok := CheapestAtFloor(points, 0.5)
	if !ok {
		t.Fatal("no candidate at floor 0.5; expected at least the MasPar design")
	}
	if p.PA1 < 0.5 {
		t.Errorf("selected point below floor: %v", p)
	}
	for _, q := range points {
		if q.PA1 >= 0.5 && q.Crosspoints < p.Crosspoints {
			t.Errorf("cheaper point at floor exists: %v beats %v", q, p)
		}
	}
}

func TestParetoFront(t *testing.T) {
	points, err := Enumerate(1024, 64)
	if err != nil {
		t.Fatal(err)
	}
	front := ParetoFront(points)
	if len(front) == 0 || len(front) > len(points) {
		t.Fatalf("front size %d of %d", len(front), len(points))
	}
	// Ascending in both cost and PA along the front, with no dominated
	// members.
	for i := 1; i < len(front); i++ {
		if front[i].Crosspoints < front[i-1].Crosspoints {
			t.Fatal("front not sorted by cost")
		}
		if front[i].PA1 <= front[i-1].PA1 {
			t.Fatalf("front member %v does not improve PA over %v", front[i], front[i-1])
		}
	}
	for _, f := range front {
		for _, q := range points {
			if (q.PA1 >= f.PA1 && q.Crosspoints < f.Crosspoints) ||
				(q.PA1 > f.PA1 && q.Crosspoints <= f.Crosspoints) {
				t.Fatalf("front member %v dominated by %v", f, q)
			}
		}
	}
}

func TestLogBase(t *testing.T) {
	cases := []struct {
		v, base, want int
		ok            bool
	}{
		{1, 2, 0, true}, {8, 2, 3, true}, {81, 3, 4, true},
		{6, 2, 0, false}, {0, 2, 0, false}, {8, 1, 0, false},
	}
	for _, c := range cases {
		got, ok := logBase(c.v, c.base)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("logBase(%d,%d) = (%d,%v), want (%d,%v)", c.v, c.base, got, ok, c.want, c.ok)
		}
	}
}

func TestPointString(t *testing.T) {
	cfg, err := topology.New(64, 16, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := Point{Config: cfg, PA1: 0.5437, Crosspoints: 135168, Wires: 4096}
	if s := p.String(); s == "" {
		t.Error("empty point rendering")
	}
}
