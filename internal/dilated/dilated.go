// Package dilated models d-dilated delta networks (Szymanski & Hamacher),
// the multipath alternative the paper's introduction compares EDNs
// against: a classical radix-b delta network whose every internal link is
// replicated d times. Like an EDN, a dilated network offers multiple
// paths; unlike an EDN, the extra wires are *added on top of* the port
// count instead of being absorbed into it, so — as Section 1 notes — a
// d-dilated network carries d times the wires of the equivalent-stage EDN
// with the same number of inputs. This package provides the cost and
// acceptance models that quantify that claim for the ablation benchmarks.
package dilated

import (
	"fmt"
	"math"

	"edn/internal/analytic"
	"edn/internal/topology"
)

// Config is a square radix-B delta network of L stages whose internal
// links are D-wide. Network ports are single wires: B^L inputs and B^L
// outputs.
type Config struct {
	B int // switch radix (b x b switches, square)
	D int // link dilation
	L int // stages
}

// New validates and returns a d-dilated delta configuration.
func New(b, d, l int) (Config, error) {
	cfg := Config{B: b, D: d, L: l}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// Validate checks the configuration (powers of two, like the EDN side).
func (cfg Config) Validate() error {
	switch {
	case !isPow2(cfg.B) || cfg.B < 2:
		return fmt.Errorf("dilated: radix b=%d must be a power of two >= 2", cfg.B)
	case !isPow2(cfg.D):
		return fmt.Errorf("dilated: dilation d=%d must be a positive power of two", cfg.D)
	case cfg.L < 1:
		return fmt.Errorf("dilated: l=%d must be at least 1", cfg.L)
	}
	if bits := cfg.L * log2(cfg.B); bits > 40 {
		return fmt.Errorf("dilated: network with %d address bits is too large", bits)
	}
	return nil
}

// Ports returns the number of input (and output) terminals, B^L.
func (cfg Config) Ports() int { return pow(cfg.B, cfg.L) }

// WiresBetweenStages returns the wire count between consecutive stages:
// D * B^L for every interior boundary.
func (cfg Config) WiresBetweenStages() int { return cfg.D * cfg.Ports() }

// WireCount returns the total wire cost, counted like Equation 3: one
// wire per input and output terminal plus the dilated interstage links.
func (cfg Config) WireCount() int64 {
	interior := int64(cfg.L-1) * int64(cfg.WiresBetweenStages())
	return interior + 2*int64(cfg.Ports())
}

// CrosspointCount returns the crosspoint cost: stage 1 uses B-input
// switches fed by single-wire ports with D-wide output groups
// (B*B*D crosspoints each, the H(b -> b x d) form); stages 2..L use
// (B*D)-input switches (B*D*B*D crosspoints each).
func (cfg Config) CrosspointCount() int64 {
	perStageSwitches := int64(pow(cfg.B, cfg.L-1))
	first := perStageSwitches * int64(cfg.B*cfg.B*cfg.D)
	rest := int64(cfg.L-1) * perStageSwitches * int64(cfg.B*cfg.D*cfg.B*cfg.D)
	return first + rest
}

// String renders the configuration.
func (cfg Config) String() string {
	return fmt.Sprintf("%d-dilated delta(b=%d,l=%d)", cfg.D, cfg.B, cfg.L)
}

// PA returns the probability of acceptance under the Section 3.2 traffic
// assumptions, built from the same bucket-acceptance primitive as the EDN
// model: stage 1 is an H(b -> b x d) switch, interior stages are
// H(bd -> b x d), and each single-wire output port accepts one of the up
// to d arrivals on its final link group.
func (cfg Config) PA(r float64) float64 {
	if r == 0 {
		return 1
	}
	// Per-wire rate through the stages.
	ri := analytic.BucketAcceptance(cfg.B, cfg.B, cfg.D, r) / float64(cfg.D)
	for i := 2; i <= cfg.L; i++ {
		ri = analytic.BucketAcceptance(cfg.B*cfg.D, cfg.B, cfg.D, ri) / float64(cfg.D)
	}
	// Output port: d wires, one survivor.
	rOut := 1 - math.Pow(1-ri, float64(cfg.D))
	return rOut / r
}

// EquivalentEDN returns the EDN with the same number of inputs and the
// same switching radix/capacity: EDN(b*d, b, d, l') with b^l' * d = b^l.
// It errors when the dilation is not a power of the radix (no EDN of
// integral depth matches the port count exactly).
func (cfg Config) EquivalentEDN() (topology.Config, error) {
	// Solve b^lp * d = b^l  =>  lp = l - log_b(d).
	logB := log2(cfg.B)
	logD := log2(cfg.D)
	if logD%logB != 0 {
		return topology.Config{}, fmt.Errorf("dilated: dilation %d is not a power of radix %d", cfg.D, cfg.B)
	}
	lp := cfg.L - logD/logB
	if lp < 1 {
		return topology.Config{}, fmt.Errorf("dilated: network too shallow for an equivalent EDN (l'=%d)", lp)
	}
	return topology.New(cfg.B*cfg.D, cfg.B, cfg.D, lp)
}

// Counterpart returns the dilated delta network comparable to the
// given EDN: the same number of input ports and a dilation equal to
// the EDN's bucket capacity c, so a fault fraction applied to the
// dilated sub-wires and to the EDN's interstage wires kills the same
// share of each network's redundancy. The radix prefers the EDN's own
// b when the port count is an exact power of it (the EquivalentEDN
// relation, inverted) and falls back to radix 2, which always divides
// a power-of-two port count.
func Counterpart(edn topology.Config) (Config, error) {
	ports := edn.Inputs()
	d := edn.C
	if k, ok := logExact(edn.B, ports); ok {
		return New(edn.B, d, k)
	}
	if k, ok := logExact(2, ports); ok {
		return New(2, d, k)
	}
	return Config{}, fmt.Errorf("dilated: no counterpart for %v (%d ports)", edn, ports)
}

// logExact returns k with base^k == v, if one exists.
func logExact(base, v int) (int, bool) {
	if base < 2 || v < base {
		return 0, false
	}
	k := 0
	for v > 1 {
		if v%base != 0 {
			return 0, false
		}
		v /= base
		k++
	}
	return k, true
}

// WireRatioVersusEDN returns the interstage wire ratio of this dilated
// network over its equivalent EDN — the Section 1 claim says this is d.
func (cfg Config) WireRatioVersusEDN() (float64, error) {
	edn, err := cfg.EquivalentEDN()
	if err != nil {
		return 0, err
	}
	if edn.Inputs() != cfg.Ports() {
		return 0, fmt.Errorf("dilated: equivalence broken: %d vs %d ports", edn.Inputs(), cfg.Ports())
	}
	return float64(cfg.WiresBetweenStages()) / float64(edn.WiresAfterStage(1)), nil
}

func isPow2(v int) bool { return v > 0 && v&(v-1) == 0 }

func log2(v int) int {
	n := 0
	for v > 1 {
		v >>= 1
		n++
	}
	return n
}

func pow(base, exp int) int {
	r := 1
	for i := 0; i < exp; i++ {
		r *= base
	}
	return r
}
