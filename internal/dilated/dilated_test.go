package dilated

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		b, d, l int
		ok      bool
	}{
		{4, 4, 4, true},
		{2, 1, 3, true},
		{3, 2, 2, false},
		{4, 3, 2, false},
		{4, 2, 0, false},
		{2, 2, 60, false},
	}
	for _, c := range cases {
		_, err := New(c.b, c.d, c.l)
		if (err == nil) != c.ok {
			t.Errorf("New(%d,%d,%d) err=%v want ok=%v", c.b, c.d, c.l, err, c.ok)
		}
	}
}

func TestUndilatedMatchesDelta(t *testing.T) {
	// d=1 must collapse to the plain delta network acceptance.
	dd, err := New(4, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Patel's recursion for a square radix-4 delta.
	for _, r := range []float64{0.25, 0.5, 1} {
		ri := r
		for i := 0; i < 3; i++ {
			ri = 1 - math.Pow(1-ri/4, 4)
		}
		want := ri / r
		if got := dd.PA(r); math.Abs(got-want) > 1e-12 {
			t.Errorf("PA(%g) = %g, want delta %g", r, got, want)
		}
	}
}

func TestDilationImprovesPA(t *testing.T) {
	d1, _ := New(4, 1, 4)
	d2, _ := New(4, 2, 4)
	d4, _ := New(4, 4, 4)
	pa1, pa2, pa4 := d1.PA(1), d2.PA(1), d4.PA(1)
	if !(pa1 < pa2 && pa2 < pa4) {
		t.Errorf("dilation ordering violated: %g, %g, %g", pa1, pa2, pa4)
	}
}

// TestSection1WireClaim verifies the introduction's cost claim: a
// d-dilated delta uses exactly d times the interstage wires of the EDN
// with the same number of inputs.
func TestSection1WireClaim(t *testing.T) {
	cases := []struct{ b, d, l int }{
		{4, 4, 3}, {2, 2, 4}, {4, 1, 3}, {2, 4, 5},
	}
	for _, c := range cases {
		dd, err := New(c.b, c.d, c.l)
		if err != nil {
			t.Fatal(err)
		}
		ratio, err := dd.WireRatioVersusEDN()
		if err != nil {
			t.Fatalf("%v: %v", dd, err)
		}
		if math.Abs(ratio-float64(c.d)) > 1e-12 {
			t.Errorf("%v: wire ratio %g, want %d", dd, ratio, c.d)
		}
	}
}

func TestEquivalentEDNGeometry(t *testing.T) {
	dd, err := New(4, 4, 3) // 64 ports
	if err != nil {
		t.Fatal(err)
	}
	edn, err := dd.EquivalentEDN()
	if err != nil {
		t.Fatal(err)
	}
	if edn.Inputs() != dd.Ports() || edn.Outputs() != dd.Ports() {
		t.Errorf("equivalent EDN %v is %dx%d, want %d ports", edn, edn.Inputs(), edn.Outputs(), dd.Ports())
	}
	if edn.A != 16 || edn.B != 4 || edn.C != 4 || edn.L != 2 {
		t.Errorf("equivalent EDN = %v, want EDN(16,4,4,2)", edn)
	}
	// Dilation not a power of the radix: no equivalent.
	dd2, err := New(4, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dd2.EquivalentEDN(); err == nil {
		t.Error("expected no-equivalent error for d=2, b=4")
	}
	// Too shallow.
	dd3, err := New(4, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dd3.EquivalentEDN(); err == nil {
		t.Error("expected too-shallow error")
	}
}

func TestCostsArePositiveAndScale(t *testing.T) {
	small, _ := New(4, 2, 2)
	big, _ := New(4, 2, 3)
	if small.WireCount() <= 0 || small.CrosspointCount() <= 0 {
		t.Fatal("non-positive costs")
	}
	if big.WireCount() <= small.WireCount() {
		t.Error("wire cost should grow with l")
	}
	if big.CrosspointCount() <= small.CrosspointCount() {
		t.Error("crosspoint cost should grow with l")
	}
}

func TestPAZeroRate(t *testing.T) {
	dd, _ := New(4, 2, 3)
	if got := dd.PA(0); got != 1 {
		t.Errorf("PA(0) = %g, want 1", got)
	}
}
