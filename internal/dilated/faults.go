package dilated

import (
	"fmt"
	"math"

	"edn/internal/analytic"
	"edn/internal/xrand"
)

// SubWireID names one sub-wire of a dilated link group: Boundary in
// [1, L] (the D-wide groups after stage Boundary; boundary L's groups
// feed the single-wire output ports), Group in [0, Ports()) and Wire in
// [0, D). Killing sub-wires is the dilated network's counterpart of an
// EDN's dead interstage wires: the group survives while any sibling
// lives, with its capacity reduced.
type SubWireID struct {
	Boundary int
	Group    int
	Wire     int
}

// FaultSet is a declarative dilated fault specification: dead
// sub-wires. The zero value is the fault-free network. Duplicates are
// allowed and idempotent.
type FaultSet struct {
	SubWires []SubWireID
}

// IsZero reports whether the set names no faults.
func (s FaultSet) IsZero() bool { return len(s.SubWires) == 0 }

// BernoulliSubWires samples a fault set over cfg: each sub-wire of
// every dilated link group dies independently with probability p. The
// draw order is fixed (boundaries, then groups, then wires ascending),
// so a given (cfg, rng state) is reproducible.
func BernoulliSubWires(cfg Config, p float64, rng *xrand.Rand) FaultSet {
	var set FaultSet
	if p <= 0 {
		return set
	}
	for bd := 1; bd <= cfg.L; bd++ {
		for g := 0; g < cfg.Ports(); g++ {
			for w := 0; w < cfg.D; w++ {
				if rng.Bool(p) {
					set.SubWires = append(set.SubWires, SubWireID{Boundary: bd, Group: g, Wire: w})
				}
			}
		}
	}
	return set
}

// Degraded is a compiled dilated fault state: per-boundary group
// capacity histograms — weight[k] groups retain exactly k live
// sub-wires — the "per-stage capacity reduction" form the acceptance
// recursion consumes. Weights are float64 so the same representation
// carries both an exact compiled sample (integer weights) and the
// Binomial expectation of a fault fraction (ExpectedDegraded).
type Degraded struct {
	cfg  Config
	hist [][]float64 // [boundary-1][k], k in 0..D, weights summing to Ports()
	dead float64     // dead sub-wires (expected, for ExpectedDegraded)
}

// CompileFaults validates set against cfg and folds it into per-stage
// capacity histograms. A zero set compiles to the fault-free state.
func (cfg Config) CompileFaults(set FaultSet) (*Degraded, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	d := newDegraded(cfg)
	if set.IsZero() {
		return d, nil
	}
	// Distinct dead wires per group.
	deadIn := make(map[SubWireID]bool, len(set.SubWires))
	deadPerGroup := make(map[[2]int]int)
	for _, id := range set.SubWires {
		if id.Boundary < 1 || id.Boundary > cfg.L {
			return nil, fmt.Errorf("dilated: boundary %d out of range [1,%d]", id.Boundary, cfg.L)
		}
		if id.Group < 0 || id.Group >= cfg.Ports() {
			return nil, fmt.Errorf("dilated: group %d out of range [0,%d)", id.Group, cfg.Ports())
		}
		if id.Wire < 0 || id.Wire >= cfg.D {
			return nil, fmt.Errorf("dilated: sub-wire %d out of range [0,%d)", id.Wire, cfg.D)
		}
		if deadIn[id] {
			continue
		}
		deadIn[id] = true
		deadPerGroup[[2]int{id.Boundary, id.Group}]++
		d.dead++
	}
	for key, k := range deadPerGroup {
		row := d.hist[key[0]-1]
		row[cfg.D]--   // the group leaves the fully-live bin ...
		row[cfg.D-k]++ // ... for its reduced-capacity bin
	}
	return d, nil
}

// ExpectedDegraded returns the Binomial-expectation fault state at
// sub-wire death fraction f: every boundary's histogram is the exact
// distribution of Binomial(D, 1-f) live wires per group. It is the
// smooth analytic counterpart of compiling a BernoulliSubWires sample —
// the natural curve to plot against an EDN availability sweep at the
// same per-wire fault fraction.
func (cfg Config) ExpectedDegraded(f float64) (*Degraded, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if f < 0 || f > 1 {
		return nil, fmt.Errorf("dilated: fault fraction %g out of [0,1]", f)
	}
	d := newDegraded(cfg)
	if f == 0 {
		return d, nil
	}
	groups := float64(cfg.Ports())
	pmf := make([]float64, cfg.D+1)
	for k := 0; k <= cfg.D; k++ {
		pmf[k] = binomPMF(cfg.D, k, 1-f)
	}
	for bd := 1; bd <= cfg.L; bd++ {
		row := d.hist[bd-1]
		for k := 0; k <= cfg.D; k++ {
			row[k] = groups * pmf[k]
		}
	}
	d.dead = f * float64(cfg.L) * groups * float64(cfg.D)
	return d, nil
}

func newDegraded(cfg Config) *Degraded {
	d := &Degraded{cfg: cfg, hist: make([][]float64, cfg.L)}
	for i := range d.hist {
		row := make([]float64, cfg.D+1)
		row[cfg.D] = float64(cfg.Ports())
		d.hist[i] = row
	}
	return d
}

// Config returns the configuration the state was compiled for.
func (d *Degraded) Config() Config { return d.cfg }

// DeadSubWires returns the (expected) number of dead sub-wires.
func (d *Degraded) DeadSubWires() float64 { return d.dead }

// PA returns the probability of acceptance of the degraded dilated
// network under the Section 3.2 traffic assumptions — the same
// independence-per-stage recursion as Config.PA, generalized to
// heterogeneous group capacities by averaging each stage's bucket
// acceptance over the boundary's capacity histogram (mean-field over
// groups: a group with k live wires accepts like a capacity-k bucket,
// and downstream rates are total surviving flow over total live
// wires). With the empty fault state it equals Config.PA exactly; a
// boundary with every sub-wire dead severs the network and PA is 0.
func (d *Degraded) PA(r float64) float64 {
	if r == 0 {
		return 1
	}
	cfg := d.cfg
	// Stage 1: single-wire input ports are never dilated, so all B
	// inputs are live at rate r; its output groups are boundary 1.
	ri, liveFrac, ok := stageThrough(cfg.B, cfg.B, cfg.D, d.hist[0], r)
	if !ok {
		return 0
	}
	for j := 2; j <= cfg.L; j++ {
		// Dead inputs of an interior stage are rate-thinned: the B*D
		// physical inputs carry the surviving flow of the upstream
		// boundary spread over its live fraction.
		ri, liveFrac, ok = stageThrough(cfg.B*cfg.D, cfg.B, cfg.D, d.hist[j-1], ri*liveFrac)
		if !ok {
			return 0
		}
	}
	// Output ports: a port accepts one of the arrivals on its final
	// group's live wires, averaged over the boundary-L histogram.
	row := d.hist[cfg.L-1]
	groups := float64(cfg.Ports())
	rOut := 0.0
	for k := 1; k <= cfg.D; k++ {
		if row[k] == 0 {
			continue
		}
		rOut += row[k] / groups * (1 - math.Pow(1-ri, float64(k)))
	}
	return rOut / r
}

// Bandwidth returns expected delivered requests per cycle at rate r.
func (d *Degraded) Bandwidth(r float64) float64 {
	return d.PA(r) * r * float64(d.cfg.Ports())
}

// stageThrough pushes a per-input rate through one dilated stage whose
// output groups have the given capacity histogram: returns the mean
// per-live-wire output rate and the live fraction of the boundary's
// wires. ok is false when the boundary retains no live wire at all.
func stageThrough(width, buckets, dil int, hist []float64, r float64) (ri, liveFrac float64, ok bool) {
	if r > 1 {
		r = 1 // thinning can only reduce; guard accumulated float error
	}
	var groups, accepted, live float64
	for k := 0; k <= dil; k++ {
		w := hist[k]
		if w == 0 {
			continue
		}
		groups += w
		live += w * float64(k)
		if k > 0 {
			accepted += w * analytic.BucketAcceptance(width, buckets, k, r)
		}
	}
	if live == 0 {
		return 0, 0, false
	}
	return accepted / live, live / (groups * float64(dil)), true
}

// binomPMF returns C(n,k) p^k (1-p)^(n-k).
func binomPMF(n, k int, p float64) float64 {
	c := 1.0
	for i := 0; i < k; i++ {
		c = c * float64(n-i) / float64(i+1)
	}
	return c * math.Pow(p, float64(k)) * math.Pow(1-p, float64(n-k))
}
