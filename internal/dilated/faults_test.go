package dilated

import (
	"math"
	"testing"

	"edn/internal/xrand"
)

func mustDilated(t *testing.T, b, d, l int) Config {
	t.Helper()
	cfg, err := New(b, d, l)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestCompileEmptyMatchesHealthyPA(t *testing.T) {
	for _, cfg := range []Config{
		mustDilated(t, 2, 2, 3),
		mustDilated(t, 4, 2, 2),
		mustDilated(t, 2, 4, 4),
		mustDilated(t, 4, 1, 3), // undilated delta corner
	} {
		deg, err := cfg.CompileFaults(FaultSet{})
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range []float64{0, 0.25, 0.5, 1} {
			if got, want := deg.PA(r), cfg.PA(r); math.Abs(got-want) > 1e-12 {
				t.Errorf("%v r=%g: degraded empty PA %.15f != healthy %.15f", cfg, r, got, want)
			}
		}
	}
}

func TestExpectedDegradedEndpoints(t *testing.T) {
	cfg := mustDilated(t, 2, 2, 4)
	zero, err := cfg.ExpectedDegraded(0)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := zero.PA(1), cfg.PA(1); math.Abs(got-want) > 1e-12 {
		t.Errorf("f=0: PA %.15f != healthy %.15f", got, want)
	}
	all, err := cfg.ExpectedDegraded(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := all.PA(1); got != 0 {
		t.Errorf("f=1 (every sub-wire dead): PA = %g, want 0", got)
	}
}

func TestExpectedDegradedMonotone(t *testing.T) {
	cfg := mustDilated(t, 4, 2, 3)
	prev := math.Inf(1)
	for _, f := range []float64{0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8} {
		deg, err := cfg.ExpectedDegraded(f)
		if err != nil {
			t.Fatal(err)
		}
		pa := deg.PA(1)
		if pa > prev+1e-12 {
			t.Errorf("PA not monotone: f=%g gives %.6f after %.6f", f, pa, prev)
		}
		if pa < 0 || pa > 1 {
			t.Errorf("f=%g: PA %g out of [0,1]", f, pa)
		}
		prev = pa
	}
}

func TestCompileValidation(t *testing.T) {
	cfg := mustDilated(t, 2, 2, 3)
	for _, id := range []SubWireID{
		{Boundary: 0, Group: 0, Wire: 0},
		{Boundary: 4, Group: 0, Wire: 0},
		{Boundary: 1, Group: -1, Wire: 0},
		{Boundary: 1, Group: cfg.Ports(), Wire: 0},
		{Boundary: 1, Group: 0, Wire: 2},
		{Boundary: 1, Group: 0, Wire: -1},
	} {
		if _, err := cfg.CompileFaults(FaultSet{SubWires: []SubWireID{id}}); err == nil {
			t.Errorf("%+v should not compile", id)
		}
	}
	// Duplicates are idempotent.
	dup := FaultSet{SubWires: []SubWireID{
		{Boundary: 1, Group: 3, Wire: 1},
		{Boundary: 1, Group: 3, Wire: 1},
	}}
	deg, err := cfg.CompileFaults(dup)
	if err != nil {
		t.Fatal(err)
	}
	if deg.DeadSubWires() != 1 {
		t.Errorf("duplicate sub-wire counted %g times", deg.DeadSubWires())
	}
}

func TestSampledTracksExpectation(t *testing.T) {
	// The PA of a compiled Bernoulli sample should track the Binomial
	// expectation curve at the same fraction.
	cfg := mustDilated(t, 2, 2, 5)
	const f = 0.15
	expDeg, err := cfg.ExpectedDegraded(f)
	if err != nil {
		t.Fatal(err)
	}
	want := expDeg.PA(1)
	rng := xrand.New(17)
	sum := 0.0
	const samples = 20
	for i := 0; i < samples; i++ {
		deg, err := cfg.CompileFaults(BernoulliSubWires(cfg, f, rng))
		if err != nil {
			t.Fatal(err)
		}
		sum += deg.PA(1)
	}
	if got := sum / samples; math.Abs(got-want) > 0.02 {
		t.Errorf("sampled mean PA %.4f vs expectation %.4f", got, want)
	}
}

func TestDegradedBandwidth(t *testing.T) {
	cfg := mustDilated(t, 2, 2, 3)
	deg, err := cfg.ExpectedDegraded(0.2)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := deg.Bandwidth(1), deg.PA(1)*float64(cfg.Ports()); math.Abs(got-want) > 1e-12 {
		t.Errorf("bandwidth %g != PA*ports %g", got, want)
	}
}
