package dilatedsim

import (
	"fmt"
	"math"
	"testing"

	"edn/internal/dilated"
	"edn/internal/traffic"
	"edn/internal/xrand"
)

// measureAcceptance runs uniform traffic at rate r through the
// memoryless-like corner (depth-1 Drop) and returns delivered/offered —
// the measured counterpart of the mean-field PA.
func measureAcceptance(t *testing.T, cfg dilated.Config, m *Masks, r float64, cycles int) float64 {
	t.Helper()
	net, err := New(cfg, Options{Depth: 1, Policy: Drop, Faults: m})
	if err != nil {
		t.Fatal(err)
	}
	gen := traffic.Uniform{Rate: r, Rng: xrand.New(20240)}
	dest := make([]int, cfg.Ports())
	for c := 0; c < cycles; c++ {
		gen.GenerateInto(dest, cfg.Ports())
		if _, err := net.Cycle(dest); err != nil {
			t.Fatal(err)
		}
	}
	tot := net.Totals()
	if tot.Injected == 0 {
		t.Fatal("no traffic offered")
	}
	// Exclude the pipeline's still-queued survivors from the offered
	// count: they have not been accepted or refused yet.
	offered := tot.Injected - net.Queued()
	return float64(tot.Delivered) / float64(offered)
}

// TestMeasuredAcceptanceMatchesDegradedPA is the PR 4 analytics
// cross-check, mirroring the EDN side's ExpectedUniformBandwidth test:
// on the empty fault set the compiled state's PA equals Config.PA
// exactly (bit-equal, the mean-field recursion collapses to the healthy
// one) and the measured low-load acceptance of the depth-1 Drop corner
// tracks it within 5%; under single sub-wire faults the measured
// degradation tracks the compiled fault state's PA within the same 5%.
func TestMeasuredAcceptanceMatchesDegradedPA(t *testing.T) {
	const (
		load   = 0.3
		cycles = 6000
		tol    = 0.05
	)
	geometries := []struct{ b, d, l int }{
		{2, 2, 3},
		{4, 2, 2},
		{4, 4, 2},
	}
	for _, g := range geometries {
		cfg := dilatedCfg(t, g.b, g.d, g.l)
		singles := []struct {
			name string
			set  dilated.FaultSet
		}{
			{"none", dilated.FaultSet{}},
			{"boundary1", dilated.FaultSet{SubWires: []dilated.SubWireID{{Boundary: 1, Group: 1, Wire: 0}}}},
			{"interior", dilated.FaultSet{SubWires: []dilated.SubWireID{{Boundary: 2, Group: 3, Wire: 1}}}},
			{"final-group", dilated.FaultSet{SubWires: []dilated.SubWireID{{Boundary: g.l, Group: 0, Wire: g.d - 1}}}},
		}
		for _, tc := range singles {
			t.Run(fmt.Sprintf("%v/%s", cfg, tc.name), func(t *testing.T) {
				deg, err := cfg.CompileFaults(tc.set)
				if err != nil {
					t.Fatal(err)
				}
				if tc.set.IsZero() {
					if got, want := deg.PA(load), cfg.PA(load); got != want {
						t.Fatalf("empty fault state PA %.12f != Config.PA %.12f", got, want)
					}
				}
				masks := MustCompile(cfg, tc.set)
				measured := measureAcceptance(t, cfg, masks, load, cycles)
				expected := deg.PA(load)
				if rel := math.Abs(measured-expected) / expected; rel > tol {
					t.Errorf("measured acceptance %.4f vs analytic %.4f (%.1f%% off)", measured, expected, 100*rel)
				}
			})
		}
	}
}

// TestMeasuredTracksExpectedDilatedDegraded closes the loop with the
// smooth curve the sweeps plot: a Bernoulli sub-wire sample at fraction
// f, measured at low load, lands within 10% of the Binomial-expectation
// state ExpectedDegraded(f) — a looser bound than the compiled-sample
// one because the expectation also averages over the sampling noise of
// the draw itself.
func TestMeasuredTracksExpectedDilatedDegraded(t *testing.T) {
	cfg := dilatedCfg(t, 4, 2, 2)
	const (
		load   = 0.3
		f      = 0.1
		cycles = 6000
	)
	set := dilated.BernoulliSubWires(cfg, f, xrand.New(77))
	masks := MustCompile(cfg, set)
	measured := measureAcceptance(t, cfg, masks, load, cycles)
	deg, err := cfg.ExpectedDegraded(f)
	if err != nil {
		t.Fatal(err)
	}
	expected := deg.PA(load)
	if rel := math.Abs(measured-expected) / expected; rel > 0.10 {
		t.Errorf("measured acceptance %.4f vs ExpectedDegraded(%.2f) %.4f (%.1f%% off)", measured, f, expected, 100*rel)
	}
}
