// Package dilatedsim is the buffered packet-level simulator for
// d-dilated delta networks — the measured counterpart of the mean-field
// acceptance model in internal/dilated, and the dilated twin of
// internal/queuesim. With it the paper's equal-redundancy comparison
// (EDN versus the dilated delta spending the same wire budget on link
// replication) runs as two measurements of the same replayed packet
// streams instead of a measurement against a model, which is what lets
// the comparison speak to latency tails and lifetime churn.
//
// A d-dilated delta(b,l) is the plain delta network EDN(b,b,1,l) with
// every interstage link replicated d times: stage 1 switches are
// H(b -> b x d), interior stages H(bd -> b x d), and each single-wire
// output port accepts one of the up-to-d arrivals on its final link
// group. The simulator makes that structural statement literal — the
// group-level interstage wiring is taken from topology.Config{b,b,1,l}
// (the EDN family's c=1 corner) and expanded sub-wire-wise, so at d=1
// the network is bit-for-bit the plain delta queuesim simulates, and
// the equivalence test pins exactly that.
//
// The engine shares queuesim's architecture wholesale: flat int32
// interstage tables, one ringbuf.Ring per sub-wire (bounded depths
// carve slots out of a single backing array; the advance loop is 0
// allocs/op in steady state, see BenchmarkDilatedQueueCycle), packets
// packed as (inject-cycle | dest) uint64s via ringbuf.Pack feeding a
// stats.Histogram, Drop/Backpressure policies, head-of-line arbitration
// per switch with per-bucket live-sub-wire counts, and an UpdateFaults
// in-place mask swap with the PR 4 stranding/parking semantics (Drop
// discards packets queued on newly dead sub-wires into Totals.Stranded;
// Backpressure parks them, reported per cycle in
// CycleStats.ParkedOnDead, and releases them intact on repair).
//
// Depth semantics also mirror queuesim: >= 1 bounded FIFOs, Unbounded,
// and 0 for the unbuffered corner — no interstage buffering, each
// offered packet traverses all stages within one cycle, and blocked
// packets are resubmitted from their input (Backpressure) or lost
// (Drop). One behavioral note specific to deltas: a packet's switch
// path is unique (only the sub-wire within each link group is free), so
// under faults a head-of-line packet whose next bucket has no live
// sub-wire is parked for as long as the mask stands — dilation is
// redundancy without path diversity, which is precisely the paper's
// point against it.
package dilatedsim

import (
	"fmt"
	"math"

	"edn/internal/anatomy"
	"edn/internal/core"
	"edn/internal/dilated"
	"edn/internal/probe"
	"edn/internal/queuesim"
	"edn/internal/ringbuf"
	"edn/internal/stats"
	"edn/internal/switchfab"
	"edn/internal/topology"
)

// NoRequest marks an idle input in an injection vector.
const NoRequest = queuesim.NoRequest

// Unbounded selects per-sub-wire FIFOs that grow without limit.
const Unbounded = ringbuf.Unbounded

// Policy is the blocked-packet discipline, shared with queuesim so the
// two engines are configured with the same vocabulary.
type Policy = queuesim.Policy

// Backpressure retains blocked packets; Drop discards them.
const (
	Backpressure = queuesim.Backpressure
	Drop         = queuesim.Drop
)

// Totals are lifetime packet counters, the same ledger as queuesim's:
// Injected == Refused + Delivered + Dropped + Stranded + Queued() after
// every cycle and every UpdateFaults.
type Totals = queuesim.Totals

// CycleStats are the Totals deltas of one Cycle call plus the cycle's
// parked-on-dead census, with queuesim's meaning throughout.
type CycleStats = queuesim.CycleStats

// Options configures a dilated queueing network.
type Options struct {
	// Depth is the per-sub-wire FIFO depth: >= 1 bounded, Unbounded (-1)
	// for infinite buffers, 0 for the unbuffered single-cycle corner.
	Depth int
	// Policy is the blocked-packet discipline (default Backpressure).
	Policy Policy
	// Factory builds one arbiter per physical switch (stages 1..L) and
	// one per output port; nil selects input-label priority via the
	// fused fast path.
	Factory core.ArbiterFactory
	// LatencyBuckets and LatencyBucketWidth shape the latency histogram
	// (defaults: 1024 buckets of 1 cycle).
	LatencyBuckets     int
	LatencyBucketWidth float64
	// Faults disables sub-wires (see Compile): packets only advance onto
	// live sub-wires and packets queued on dead ones are stranded per
	// policy. Nil or empty means fully live. UpdateFaults swaps the
	// masks of a running network in place.
	Faults *Masks
	// Tables, when non-nil, supplies prebuilt routing tables for the
	// same dilated Config: the network shares the read-only slices
	// instead of materializing its own, skipping the dominant
	// O(ports*d) build cost. Must have been built for the identical
	// Config; results are bit-for-bit those of a fresh build.
	Tables *Tables
}

func (o Options) withDefaults() Options {
	if o.LatencyBuckets <= 0 {
		o.LatencyBuckets = 1024
	}
	if o.LatencyBucketWidth <= 0 {
		o.LatencyBucketWidth = 1
	}
	return o
}

// Network is an instantiated queueing dilated delta. It is not safe for
// concurrent use; the sweep harness builds one per shard.
type Network struct {
	dcfg dilated.Config
	opts Options

	ports   int // b^l network inputs and outputs
	b, d, l int
	stages  int // l switch stages + 1 output-port stage
	nsw     int // switches per stage, b^(l-1)

	// Pipelined state (Depth != 0). rings holds one FIFO per sub-wire:
	// boundary 0 (the injection row, single wires) then boundaries 1..l
	// (d-wide link groups, sub-wire label group*d + wire).
	rings []ringbuf.Ring
	base  []int // base[i] = first ring of boundary i, i in [0, l]

	gtab   [][]int32 // [interstage] group-level delta tables; nil = identity
	subTab [][]int32 // gtab expanded to sub-wire labels (shared when d == 1)
	shift  []uint    // per switch stage: right-shift to its routing digit
	maskB  uint32

	// Fault availability (nil = fully live), swapped between cycles by
	// UpdateFaults. live[s-1] is the boundary-s sub-wire row, pointed at
	// the active Masks. deadRing marks rings whose feeding sub-wire the
	// mask disables; liveCap[s-1][sw*b+bucket] counts the bucket's live
	// sub-wires so the advance loop can tell "parked on a dead bucket"
	// from "blocked by contention" without rescanning the row.
	live           [][]bool
	deadRing       []bool
	deadRingBuf    []bool
	liveCap        [][]int32
	strandedQueued int64 // packets parked in dead rings (Backpressure)

	factory      core.ArbiterFactory
	fastPriority bool
	arbiters     [][]switchfab.Arbiter // [stage-1][switch]; stage l+1 = ports
	used         []int32               // per-bucket sub-wires consumed this cycle
	digits       []int                 // arbiter-path digit gather
	order        []int                 // arbiter-path arbitration order

	// Unbuffered state (Depth == 0): one in-flight slot per input; the
	// wave buffers carry each boundary's per-wire occupancy (origin
	// input index, -1 empty) through the within-cycle stage sweep.
	pending []int
	pendAt  []int64
	waveA   []int32
	waveB   []int32

	now       int64
	queued    int64
	totals    Totals
	perStage  []int64 // drops per stage (Policy Drop), stage l+1 = output ports
	lat       *stats.Histogram
	idleBatch []int

	// deliver, when set, observes every retirement (see SetDeliveryHook).
	deliver func(dest int, inject int64)

	// probe, when set, flight-records sampled packets and per-stage heat
	// (see SetProbe). pendTrace holds the unbuffered corner's per-input
	// trace record handles (-1 = untraced), mirroring pending.
	probe     *probe.Probe
	pendTrace []int32

	// anat, when set, mirrors every FIFO and attributes each in-flight
	// packet's cycles to wait/block/service (see SetAnatomy); the
	// anatBlockDown/anatTo fields carry advancePacket's diagnosis out
	// to the caller, as in queuesim.
	anat          *anatomy.Collector
	anatTo        int
	anatBlockDown int
}

// New builds a queueing network over dcfg. See Options for the depth
// and policy semantics.
func New(dcfg dilated.Config, opts Options) (*Network, error) {
	if err := dcfg.Validate(); err != nil {
		return nil, err
	}
	if opts.Depth < Unbounded {
		return nil, fmt.Errorf("dilatedsim: depth %d invalid (want >= 1, 0, or Unbounded)", opts.Depth)
	}
	switch opts.Policy {
	case Backpressure, Drop:
	default:
		return nil, fmt.Errorf("dilatedsim: unknown policy %d", int(opts.Policy))
	}
	if opts.Tables != nil && opts.Tables.Config() != dcfg {
		return nil, fmt.Errorf("dilatedsim: tables built for %v, network is %v", opts.Tables.Config(), dcfg)
	}
	opts = opts.withDefaults()
	ports := dcfg.Ports()
	if int64(ports)*int64(dcfg.D) > math.MaxInt32 {
		return nil, fmt.Errorf("dilatedsim: %v has %d sub-wires per boundary, beyond the simulable limit", dcfg, int64(ports)*int64(dcfg.D))
	}
	// The group-level wiring is the plain delta skeleton — the EDN
	// family's c=1 corner with the same radix and depth.
	delta, err := topology.New(dcfg.B, dcfg.B, 1, dcfg.L)
	if err != nil {
		return nil, fmt.Errorf("dilatedsim: %v has no delta skeleton: %w", dcfg, err)
	}
	n := &Network{
		dcfg:         dcfg,
		opts:         opts,
		ports:        ports,
		b:            dcfg.B,
		d:            dcfg.D,
		l:            dcfg.L,
		stages:       dcfg.L + 1,
		nsw:          topology.Pow(dcfg.B, dcfg.L-1),
		factory:      opts.Factory,
		fastPriority: opts.Factory == nil,
		perStage:     make([]int64, dcfg.L+1),
		lat:          stats.NewHistogram(opts.LatencyBuckets, opts.LatencyBucketWidth),
		maskB:        uint32(dcfg.B - 1),
	}
	if n.factory == nil {
		n.factory = core.PriorityArbiters
	}
	logB := topology.Log2(dcfg.B)
	n.shift = make([]uint, dcfg.L)
	for s := 1; s <= dcfg.L; s++ {
		n.shift[s-1] = uint((dcfg.L - s) * logB)
	}
	if opts.Tables != nil {
		n.gtab, n.subTab = opts.Tables.gtab, opts.Tables.subTab
	} else {
		n.gtab = make([][]int32, dcfg.L)
		n.subTab = make([][]int32, dcfg.L)
		for s := 1; s <= dcfg.L; s++ {
			tab := delta.InterstageTable(s) // nil at s == l: groups feed ports
			n.gtab[s-1] = tab
			switch {
			case tab == nil:
				// identity at both levels
			case dcfg.D == 1:
				n.subTab[s-1] = tab // sub-wire labels are group labels
			default:
				sub := make([]int32, ports*dcfg.D)
				for o := range sub {
					sub[o] = tab[o/dcfg.D]*int32(dcfg.D) + int32(o%dcfg.D)
				}
				n.subTab[s-1] = sub
			}
		}
	}
	n.arbiters = make([][]switchfab.Arbiter, n.stages)
	for s := 1; s <= dcfg.L; s++ {
		n.arbiters[s-1] = make([]switchfab.Arbiter, n.nsw)
	}
	n.arbiters[n.stages-1] = make([]switchfab.Arbiter, ports)
	width := dcfg.B * dcfg.D // widest gather: an interior switch
	n.used = make([]int32, dcfg.B)
	n.digits = make([]int, width)
	n.order = make([]int, width)
	n.liveCap = make([][]int32, dcfg.L)
	for s := 1; s <= dcfg.L; s++ {
		n.liveCap[s-1] = make([]int32, n.nsw*dcfg.B)
	}

	if opts.Depth == 0 {
		n.pending = make([]int, ports)
		for i := range n.pending {
			n.pending[i] = NoRequest
		}
		n.pendAt = make([]int64, ports)
		n.waveA = make([]int32, ports*dcfg.D)
		n.waveB = make([]int32, ports*dcfg.D)
		if err := n.UpdateFaults(opts.Faults); err != nil {
			return nil, err
		}
		return n, nil
	}

	n.base = make([]int, dcfg.L+1)
	total := ports // boundary 0: single-wire inputs
	for i := 1; i <= dcfg.L; i++ {
		n.base[i] = total
		total += ports * dcfg.D
	}
	n.rings = make([]ringbuf.Ring, total)
	if opts.Depth >= 1 {
		// One flat backing array, power-of-two slots per ring, so the
		// steady state never allocates and neighbors share cache lines.
		slot := 1
		for slot < opts.Depth {
			slot <<= 1
		}
		backing := make([]uint64, total*slot)
		for i := range n.rings {
			n.rings[i].Buf = backing[i*slot : (i+1)*slot]
		}
	}
	n.deadRingBuf = make([]bool, total)
	if err := n.UpdateFaults(opts.Faults); err != nil {
		return nil, err
	}
	return n, nil
}

// UpdateFaults swaps the network's sub-wire availability masks in
// place: packets keep flowing through the same rings, tables and
// arbiter state while the set of live sub-wires changes under them —
// the epoch primitive of a lifetime simulation. A nil or empty mask
// restores the unmasked fast paths bit-for-bit; the swap allocates
// nothing.
//
// Packets already queued on a sub-wire the new mask disables are
// stranded per policy: under Drop they are discarded immediately and
// counted in Totals.Stranded; under Backpressure they stay parked in
// place — skipped by arbitration, reported each cycle via
// CycleStats.ParkedOnDead — and resume unharmed if a later update
// repairs the sub-wire. Masks must have been compiled for this
// network's configuration. Not safe to call concurrently with Cycle.
func (n *Network) UpdateFaults(m *Masks) error {
	if m.Empty() {
		n.live = nil
		n.deadRing = nil
		n.strandedQueued = 0
		return nil
	}
	if got := m.Config(); got != n.dcfg {
		return fmt.Errorf("dilatedsim: masks compiled for %v, network is %v", got, n.dcfg)
	}
	n.live = m.rows
	n.refreshLiveView()
	return nil
}

// refreshLiveView recomputes the engine's view of the current masks:
// per-bucket live-sub-wire counts and (pipelined) which rings sit on
// dead sub-wires, stranding their queued packets per policy. O(sub-
// wires) per mask swap, no allocations.
func (n *Network) refreshLiveView() {
	d := n.d
	for s := 1; s <= n.l; s++ {
		row := n.live[s-1]
		caps := n.liveCap[s-1]
		if row == nil {
			for i := range caps {
				caps[i] = int32(d)
			}
			continue
		}
		for g := range caps { // group label == sw*b + bucket
			liveCnt := int32(0)
			for w := 0; w < d; w++ {
				if row[g*d+w] {
					liveCnt++
				}
			}
			caps[g] = liveCnt
		}
	}
	if n.opts.Depth == 0 {
		return
	}
	for i := range n.deadRingBuf {
		n.deadRingBuf[i] = false
	}
	any := false
	for s := 1; s <= n.l; s++ {
		row := n.live[s-1]
		if row == nil {
			continue
		}
		tab := n.subTab[s-1]
		base := n.base[s]
		for o, ok := range row {
			if ok {
				continue
			}
			// The ring is the buffer attached to the sub-wire's
			// downstream end; boundary-l groups feed the ports directly.
			down := o
			if tab != nil {
				down = int(tab[o])
			}
			n.deadRingBuf[base+down] = true
			any = true
		}
	}
	n.strandedQueued = 0
	if !any {
		n.deadRing = nil
		return
	}
	n.deadRing = n.deadRingBuf
	drop := n.opts.Policy == Drop
	for i := range n.rings {
		if !n.deadRing[i] {
			continue
		}
		r := &n.rings[i]
		if r.N == 0 {
			continue
		}
		stranded := int64(r.N)
		if drop {
			for r.N > 0 {
				pkt := r.Pop()
				if n.probe != nil && pkt&ringbuf.TraceBit != 0 {
					n.probe.Close(pkt, n.ringStage(i), probe.EvStrand, n.now)
				}
				if n.anat != nil {
					n.anat.Strand(i, n.now)
				}
			}
			n.queued -= stranded
			n.totals.Stranded += stranded
		} else {
			n.strandedQueued += stranded
			if n.probe != nil {
				for k := int32(0); k < r.N; k++ {
					pkt := r.Buf[(int(r.Head)+int(k))&(len(r.Buf)-1)]
					if pkt&ringbuf.TraceBit != 0 {
						n.probe.Hop(pkt, n.ringStage(i), probe.EvPark, n.now)
					}
				}
			}
		}
	}
}

// Config returns the network's dilated configuration.
func (n *Network) Config() dilated.Config { return n.dcfg }

// Depth returns the configured FIFO depth.
func (n *Network) Depth() int { return n.opts.Depth }

// Policy returns the configured blocked-packet discipline.
func (n *Network) Policy() Policy { return n.opts.Policy }

// Now returns the number of cycles simulated so far.
func (n *Network) Now() int64 { return n.now }

// Queued returns the number of packets currently inside the network.
func (n *Network) Queued() int64 { return n.queued }

// Totals returns the lifetime packet counters.
func (n *Network) Totals() Totals { return n.totals }

// DroppedPerStage returns a copy of the per-stage drop counters
// (1-based stage s at index s-1; index l is the output-port stage; all
// zeros under Backpressure).
func (n *Network) DroppedPerStage() []int64 {
	return append([]int64(nil), n.perStage...)
}

// Latency returns the live delivery-latency histogram, measured in
// cycles from injection to retirement at the output port: the
// pipelined floor is Stages() = l+1 (one hop per cycle plus the port),
// the unbuffered corner's floor is 1. ResetLatency starts a fresh
// measurement window.
func (n *Network) Latency() *stats.Histogram { return n.lat }

// ResetLatency clears the latency histogram — typically called after
// warmup. Queue state and lifetime totals are unaffected.
func (n *Network) ResetLatency() { n.lat.Reset() }

// SetDeliveryHook installs fn to be called once per retired packet,
// with the packet's destination port and its injection cycle truncated
// to the 32 bits the in-flight word carries (compare against
// int64(uint32(cycle))). The hook fires inside Cycle after the
// delivery is counted; it must not call back into the network. A nil
// fn removes the hook. This is the same seam queuesim exposes, so
// closed-loop drivers treat both engines identically.
func (n *Network) SetDeliveryHook(fn func(dest int, inject int64)) { n.deliver = fn }

// ProbeMetrics names the per-stage heat metrics this engine reports,
// in the AddStage index order of the pm* constants — the same set as
// queuesim's so EDN/dilated heatmaps compare stage for stage.
var ProbeMetrics = []string{"occupancy", "hol_blocked", "parked", "dropped"}

const (
	pmOccupancy = iota
	pmHolBlocked
	pmParked
	pmDropped
)

// SetProbe attaches a flight-recorder probe (nil detaches), with the
// same non-perturbation contract as queuesim.SetProbe: decisions are
// identical with or without it, and the nil path costs one predictable
// branch per site (BenchmarkProbeOff pins 0 allocs/op). Not safe to
// swap mid-cycle.
func (n *Network) SetProbe(p *probe.Probe) {
	n.probe = p
	if p == nil {
		return
	}
	p.Bind(n.stages, ProbeMetrics)
	if n.opts.Depth == 0 && n.pendTrace == nil {
		n.pendTrace = make([]int32, n.ports)
	}
	for i := range n.pendTrace {
		n.pendTrace[i] = -1
	}
}

// SetAnatomy attaches a latency-anatomy collector (nil detaches),
// binding it to this network's ring geometry — the same observation
// contract as queuesim.SetAnatomy: no decision changes, one branch per
// site when detached. Not safe to swap mid-cycle.
func (n *Network) SetAnatomy(a *anatomy.Collector) {
	n.anat = a
	if a == nil {
		return
	}
	if n.opts.Depth == 0 {
		a.Bind(anatomy.Layout{Stages: n.stages, Inputs: n.ports, Outputs: n.ports})
		return
	}
	lay := anatomy.Layout{
		Stages: n.stages, Inputs: n.ports, Outputs: n.ports,
		Rings:      len(n.rings),
		RingStage:  make([]int32, len(n.rings)),
		RingSwitch: make([]int32, len(n.rings)),
		TermSwitch: make([]int32, n.ports),
	}
	for i := range n.rings {
		s := n.ringStage(i)
		width := n.b * n.d
		switch s {
		case 1:
			width = n.b // single-wire input ports
		case n.stages:
			width = n.d // the "switch" of the output stage is the port
		}
		lay.RingStage[i] = int32(s)
		lay.RingSwitch[i] = int32((i - n.base[s-1]) / width)
	}
	for t := 0; t < n.ports; t++ {
		lay.TermSwitch[t] = int32(t)
	}
	a.Bind(lay)
}

// ringStage returns the 1-based stage fed by ring i (boundary-l rings
// feed the output-port stage).
func (n *Network) ringStage(i int) int {
	s := 1
	for s < len(n.base) && i >= n.base[s] {
		s++
	}
	return s
}

// recordHeat folds this cycle's occupancy census into the probe and
// closes the heat cycle. Only called with a probe attached.
func (n *Network) recordHeat() {
	if n.opts.Depth == 0 {
		n.probe.AddStage(pmOccupancy, 0, float64(n.queued))
	} else {
		for s := 1; s <= n.stages; s++ {
			lo := n.base[s-1]
			hi := len(n.rings)
			if s < len(n.base) {
				hi = n.base[s]
			}
			occ := int64(0)
			for i := lo; i < hi; i++ {
				occ += int64(n.rings[i].N)
			}
			n.probe.AddStage(pmOccupancy, s-1, float64(occ))
		}
	}
	n.probe.EndCycle()
}

// Stages returns the stage count: l switch stages plus the output-port
// stage.
func (n *Network) Stages() int { return n.stages }

// InputFree reports whether input i can accept an injection this
// cycle. Inputs are single wires and cannot die in the sub-wire fault
// model, so only FIFO (or in-flight slot) occupancy gates injection.
func (n *Network) InputFree(i int) bool {
	if n.opts.Depth == 0 {
		return n.pending[i] == NoRequest
	}
	return n.rings[i].HasSpace(n.opts.Depth)
}

// Cycle advances the network by one cycle and then injects dest:
// dest[i] is the destination port for a new packet entering input i,
// or NoRequest. Stages advance downstream-first, exactly as in
// queuesim, so a buffer slot freed this cycle is usable upstream in the
// same cycle. Injections that find their input full are counted as
// Refused and lost.
func (n *Network) Cycle(dest []int) (CycleStats, error) {
	if len(dest) != n.ports {
		return CycleStats{}, fmt.Errorf("dilatedsim: %v got %d injections, want %d inputs", n.dcfg, len(dest), n.ports)
	}
	// Validate before touching state: a mid-cycle abort would break the
	// conservation invariant forever.
	for i, dst := range dest {
		if dst != NoRequest && (dst < 0 || dst >= n.ports) {
			return CycleStats{}, fmt.Errorf("dilatedsim: input %d requests output %d out of range [0,%d)", i, dst, n.ports)
		}
	}
	n.now++
	var cs CycleStats
	if n.opts.Depth == 0 {
		n.cycleUnbuffered(dest, &cs)
	} else {
		n.advanceOutput(&cs)
		for s := n.l; s >= 1; s-- {
			n.advanceStage(s, &cs)
		}
		if n.strandedQueued != 0 {
			cs.ParkedOnDead += int(n.strandedQueued)
		}
		depth := n.opts.Depth
		for i, dst := range dest {
			if dst == NoRequest {
				continue
			}
			cs.Injected++
			r := &n.rings[i]
			if !r.HasSpace(depth) {
				cs.Refused++
				continue
			}
			pkt := ringbuf.Pack(dst, n.now)
			if n.probe != nil {
				pkt = n.probe.TagInject(i, pkt, n.now)
			}
			r.Push(pkt)
			n.queued++
			if n.anat != nil {
				n.anat.Inject(i, i, dst, n.now)
			}
		}
		if n.anat != nil {
			n.anat.EndCycle(n.now)
		}
	}
	if n.probe != nil {
		n.recordHeat()
	}
	n.totals.Injected += int64(cs.Injected)
	n.totals.Refused += int64(cs.Refused)
	n.totals.Delivered += int64(cs.Delivered)
	n.totals.Dropped += int64(cs.Dropped)
	return cs, nil
}

// Drain runs idle cycles until the network empties, returning how many
// it took; it fails if packets remain after maxCycles.
func (n *Network) Drain(maxCycles int) (int, error) {
	if n.idleBatch == nil {
		n.idleBatch = make([]int, n.ports)
		for i := range n.idleBatch {
			n.idleBatch[i] = NoRequest
		}
	}
	for c := 0; c < maxCycles; c++ {
		if n.queued == 0 {
			return c, nil
		}
		if _, err := n.Cycle(n.idleBatch); err != nil {
			return c, err
		}
	}
	if n.queued == 0 {
		return maxCycles, nil
	}
	return maxCycles, fmt.Errorf("dilatedsim: %d packets still queued after %d drain cycles", n.queued, maxCycles)
}

// retire records one delivery.
func (n *Network) retire(pkt uint64, cs *CycleStats) {
	n.lat.Add(ringbuf.Latency(pkt, n.now))
	n.queued--
	cs.Delivered++
	if n.probe != nil {
		n.probe.Close(pkt, n.stages, probe.EvDeliver, n.now)
	}
	if n.deliver != nil {
		n.deliver(ringbuf.Dest(pkt), int64(uint32(pkt>>32)))
	}
}

// advanceStage runs one cycle of switch stage s (1-based): head-of-line
// arbitration per switch over the boundary s-1 FIFOs, winners crossing
// the sub-wire interstage table into the boundary s FIFOs, losers
// retained or dropped per policy. Structure and semantics mirror
// queuesim.advanceStage with bucket capacity d.
func (n *Network) advanceStage(s int, cs *CycleStats) {
	width := n.b * n.d
	if s == 1 {
		width = n.b // single-wire input ports
	}
	tab := n.subTab[s-1]
	shift := n.shift[s-1]
	bc := n.b * n.d
	var live []bool
	var liveCap []int32
	if n.live != nil {
		live = n.live[s-1]
		if live != nil {
			liveCap = n.liveCap[s-1]
		}
	}
	inBase := n.base[s-1]
	var dead []bool
	if n.deadRing != nil {
		dead = n.deadRing[inBase:]
	}
	outRings := n.rings[n.base[s]:]
	depth := n.opts.Depth
	drop := n.opts.Policy == Drop
	used := n.used[:n.b]

	if n.fastPriority {
		for sw := 0; sw < n.nsw; sw++ {
			swIn := inBase + sw*width
			for i := range used {
				used[i] = 0
			}
			for p := 0; p < width; p++ {
				r := &n.rings[swIn+p]
				if r.N == 0 {
					continue
				}
				if dead != nil && dead[sw*width+p] {
					continue // parked on a dead sub-wire (Drop strands at swap time)
				}
				pkt := r.Peek()
				dgt := int((uint32(pkt) >> shift) & n.maskB)
				if !n.advancePacket(r, pkt, dgt, sw*bc, depth, tab, outRings, live) {
					switch {
					case drop:
						r.Pop()
						n.queued--
						cs.Dropped++
						n.perStage[s-1]++
						if n.probe != nil {
							n.probe.AddStage(pmDropped, s-1, 1)
							n.probe.Close(pkt, s, probe.EvDrop, n.now)
						}
						if n.anat != nil {
							n.anat.Drop(swIn+p, n.anatBlocker(s), n.now)
						}
					case liveCap != nil && liveCap[sw*n.b+dgt] == 0:
						cs.ParkedOnDead++ // every sub-wire of its bucket is dead
						if n.probe != nil {
							n.probe.AddStage(pmParked, s-1, 1)
							n.probe.Hop(pkt, s, probe.EvPark, n.now)
						}
						if n.anat != nil {
							n.anat.Park(swIn+p, n.now)
						}
					default:
						if n.probe != nil {
							n.probe.AddStage(pmHolBlocked, s-1, 1)
							n.probe.Hop(pkt, s, probe.EvBlock, n.now)
						}
						if n.anat != nil {
							n.anat.Block(swIn+p, n.anatBlocker(s), n.now)
						}
					}
				} else {
					if n.probe != nil {
						n.probe.Hop(pkt, s, probe.EvTraverse, n.now)
					}
					if n.anat != nil {
						n.anat.Advance(swIn+p, n.base[s]+n.anatTo, n.now)
					}
				}
			}
		}
		return
	}

	digits := n.digits[:width]
	for sw := 0; sw < n.nsw; sw++ {
		swIn := inBase + sw*width
		busy := false
		for p := 0; p < width; p++ {
			r := &n.rings[swIn+p]
			if r.N == 0 || (dead != nil && dead[sw*width+p]) {
				digits[p] = switchfab.Idle
				continue
			}
			busy = true
			digits[p] = int((uint32(r.Peek()) >> shift) & n.maskB)
		}
		if !busy {
			continue
		}
		order := n.arbiterOrder(s, sw, width)
		for i := range used {
			used[i] = 0
		}
		for idx := 0; idx < width; idx++ {
			p := idx
			if order != nil {
				p = order[idx]
			}
			dgt := digits[p]
			if dgt == switchfab.Idle {
				continue
			}
			r := &n.rings[swIn+p]
			pkt := r.Peek()
			if !n.advancePacket(r, pkt, dgt, sw*bc, depth, tab, outRings, live) {
				switch {
				case drop:
					r.Pop()
					n.queued--
					cs.Dropped++
					n.perStage[s-1]++
					if n.probe != nil {
						n.probe.AddStage(pmDropped, s-1, 1)
						n.probe.Close(pkt, s, probe.EvDrop, n.now)
					}
					if n.anat != nil {
						n.anat.Drop(swIn+p, n.anatBlocker(s), n.now)
					}
				case liveCap != nil && liveCap[sw*n.b+dgt] == 0:
					cs.ParkedOnDead++
					if n.probe != nil {
						n.probe.AddStage(pmParked, s-1, 1)
						n.probe.Hop(pkt, s, probe.EvPark, n.now)
					}
					if n.anat != nil {
						n.anat.Park(swIn+p, n.now)
					}
				default:
					if n.probe != nil {
						n.probe.AddStage(pmHolBlocked, s-1, 1)
						n.probe.Hop(pkt, s, probe.EvBlock, n.now)
					}
					if n.anat != nil {
						n.anat.Block(swIn+p, n.anatBlocker(s), n.now)
					}
				}
			} else {
				if n.probe != nil {
					n.probe.Hop(pkt, s, probe.EvTraverse, n.now)
				}
				if n.anat != nil {
					n.anat.Advance(swIn+p, n.base[s]+n.anatTo, n.now)
				}
			}
		}
	}
}

// advancePacket tries to move the head packet of r (routing digit dgt)
// through its switch: it takes the first live bucket-dgt sub-wire whose
// downstream FIFO has room, crossing the sub-wire table tab (nil =
// identity) into outRings. Each sub-wire carries at most one packet per
// cycle — used counts grants, full and dead sub-wires alike.
func (n *Network) advancePacket(r *ringbuf.Ring, pkt uint64, dgt, outBase, depth int, tab []int32, outRings []ringbuf.Ring, live []bool) bool {
	if n.anat != nil {
		n.anatBlockDown = -1
	}
	for int(n.used[dgt]) < n.d {
		o := outBase + dgt*n.d + int(n.used[dgt])
		n.used[dgt]++
		if live != nil && !live[o] {
			continue // dead sub-wire: permanently unusable, skip it
		}
		down := o
		if tab != nil {
			down = int(tab[o])
		}
		dr := &outRings[down]
		if dr.HasSpace(depth) {
			r.Pop()
			dr.Push(pkt)
			if n.anat != nil {
				n.anatTo = down
			}
			return true
		}
		// This sub-wire leads to a full FIFO: consumed for the cycle.
		if n.anat != nil && n.anatBlockDown < 0 {
			n.anatBlockDown = down
		}
	}
	return false
}

// anatBlocker resolves advancePacket's failure diagnosis into an
// anatomy node: the first full downstream FIFO tried, or -1 when
// nothing downstream is to blame.
func (n *Network) anatBlocker(s int) int {
	if n.anatBlockDown >= 0 {
		return n.base[s] + n.anatBlockDown
	}
	return -1
}

// advanceOutput runs the output-port stage: each port retires at most
// one packet per cycle from the d FIFOs of its final link group —
// head-of-line arbitration with a single one-capacity bucket. Losers
// wait (Backpressure: pure contention, the port itself cannot die) or
// are discarded (Drop), mirroring queuesim's crossbar-stage handling of
// bucket conflicts.
func (n *Network) advanceOutput(cs *CycleStats) {
	inBase := n.base[n.l]
	var dead []bool
	if n.deadRing != nil {
		dead = n.deadRing[inBase:]
	}
	d := n.d
	drop := n.opts.Policy == Drop
	if n.fastPriority {
		for port := 0; port < n.ports; port++ {
			pBase := inBase + port*d
			taken := false
			for w := 0; w < d; w++ {
				r := &n.rings[pBase+w]
				if r.N == 0 {
					continue
				}
				if dead != nil && dead[port*d+w] {
					continue
				}
				if !taken {
					taken = true
					n.retire(r.Pop(), cs)
					if n.anat != nil {
						n.anat.Deliver(pBase+w, n.now)
					}
				} else if drop {
					pkt := r.Pop()
					n.queued--
					cs.Dropped++
					n.perStage[n.stages-1]++
					if n.probe != nil {
						n.probe.AddStage(pmDropped, n.stages-1, 1)
						n.probe.Close(pkt, n.stages, probe.EvDrop, n.now)
					}
					if n.anat != nil {
						n.anat.Drop(pBase+w, len(n.rings)+port, n.now)
					}
				} else {
					if n.probe != nil {
						n.probe.AddStage(pmHolBlocked, n.stages-1, 1)
						n.probe.Hop(r.Peek(), n.stages, probe.EvBlock, n.now)
					}
					if n.anat != nil {
						n.anat.Block(pBase+w, len(n.rings)+port, n.now)
					}
				}
			}
		}
		return
	}
	digits := n.digits[:d]
	for port := 0; port < n.ports; port++ {
		pBase := inBase + port*d
		busy := false
		for w := 0; w < d; w++ {
			r := &n.rings[pBase+w]
			if r.N == 0 || (dead != nil && dead[port*d+w]) {
				digits[w] = switchfab.Idle
				continue
			}
			busy = true
			digits[w] = 0 // every head here is addressed to this port
		}
		if !busy {
			continue
		}
		order := n.arbiterOrder(n.stages, port, d)
		taken := false
		for idx := 0; idx < d; idx++ {
			w := idx
			if order != nil {
				w = order[idx]
			}
			if digits[w] == switchfab.Idle {
				continue
			}
			r := &n.rings[pBase+w]
			if !taken {
				taken = true
				n.retire(r.Pop(), cs)
				if n.anat != nil {
					n.anat.Deliver(pBase+w, n.now)
				}
			} else if drop {
				pkt := r.Pop()
				n.queued--
				cs.Dropped++
				n.perStage[n.stages-1]++
				if n.probe != nil {
					n.probe.AddStage(pmDropped, n.stages-1, 1)
					n.probe.Close(pkt, n.stages, probe.EvDrop, n.now)
				}
				if n.anat != nil {
					n.anat.Drop(pBase+w, len(n.rings)+port, n.now)
				}
			} else {
				if n.probe != nil {
					n.probe.AddStage(pmHolBlocked, n.stages-1, 1)
					n.probe.Hop(r.Peek(), n.stages, probe.EvBlock, n.now)
				}
				if n.anat != nil {
					n.anat.Block(pBase+w, len(n.rings)+port, n.now)
				}
			}
		}
	}
}

// arbiterOrder returns the arbitration order for switch sw of stage s
// (nil = natural order), advancing stateful arbiters exactly once per
// busy switch per cycle as queuesim does.
func (n *Network) arbiterOrder(s, sw, width int) []int {
	if n.arbiters[s-1][sw] == nil {
		n.arbiters[s-1][sw] = n.factory()
	}
	switch a := n.arbiters[s-1][sw].(type) {
	case switchfab.PriorityArbiter:
		return nil
	case switchfab.InPlaceArbiter:
		order := n.order[:width]
		a.OrderInto(order)
		return order
	default:
		return a.Order(width)
	}
}

// cycleUnbuffered is the Depth == 0 cycle: every input's in-flight
// packet (retained from a blocked attempt, or freshly injected) sweeps
// through all stages within the cycle — per-switch arbitration at each
// stage over the wave of surviving packets, one packet per sub-wire,
// then at most one retirement per output port. Backpressure resubmits
// blocked packets from their input next cycle; Drop discards them.
func (n *Network) cycleUnbuffered(dest []int, cs *CycleStats) {
	for i := range n.pending {
		if n.pending[i] != NoRequest {
			if dest[i] != NoRequest {
				cs.Injected++
				cs.Refused++ // input busy: the retained packet resubmits
			}
			continue
		}
		dst := dest[i]
		if dst == NoRequest {
			continue
		}
		cs.Injected++
		n.pending[i] = dst
		n.pendAt[i] = n.now
		n.queued++
		if n.probe != nil {
			if rec := n.probe.SampleInject(i, dst, n.now); rec >= 0 {
				n.pendTrace[i] = rec
				n.probe.HopRec(rec, 0, probe.EvInject, n.now)
			}
		}
		if n.anat != nil {
			n.anat.Inject0(i, i, dst, n.now)
		}
	}

	cur := n.waveA[:n.ports]
	for i := range cur {
		if n.pending[i] != NoRequest {
			cur[i] = int32(i)
		} else {
			cur[i] = -1
		}
	}
	next := n.waveB
	for s := 1; s <= n.l; s++ {
		width := n.b * n.d
		if s == 1 {
			width = n.b
		}
		nxt := next[:n.ports*n.d]
		for i := range nxt {
			nxt[i] = -1
		}
		tab := n.subTab[s-1]
		shift := n.shift[s-1]
		bc := n.b * n.d
		var live []bool
		if n.live != nil {
			live = n.live[s-1]
		}
		used := n.used[:n.b]
		nsw := len(cur) / width
		if n.fastPriority {
			for sw := 0; sw < nsw; sw++ {
				swIn := sw * width
				for i := range used {
					used[i] = 0
				}
				for p := 0; p < width; p++ {
					org := cur[swIn+p]
					if org < 0 {
						continue
					}
					dgt := int((uint32(n.pending[org]) >> shift) & n.maskB)
					if !n.grantWave(org, dgt, sw*bc, tab, live, nxt) {
						n.blockWave(org, s, cs)
					}
				}
			}
		} else {
			digits := n.digits[:width]
			for sw := 0; sw < nsw; sw++ {
				swIn := sw * width
				busy := false
				for p := 0; p < width; p++ {
					org := cur[swIn+p]
					if org < 0 {
						digits[p] = switchfab.Idle
						continue
					}
					busy = true
					digits[p] = int((uint32(n.pending[org]) >> shift) & n.maskB)
				}
				if !busy {
					continue
				}
				order := n.arbiterOrder(s, sw, width)
				for i := range used {
					used[i] = 0
				}
				for idx := 0; idx < width; idx++ {
					p := idx
					if order != nil {
						p = order[idx]
					}
					if digits[p] == switchfab.Idle {
						continue
					}
					org := cur[swIn+p]
					if !n.grantWave(org, digits[p], sw*bc, tab, live, nxt) {
						n.blockWave(org, s, cs)
					}
				}
			}
		}
		cur, next = nxt, cur[:cap(cur)]
	}

	// Output ports: one retirement per port; losers resubmit or drop.
	d := n.d
	for port := 0; port < n.ports; port++ {
		pBase := port * d
		if n.fastPriority {
			taken := false
			for w := 0; w < d; w++ {
				org := cur[pBase+w]
				if org < 0 {
					continue
				}
				if !taken {
					taken = true
					n.retireWave(org, cs)
				} else {
					n.blockWave(org, n.stages, cs)
				}
			}
			continue
		}
		digits := n.digits[:d]
		busy := false
		for w := 0; w < d; w++ {
			if cur[pBase+w] < 0 {
				digits[w] = switchfab.Idle
				continue
			}
			busy = true
			digits[w] = 0
		}
		if !busy {
			continue
		}
		order := n.arbiterOrder(n.stages, port, d)
		taken := false
		for idx := 0; idx < d; idx++ {
			w := idx
			if order != nil {
				w = order[idx]
			}
			if digits[w] == switchfab.Idle {
				continue
			}
			org := cur[pBase+w]
			if !taken {
				taken = true
				n.retireWave(org, cs)
			} else {
				n.blockWave(org, n.stages, cs)
			}
		}
	}
	if n.anat != nil {
		n.anat.EndCycle0()
	}
}

// grantWave places origin's packet on the first live bucket-dgt
// sub-wire, mapping it through the sub-wire table into the next wave.
// Without FIFOs every sub-wire is free each cycle, so only bucket
// capacity and dead sub-wires can refuse.
func (n *Network) grantWave(org int32, dgt, outBase int, tab []int32, live []bool, nxt []int32) bool {
	for int(n.used[dgt]) < n.d {
		o := outBase + dgt*n.d + int(n.used[dgt])
		n.used[dgt]++
		if live != nil && !live[o] {
			continue
		}
		down := o
		if tab != nil {
			down = int(tab[o])
		}
		nxt[down] = org
		return true
	}
	return false
}

// retireWave delivers the unbuffered packet of input org: latency 1 on
// a first-attempt delivery (whole-network transit within the injection
// cycle), matching queuesim's unbuffered corner.
func (n *Network) retireWave(org int32, cs *CycleStats) {
	n.lat.Add(float64(n.now-n.pendAt[org]) + 1)
	n.queued--
	cs.Delivered++
	if n.probe != nil {
		n.probe.CloseRec(n.pendTrace[org], n.stages, probe.EvDeliver, n.now)
		n.pendTrace[org] = -1
	}
	if n.anat != nil {
		n.anat.Deliver0(int(org), n.now)
	}
	if n.deliver != nil {
		n.deliver(n.pending[org], int64(uint32(n.pendAt[org])))
	}
	n.pending[org] = NoRequest
}

// blockWave handles an unbuffered packet blocked at stage s: Drop
// discards it, Backpressure retains it for resubmission. A retained
// packet is parked — it will resubmit forever while the mask stands —
// when any bucket on its unique switch path has no live sub-wire left;
// unlike an EDN, a delta's switch path is fully pinned by the (input,
// destination) pair, so the walk classifies exactly.
func (n *Network) blockWave(org int32, s int, cs *CycleStats) {
	if n.opts.Policy == Drop {
		n.pending[org] = NoRequest
		n.queued--
		cs.Dropped++
		n.perStage[s-1]++
		if n.probe != nil {
			n.probe.AddStage(pmDropped, s-1, 1)
			n.probe.CloseRec(n.pendTrace[org], s, probe.EvDrop, n.now)
			n.pendTrace[org] = -1
		}
		if n.anat != nil {
			n.anat.Drop0(int(org), s, n.now)
		}
		return
	}
	parked := n.live != nil && n.pinnedDead(int(org))
	if parked {
		cs.ParkedOnDead++
	}
	if n.probe != nil {
		if parked {
			n.probe.AddStage(pmParked, s-1, 1)
			n.probe.HopRec(n.pendTrace[org], s, probe.EvPark, n.now)
		} else {
			n.probe.AddStage(pmHolBlocked, s-1, 1)
			n.probe.HopRec(n.pendTrace[org], s, probe.EvBlock, n.now)
		}
	}
	if n.anat != nil {
		n.anat.Block0(int(org), s, parked, n.now)
	}
}

// pinnedDead walks the unique group-level path from input i to its
// pending destination and reports whether any en-route bucket has zero
// live sub-wires under the current mask.
func (n *Network) pinnedDead(i int) bool {
	dst := n.pending[i]
	g := i // boundary-0 group label = input wire
	for s := 1; s <= n.l; s++ {
		sw := g / n.b
		dgt := (dst >> n.shift[s-1]) & int(n.maskB)
		if n.liveCap[s-1][sw*n.b+dgt] == 0 {
			return true
		}
		o := sw*n.b + dgt // boundary-s group label
		if gt := n.gtab[s-1]; gt != nil {
			o = int(gt[o])
		}
		g = o
	}
	return false
}
