package dilatedsim

import (
	"fmt"
	"testing"

	"edn/internal/dilated"
	"edn/internal/faults"
	"edn/internal/lifecycle"
	"edn/internal/queuesim"
	"edn/internal/stats"
	"edn/internal/switchfab"
	"edn/internal/topology"
	"edn/internal/traffic"
	"edn/internal/xrand"
)

func dilatedCfg(t testing.TB, b, d, l int) dilated.Config {
	t.Helper()
	cfg, err := dilated.New(b, d, l)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func histogramsEqual(t *testing.T, got, want *stats.Histogram) {
	t.Helper()
	if got.N() != want.N() || got.Sum() != want.Sum() || got.Max() != want.Max() ||
		got.Min() != want.Min() || got.Overflow() != want.Overflow() {
		t.Fatalf("histogram summary mismatch: N %d/%d sum %g/%g max %g/%g",
			got.N(), want.N(), got.Sum(), want.Sum(), got.Max(), want.Max())
	}
	for k := 0; k < got.Buckets(); k++ {
		if got.Count(k) != want.Count(k) {
			t.Fatalf("histogram bucket %d: %d vs %d", k, got.Count(k), want.Count(k))
		}
	}
}

// TestDilationOneMatchesQueuesim pins the structural claim the package
// doc makes: a 1-dilated delta IS the plain delta network EDN(b,b,1,l),
// so the dilated engine must reproduce queuesim bit-for-bit at d=1 —
// same per-cycle stats, same lifetime totals, same latency histogram —
// across geometries, depths (the unbuffered corner included), policies
// and arbiter families, under identical replayed traffic.
func TestDilationOneMatchesQueuesim(t *testing.T) {
	geometries := []struct{ b, l int }{
		{2, 1},
		{2, 3},
		{4, 2},
	}
	depths := []int{0, 1, 3, Unbounded}
	policies := []Policy{Drop, Backpressure}
	factories := []struct {
		name    string
		factory func() switchfab.Arbiter
	}{
		{"priority", nil},
		{"roundrobin", func() switchfab.Arbiter { return &switchfab.RoundRobinArbiter{} }},
	}
	const cycles = 300
	for _, g := range geometries {
		dcfg := dilatedCfg(t, g.b, 1, g.l)
		ecfg, err := topology.NewDelta(g.b, g.b, g.l)
		if err != nil {
			t.Fatal(err)
		}
		if ecfg.Inputs() != dcfg.Ports() || ecfg.Outputs() != dcfg.Ports() {
			t.Fatalf("skeleton mismatch: %v vs %v", ecfg, dcfg)
		}
		for _, depth := range depths {
			for _, policy := range policies {
				for _, fc := range factories {
					name := fmt.Sprintf("b%d-l%d/depth%d/%v/%s", g.b, g.l, depth, policy, fc.name)
					t.Run(name, func(t *testing.T) {
						dn, err := New(dcfg, Options{Depth: depth, Policy: policy, Factory: fc.factory})
						if err != nil {
							t.Fatal(err)
						}
						qn, err := queuesim.New(ecfg, queuesim.Options{Depth: depth, Policy: policy, Factory: fc.factory})
						if err != nil {
							t.Fatal(err)
						}
						gen := traffic.Uniform{Rate: 0.8, Rng: xrand.New(99)}
						dest := make([]int, dcfg.Ports())
						for c := 0; c < cycles; c++ {
							gen.GenerateInto(dest, dcfg.Ports())
							dcs, err := dn.Cycle(dest)
							if err != nil {
								t.Fatal(err)
							}
							qcs, err := qn.Cycle(dest)
							if err != nil {
								t.Fatal(err)
							}
							if dcs != qcs {
								t.Fatalf("cycle %d: stats %+v vs queuesim %+v", c, dcs, qcs)
							}
							if dn.Queued() != qn.Queued() {
								t.Fatalf("cycle %d: queued %d vs %d", c, dn.Queued(), qn.Queued())
							}
						}
						if dn.Totals() != qn.Totals() {
							t.Fatalf("totals %+v vs %+v", dn.Totals(), qn.Totals())
						}
						histogramsEqual(t, dn.Latency(), qn.Latency())
					})
				}
			}
		}
	}
}

// TestDilationOneFaultedMatchesQueuesim extends the d=1 pin to degraded
// mode: a dead sub-wire (Boundary, Group, 0) of the 1-dilated delta is
// the dead interstage wire (Boundary, Wire=Group) of EDN(b,b,1,l), so
// the two engines must agree under matching fault sets, including an
// in-place mask swap mid-run and the repair. The unbuffered corner is
// compared with ParkedOnDead masked out: queuesim's depth-0 engine
// deliberately declines to classify pinned paths beyond stage 1 for the
// c=1 corner (see its cycleUnbuffered), while the dilated engine walks
// the whole pinned path — strictly more complete, so it may only ever
// report more parked packets, never fewer.
func TestDilationOneFaultedMatchesQueuesim(t *testing.T) {
	b, l := 2, 3
	dcfg := dilatedCfg(t, b, 1, l)
	ecfg, err := topology.NewDelta(b, b, l)
	if err != nil {
		t.Fatal(err)
	}
	// One fault timeline, swapped in thirds: healthy, faulted, repaired.
	// Dilated sub-wire IDs name stage-output (pre-shuffle) labels while
	// faults.WireID names the post-shuffle boundary wire, so the EDN
	// twin of group g is its image under the interstage gamma.
	rng := xrand.New(7)
	var dset dilated.FaultSet
	var eset faults.Set
	for bd := 1; bd <= l; bd++ {
		tab := ecfg.InterstageTable(bd)
		for g := 0; g < dcfg.Ports(); g++ {
			if rng.Bool(0.15) {
				dset.SubWires = append(dset.SubWires, dilated.SubWireID{Boundary: bd, Group: g, Wire: 0})
				w := g
				if tab != nil {
					w = int(tab[g])
				}
				eset.Wires = append(eset.Wires, faults.WireID{Boundary: bd, Wire: w})
			}
		}
	}
	dm := MustCompile(dcfg, dset)
	em := faults.MustCompile(ecfg, eset)
	empty := faults.MustCompile(ecfg, faults.Set{})

	for _, depth := range []int{0, 2} {
		for _, policy := range []Policy{Drop, Backpressure} {
			t.Run(fmt.Sprintf("depth%d/%v", depth, policy), func(t *testing.T) {
				dn, err := New(dcfg, Options{Depth: depth, Policy: policy})
				if err != nil {
					t.Fatal(err)
				}
				qn, err := queuesim.New(ecfg, queuesim.Options{Depth: depth, Policy: policy})
				if err != nil {
					t.Fatal(err)
				}
				gen := traffic.Uniform{Rate: 0.9, Rng: xrand.New(3)}
				dest := make([]int, dcfg.Ports())
				const third = 120
				for c := 0; c < 3*third; c++ {
					switch c {
					case third:
						if err := dn.UpdateFaults(dm); err != nil {
							t.Fatal(err)
						}
						if err := qn.UpdateFaults(em); err != nil {
							t.Fatal(err)
						}
					case 2 * third:
						if err := dn.UpdateFaults(nil); err != nil {
							t.Fatal(err)
						}
						if err := qn.UpdateFaults(empty); err != nil {
							t.Fatal(err)
						}
					}
					gen.GenerateInto(dest, dcfg.Ports())
					dcs, err := dn.Cycle(dest)
					if err != nil {
						t.Fatal(err)
					}
					qcs, err := qn.Cycle(dest)
					if err != nil {
						t.Fatal(err)
					}
					if depth == 0 && policy == Backpressure {
						if dcs.ParkedOnDead < qcs.ParkedOnDead {
							t.Fatalf("cycle %d: dilated parked %d < queuesim %d", c, dcs.ParkedOnDead, qcs.ParkedOnDead)
						}
						dcs.ParkedOnDead, qcs.ParkedOnDead = 0, 0
					}
					if dcs != qcs {
						t.Fatalf("cycle %d: stats %+v vs queuesim %+v", c, dcs, qcs)
					}
				}
				if dn.Totals() != qn.Totals() {
					t.Fatalf("totals %+v vs %+v", dn.Totals(), qn.Totals())
				}
				histogramsEqual(t, dn.Latency(), qn.Latency())
			})
		}
	}
}

// TestConservation asserts the packet ledger across dilations, depths,
// policies and a mid-run fault swap: Injected == Refused + Delivered +
// Dropped + Stranded + Queued after every cycle.
func TestConservation(t *testing.T) {
	geometries := []struct{ b, d, l int }{
		{2, 2, 2},
		{4, 2, 2},
		{2, 4, 3},
	}
	depths := []int{0, 1, 4, Unbounded}
	policies := []Policy{Drop, Backpressure}
	for _, g := range geometries {
		cfg := dilatedCfg(t, g.b, g.d, g.l)
		plan := NewPlan(cfg, xrand.New(11))
		masks := MustCompile(cfg, plan.At(0.2))
		for _, depth := range depths {
			for _, policy := range policies {
				t.Run(fmt.Sprintf("%v/depth%d/%v", cfg, depth, policy), func(t *testing.T) {
					net, err := New(cfg, Options{Depth: depth, Policy: policy})
					if err != nil {
						t.Fatal(err)
					}
					gen := traffic.Uniform{Rate: 1, Rng: xrand.New(5)}
					dest := make([]int, cfg.Ports())
					check := func(c int) {
						tot := net.Totals()
						if got := tot.Refused + tot.Delivered + tot.Dropped + tot.Stranded + net.Queued(); got != tot.Injected {
							t.Fatalf("cycle %d: conservation broken: injected %d != accounted %d (%+v, queued %d)",
								c, tot.Injected, got, tot, net.Queued())
						}
					}
					for c := 0; c < 200; c++ {
						switch c {
						case 80:
							if err := net.UpdateFaults(masks); err != nil {
								t.Fatal(err)
							}
						case 140:
							if err := net.UpdateFaults(nil); err != nil {
								t.Fatal(err)
							}
						}
						check(c)
						gen.GenerateInto(dest, cfg.Ports())
						if _, err := net.Cycle(dest); err != nil {
							t.Fatal(err)
						}
					}
					check(200)
				})
			}
		}
	}
}

// TestUpdateFaultsMatchesConstruction pins the in-place swap against
// building the network with the masks from the start: identical
// subsequent behavior, cycle for cycle.
func TestUpdateFaultsMatchesConstruction(t *testing.T) {
	cfg := dilatedCfg(t, 2, 2, 3)
	plan := NewPlan(cfg, xrand.New(23))
	masks := MustCompile(cfg, plan.At(0.25))
	for _, depth := range []int{0, 3} {
		for _, policy := range []Policy{Drop, Backpressure} {
			t.Run(fmt.Sprintf("depth%d/%v", depth, policy), func(t *testing.T) {
				built, err := New(cfg, Options{Depth: depth, Policy: policy, Faults: masks})
				if err != nil {
					t.Fatal(err)
				}
				swapped, err := New(cfg, Options{Depth: depth, Policy: policy})
				if err != nil {
					t.Fatal(err)
				}
				if err := swapped.UpdateFaults(masks); err != nil {
					t.Fatal(err)
				}
				gen := traffic.Uniform{Rate: 0.9, Rng: xrand.New(17)}
				dest := make([]int, cfg.Ports())
				for c := 0; c < 200; c++ {
					gen.GenerateInto(dest, cfg.Ports())
					a, err := built.Cycle(dest)
					if err != nil {
						t.Fatal(err)
					}
					b, err := swapped.Cycle(dest)
					if err != nil {
						t.Fatal(err)
					}
					if a != b {
						t.Fatalf("cycle %d: built %+v vs swapped %+v", c, a, b)
					}
				}
				histogramsEqual(t, swapped.Latency(), built.Latency())
			})
		}
	}
}

// TestStrandingAndRepair exercises the PR 4 semantics on sub-wires:
// packets queued on a sub-wire that dies under them are discarded into
// Totals.Stranded under Drop; under Backpressure they park (counted
// every cycle in ParkedOnDead) and are delivered intact after repair.
func TestStrandingAndRepair(t *testing.T) {
	cfg := dilatedCfg(t, 2, 2, 2)
	// Kill every sub-wire of boundary 1: all queued boundary-1 packets
	// strand and stage 1 heads park (every bucket has capacity 0).
	var all dilated.FaultSet
	for g := 0; g < cfg.Ports(); g++ {
		for w := 0; w < cfg.D; w++ {
			all.SubWires = append(all.SubWires, dilated.SubWireID{Boundary: 1, Group: g, Wire: w})
		}
	}
	masks := MustCompile(cfg, all)

	t.Run("drop-strands", func(t *testing.T) {
		net, err := New(cfg, Options{Depth: 4, Policy: Drop})
		if err != nil {
			t.Fatal(err)
		}
		gen := traffic.Uniform{Rate: 1, Rng: xrand.New(4)}
		dest := make([]int, cfg.Ports())
		for c := 0; c < 20; c++ {
			gen.GenerateInto(dest, cfg.Ports())
			if _, err := net.Cycle(dest); err != nil {
				t.Fatal(err)
			}
		}
		if net.Queued() == 0 {
			t.Fatal("no packets in flight before the fault")
		}
		if err := net.UpdateFaults(masks); err != nil {
			t.Fatal(err)
		}
		if net.Totals().Stranded == 0 {
			t.Fatal("killing a loaded boundary stranded nothing under Drop")
		}
	})

	t.Run("backpressure-parks-then-repairs", func(t *testing.T) {
		net, err := New(cfg, Options{Depth: 4, Policy: Backpressure})
		if err != nil {
			t.Fatal(err)
		}
		gen := traffic.Uniform{Rate: 1, Rng: xrand.New(4)}
		dest := make([]int, cfg.Ports())
		for c := 0; c < 20; c++ {
			gen.GenerateInto(dest, cfg.Ports())
			if _, err := net.Cycle(dest); err != nil {
				t.Fatal(err)
			}
		}
		if err := net.UpdateFaults(masks); err != nil {
			t.Fatal(err)
		}
		if net.Totals().Stranded != 0 {
			t.Fatal("Backpressure must park, not strand")
		}
		idle := make([]int, cfg.Ports())
		for i := range idle {
			idle[i] = NoRequest
		}
		cs, err := net.Cycle(idle)
		if err != nil {
			t.Fatal(err)
		}
		if cs.ParkedOnDead == 0 {
			t.Fatal("no parked packets reported on a fully dead boundary")
		}
		before := net.Totals()
		if err := net.UpdateFaults(nil); err != nil {
			t.Fatal(err)
		}
		if _, err := net.Drain(10_000); err != nil {
			t.Fatal(err)
		}
		after := net.Totals()
		if after.Delivered-before.Delivered == 0 {
			t.Fatal("repair released no parked packets")
		}
		if got := after.Refused + after.Delivered + after.Dropped + after.Stranded; got != after.Injected {
			t.Fatalf("ledger broken after repair: %+v", after)
		}
	})
}

// TestSeveredPortUnreachable: killing every sub-wire of a final link
// group makes that output port unreachable — the reachability census
// drops and packets addressed there can never retire.
func TestSeveredPortUnreachable(t *testing.T) {
	cfg := dilatedCfg(t, 2, 2, 2)
	var set dilated.FaultSet
	for w := 0; w < cfg.D; w++ {
		set.SubWires = append(set.SubWires, dilated.SubWireID{Boundary: cfg.L, Group: 1, Wire: w})
	}
	masks := MustCompile(cfg, set)
	if got, want := masks.ReachableOutputs(), cfg.Ports()-1; got != want {
		t.Fatalf("ReachableOutputs = %d, want %d", got, want)
	}
	net, err := New(cfg, Options{Depth: 2, Policy: Drop, Faults: masks})
	if err != nil {
		t.Fatal(err)
	}
	dest := make([]int, cfg.Ports())
	for i := range dest {
		dest[i] = 1 // everyone aims at the severed port
	}
	for c := 0; c < 50; c++ {
		if _, err := net.Cycle(dest); err != nil {
			t.Fatal(err)
		}
	}
	if net.Totals().Delivered != 0 {
		t.Fatalf("severed port delivered %d packets", net.Totals().Delivered)
	}
}

// TestMaskValidation covers Compile's range checks and the engine's
// config-mismatch rejection.
func TestMaskValidation(t *testing.T) {
	cfg := dilatedCfg(t, 2, 2, 2)
	bad := []dilated.FaultSet{
		{SubWires: []dilated.SubWireID{{Boundary: 0, Group: 0, Wire: 0}}},
		{SubWires: []dilated.SubWireID{{Boundary: cfg.L + 1, Group: 0, Wire: 0}}},
		{SubWires: []dilated.SubWireID{{Boundary: 1, Group: cfg.Ports(), Wire: 0}}},
		{SubWires: []dilated.SubWireID{{Boundary: 1, Group: 0, Wire: cfg.D}}},
	}
	for i, set := range bad {
		if _, err := Compile(cfg, set); err == nil {
			t.Errorf("bad set %d compiled", i)
		}
	}
	// Duplicates are idempotent.
	m := MustCompile(cfg, dilated.FaultSet{SubWires: []dilated.SubWireID{
		{Boundary: 1, Group: 0, Wire: 1}, {Boundary: 1, Group: 0, Wire: 1},
	}})
	if m.DeadSubWires() != 1 {
		t.Errorf("duplicate sub-wire counted twice: %d", m.DeadSubWires())
	}
	other := dilatedCfg(t, 2, 2, 3)
	net, err := New(other, Options{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.UpdateFaults(m); err == nil {
		t.Error("mask for another configuration accepted")
	}
}

// TestPlanNests: rising fractions grow one fixed failure story.
func TestPlanNests(t *testing.T) {
	cfg := dilatedCfg(t, 2, 2, 3)
	plan := NewPlan(cfg, xrand.New(31))
	prev := map[dilated.SubWireID]bool{}
	prevLen := 0
	for _, f := range []float64{0, 0.1, 0.3, 0.7, 1} {
		set := plan.At(f)
		cur := map[dilated.SubWireID]bool{}
		for _, id := range set.SubWires {
			cur[id] = true
		}
		for id := range prev {
			if !cur[id] {
				t.Fatalf("fraction %g lost sub-wire %+v", f, id)
			}
		}
		if len(cur) < prevLen {
			t.Fatalf("fraction %g shrank the set", f)
		}
		prev, prevLen = cur, len(cur)
	}
	if got := len(plan.At(1).SubWires); got != cfg.L*cfg.Ports()*cfg.D {
		t.Fatalf("At(1) kills %d sub-wires, want the whole population %d", got, cfg.L*cfg.Ports()*cfg.D)
	}
}

// TestChurn: deterministic per seed, drifts toward the steady-state
// dead fraction, and emits compile-able sets.
func TestChurn(t *testing.T) {
	cfg := dilatedCfg(t, 2, 2, 3)
	mtbf, mttr := 16.0, 4.0
	a, err := NewChurn(cfg, mtbf, mttr, lifecycle.Exponential, xrand.New(41))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewChurn(cfg, mtbf, mttr, lifecycle.Exponential, xrand.New(41))
	if err != nil {
		t.Fatal(err)
	}
	var avg float64
	const epochs = 400
	for e := 0; e < epochs; e++ {
		sa, sb := a.Step(), b.Step()
		if len(sa.SubWires) != len(sb.SubWires) {
			t.Fatalf("epoch %d: same seed diverged (%d vs %d dead)", e, len(sa.SubWires), len(sb.SubWires))
		}
		if _, err := Compile(cfg, sa); err != nil {
			t.Fatalf("epoch %d: churn emitted an invalid set: %v", e, err)
		}
		if e >= epochs/2 {
			avg += a.DeadFraction()
		}
	}
	avg /= epochs / 2
	want := mttr / (mtbf + mttr)
	if avg < want*0.7 || avg > want*1.3 {
		t.Fatalf("steady-state dead fraction %.3f, want near %.3f", avg, want)
	}
	if _, err := NewChurn(cfg, 0.5, 4, lifecycle.Exponential, xrand.New(1)); err == nil {
		t.Error("MTBF < 1 accepted")
	}
	if _, err := NewChurn(cfg, 4, 0.5, lifecycle.Exponential, xrand.New(1)); err == nil {
		t.Error("MTTR < 1 accepted")
	}
}

// TestOptionValidation covers the constructor's input checking.
func TestOptionValidation(t *testing.T) {
	cfg := dilatedCfg(t, 2, 2, 2)
	if _, err := New(cfg, Options{Depth: -2}); err == nil {
		t.Error("depth -2 accepted")
	}
	if _, err := New(cfg, Options{Depth: 1, Policy: Policy(9)}); err == nil {
		t.Error("unknown policy accepted")
	}
	net, err := New(cfg, Options{Depth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Cycle(make([]int, 3)); err == nil {
		t.Error("wrong-length injection vector accepted")
	}
	bad := make([]int, cfg.Ports())
	bad[0] = cfg.Ports()
	if _, err := net.Cycle(bad); err == nil {
		t.Error("out-of-range destination accepted")
	}
}
