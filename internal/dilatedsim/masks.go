package dilatedsim

import (
	"fmt"

	"edn/internal/dilated"
	"edn/internal/lifecycle"
	"edn/internal/topology"
	"edn/internal/xrand"
)

// Masks is a compiled dilated fault set: per-boundary sub-wire
// availability rows in exactly the label space the engine's grant loop
// indexes (sub-wire group*d + wire). It is the simulator-facing sibling
// of dilated.Degraded, which folds the same faults into capacity
// histograms for the mean-field recursion — Compile keeps the
// per-sub-wire identity the histograms discard, because a packet
// simulator must know *which* sub-wire is dead, not just how many.
// Unfaulted boundaries compile to nil rows so the empty mask keeps the
// engine on its unmasked fast path. Compile once, share freely: the
// engine never mutates a mask.
type Masks struct {
	cfg  dilated.Config
	rows [][]bool // [boundary-1][group*d + wire]; nil = fully live
	dead int
}

// Compile validates set against cfg and folds it into per-boundary
// availability rows. A zero set compiles to the empty mask. Duplicate
// sub-wires are allowed and idempotent, mirroring dilated.CompileFaults.
func Compile(cfg dilated.Config, set dilated.FaultSet) (*Masks, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Masks{cfg: cfg, rows: make([][]bool, cfg.L)}
	ports := cfg.Ports()
	for _, id := range set.SubWires {
		switch {
		case id.Boundary < 1 || id.Boundary > cfg.L:
			return nil, fmt.Errorf("dilatedsim: boundary %d out of range [1,%d]", id.Boundary, cfg.L)
		case id.Group < 0 || id.Group >= ports:
			return nil, fmt.Errorf("dilatedsim: group %d out of range [0,%d)", id.Group, ports)
		case id.Wire < 0 || id.Wire >= cfg.D:
			return nil, fmt.Errorf("dilatedsim: sub-wire %d out of range [0,%d)", id.Wire, cfg.D)
		}
		row := m.rows[id.Boundary-1]
		if row == nil {
			row = make([]bool, ports*cfg.D)
			for i := range row {
				row[i] = true
			}
			m.rows[id.Boundary-1] = row
		}
		if row[id.Group*cfg.D+id.Wire] {
			row[id.Group*cfg.D+id.Wire] = false
			m.dead++
		}
	}
	return m, nil
}

// MustCompile is Compile for tests and examples with known-good sets.
func MustCompile(cfg dilated.Config, set dilated.FaultSet) *Masks {
	m, err := Compile(cfg, set)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the configuration the masks were compiled for.
func (m *Masks) Config() dilated.Config { return m.cfg }

// Empty reports whether the masks (or a nil receiver) disable nothing.
func (m *Masks) Empty() bool { return m == nil || m.dead == 0 }

// DeadSubWires returns the number of distinct dead sub-wires.
func (m *Masks) DeadSubWires() int {
	if m == nil {
		return 0
	}
	return m.dead
}

// ReachableOutputs returns the number of output ports still connected
// to at least one input: a group-level forward flood over the delta
// skeleton, where a link group conducts while any of its d sub-wires
// lives. It is the dilated counterpart of faults.Masks.ReachableOutputs
// and feeds the same reachability column of the sweep reports.
func (m *Masks) ReachableOutputs() int {
	return m.ReachableOutputsInto(make([]bool, m.cfg.Ports()))
}

// ReachableOutputsInto is ReachableOutputs exposing the per-port
// verdict: dst[p] is set to whether output port p is reachable, and the
// count is returned. dst must have length Ports(). Closed-loop drivers
// use the vector as an avoidance list. The flood is an epoch-boundary
// operation (it allocates scratch), not a per-cycle one.
func (m *Masks) ReachableOutputsInto(dst []bool) int {
	ports := m.cfg.Ports()
	if len(dst) != ports {
		panic(fmt.Sprintf("dilatedsim: ReachableOutputsInto got %d slots, want %d ports", len(dst), ports))
	}
	if m.Empty() {
		for i := range dst {
			dst[i] = true
		}
		return ports
	}
	b, d, l := m.cfg.B, m.cfg.D, m.cfg.L
	delta, err := topology.New(b, b, 1, l)
	if err != nil {
		panic(fmt.Sprintf("dilatedsim: %v lost its delta skeleton: %v", m.cfg, err))
	}
	cur := make([]bool, ports)
	next := make([]bool, ports)
	for i := range cur {
		cur[i] = true // every input port is live in the sub-wire model
	}
	nsw := ports / b
	for s := 1; s <= l; s++ {
		row := m.rows[s-1]
		tab := delta.InterstageTable(s) // nil at s == l: groups feed ports
		for i := range next {
			next[i] = false
		}
		for sw := 0; sw < nsw; sw++ {
			any := false
			for g := 0; g < b; g++ {
				if cur[sw*b+g] {
					any = true
					break
				}
			}
			if !any {
				continue
			}
			for bucket := 0; bucket < b; bucket++ {
				o := sw*b + bucket
				liveGroup := row == nil
				if !liveGroup {
					for w := 0; w < d; w++ {
						if row[o*d+w] {
							liveGroup = true
							break
						}
					}
				}
				if !liveGroup {
					continue
				}
				down := o
				if tab != nil {
					down = int(tab[o])
				}
				next[down] = true
			}
		}
		cur, next = next, cur
	}
	n := 0
	for p, ok := range cur {
		dst[p] = ok
		if ok {
			n++
		}
	}
	return n
}

// String renders a census.
func (m *Masks) String() string {
	return fmt.Sprintf("dilatedsim.Masks{%v: %d dead sub-wires}", m.cfg, m.DeadSubWires())
}

// Plan is a nested family of dilated fault sets: At(f1) is a subset of
// At(f2) whenever f1 <= f2, so a sweep's rising fractions grow one
// fixed failure story instead of resampling the world — the same paired
// comparison faults.Plan gives the EDN side of a sweep. Severities are
// drawn in BernoulliSubWires order (boundaries, groups, wires
// ascending), so a given (cfg, rng state) is reproducible.
type Plan struct {
	cfg dilated.Config
	sev [][]float64 // [boundary-1][group*d + wire]
}

// NewPlan draws the per-sub-wire severities for cfg from rng.
func NewPlan(cfg dilated.Config, rng *xrand.Rand) *Plan {
	p := &Plan{cfg: cfg, sev: make([][]float64, cfg.L)}
	for bd := 1; bd <= cfg.L; bd++ {
		row := make([]float64, cfg.Ports()*cfg.D)
		for i := range row {
			row[i] = rng.Float64()
		}
		p.sev[bd-1] = row
	}
	return p
}

// Config returns the plan's network configuration.
func (p *Plan) Config() dilated.Config { return p.cfg }

// At returns the fault set of fraction f: every sub-wire whose severity
// is below f. f <= 0 is the empty set; f >= 1 kills every sub-wire.
func (p *Plan) At(f float64) dilated.FaultSet {
	var set dilated.FaultSet
	d := p.cfg.D
	for bd, row := range p.sev {
		for i, u := range row {
			if u < f {
				set.SubWires = append(set.SubWires, dilated.SubWireID{
					Boundary: bd + 1, Group: i / d, Wire: i % d,
				})
			}
		}
	}
	return set
}

// churnComponent is one alternating-renewal state machine, the same
// shape as lifecycle's.
type churnComponent struct {
	dead  bool
	timer int32
}

// Churn is a failure/repair process over a dilated network's sub-wires:
// every sub-wire runs an independent alternating-renewal clock with the
// given MTBF/MTTR and timing, drawing holding times from the same
// lifecycle primitives as the EDN-side Process — so a lifetime
// comparison churns both networks' redundancy with identically
// distributed outages. Step advances one epoch and returns the fault
// set now in effect, in the vocabulary Compile consumes. It is not safe
// for concurrent use; sweeps build one per shard.
type Churn struct {
	cfg    dilated.Config
	mtbf   float64
	mttr   float64
	timing lifecycle.Timing
	rng    *xrand.Rand

	epoch int
	total int
	dead  int
	comps [][]churnComponent // [boundary-1][group*d + wire]
	set   dilated.FaultSet   // reused backing, valid until the next Step
}

// NewChurn validates the renewal parameters and draws the initial
// sub-wire phases from rng. All sub-wires start alive; the population
// drifts toward MTTR/(MTBF+MTTR) dead over the first few MTTRs.
func NewChurn(cfg dilated.Config, mtbf, mttr float64, timing lifecycle.Timing, rng *xrand.Rand) (*Churn, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if mtbf < 1 {
		return nil, fmt.Errorf("dilatedsim: MTBF %g must be at least 1 epoch", mtbf)
	}
	if mttr < 1 {
		return nil, fmt.Errorf("dilatedsim: MTTR %g must be at least 1 epoch", mttr)
	}
	switch timing {
	case lifecycle.Exponential, lifecycle.Deterministic:
	default:
		return nil, fmt.Errorf("dilatedsim: unknown timing %v", timing)
	}
	c := &Churn{cfg: cfg, mtbf: mtbf, mttr: mttr, timing: timing, rng: rng}
	c.comps = make([][]churnComponent, cfg.L)
	for bd := 1; bd <= cfg.L; bd++ {
		row := make([]churnComponent, cfg.Ports()*cfg.D)
		for i := range row {
			row[i] = churnComponent{timer: lifecycle.InitialTTF(timing, mtbf, rng)}
		}
		c.comps[bd-1] = row
		c.total += len(row)
	}
	return c, nil
}

// Config returns the process's network configuration.
func (c *Churn) Config() dilated.Config { return c.cfg }

// Epoch returns the number of Step calls so far.
func (c *Churn) Epoch() int { return c.epoch }

// DeadFraction returns the currently-dead fraction of the sub-wires.
func (c *Churn) DeadFraction() float64 {
	if c.total == 0 {
		return 0
	}
	return float64(c.dead) / float64(c.total)
}

// Step advances one epoch and returns the fault set now in effect. The
// returned set reuses the process's backing slice: it is valid until
// the next Step call, which is exactly the lifetime of the
// Compile-and-apply it feeds.
func (c *Churn) Step() dilated.FaultSet {
	c.epoch++
	c.set.SubWires = c.set.SubWires[:0]
	d := c.cfg.D
	for bd, row := range c.comps {
		for i := range row {
			comp := &row[i]
			comp.timer--
			if comp.timer <= 0 {
				if comp.dead {
					comp.dead = false
					c.dead--
					comp.timer = lifecycle.HoldingTime(c.timing, c.mtbf, c.rng)
				} else {
					comp.dead = true
					c.dead++
					comp.timer = lifecycle.HoldingTime(c.timing, c.mttr, c.rng)
				}
			}
			if comp.dead {
				c.set.SubWires = append(c.set.SubWires, dilated.SubWireID{
					Boundary: bd + 1, Group: i / d, Wire: i % d,
				})
			}
		}
	}
	return c.set
}
