package dilatedsim

import (
	"fmt"
	"math"

	"edn/internal/dilated"
	"edn/internal/topology"
)

// Tables is the prebuilt, immutable routing geometry of one dilated
// delta: the group-level delta tables plus their sub-wire expansion —
// the O(ports*d) arrays New spends its construction time on. One
// Tables value can back any number of concurrently running networks;
// nothing mutates it after construction. The dilated twin of
// topology.Tables.
type Tables struct {
	dcfg   dilated.Config
	gtab   [][]int32 // group-level delta tables; nil = identity
	subTab [][]int32 // gtab expanded to sub-wire labels (shared when d == 1)
	bytes  int64
}

// NewTables validates dcfg and materializes both table levels.
// Networks built from the same Tables value share the slices (no copy)
// and are bit-for-bit identical to networks that built their own.
func NewTables(dcfg dilated.Config) (*Tables, error) {
	if err := dcfg.Validate(); err != nil {
		return nil, err
	}
	ports := dcfg.Ports()
	if int64(ports)*int64(dcfg.D) > math.MaxInt32 {
		return nil, fmt.Errorf("dilatedsim: %v has %d sub-wires per boundary, beyond the simulable limit", dcfg, int64(ports)*int64(dcfg.D))
	}
	delta, err := topology.New(dcfg.B, dcfg.B, 1, dcfg.L)
	if err != nil {
		return nil, fmt.Errorf("dilatedsim: %v has no delta skeleton: %w", dcfg, err)
	}
	t := &Tables{
		dcfg:   dcfg,
		gtab:   make([][]int32, dcfg.L),
		subTab: make([][]int32, dcfg.L),
	}
	for s := 1; s <= dcfg.L; s++ {
		tab := delta.InterstageTable(s) // nil at s == l: groups feed ports
		t.gtab[s-1] = tab
		t.bytes += int64(len(tab)) * 4
		switch {
		case tab == nil:
			// identity at both levels
		case dcfg.D == 1:
			t.subTab[s-1] = tab // sub-wire labels are group labels
		default:
			sub := make([]int32, ports*dcfg.D)
			for o := range sub {
				sub[o] = tab[o/dcfg.D]*int32(dcfg.D) + int32(o%dcfg.D)
			}
			t.subTab[s-1] = sub
			t.bytes += int64(len(sub)) * 4
		}
	}
	return t, nil
}

// Config returns the configuration the tables were built for.
func (t *Tables) Config() dilated.Config { return t.dcfg }

// Bytes returns the memory footprint of the table payload, the unit of
// the serve-layer cache's byte budget.
func (t *Tables) Bytes() int64 { return t.bytes }
