package faults

// The analytic side of degraded-mode operation: the paper's Theorem 3
// rate recursion r_{i+1} = E(r_i)/c assumes every wire of every bucket
// is alive and every wire of a stage carries the same rate. Faults
// break both assumptions, but the recursion survives if it is carried
// per wire: each switch sees the (now heterogeneous) rates of its own
// input wires, each bucket accepts up to its count of *live* wires, and
// the accepted expectation spreads evenly over exactly those wires.
// The number of requests aimed at one bucket is then Poisson-binomial
// rather than binomial; everything else is Section 3.2 unchanged.

// ExpectedUniformBandwidth returns the expected delivered requests per
// cycle of the masked network under uniform iid traffic at offered rate
// r per input, by the per-wire generalization of the Theorem 3
// recursion. With an empty mask it reduces exactly to
// analytic.Bandwidth(cfg, r); with faults it is the independence-
// approximation prediction the simulator cross-checks for small fault
// counts (the approximation error grows with fault correlation, as it
// does with load for the unfaulted closed form). m must be a compiled
// mask (nil has no topology); Compile(cfg, Set{}) is the fault-free
// one.
func ExpectedUniformBandwidth(m *Masks, r float64) float64 {
	if m == nil {
		panic("faults: ExpectedUniformBandwidth needs a compiled mask; Compile(cfg, Set{}) is the fault-free one")
	}
	cfg := m.cfg
	rates := make([]float64, cfg.Inputs())
	liveIn := m.LiveInputs()
	for i := range rates {
		if liveIn == nil || liveIn[i] {
			rates[i] = r
		}
	}

	bc := cfg.B * cfg.C
	invB := 1 / float64(cfg.B)
	pmf := make([]float64, cfg.C)
	for s := 1; s <= cfg.L; s++ {
		row := m.LiveStageOutputs(s)
		wires := cfg.WiresAfterStage(s)
		next := make([]float64, wires)
		tab := cfg.InterstageTable(s)
		nsw := cfg.SwitchesInStage(s)
		for sw := 0; sw < nsw; sw++ {
			in := rates[sw*cfg.A : (sw+1)*cfg.A]
			for d := 0; d < cfg.B; d++ {
				base := sw*bc + d*cfg.C
				kLive := cfg.C
				if row != nil {
					kLive = 0
					for k := 0; k < cfg.C; k++ {
						if row[base+k] {
							kLive++
						}
					}
					if kLive == 0 {
						continue
					}
				}
				perWire := expectedMin(in, invB, kLive, pmf) / float64(kLive)
				for k := 0; k < cfg.C; k++ {
					o := base + k
					if row != nil && !row[o] {
						continue
					}
					down := o
					if tab != nil {
						down = int(tab[o])
					}
					next[down] = perWire
				}
			}
		}
		rates = next
	}

	// Crossbar stage: each live output port delivers iff at least one of
	// its switch's c input wires requests it (uniform over the c ports).
	row := m.LiveStageOutputs(cfg.L + 1)
	invC := 1 / float64(cfg.C)
	delivered := 0.0
	for t := 0; t < cfg.Outputs(); t++ {
		if row != nil && !row[t] {
			continue
		}
		sw := t / cfg.C
		pIdle := 1.0
		for p := 0; p < cfg.C; p++ {
			pIdle *= 1 - rates[sw*cfg.C+p]*invC
		}
		delivered += 1 - pIdle
	}
	return delivered
}

// ExpectedUniformPA returns the expected probability of acceptance of
// the masked network at offered rate r: expected bandwidth over
// expected offered requests. Requests arriving on dead inputs are
// offered and blocked (the engines count them at stage 1), so the
// denominator is the full input count.
func ExpectedUniformPA(m *Masks, r float64) float64 {
	if r == 0 {
		return 1
	}
	return ExpectedUniformBandwidth(m, r) / (r * float64(m.cfg.Inputs()))
}

// expectedMin returns E[min(X, k)] where X counts the inputs requesting
// one particular bucket: input i requests it with probability
// rates[i] * invB, independently. pmf is scratch of length >= k holding
// the running Poisson-binomial distribution P[X = n] for n < k
// (truncated: mass at or above k never flows back below it, so
// E[min(X,k)] = k - sum_{n<k} (k-n) P[X=n] needs only these entries).
func expectedMin(rates []float64, invB float64, k int, pmf []float64) float64 {
	pmf = pmf[:k]
	for i := range pmf {
		pmf[i] = 0
	}
	pmf[0] = 1
	top := 0 // highest index with nonzero mass, capped at k-1
	for _, ri := range rates {
		q := ri * invB
		if q == 0 {
			continue
		}
		if top < k-1 {
			top++
		}
		for n := top; n >= 1; n-- {
			pmf[n] = pmf[n]*(1-q) + pmf[n-1]*q
		}
		pmf[0] *= 1 - q
	}
	e := float64(k)
	for n := 0; n < k; n++ {
		e -= float64(k-n) * pmf[n]
	}
	return e
}
