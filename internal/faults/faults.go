// Package faults models component failures in an Expanded Delta Network
// and compiles them into the per-stage availability masks the routing
// engines consume. The paper's Theorem 2 gives an EDN(a,b,c,l) exactly
// c^l equivalent paths per source/destination pair; internal/core and
// internal/queuesim exploit that freedom for bandwidth. This package
// turns the same freedom into survival: when a wire, a switch output
// port or a whole switch dies, every request whose bucket still owns a
// live wire routes around the fault, and only a fully dead bucket
// blocks.
//
// Three layers:
//
//   - A Set is a declarative fault specification: dead switches, dead
//     interstage wires and dead switch output ports, as explicit ID
//     lists. Sets come from deterministic construction (test vectors,
//     known-bad boards), from Bernoulli sampling, from a nested Plan
//     (monotone sweeps) or from Blast (correlated blast-radius
//     failures).
//   - Compile folds a Set into Masks: one availability row per stage in
//     the stage-local output-wire label space — exactly the labels the
//     fused grant kernels already index — plus an input-side row for
//     faults that sever network inputs. Unfaulted stages compile to nil
//     rows, so the engines keep their bit-for-bit unfaulted fast paths.
//   - ExpectedUniformBandwidth (expected.go) is the analytic
//     counterpart: the paper's Theorem 3 rate recursion generalized to
//     per-wire rates over the masked topology, used to cross-check the
//     measured degradation for small fault counts.
package faults

import (
	"fmt"
	"sort"

	"edn/internal/topology"
	"edn/internal/xrand"
)

// SwitchID names one physical switch: Stage is 1-based (stages 1..l are
// hyperbars, stage l+1 the output crossbars), Switch the index within
// the stage. A dead switch passes no traffic: everything wired into it
// is blocked upstream, and nothing leaves it.
type SwitchID struct {
	Stage  int
	Switch int
}

// WireID names one wire at a stage boundary by its downstream (input
// side) label: Boundary 0 is the network input wires, boundary i
// (1 <= i <= l) the wires between stage i and stage i+1 after the gamma
// shuffle. A dead wire removes one of the c parallel wires of its
// bucket; the bucket survives while any sibling lives.
type WireID struct {
	Boundary int
	Wire     int
}

// PortID names one switch output port in pre-shuffle coordinates:
// output wire `Wire` of bucket `Bucket` of switch `Switch` in `Stage`.
// For the crossbar stage (Stage == l+1) Bucket is the output port and
// Wire must be 0, so a dead crossbar port is a dead network output
// terminal.
type PortID struct {
	Stage  int
	Switch int
	Bucket int
	Wire   int
}

// Set is a declarative fault specification. The zero value is the
// fault-free network. Duplicate entries are allowed and idempotent.
type Set struct {
	Switches []SwitchID
	Wires    []WireID
	Ports    []PortID
}

// IsZero reports whether the set names no faults at all.
func (s Set) IsZero() bool {
	return len(s.Switches) == 0 && len(s.Wires) == 0 && len(s.Ports) == 0
}

// Len returns the number of fault entries (duplicates included).
func (s Set) Len() int { return len(s.Switches) + len(s.Wires) + len(s.Ports) }

// Mode selects which component population a sampled fault fraction
// applies to.
type Mode int

const (
	// WireFaults kills interstage wires (boundaries 1..l) — the regime
	// where bucket multipath (c > 1) pays off directly.
	WireFaults Mode = iota
	// SwitchFaults kills whole switches in every stage.
	SwitchFaults
	// MixedFaults applies the fraction independently to both populations.
	MixedFaults
)

// String renders the mode for reports and flags.
func (m Mode) String() string {
	switch m {
	case WireFaults:
		return "wires"
	case SwitchFaults:
		return "switches"
	case MixedFaults:
		return "mixed"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// ParseMode is the inverse of Mode.String, for flag parsing.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "wires":
		return WireFaults, nil
	case "switches":
		return SwitchFaults, nil
	case "mixed":
		return MixedFaults, nil
	default:
		return 0, fmt.Errorf("faults: unknown mode %q (want wires, switches or mixed)", s)
	}
}

// Bernoulli samples a fault set over cfg: each component of the mode's
// population dies independently with probability p. Wire faults draw
// over the interstage boundaries 1..l; switch faults over every stage
// including the output crossbars. The draw order is fixed (boundaries
// then stages, ascending labels), so a given (cfg, mode, rng state) is
// reproducible.
func Bernoulli(cfg topology.Config, mode Mode, p float64, rng *xrand.Rand) Set {
	var set Set
	if p <= 0 {
		return set
	}
	if mode == WireFaults || mode == MixedFaults {
		for i := 1; i <= cfg.L; i++ {
			for w := 0; w < cfg.WiresAfterStage(i); w++ {
				if rng.Bool(p) {
					set.Wires = append(set.Wires, WireID{Boundary: i, Wire: w})
				}
			}
		}
	}
	if mode == SwitchFaults || mode == MixedFaults {
		for s := 1; s <= cfg.L+1; s++ {
			for sw := 0; sw < cfg.SwitchesInStage(s); sw++ {
				if rng.Bool(p) {
					set.Switches = append(set.Switches, SwitchID{Stage: s, Switch: sw})
				}
			}
		}
	}
	return set
}

// Blast returns the correlated "blast radius" pattern: switches
// [center-radius, center+radius] of one stage all die together — a
// failed board or cabinet taking its neighbors with it. Indices clamp
// to the stage's switch range.
func Blast(cfg topology.Config, stage, center, radius int) (Set, error) {
	if stage < 1 || stage > cfg.L+1 {
		return Set{}, fmt.Errorf("faults: blast stage %d out of range [1,%d]", stage, cfg.L+1)
	}
	if radius < 0 {
		return Set{}, fmt.Errorf("faults: blast radius %d must be non-negative", radius)
	}
	n := cfg.SwitchesInStage(stage)
	if center < 0 || center >= n {
		return Set{}, fmt.Errorf("faults: blast center %d out of range [0,%d)", center, n)
	}
	lo, hi := center-radius, center+radius
	if lo < 0 {
		lo = 0
	}
	if hi > n-1 {
		hi = n - 1
	}
	var set Set
	for sw := lo; sw <= hi; sw++ {
		set.Switches = append(set.Switches, SwitchID{Stage: stage, Switch: sw})
	}
	return set, nil
}

// Plan is a nested family of fault sets: every component of the mode's
// population draws one uniform severity at construction, and At(f)
// returns exactly the components whose severity falls below f. Each
// At(f) is marginally a Bernoulli(f) sample, and the sets are nested —
// At(f1) is a subset of At(f2) whenever f1 <= f2 — so a sweep over
// rising fractions degrades one fixed failure story instead of
// resampling the world at every point. simulate.AvailabilitySweep
// builds one Plan per shard for exactly this reason.
type Plan struct {
	cfg      topology.Config
	mode     Mode
	wires    [][]float64 // [boundary-1][wire] severity, WireFaults/MixedFaults
	switches [][]float64 // [stage-1][switch] severity, SwitchFaults/MixedFaults
}

// NewPlan draws the per-component severities for cfg from rng.
func NewPlan(cfg topology.Config, mode Mode, rng *xrand.Rand) *Plan {
	p := &Plan{cfg: cfg, mode: mode}
	if mode == WireFaults || mode == MixedFaults {
		p.wires = make([][]float64, cfg.L)
		for i := 1; i <= cfg.L; i++ {
			row := make([]float64, cfg.WiresAfterStage(i))
			for w := range row {
				row[w] = rng.Float64()
			}
			p.wires[i-1] = row
		}
	}
	if mode == SwitchFaults || mode == MixedFaults {
		p.switches = make([][]float64, cfg.L+1)
		for s := 1; s <= cfg.L+1; s++ {
			row := make([]float64, cfg.SwitchesInStage(s))
			for sw := range row {
				row[sw] = rng.Float64()
			}
			p.switches[s-1] = row
		}
	}
	return p
}

// Config returns the plan's network configuration.
func (p *Plan) Config() topology.Config { return p.cfg }

// Mode returns the plan's fault population.
func (p *Plan) Mode() Mode { return p.mode }

// At returns the fault set of fraction f: every component whose
// severity is below f. f <= 0 is the empty set; f >= 1 kills the whole
// population.
func (p *Plan) At(f float64) Set {
	var set Set
	for i, row := range p.wires {
		for w, u := range row {
			if u < f {
				set.Wires = append(set.Wires, WireID{Boundary: i + 1, Wire: w})
			}
		}
	}
	for s, row := range p.switches {
		for sw, u := range row {
			if u < f {
				set.Switches = append(set.Switches, SwitchID{Stage: s + 1, Switch: sw})
			}
		}
	}
	return set
}

// sortedIDs renders a Set deterministically for error messages and
// reports: switches, wires, ports, each in ascending order.
func (s Set) String() string {
	sw := append([]SwitchID(nil), s.Switches...)
	sort.Slice(sw, func(i, j int) bool {
		if sw[i].Stage != sw[j].Stage {
			return sw[i].Stage < sw[j].Stage
		}
		return sw[i].Switch < sw[j].Switch
	})
	wi := append([]WireID(nil), s.Wires...)
	sort.Slice(wi, func(i, j int) bool {
		if wi[i].Boundary != wi[j].Boundary {
			return wi[i].Boundary < wi[j].Boundary
		}
		return wi[i].Wire < wi[j].Wire
	})
	return fmt.Sprintf("faults{switches: %v, wires: %v, ports: %d}", sw, wi, len(s.Ports))
}
