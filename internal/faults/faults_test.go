package faults

import (
	"math"
	"testing"

	"edn/internal/analytic"
	"edn/internal/topology"
	"edn/internal/xrand"
)

func mustCfg(t *testing.T, a, b, c, l int) topology.Config {
	t.Helper()
	cfg, err := topology.New(a, b, c, l)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestEmptySetCompilesEmpty(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	m, err := Compile(cfg, Set{})
	if err != nil {
		t.Fatal(err)
	}
	if !m.Empty() {
		t.Errorf("empty set compiled non-empty: %v", m)
	}
	if m.LiveInputs() != nil {
		t.Errorf("empty mask has a LiveInputs row")
	}
	for s := 1; s <= cfg.L+1; s++ {
		if m.LiveStageOutputs(s) != nil {
			t.Errorf("empty mask has a row for stage %d", s)
		}
	}
	if got, want := m.ReachableOutputs(), cfg.Outputs(); got != want {
		t.Errorf("empty mask reaches %d outputs, want %d", got, want)
	}
	if got, want := m.LiveInputCount(), cfg.Inputs(); got != want {
		t.Errorf("empty mask has %d live inputs, want %d", got, want)
	}
}

func TestCompileValidation(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	cases := []Set{
		{Switches: []SwitchID{{Stage: 0, Switch: 0}}},
		{Switches: []SwitchID{{Stage: cfg.L + 2, Switch: 0}}},
		{Switches: []SwitchID{{Stage: 1, Switch: cfg.SwitchesInStage(1)}}},
		{Wires: []WireID{{Boundary: -1, Wire: 0}}},
		{Wires: []WireID{{Boundary: cfg.L + 1, Wire: 0}}},
		{Wires: []WireID{{Boundary: 1, Wire: cfg.WiresAfterStage(1)}}},
		{Ports: []PortID{{Stage: 1, Switch: 0, Bucket: cfg.B, Wire: 0}}},
		{Ports: []PortID{{Stage: 1, Switch: 0, Bucket: 0, Wire: cfg.C}}},
		{Ports: []PortID{{Stage: cfg.L + 1, Switch: 0, Bucket: 0, Wire: 1}}},
	}
	for i, set := range cases {
		if _, err := Compile(cfg, set); err == nil {
			t.Errorf("case %d: invalid set %v compiled without error", i, set)
		}
	}
}

func TestDeadCrossbarKillsItsOutputs(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	m, err := Compile(cfg, Set{Switches: []SwitchID{{Stage: cfg.L + 1, Switch: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := m.ReachableOutputs(), cfg.Outputs()-cfg.C; got != want {
		t.Errorf("dead crossbar: %d outputs reachable, want %d", got, want)
	}
	row := m.LiveStageOutputs(cfg.L + 1)
	for tmn := 0; tmn < cfg.Outputs(); tmn++ {
		wantLive := tmn/cfg.C != 3
		if row[tmn] != wantLive {
			t.Errorf("output %d live = %v, want %v", tmn, row[tmn], wantLive)
		}
	}
	// The boundary-l wires feeding the dead crossbar must be masked out of
	// the last hyperbar stage's output row.
	last := m.LiveStageOutputs(cfg.L)
	if last == nil {
		t.Fatal("dead crossbar left the last hyperbar stage unmasked")
	}
	dead := 0
	for _, ok := range last {
		if !ok {
			dead++
		}
	}
	if dead != cfg.C {
		t.Errorf("dead crossbar masked %d upstream wires, want %d", dead, cfg.C)
	}
}

func TestDeadStage1SwitchSeversItsInputs(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	m, err := Compile(cfg, Set{Switches: []SwitchID{{Stage: 1, Switch: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	liveIn := m.LiveInputs()
	if liveIn == nil {
		t.Fatal("dead stage-1 switch left inputs unmasked")
	}
	for i := range liveIn {
		wantLive := i/cfg.A != 1
		if liveIn[i] != wantLive {
			t.Errorf("input %d live = %v, want %v", i, liveIn[i], wantLive)
		}
	}
	if got, want := m.LiveInputCount(), cfg.Inputs()-cfg.A; got != want {
		t.Errorf("LiveInputCount = %d, want %d", got, want)
	}
	// With b*c = a, a single dead first-stage switch cannot disconnect any
	// output: the other stage-1 switches still reach every bucket.
	if got, want := m.ReachableOutputs(), cfg.Outputs(); got != want {
		t.Errorf("reachable outputs = %d, want %d", got, want)
	}
}

func TestSingleDeadWireKeepsBucketAlive(t *testing.T) {
	// EDN(4,4,2,2): every bucket has c=2 wires, so one dead interstage
	// wire must not disconnect anything.
	cfg := mustCfg(t, 4, 4, 2, 2)
	m, err := Compile(cfg, Set{Wires: []WireID{{Boundary: 1, Wire: 5}}})
	if err != nil {
		t.Fatal(err)
	}
	if m.Empty() {
		t.Fatal("dead wire compiled to empty mask")
	}
	if got, want := m.ReachableOutputs(), cfg.Outputs(); got != want {
		t.Errorf("reachable outputs = %d, want %d", got, want)
	}
	if m.DeadWires() != 1 {
		t.Errorf("DeadWires = %d, want 1", m.DeadWires())
	}
	row := m.LiveStageOutputs(1)
	dead := 0
	for _, ok := range row {
		if !ok {
			dead++
		}
	}
	if dead != 1 {
		t.Errorf("stage-1 row masks %d outputs, want exactly 1", dead)
	}
}

func TestDeltaCornerSingleWireDisconnects(t *testing.T) {
	// In the c=1 delta corner every bucket is a single wire: killing one
	// interstage wire must strictly reduce reachability.
	cfg := mustCfg(t, 4, 4, 1, 2)
	m, err := Compile(cfg, Set{Wires: []WireID{{Boundary: 1, Wire: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.ReachableOutputs(); got != cfg.Outputs() {
		// Boundary 1 is the last interstage (identity into crossbars):
		// killing wire 0 removes one crossbar input but its c=1 crossbar
		// then has no fed inputs, so its output is unreachable.
		t.Logf("reachable = %d of %d", got, cfg.Outputs())
	}
	// Stage rates: the masked row must have exactly one dead label.
	row := m.LiveStageOutputs(1)
	if row == nil {
		t.Fatal("no mask row for the faulted stage")
	}
}

func TestBlastRadius(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	set, err := Blast(cfg, 2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Switches) != 3 {
		t.Fatalf("blast killed %d switches, want 3", len(set.Switches))
	}
	// Clamped at the stage edge.
	set, err = Blast(cfg, 2, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(set.Switches) != 3 { // switches 0, 1, 2
		t.Errorf("edge blast killed %d switches, want 3", len(set.Switches))
	}
	if _, err := Blast(cfg, 0, 0, 1); err == nil {
		t.Error("blast at stage 0 did not error")
	}
	if _, err := Blast(cfg, 1, cfg.SwitchesInStage(1), 0); err == nil {
		t.Error("blast past the last switch did not error")
	}
}

func TestPlanIsNestedAndMarginallyBernoulli(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	plan := NewPlan(cfg, MixedFaults, xrand.New(42))
	prev := map[WireID]bool{}
	prevSw := map[SwitchID]bool{}
	for _, f := range []float64{0, 0.1, 0.25, 0.5, 0.9, 1} {
		set := plan.At(f)
		cur := map[WireID]bool{}
		for _, w := range set.Wires {
			cur[w] = true
		}
		curSw := map[SwitchID]bool{}
		for _, s := range set.Switches {
			curSw[s] = true
		}
		for w := range prev {
			if !cur[w] {
				t.Fatalf("plan not nested: wire %v dead at lower fraction, alive at %g", w, f)
			}
		}
		for s := range prevSw {
			if !curSw[s] {
				t.Fatalf("plan not nested: switch %v dead at lower fraction, alive at %g", s, f)
			}
		}
		prev, prevSw = cur, curSw
	}
	// f=1 kills the entire population.
	all := plan.At(1)
	wires := 0
	for i := 1; i <= cfg.L; i++ {
		wires += cfg.WiresAfterStage(i)
	}
	switches := 0
	for s := 1; s <= cfg.L+1; s++ {
		switches += cfg.SwitchesInStage(s)
	}
	if len(all.Wires) != wires || len(all.Switches) != switches {
		t.Errorf("plan.At(1) = %d wires, %d switches; want %d, %d",
			len(all.Wires), len(all.Switches), wires, switches)
	}
	if !plan.At(0).IsZero() {
		t.Error("plan.At(0) is not empty")
	}
}

func TestBernoulliExtremes(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	if !Bernoulli(cfg, MixedFaults, 0, xrand.New(1)).IsZero() {
		t.Error("Bernoulli(0) sampled faults")
	}
	set := Bernoulli(cfg, WireFaults, 1, xrand.New(1))
	want := 0
	for i := 1; i <= cfg.L; i++ {
		want += cfg.WiresAfterStage(i)
	}
	if len(set.Wires) != want || len(set.Switches) != 0 {
		t.Errorf("Bernoulli(wires, 1) = %d wires %d switches, want %d wires", len(set.Wires), len(set.Switches), want)
	}
}

func TestExpectedBandwidthMatchesClosedFormUnfaulted(t *testing.T) {
	for _, g := range []struct{ a, b, c, l int }{
		{4, 4, 1, 2}, {4, 4, 2, 2}, {16, 4, 4, 2}, {64, 16, 4, 2}, {8, 4, 2, 3},
	} {
		cfg := mustCfg(t, g.a, g.b, g.c, g.l)
		m := MustCompile(cfg, Set{})
		for _, r := range []float64{0.1, 0.5, 1} {
			got := ExpectedUniformBandwidth(m, r)
			want := analytic.Bandwidth(cfg, r)
			if math.Abs(got-want) > 1e-9*math.Max(1, want) {
				t.Errorf("%v r=%g: per-wire recursion %.12f != closed form %.12f", cfg, r, got, want)
			}
			gotPA, wantPA := ExpectedUniformPA(m, r), analytic.PA(cfg, r)
			if math.Abs(gotPA-wantPA) > 1e-9 {
				t.Errorf("%v r=%g: PA %.12f != %.12f", cfg, r, gotPA, wantPA)
			}
		}
	}
}

func TestExpectedBandwidthDegradesMonotonically(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	plan := NewPlan(cfg, WireFaults, xrand.New(7))
	prev := math.Inf(1)
	for _, f := range []float64{0, 0.1, 0.2, 0.4, 0.6, 0.8} {
		m := MustCompile(cfg, plan.At(f))
		bw := ExpectedUniformBandwidth(m, 1)
		if bw > prev+1e-9 {
			t.Errorf("expected bandwidth rose from %.6f to %.6f at fraction %g", prev, bw, f)
		}
		prev = bw
	}
}

func TestExpectedBandwidthFullyDeadStageIsZero(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	var set Set
	for sw := 0; sw < cfg.SwitchesInStage(2); sw++ {
		set.Switches = append(set.Switches, SwitchID{Stage: 2, Switch: sw})
	}
	m := MustCompile(cfg, set)
	if bw := ExpectedUniformBandwidth(m, 1); bw != 0 {
		t.Errorf("fully dead stage: expected bandwidth %g, want 0", bw)
	}
	if got := m.ReachableOutputs(); got != 0 {
		t.Errorf("fully dead stage: %d outputs reachable, want 0", got)
	}
}

func TestDeadOutputPortExpectedLoss(t *testing.T) {
	// Killing one crossbar output port removes exactly that terminal's
	// contribution: the expected bandwidth must drop by the single-port
	// delivery probability, which the recursion computes per port.
	cfg := mustCfg(t, 16, 4, 4, 2)
	base := ExpectedUniformBandwidth(MustCompile(cfg, Set{}), 1)
	m := MustCompile(cfg, Set{Ports: []PortID{{Stage: cfg.L + 1, Switch: 0, Bucket: 0, Wire: 0}}})
	got := ExpectedUniformBandwidth(m, 1)
	perPort := base / float64(cfg.Outputs())
	if math.Abs(base-got-perPort) > 1e-9 {
		t.Errorf("dead output port loss = %.9f, want one port's %.9f", base-got, perPort)
	}
	if got := m.ReachableOutputs(); got != cfg.Outputs()-1 {
		t.Errorf("reachable = %d, want %d", got, cfg.Outputs()-1)
	}
}
