package faults

import (
	"fmt"
	"math"

	"edn/internal/topology"
)

// Masks is a compiled fault set: per-stage availability over the
// stage-local output-wire labels the routing kernels index, plus an
// input-side availability row. Masks are immutable after Compile and
// safe to share across goroutines and engines.
//
// Label spaces:
//
//   - LiveStageOutputs(s) for a hyperbar stage s (1 <= s <= l) covers the
//     W_s pre-shuffle output labels o = switch*(b*c) + bucket*c + wire;
//     a grant may take output o only if the entry is true. The row
//     already folds in everything downstream of the grant: the port
//     itself, the post-gamma interstage wire, and the liveness of the
//     stage s+1 switch that wire feeds.
//   - LiveStageOutputs(l+1) covers the network output terminals; a
//     crossbar delivery to terminal t requires entry t.
//   - LiveInputs covers the network input wires; a request entering on a
//     dead input (severed wire, or dead stage-1 switch) is blocked at
//     stage 1 before any arbitration.
//
// A nil row means "stage fully live"; engines keep their unfaulted
// kernels for nil rows, which is what makes the empty mask bit-for-bit
// free.
//
// A nil *Masks is accepted wherever a mask is optional (Empty, the
// engine constructors, the count accessors). Methods that need the
// topology itself — EngineRows, ReachableOutputs, LiveInputCount,
// ExpectedUniformBandwidth — require a compiled mask; Compile(cfg,
// Set{}) yields the fault-free one.
type Masks struct {
	cfg    topology.Config
	liveIn []bool   // nil = all inputs live
	live   [][]bool // [stage-1]; nil row = stage fully live

	deadSwitches int // distinct dead switches
	deadWires    int // distinct dead interstage/input wires
	deadPorts    int // distinct dead output ports
}

// Compile validates set against cfg and folds it into availability
// masks. A nil or zero set compiles to the empty mask.
func Compile(cfg topology.Config, set Set) (*Masks, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	for i := 0; i <= cfg.L+1; i++ {
		if w := cfg.WiresAfterStage(i); w > math.MaxInt32 {
			return nil, fmt.Errorf("faults: %v has %d wires in one stage, beyond the simulable limit", cfg, w)
		}
	}
	m := &Masks{cfg: cfg}
	if set.IsZero() {
		return m, nil
	}

	// Distinct dead switches per stage (1-based stage at index stage-1).
	deadSw := make([]map[int]bool, cfg.L+2)
	for _, id := range set.Switches {
		if id.Stage < 1 || id.Stage > cfg.L+1 {
			return nil, fmt.Errorf("faults: switch stage %d out of range [1,%d]", id.Stage, cfg.L+1)
		}
		if n := cfg.SwitchesInStage(id.Stage); id.Switch < 0 || id.Switch >= n {
			return nil, fmt.Errorf("faults: switch %d out of range [0,%d) in stage %d", id.Switch, n, id.Stage)
		}
		if deadSw[id.Stage] == nil {
			deadSw[id.Stage] = make(map[int]bool)
		}
		if !deadSw[id.Stage][id.Switch] {
			deadSw[id.Stage][id.Switch] = true
			m.deadSwitches++
		}
	}

	// Distinct dead wires per boundary (post-shuffle labels).
	deadWire := make([]map[int]bool, cfg.L+1)
	for _, id := range set.Wires {
		if id.Boundary < 0 || id.Boundary > cfg.L {
			return nil, fmt.Errorf("faults: wire boundary %d out of range [0,%d]", id.Boundary, cfg.L)
		}
		if w := cfg.WiresAfterStage(id.Boundary); id.Wire < 0 || id.Wire >= w {
			return nil, fmt.Errorf("faults: wire %d out of range [0,%d) at boundary %d", id.Wire, w, id.Boundary)
		}
		if deadWire[id.Boundary] == nil {
			deadWire[id.Boundary] = make(map[int]bool)
		}
		if !deadWire[id.Boundary][id.Wire] {
			deadWire[id.Boundary][id.Wire] = true
			m.deadWires++
		}
	}

	// Distinct dead output ports per stage (pre-shuffle labels).
	deadPort := make([]map[int]bool, cfg.L+2)
	for _, id := range set.Ports {
		if id.Stage < 1 || id.Stage > cfg.L+1 {
			return nil, fmt.Errorf("faults: port stage %d out of range [1,%d]", id.Stage, cfg.L+1)
		}
		if n := cfg.SwitchesInStage(id.Stage); id.Switch < 0 || id.Switch >= n {
			return nil, fmt.Errorf("faults: port switch %d out of range [0,%d) in stage %d", id.Switch, n, id.Stage)
		}
		var label int
		if id.Stage == cfg.L+1 {
			if id.Bucket < 0 || id.Bucket >= cfg.C || id.Wire != 0 {
				return nil, fmt.Errorf("faults: crossbar port (%d,%d) invalid (want bucket in [0,%d), wire 0)", id.Bucket, id.Wire, cfg.C)
			}
			label = id.Switch*cfg.C + id.Bucket
		} else {
			if id.Bucket < 0 || id.Bucket >= cfg.B {
				return nil, fmt.Errorf("faults: bucket %d out of range [0,%d)", id.Bucket, cfg.B)
			}
			if id.Wire < 0 || id.Wire >= cfg.C {
				return nil, fmt.Errorf("faults: bucket wire %d out of range [0,%d)", id.Wire, cfg.C)
			}
			label = id.Switch*cfg.B*cfg.C + id.Bucket*cfg.C + id.Wire
		}
		if deadPort[id.Stage] == nil {
			deadPort[id.Stage] = make(map[int]bool)
		}
		if !deadPort[id.Stage][label] {
			deadPort[id.Stage][label] = true
			m.deadPorts++
		}
	}

	// Input row: severed boundary-0 wires plus the a inputs of every dead
	// stage-1 switch.
	inputs := cfg.Inputs()
	if len(deadWire[0]) > 0 || len(deadSw[1]) > 0 {
		liveIn := allTrue(inputs)
		for w := range deadWire[0] {
			liveIn[w] = false
		}
		for sw := range deadSw[1] {
			for p := 0; p < cfg.A; p++ {
				liveIn[sw*cfg.A+p] = false
			}
		}
		m.liveIn = normalize(liveIn)
	}

	// Hyperbar stage rows: output o of stage s is dead if its own switch
	// or port is dead, its post-shuffle wire is severed, or the stage s+1
	// switch that wire feeds is dead.
	m.live = make([][]bool, cfg.L+1)
	bc := cfg.B * cfg.C
	for s := 1; s <= cfg.L; s++ {
		downWidth := cfg.A
		if s == cfg.L {
			downWidth = cfg.C // boundary l feeds the c x c crossbars
		}
		needed := len(deadSw[s]) > 0 || len(deadPort[s]) > 0 || len(deadWire[s]) > 0 || len(deadSw[s+1]) > 0
		if !needed {
			continue
		}
		wires := cfg.WiresAfterStage(s)
		row := allTrue(wires)
		tab := cfg.InterstageTable(s) // nil = identity
		for o := 0; o < wires; o++ {
			down := o
			if tab != nil {
				down = int(tab[o])
			}
			switch {
			case deadSw[s][o/bc]:
				row[o] = false
			case deadPort[s][o]:
				row[o] = false
			case deadWire[s][down]:
				row[o] = false
			case deadSw[s+1][down/downWidth]:
				row[o] = false
			}
		}
		m.live[s-1] = normalize(row)
	}

	// Crossbar row over the output terminals.
	if len(deadSw[cfg.L+1]) > 0 || len(deadPort[cfg.L+1]) > 0 {
		outputs := cfg.Outputs()
		row := allTrue(outputs)
		for t := 0; t < outputs; t++ {
			if deadSw[cfg.L+1][t/cfg.C] || deadPort[cfg.L+1][t] {
				row[t] = false
			}
		}
		m.live[cfg.L] = normalize(row)
	}

	if m.Empty() {
		m.live = nil
	}
	return m, nil
}

// MustCompile is Compile for sets known valid by construction (sampler
// output); it panics on error.
func MustCompile(cfg topology.Config, set Set) *Masks {
	m, err := Compile(cfg, set)
	if err != nil {
		panic(err)
	}
	return m
}

// Config returns the configuration the masks were compiled for.
func (m *Masks) Config() topology.Config { return m.cfg }

// Empty reports whether the masks disable nothing — the engines treat
// an empty mask exactly like no mask at all.
func (m *Masks) Empty() bool {
	if m == nil {
		return true
	}
	if m.liveIn != nil {
		return false
	}
	for _, row := range m.live {
		if row != nil {
			return false
		}
	}
	return true
}

// LiveInputs returns the network-input availability row, or nil if all
// inputs are live. The slice is shared; callers must not modify it.
func (m *Masks) LiveInputs() []bool {
	if m == nil {
		return nil
	}
	return m.liveIn
}

// LiveStageOutputs returns stage s's output availability row (1-based;
// stage l+1 covers the output terminals), or nil if the stage is fully
// live. The slice is shared; callers must not modify it.
func (m *Masks) LiveStageOutputs(s int) []bool {
	if m == nil || m.live == nil {
		return nil
	}
	if s < 1 || s > m.cfg.L+1 {
		panic(fmt.Sprintf("faults: stage %d out of range [1,%d]", s, m.cfg.L+1))
	}
	return m.live[s-1]
}

// DeadSwitches returns the number of distinct dead switches.
func (m *Masks) DeadSwitches() int {
	if m == nil {
		return 0
	}
	return m.deadSwitches
}

// DeadWires returns the number of distinct severed wires (including
// input wires at boundary 0).
func (m *Masks) DeadWires() int {
	if m == nil {
		return 0
	}
	return m.deadWires
}

// DeadPorts returns the number of distinct dead switch output ports.
func (m *Masks) DeadPorts() int {
	if m == nil {
		return 0
	}
	return m.deadPorts
}

// EngineRows returns the input availability row and the per-stage
// output rows (index stage-1, stages 1..l+1) for an engine built over
// cfg, validating that the masks were compiled for that configuration.
// Empty masks — nil included — return all-nil rows, which engines
// treat as fully live.
func (m *Masks) EngineRows(cfg topology.Config) (liveIn []bool, live [][]bool, err error) {
	if m.Empty() {
		return nil, nil, nil
	}
	if got := m.Config(); got != cfg {
		return nil, nil, fmt.Errorf("faults: masks compiled for %v, network is %v", got, cfg)
	}
	live = make([][]bool, cfg.Stages())
	for s := 1; s <= cfg.Stages(); s++ {
		live[s-1] = m.LiveStageOutputs(s)
	}
	return m.liveIn, live, nil
}

// ReachableOutputs returns how many output terminals remain connected
// to at least one live network input through live components, by
// forward flood over the masked topology. A fault-free network reaches
// all Outputs(). m must be a compiled mask (nil has no topology).
func (m *Masks) ReachableOutputs() int {
	if m == nil {
		panic("faults: ReachableOutputs needs a compiled mask; Compile(cfg, Set{}) is the fault-free one")
	}
	return m.ReachableOutputsInto(make([]bool, m.cfg.Outputs()))
}

// ReachableOutputsInto is ReachableOutputs exposing the per-terminal
// verdict: dst[t] is set to whether output terminal t is reachable from
// some live input, and the count is returned. dst must have length
// Outputs(). Closed-loop drivers use the vector as an avoidance list —
// a source should not address an output the fault state has cut off.
// The flood is an epoch-boundary operation (it allocates scratch), not
// a per-cycle one.
func (m *Masks) ReachableOutputsInto(dst []bool) int {
	if m == nil {
		panic("faults: ReachableOutputsInto needs a compiled mask; Compile(cfg, Set{}) is the fault-free one")
	}
	cfg := m.cfg
	if len(dst) != cfg.Outputs() {
		panic(fmt.Sprintf("faults: ReachableOutputsInto got %d slots, want %d outputs", len(dst), cfg.Outputs()))
	}
	// fed[w] = boundary wire w carries traffic from some live input.
	fed := make([]bool, cfg.Inputs())
	for i := range fed {
		fed[i] = m.liveIn == nil || m.liveIn[i]
	}
	bc := cfg.B * cfg.C
	for s := 1; s <= cfg.L; s++ {
		row := m.LiveStageOutputs(s)
		wires := cfg.WiresAfterStage(s)
		next := make([]bool, wires)
		tab := cfg.InterstageTable(s)
		nsw := cfg.SwitchesInStage(s)
		for sw := 0; sw < nsw; sw++ {
			swFed := false
			for p := 0; p < cfg.A; p++ {
				if fed[sw*cfg.A+p] {
					swFed = true
					break
				}
			}
			if !swFed {
				continue
			}
			for o := sw * bc; o < (sw+1)*bc; o++ {
				if row != nil && !row[o] {
					continue
				}
				down := o
				if tab != nil {
					down = int(tab[o])
				}
				next[down] = true
			}
		}
		fed = next
	}
	row := m.LiveStageOutputs(cfg.L + 1)
	reach := 0
	for t := 0; t < cfg.Outputs(); t++ {
		dst[t] = false
		if row != nil && !row[t] {
			continue
		}
		sw := t / cfg.C
		for p := 0; p < cfg.C; p++ {
			if fed[sw*cfg.C+p] {
				dst[t] = true
				reach++
				break
			}
		}
	}
	return reach
}

// LiveInputCount returns how many network inputs can still inject.
// m must be a compiled mask (nil has no topology).
func (m *Masks) LiveInputCount() int {
	if m == nil {
		panic("faults: LiveInputCount needs a compiled mask; Compile(cfg, Set{}) is the fault-free one")
	}
	if m.liveIn == nil {
		return m.cfg.Inputs()
	}
	n := 0
	for _, ok := range m.liveIn {
		if ok {
			n++
		}
	}
	return n
}

// String summarizes the compiled fault state.
func (m *Masks) String() string {
	return fmt.Sprintf("masks(%v: %d dead switches, %d dead wires, %d dead ports, %d/%d outputs reachable)",
		m.cfg, m.deadSwitches, m.deadWires, m.deadPorts, m.ReachableOutputs(), m.cfg.Outputs())
}

func allTrue(n int) []bool {
	row := make([]bool, n)
	for i := range row {
		row[i] = true
	}
	return row
}

// normalize returns nil for an all-true row so engines keep their
// unfaulted fast paths.
func normalize(row []bool) []bool {
	for _, ok := range row {
		if !ok {
			return row
		}
	}
	return nil
}
