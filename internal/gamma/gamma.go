// Package gamma implements the bit-field permutations used to wire the
// stages of an Expanded Delta Network together.
//
// The central object is the gamma permutation of Definition 3 in the paper:
// gamma_{j,k} acts on an n-bit label by fixing the j least significant bits
// and left-cyclic-shifting the remaining n-j bits by k positions. Special
// cases recover well-known interconnection permutations:
//
//	gamma_{0,1}        the perfect shuffle of 2^n labels (Stone)
//	gamma_{0,log2(q)}  Patel's q-shuffle of 2^n objects
//	gamma_{n,0}        the identity
//
// gamma_{j,k} is related to Lenfant's "segment shuffle".
package gamma

import "fmt"

// Gamma is the permutation gamma_{j,k} on n-bit labels: the J least
// significant bits are fixed and the remaining N-J bits are left-cyclic
// shifted by K. The zero value is the identity permutation on 0-bit labels.
type Gamma struct {
	J int // number of fixed least-significant bits
	K int // left cyclic shift amount applied to the upper N-J bits
	N int // total label width in bits
}

// New returns the permutation gamma_{j,k} on n-bit labels. It returns an
// error if the parameters are out of range (j,k >= 0, n >= j, k <= n-j).
func New(j, k, n int) (Gamma, error) {
	g := Gamma{J: j, K: k, N: n}
	if err := g.Validate(); err != nil {
		return Gamma{}, err
	}
	return g, nil
}

// Validate reports whether the permutation parameters are consistent.
func (g Gamma) Validate() error {
	switch {
	case g.N < 0 || g.N > 62:
		return fmt.Errorf("gamma: label width n=%d out of range [0,62]", g.N)
	case g.J < 0 || g.J > g.N:
		return fmt.Errorf("gamma: fixed bits j=%d out of range [0,%d]", g.J, g.N)
	case g.K < 0 || g.K > g.N-g.J:
		return fmt.Errorf("gamma: shift k=%d out of range [0,%d]", g.K, g.N-g.J)
	}
	return nil
}

// Size returns the number of labels the permutation acts on (2^n).
func (g Gamma) Size() int { return 1 << uint(g.N) }

// width of the rotated field.
func (g Gamma) field() int { return g.N - g.J }

// Apply maps label y through gamma_{j,k}. Labels outside [0, 2^n) panic:
// they indicate a wiring bug, not a runtime condition.
func (g Gamma) Apply(y int) int {
	if y < 0 || y >= g.Size() {
		panic(fmt.Sprintf("gamma: label %d out of range [0,%d)", y, g.Size()))
	}
	w := g.field()
	if w == 0 || g.K%w == 0 {
		return y
	}
	low := y & ((1 << uint(g.J)) - 1)
	high := y >> uint(g.J)
	return rotl(high, g.K%w, w)<<uint(g.J) | low
}

// Invert maps label z back through the inverse permutation, so that
// g.Invert(g.Apply(y)) == y for all labels y.
func (g Gamma) Invert(z int) int {
	w := g.field()
	if w == 0 {
		return g.Apply(z) // identity, but keep the range check
	}
	inv := Gamma{J: g.J, K: (w - g.K%w) % w, N: g.N}
	return inv.Apply(z)
}

// Inverse returns the inverse permutation as a Gamma value.
func (g Gamma) Inverse() Gamma {
	w := g.field()
	if w == 0 {
		return g
	}
	return Gamma{J: g.J, K: (w - g.K%w) % w, N: g.N}
}

// IsIdentity reports whether the permutation maps every label to itself.
func (g Gamma) IsIdentity() bool {
	w := g.field()
	return w == 0 || g.K%w == 0
}

// Table materializes the permutation as a slice t with t[y] = Apply(y).
// It is intended for small n (wiring construction and tests).
func (g Gamma) Table() []int {
	t := make([]int, g.Size())
	for y := range t {
		t[y] = g.Apply(y)
	}
	return t
}

// String renders the permutation in the paper's notation.
func (g Gamma) String() string {
	return fmt.Sprintf("gamma_{%d,%d} on %d-bit labels", g.J, g.K, g.N)
}

// Shuffle returns the perfect shuffle gamma_{0,1} of 2^n labels.
func Shuffle(n int) Gamma { return Gamma{J: 0, K: min(1, n), N: n} }

// QShuffle returns Patel's q-shuffle gamma_{0,log2(q)} of 2^n objects.
// logQ is log2(q) and must satisfy 0 <= logQ <= n.
func QShuffle(logQ, n int) Gamma { return Gamma{J: 0, K: logQ, N: n} }

// Identity returns the identity permutation gamma_{n,0} on n-bit labels.
func Identity(n int) Gamma { return Gamma{J: n, K: 0, N: n} }

// rotl left-rotates the low w bits of v by s (0 <= s < w).
func rotl(v, s, w int) int {
	if w == 0 || s == 0 {
		return v
	}
	mask := (1 << uint(w)) - 1
	v &= mask
	return ((v << uint(s)) | (v >> uint(w-s))) & mask
}

// IsPermutationTable reports whether t is a permutation of [0, len(t)).
// It is a test helper shared by packages that build wiring tables.
func IsPermutationTable(t []int) bool {
	seen := make([]bool, len(t))
	for _, v := range t {
		if v < 0 || v >= len(t) || seen[v] {
			return false
		}
		seen[v] = true
	}
	return true
}

// Compose returns the table of the composition "first a, then b" over
// labels of width n bits. Both permutations must act on n-bit labels.
func Compose(a, b Gamma) ([]int, error) {
	if a.N != b.N {
		return nil, fmt.Errorf("gamma: cannot compose widths %d and %d", a.N, b.N)
	}
	t := make([]int, a.Size())
	for y := range t {
		t[y] = b.Apply(a.Apply(y))
	}
	return t, nil
}
