package gamma

import (
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	cases := []struct {
		j, k, n int
		ok      bool
	}{
		{0, 0, 0, true},
		{0, 1, 1, true},
		{2, 4, 10, true},
		{10, 0, 10, true},
		{-1, 0, 4, false},
		{5, 0, 4, false},
		{0, 5, 4, false},
		{2, 3, 4, false}, // k > n-j
		{0, 0, 63, false},
	}
	for _, c := range cases {
		_, err := New(c.j, c.k, c.n)
		if (err == nil) != c.ok {
			t.Errorf("New(%d,%d,%d) error=%v, want ok=%v", c.j, c.k, c.n, err, c.ok)
		}
	}
}

func TestIdentity(t *testing.T) {
	for n := 0; n <= 10; n++ {
		g := Identity(n)
		if !g.IsIdentity() {
			t.Fatalf("Identity(%d) not reported as identity", n)
		}
		for y := 0; y < g.Size(); y++ {
			if got := g.Apply(y); got != y {
				t.Fatalf("Identity(%d).Apply(%d) = %d", n, y, got)
			}
		}
	}
}

func TestShuffleMatchesDefinition(t *testing.T) {
	// The perfect shuffle of 2^n labels maps y to the left-rotation of its
	// full n-bit string by one position.
	for n := 1; n <= 8; n++ {
		g := Shuffle(n)
		for y := 0; y < g.Size(); y++ {
			want := rotl(y, 1, n)
			if got := g.Apply(y); got != want {
				t.Fatalf("Shuffle(%d).Apply(%d) = %d, want %d", n, y, got, want)
			}
		}
	}
}

func TestQShuffleOnCards(t *testing.T) {
	// Patel's q-shuffle of q*m objects deals the deck into q piles of m and
	// interleaves. For q=2, n=3 (8 labels) the classic riffle: 0->0, 1->2,
	// 2->4, 3->6, 4->1, 5->3, 6->5, 7->7.
	g := QShuffle(1, 3)
	want := []int{0, 2, 4, 6, 1, 3, 5, 7}
	for y, w := range want {
		if got := g.Apply(y); got != w {
			t.Fatalf("QShuffle(1,3).Apply(%d) = %d, want %d", y, got, w)
		}
	}
}

func TestApplyFixesLowBits(t *testing.T) {
	g := Gamma{J: 2, K: 4, N: 10}
	for y := 0; y < g.Size(); y++ {
		if g.Apply(y)&3 != y&3 {
			t.Fatalf("gamma_{2,4} moved fixed low bits of %d", y)
		}
	}
}

func TestInvertRoundTrip(t *testing.T) {
	gs := []Gamma{
		{J: 0, K: 0, N: 0},
		{J: 0, K: 1, N: 6},
		{J: 2, K: 4, N: 10},
		{J: 3, K: 2, N: 9},
		{J: 5, K: 0, N: 5},
	}
	for _, g := range gs {
		inv := g.Inverse()
		for y := 0; y < g.Size(); y++ {
			if got := g.Invert(g.Apply(y)); got != y {
				t.Fatalf("%v: Invert(Apply(%d)) = %d", g, y, got)
			}
			if got := inv.Apply(g.Apply(y)); got != y {
				t.Fatalf("%v: Inverse().Apply(Apply(%d)) = %d", g, y, got)
			}
		}
	}
}

func TestTableIsPermutation(t *testing.T) {
	for j := 0; j <= 6; j++ {
		for k := 0; k <= 6-j; k++ {
			g := Gamma{J: j, K: k, N: 6}
			if !IsPermutationTable(g.Table()) {
				t.Fatalf("%v table is not a permutation", g)
			}
		}
	}
}

func TestComposeWithInverseIsIdentity(t *testing.T) {
	g := Gamma{J: 2, K: 3, N: 8}
	tbl, err := Compose(g, g.Inverse())
	if err != nil {
		t.Fatal(err)
	}
	for y, v := range tbl {
		if v != y {
			t.Fatalf("compose(g, g^-1)[%d] = %d", y, v)
		}
	}
}

func TestComposeWidthMismatch(t *testing.T) {
	if _, err := Compose(Gamma{N: 3}, Gamma{N: 4}); err == nil {
		t.Fatal("expected width-mismatch error")
	}
}

func TestApplyOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range label")
		}
	}()
	Gamma{J: 0, K: 1, N: 3}.Apply(8)
}

// Property: gamma is a bijection and preserves the fixed field, for
// arbitrary (j,k,n) drawn by testing/quick.
func TestQuickBijection(t *testing.T) {
	f := func(rawJ, rawK, rawN uint8) bool {
		n := int(rawN % 11)
		j := 0
		if n > 0 {
			j = int(rawJ) % (n + 1)
		}
		k := 0
		if n-j > 0 {
			k = int(rawK) % (n - j + 1)
		}
		g, err := New(j, k, n)
		if err != nil {
			return false
		}
		if !IsPermutationTable(g.Table()) {
			return false
		}
		mask := (1 << uint(j)) - 1
		for y := 0; y < g.Size(); y++ {
			if g.Apply(y)&mask != y&mask {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: shuffling n times with gamma_{0,1} returns to the identity
// (the perfect shuffle has order n on 2^n labels).
func TestShuffleOrder(t *testing.T) {
	for n := 1; n <= 8; n++ {
		g := Shuffle(n)
		for y := 0; y < g.Size(); y++ {
			v := y
			for i := 0; i < n; i++ {
				v = g.Apply(v)
			}
			if v != y {
				t.Fatalf("shuffle^%d(%d) = %d on %d bits", n, y, v, n)
			}
		}
	}
}
