package lifecycle

import (
	"fmt"
	"testing"

	"edn/internal/faults"
	"edn/internal/topology"
	"edn/internal/xrand"
)

// setKey renders a fault set in canonical order for exact comparison
// (Step emits components in a deterministic sweep order, so string
// equality is set equality here).
func setKey(s faults.Set) string {
	return fmt.Sprintf("%v|%v", s.Wires, s.Switches)
}

// RepairWindow 0 and 1 must replay the un-windowed process bit-for-bit:
// same fault set at every epoch, same RNG consumption, including the
// blast overlay.
func TestRepairWindowOneMatchesImmediate(t *testing.T) {
	cfg, err := topology.New(4, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := Spec{
		Mode: faults.MixedFaults, MTBF: 12, MTTR: 5,
		BlastRate: 0.15, BlastRadius: 1, BlastMTTR: 4,
	}
	for _, timing := range []Timing{Exponential, Deterministic} {
		for _, window := range []int{0, 1} {
			spec := base
			spec.Timing = timing
			spec.RepairWindow = window
			ref, err := New(cfg, base.withTiming(timing), xrand.New(17))
			if err != nil {
				t.Fatal(err)
			}
			win, err := New(cfg, spec, xrand.New(17))
			if err != nil {
				t.Fatal(err)
			}
			for e := 0; e < 400; e++ {
				if got, want := setKey(win.Step()), setKey(ref.Step()); got != want {
					t.Fatalf("%v window=%d diverges at epoch %d:\n got %s\nwant %s",
						timing, window, e, got, want)
				}
			}
			if win.DeadFraction() != ref.DeadFraction() {
				t.Fatalf("%v window=%d: dead fraction %g vs %g",
					timing, window, win.DeadFraction(), ref.DeadFraction())
			}
		}
	}
}

func (s Spec) withTiming(t Timing) Spec { s.Timing = t; return s }

// Under a real window every dead-to-alive transition — churned
// components and blasted blocks alike — must land on a window boundary,
// while failures keep arriving at arbitrary epochs.
func TestRepairWindowBatchesRepairs(t *testing.T) {
	cfg, err := topology.New(4, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	const window = 4
	spec := Spec{
		Mode: faults.MixedFaults, MTBF: 10, MTTR: 3,
		BlastRate: 0.2, BlastRadius: 1, BlastMTTR: 2,
		RepairWindow: window,
	}
	proc, err := New(cfg, spec, xrand.New(99))
	if err != nil {
		t.Fatal(err)
	}
	prevDead := map[string]bool{}
	repairs, offBoundaryFailures := 0, 0
	for e := 1; e <= 600; e++ {
		set := proc.Step()
		dead := map[string]bool{}
		for _, w := range set.Wires {
			dead[fmt.Sprintf("w%v", w)] = true
		}
		for _, sw := range set.Switches {
			dead[fmt.Sprintf("s%v", sw)] = true
		}
		for id := range prevDead {
			if !dead[id] {
				repairs++
				if e%window != 0 {
					t.Fatalf("component %s repaired at epoch %d, not a window boundary", id, e)
				}
			}
		}
		for id := range dead {
			if !prevDead[id] && e%window != 0 {
				offBoundaryFailures++
			}
		}
		prevDead = dead
	}
	if repairs == 0 {
		t.Fatal("no repairs observed; the window property was never exercised")
	}
	if offBoundaryFailures == 0 {
		t.Fatal("no off-boundary failures observed; failures should not be windowed")
	}
}

// Windowed repair holds components down longer, so the observed dead
// fraction must sit at or above the immediate-repair steady state.
func TestRepairWindowRaisesDeadFraction(t *testing.T) {
	cfg, err := topology.New(4, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	run := func(window int) float64 {
		spec := Spec{Mode: faults.WireFaults, MTBF: 10, MTTR: 2, RepairWindow: window}
		proc, err := New(cfg, spec, xrand.New(3))
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		const epochs = 2000
		for e := 0; e < epochs; e++ {
			proc.Step()
			sum += proc.DeadFraction()
		}
		return sum / epochs
	}
	immediate, windowed := run(1), run(8)
	if windowed <= immediate {
		t.Errorf("window=8 mean dead fraction %.3f not above immediate %.3f", windowed, immediate)
	}
}

func TestRepairWindowValidation(t *testing.T) {
	cfg, err := topology.New(4, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Mode: faults.WireFaults, MTBF: 10, MTTR: 2, RepairWindow: -1}
	if _, err := New(cfg, spec, xrand.New(1)); err == nil {
		t.Error("negative repair window should be rejected")
	}
}
