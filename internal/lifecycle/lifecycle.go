// Package lifecycle evolves an Expanded Delta Network's component
// availability over discrete simulated time. Where internal/faults
// answers "how degraded is this frozen snapshot", this package answers
// the question a machine operator asks of a deployed interconnect: how
// much bandwidth does the network deliver over its lifetime as
// components fail stochastically and get repaired?
//
// Time is divided into epochs. Every component of the chosen population
// (interstage wires, switches, or both — the same populations as
// faults.Bernoulli) runs an independent alternating-renewal process:
// alive for a random time-to-failure drawn around MTBF, dead for a
// random time-to-repair drawn around MTTR. Holding times are geometric
// (the discrete-time exponential: every live component fails each epoch
// with probability 1/MTBF, the memoryless Bernoulli-churn regime) or
// deterministic (fixed maintenance periods, staggered by a random
// initial phase so the fleet does not fail in lockstep). On top of the
// independent churn, correlated Blast arrivals model a board or cabinet
// failure: occasionally a contiguous block of switches in one stage
// dies together and is repaired as a unit.
//
// Step advances one epoch and reports the currently-dead components as
// a faults.Set — exactly the vocabulary faults.Compile consumes — so a
// lifetime loop is: Step, Compile, UpdateFaults on a running engine,
// simulate the epoch's cycles, repeat. The process never rebuilds
// anything and a given (config, spec, seed) replays bit-for-bit, which
// is what lets simulate.LifetimeSweep shard whole lifetimes and merge
// them deterministically.
package lifecycle

import (
	"fmt"
	"math"

	"edn/internal/faults"
	"edn/internal/topology"
	"edn/internal/xrand"
)

// Timing selects the holding-time distribution of the failure/repair
// renewal process.
type Timing int

const (
	// Exponential draws geometric holding times (the discrete-time
	// memoryless process): each epoch an alive component dies with
	// probability 1/MTBF and a dead one is repaired with probability
	// 1/MTTR.
	Exponential Timing = iota
	// Deterministic uses fixed periods: a component is alive for
	// round(MTBF) epochs and down for round(MTTR), with a uniformly
	// random initial phase per component.
	Deterministic
)

// String renders the timing for reports and flags.
func (t Timing) String() string {
	switch t {
	case Exponential:
		return "exponential"
	case Deterministic:
		return "deterministic"
	default:
		return fmt.Sprintf("timing(%d)", int(t))
	}
}

// ParseTiming is the inverse of Timing.String, for flag parsing.
func ParseTiming(s string) (Timing, error) {
	switch s {
	case "exponential", "exp":
		return Exponential, nil
	case "deterministic", "det":
		return Deterministic, nil
	default:
		return 0, fmt.Errorf("lifecycle: unknown timing %q (want exponential or deterministic)", s)
	}
}

// Spec describes a failure/repair process. The zero Mode value churns
// interstage wires, the population where bucket multipath pays off.
type Spec struct {
	// Mode selects the churning population (wires, switches, mixed),
	// with the faults package's meaning.
	Mode faults.Mode
	// MTBF is the mean number of epochs a component stays alive; MTTR
	// the mean number of epochs a repair takes. Both must be >= 1.
	// The long-run dead fraction of the population is MTTR/(MTBF+MTTR).
	MTBF float64
	MTTR float64
	// Timing selects geometric or deterministic holding times.
	Timing Timing
	// BlastRate is the per-epoch probability of a correlated blast: a
	// random stage's switches [center-BlastRadius, center+BlastRadius]
	// die together and are repaired as a unit after a BlastMTTR-mean
	// holding time (MTTR if zero). Zero disables blasts.
	BlastRate   float64
	BlastRadius int
	BlastMTTR   float64
	// RepairWindow batches repairs into maintenance windows: a finished
	// repair only takes effect at epochs divisible by RepairWindow, so
	// a component whose repair clock expires mid-window stays dead
	// until the next boundary (failures still happen at any epoch, and
	// a blast's outage is extended so its block comes back at a
	// boundary too). 0 or 1 means immediate repair — bit-for-bit the
	// un-windowed process, because the next MTBF draw happens at the
	// actual repair either way.
	RepairWindow int
}

func (s Spec) validate() error {
	switch s.Mode {
	case faults.WireFaults, faults.SwitchFaults, faults.MixedFaults:
	default:
		return fmt.Errorf("lifecycle: unknown mode %v", s.Mode)
	}
	if s.MTBF < 1 {
		return fmt.Errorf("lifecycle: MTBF %g must be at least 1 epoch", s.MTBF)
	}
	if s.MTTR < 1 {
		return fmt.Errorf("lifecycle: MTTR %g must be at least 1 epoch", s.MTTR)
	}
	if s.BlastRate < 0 || s.BlastRate > 1 {
		return fmt.Errorf("lifecycle: blast rate %g out of [0,1]", s.BlastRate)
	}
	if s.BlastRadius < 0 {
		return fmt.Errorf("lifecycle: blast radius %d must be non-negative", s.BlastRadius)
	}
	if s.BlastRate > 0 && s.BlastMTTR != 0 && s.BlastMTTR < 1 {
		return fmt.Errorf("lifecycle: blast MTTR %g must be at least 1 epoch", s.BlastMTTR)
	}
	if s.RepairWindow < 0 {
		return fmt.Errorf("lifecycle: repair window %d must be non-negative", s.RepairWindow)
	}
	return nil
}

// DeadFractionSteadyState returns the long-run marginal dead fraction
// of the churned population, MTTR/(MTBF+MTTR) — the lifetime analog of
// a static sweep's fault fraction axis.
func (s Spec) DeadFractionSteadyState() float64 {
	return s.MTTR / (s.MTBF + s.MTTR)
}

// component is one alternating-renewal state machine: dead or alive,
// with a countdown to the next transition.
type component struct {
	dead  bool
	timer int32 // epochs until the next state flip, always >= 1
}

// Process is an instantiated failure/repair process over one network
// configuration. It is not safe for concurrent use; sweeps build one
// per shard.
type Process struct {
	cfg  topology.Config
	spec Spec
	rng  *xrand.Rand

	epoch int
	total int // churned components (blast overlay excluded)
	dead  int // currently dead churned components

	wires    [][]component // [boundary-1][wire], WireFaults/MixedFaults
	switches [][]component // [stage-1][switch], SwitchFaults/MixedFaults

	// blastUntil[stage-1][switch] is the first epoch at which a blasted
	// switch is live again (0 = not blasted). The overlay is kept apart
	// from the churn state machines so a blast neither resets nor
	// consumes a switch's own renewal clock.
	blastUntil [][]int64

	// Reused Set backing storage; see Step.
	set faults.Set
}

// New validates spec and draws the initial component phases from rng.
// All components start alive; the population drifts toward the
// steady-state dead fraction over the first few MTTRs.
func New(cfg topology.Config, spec Spec, rng *xrand.Rand) (*Process, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := spec.validate(); err != nil {
		return nil, err
	}
	p := &Process{cfg: cfg, spec: spec, rng: rng}
	if spec.Mode == faults.WireFaults || spec.Mode == faults.MixedFaults {
		p.wires = make([][]component, cfg.L)
		for i := 1; i <= cfg.L; i++ {
			row := make([]component, cfg.WiresAfterStage(i))
			for w := range row {
				row[w] = component{timer: p.initialTTF()}
			}
			p.wires[i-1] = row
			p.total += len(row)
		}
	}
	if spec.Mode == faults.SwitchFaults || spec.Mode == faults.MixedFaults {
		p.switches = make([][]component, cfg.L+1)
		for s := 1; s <= cfg.L+1; s++ {
			row := make([]component, cfg.SwitchesInStage(s))
			for sw := range row {
				row[sw] = component{timer: p.initialTTF()}
			}
			p.switches[s-1] = row
			p.total += len(row)
		}
	}
	if spec.BlastRate > 0 {
		p.blastUntil = make([][]int64, cfg.L+1)
		for s := 1; s <= cfg.L+1; s++ {
			p.blastUntil[s-1] = make([]int64, cfg.SwitchesInStage(s))
		}
	}
	return p, nil
}

// Config returns the process's network configuration.
func (p *Process) Config() topology.Config { return p.cfg }

// Spec returns the process's failure/repair specification.
func (p *Process) Spec() Spec { return p.spec }

// Epoch returns the number of Step calls so far.
func (p *Process) Epoch() int { return p.epoch }

// DeadFraction returns the currently-dead fraction of the churned
// population (the blast overlay is not part of the churn census).
func (p *Process) DeadFraction() float64 {
	if p.total == 0 {
		return 0
	}
	return float64(p.dead) / float64(p.total)
}

// Step advances one epoch — every component's renewal clock ticks, and
// a blast may arrive — and returns the fault set now in effect. The
// returned Set reuses the process's backing slices: it is valid until
// the next Step call, which is exactly the lifetime of the
// Compile-and-apply it feeds.
func (p *Process) Step() faults.Set {
	p.epoch++
	p.set.Wires = p.set.Wires[:0]
	p.set.Switches = p.set.Switches[:0]
	for b, row := range p.wires {
		for w := range row {
			if p.tick(&row[w]) {
				p.set.Wires = append(p.set.Wires, faults.WireID{Boundary: b + 1, Wire: w})
			}
		}
	}
	if p.spec.BlastRate > 0 && p.rng.Bool(p.spec.BlastRate) {
		p.blast()
	}
	for s, row := range p.switches {
		for sw := range row {
			if p.tick(&row[sw]) {
				p.set.Switches = append(p.set.Switches, faults.SwitchID{Stage: s + 1, Switch: sw})
			} else if p.blasted(s+1, sw) {
				p.set.Switches = append(p.set.Switches, faults.SwitchID{Stage: s + 1, Switch: sw})
			}
		}
	}
	if p.switches == nil && p.blastUntil != nil {
		// Wire-churn spec with blasts: the blast overlay is the only
		// switch killer.
		for s := 1; s <= p.cfg.L+1; s++ {
			for sw := range p.blastUntil[s-1] {
				if p.blasted(s, sw) {
					p.set.Switches = append(p.set.Switches, faults.SwitchID{Stage: s, Switch: sw})
				}
			}
		}
	}
	return p.set
}

// repairOpen reports whether the current epoch is a maintenance-window
// boundary at which finished repairs take effect.
func (p *Process) repairOpen() bool {
	return p.spec.RepairWindow <= 1 || p.epoch%p.spec.RepairWindow == 0
}

// tick advances one component one epoch and reports whether it is dead.
func (p *Process) tick(c *component) bool {
	c.timer--
	if c.timer <= 0 {
		if c.dead {
			if !p.repairOpen() {
				// Repair clock expired mid-window: hold the component
				// dead, re-checking at every epoch until the boundary.
				// The MTBF draw waits for the actual repair, which is
				// what keeps RepairWindow <= 1 on the exact RNG stream
				// of the un-windowed process.
				c.timer = 1
				return true
			}
			c.dead = false
			p.dead--
			c.timer = p.draw(p.spec.MTBF)
		} else {
			c.dead = true
			p.dead++
			c.timer = p.draw(p.spec.MTTR)
		}
	}
	return c.dead
}

// blast kills a contiguous switch block: uniform stage, uniform center,
// the spec's radius, repaired as a unit after a BlastMTTR-mean holding
// time.
func (p *Process) blast() {
	stage := 1 + p.rng.Intn(p.cfg.L+1)
	row := p.blastUntil[stage-1]
	center := p.rng.Intn(len(row))
	mttr := p.spec.BlastMTTR
	if mttr == 0 {
		mttr = p.spec.MTTR
	}
	// A draw of k holds the block dead for k epochs including the
	// arrival epoch (blasted tests >=), matching a churned component's
	// outage length for the same draw.
	until := int64(p.epoch) + int64(p.draw(mttr)) - 1
	if w := int64(p.spec.RepairWindow); w > 1 {
		// Batch repair: extend the outage so the block's first live
		// epoch (until+1) lands on a maintenance-window boundary.
		if rem := (until + 1) % w; rem != 0 {
			until += w - rem
		}
	}
	lo, hi := center-p.spec.BlastRadius, center+p.spec.BlastRadius
	if lo < 0 {
		lo = 0
	}
	if hi > len(row)-1 {
		hi = len(row) - 1
	}
	for sw := lo; sw <= hi; sw++ {
		if until > row[sw] {
			row[sw] = until
		}
	}
}

// blasted reports whether the blast overlay holds (stage, sw) dead this
// epoch.
func (p *Process) blasted(stage, sw int) bool {
	if p.blastUntil == nil {
		return false
	}
	return p.blastUntil[stage-1][sw] >= int64(p.epoch)
}

// draw samples one holding time around mean epochs, per the spec's
// timing. Always at least 1.
func (p *Process) draw(mean float64) int32 {
	return HoldingTime(p.spec.Timing, mean, p.rng)
}

// HoldingTime draws one holding time around mean epochs under the given
// timing; always at least 1. It is the renewal-clock primitive shared
// by every churn process in the repository (this package's Process over
// EDN components, dilatedsim's sub-wire churn), so matched lifetime
// comparisons sample their outage lengths from identical distributions.
func HoldingTime(t Timing, mean float64, rng *xrand.Rand) int32 {
	if t == Deterministic {
		k := math.Round(mean)
		if k < 1 {
			return 1
		}
		if k >= math.MaxInt32 {
			return math.MaxInt32
		}
		return int32(k)
	}
	// Geometric with success probability 1/mean via inversion: the
	// number of per-epoch Bernoulli(1/mean) trials up to and including
	// the first success. Clamped into int32 before conversion — huge
	// means ("effectively never fails") would otherwise overflow.
	if mean <= 1 {
		return 1
	}
	u := rng.Float64()
	k := 1 + math.Floor(math.Log(1-u)/math.Log(1-1/mean))
	if k < 1 {
		return 1
	}
	if k >= math.MaxInt32 {
		return math.MaxInt32
	}
	return int32(k)
}

// initialTTF draws a component's first time-to-failure.
func (p *Process) initialTTF() int32 {
	return InitialTTF(p.spec.Timing, p.spec.MTBF, p.rng)
}

// InitialTTF draws a component's first time-to-failure. Exponential
// holding times are memoryless, so the stationary draw is the plain
// one; deterministic periods get a uniform phase in [1, MTBF] so the
// fleet's maintenance windows are staggered instead of synchronized.
func InitialTTF(t Timing, mtbf float64, rng *xrand.Rand) int32 {
	if t == Deterministic {
		period := HoldingTime(t, mtbf, rng) // the fixed alive period, clamped
		return 1 + int32(rng.Intn(int(period)))
	}
	return HoldingTime(t, mtbf, rng)
}
