package lifecycle

import (
	"math"
	"testing"

	"edn/internal/faults"
	"edn/internal/topology"
	"edn/internal/xrand"
)

func mustCfg(t *testing.T, a, b, c, l int) topology.Config {
	t.Helper()
	cfg, err := topology.New(a, b, c, l)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestSpecValidation(t *testing.T) {
	cfg := mustCfg(t, 4, 4, 2, 2)
	bad := []Spec{
		{Mode: faults.WireFaults, MTBF: 0, MTTR: 5},
		{Mode: faults.WireFaults, MTBF: 10, MTTR: 0.5},
		{Mode: faults.Mode(42), MTBF: 10, MTTR: 5},
		{Mode: faults.WireFaults, MTBF: 10, MTTR: 5, BlastRate: 1.5},
		{Mode: faults.WireFaults, MTBF: 10, MTTR: 5, BlastRate: 0.1, BlastRadius: -1},
		{Mode: faults.WireFaults, MTBF: 10, MTTR: 5, BlastRate: 0.1, BlastMTTR: 0.2},
	}
	for i, spec := range bad {
		if _, err := New(cfg, spec, xrand.New(1)); err == nil {
			t.Errorf("spec %d (%+v) should not validate", i, spec)
		}
	}
	if _, err := New(cfg, Spec{Mode: faults.MixedFaults, MTBF: 20, MTTR: 5, BlastRate: 0.05, BlastRadius: 1}, xrand.New(1)); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestStepIsDeterministic(t *testing.T) {
	cfg := mustCfg(t, 4, 4, 2, 3)
	spec := Spec{Mode: faults.MixedFaults, MTBF: 12, MTTR: 4, BlastRate: 0.2, BlastRadius: 1}
	run := func() []string {
		p, err := New(cfg, spec, xrand.New(99))
		if err != nil {
			t.Fatal(err)
		}
		var log []string
		for e := 0; e < 50; e++ {
			log = append(log, p.Step().String())
		}
		return log
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("epoch %d diverged:\n%s\nvs\n%s", i, a[i], b[i])
		}
	}
}

func TestStepSetsAreValid(t *testing.T) {
	// Every emitted set must compile: IDs in range for every mode.
	cfg := mustCfg(t, 4, 2, 2, 3)
	for _, mode := range []faults.Mode{faults.WireFaults, faults.SwitchFaults, faults.MixedFaults} {
		for _, timing := range []Timing{Exponential, Deterministic} {
			p, err := New(cfg, Spec{Mode: mode, MTBF: 6, MTTR: 3, Timing: timing, BlastRate: 0.3, BlastRadius: 2}, xrand.New(7))
			if err != nil {
				t.Fatal(err)
			}
			for e := 0; e < 40; e++ {
				set := p.Step()
				if _, err := faults.Compile(cfg, set); err != nil {
					t.Fatalf("%v/%v epoch %d: %v (%v)", mode, timing, e, err, set)
				}
			}
		}
	}
}

func TestChurnReachesSteadyStateDeadFraction(t *testing.T) {
	// MTBF 30, MTTR 10 -> long-run dead fraction 0.25. Average the
	// census over a long window and require it within a few points.
	cfg := mustCfg(t, 8, 4, 2, 3)
	spec := Spec{Mode: faults.WireFaults, MTBF: 30, MTTR: 10}
	if got := spec.DeadFractionSteadyState(); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("steady-state fraction %g, want 0.25", got)
	}
	p, err := New(cfg, spec, xrand.New(3))
	if err != nil {
		t.Fatal(err)
	}
	const warm, window = 200, 2000
	for e := 0; e < warm; e++ {
		p.Step()
	}
	sum := 0.0
	for e := 0; e < window; e++ {
		p.Step()
		sum += p.DeadFraction()
	}
	if got := sum / window; math.Abs(got-0.25) > 0.03 {
		t.Errorf("mean dead fraction %g, want ~0.25", got)
	}
}

func TestDeterministicTimingCycles(t *testing.T) {
	// With deterministic timing every component is alive exactly MTBF
	// epochs then dead exactly MTTR epochs, so over one full period the
	// per-component dead count is exactly MTTR.
	cfg := mustCfg(t, 4, 4, 1, 1) // one boundary... l=1: boundaries 1..1
	spec := Spec{Mode: faults.WireFaults, MTBF: 6, MTTR: 2, Timing: Deterministic}
	p, err := New(cfg, spec, xrand.New(11))
	if err != nil {
		t.Fatal(err)
	}
	const period = 8
	// Skip the first period (random phases), then count dead component
	// observations over exactly one period.
	for e := 0; e < period; e++ {
		p.Step()
	}
	deadObs := 0
	for e := 0; e < period; e++ {
		deadObs += len(p.Step().Wires)
	}
	wires := cfg.WiresAfterStage(1)
	if want := wires * 2; deadObs != want {
		t.Errorf("dead observations over one period = %d, want %d", deadObs, want)
	}
}

func TestBlastKillsContiguousBlock(t *testing.T) {
	cfg := mustCfg(t, 4, 4, 2, 3)
	// Blast-only churn: wire mode with no wire deaths possible? Use a
	// spec whose MTBF is enormous so independent churn never fires, and
	// force a blast every epoch.
	spec := Spec{Mode: faults.WireFaults, MTBF: 1e9, MTTR: 2, BlastRate: 1, BlastRadius: 1, BlastMTTR: 3}
	p, err := New(cfg, spec, xrand.New(5))
	if err != nil {
		t.Fatal(err)
	}
	sawBlock := false
	for e := 0; e < 20; e++ {
		set := p.Step()
		if len(set.Wires) != 0 {
			t.Fatalf("epoch %d: independent churn fired with MTBF 1e9: %v", e, set)
		}
		// Group dead switches per stage and look for a contiguous run.
		perStage := map[int][]int{}
		for _, id := range set.Switches {
			perStage[id.Stage] = append(perStage[id.Stage], id.Switch)
		}
		// Several blasts can overlap in time, so no per-epoch upper
		// bound holds; require only that blocks of neighbors appear.
		for _, sws := range perStage {
			if len(sws) >= 2 {
				sawBlock = true
			}
		}
	}
	if !sawBlock {
		t.Error("20 guaranteed blasts never produced a contiguous block of >= 2 switches")
	}
}
