// Package mimd models the Section 4 shared-memory multiprocessor: one
// processor per network input, one memory module per output, connected by
// an EDN. Active processors issue fresh requests with probability r each
// cycle; a processor whose request is blocked waits and resubmits the
// same request every cycle until it is accepted (the Figure 10 Markov
// chain). The package measures the resulting steady state with the
// cycle-level simulator so the Equation 7-11 fixed point can be
// cross-checked.
package mimd

import (
	"fmt"

	"edn/internal/core"
	"edn/internal/stats"
	"edn/internal/topology"
	"edn/internal/xrand"
)

// Options configures a simulation run.
type Options struct {
	Cycles  int    // measured cycles (default 2000)
	Warmup  int    // cycles to reach steady state before measuring (default 200)
	Seed    uint64 // RNG seed (default 1)
	Factory core.ArbiterFactory
	// PersistentDestinations controls what a waiting processor resubmits.
	// The paper's analysis assumes resubmitted requests re-address the
	// memory modules uniformly (Section 4), which is the default here
	// (false): each retry draws a fresh destination. Setting true makes a
	// blocked processor retry the *same* destination until accepted — the
	// physically faithful behavior — which builds persistent conflicts the
	// Markov model does not capture; the test suite quantifies the gap.
	PersistentDestinations bool
}

func (o Options) withDefaults() Options {
	if o.Cycles <= 0 {
		o.Cycles = 2000
	}
	if o.Warmup < 0 {
		o.Warmup = 0
	} else if o.Warmup == 0 {
		o.Warmup = 200
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Result is the measured steady state of the processor-memory system.
type Result struct {
	Config topology.Config
	R      float64 // fresh request probability of an active processor

	PA            float64 // accepted/offered: the measured PA'(r)
	EffectiveRate float64 // measured r': offered requests per input per cycle
	QActive       float64 // measured fraction of processors in the active state
	QWaiting      float64 // measured fraction waiting (= 1 - QActive)
	Bandwidth     float64 // accepted requests per cycle
	AvgWaitCycles float64 // mean cycles a satisfied request spent blocked
	Cycles        int
}

// Efficiency returns the measured Equation 11 efficiency: the fraction of
// time processors spend active versus an ideal never-blocking memory.
func (r Result) Efficiency() float64 { return r.QActive }

// String renders the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("%v r=%.3g: PA'=%.4f r'=%.4f qA=%.4f BW=%.1f wait=%.2f cycles",
		r.Config, r.R, r.PA, r.EffectiveRate, r.QActive, r.Bandwidth, r.AvgWaitCycles)
}

// Simulate runs the resubmission system to steady state and measures it.
func Simulate(cfg topology.Config, r float64, opts Options) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if r < 0 || r > 1 {
		return Result{}, fmt.Errorf("mimd: request rate %g out of [0,1]", r)
	}
	opts = opts.withDefaults()
	net, err := core.NewNetwork(cfg, opts.Factory)
	if err != nil {
		return Result{}, err
	}
	rng := xrand.New(opts.Seed)

	inputs := cfg.Inputs()
	outputs := cfg.Outputs()
	// waitingDest[i] >= 0 means processor i is waiting to deliver that
	// destination; core.NoRequest means active.
	waitingDest := make([]int, inputs)
	waitStart := make([]int, inputs)
	for i := range waitingDest {
		waitingDest[i] = core.NoRequest
	}
	dest := make([]int, inputs)
	out := make([]core.Outcome, inputs)

	var offered, accepted, activeCount int
	var waitAcc stats.Accumulator
	res := Result{Config: cfg, R: r, Cycles: opts.Cycles}

	for cycle := 0; cycle < opts.Warmup+opts.Cycles; cycle++ {
		measuring := cycle >= opts.Warmup
		for i := range dest {
			if waitingDest[i] != core.NoRequest {
				if opts.PersistentDestinations {
					dest[i] = waitingDest[i] // retry the same module
				} else {
					// Paper assumption: retries re-address memory uniformly.
					dest[i] = rng.Intn(outputs)
					waitingDest[i] = dest[i]
				}
				continue
			}
			if measuring {
				activeCount++
			}
			if rng.Bool(r) {
				dest[i] = rng.Intn(outputs)
			} else {
				dest[i] = core.NoRequest
			}
		}
		cs, err := net.RouteCycleInto(dest, out)
		if err != nil {
			return Result{}, err
		}
		if measuring {
			offered += cs.Offered
			accepted += cs.Delivered
		}
		for i, o := range out {
			switch {
			case dest[i] == core.NoRequest:
				// stayed idle
			case o.Delivered():
				if waitingDest[i] != core.NoRequest && measuring {
					waitAcc.Add(float64(cycle - waitStart[i]))
				} else if measuring {
					waitAcc.Add(0)
				}
				waitingDest[i] = core.NoRequest
			default:
				if waitingDest[i] == core.NoRequest {
					waitingDest[i] = dest[i]
					waitStart[i] = cycle
				}
			}
		}
	}

	total := float64(opts.Cycles * inputs)
	if offered > 0 {
		res.PA = float64(accepted) / float64(offered)
	} else {
		res.PA = 1
	}
	res.EffectiveRate = float64(offered) / total
	res.QActive = float64(activeCount) / total
	res.QWaiting = 1 - res.QActive
	res.Bandwidth = float64(accepted) / float64(opts.Cycles)
	res.AvgWaitCycles = waitAcc.Mean()
	return res, nil
}
