package mimd

import (
	"math"
	"testing"

	"edn/internal/analytic"
	"edn/internal/topology"
)

func mustCfg(t *testing.T, a, b, c, l int) topology.Config {
	t.Helper()
	cfg, err := topology.New(a, b, c, l)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestSimulateValidation(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	if _, err := Simulate(cfg, -0.1, Options{Cycles: 10}); err == nil {
		t.Error("expected rate range error")
	}
	if _, err := Simulate(cfg, 1.5, Options{Cycles: 10}); err == nil {
		t.Error("expected rate range error")
	}
}

func TestZeroRateSystemStaysActive(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	res, err := Simulate(cfg, 0, Options{Cycles: 50, Warmup: 1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.QActive != 1 || res.Bandwidth != 0 || res.EffectiveRate != 0 {
		t.Fatalf("zero-rate steady state: %+v", res)
	}
}

// TestMarkovModelAgreement cross-checks the measured steady state against
// the Equation 7-10 fixed point. The analytic network model is a few
// percent optimistic (see internal/simulate), so the derived quantities
// carry the same bias; we check agreement within a modest band.
func TestMarkovModelAgreement(t *testing.T) {
	cases := []struct {
		a, b, c, l int
		r          float64
	}{
		{16, 4, 4, 2, 0.5},
		{16, 4, 4, 3, 0.5},
		{4, 2, 2, 3, 0.5},
		{16, 4, 4, 2, 1.0},
	}
	for _, cse := range cases {
		cfg := mustCfg(t, cse.a, cse.b, cse.c, cse.l)
		model, err := analytic.Resubmission(cfg, cse.r, analytic.ResubmissionOptions{})
		if err != nil {
			t.Fatal(err)
		}
		meas, err := Simulate(cfg, cse.r, Options{Cycles: 3000, Warmup: 300, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(meas.PA-model.PAPrime) > 0.08 {
			t.Errorf("%v r=%g: measured PA' %.4f vs model %.4f", cfg, cse.r, meas.PA, model.PAPrime)
		}
		if math.Abs(meas.QActive-model.QActive) > 0.08 {
			t.Errorf("%v r=%g: measured qA %.4f vs model %.4f", cfg, cse.r, meas.QActive, model.QActive)
		}
		if math.Abs(meas.EffectiveRate-model.EffectiveRate) > 0.08 {
			t.Errorf("%v r=%g: measured r' %.4f vs model %.4f", cfg, cse.r, meas.EffectiveRate, model.EffectiveRate)
		}
	}
}

// TestLittlesLawWaitTime: the model's Little's-law waiting time must
// match the simulator's directly measured per-request wait.
func TestLittlesLawWaitTime(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 3)
	model, err := analytic.Resubmission(cfg, 0.75, analytic.ResubmissionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	meas, err := Simulate(cfg, 0.75, Options{Cycles: 4000, Warmup: 400, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	if model.MeanWaitCycles() <= 0 {
		t.Fatalf("model wait = %g, expected positive under contention", model.MeanWaitCycles())
	}
	// Both sides carry the independence-model bias; agreement within 30%
	// relative is the expected band at this load.
	ratio := meas.AvgWaitCycles / model.MeanWaitCycles()
	if ratio < 0.7 || ratio > 1.6 {
		t.Errorf("measured wait %.3f vs model %.3f (ratio %.2f)", meas.AvgWaitCycles, model.MeanWaitCycles(), ratio)
	}
}

// TestPersistentRetriesHurt quantifies the gap between the paper's
// "retries re-address memory uniformly" assumption and physically
// persistent retries: retrying the same destination builds standing
// conflicts, so sustained acceptance drops and waiting grows.
func TestPersistentRetriesHurt(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 3)
	redraw, err := Simulate(cfg, 0.5, Options{Cycles: 2500, Warmup: 300, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	persistent, err := Simulate(cfg, 0.5, Options{Cycles: 2500, Warmup: 300, Seed: 21, PersistentDestinations: true})
	if err != nil {
		t.Fatal(err)
	}
	if persistent.PA >= redraw.PA {
		t.Errorf("persistent retries PA %.4f should be below redraw PA %.4f", persistent.PA, redraw.PA)
	}
	if persistent.QWaiting <= redraw.QWaiting {
		t.Errorf("persistent retries should increase waiting: %.4f vs %.4f", persistent.QWaiting, redraw.QWaiting)
	}
}

// TestResubmissionRaisesLoad reproduces the Figure 11 phenomenon in the
// simulator: with resubmission the sustained acceptance probability is
// strictly below the blocked-requests-ignored PA, because retries inflate
// the offered load.
func TestResubmissionRaisesLoad(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 4)
	res, err := Simulate(cfg, 0.5, Options{Cycles: 2000, Warmup: 200, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	ignored := analytic.PA(cfg, 0.5)
	if res.PA >= ignored {
		t.Errorf("resubmission PA %.4f should sit below ignored-requests PA %.4f", res.PA, ignored)
	}
	if res.EffectiveRate <= 0.5*res.QActive {
		t.Errorf("effective rate %.4f should exceed fresh-load share", res.EffectiveRate)
	}
	if res.QWaiting <= 0 {
		t.Error("some processors must be waiting under contention")
	}
	if res.AvgWaitCycles <= 0 {
		t.Error("waiting processors must accumulate wait cycles")
	}
}

// TestConservationUnderResubmission: over a long run, accepted requests
// per processor per cycle equals the rate at which processors leave the
// active state with a request (flow balance).
func TestConservationUnderResubmission(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	res, err := Simulate(cfg, 0.7, Options{Cycles: 4000, Warmup: 400, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	// Throughput per input = r' * PA'; in steady state it must equal the
	// fresh issue rate qA * r (every fresh request is eventually accepted).
	throughput := res.EffectiveRate * res.PA
	fresh := res.QActive * 0.7
	if math.Abs(throughput-fresh) > 0.03 {
		t.Errorf("flow imbalance: throughput %.4f vs fresh issue %.4f", throughput, fresh)
	}
	if bw := res.Bandwidth / float64(cfg.Inputs()); math.Abs(bw-throughput) > 1e-9 {
		t.Errorf("bandwidth/input %.4f != r'*PA' %.4f", bw, throughput)
	}
}

func TestDeterminism(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	a, err := Simulate(cfg, 0.5, Options{Cycles: 200, Warmup: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(cfg, 0.5, Options{Cycles: 200, Warmup: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if a.PA != b.PA || a.QActive != b.QActive || a.Bandwidth != b.Bandwidth {
		t.Errorf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestEfficiencyBounds(t *testing.T) {
	cfg := mustCfg(t, 4, 2, 2, 4)
	for _, r := range []float64{0.25, 0.5, 1} {
		res, err := Simulate(cfg, r, Options{Cycles: 800, Warmup: 100, Seed: 17})
		if err != nil {
			t.Fatal(err)
		}
		if e := res.Efficiency(); e <= 0 || e > 1 {
			t.Errorf("r=%g: efficiency %g out of (0,1]", r, e)
		}
		if res.QActive+res.QWaiting != 1 {
			t.Errorf("r=%g: state fractions do not sum to 1", r)
		}
	}
}
