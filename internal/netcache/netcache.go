// Package netcache is the geometry cache behind the serve layer: a
// byte-budgeted LRU keyed by strings, with typed helpers for the three
// immutable artifacts every job construction pays for — EDN interstage
// tables (topology.Tables), dilated routing tables (dilatedsim.Tables)
// and compiled fault masks (faults.Masks / dilatedsim.Masks).
//
// All cached artifacts are immutable after construction and safe to
// share across concurrently running engines:
//
//   - Tables are read-only by contract (the engines index, never
//     write).
//   - Compiled masks are "compile once, share freely" (see
//     internal/faults): UpdateFaults stores references to mask rows but
//     never writes through them.
//
// Because sharing is reference sharing, a cache hit is bit-for-bit
// identical to a fresh build — the property test in
// internal/netcache's tests and the serve layer's cache-correctness
// suite pin exactly that, including after UpdateFaults churn between
// jobs.
//
// Builds are single-flight: concurrent requests for one key block on a
// single construction instead of duplicating it.
package netcache

import (
	"container/list"
	"fmt"
	"sync"

	"edn/internal/dilated"
	"edn/internal/dilatedsim"
	"edn/internal/faults"
	"edn/internal/topology"
	"edn/internal/xrand"
)

// DefaultBudget is the byte budget a zero-valued configuration gets:
// enough for hundreds of mid-sized geometries while bounding a daemon
// that sweeps thousands of distinct ones.
const DefaultBudget = 256 << 20

// Cache is a byte-budgeted LRU of immutable geometry artifacts. The
// zero value is not usable; construct with New. Safe for concurrent
// use.
type Cache struct {
	mu      sync.Mutex
	budget  int64
	used    int64
	ll      *list.List // front = most recently used
	items   map[string]*list.Element
	pending map[string]*inflight

	hits, misses, evictions, waits int64
}

type entry struct {
	key   string
	value any
	bytes int64
}

type inflight struct {
	done  chan struct{}
	value any
	err   error
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
	Budget    int64 `json:"budget"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	// SingleflightWaits counts hits that blocked on a peer's in-flight
	// construction of the same key instead of finding it resident —
	// contention the budget can't fix but more workers make worse.
	SingleflightWaits int64 `json:"singleflight_waits"`
}

// New returns a cache bounded to budget bytes of cached payload;
// budget <= 0 selects DefaultBudget. A single artifact larger than the
// budget is still served but never retained.
func New(budget int64) *Cache {
	if budget <= 0 {
		budget = DefaultBudget
	}
	return &Cache{
		budget:  budget,
		ll:      list.New(),
		items:   make(map[string]*list.Element),
		pending: make(map[string]*inflight),
	}
}

// GetOrBuild returns the cached value for key, building it at most
// once under concurrency. build returns the value and its payload size
// in bytes (the unit the budget counts).
func (c *Cache) GetOrBuild(key string, build func() (any, int64, error)) (any, error) {
	v, _, err := c.getOrBuildHit(key, build)
	return v, err
}

// getOrBuildHit is GetOrBuild plus a hit verdict: true when the value
// came from the cache (resident or a peer's in-flight build), false
// when this call paid the construction.
func (c *Cache) getOrBuildHit(key string, build func() (any, int64, error)) (any, bool, error) {
	c.mu.Lock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.hits++
		v := el.Value.(*entry).value
		c.mu.Unlock()
		return v, true, nil
	}
	if fl, ok := c.pending[key]; ok {
		// A peer is building this key; its completion counts as our
		// hit — we paid no construction — but record the wait, since
		// blocked time here is invisible to the hit ratio.
		c.hits++
		c.waits++
		c.mu.Unlock()
		<-fl.done
		return fl.value, true, fl.err
	}
	c.misses++
	fl := &inflight{done: make(chan struct{})}
	c.pending[key] = fl
	c.mu.Unlock()

	v, bytes, err := build()
	fl.value, fl.err = v, err

	c.mu.Lock()
	delete(c.pending, key)
	if err == nil {
		c.insert(key, v, bytes)
	}
	c.mu.Unlock()
	close(fl.done)
	return v, false, err
}

// insert assumes c.mu is held.
func (c *Cache) insert(key string, v any, bytes int64) {
	if bytes > c.budget {
		return // serve it, don't retain it
	}
	for c.used+bytes > c.budget {
		back := c.ll.Back()
		if back == nil {
			break
		}
		ev := back.Value.(*entry)
		c.ll.Remove(back)
		delete(c.items, ev.key)
		c.used -= ev.bytes
		c.evictions++
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, value: v, bytes: bytes})
	c.used += bytes
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Entries:           len(c.items),
		Bytes:             c.used,
		Budget:            c.budget,
		Hits:              c.hits,
		Misses:            c.misses,
		Evictions:         c.evictions,
		SingleflightWaits: c.waits,
	}
}

// Tables returns the cached interstage tables for cfg, building them
// on first use. The second result reports whether the tables came from
// the cache (true) or this call built them (false).
func (c *Cache) Tables(cfg topology.Config) (*topology.Tables, bool, error) {
	key := fmt.Sprintf("edn:%d/%d/%d/%d", cfg.A, cfg.B, cfg.C, cfg.L)
	v, hit, err := c.getOrBuildHit(key, func() (any, int64, error) {
		t, err := topology.NewTables(cfg)
		if err != nil {
			return nil, 0, err
		}
		return t, t.Bytes(), nil
	})
	if err != nil {
		return nil, hit, err
	}
	return v.(*topology.Tables), hit, nil
}

// DilatedTables returns the cached routing tables for dcfg, building
// them on first use, plus the hit verdict.
func (c *Cache) DilatedTables(dcfg dilated.Config) (*dilatedsim.Tables, bool, error) {
	key := fmt.Sprintf("dil:%d/%d/%d", dcfg.B, dcfg.D, dcfg.L)
	v, hit, err := c.getOrBuildHit(key, func() (any, int64, error) {
		t, err := dilatedsim.NewTables(dcfg)
		if err != nil {
			return nil, 0, err
		}
		return t, t.Bytes(), nil
	})
	if err != nil {
		return nil, hit, err
	}
	return v.(*dilatedsim.Tables), hit, nil
}

// Masks returns the compiled availability masks for a Bernoulli fault
// sample over cfg — mode's population dying with probability fraction
// under the given sample seed. The key pins the full sampling identity
// (cfg, mode, fraction, seed), so a hit replays the identical draw.
func (c *Cache) Masks(cfg topology.Config, mode faults.Mode, fraction float64, seed uint64) (*faults.Masks, bool, error) {
	key := fmt.Sprintf("mask:%d/%d/%d/%d:%d:%g:%d", cfg.A, cfg.B, cfg.C, cfg.L, int(mode), fraction, seed)
	v, hit, err := c.getOrBuildHit(key, func() (any, int64, error) {
		set := faults.Bernoulli(cfg, mode, fraction, xrand.New(seed))
		m, err := faults.Compile(cfg, set)
		if err != nil {
			return nil, 0, err
		}
		return m, maskBytes(cfg, m), nil
	})
	if err != nil {
		return nil, hit, err
	}
	return v.(*faults.Masks), hit, nil
}

// DilatedMasks is Masks for the dilated engine: a Bernoulli sub-wire
// sample at the given fraction and seed, compiled to engine rows.
func (c *Cache) DilatedMasks(dcfg dilated.Config, fraction float64, seed uint64) (*dilatedsim.Masks, bool, error) {
	key := fmt.Sprintf("dmask:%d/%d/%d:%g:%d", dcfg.B, dcfg.D, dcfg.L, fraction, seed)
	v, hit, err := c.getOrBuildHit(key, func() (any, int64, error) {
		set := dilated.BernoulliSubWires(dcfg, fraction, xrand.New(seed))
		m, err := dilatedsim.Compile(dcfg, set)
		if err != nil {
			return nil, 0, err
		}
		// Engine rows are one bool per sub-wire per boundary.
		bytes := int64(dcfg.L) * int64(dcfg.Ports()) * int64(dcfg.D)
		return m, bytes, nil
	})
	if err != nil {
		return nil, hit, err
	}
	return v.(*dilatedsim.Masks), hit, nil
}

// maskBytes estimates a compiled mask's payload: one bool per wire per
// compiled row (unfaulted stages compile to nil rows and cost nothing).
func maskBytes(cfg topology.Config, m *faults.Masks) int64 {
	var b int64
	if m.LiveInputs() != nil {
		b += int64(cfg.Inputs())
	}
	for s := 1; s <= cfg.Stages(); s++ {
		b += int64(len(m.LiveStageOutputs(s)))
	}
	return b
}
