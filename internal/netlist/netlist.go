// Package netlist materializes an EDN as an explicit physical netlist:
// every switch, every terminal and every wire, exactly as a board- or
// chip-level realization would enumerate them. It provides an
// independent, constructive validation of the wiring rules (Definition 2
// plus the Equation 1 gamma permutation) and of the Equation 3 wire
// cost: the built netlist must contain precisely Config.WireCount()
// wires, each terminal driven exactly once.
//
// The package also renders small networks as stage-by-stage connection
// descriptions in the spirit of Figures 4 and 5.
package netlist

import (
	"fmt"
	"strings"

	"edn/internal/topology"
)

// Kind classifies a terminal.
type Kind uint8

// Terminal kinds. NetworkIn/NetworkOut are the external ports; SwitchIn
// and SwitchOut are the per-switch ports inside a stage.
const (
	NetworkIn Kind = iota
	SwitchIn
	SwitchOut
	NetworkOut
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case NetworkIn:
		return "in"
	case SwitchIn:
		return "sw-in"
	case SwitchOut:
		return "sw-out"
	case NetworkOut:
		return "out"
	default:
		return fmt.Sprintf("kind(%d)", k)
	}
}

// Terminal is one physical connection point.
type Terminal struct {
	Kind   Kind
	Stage  int // 0 for network ports; 1..l+1 for switch stages
	Switch int // switch index within the stage (0 for network ports)
	Port   int // port within the switch, or the external port number
}

// String renders the terminal compactly.
func (t Terminal) String() string {
	switch t.Kind {
	case NetworkIn:
		return fmt.Sprintf("in[%d]", t.Port)
	case NetworkOut:
		return fmt.Sprintf("out[%d]", t.Port)
	default:
		return fmt.Sprintf("s%d.%s%d.p%d", t.Stage, map[Kind]string{SwitchIn: "i", SwitchOut: "o"}[t.Kind], t.Switch, t.Port)
	}
}

// Wire is a directed physical connection.
type Wire struct {
	From Terminal
	To   Terminal
}

// Netlist is the full physical enumeration of one EDN.
type Netlist struct {
	Config topology.Config
	Wires  []Wire
}

// Build enumerates every wire of cfg:
//
//   - network input i feeds stage-1 switch i/a, port i%a;
//   - output (bucket*c + w) of stage-s switch sw feeds the stage-(s+1)
//     switch selected by the interstage gamma permutation;
//   - crossbar output ports are the network outputs.
func Build(cfg topology.Config) (*Netlist, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nl := &Netlist{Config: cfg}

	// Network inputs into stage 1.
	for i := 0; i < cfg.Inputs(); i++ {
		sw, port := cfg.SwitchOfLine(1, i)
		nl.Wires = append(nl.Wires, Wire{
			From: Terminal{Kind: NetworkIn, Port: i},
			To:   Terminal{Kind: SwitchIn, Stage: 1, Switch: sw, Port: port},
		})
	}
	// Interstage wiring.
	for s := 1; s <= cfg.L; s++ {
		g := cfg.InterstageGamma(s)
		outsPerSwitch := cfg.B * cfg.C
		for sw := 0; sw < cfg.SwitchesInStage(s); sw++ {
			for o := 0; o < outsPerSwitch; o++ {
				line := g.Apply(sw*outsPerSwitch + o)
				nsw, nport := cfg.SwitchOfLine(s+1, line)
				nl.Wires = append(nl.Wires, Wire{
					From: Terminal{Kind: SwitchOut, Stage: s, Switch: sw, Port: o},
					To:   Terminal{Kind: SwitchIn, Stage: s + 1, Switch: nsw, Port: nport},
				})
			}
		}
	}
	// Crossbar outputs to network outputs.
	last := cfg.L + 1
	for sw := 0; sw < cfg.SwitchesInStage(last); sw++ {
		for o := 0; o < cfg.C; o++ {
			nl.Wires = append(nl.Wires, Wire{
				From: Terminal{Kind: SwitchOut, Stage: last, Switch: sw, Port: o},
				To:   Terminal{Kind: NetworkOut, Port: sw*cfg.C + o},
			})
		}
	}
	return nl, nil
}

// WireCount returns the number of physical wires, which must equal the
// Equation 3 cost cfg.WireCount().
func (nl *Netlist) WireCount() int { return len(nl.Wires) }

// Validate checks physical sanity: every switch input and every network
// output is driven by exactly one wire, and every driver drives exactly
// one sink.
func (nl *Netlist) Validate() error {
	sinks := make(map[Terminal]int, len(nl.Wires))
	drivers := make(map[Terminal]int, len(nl.Wires))
	for _, w := range nl.Wires {
		sinks[w.To]++
		drivers[w.From]++
	}
	for t, n := range sinks {
		if n != 1 {
			return fmt.Errorf("netlist: terminal %v driven by %d wires", t, n)
		}
	}
	for t, n := range drivers {
		if n != 1 {
			return fmt.Errorf("netlist: terminal %v drives %d wires", t, n)
		}
	}
	cfg := nl.Config
	// Expected sink population: every switch input port + every output.
	expected := cfg.Inputs() // stage-1 inputs
	for s := 2; s <= cfg.L+1; s++ {
		width := cfg.A
		if s == cfg.L+1 {
			width = cfg.C
		}
		expected += cfg.SwitchesInStage(s) * width
	}
	expected += cfg.Outputs()
	if len(sinks) != expected {
		return fmt.Errorf("netlist: %d sink terminals, want %d", len(sinks), expected)
	}
	return nil
}

// Describe renders a stage-by-stage structural summary in the spirit of
// Figure 4: switch counts and types per stage, wire counts per boundary,
// and — for networks up to maxFanout switches per stage — the bucket
// fan-out of each switch.
func Describe(cfg topology.Config, maxFanout int) (string, error) {
	nl, err := Build(cfg)
	if err != nil {
		return "", err
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%v: %d inputs, %d outputs, %d stages, %d wires, %d crosspoints\n",
		cfg, cfg.Inputs(), cfg.Outputs(), cfg.Stages(), nl.WireCount(), cfg.CrosspointCount())
	for s := 1; s <= cfg.L; s++ {
		fmt.Fprintf(&sb, "stage %d: %d x %v, %d wires out (gamma: %v)\n",
			s, cfg.SwitchesInStage(s), cfg.Hyperbar(), cfg.WiresAfterStage(s), cfg.InterstageGamma(s))
	}
	fmt.Fprintf(&sb, "stage %d: %d x %v (one per bucket of stage %d)\n",
		cfg.L+1, cfg.SwitchesInStage(cfg.L+1), cfg.OutputCrossbar(), cfg.L)

	if cfg.SwitchesInStage(1) <= maxFanout {
		// Bucket fan-out: where each bucket of each hyperbar lands.
		for s := 1; s <= cfg.L; s++ {
			g := cfg.InterstageGamma(s)
			fmt.Fprintf(&sb, "stage %d fan-out:\n", s)
			for sw := 0; sw < cfg.SwitchesInStage(s); sw++ {
				fmt.Fprintf(&sb, "  switch %d:", sw)
				for bucket := 0; bucket < cfg.B; bucket++ {
					targets := map[int]bool{}
					for w := 0; w < cfg.C; w++ {
						line := g.Apply(sw*(cfg.B*cfg.C) + bucket*cfg.C + w)
						nsw, _ := cfg.SwitchOfLine(s+1, line)
						targets[nsw] = true
					}
					fmt.Fprintf(&sb, " b%d->%s", bucket, fmtSet(targets))
				}
				sb.WriteByte('\n')
			}
		}
	}
	return sb.String(), nil
}

func fmtSet(set map[int]bool) string {
	mini, maxi := -1, -1
	for v := range set {
		if mini == -1 || v < mini {
			mini = v
		}
		if v > maxi {
			maxi = v
		}
	}
	if len(set) == 1 {
		return fmt.Sprintf("{%d}", mini)
	}
	if maxi-mini+1 == len(set) {
		return fmt.Sprintf("{%d..%d}", mini, maxi)
	}
	return fmt.Sprintf("{%d..%d:%d}", mini, maxi, len(set))
}
