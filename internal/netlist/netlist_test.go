package netlist

import (
	"strings"
	"testing"

	"edn/internal/topology"
)

func mustCfg(t *testing.T, a, b, c, l int) topology.Config {
	t.Helper()
	cfg, err := topology.New(a, b, c, l)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestWireCountMatchesEquation3: the physically enumerated netlist must
// contain exactly the Equation 3 wire cost, for both cost-formula
// branches and the degenerate networks.
func TestWireCountMatchesEquation3(t *testing.T) {
	cfgs := []topology.Config{
		mustCfg(t, 16, 4, 4, 2),
		mustCfg(t, 64, 16, 4, 2),
		mustCfg(t, 8, 2, 4, 3),
		mustCfg(t, 8, 8, 1, 3),
		mustCfg(t, 8, 8, 8, 1),
		mustCfg(t, 4, 8, 2, 2),
		mustCfg(t, 16, 16, 1, 1),
	}
	for _, cfg := range cfgs {
		nl, err := Build(cfg)
		if err != nil {
			t.Fatalf("%v: %v", cfg, err)
		}
		if int64(nl.WireCount()) != cfg.WireCount() {
			t.Errorf("%v: netlist has %d wires, Equation 3 says %d", cfg, nl.WireCount(), cfg.WireCount())
		}
		if err := nl.Validate(); err != nil {
			t.Errorf("%v: %v", cfg, err)
		}
	}
}

func TestBuildRejectsInvalidConfig(t *testing.T) {
	if _, err := Build(topology.Config{A: 7, B: 2, C: 1, L: 1}); err == nil {
		t.Fatal("expected validation error")
	}
}

// TestEveryNetworkInputReachesStage1: input i must land on switch i/a
// port i%a — the Lemma 1 premise.
func TestEveryNetworkInputReachesStage1(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	nl, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range nl.Wires {
		if w.From.Kind != NetworkIn {
			continue
		}
		i := w.From.Port
		if w.To.Kind != SwitchIn || w.To.Stage != 1 {
			t.Fatalf("input %d lands on %v", i, w.To)
		}
		if w.To.Switch != i/cfg.A || w.To.Port != i%cfg.A {
			t.Fatalf("input %d lands on switch %d port %d", i, w.To.Switch, w.To.Port)
		}
	}
}

// TestFigure4FanOut: in EDN(16,4,4,2) each first-stage bucket is a
// 4-wire group that lands entirely inside one second-stage switch (the
// thick lines of Figure 4), and distinct buckets of one switch reach
// distinct switches.
func TestFigure4FanOut(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	g := cfg.InterstageGamma(1)
	for sw := 0; sw < cfg.SwitchesInStage(1); sw++ {
		seen := map[int]bool{}
		for bucket := 0; bucket < cfg.B; bucket++ {
			targets := map[int]bool{}
			for w := 0; w < cfg.C; w++ {
				line := g.Apply(sw*(cfg.B*cfg.C) + bucket*cfg.C + w)
				nsw, _ := cfg.SwitchOfLine(2, line)
				targets[nsw] = true
			}
			if len(targets) != 1 {
				t.Fatalf("switch %d bucket %d spreads over %d switches", sw, bucket, len(targets))
			}
			for nsw := range targets {
				if seen[nsw] {
					t.Fatalf("switch %d: two buckets reach switch %d", sw, nsw)
				}
				seen[nsw] = true
			}
		}
		if len(seen) != cfg.B {
			t.Fatalf("switch %d reaches %d second-stage switches, want %d", sw, len(seen), cfg.B)
		}
	}
}

// TestCrossbarFeedIsBucketAligned: the b^l buckets of the last hyperbar
// stage feed one c x c crossbar each, in label order (Definition 2's
// "each of the b^l buckets are sent directly to a c x c crossbar").
func TestCrossbarFeedIsBucketAligned(t *testing.T) {
	cfg := mustCfg(t, 8, 4, 2, 2)
	nl, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range nl.Wires {
		if w.From.Kind != SwitchOut || w.From.Stage != cfg.L {
			continue
		}
		bucketGlobal := w.From.Switch*cfg.B + w.From.Port/cfg.C
		if w.To.Switch != bucketGlobal {
			t.Fatalf("stage-%d switch %d port %d feeds crossbar %d, want %d",
				cfg.L, w.From.Switch, w.From.Port, w.To.Switch, bucketGlobal)
		}
		if w.To.Port != w.From.Port%cfg.C {
			t.Fatalf("wire order scrambled into crossbar: port %d -> %d", w.From.Port, w.To.Port)
		}
	}
}

func TestDescribeSmallNetwork(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	out, err := Describe(cfg, 8)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"EDN(16,4,4,2): 64 inputs, 64 outputs",
		"stage 1: 4 x H(16 -> 4x4)",
		"stage 3: 16 x 4x4 crossbar",
		"fan-out",
		"b0->",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("description missing %q:\n%s", want, out)
		}
	}
}

func TestDescribeLargeNetworkOmitsFanout(t *testing.T) {
	cfg := mustCfg(t, 64, 16, 4, 2)
	out, err := Describe(cfg, 8) // 16 switches > 8: fan-out suppressed
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "fan-out") {
		t.Errorf("large network should omit fan-out detail:\n%s", out)
	}
}

func TestTerminalStrings(t *testing.T) {
	cases := map[Terminal]string{
		{Kind: NetworkIn, Port: 3}:                        "in[3]",
		{Kind: NetworkOut, Port: 9}:                       "out[9]",
		{Kind: SwitchIn, Stage: 2, Switch: 1, Port: 5}:    "s2.i1.p5",
		{Kind: SwitchOut, Stage: 3, Switch: 250, Port: 0}: "s3.o250.p0",
	}
	for term, want := range cases {
		if got := term.String(); got != want {
			t.Errorf("%+v renders %q, want %q", term, got, want)
		}
	}
	if NetworkIn.String() != "in" || SwitchOut.String() != "sw-out" {
		t.Error("kind names wrong")
	}
	if Kind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}

func TestFmtSet(t *testing.T) {
	if got := fmtSet(map[int]bool{3: true}); got != "{3}" {
		t.Errorf("singleton: %s", got)
	}
	if got := fmtSet(map[int]bool{1: true, 2: true, 3: true}); got != "{1..3}" {
		t.Errorf("range: %s", got)
	}
	if got := fmtSet(map[int]bool{1: true, 5: true}); got != "{1..5:2}" {
		t.Errorf("sparse: %s", got)
	}
}
