// Package plot renders the experiment results as terminal-friendly ASCII
// charts, aligned tables and CSV, so the cmd/ tools can regenerate every
// figure of the paper without any graphics dependency.
package plot

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Chart is a collection of curves over a shared axis.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	LogX   bool // plot x on a log10 axis (the paper's figures do)
	Width  int  // plot area columns (default 72)
	Height int  // plot area rows (default 20)
	Series []Series
}

// markers cycles per series; chosen to stay readable when curves overlap.
var markers = []byte{'+', 'x', 'o', '*', '#', '@', '%', '&'}

// Render draws the chart. Series points are plotted individually (no
// interpolation); overlapping points show the later series' marker.
func (c Chart) Render() string {
	w, h := c.Width, c.Height
	if w <= 0 {
		w = 72
	}
	if h <= 0 {
		h = 20
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for i := range s.X {
			x := c.xval(s.X[i])
			if math.IsInf(x, 0) || math.IsNaN(x) {
				continue
			}
			xmin, xmax = math.Min(xmin, x), math.Max(xmax, x)
			ymin, ymax = math.Min(ymin, s.Y[i]), math.Max(ymax, s.Y[i])
		}
	}
	if xmin > xmax { // no data
		return c.Title + "\n(no data)\n"
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, h)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", w))
	}
	for si, s := range c.Series {
		m := markers[si%len(markers)]
		for i := range s.X {
			x := c.xval(s.X[i])
			if math.IsInf(x, 0) || math.IsNaN(x) {
				continue
			}
			col := int(math.Round((x - xmin) / (xmax - xmin) * float64(w-1)))
			row := h - 1 - int(math.Round((s.Y[i]-ymin)/(ymax-ymin)*float64(h-1)))
			if col >= 0 && col < w && row >= 0 && row < h {
				grid[row][col] = m
			}
		}
	}

	var sb strings.Builder
	if c.Title != "" {
		fmt.Fprintf(&sb, "%s\n", c.Title)
	}
	for r, line := range grid {
		yTick := ymax - (ymax-ymin)*float64(r)/float64(h-1)
		fmt.Fprintf(&sb, "%8.3f |%s|\n", yTick, string(line))
	}
	fmt.Fprintf(&sb, "%8s +%s+\n", "", strings.Repeat("-", w))
	left := c.formatX(xmin)
	right := c.formatX(xmax)
	pad := w - len(left) - len(right)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&sb, "%8s  %s%s%s\n", "", left, strings.Repeat(" ", pad), right)
	if c.XLabel != "" || c.YLabel != "" {
		fmt.Fprintf(&sb, "%8s  x: %s   y: %s\n", "", c.XLabel, c.YLabel)
	}
	for si, s := range c.Series {
		fmt.Fprintf(&sb, "%8s  %c %s\n", "", markers[si%len(markers)], s.Name)
	}
	return sb.String()
}

func (c Chart) xval(x float64) float64 {
	if c.LogX {
		if x <= 0 {
			return math.Inf(-1)
		}
		return math.Log10(x)
	}
	return x
}

func (c Chart) formatX(v float64) string {
	if c.LogX {
		return fmt.Sprintf("1e%+.0f", v)
	}
	return fmt.Sprintf("%.3g", v)
}

// WriteCSV emits the chart data in long form: series,x,y. Rows appear in
// series order, points in input order, so output is deterministic.
func (c Chart) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "series,x,y"); err != nil {
		return err
	}
	for _, s := range c.Series {
		for i := range s.X {
			if _, err := fmt.Fprintf(w, "%s,%g,%g\n", csvEscape(s.Name), s.X[i], s.Y[i]); err != nil {
				return err
			}
		}
	}
	return nil
}

func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// Table renders rows under headers with aligned columns, for the cost
// tables and experiment summaries.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, hdr := range headers {
		widths[i] = len(hdr)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(headers)
	rule := make([]string, len(headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", widths[i])
	}
	writeRow(rule)
	for _, row := range rows {
		writeRow(row)
	}
	return sb.String()
}

// SortSeriesByName orders chart series alphabetically for deterministic
// legends when series are assembled from maps.
func (c *Chart) SortSeriesByName() {
	sort.Slice(c.Series, func(i, j int) bool { return c.Series[i].Name < c.Series[j].Name })
}
