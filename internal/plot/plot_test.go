package plot

import (
	"strings"
	"testing"
)

func TestRenderContainsMarkersAndLegend(t *testing.T) {
	c := Chart{
		Title:  "test chart",
		XLabel: "inputs",
		YLabel: "PA",
		Series: []Series{
			{Name: "alpha", X: []float64{1, 2, 3}, Y: []float64{0.1, 0.5, 0.9}},
			{Name: "beta", X: []float64{1, 2, 3}, Y: []float64{0.9, 0.5, 0.2}},
		},
	}
	out := c.Render()
	for _, want := range []string{"test chart", "alpha", "beta", "+", "x", "inputs", "PA"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
}

func TestRenderEmpty(t *testing.T) {
	c := Chart{Title: "empty"}
	out := c.Render()
	if !strings.Contains(out, "no data") {
		t.Errorf("empty chart should say so:\n%s", out)
	}
}

func TestRenderLogXSkipsNonPositive(t *testing.T) {
	c := Chart{
		LogX: true,
		Series: []Series{
			{Name: "s", X: []float64{0, 10, 100, 1000}, Y: []float64{0.5, 0.4, 0.3, 0.2}},
		},
	}
	out := c.Render()
	if !strings.Contains(out, "1e+1") {
		t.Errorf("log axis labels missing:\n%s", out)
	}
}

func TestRenderConstantSeries(t *testing.T) {
	c := Chart{
		Series: []Series{{Name: "flat", X: []float64{5}, Y: []float64{1}}},
	}
	if out := c.Render(); !strings.Contains(out, "+") {
		t.Errorf("single point not plotted:\n%s", out)
	}
}

func TestWriteCSV(t *testing.T) {
	c := Chart{
		Series: []Series{
			{Name: "a,b", X: []float64{1}, Y: []float64{2}},
			{Name: "plain", X: []float64{3}, Y: []float64{4}},
		},
	}
	var sb strings.Builder
	if err := c.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "series,x,y\n\"a,b\",1,2\nplain,3,4\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"name", "value"}, [][]string{
		{"short", "1"},
		{"a-much-longer-name", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if len(lines[0]) != len(lines[1]) {
		t.Errorf("header and rule misaligned:\n%s", out)
	}
	if !strings.HasPrefix(lines[3], "a-much-longer-name") {
		t.Errorf("row content wrong:\n%s", out)
	}
}

func TestSortSeriesByName(t *testing.T) {
	c := Chart{Series: []Series{{Name: "z"}, {Name: "a"}, {Name: "m"}}}
	c.SortSeriesByName()
	if c.Series[0].Name != "a" || c.Series[2].Name != "z" {
		t.Errorf("series not sorted: %v", []string{c.Series[0].Name, c.Series[1].Name, c.Series[2].Name})
	}
}
