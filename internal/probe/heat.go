package probe

import (
	"fmt"

	"edn/internal/stats"
)

// Heat is a per-stage, per-time-bin metric surface. Series[m][s] holds
// the time series of metric m at stage s: each of its Bins cells
// accumulates one sample per measured cycle (via stats.Accumulator
// inside TimeSeries), so Mean(bin) is the per-cycle average of that
// metric over the bin's BinCycles-cycle window, and Merge across
// replayed shards is the exact pooled statistic.
type Heat struct {
	Metrics   []string
	Stages    int
	Bins      int
	BinCycles int
	Series    [][]*stats.TimeSeries
}

func newHeat(metrics []string, stages, bins, binCycles int) *Heat {
	h := &Heat{
		Metrics:   metrics,
		Stages:    stages,
		Bins:      bins,
		BinCycles: binCycles,
		Series:    make([][]*stats.TimeSeries, len(metrics)),
	}
	for m := range metrics {
		h.Series[m] = make([]*stats.TimeSeries, stages)
		for s := 0; s < stages; s++ {
			h.Series[m][s] = stats.NewTimeSeries(bins)
		}
	}
	return h
}

// Clone deep-copies the heat surface.
func (h *Heat) Clone() *Heat {
	c := newHeat(h.Metrics, h.Stages, h.Bins, h.BinCycles)
	for m := range h.Series {
		for s := range h.Series[m] {
			c.Series[m][s] = h.Series[m][s].Clone()
		}
	}
	return c
}

// Merge pools another shard's heat surface into h. Both surfaces must
// have identical shape (same metrics, stages, bins, bin width), which
// holds by construction for shards replaying the same timeline.
func (h *Heat) Merge(o *Heat) error {
	if o == nil {
		return nil
	}
	if len(h.Metrics) != len(o.Metrics) || h.Stages != o.Stages ||
		h.Bins != o.Bins || h.BinCycles != o.BinCycles {
		return fmt.Errorf("probe: heat shape mismatch: %dx%dx%d/%d vs %dx%dx%d/%d",
			len(h.Metrics), h.Stages, h.Bins, h.BinCycles,
			len(o.Metrics), o.Stages, o.Bins, o.BinCycles)
	}
	for m := range h.Series {
		if h.Metrics[m] != o.Metrics[m] {
			return fmt.Errorf("probe: heat metric mismatch: %q vs %q", h.Metrics[m], o.Metrics[m])
		}
		for s := range h.Series[m] {
			if err := h.Series[m][s].Merge(o.Series[m][s]); err != nil {
				return err
			}
		}
	}
	return nil
}

// Metric returns the index of the named metric, or -1.
func (h *Heat) Metric(name string) int {
	for i, m := range h.Metrics {
		if m == name {
			return i
		}
	}
	return -1
}
