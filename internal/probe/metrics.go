package probe

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Metrics is the live side of the metrics surface: where Registry
// collects final values at one moment, Metrics hands out long-lived
// Counter/Gauge/LiveHistogram instruments that concurrent code (a
// worker pool, a cache, per-job accounting) updates lock-free, and
// Gather snapshots the whole surface into a Registry for export. The
// same name+label grammar is enforced at instrument creation — plus
// duplicate label keys, which the one-shot Registry tolerates but a
// live instrument keyed by its label set must not — so a bad series
// fails at wiring time, not at scrape time.
//
// Looking an instrument up again with the same name and label set
// returns the same instrument; the same name with a different kind or
// (for histograms) different buckets panics.
type Metrics struct {
	mu    sync.Mutex
	kinds map[string]string   // family name -> counter|gauge|histogram
	ctrs  map[string]*Counter // keyed name+rendered labels
	gaug  map[string]*Gauge   // likewise
	hist  map[string]*LiveHistogram
}

// NewMetrics returns an empty live metrics surface.
func NewMetrics() *Metrics {
	return &Metrics{
		kinds: make(map[string]string),
		ctrs:  make(map[string]*Counter),
		gaug:  make(map[string]*Gauge),
		hist:  make(map[string]*LiveHistogram),
	}
}

// checkSeries validates the series grammar shared by every instrument
// constructor and returns the instrument key. It assumes m.mu is held.
func (m *Metrics) checkSeries(name, kind string, labels []Label) string {
	if !validMetricName(name) {
		panic(fmt.Sprintf("probe: invalid metric name %q", name))
	}
	seen := make(map[string]bool, len(labels))
	for _, l := range labels {
		if !validLabelKey(l.Key) {
			panic(fmt.Sprintf("probe: invalid label key %q on %q", l.Key, name))
		}
		if seen[l.Key] {
			panic(fmt.Sprintf("probe: duplicate label key %q on %q", l.Key, name))
		}
		seen[l.Key] = true
	}
	if k, ok := m.kinds[name]; ok && k != kind {
		panic(fmt.Sprintf("probe: metric %q registered as %s, requested as %s", name, k, kind))
	}
	m.kinds[name] = kind
	return name + labelString(labels)
}

// Counter returns the monotonically increasing counter for the given
// series, creating it on first use.
func (m *Metrics) Counter(name string, labels ...Label) *Counter {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := m.checkSeries(name, "counter", labels)
	c, ok := m.ctrs[key]
	if !ok {
		c = &Counter{name: name, labels: append([]Label(nil), labels...)}
		m.ctrs[key] = c
	}
	return c
}

// Gauge returns the settable gauge for the given series, creating it
// on first use.
func (m *Metrics) Gauge(name string, labels ...Label) *Gauge {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := m.checkSeries(name, "gauge", labels)
	g, ok := m.gaug[key]
	if !ok {
		g = &Gauge{name: name, labels: append([]Label(nil), labels...)}
		m.gaug[key] = g
	}
	return g
}

// Histogram returns the cumulative-bucket histogram for the given
// series, creating it on first use with the given bucket upper bounds
// (must be sorted ascending; the +Inf bucket is implicit). A second
// lookup with different bounds panics.
func (m *Metrics) Histogram(name string, bounds []float64, labels ...Label) *LiveHistogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("probe: histogram %q bounds not ascending", name))
		}
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	key := m.checkSeries(name, "histogram", labels)
	h, ok := m.hist[key]
	if ok {
		if len(h.bounds) != len(bounds) {
			panic(fmt.Sprintf("probe: histogram %q re-registered with different buckets", name))
		}
		for i := range bounds {
			if h.bounds[i] != bounds[i] {
				panic(fmt.Sprintf("probe: histogram %q re-registered with different buckets", name))
			}
		}
		return h
	}
	h = &LiveHistogram{
		name:   name,
		labels: append([]Label(nil), labels...),
		bounds: append([]float64(nil), bounds...),
		counts: make([]atomic.Uint64, len(bounds)+1),
	}
	m.hist[key] = h
	return h
}

// Gather snapshots every live instrument into r: counters and gauges
// as plain samples, histograms as Prometheus histogram families
// (name_bucket cumulative series with le labels, name_sum, name_count).
// Export order is the Registry's deterministic sort, so two Gathers of
// the same values render identically regardless of update order.
func (m *Metrics) Gather(r *Registry) {
	m.mu.Lock()
	ctrs := make([]*Counter, 0, len(m.ctrs))
	for _, c := range m.ctrs {
		ctrs = append(ctrs, c)
	}
	gaug := make([]*Gauge, 0, len(m.gaug))
	for _, g := range m.gaug {
		gaug = append(gaug, g)
	}
	hist := make([]*LiveHistogram, 0, len(m.hist))
	for _, h := range m.hist {
		hist = append(hist, h)
	}
	m.mu.Unlock()

	for _, c := range ctrs {
		r.Add(c.name, "counter", c.labels, c.Value())
	}
	for _, g := range gaug {
		r.Add(g.name, "gauge", g.labels, g.Value())
	}
	for _, h := range hist {
		counts, sum := h.snapshot()
		r.AddHistogram(h.name, h.labels, h.bounds, counts, sum)
	}
}

// Counter is a lock-free monotonically increasing sample. The zero
// value outside a Metrics surface is usable for tests.
type Counter struct {
	name   string
	labels []Label
	bits   atomic.Uint64 // float64 bits
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds d (negative deltas panic — counters only go up).
func (c *Counter) Add(d float64) {
	if d < 0 {
		panic(fmt.Sprintf("probe: counter %q decremented", c.name))
	}
	addFloatBits(&c.bits, d)
}

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a lock-free settable sample.
type Gauge struct {
	name   string
	labels []Label
	bits   atomic.Uint64
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds d (either sign).
func (g *Gauge) Add(d float64) { addFloatBits(&g.bits, d) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func addFloatBits(bits *atomic.Uint64, d float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// LiveHistogram is a fixed-bucket concurrent histogram in the
// Prometheus cumulative-bucket model: Observe finds the first bound >=
// v and increments that bucket (the last bucket is +Inf), plus the
// running sum and count derived at export.
type LiveHistogram struct {
	name   string
	labels []Label
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last = +Inf overflow
	sum    atomic.Uint64   // float64 bits
}

// Observe records one value.
func (h *LiveHistogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	addFloatBits(&h.sum, v)
}

// Count returns the number of observations.
func (h *LiveHistogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Sum returns the sum of observed values.
func (h *LiveHistogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

func (h *LiveHistogram) snapshot() ([]uint64, float64) {
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return counts, h.Sum()
}

// AddHistogram registers one histogram family as its Prometheus
// exposition series: cumulative name_bucket samples with le labels
// (including the +Inf bucket), name_sum and name_count. counts has one
// entry per bound plus the overflow bucket. The family is typed
// histogram in WritePrometheus.
func (r *Registry) AddHistogram(name string, labels []Label, bounds []float64, counts []uint64, sum float64) {
	if len(counts) != len(bounds)+1 {
		panic(fmt.Sprintf("probe: histogram %q wants %d counts, got %d", name, len(bounds)+1, len(counts)))
	}
	if !validMetricName(name) {
		panic(fmt.Sprintf("probe: invalid metric name %q", name))
	}
	if r.histFamilies == nil {
		r.histFamilies = make(map[string]bool)
	}
	r.histFamilies[name] = true
	var cum uint64
	for i, c := range counts {
		cum += c
		le := "+Inf"
		if i < len(bounds) {
			le = strconv.FormatFloat(bounds[i], 'g', -1, 64)
		}
		ls := append(append([]Label(nil), labels...), Label{"le", le})
		r.Add(name+"_bucket", "histogram", ls, float64(cum))
	}
	r.Add(name+"_sum", "histogram", labels, sum)
	r.Add(name+"_count", "histogram", labels, float64(cum))
}
