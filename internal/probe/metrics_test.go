package probe

import (
	"strings"
	"sync"
	"testing"
)

func TestMetricsInstrumentsBasics(t *testing.T) {
	m := NewMetrics()
	c := m.Counter("jobs_total", Label{"mode", "latency"})
	c.Inc()
	c.Add(2)
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	if m.Counter("jobs_total", Label{"mode", "latency"}) != c {
		t.Fatalf("same series must return the same counter")
	}
	if m.Counter("jobs_total", Label{"mode", "drain"}) == c {
		t.Fatalf("different label set must return a distinct counter")
	}

	g := m.Gauge("queue_depth")
	g.Set(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Fatalf("gauge = %v, want 3", got)
	}

	h := m.Histogram("dur_seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("histogram count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.5+0.5+5+50; got != want {
		t.Fatalf("histogram sum = %v, want %v", got, want)
	}
	if m.Histogram("dur_seconds", []float64{0.1, 1, 10}) != h {
		t.Fatalf("same bounds must return the same histogram")
	}
}

func TestMetricsGatherPrometheus(t *testing.T) {
	m := NewMetrics()
	m.Counter("jobs_total", Label{"outcome", "ok"}).Add(4)
	m.Gauge("busy").Set(2)
	h := m.Histogram("dur_seconds", []float64{1, 10})
	h.Observe(0.5)
	h.Observe(3)
	h.Observe(30)

	reg := NewRegistry()
	m.Gather(reg)
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE busy gauge\nbusy 2\n",
		"# TYPE dur_seconds histogram\n",
		`dur_seconds_bucket{le="1"} 1`,
		`dur_seconds_bucket{le="10"} 2`,
		`dur_seconds_bucket{le="+Inf"} 3`,
		"dur_seconds_count 3",
		"dur_seconds_sum 33.5",
		"# TYPE jobs_total counter\n" + `jobs_total{outcome="ok"} 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	if strings.Count(out, "# TYPE dur_seconds histogram") != 1 {
		t.Errorf("histogram family must be typed exactly once:\n%s", out)
	}

	// Deterministic: gathering the same surface twice renders
	// identically.
	reg2 := NewRegistry()
	m.Gather(reg2)
	var sb2 strings.Builder
	if err := reg2.WritePrometheus(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Errorf("two gathers of identical values differ:\n%s\nvs\n%s", out, sb2.String())
	}
}

// TestMetricsConcurrent hammers one counter, one gauge and one
// histogram from many goroutines — the worker-pool shape — and checks
// the totals are exact. Run under -race (this package is in the CI
// race job).
func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	const workers, perWorker = 16, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Mix instrument lookup with updates: lookups race with
			// each other and must converge on one instrument.
			c := m.Counter("ops_total", Label{"kind", "mixed"})
			g := m.Gauge("inflight")
			h := m.Histogram("lat", []float64{0.5, 1})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%3) * 0.5)
				g.Add(-1)
			}
		}(w)
	}
	wg.Wait()
	if got := m.Counter("ops_total", Label{"kind", "mixed"}).Value(); got != workers*perWorker {
		t.Fatalf("counter = %v, want %d", got, workers*perWorker)
	}
	if got := m.Gauge("inflight").Value(); got != 0 {
		t.Fatalf("gauge = %v, want 0", got)
	}
	if got := m.Histogram("lat", []float64{0.5, 1}).Count(); got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

func TestMetricsGrammarRejection(t *testing.T) {
	m := NewMetrics()
	wantPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	wantPanic("empty name", func() { m.Counter("") })
	wantPanic("bad name", func() { m.Counter("bad-name") })
	wantPanic("leading digit", func() { m.Gauge("9lives") })
	wantPanic("empty label key", func() { m.Counter("ok", Label{"", "v"}) })
	wantPanic("duplicate labels", func() {
		m.Counter("dup", Label{"k", "a"}, Label{"k", "b"})
	})
	wantPanic("kind conflict", func() {
		m.Counter("kindful")
		m.Gauge("kindful")
	})
	wantPanic("bucket conflict", func() {
		m.Histogram("hb", []float64{1, 2})
		m.Histogram("hb", []float64{1, 3})
	})
	wantPanic("unsorted buckets", func() { m.Histogram("hu", []float64{2, 1}) })
	wantPanic("counter decrement", func() { m.Counter("down").Add(-1) })
}
