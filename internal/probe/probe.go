// Package probe is the flight-recorder instrumentation layer shared by
// all four engines (core, queuesim, dilatedsim, closedloop). It has two
// surfaces:
//
//   - Sampled packet tracing: every ~Nth accepted injection (jittered,
//     deterministic from Options.Seed, so traces replay) is given a
//     trace record in a preallocated ring; the engine reports per-hop
//     events (traverse, block, park, drop, deliver, ...) against it.
//     Buffered engines identify sampled packets by setting
//     ringbuf.TraceBit in the packed packet word and calling the
//     pkt-keyed TagInject/Hop/Close; engines that track in-flight work
//     by slot (core, closed-loop requests, depth-0 paths) hold the
//     record handle directly and call SampleInject/HopRec/CloseRec.
//   - Per-stage, per-cycle heat metrics: engines accumulate counters
//     into a per-cycle scratch row via AddStage and fold it into
//     stats.TimeSeries-backed bins at EndCycle.
//
// The contract with the engines' hot paths: a nil *Probe costs exactly
// one predictable branch per instrumentation site and zero allocations
// (CI-pinned by BenchmarkProbeOff), and an attached probe observes
// without perturbing — it never changes a routing, arbitration, or
// queueing decision, so traced runs are bit-identical to untraced ones.
// The attached probe itself may allocate (its key map grows); only the
// nil path is alloc-free.
package probe

import (
	"sort"

	"edn/internal/ringbuf"
	"edn/internal/stats"
	"edn/internal/xrand"
)

// Options configures a Probe. The zero value of SampleEvery disables
// tracing (a heat-only probe); the remaining zeros take defaults.
type Options struct {
	// SampleEvery samples on average one accepted injection in this
	// many (jittered uniformly over [1, 2*SampleEvery-1] so sampling
	// never phase-locks with periodic traffic). 1 samples everything;
	// 0 disables tracing.
	SampleEvery int
	// TraceCap is the trace-record ring size (default 1024). Older
	// completed records are overwritten flight-recorder style; records
	// still in flight are never evicted.
	TraceCap int
	// MaxHops caps hops retained per record (default 32). When a
	// record fills, intermediate hops stop accumulating but the
	// terminal hop always lands (it replaces the last hop).
	MaxHops int
	// Bins is the number of heat time bins (default 64).
	Bins int
	// BinCycles is how many measured cycles fold into one heat bin
	// (default 1). The sweep layer sets this to cover the measurement
	// window; lifetime sweeps align it with epochs.
	BinCycles int
	// Seed drives the sampling jitter (default 1).
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.TraceCap == 0 {
		o.TraceCap = 1024
	}
	if o.MaxHops == 0 {
		o.MaxHops = 32
	}
	if o.Bins == 0 {
		o.Bins = 64
	}
	if o.BinCycles == 0 {
		o.BinCycles = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Probe is one engine's flight recorder. Create with New, attach with
// the engine's SetProbe (which calls Bind to shape the heat surface).
// Not safe for concurrent use; sharded sweeps attach one probe per
// shard and merge Reports.
type Probe struct {
	opts Options
	rng  *xrand.Rand
	gap  int // accepted injections left until the next sample

	recs    []Trace
	hops    []Hop // backing storage: TraceCap rows of MaxHops
	cursor  int
	sampled int64
	keys    map[uint64]int32 // tagged packet word -> record index

	stages   int
	metrics  []string
	heat     *Heat
	scratch  []float64 // per-cycle [metric][stage] counters
	cycleIdx int
}

// New builds a probe. The trace ring is fully preallocated here; the
// heat surface is shaped at Bind time (the engine knows its stage
// count).
func New(opts Options) *Probe {
	opts = opts.withDefaults()
	p := &Probe{
		opts: opts,
		rng:  xrand.New(opts.Seed),
	}
	if opts.SampleEvery > 0 {
		p.recs = make([]Trace, opts.TraceCap)
		p.hops = make([]Hop, opts.TraceCap*opts.MaxHops)
		p.keys = make(map[uint64]int32, opts.TraceCap)
		p.gap = p.drawGap()
	}
	return p
}

// Tracing reports whether packet sampling is enabled.
func (p *Probe) Tracing() bool { return p.opts.SampleEvery > 0 }

// Bind shapes the probe's heat surface for an engine: stages per-stage
// rows and the engine's metric names. Engines call it from SetProbe.
// Rebinding resets heat accumulation but keeps collected traces.
func (p *Probe) Bind(stages int, metrics []string) {
	p.stages = stages
	p.metrics = metrics
	p.heat = newHeat(metrics, stages, p.opts.Bins, p.opts.BinCycles)
	p.scratch = make([]float64, len(metrics)*stages)
	p.cycleIdx = 0
}

func (p *Probe) drawGap() int {
	n := p.opts.SampleEvery
	if n <= 1 {
		return 1
	}
	return 1 + p.rng.Intn(2*n-1)
}

// sampleDue consumes one accepted injection and reports whether it is
// the one to sample.
func (p *Probe) sampleDue() bool {
	if p.opts.SampleEvery <= 0 {
		return false
	}
	p.gap--
	if p.gap > 0 {
		return false
	}
	p.gap = p.drawGap()
	return true
}

// alloc claims a trace record, overwriting the oldest completed one.
// Records still in flight are skipped, never evicted: engines hold
// record handles across cycles, and reusing a live slot would corrupt
// them. Returns -1 when every record is in flight.
func (p *Probe) alloc(input, dest int, inject int64) int32 {
	n := len(p.recs)
	for k := 0; k < n; k++ {
		idx := p.cursor + k
		if idx >= n {
			idx -= n
		}
		r := &p.recs[idx]
		if r.ID != 0 && !r.Done {
			continue
		}
		p.cursor = idx + 1
		if p.cursor == n {
			p.cursor = 0
		}
		p.sampled++
		base := idx * p.opts.MaxHops
		*r = Trace{
			ID:     p.sampled,
			Input:  input,
			Dest:   dest,
			Inject: inject,
			Hops:   p.hops[base : base : base+p.opts.MaxHops],
		}
		return int32(idx)
	}
	return -1
}

// SampleInject offers one accepted injection for sampling and returns
// a record handle (-1: not sampled). Slot-tracking engines keep the
// handle and report hops with HopRec/CloseRec; the caller records the
// first hop itself (EvInject or EvIssue).
func (p *Probe) SampleInject(input, dest int, now int64) int32 {
	if !p.sampleDue() {
		return -1
	}
	return p.alloc(input, dest, now)
}

// TagInject offers one accepted injection for sampling in a buffered
// engine. When sampled, it returns the packet word with
// ringbuf.TraceBit set (keying the record) and stamps the EvInject
// hop; otherwise it returns pkt unchanged. A duplicate key (two live
// sampled packets packing identically) skips sampling rather than
// confusing two flights.
func (p *Probe) TagInject(input int, pkt uint64, now int64) uint64 {
	if !p.sampleDue() {
		return pkt
	}
	key := pkt | ringbuf.TraceBit
	if _, dup := p.keys[key]; dup {
		return pkt
	}
	rec := p.alloc(input, ringbuf.Dest(pkt), now)
	if rec < 0 {
		return pkt
	}
	p.keys[key] = rec
	p.HopRec(rec, 0, EvInject, now)
	return key
}

// Hop records a non-terminal event against a tagged packet. Untagged
// packets return immediately.
func (p *Probe) Hop(pkt uint64, stage int, ev Event, now int64) {
	if pkt&ringbuf.TraceBit == 0 {
		return
	}
	if rec, ok := p.keys[pkt]; ok {
		p.HopRec(rec, stage, ev, now)
	}
}

// Close records a terminal event against a tagged packet and releases
// its key.
func (p *Probe) Close(pkt uint64, stage int, ev Event, now int64) {
	if pkt&ringbuf.TraceBit == 0 {
		return
	}
	if rec, ok := p.keys[pkt]; ok {
		delete(p.keys, pkt)
		p.CloseRec(rec, stage, ev, now)
	}
}

// HopRec records a non-terminal event against a record handle. A hop
// identical in (stage, event) to the record's last hop is skipped, so
// a packet blocked in place for many cycles costs one hop, not one per
// cycle. rec < 0 is a no-op.
func (p *Probe) HopRec(rec int32, stage int, ev Event, now int64) {
	if rec < 0 {
		return
	}
	r := &p.recs[rec]
	if r.Done {
		return
	}
	if n := len(r.Hops); n > 0 {
		if last := &r.Hops[n-1]; last.Stage == stage && last.Event == ev {
			return
		}
	}
	if len(r.Hops) < cap(r.Hops) {
		r.Hops = append(r.Hops, Hop{Cycle: now, Stage: stage, Event: ev})
	}
}

// CloseRec records a terminal event and closes the record. The
// terminal hop always lands: if the record is full it replaces the
// last hop.
func (p *Probe) CloseRec(rec int32, stage int, ev Event, now int64) {
	if rec < 0 {
		return
	}
	r := &p.recs[rec]
	if r.Done {
		return
	}
	h := Hop{Cycle: now, Stage: stage, Event: ev}
	if len(r.Hops) < cap(r.Hops) {
		r.Hops = append(r.Hops, h)
	} else if n := len(r.Hops); n > 0 {
		r.Hops[n-1] = h
	}
	r.Done = true
}

// AddStage accumulates v into the current cycle's (metric, stage) heat
// cell. Metric indices follow the engine's Bind order.
func (p *Probe) AddStage(metric, stage int, v float64) {
	p.scratch[metric*p.stages+stage] += v
}

// EndCycle folds the cycle's heat counters into the current time bin
// and advances the cycle index. Cycles beyond Bins*BinCycles pile into
// the last bin rather than being lost.
func (p *Probe) EndCycle() {
	if p.heat == nil {
		return
	}
	bin := p.cycleIdx / p.heat.BinCycles
	if bin >= p.heat.Bins {
		bin = p.heat.Bins - 1
	}
	for m := range p.metrics {
		row := m * p.stages
		for s := 0; s < p.stages; s++ {
			p.heat.Series[m][s].Add(bin, p.scratch[row+s])
			p.scratch[row+s] = 0
		}
	}
	p.cycleIdx++
}

// Report is a probe's collected output: the retained traces in
// sampling order, the heat surface, and the total number of packets
// ever sampled (>= len(Traces) once the ring has wrapped).
type Report struct {
	Sampled int64
	Traces  []Trace
	Heat    *Heat
}

// Report snapshots the probe. Traces are deep copies sorted by ID;
// the probe can keep recording afterwards.
func (p *Probe) Report() *Report {
	rep := &Report{Sampled: p.sampled}
	for i := range p.recs {
		r := &p.recs[i]
		if r.ID == 0 {
			continue
		}
		c := *r
		c.Hops = append([]Hop(nil), r.Hops...)
		rep.Traces = append(rep.Traces, c)
	}
	sort.Slice(rep.Traces, func(i, j int) bool { return rep.Traces[i].ID < rep.Traces[j].ID })
	if p.heat != nil {
		rep.Heat = p.heat.Clone()
	}
	return rep
}

// Merge folds another shard's report into r: heat surfaces pool
// exactly, traces concatenate (shard seeds keep IDs meaningful within
// a shard; sweeps sample traces on a single designated shard so the
// merged trace set is shard-count independent).
func (r *Report) Merge(o *Report) error {
	if o == nil {
		return nil
	}
	r.Sampled += o.Sampled
	r.Traces = append(r.Traces, o.Traces...)
	if o.Heat != nil {
		if r.Heat == nil {
			r.Heat = o.Heat.Clone()
		} else if err := r.Heat.Merge(o.Heat); err != nil {
			return err
		}
	}
	return nil
}

// LatencyHistogram builds a histogram over the completed traces'
// latencies — the sampled cohort's view of the engine's own latency
// histogram (same shape as the engines': 4096 buckets of width 1, so
// integer cycle latencies quantile exactly).
func (r *Report) LatencyHistogram() *stats.Histogram {
	h := stats.NewHistogram(4096, 1)
	for i := range r.Traces {
		if lat, ok := r.Traces[i].Latency(); ok {
			h.Add(lat)
		}
	}
	return h
}

// EventCounts tallies hops by (event, stage) across every trace:
// counts[ev][stage]. Stages above maxStage are clamped into the last
// row (closed-loop attempt numbers can exceed the stage count).
func (r *Report) EventCounts(maxStage int) [][]int64 {
	counts := make([][]int64, numEvents)
	for e := range counts {
		counts[e] = make([]int64, maxStage+1)
	}
	for i := range r.Traces {
		for _, h := range r.Traces[i].Hops {
			s := h.Stage
			if s > maxStage {
				s = maxStage
			}
			if s < 0 {
				s = 0
			}
			counts[h.Event][s]++
		}
	}
	return counts
}
