package probe

import (
	"testing"

	"edn/internal/ringbuf"
)

// sampleSequence drives n offered injections through SampleInject and
// returns which offers were sampled.
func sampleSequence(opts Options, n int) []bool {
	p := New(opts)
	out := make([]bool, n)
	for i := 0; i < n; i++ {
		out[i] = p.SampleInject(i, i, int64(i)) >= 0
	}
	return out
}

func TestSamplingDeterministic(t *testing.T) {
	opts := Options{SampleEvery: 8, TraceCap: 4096, Seed: 7}
	a := sampleSequence(opts, 2000)
	b := sampleSequence(opts, 2000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("sampling diverged at offer %d", i)
		}
	}
	if diff := sampleSequence(Options{SampleEvery: 8, TraceCap: 4096, Seed: 8}, 2000); equalBools(a, diff) {
		t.Fatalf("different seeds produced identical sampling")
	}
}

func equalBools(a, b []bool) bool {
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestSamplingJitterBounds(t *testing.T) {
	const every = 8
	seq := sampleSequence(Options{SampleEvery: every, TraceCap: 1 << 16}, 10000)
	last := -1
	samples := 0
	for i, s := range seq {
		if !s {
			continue
		}
		samples++
		if last >= 0 {
			gap := i - last
			if gap < 1 || gap > 2*every-1 {
				t.Fatalf("gap %d outside [1, %d]", gap, 2*every-1)
			}
		}
		last = i
	}
	// Mean gap is `every`, so expect close to 10000/every samples.
	if samples < 10000/every/2 || samples > 10000/every*2 {
		t.Fatalf("sampled %d of 10000 offers, want ~%d", samples, 10000/every)
	}
}

func TestSampleEveryZeroDisablesTracing(t *testing.T) {
	p := New(Options{})
	if p.Tracing() {
		t.Fatalf("zero SampleEvery should disable tracing")
	}
	if rec := p.SampleInject(0, 0, 0); rec != -1 {
		t.Fatalf("SampleInject = %d, want -1", rec)
	}
	if got := p.TagInject(0, 42, 0); got != 42 {
		t.Fatalf("TagInject = %d, want packet unchanged", got)
	}
	// Heat still works on a trace-disabled probe.
	p.Bind(2, []string{"m"})
	p.AddStage(0, 1, 3)
	p.EndCycle()
	rep := p.Report()
	if rep.Sampled != 0 || len(rep.Traces) != 0 {
		t.Fatalf("trace-disabled probe reported traces: %+v", rep)
	}
	if got := rep.Heat.Series[0][1].Mean(0); got != 3 {
		t.Fatalf("heat mean = %g, want 3", got)
	}
}

func TestRingNeverEvictsOpenRecords(t *testing.T) {
	p := New(Options{SampleEvery: 1, TraceCap: 2})
	r0 := p.SampleInject(0, 0, 0)
	r1 := p.SampleInject(1, 1, 0)
	if r0 < 0 || r1 < 0 {
		t.Fatalf("first two samples should land: %d %d", r0, r1)
	}
	if r := p.SampleInject(2, 2, 1); r != -1 {
		t.Fatalf("full ring of open records must refuse, got %d", r)
	}
	p.CloseRec(r0, 1, EvDeliver, 2)
	r3 := p.SampleInject(3, 3, 3)
	if r3 != r0 {
		t.Fatalf("closed slot should be reused: got %d, want %d", r3, r0)
	}
	rep := p.Report()
	if len(rep.Traces) != 2 {
		t.Fatalf("got %d traces, want 2 (one overwritten)", len(rep.Traces))
	}
	// The open record from injection 1 must have survived the overwrite.
	found := false
	for _, tr := range rep.Traces {
		if tr.Input == 1 && !tr.Done {
			found = true
		}
	}
	if !found {
		t.Fatalf("open record was evicted: %+v", rep.Traces)
	}
}

func TestHopDedupeAndTruncation(t *testing.T) {
	p := New(Options{SampleEvery: 1, MaxHops: 4})
	rec := p.SampleInject(0, 5, 0)
	p.HopRec(rec, 0, EvInject, 0)
	p.HopRec(rec, 1, EvBlock, 1)
	p.HopRec(rec, 1, EvBlock, 2) // identical (stage, event): deduped
	p.HopRec(rec, 1, EvBlock, 3)
	p.HopRec(rec, 1, EvTraverse, 4)
	p.HopRec(rec, 2, EvBlock, 5) // record full: dropped
	p.CloseRec(rec, 3, EvDeliver, 9)
	rep := p.Report()
	if len(rep.Traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(rep.Traces))
	}
	tr := rep.Traces[0]
	if len(tr.Hops) != 4 {
		t.Fatalf("got %d hops, want 4 (deduped + truncated): %+v", len(tr.Hops), tr.Hops)
	}
	last := tr.Hops[len(tr.Hops)-1]
	if last.Event != EvDeliver || last.Cycle != 9 || last.Stage != 3 {
		t.Fatalf("terminal hop must always land, got %+v", last)
	}
	if lat, ok := tr.Latency(); !ok || lat != 9 {
		t.Fatalf("Latency = %g,%v want 9,true", lat, ok)
	}
	// Hops after close are ignored.
	p.HopRec(rec, 3, EvBlock, 10)
	if got := len(p.Report().Traces[0].Hops); got != 4 {
		t.Fatalf("hop recorded after close: %d hops", got)
	}
}

func TestTagInjectKeysAndClose(t *testing.T) {
	p := New(Options{SampleEvery: 1})
	pkt := uint64(77)
	tagged := p.TagInject(3, pkt, 5)
	if tagged&ringbuf.TraceBit == 0 {
		t.Fatalf("SampleEvery=1 must tag every packet")
	}
	if ringbuf.Dest(tagged) != ringbuf.Dest(pkt) {
		t.Fatalf("tagging changed Dest: %d vs %d", ringbuf.Dest(tagged), ringbuf.Dest(pkt))
	}
	// A second live packet with the identical packed word must be
	// skipped rather than confusing two flights.
	if again := p.TagInject(4, pkt, 6); again != pkt {
		t.Fatalf("duplicate key should skip sampling, got %#x", again)
	}
	p.Hop(tagged, 1, EvTraverse, 6)
	p.Hop(pkt, 1, EvBlock, 6) // untagged: ignored
	p.Close(tagged, 2, EvDeliver, 8)
	rep := p.Report()
	if len(rep.Traces) != 1 {
		t.Fatalf("got %d traces, want 1", len(rep.Traces))
	}
	hops := rep.Traces[0].Hops
	if len(hops) != 3 || hops[0].Event != EvInject || hops[1].Event != EvTraverse || hops[2].Event != EvDeliver {
		t.Fatalf("unexpected hops %+v", hops)
	}
	// Key released on close: re-tagging the same word works again.
	if retag := p.TagInject(5, pkt, 9); retag&ringbuf.TraceBit == 0 {
		t.Fatalf("key not released after Close")
	}
}

func TestTraceLatencyOnlyOnSuccess(t *testing.T) {
	p := New(Options{SampleEvery: 1})
	dropped := p.SampleInject(0, 0, 0)
	p.CloseRec(dropped, 1, EvDrop, 4)
	open := p.SampleInject(1, 1, 2)
	p.HopRec(open, 1, EvTraverse, 3)
	rep := p.Report()
	for _, tr := range rep.Traces {
		if _, ok := tr.Latency(); ok {
			t.Fatalf("non-delivered trace reported latency: %+v", tr)
		}
	}
	if h := rep.LatencyHistogram(); h.N() != 0 {
		t.Fatalf("latency histogram over failures has N=%d", h.N())
	}
}

func TestHeatFoldAndMerge(t *testing.T) {
	opts := Options{Bins: 2, BinCycles: 2}
	mk := func(scale float64) *Probe {
		p := New(opts)
		p.Bind(2, []string{"occ", "blk"})
		for c := 0; c < 5; c++ { // 5 cycles: bins get 2, 2, and 1 overflow into the last
			p.AddStage(0, 0, scale*float64(c))
			p.AddStage(1, 1, 1)
			p.EndCycle()
		}
		return p
	}
	rep := mk(1).Report()
	h := rep.Heat
	if h.Metric("blk") != 1 || h.Metric("nope") != -1 {
		t.Fatalf("Metric lookup broken")
	}
	// Bin 0 holds cycles {0,1}, bin 1 holds {2,3,4} (overflow folds in).
	if n := h.Series[0][0].N(0); n != 2 {
		t.Fatalf("bin 0 N = %d, want 2", n)
	}
	if n := h.Series[0][0].N(1); n != 3 {
		t.Fatalf("bin 1 N = %d, want 3 (overflow cycles pile into last bin)", n)
	}
	if got := h.Series[0][0].Mean(0); got != 0.5 {
		t.Fatalf("bin 0 mean = %g, want 0.5", got)
	}
	if got := h.Series[0][0].Mean(1); got != 3 {
		t.Fatalf("bin 1 mean = %g, want 3", got)
	}

	other := mk(3).Report()
	if err := rep.Merge(other); err != nil {
		t.Fatalf("merge: %v", err)
	}
	// Pooled bin 0: samples {0,1} and {0,3} -> mean 1.
	if got := rep.Heat.Series[0][0].Mean(0); got != 1 {
		t.Fatalf("pooled mean = %g, want 1", got)
	}

	mismatch := New(Options{Bins: 3})
	mismatch.Bind(2, []string{"occ", "blk"})
	if err := rep.Merge(mismatch.Report()); err == nil {
		t.Fatalf("shape mismatch must error")
	}
	named := New(opts)
	named.Bind(2, []string{"occ", "other"})
	if err := rep.Merge(named.Report()); err == nil {
		t.Fatalf("metric-name mismatch must error")
	}
}

func TestReportMergeConcatenatesTraces(t *testing.T) {
	a := New(Options{SampleEvery: 1})
	ra := a.SampleInject(0, 1, 0)
	a.CloseRec(ra, 1, EvDeliver, 3)
	b := New(Options{SampleEvery: 1})
	rb := b.SampleInject(2, 3, 5)
	b.CloseRec(rb, 1, EvDeliver, 9)

	rep := a.Report()
	if err := rep.Merge(b.Report()); err != nil {
		t.Fatalf("merge: %v", err)
	}
	if rep.Sampled != 2 || len(rep.Traces) != 2 {
		t.Fatalf("merged sampled=%d traces=%d, want 2/2", rep.Sampled, len(rep.Traces))
	}
	if err := rep.Merge(nil); err != nil {
		t.Fatalf("nil merge: %v", err)
	}
}

func TestEventCountsClampsStages(t *testing.T) {
	p := New(Options{SampleEvery: 1})
	rec := p.SampleInject(0, 0, 0)
	p.HopRec(rec, 0, EvInject, 0)
	p.HopRec(rec, 2, EvTraverse, 1)
	p.HopRec(rec, 9, EvRetry, 2) // clamped into last row
	p.CloseRec(rec, 3, EvDeliver, 3)
	counts := p.Report().EventCounts(3)
	if len(counts) != numEvents {
		t.Fatalf("got %d event rows, want %d", len(counts), numEvents)
	}
	if counts[EvInject][0] != 1 || counts[EvTraverse][2] != 1 || counts[EvDeliver][3] != 1 {
		t.Fatalf("misplaced counts: %+v", counts)
	}
	if counts[EvRetry][3] != 1 {
		t.Fatalf("stage 9 should clamp to 3: %+v", counts[EvRetry])
	}
}

func TestEventStringAndTerminal(t *testing.T) {
	if EvPark.String() != "park" || EvGiveUp.String() != "giveup" {
		t.Fatalf("event names wrong: %s %s", EvPark, EvGiveUp)
	}
	if Event(200).String() == "" {
		t.Fatalf("out-of-range event must still print")
	}
	for _, ev := range []Event{EvDrop, EvStrand, EvDeliver, EvComplete, EvGiveUp} {
		if !ev.Terminal() {
			t.Fatalf("%s should be terminal", ev)
		}
	}
	for _, ev := range []Event{EvInject, EvTraverse, EvBlock, EvPark, EvIssue, EvTimeout, EvRetry} {
		if ev.Terminal() {
			t.Fatalf("%s should not be terminal", ev)
		}
	}
}
