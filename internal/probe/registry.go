package probe

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Label is one metric dimension. Values are escaped at export time, so
// any string is safe.
type Label struct {
	Key   string
	Value string
}

// Metric is one registered sample. Kind is "counter" or "gauge"
// (Prometheus TYPE line); the JSON-lines exporter carries it verbatim.
type Metric struct {
	Name   string
	Kind   string
	Labels []Label
	Value  float64
}

// Registry is a static metrics registry: sweeps and CLIs register
// final counter/gauge values and export them deterministically (sorted
// by name, then label set). It is the export substrate a future
// edn-serve daemon can re-register into per request; it deliberately
// has no locking or liveness — callers own the collection moment.
type Registry struct {
	metrics []Metric
	// histFamilies names the histogram families registered through
	// AddHistogram, whose _bucket/_sum/_count samples share one
	// `# TYPE <family> histogram` line at export.
	histFamilies map[string]bool
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Add registers one sample. Names must match the Prometheus metric
// grammar ([a-zA-Z_:][a-zA-Z0-9_:]*); Add panics otherwise, since a
// bad name is a programming error the exporter lint would only catch
// later.
func (r *Registry) Add(name, kind string, labels []Label, value float64) {
	if !validMetricName(name) {
		panic(fmt.Sprintf("probe: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabelKey(l.Key) {
			panic(fmt.Sprintf("probe: invalid label key %q on %q", l.Key, name))
		}
	}
	r.metrics = append(r.metrics, Metric{Name: name, Kind: kind, Labels: labels, Value: value})
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelKey(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// sorted returns the metrics in export order: by name, then by the
// rendered label set, so output is deterministic regardless of
// registration order.
func (r *Registry) sorted() []Metric {
	out := append([]Metric(nil), r.metrics...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return labelString(out[i].Labels) < labelString(out[j].Labels)
	})
	return out
}

func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.Key + `="` + escapeLabelValue(l.Value) + `"`
	}
	return "{" + strings.Join(parts, ",") + "}"
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// WriteJSONLines exports one JSON object per line:
// {"name":...,"kind":...,"labels":{...},"value":...}. Label maps
// render with sorted keys (encoding/json), so output is reproducible.
func (r *Registry) WriteJSONLines(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, m := range r.sorted() {
		labels := map[string]string{}
		for _, l := range m.Labels {
			labels[l.Key] = l.Value
		}
		if err := enc.Encode(struct {
			Name   string            `json:"name"`
			Kind   string            `json:"kind"`
			Labels map[string]string `json:"labels"`
			Value  float64           `json:"value"`
		}{m.Name, m.Kind, labels, m.Value}); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus exports Prometheus text exposition format: one
// `# TYPE` comment per metric family followed by its samples. The
// _bucket/_sum/_count samples of a histogram family registered through
// AddHistogram share a single `# TYPE <family> histogram` line.
func (r *Registry) WritePrometheus(w io.Writer) error {
	typed := make(map[string]bool)
	for _, m := range r.sorted() {
		fam, kind := r.family(m)
		if !typed[fam] {
			typed[fam] = true
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam, kind); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s%s %g\n", m.Name, labelString(m.Labels), m.Value); err != nil {
			return err
		}
	}
	return nil
}

// family maps a sample to its exposition family name and type: the
// base name for histogram series, the sample's own name otherwise.
func (r *Registry) family(m Metric) (string, string) {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(m.Name, suf); ok && r.histFamilies[base] {
			return base, "histogram"
		}
	}
	kind := m.Kind
	if kind == "" {
		kind = "untyped"
	}
	return m.Name, kind
}

// AddReport registers the standard metric set derived from a probe
// report under the given base labels: sampled/completed trace
// counters, trace-cohort latency quantiles, and per-metric, per-stage
// heat means. This is the one place report fields are mapped to metric
// names, shared by every CLI exporter.
func (r *Registry) AddReport(rep *Report, labels []Label) {
	if rep == nil {
		return
	}
	r.Add("edn_trace_sampled_total", "counter", labels, float64(rep.Sampled))
	completed := 0
	for i := range rep.Traces {
		if _, ok := rep.Traces[i].Latency(); ok {
			completed++
		}
	}
	r.Add("edn_trace_completed_total", "counter", labels, float64(completed))
	if h := rep.LatencyHistogram(); h.N() > 0 {
		for _, q := range []struct {
			name string
			v    float64
		}{
			{"edn_trace_latency_p50_cycles", h.Quantile(0.50)},
			{"edn_trace_latency_p99_cycles", h.Quantile(0.99)},
			{"edn_trace_latency_mean_cycles", h.Mean()},
		} {
			r.Add(q.name, "gauge", labels, q.v)
		}
	}
	if rep.Heat == nil {
		return
	}
	for m, name := range rep.Heat.Metrics {
		for s := 0; s < rep.Heat.Stages; s++ {
			var acc float64
			n := 0
			for b := 0; b < rep.Heat.Bins; b++ {
				if rep.Heat.Series[m][s].N(b) > 0 {
					acc += rep.Heat.Series[m][s].Mean(b)
					n++
				}
			}
			if n == 0 {
				continue
			}
			ls := append(append([]Label(nil), labels...),
				Label{"metric", name}, Label{"stage", fmt.Sprintf("%d", s+1)})
			r.Add("edn_heat_stage_mean", "gauge", ls, acc/float64(n))
		}
	}
}
