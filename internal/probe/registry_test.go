package probe

import (
	"bufio"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"
	"testing"
)

// lintPrometheus is a minimal checker for the text exposition format:
// every sample line must parse as `name[{labels}] value`, names must
// match the metric grammar, each family's samples must follow its
// `# TYPE` line, and families must appear in sorted order.
func lintPrometheus(t *testing.T, text string) {
	t.Helper()
	typed := ""
	lastFamily := ""
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "# TYPE ") {
			f := strings.Fields(line)
			if len(f) != 4 || !validMetricName(f[2]) {
				t.Fatalf("bad TYPE line %q", line)
			}
			switch f[3] {
			case "counter", "gauge", "untyped":
			default:
				t.Fatalf("bad kind in %q", line)
			}
			if f[2] <= lastFamily {
				t.Fatalf("family %q out of order (after %q)", f[2], lastFamily)
			}
			typed, lastFamily = f[2], f[2]
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		if !validMetricName(name) {
			t.Fatalf("bad metric name in %q", line)
		}
		if name != typed {
			t.Fatalf("sample %q not under its TYPE line (last TYPE %q)", line, typed)
		}
		val := line[strings.LastIndex(line, " ")+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
	}
}

func TestRegistryPrometheusOutput(t *testing.T) {
	r := NewRegistry()
	// Registered out of order: export must sort.
	r.Add("edn_z_total", "counter", nil, 3)
	r.Add("edn_a_gauge", "gauge", []Label{{"stage", "2"}}, 1.5)
	r.Add("edn_a_gauge", "gauge", []Label{{"stage", "1"}}, 0.5)
	r.Add("edn_m_info", "", []Label{{"v", `qu"ote\back`}}, 1)

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	lintPrometheus(t, out)
	want := "# TYPE edn_a_gauge gauge\n" +
		"edn_a_gauge{stage=\"1\"} 0.5\n" +
		"edn_a_gauge{stage=\"2\"} 1.5\n" +
		"# TYPE edn_m_info untyped\n" +
		"edn_m_info{v=\"qu\\\"ote\\\\back\"} 1\n" +
		"# TYPE edn_z_total counter\n" +
		"edn_z_total 3\n"
	if out != want {
		t.Fatalf("output:\n%s\nwant:\n%s", out, want)
	}
}

func TestRegistryJSONLines(t *testing.T) {
	r := NewRegistry()
	r.Add("edn_b", "gauge", []Label{{"k", "v"}}, 2)
	r.Add("edn_a", "counter", nil, 1)
	var sb strings.Builder
	if err := r.WriteJSONLines(&sb); err != nil {
		t.Fatalf("WriteJSONLines: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var first struct {
		Name   string            `json:"name"`
		Kind   string            `json:"kind"`
		Labels map[string]string `json:"labels"`
		Value  float64           `json:"value"`
	}
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("line 0 not JSON: %v", err)
	}
	if first.Name != "edn_a" || first.Value != 1 {
		t.Fatalf("sorted order broken: %+v", first)
	}
}

func TestRegistryRejectsBadNames(t *testing.T) {
	for _, bad := range []string{"", "9leading", "has-dash", "sp ace"} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Add(%q) did not panic", bad)
				}
			}()
			NewRegistry().Add(bad, "gauge", nil, 0)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("bad label key did not panic")
			}
		}()
		NewRegistry().Add("edn_ok", "gauge", []Label{{"bad-key", "v"}}, 0)
	}()
}

func TestAddReportMetricSet(t *testing.T) {
	p := New(Options{SampleEvery: 1, Bins: 2, BinCycles: 1})
	p.Bind(2, []string{"occupancy"})
	rec := p.SampleInject(0, 1, 0)
	p.HopRec(rec, 1, EvTraverse, 1)
	p.CloseRec(rec, 2, EvDeliver, 4)
	p.AddStage(0, 0, 2)
	p.AddStage(0, 1, 6)
	p.EndCycle()

	r := NewRegistry()
	r.AddReport(p.Report(), []Label{{"engine", "test"}})
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := sb.String()
	lintPrometheus(t, out)
	for _, want := range []string{
		`edn_trace_sampled_total{engine="test"} 1`,
		`edn_trace_completed_total{engine="test"} 1`,
		`edn_trace_latency_p50_cycles{engine="test"} 4`,
		`edn_heat_stage_mean{engine="test",metric="occupancy",stage="1"} 2`,
		`edn_heat_stage_mean{engine="test",metric="occupancy",stage="2"} 6`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// AddReport(nil) is a no-op, not a panic.
	r.AddReport(nil, nil)
}

func TestLatencyHistogramString(t *testing.T) {
	p := New(Options{SampleEvery: 1})
	for i, lat := range []int64{3, 5, 9} {
		rec := p.SampleInject(i, i, 0)
		p.CloseRec(rec, 1, EvDeliver, lat)
	}
	h := p.Report().LatencyHistogram()
	got := fmt.Sprintf("%s", h)
	if !strings.Contains(got, "n=3") || !strings.Contains(got, "p50=5") {
		t.Fatalf("histogram String: %q", got)
	}
}
