package probe

import (
	"encoding/json"
	"fmt"
)

// Event is one step in a sampled packet's (or request's) life. The
// packet engines emit the inject/traverse/block/park/drop/strand/
// deliver family; the closed-loop layer emits the issue/timeout/retry/
// complete/give-up family with Hop.Stage carrying the attempt number
// instead of a network stage.
type Event uint8

const (
	// EvInject: the packet was accepted into the network (entered the
	// stage-1 queue, or latched at an input for depth-0 networks).
	EvInject Event = iota
	// EvTraverse: the packet won arbitration and advanced one stage.
	EvTraverse
	// EvBlock: the packet lost arbitration or found the next buffer
	// full (HoL blocking) and stayed put this cycle.
	EvBlock
	// EvPark: the packet is held because its required wire or terminal
	// is masked dead (only ever emitted under an active fault mask).
	EvPark
	// EvDrop: the packet was discarded (Drop policy loss, or a core
	// circuit-switched request that lost arbitration).
	EvDrop
	// EvStrand: the packet was discarded because churn killed the wire
	// it was queued on (Drop policy only).
	EvStrand
	// EvDeliver: the packet reached its destination terminal.
	EvDeliver
	// EvIssue: a closed-loop request was issued into the forward fabric
	// for the first time.
	EvIssue
	// EvTimeout: the request's deadline passed with no reply.
	EvTimeout
	// EvRetry: the request re-entered the forward fabric after backoff.
	EvRetry
	// EvComplete: the request's reply was delivered to its source.
	EvComplete
	// EvGiveUp: the request exhausted MaxAttempts and was abandoned.
	EvGiveUp

	numEvents = int(EvGiveUp) + 1
)

var eventNames = [numEvents]string{
	"inject", "traverse", "block", "park", "drop", "strand",
	"deliver", "issue", "timeout", "retry", "complete", "giveup",
}

func (e Event) String() string {
	if int(e) < numEvents {
		return eventNames[e]
	}
	return fmt.Sprintf("event(%d)", int(e))
}

// MarshalJSON renders the event by name so exported traces read the
// same as the CLI dump ("deliver", not 6).
func (e Event) MarshalJSON() ([]byte, error) {
	return json.Marshal(e.String())
}

// Terminal reports whether the event ends a trace.
func (e Event) Terminal() bool {
	switch e {
	case EvDrop, EvStrand, EvDeliver, EvComplete, EvGiveUp:
		return true
	}
	return false
}

// Hop is one recorded event. Stage is the network stage the event
// happened at (1-based; 0 means "at the input, before stage 1") —
// except for closed-loop traces, where it is the attempt number.
type Hop struct {
	Cycle int64 `json:"cycle"`
	Stage int   `json:"stage"`
	Event Event `json:"event"`
}

// Trace is one sampled packet's flight record. IDs are 1-based and
// assigned in sampling order, so sorting by ID reproduces the exact
// injection order regardless of how reports were merged. Done is false
// for packets still in flight when the run ended (their record is kept:
// a stuck packet is usually the interesting one).
type Trace struct {
	ID     int64 `json:"id"`
	Input  int   `json:"input"`
	Dest   int   `json:"dest"`
	Inject int64 `json:"inject"`
	Done   bool  `json:"done"`
	Hops   []Hop `json:"hops"`
}

// Latency returns the cycles between injection and the terminal
// deliver/complete hop. The second result is false when the trace
// never completed successfully (dropped, stranded, given up, or still
// in flight).
func (t *Trace) Latency() (float64, bool) {
	if !t.Done || len(t.Hops) == 0 {
		return 0, false
	}
	last := t.Hops[len(t.Hops)-1]
	if last.Event != EvDeliver && last.Event != EvComplete {
		return 0, false
	}
	return float64(last.Cycle - t.Inject), true
}
