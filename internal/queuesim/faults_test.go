package queuesim

import (
	"fmt"
	"testing"

	"edn/internal/core"
	"edn/internal/faults"
	"edn/internal/topology"
	"edn/internal/traffic"
	"edn/internal/xrand"
)

// interiorFaults samples faults that leave the inputs and outputs
// intact: interstage wires plus interior (stage 2..l) switches.
// Backpressure tests use it so no packet can get parked forever behind
// a dead terminal.
func interiorFaults(cfg topology.Config, p float64, seed uint64) faults.Set {
	rng := xrand.New(seed)
	set := faults.Bernoulli(cfg, faults.WireFaults, p, rng)
	for s := 2; s <= cfg.L; s++ {
		for sw := 0; sw < cfg.SwitchesInStage(s); sw++ {
			if rng.Bool(p / 2) {
				set.Switches = append(set.Switches, faults.SwitchID{Stage: s, Switch: sw})
			}
		}
	}
	return set
}

// TestEmptyMaskQueueEquivalence: a queueing network built with an empty
// fault mask must match the unfaulted network cycle for cycle — same
// CycleStats, same totals, same latency histogram — across depths and
// policies.
func TestEmptyMaskQueueEquivalence(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	empty, err := faults.Compile(cfg, faults.Set{})
	if err != nil {
		t.Fatal(err)
	}
	for _, depth := range []int{0, 1, 4, Unbounded} {
		for _, policy := range []Policy{Backpressure, Drop} {
			t.Run(fmt.Sprintf("depth=%d/%v", depth, policy), func(t *testing.T) {
				ref, err := New(cfg, Options{Depth: depth, Policy: policy})
				if err != nil {
					t.Fatal(err)
				}
				got, err := New(cfg, Options{Depth: depth, Policy: policy, Faults: empty})
				if err != nil {
					t.Fatal(err)
				}
				gen := traffic.Uniform{Rate: 0.9, Rng: xrand.New(21)}
				dest := make([]int, cfg.Inputs())
				for cycle := 0; cycle < 60; cycle++ {
					gen.GenerateInto(dest, cfg.Outputs())
					rcs, err := ref.Cycle(dest)
					if err != nil {
						t.Fatal(err)
					}
					gcs, err := got.Cycle(dest)
					if err != nil {
						t.Fatal(err)
					}
					if rcs != gcs {
						t.Fatalf("cycle %d: stats diverge: %+v vs %+v", cycle, rcs, gcs)
					}
				}
				if ref.Totals() != got.Totals() {
					t.Fatalf("totals diverge: %+v vs %+v", ref.Totals(), got.Totals())
				}
				if ref.Queued() != got.Queued() {
					t.Fatalf("queued diverge: %d vs %d", ref.Queued(), got.Queued())
				}
				rq, gq := ref.Latency(), got.Latency()
				if rq.N() != gq.N() || rq.Mean() != gq.Mean() || rq.Max() != gq.Max() {
					t.Fatalf("latency diverges: %d/%g/%g vs %d/%g/%g",
						rq.N(), rq.Mean(), rq.Max(), gq.N(), gq.Mean(), gq.Max())
				}
			})
		}
	}
}

// TestDepth1DropWithFaultsMatchesFaultyCore extends the PR 2 bridge to
// degraded mode: with depth-1 FIFOs and Drop, the faulted queueing
// pipeline must reproduce the faulted circuit-switched engine's grant
// decisions batch for batch (time-shifted by the pipeline fill).
func TestDepth1DropWithFaultsMatchesFaultyCore(t *testing.T) {
	const batches = 50
	cfg := mustCfg(t, 16, 4, 4, 2)
	// Faults everywhere except the inputs (core counts dead-input
	// requests as blocked at stage 1; queuesim refuses them at the
	// source, so input faults are exactly the accounting the two engines
	// legitimately disagree on — covered by TestDeadInputsRefused).
	set := faults.Bernoulli(cfg, faults.WireFaults, 0.1, xrand.New(4))
	set.Switches = append(set.Switches,
		faults.SwitchID{Stage: 2, Switch: 3},
		faults.SwitchID{Stage: cfg.L + 1, Switch: 7},
	)
	m, err := faults.Compile(cfg, set)
	if err != nil {
		t.Fatal(err)
	}

	rng := xrand.New(99)
	gen := traffic.Uniform{Rate: 1, Rng: rng}
	stream := make([][]int, batches)
	for k := range stream {
		stream[k] = make([]int, cfg.Inputs())
		gen.GenerateInto(stream[k], cfg.Outputs())
	}

	ref, err := core.NewNetworkWithFaults(cfg, nil, m)
	if err != nil {
		t.Fatal(err)
	}
	outcomes := make([]core.Outcome, cfg.Inputs())
	refDelivered := make([]int, batches)
	refBlocked := make([]int64, cfg.Stages())
	var refTotal int64
	for k, dest := range stream {
		cs, err := ref.RouteCycleInto(dest, outcomes)
		if err != nil {
			t.Fatal(err)
		}
		refDelivered[k] = cs.Delivered
		refTotal += int64(cs.Delivered)
		for s, b := range cs.Blocked {
			refBlocked[s] += int64(b)
		}
	}

	q, err := New(cfg, Options{Depth: 1, Policy: Drop, Faults: m})
	if err != nil {
		t.Fatal(err)
	}
	gotDelivered := make([]int, batches+cfg.Stages())
	for k, dest := range stream {
		cs, err := q.Cycle(dest)
		if err != nil {
			t.Fatal(err)
		}
		gotDelivered[k] = cs.Delivered
	}
	idle := make([]int, cfg.Inputs())
	for i := range idle {
		idle[i] = NoRequest
	}
	for k := 0; k < cfg.Stages(); k++ {
		cs, err := q.Cycle(idle)
		if err != nil {
			t.Fatal(err)
		}
		gotDelivered[batches+k] = cs.Delivered
	}
	shift := cfg.Stages()
	for k := 0; k < batches; k++ {
		if gotDelivered[k+shift] != refDelivered[k] {
			t.Fatalf("batch %d: faulted queuesim delivered %d, faulted core %d",
				k, gotDelivered[k+shift], refDelivered[k])
		}
	}
	if tot := q.Totals(); tot.Delivered != refTotal {
		t.Fatalf("total bandwidth: queuesim %d, core %d", tot.Delivered, refTotal)
	}
	for s, b := range q.DroppedPerStage() {
		if b != refBlocked[s] {
			t.Fatalf("stage %d: queuesim dropped %d, core blocked %d", s+1, b, refBlocked[s])
		}
	}
	if q.Queued() != 0 {
		t.Fatalf("%d packets left after drain", q.Queued())
	}
}

// TestConservationWithFaults: the lifetime invariant
// Injected == Refused + Delivered + Dropped + Queued must survive every
// fault pattern, depth and policy.
func TestConservationWithFaults(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	sets := map[string]faults.Set{
		"interior": interiorFaults(cfg, 0.15, 8),
		"everything": func() faults.Set {
			s := faults.Bernoulli(cfg, faults.MixedFaults, 0.1, xrand.New(9))
			s.Switches = append(s.Switches, faults.SwitchID{Stage: 1, Switch: 0})
			s.Ports = append(s.Ports, faults.PortID{Stage: cfg.L + 1, Switch: 0, Bucket: 0, Wire: 0})
			return s
		}(),
	}
	for name, set := range sets {
		m, err := faults.Compile(cfg, set)
		if err != nil {
			t.Fatal(err)
		}
		for _, depth := range []int{0, 1, 4, Unbounded} {
			for _, policy := range []Policy{Backpressure, Drop} {
				t.Run(fmt.Sprintf("%s/depth=%d/%v", name, depth, policy), func(t *testing.T) {
					if depth == Unbounded && policy == Backpressure && name == "everything" {
						// Dead terminals park packets forever; unbounded
						// queues then grow without limit. Still conserving,
						// but keep the test fast.
						t.Skip("unbounded backpressure with dead outputs grows forever")
					}
					net, err := New(cfg, Options{Depth: depth, Policy: policy, Faults: m})
					if err != nil {
						t.Fatal(err)
					}
					gen := traffic.Uniform{Rate: 0.8, Rng: xrand.New(31)}
					dest := make([]int, cfg.Inputs())
					for cycle := 0; cycle < 80; cycle++ {
						gen.GenerateInto(dest, cfg.Outputs())
						if _, err := net.Cycle(dest); err != nil {
							t.Fatal(err)
						}
						tot := net.Totals()
						if got := tot.Refused + tot.Delivered + tot.Dropped + net.Queued(); got != tot.Injected {
							t.Fatalf("cycle %d: conservation broken: injected %d != refused %d + delivered %d + dropped %d + queued %d",
								cycle, tot.Injected, tot.Refused, tot.Delivered, tot.Dropped, net.Queued())
						}
					}
				})
			}
		}
	}
}

// TestFullyDeadStageQueueing: a fully dead middle stage delivers
// nothing and panics never; Drop eventually discards everything.
func TestFullyDeadStageQueueing(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	var set faults.Set
	for sw := 0; sw < cfg.SwitchesInStage(2); sw++ {
		set.Switches = append(set.Switches, faults.SwitchID{Stage: 2, Switch: sw})
	}
	m, err := faults.Compile(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []Policy{Backpressure, Drop} {
		t.Run(policy.String(), func(t *testing.T) {
			net, err := New(cfg, Options{Depth: 2, Policy: policy, Faults: m})
			if err != nil {
				t.Fatal(err)
			}
			gen := traffic.Uniform{Rate: 1, Rng: xrand.New(6)}
			dest := make([]int, cfg.Inputs())
			for cycle := 0; cycle < 40; cycle++ {
				gen.GenerateInto(dest, cfg.Outputs())
				cs, err := net.Cycle(dest)
				if err != nil {
					t.Fatal(err)
				}
				if cs.Delivered != 0 {
					t.Fatalf("delivered %d through a fully dead stage", cs.Delivered)
				}
			}
			tot := net.Totals()
			if tot.Delivered != 0 {
				t.Fatalf("lifetime delivered %d, want 0", tot.Delivered)
			}
			if policy == Drop && tot.Dropped == 0 {
				t.Fatal("drop policy never dropped anything at the dead stage")
			}
			if policy == Backpressure && tot.Refused == 0 {
				t.Fatal("backpressure never refused despite stage-1 queues jamming against the dead stage")
			}
		})
	}
}

// TestDeadInputsRefused: injections at severed inputs are refused at
// the source in every depth mode, and InputFree reports them dead.
func TestDeadInputsRefused(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	m, err := faults.Compile(cfg, faults.Set{Switches: []faults.SwitchID{{Stage: 1, Switch: 0}}})
	if err != nil {
		t.Fatal(err)
	}
	for _, depth := range []int{0, 2} {
		t.Run(fmt.Sprintf("depth=%d", depth), func(t *testing.T) {
			net, err := New(cfg, Options{Depth: depth, Policy: Drop, Faults: m})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < cfg.Inputs(); i++ {
				if free := net.InputFree(i); free != (i >= cfg.A) {
					t.Errorf("InputFree(%d) = %v, want %v", i, free, i >= cfg.A)
				}
			}
			dest := make([]int, cfg.Inputs())
			for i := range dest {
				dest[i] = i % cfg.Outputs()
			}
			cs, err := net.Cycle(dest)
			if err != nil {
				t.Fatal(err)
			}
			if cs.Injected != cfg.Inputs() || cs.Refused != cfg.A {
				t.Fatalf("injected %d refused %d, want %d injected, %d refused",
					cs.Injected, cs.Refused, cfg.Inputs(), cfg.A)
			}
		})
	}
}
