// Package queuesim is the buffered, packet-level counterpart of the
// circuit-switched cycle engine in internal/core. Where core's
// RouteCycle resolves a whole request batch in one memoryless network
// cycle (losers vanish, matching the paper's Section 3.2 model), this
// package gives every stage-input wire a FIFO: packets advance one
// stage per cycle, losers wait (or drop), and each packet carries its
// injection timestamp so the simulator measures what the closed forms
// cannot — queueing delay, tail latency and saturation throughput under
// temporally correlated load.
//
// The simulator is built from the same precomputed machinery as core:
// the interstage gamma permutations are the flat int32 tables of
// topology.InterstageTable, per-stage routing digits come from the same
// shift/mask decomposition, and head-of-line arbitration per switch
// uses the switchfab arbiter orders (the nil-factory default takes the
// fused priority fast path). All FIFO storage is ring buffers sized at
// construction, so the per-cycle advance is allocation-free in steady
// state for bounded depths (BenchmarkQueueCycle pins this at 0
// allocs/op).
//
// Depth semantics tie the family together:
//
//   - Depth >= 1: bounded per-wire FIFOs. A packet advances only onto an
//     output wire whose downstream FIFO has room (at most one packet per
//     wire per cycle); under Backpressure blocked packets wait at their
//     FIFO head, under Drop they are discarded.
//   - Depth == Unbounded: FIFOs grow without limit — the infinite
//     buffering idealization.
//   - Depth == 0: no interstage buffering at all. The network degenerates
//     to the unbuffered single-cycle engine (each offered packet
//     traverses every stage within one cycle via core.RouteCycleInto);
//     Backpressure then means a blocked packet is resubmitted from its
//     input next cycle — exactly the Section 4/5.1 closed-loop regime —
//     and Drop reproduces the memoryless Section 3.2 model packet for
//     packet.
//
// The depth-1 Drop configuration is the bridge between the two worlds:
// batches march through the pipeline in lockstep, one stage per cycle,
// without ever interacting, so its per-batch grant decisions — and
// therefore its bandwidth and per-stage blocking — are bit-identical to
// core's, just time-shifted by the pipeline fill. The equivalence test
// pins this.
package queuesim

import (
	"fmt"
	"math"

	"edn/internal/anatomy"
	"edn/internal/core"
	"edn/internal/faults"
	"edn/internal/probe"
	"edn/internal/ringbuf"
	"edn/internal/stats"
	"edn/internal/switchfab"
	"edn/internal/topology"
)

// NoRequest marks an idle input in an injection vector.
const NoRequest = core.NoRequest

// Unbounded selects per-wire FIFOs that grow without limit.
const Unbounded = ringbuf.Unbounded

// Policy selects what happens to a head-of-line packet that cannot
// advance this cycle (it lost arbitration, or every wire of its bucket
// leads to a full downstream FIFO).
type Policy int

const (
	// Backpressure retains blocked packets at the head of their FIFO to
	// retry next cycle — the lossless store-and-forward discipline.
	Backpressure Policy = iota
	// Drop discards blocked packets, the circuit-switched discipline of
	// the unbuffered engine.
	Drop
)

// String renders the policy for reports.
func (p Policy) String() string {
	switch p {
	case Backpressure:
		return "backpressure"
	case Drop:
		return "drop"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Options configures a queueing network.
type Options struct {
	// Depth is the per-wire FIFO depth: >= 1 bounded, Unbounded (-1) for
	// infinite buffers, 0 for the unbuffered single-cycle corner.
	Depth int
	// Policy is the blocked-packet discipline (default Backpressure).
	Policy Policy
	// Factory builds one arbiter per physical switch; nil selects the
	// paper's input-label priority rule via the fused fast path.
	Factory core.ArbiterFactory
	// LatencyBuckets and LatencyBucketWidth shape the latency histogram
	// (defaults: 1024 buckets of 1 cycle). Latencies beyond the last
	// bucket are still counted exactly in mean and max but degrade the
	// top quantiles toward the maximum.
	LatencyBuckets     int
	LatencyBucketWidth float64
	// Faults disables network components (see internal/faults): packets
	// only advance onto live wires, injections at dead inputs are
	// refused at the source, and a head-of-line packet whose bucket has
	// no live wire left waits (Backpressure) or dies (Drop). A packet
	// addressed to a dead output terminal can never retire while the
	// fault stands — under Backpressure it parks at the crossbar head,
	// counted every cycle in CycleStats.ParkedOnDead, so degraded-mode
	// measurements normally pair immutable faults with Drop. Nil or
	// empty means fully live and changes nothing. UpdateFaults swaps the
	// masks of a running network in place, which is how time-varying
	// fault processes (internal/lifecycle) drive this engine.
	Faults *faults.Masks
	// Tables, when non-nil, supplies prebuilt interstage routing tables
	// for the same Config: the network shares the read-only slices
	// instead of materializing its own, skipping the dominant O(wires)
	// build cost. Must have been built for the identical Config;
	// results are bit-for-bit those of a fresh build. The serve-layer
	// geometry cache is the intended supplier.
	Tables *topology.Tables
}

func (o Options) withDefaults() Options {
	if o.LatencyBuckets <= 0 {
		o.LatencyBuckets = 1024
	}
	if o.LatencyBucketWidth <= 0 {
		o.LatencyBucketWidth = 1
	}
	return o
}

// Totals are lifetime packet counters. They never reset, so the
// conservation invariant
//
//	Injected == Refused + Delivered + Dropped + Stranded + Queued()
//
// holds after every cycle and after every UpdateFaults — the property
// tests in queuesim_test.go and update_test.go assert it across
// geometries, depths, policies and fault timelines.
type Totals struct {
	Injected  int64 // packets offered at the inputs
	Refused   int64 // injections rejected at the input (FIFO or slot full)
	Delivered int64 // packets retired at their destination terminal
	Dropped   int64 // packets discarded mid-network (Policy Drop only)
	// Stranded counts packets discarded by UpdateFaults because their
	// FIFO's wire died while they were queued on it (Policy Drop only;
	// under Backpressure such packets stay parked and are reported per
	// cycle in CycleStats.ParkedOnDead instead).
	Stranded int64
}

// CycleStats are the Totals deltas of a single Cycle call, plus the
// cycle's dead-component congestion observation.
type CycleStats struct {
	Injected  int
	Refused   int
	Delivered int
	Dropped   int
	// ParkedOnDead is the number of queued packets that could not
	// advance this cycle because a dead component pins them in place
	// (Backpressure only; under Drop they are discarded and counted in
	// Dropped or Stranded): head-of-line packets aimed at a dead output
	// terminal or a bucket with no live wire left, plus packets queued
	// on wires that died under them. It is an observation, not a flow —
	// the same parked packet is counted again every cycle it stays
	// parked — so conservation checks can assert on the parked
	// population directly instead of inferring it from a residue.
	// Parked packets are not lost: a later UpdateFaults that repairs the
	// component releases them.
	ParkedOnDead int
}

// Network is an instantiated queueing EDN. It is not safe for
// concurrent use; the sweep harness builds one per shard.
type Network struct {
	cfg    topology.Config
	opts   Options
	stages int
	inputs int

	// Pipelined state (Depth != 0). rings holds one FIFO per stage-input
	// wire across all boundaries: boundary s-1 (rings[base[s-1]:]) feeds
	// stage s; boundary 0 is the injection row.
	rings    []ringbuf.Ring
	base     []int     // base[i] = first ring of boundary i, i in [0, L]
	gammaTab [][]int32 // [hyperbar stage-1]; nil = identity interstage
	shift    []uint    // per hyperbar stage: right-shift to its digit
	maskB    uint32
	maskC    uint32

	// Fault availability (nil = fully live), swapped between cycles by
	// UpdateFaults; see Options.Faults. liveRows is the preallocated
	// backing store live points into when a mask is active. deadRing
	// (nil when every wire is live) marks rings whose feeding wire the
	// current mask disables: their queued packets are stranded and their
	// heads are skipped by arbitration. liveCap[s-1][sw*B+bucket] counts
	// the bucket's live wires under the current mask, so the advance
	// loop can tell "parked on a dead bucket" from "blocked by
	// contention" without rescanning the row.
	liveIn         []bool
	live           [][]bool // [stage-1] stage-local output label availability
	liveRows       [][]bool
	deadRing       []bool
	deadRingBuf    []bool
	liveCap        [][]int32
	strandedQueued int64 // packets parked in dead rings (Backpressure)

	factory      core.ArbiterFactory
	fastPriority bool
	arbiters     [][]switchfab.Arbiter // [stage-1][switch], lazily built
	used         []int32               // per-bucket wires consumed this cycle
	digits       []int                 // arbiter-path digit gather
	order        []int                 // arbiter-path arbitration order

	// Unbuffered state (Depth == 0): one in-flight slot per input over a
	// wrapped core.Network. s1cap mirrors the pipelined liveCap for
	// stage 1 only — the one stage an unbuffered packet cannot route
	// around, since its switch is fixed by the input and its bucket by
	// the destination — so the parked-on-dead census can classify
	// permanently pinned resubmissions; s1shift extracts the stage-1
	// routing digit.
	net     *core.Network
	pending []int   // destination held by input i, or NoRequest
	pendAt  []int64 // injection cycle of the pending packet
	destBuf []int
	outBuf  []core.Outcome
	s1cap   []int32
	s1shift uint

	now       int64
	queued    int64
	totals    Totals
	perStage  []int64 // drops per stage (Policy Drop)
	lat       *stats.Histogram
	idleBatch []int // all-NoRequest injection vector for Drain

	// deliver, when set, observes every retirement (see SetDeliveryHook).
	deliver func(dest int, inject int64)

	// probe, when set, flight-records sampled packets and per-stage heat
	// (see SetProbe). pendTrace holds the unbuffered corner's per-input
	// trace record handles (-1 = untraced), mirroring pending.
	probe     *probe.Probe
	pendTrace []int32

	// anat, when set, mirrors every FIFO and attributes each in-flight
	// packet's cycles to wait/block/service (see SetAnatomy). The
	// anatBlock* fields carry advancePacket's failure diagnosis out to
	// the caller: the relative downstream ring that was full, or the
	// contended crossbar terminal; anatTo carries the relative ring a
	// successful hyperbar advance landed in.
	anat          *anatomy.Collector
	anatTo        int
	anatBlockDown int
	anatBlockTerm bool
}

// New builds a queueing network over cfg. See Options for the depth and
// policy semantics.
func New(cfg topology.Config, opts Options) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.Depth < Unbounded {
		return nil, fmt.Errorf("queuesim: depth %d invalid (want >= 1, 0, or Unbounded)", opts.Depth)
	}
	switch opts.Policy {
	case Backpressure, Drop:
	default:
		return nil, fmt.Errorf("queuesim: unknown policy %d", int(opts.Policy))
	}
	if opts.Tables != nil && opts.Tables.Config() != cfg {
		return nil, fmt.Errorf("queuesim: tables built for %v, network is %v", opts.Tables.Config(), cfg)
	}
	opts = opts.withDefaults()
	n := &Network{
		cfg:          cfg,
		opts:         opts,
		stages:       cfg.Stages(),
		inputs:       cfg.Inputs(),
		factory:      opts.Factory,
		fastPriority: opts.Factory == nil,
		perStage:     make([]int64, cfg.Stages()),
		lat:          stats.NewHistogram(opts.LatencyBuckets, opts.LatencyBucketWidth),
	}
	if n.factory == nil {
		n.factory = core.PriorityArbiters
	}
	n.liveRows = make([][]bool, n.stages)

	if opts.Depth == 0 {
		// The unbuffered corner delegates routing to the core engine
		// (masks applied below via the shared swap path; dead-input
		// refusal happens here at the source, so core's own input
		// masking never fires).
		var net *core.Network
		var err error
		if opts.Tables != nil {
			net, err = core.NewNetworkFromTables(opts.Tables, opts.Factory, nil)
		} else {
			net, err = core.NewNetwork(cfg, opts.Factory)
		}
		if err != nil {
			return nil, err
		}
		n.net = net
		n.pending = make([]int, n.inputs)
		for i := range n.pending {
			n.pending[i] = NoRequest
		}
		n.pendAt = make([]int64, n.inputs)
		n.destBuf = make([]int, n.inputs)
		n.outBuf = make([]core.Outcome, n.inputs)
		n.s1cap = make([]int32, cfg.SwitchesInStage(1)*cfg.B)
		n.s1shift = uint(topology.Log2(cfg.C) + (cfg.L-1)*topology.Log2(cfg.B))
		n.maskB = uint32(cfg.B - 1)
		if err := n.UpdateFaults(opts.Faults); err != nil {
			return nil, err
		}
		return n, nil
	}

	// Boundary wire counts; reuse core's int32 cap for the gamma tables.
	total := 0
	n.base = make([]int, cfg.L+1)
	for i := 0; i <= cfg.L; i++ {
		n.base[i] = total
		w := cfg.WiresAfterStage(i)
		if w > math.MaxInt32 {
			return nil, fmt.Errorf("queuesim: %v has %d wires in one stage, beyond the simulable limit", cfg, w)
		}
		total += w
	}
	n.rings = make([]ringbuf.Ring, total)
	if opts.Depth >= 1 {
		// One flat backing array, power-of-two slots per ring, so the
		// steady state never allocates and neighbors share cache lines.
		slot := 1
		for slot < opts.Depth {
			slot <<= 1
		}
		backing := make([]uint64, total*slot)
		for i := range n.rings {
			n.rings[i].Buf = backing[i*slot : (i+1)*slot]
		}
	}
	n.gammaTab = make([][]int32, cfg.L)
	n.shift = make([]uint, cfg.L)
	logB, logC := topology.Log2(cfg.B), topology.Log2(cfg.C)
	for s := 1; s <= cfg.L; s++ {
		if opts.Tables != nil {
			n.gammaTab[s-1] = opts.Tables.Interstage(s)
		} else {
			n.gammaTab[s-1] = cfg.InterstageTable(s)
		}
		n.shift[s-1] = uint(logC + (cfg.L-s)*logB)
	}
	n.maskB = uint32(cfg.B - 1)
	n.maskC = uint32(cfg.C - 1)
	n.arbiters = make([][]switchfab.Arbiter, n.stages)
	for s := 1; s <= n.stages; s++ {
		n.arbiters[s-1] = make([]switchfab.Arbiter, cfg.SwitchesInStage(s))
	}
	width := cfg.A
	if cfg.C > width {
		width = cfg.C
	}
	buckets := cfg.B
	if cfg.C > buckets {
		buckets = cfg.C
	}
	n.used = make([]int32, buckets)
	n.digits = make([]int, width)
	n.order = make([]int, width)
	n.deadRingBuf = make([]bool, total)
	n.liveCap = make([][]int32, cfg.L)
	for s := 1; s <= cfg.L; s++ {
		n.liveCap[s-1] = make([]int32, cfg.SwitchesInStage(s)*cfg.B)
	}
	if err := n.UpdateFaults(opts.Faults); err != nil {
		return nil, err
	}
	return n, nil
}

// UpdateFaults swaps the network's availability masks in place: packets
// keep flowing through the same rings, tables and arbiter state while
// the set of live components changes under them — the epoch primitive
// of an availability-over-time simulation. A nil or empty mask restores
// the unmasked fast paths bit-for-bit. The swap allocates nothing.
//
// Packets already queued on a wire the new mask disables are stranded
// and handled by policy: under Drop they are discarded immediately and
// counted in Totals.Stranded; under Backpressure they stay parked in
// place — skipped by arbitration, reported each cycle via
// CycleStats.ParkedOnDead — and resume unharmed if a later update
// repairs the wire. Masks must have been compiled for this network's
// configuration; on error the previous masks remain in effect. Not
// safe to call concurrently with Cycle.
func (n *Network) UpdateFaults(m *faults.Masks) error {
	if m.Empty() {
		n.liveIn, n.live = nil, nil
		if n.opts.Depth == 0 {
			return n.net.UpdateFaults(m)
		}
		// Every wire is live again: parked packets resume next cycle.
		n.deadRing = nil
		n.strandedQueued = 0
		return nil
	}
	if got := m.Config(); got != n.cfg {
		return fmt.Errorf("queuesim: masks compiled for %v, network is %v", got, n.cfg)
	}
	for s := 1; s <= n.stages; s++ {
		n.liveRows[s-1] = m.LiveStageOutputs(s)
	}
	n.liveIn = m.LiveInputs()
	n.live = n.liveRows
	if n.opts.Depth == 0 {
		n.refreshS1Cap()
		return n.net.UpdateFaults(m)
	}
	n.refreshDeadRings()
	return nil
}

// refreshS1Cap recomputes the unbuffered corner's stage-1 bucket
// live-wire counts from the current mask.
func (n *Network) refreshS1Cap() {
	c := n.cfg.C
	row := n.live[0]
	for b := range n.s1cap {
		if row == nil {
			n.s1cap[b] = int32(c)
			continue
		}
		liveCnt := int32(0)
		for k := 0; k < c; k++ {
			if row[b*c+k] {
				liveCnt++
			}
		}
		n.s1cap[b] = liveCnt
	}
}

// refreshDeadRings recomputes the ring-level view of the current masks:
// which FIFOs sit on dead wires (the per-stage rows fold a wire's own
// death, its switch port and its downstream switch into one bit, and
// the ring is the buffer attached to that wire), and how many live
// wires each bucket retains. Packets found queued in a dead ring are
// stranded per policy. O(wires) per mask swap, no allocations.
func (n *Network) refreshDeadRings() {
	for i := range n.deadRingBuf {
		n.deadRingBuf[i] = false
	}
	any := false
	if n.liveIn != nil {
		for w, ok := range n.liveIn {
			if !ok {
				n.deadRingBuf[w] = true
				any = true
			}
		}
	}
	cfg := n.cfg
	c := cfg.C
	for s := 1; s <= cfg.L; s++ {
		row := n.live[s-1]
		caps := n.liveCap[s-1]
		if row == nil {
			for i := range caps {
				caps[i] = int32(c)
			}
			continue
		}
		tab := n.gammaTab[s-1]
		base := n.base[s]
		for b := range caps {
			liveCnt := int32(0)
			for k := 0; k < c; k++ {
				o := b*c + k
				if row[o] {
					liveCnt++
					continue
				}
				down := o
				if tab != nil {
					down = int(tab[o])
				}
				n.deadRingBuf[base+down] = true
				any = true
			}
			caps[b] = liveCnt
		}
	}
	n.strandedQueued = 0
	if !any {
		n.deadRing = nil
		return
	}
	n.deadRing = n.deadRingBuf
	drop := n.opts.Policy == Drop
	for i := range n.rings {
		if !n.deadRing[i] {
			continue
		}
		r := &n.rings[i]
		if r.N == 0 {
			continue
		}
		stranded := int64(r.N)
		if drop {
			for r.N > 0 {
				pkt := r.Pop()
				if n.probe != nil && pkt&ringbuf.TraceBit != 0 {
					n.probe.Close(pkt, n.ringStage(i), probe.EvStrand, n.now)
				}
				if n.anat != nil {
					n.anat.Strand(i, n.now)
				}
			}
			n.queued -= stranded
			n.totals.Stranded += stranded
		} else {
			n.strandedQueued += stranded
			if n.probe != nil {
				for k := int32(0); k < r.N; k++ {
					pkt := r.Buf[(int(r.Head)+int(k))&(len(r.Buf)-1)]
					if pkt&ringbuf.TraceBit != 0 {
						n.probe.Hop(pkt, n.ringStage(i), probe.EvPark, n.now)
					}
				}
			}
		}
	}
}

// Config returns the network's configuration.
func (n *Network) Config() topology.Config { return n.cfg }

// Depth returns the configured FIFO depth.
func (n *Network) Depth() int { return n.opts.Depth }

// Policy returns the configured blocked-packet discipline.
func (n *Network) Policy() Policy { return n.opts.Policy }

// Now returns the number of cycles simulated so far.
func (n *Network) Now() int64 { return n.now }

// Queued returns the number of packets currently inside the network.
func (n *Network) Queued() int64 { return n.queued }

// Totals returns the lifetime packet counters.
func (n *Network) Totals() Totals { return n.totals }

// DroppedPerStage returns a copy of the per-stage drop counters
// (1-based stage s at index s-1; all zeros under Backpressure).
func (n *Network) DroppedPerStage() []int64 {
	return append([]int64(nil), n.perStage...)
}

// Latency returns the live delivery-latency histogram. Latency is
// measured in cycles from injection to retirement at the destination
// terminal: the pipelined network's floor is Stages() (one hop per
// cycle); the unbuffered corner's floor is 1 (whole-network transit in
// the injection cycle). The histogram keeps accumulating as the network
// runs; ResetLatency starts a fresh measurement window.
func (n *Network) Latency() *stats.Histogram { return n.lat }

// ResetLatency clears the latency histogram — typically called after
// warmup so measured quantiles exclude the fill transient. Queue state
// and lifetime totals are unaffected.
func (n *Network) ResetLatency() { n.lat.Reset() }

// SetDeliveryHook installs fn to be called once per retired packet,
// with the packet's destination terminal and its injection cycle
// truncated to the 32 bits the in-flight word carries (compare against
// int64(uint32(cycle))). The hook fires inside Cycle after the
// delivery is counted; it must not call back into the network. A nil
// fn removes the hook. Closed-loop drivers (internal/closedloop) use
// this to match deliveries to outstanding requests without adding any
// per-packet state; installing the hook once at construction keeps the
// steady-state advance allocation-free.
func (n *Network) SetDeliveryHook(fn func(dest int, inject int64)) { n.deliver = fn }

// ProbeMetrics names the per-stage heat metrics this engine reports,
// in the AddStage index order of the pm* constants.
var ProbeMetrics = []string{"occupancy", "hol_blocked", "parked", "dropped"}

const (
	pmOccupancy = iota
	pmHolBlocked
	pmParked
	pmDropped
)

// SetProbe attaches a flight-recorder probe (nil detaches). The probe
// observes without perturbing: every routing, arbitration and queueing
// decision is identical with or without it, and the nil check costs one
// predictable branch per site (BenchmarkProbeOff pins the nil path at
// 0 allocs/op). Heat rows are bound per stage; sampled packets carry
// ringbuf.TraceBit through the rings. Not safe to swap mid-cycle.
func (n *Network) SetProbe(p *probe.Probe) {
	n.probe = p
	if p == nil {
		return
	}
	p.Bind(n.stages, ProbeMetrics)
	if n.opts.Depth == 0 && n.pendTrace == nil {
		n.pendTrace = make([]int32, n.inputs)
	}
	for i := range n.pendTrace {
		n.pendTrace[i] = -1
	}
}

// SetAnatomy attaches a latency-anatomy collector (nil detaches),
// binding it to this network's ring geometry. Like the probe, the
// collector observes without perturbing — no routing, arbitration or
// queueing decision changes, and the detached path costs one branch
// per site (BenchmarkAnatomyOff pins it at 0 allocs/op). Not safe to
// swap mid-cycle.
func (n *Network) SetAnatomy(a *anatomy.Collector) {
	n.anat = a
	if a == nil {
		return
	}
	outputs := n.cfg.Outputs()
	if n.opts.Depth == 0 {
		a.Bind(anatomy.Layout{Stages: n.stages, Inputs: n.inputs, Outputs: outputs})
		return
	}
	lay := anatomy.Layout{
		Stages: n.stages, Inputs: n.inputs, Outputs: outputs,
		Rings:      len(n.rings),
		RingStage:  make([]int32, len(n.rings)),
		RingSwitch: make([]int32, len(n.rings)),
		TermSwitch: make([]int32, outputs),
	}
	for i := range n.rings {
		s := n.ringStage(i)
		width := n.cfg.A
		if s == n.stages {
			width = n.cfg.C
		}
		lay.RingStage[i] = int32(s)
		lay.RingSwitch[i] = int32((i - n.base[s-1]) / width)
	}
	for t := 0; t < outputs; t++ {
		lay.TermSwitch[t] = int32(t / n.cfg.C)
	}
	a.Bind(lay)
}

// ringStage returns the 1-based stage fed by ring i.
func (n *Network) ringStage(i int) int {
	s := 1
	for s < len(n.base) && i >= n.base[s] {
		s++
	}
	return s
}

// recordHeat folds this cycle's occupancy census into the probe and
// closes the heat cycle. Only called with a probe attached; the scan is
// O(wires), a cost the attached probe accepts and the nil path never
// pays.
func (n *Network) recordHeat() {
	if n.opts.Depth == 0 {
		n.probe.AddStage(pmOccupancy, 0, float64(n.queued))
	} else {
		for s := 1; s <= n.stages; s++ {
			lo := n.base[s-1]
			hi := len(n.rings)
			if s < len(n.base) {
				hi = n.base[s]
			}
			occ := int64(0)
			for i := lo; i < hi; i++ {
				occ += int64(n.rings[i].N)
			}
			n.probe.AddStage(pmOccupancy, s-1, float64(occ))
		}
	}
	n.probe.EndCycle()
}

// InputFree reports whether input i can accept an injection this cycle:
// its stage-1 FIFO has room (pipelined) or its in-flight slot is empty
// (unbuffered). A dead input is never free. Closed-loop drivers poll it
// to offer exactly when the network can accept.
func (n *Network) InputFree(i int) bool {
	if n.liveIn != nil && !n.liveIn[i] {
		return false
	}
	if n.opts.Depth == 0 {
		return n.pending[i] == NoRequest
	}
	return n.rings[i].HasSpace(n.opts.Depth)
}

// Cycle advances the network by one cycle and then injects dest:
// dest[i] is the destination terminal for a new packet entering input
// i, or NoRequest. Stages advance downstream-first, so a buffer slot
// freed this cycle is usable by the upstream stage in the same cycle
// and packets sustain one hop per cycle at full throughput. Injections
// that find their input full are counted as Refused and lost (an open
// loop drops at the source; closed-loop drivers use InputFree to offer
// only what fits).
func (n *Network) Cycle(dest []int) (CycleStats, error) {
	if len(dest) != n.inputs {
		return CycleStats{}, fmt.Errorf("queuesim: %v got %d injections, want %d inputs", n.cfg, len(dest), n.inputs)
	}
	// Validate the whole injection vector before touching any state: a
	// mid-cycle abort would leave the lifetime Totals out of step with
	// the queue contents and break the conservation invariant forever.
	outputs := n.cfg.Outputs()
	for i, d := range dest {
		if d != NoRequest && (d < 0 || d >= outputs) {
			return CycleStats{}, fmt.Errorf("queuesim: input %d requests output %d out of range [0,%d)", i, d, outputs)
		}
	}
	n.now++
	var cs CycleStats
	if n.opts.Depth == 0 {
		if err := n.cycleUnbuffered(dest, &cs); err != nil {
			return CycleStats{}, err
		}
	} else {
		for s := n.stages; s >= 1; s-- {
			n.advanceStage(s, &cs)
		}
		if n.strandedQueued != 0 {
			// Packets parked in dead rings never reach arbitration; they
			// still count as parked-on-dead every cycle they wait.
			cs.ParkedOnDead += int(n.strandedQueued)
		}
		depth := n.opts.Depth
		for i, d := range dest {
			if d == NoRequest {
				continue
			}
			cs.Injected++
			if n.liveIn != nil && !n.liveIn[i] {
				cs.Refused++ // severed input wire: refused at the source
				continue
			}
			r := &n.rings[i]
			if !r.HasSpace(depth) {
				cs.Refused++
				continue
			}
			pkt := ringbuf.Pack(d, n.now)
			if n.probe != nil {
				pkt = n.probe.TagInject(i, pkt, n.now)
			}
			r.Push(pkt)
			n.queued++
			if n.anat != nil {
				n.anat.Inject(i, i, d, n.now)
			}
		}
		if n.anat != nil {
			n.anat.EndCycle(n.now)
		}
	}
	if n.probe != nil {
		n.recordHeat()
	}
	n.totals.Injected += int64(cs.Injected)
	n.totals.Refused += int64(cs.Refused)
	n.totals.Delivered += int64(cs.Delivered)
	n.totals.Dropped += int64(cs.Dropped)
	return cs, nil
}

// Drain runs idle cycles (no injections) until the network empties,
// returning how many cycles it took. It fails if the network still
// holds packets after maxCycles — under Backpressure with bounded
// depth the network always drains, so hitting the cap indicates a
// deadlocked caller expectation, not a simulator state.
func (n *Network) Drain(maxCycles int) (int, error) {
	if n.idleBatch == nil {
		n.idleBatch = make([]int, n.inputs)
		for i := range n.idleBatch {
			n.idleBatch[i] = NoRequest
		}
	}
	for c := 0; c < maxCycles; c++ {
		if n.queued == 0 {
			return c, nil
		}
		if _, err := n.Cycle(n.idleBatch); err != nil {
			return c, err
		}
	}
	if n.queued == 0 {
		return maxCycles, nil
	}
	return maxCycles, fmt.Errorf("queuesim: %d packets still queued after %d drain cycles", n.queued, maxCycles)
}

// retire records one delivery.
func (n *Network) retire(pkt uint64, cs *CycleStats) {
	n.lat.Add(ringbuf.Latency(pkt, n.now))
	n.queued--
	cs.Delivered++
	if n.probe != nil {
		n.probe.Close(pkt, n.stages, probe.EvDeliver, n.now)
	}
	if n.deliver != nil {
		n.deliver(ringbuf.Dest(pkt), int64(uint32(pkt>>32)))
	}
}

// advanceStage runs one cycle of stage s (1-based): head-of-line
// arbitration per switch over the boundary s-1 FIFOs, winners crossing
// the interstage table into the boundary s FIFOs (or retiring at the
// crossbar), losers retained or dropped per policy. It mirrors
// core.routeStage's structure — fused priority fast path, arbiter
// orders otherwise — with the FIFO heads standing in for the wire
// ownership vector.
func (n *Network) advanceStage(s int, cs *CycleStats) {
	cfg := n.cfg
	isCrossbar := s == n.stages
	width, buckets, capacity := cfg.A, cfg.B, cfg.C
	var tab []int32
	var shift uint
	var bc int
	if isCrossbar {
		// bc = c makes outBase + d the crossbar's stage-local output
		// label (the network output terminal), which is how the fault
		// row indexes it; the unmasked paths never read outBase here.
		width, buckets, capacity = cfg.C, cfg.C, 1
		bc = cfg.C
	} else {
		tab = n.gammaTab[s-1]
		shift = n.shift[s-1]
		bc = cfg.B * cfg.C
	}
	var live []bool
	if n.live != nil {
		live = n.live[s-1]
	}
	var liveCap []int32
	if live != nil && !isCrossbar {
		liveCap = n.liveCap[s-1]
	}
	inBase := n.base[s-1]
	var dead []bool // rings on dead wires: heads skipped, packets parked
	if n.deadRing != nil {
		dead = n.deadRing[inBase:]
	}
	var outRings []ringbuf.Ring
	if !isCrossbar {
		outRings = n.rings[n.base[s]:]
	}
	nsw := cfg.SwitchesInStage(s)
	depth := n.opts.Depth
	drop := n.opts.Policy == Drop
	used := n.used[:buckets]

	if n.fastPriority {
		// Priority arbitration considers inputs in natural wire order, so
		// gather/arbitrate/advance fuse into one pass per switch.
		for sw := 0; sw < nsw; sw++ {
			swIn := inBase + sw*width
			for i := range used {
				used[i] = 0
			}
			for p := 0; p < width; p++ {
				r := &n.rings[swIn+p]
				if r.N == 0 {
					continue
				}
				if dead != nil && dead[sw*width+p] {
					continue // parked on a dead wire (Drop strands at swap time)
				}
				pkt := r.Peek()
				var d int
				if isCrossbar {
					d = int(uint32(pkt) & n.maskC)
				} else {
					d = int((uint32(pkt) >> shift) & n.maskB)
				}
				if !n.advancePacket(r, pkt, d, sw*bc, capacity, isCrossbar, depth, tab, outRings, live, cs) {
					switch {
					case drop:
						r.Pop()
						n.queued--
						cs.Dropped++
						n.perStage[s-1]++
						if n.probe != nil {
							n.probe.AddStage(pmDropped, s-1, 1)
							n.probe.Close(pkt, s, probe.EvDrop, n.now)
						}
						if n.anat != nil {
							n.anat.Drop(swIn+p, n.anatBlocker(s, sw*bc, d), n.now)
						}
					case headDeadBlocked(sw, d, isCrossbar, cfg, live, liveCap):
						cs.ParkedOnDead++
						if n.probe != nil {
							n.probe.AddStage(pmParked, s-1, 1)
							n.probe.Hop(pkt, s, probe.EvPark, n.now)
						}
						if n.anat != nil {
							n.anat.Park(swIn+p, n.now)
						}
					default:
						if n.probe != nil {
							n.probe.AddStage(pmHolBlocked, s-1, 1)
							n.probe.Hop(pkt, s, probe.EvBlock, n.now)
						}
						if n.anat != nil {
							n.anat.Block(swIn+p, n.anatBlocker(s, sw*bc, d), n.now)
						}
					}
				} else {
					if n.probe != nil && !isCrossbar {
						n.probe.Hop(pkt, s, probe.EvTraverse, n.now)
					}
					if n.anat != nil {
						if isCrossbar {
							n.anat.Deliver(swIn+p, n.now)
						} else {
							n.anat.Advance(swIn+p, n.base[s]+n.anatTo, n.now)
						}
					}
				}
			}
		}
		return
	}

	// General-arbiter path: gather each switch's head digits, obtain the
	// arbitration order (idle switches never consult their arbiter, so
	// stateful arbiters advance exactly as in core), then advance in
	// order.
	digits := n.digits[:width]
	for sw := 0; sw < nsw; sw++ {
		swIn := inBase + sw*width
		busy := false
		for p := 0; p < width; p++ {
			r := &n.rings[swIn+p]
			if r.N == 0 || (dead != nil && dead[sw*width+p]) {
				digits[p] = switchfab.Idle
				continue
			}
			busy = true
			pkt := r.Peek()
			if isCrossbar {
				digits[p] = int(uint32(pkt) & n.maskC)
			} else {
				digits[p] = int((uint32(pkt) >> shift) & n.maskB)
			}
		}
		if !busy {
			continue
		}
		var order []int // nil = natural order
		switch a := n.arbiter(s, sw).(type) {
		case switchfab.PriorityArbiter:
		case switchfab.InPlaceArbiter:
			order = n.order[:width]
			a.OrderInto(order)
		default:
			order = a.Order(width)
		}
		for i := range used {
			used[i] = 0
		}
		for idx := 0; idx < width; idx++ {
			p := idx
			if order != nil {
				p = order[idx]
			}
			d := digits[p]
			if d == switchfab.Idle {
				continue
			}
			r := &n.rings[swIn+p]
			pkt := r.Peek()
			if !n.advancePacket(r, pkt, d, sw*bc, capacity, isCrossbar, depth, tab, outRings, live, cs) {
				switch {
				case drop:
					r.Pop()
					n.queued--
					cs.Dropped++
					n.perStage[s-1]++
					if n.probe != nil {
						n.probe.AddStage(pmDropped, s-1, 1)
						n.probe.Close(pkt, s, probe.EvDrop, n.now)
					}
					if n.anat != nil {
						n.anat.Drop(swIn+p, n.anatBlocker(s, sw*bc, d), n.now)
					}
				case headDeadBlocked(sw, d, isCrossbar, cfg, live, liveCap):
					cs.ParkedOnDead++
					if n.probe != nil {
						n.probe.AddStage(pmParked, s-1, 1)
						n.probe.Hop(pkt, s, probe.EvPark, n.now)
					}
					if n.anat != nil {
						n.anat.Park(swIn+p, n.now)
					}
				default:
					if n.probe != nil {
						n.probe.AddStage(pmHolBlocked, s-1, 1)
						n.probe.Hop(pkt, s, probe.EvBlock, n.now)
					}
					if n.anat != nil {
						n.anat.Block(swIn+p, n.anatBlocker(s, sw*bc, d), n.now)
					}
				}
			} else {
				if n.probe != nil && !isCrossbar {
					n.probe.Hop(pkt, s, probe.EvTraverse, n.now)
				}
				if n.anat != nil {
					if isCrossbar {
						n.anat.Deliver(swIn+p, n.now)
					} else {
						n.anat.Advance(swIn+p, n.base[s]+n.anatTo, n.now)
					}
				}
			}
		}
	}
}

// headDeadBlocked classifies a failed head-of-line advance: true when
// the packet's target is dead under the current mask — the crossbar
// terminal itself, or a hyperbar bucket with zero live wires — rather
// than merely oversubscribed or backed up, so the packet is parked for
// as long as the mask stands.
func headDeadBlocked(sw, d int, isCrossbar bool, cfg topology.Config, live []bool, liveCap []int32) bool {
	if live == nil {
		return false
	}
	if isCrossbar {
		return !live[sw*cfg.C+d]
	}
	return liveCap[sw*cfg.B+d] == 0
}

// advancePacket tries to move the head packet of r (destination digit
// d) through its switch: at the crossbar it retires on output bucket d,
// at a hyperbar it takes the first *live* bucket-d wire whose
// downstream FIFO has room, crossing the interstage table tab (nil =
// identity) into the boundary FIFOs outRings. Each output wire carries
// at most one packet per cycle — used counts grants, wires skipped as
// full and dead wires alike, so every wire is considered at most once.
// Returns false if the packet cannot advance this cycle (a packet aimed
// at a dead output terminal, or at a fully dead bucket, never can).
func (n *Network) advancePacket(r *ringbuf.Ring, pkt uint64, d, outBase, capacity int, isCrossbar bool, depth int, tab []int32, outRings []ringbuf.Ring, live []bool, cs *CycleStats) bool {
	if n.anat != nil {
		n.anatBlockDown, n.anatBlockTerm = -1, false
	}
	if isCrossbar {
		if live != nil && !live[outBase+d] {
			return false
		}
		if n.used[d] != 0 {
			if n.anat != nil {
				n.anatBlockTerm = true
			}
			return false
		}
		n.used[d] = 1
		r.Pop()
		n.retire(pkt, cs)
		return true
	}
	for int(n.used[d]) < capacity {
		o := outBase + d*capacity + int(n.used[d])
		n.used[d]++
		if live != nil && !live[o] {
			continue // dead wire: permanently unusable, skip it
		}
		down := o
		if tab != nil {
			down = int(tab[o])
		}
		dr := &outRings[down]
		if dr.HasSpace(depth) {
			r.Pop()
			dr.Push(pkt)
			if n.anat != nil {
				n.anatTo = down
			}
			return true
		}
		// This wire leads to a full FIFO: it is consumed for the cycle;
		// try the bucket's next wire.
		if n.anat != nil && n.anatBlockDown < 0 {
			n.anatBlockDown = down
		}
	}
	return false
}

// anatBlocker resolves advancePacket's failure diagnosis into an
// anatomy node: the contended crossbar terminal, the first full
// downstream FIFO tried, or -1 when nothing downstream is to blame
// (every wire of the bucket was dead, or the head lost to a wire
// already consumed this cycle).
func (n *Network) anatBlocker(s, outBase, d int) int {
	if n.anatBlockTerm {
		return len(n.rings) + outBase + d
	}
	if n.anatBlockDown >= 0 {
		return n.base[s] + n.anatBlockDown
	}
	return -1
}

func (n *Network) arbiter(stage, sw int) switchfab.Arbiter {
	if n.arbiters[stage-1][sw] == nil {
		n.arbiters[stage-1][sw] = n.factory()
	}
	return n.arbiters[stage-1][sw]
}

// cycleUnbuffered is the Depth == 0 cycle: every input's in-flight
// packet (retained from a blocked attempt, or freshly injected) is
// offered to the core engine, which resolves the whole batch in one
// circuit-switched pass. Backpressure resubmits blocked packets from
// the input next cycle — the Section 4 / Section 5.1 closed-loop
// regime; Drop discards them, reproducing the memoryless engine.
// Destinations were validated by Cycle before any state changed.
func (n *Network) cycleUnbuffered(dest []int, cs *CycleStats) error {
	for i := range n.destBuf {
		if n.pending[i] != NoRequest {
			// Input busy: a retained packet resubmits; any new offer is
			// refused at the source.
			if dest[i] != NoRequest {
				cs.Injected++
				cs.Refused++
			}
			n.destBuf[i] = n.pending[i]
			continue
		}
		d := dest[i]
		if d == NoRequest {
			n.destBuf[i] = NoRequest
			continue
		}
		cs.Injected++
		if n.liveIn != nil && !n.liveIn[i] {
			cs.Refused++ // severed input wire: refused at the source
			n.destBuf[i] = NoRequest
			continue
		}
		n.pending[i] = d
		n.pendAt[i] = n.now
		n.queued++
		n.destBuf[i] = d
		if n.probe != nil {
			if rec := n.probe.SampleInject(i, d, n.now); rec >= 0 {
				n.pendTrace[i] = rec
				n.probe.HopRec(rec, 0, probe.EvInject, n.now)
			}
		}
		if n.anat != nil {
			n.anat.Inject0(i, i, d, n.now)
		}
	}
	if _, err := n.net.RouteCycleInto(n.destBuf, n.outBuf); err != nil {
		return err
	}
	drop := n.opts.Policy == Drop
	var termRow []bool
	if n.live != nil {
		termRow = n.live[n.stages-1]
	}
	for i := range n.outBuf {
		if n.pending[i] == NoRequest {
			continue
		}
		o := n.outBuf[i]
		switch {
		case o.Delivered():
			// A first-attempt delivery has latency 1: one whole-network
			// transit inside the injection cycle.
			n.lat.Add(float64(n.now-n.pendAt[i]) + 1)
			n.queued--
			cs.Delivered++
			if n.probe != nil {
				n.probe.CloseRec(n.pendTrace[i], n.stages, probe.EvDeliver, n.now)
				n.pendTrace[i] = -1
			}
			if n.anat != nil {
				n.anat.Deliver0(i, n.now)
			}
			if n.deliver != nil {
				n.deliver(n.pending[i], int64(uint32(n.pendAt[i])))
			}
			n.pending[i] = NoRequest
		case drop:
			n.queued--
			cs.Dropped++
			n.perStage[o.BlockedStage-1]++
			if n.probe != nil {
				n.probe.AddStage(pmDropped, o.BlockedStage-1, 1)
				n.probe.CloseRec(n.pendTrace[i], o.BlockedStage, probe.EvDrop, n.now)
				n.pendTrace[i] = -1
			}
			if n.anat != nil {
				n.anat.Drop0(i, o.BlockedStage, n.now)
			}
			n.pending[i] = NoRequest
		default:
			// Retained for resubmission. A packet is parked — it will
			// resubmit forever while the mask stands — when a component
			// fixed by its (input, destination) pair is dead: its input
			// wire, its destination terminal, or its stage-1 bucket (the
			// switch is pinned by the input; beyond stage 1 the c-way
			// wire freedom redraws paths every cycle, so mid-network
			// dead buckets in the expanded family are contention, not
			// parking; the c=1 delta corner's longer pinned paths are
			// not classified).
			d := n.pending[i]
			parkStage := 0
			switch {
			case n.liveIn != nil && !n.liveIn[i]:
				cs.ParkedOnDead++
				parkStage = 1
			case termRow != nil && !termRow[d]:
				cs.ParkedOnDead++
				parkStage = n.stages
			case n.live != nil && n.live[0] != nil &&
				n.s1cap[(i/n.cfg.A)*n.cfg.B+int((uint32(d)>>n.s1shift)&n.maskB)] == 0:
				cs.ParkedOnDead++
				parkStage = 1
			}
			if n.probe != nil {
				if parkStage != 0 {
					n.probe.AddStage(pmParked, parkStage-1, 1)
					n.probe.HopRec(n.pendTrace[i], parkStage, probe.EvPark, n.now)
				} else {
					n.probe.AddStage(pmHolBlocked, o.BlockedStage-1, 1)
					n.probe.HopRec(n.pendTrace[i], o.BlockedStage, probe.EvBlock, n.now)
				}
			}
			if n.anat != nil {
				if parkStage != 0 {
					n.anat.Block0(i, parkStage, true, n.now)
				} else {
					n.anat.Block0(i, o.BlockedStage, false, n.now)
				}
			}
		}
	}
	if n.anat != nil {
		n.anat.EndCycle0()
	}
	return nil
}
