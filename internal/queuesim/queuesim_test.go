package queuesim

import (
	"fmt"
	"testing"

	"edn/internal/core"
	"edn/internal/switchfab"
	"edn/internal/topology"
	"edn/internal/traffic"
	"edn/internal/xrand"
)

func mustCfg(t testing.TB, a, b, c, l int) topology.Config {
	t.Helper()
	cfg, err := topology.New(a, b, c, l)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

var testGeometries = []struct{ a, b, c, l int }{
	{4, 4, 2, 2},   // small rectangular EDN
	{8, 2, 4, 2},   // wide buckets
	{16, 4, 4, 2},  // square EDN
	{4, 4, 1, 2},   // delta corner (single path)
	{64, 16, 4, 2}, // the MasPar geometry
}

func roundRobinFactory() switchfab.Arbiter { return &switchfab.RoundRobinArbiter{} }

// TestDepth1DropMatchesUnbufferedEngine pins the bridge between the two
// engines: with depth-1 FIFOs and the Drop policy, batches march
// through the pipeline in lockstep without interacting, so every grant
// decision — bandwidth, per-cycle delivered counts, per-stage blocking —
// must be bit-identical to core.RouteCycleInto on the same traffic
// stream, time-shifted by exactly the pipeline fill of Stages() cycles.
func TestDepth1DropMatchesUnbufferedEngine(t *testing.T) {
	const batches = 60
	for _, g := range testGeometries {
		cfg := mustCfg(t, g.a, g.b, g.c, g.l)
		for _, fac := range []struct {
			name    string
			factory core.ArbiterFactory
		}{
			{"priority", nil},
			{"roundrobin", roundRobinFactory},
		} {
			for _, pat := range []string{"uniform", "permutation"} {
				t.Run(fmt.Sprintf("%v/%s/%s", cfg, fac.name, pat), func(t *testing.T) {
					// Pre-generate the shared traffic stream.
					rng := xrand.New(99)
					var gen traffic.IntoGenerator
					if pat == "uniform" {
						gen = traffic.Uniform{Rate: 1, Rng: rng}
					} else {
						gen = &traffic.RandomPermutation{Rng: rng}
					}
					stream := make([][]int, batches)
					for k := range stream {
						stream[k] = make([]int, cfg.Inputs())
						gen.GenerateInto(stream[k], cfg.Outputs())
					}

					// Reference: the unbuffered engine, batch by batch.
					ref, err := core.NewNetwork(cfg, fac.factory)
					if err != nil {
						t.Fatal(err)
					}
					outcomes := make([]core.Outcome, cfg.Inputs())
					refDelivered := make([]int, batches)
					refBlocked := make([]int64, cfg.Stages())
					var refTotal int64
					for k, dest := range stream {
						cs, err := ref.RouteCycleInto(dest, outcomes)
						if err != nil {
							t.Fatal(err)
						}
						refDelivered[k] = cs.Delivered
						refTotal += int64(cs.Delivered)
						for s, b := range cs.Blocked {
							refBlocked[s] += int64(b)
						}
					}

					// Queueing engine: depth-1 Drop, same stream, plus the
					// pipeline-fill drain.
					q, err := New(cfg, Options{Depth: 1, Policy: Drop, Factory: fac.factory})
					if err != nil {
						t.Fatal(err)
					}
					gotDelivered := make([]int, batches+cfg.Stages())
					for k, dest := range stream {
						cs, err := q.Cycle(dest)
						if err != nil {
							t.Fatal(err)
						}
						if cs.Refused != 0 {
							t.Fatalf("cycle %d: depth-1 drop refused %d injections; stage-1 FIFOs should always clear", k, cs.Refused)
						}
						gotDelivered[k] = cs.Delivered
					}
					idle := make([]int, cfg.Inputs())
					for i := range idle {
						idle[i] = NoRequest
					}
					for k := 0; k < cfg.Stages(); k++ {
						cs, err := q.Cycle(idle)
						if err != nil {
							t.Fatal(err)
						}
						gotDelivered[batches+k] = cs.Delivered
					}

					// Batch k retires exactly Stages() calls after injection.
					shift := cfg.Stages()
					for k := 0; k < batches; k++ {
						if gotDelivered[k+shift] != refDelivered[k] {
							t.Fatalf("batch %d: queuesim delivered %d at call %d, core delivered %d",
								k, gotDelivered[k+shift], k+shift, refDelivered[k])
						}
					}
					for k := 0; k < shift; k++ {
						if gotDelivered[k] != 0 {
							t.Fatalf("call %d: delivered %d before the pipeline could fill", k, gotDelivered[k])
						}
					}
					tot := q.Totals()
					if tot.Delivered != refTotal {
						t.Fatalf("total bandwidth: queuesim %d, core %d", tot.Delivered, refTotal)
					}
					for s, b := range q.DroppedPerStage() {
						if b != refBlocked[s] {
							t.Fatalf("stage %d: queuesim dropped %d, core blocked %d", s+1, b, refBlocked[s])
						}
					}
					if q.Queued() != 0 {
						t.Fatalf("%d packets left after drain", q.Queued())
					}
				})
			}
		}
	}
}

// TestDepth0DropMatchesUnbufferedEngine checks the other degenerate
// corner: depth 0 with Drop is the memoryless engine itself, packet for
// packet within the same cycle.
func TestDepth0DropMatchesUnbufferedEngine(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	rng := xrand.New(5)
	gen := traffic.Uniform{Rate: 0.9, Rng: rng}
	ref, err := core.NewNetwork(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	q, err := New(cfg, Options{Depth: 0, Policy: Drop})
	if err != nil {
		t.Fatal(err)
	}
	dest := make([]int, cfg.Inputs())
	outcomes := make([]core.Outcome, cfg.Inputs())
	for cycle := 0; cycle < 50; cycle++ {
		gen.GenerateInto(dest, cfg.Outputs())
		cs, err := ref.RouteCycleInto(dest, outcomes)
		if err != nil {
			t.Fatal(err)
		}
		qs, err := q.Cycle(dest)
		if err != nil {
			t.Fatal(err)
		}
		if qs.Delivered != cs.Delivered || qs.Injected != cs.Offered || qs.Dropped != cs.BlockedTotal() {
			t.Fatalf("cycle %d: queuesim %+v vs core offered=%d delivered=%d blocked=%d",
				cycle, qs, cs.Offered, cs.Delivered, cs.BlockedTotal())
		}
		if q.Queued() != 0 {
			t.Fatalf("cycle %d: depth-0 drop retained %d packets", cycle, q.Queued())
		}
	}
}

// TestConservationInvariant is the property test of the issue: after
// every cycle, injected = refused + delivered + dropped + still-queued,
// across geometries, depths, policies and arbiter factories.
func TestConservationInvariant(t *testing.T) {
	depths := []int{0, 1, 3, Unbounded}
	policies := []Policy{Backpressure, Drop}
	factories := []struct {
		name    string
		factory core.ArbiterFactory
	}{
		{"priority", nil},
		{"roundrobin", roundRobinFactory},
	}
	for _, g := range testGeometries[:4] { // keep the sweep quick
		cfg := mustCfg(t, g.a, g.b, g.c, g.l)
		for _, depth := range depths {
			for _, pol := range policies {
				for _, fac := range factories {
					name := fmt.Sprintf("%v/depth=%d/%v/%s", cfg, depth, pol, fac.name)
					t.Run(name, func(t *testing.T) {
						q, err := New(cfg, Options{Depth: depth, Policy: pol, Factory: fac.factory})
						if err != nil {
							t.Fatal(err)
						}
						rng := xrand.New(uint64(depth*131 + int(pol)*17 + 3))
						gen := traffic.Uniform{Rate: 0.85, Rng: rng}
						dest := make([]int, cfg.Inputs())
						for cycle := 0; cycle < 120; cycle++ {
							gen.GenerateInto(dest, cfg.Outputs())
							if _, err := q.Cycle(dest); err != nil {
								t.Fatal(err)
							}
							tot := q.Totals()
							if tot.Injected != tot.Refused+tot.Delivered+tot.Dropped+q.Queued() {
								t.Fatalf("cycle %d: conservation broken: %+v queued=%d", cycle, tot, q.Queued())
							}
							if q.Queued() != q.countQueued() {
								t.Fatalf("cycle %d: occupancy counter %d != actual queue contents %d",
									cycle, q.Queued(), q.countQueued())
							}
						}
						tot := q.Totals()
						if pol == Backpressure && tot.Dropped != 0 {
							t.Fatalf("backpressure dropped %d packets", tot.Dropped)
						}
						if depth == Unbounded && tot.Refused != 0 {
							t.Fatalf("unbounded FIFOs refused %d injections", tot.Refused)
						}
						if tot.Delivered == 0 {
							t.Fatal("nothing delivered in 120 loaded cycles")
						}
					})
				}
			}
		}
	}
}

// countQueued recomputes the in-flight packet count from first
// principles, cross-checking the incremental occupancy counter.
func (n *Network) countQueued() int64 {
	var total int64
	if n.opts.Depth == 0 {
		for _, d := range n.pending {
			if d != NoRequest {
				total++
			}
		}
		return total
	}
	for i := range n.rings {
		total += int64(n.rings[i].N)
	}
	return total
}

// TestZeroLoadLatency pins the latency floors: one lone packet crosses
// the pipelined network in exactly Stages() cycles (one hop per cycle)
// and the unbuffered corner in exactly 1.
func TestZeroLoadLatency(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	for _, depth := range []int{1, 4, Unbounded} {
		q, err := New(cfg, Options{Depth: depth})
		if err != nil {
			t.Fatal(err)
		}
		dest := make([]int, cfg.Inputs())
		for i := range dest {
			dest[i] = NoRequest
		}
		dest[3] = 7
		if _, err := q.Cycle(dest); err != nil {
			t.Fatal(err)
		}
		if _, err := q.Drain(10 * cfg.Stages()); err != nil {
			t.Fatal(err)
		}
		h := q.Latency()
		if h.N() != 1 || h.Min() != float64(cfg.Stages()) || h.Max() != float64(cfg.Stages()) {
			t.Errorf("depth %d: lone-packet latency n=%d min=%g max=%g, want exactly %d",
				depth, h.N(), h.Min(), h.Max(), cfg.Stages())
		}
	}
	q, err := New(cfg, Options{Depth: 0})
	if err != nil {
		t.Fatal(err)
	}
	dest := make([]int, cfg.Inputs())
	for i := range dest {
		dest[i] = NoRequest
	}
	dest[3] = 7
	if _, err := q.Cycle(dest); err != nil {
		t.Fatal(err)
	}
	if h := q.Latency(); h.N() != 1 || h.Max() != 1 {
		t.Errorf("depth 0: lone-packet latency n=%d max=%g, want exactly 1", h.N(), h.Max())
	}
}

// TestBackpressureDeliversEverything: with lossless queues every
// injected-and-accepted packet must eventually retire — the crossbar
// stage always drains, so the network cannot deadlock.
func TestBackpressureDeliversEverything(t *testing.T) {
	for _, depth := range []int{1, 2, Unbounded} {
		cfg := mustCfg(t, 8, 2, 4, 2)
		q, err := New(cfg, Options{Depth: depth, Policy: Backpressure})
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(21)
		// A hot-spot load is the adversarial case: everything funnels
		// toward one output and must still drain.
		gen := traffic.HotSpot{Rate: 1, Fraction: 0.5, Hot: 3, Rng: rng}
		dest := make([]int, cfg.Inputs())
		for cycle := 0; cycle < 40; cycle++ {
			gen.GenerateInto(dest, cfg.Outputs())
			if _, err := q.Cycle(dest); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := q.Drain(100000); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		tot := q.Totals()
		if tot.Dropped != 0 {
			t.Fatalf("depth %d: backpressure dropped %d", depth, tot.Dropped)
		}
		if tot.Delivered != tot.Injected-tot.Refused {
			t.Fatalf("depth %d: delivered %d of %d accepted", depth, tot.Delivered, tot.Injected-tot.Refused)
		}
		if q.Latency().Min() < float64(cfg.Stages()) {
			t.Fatalf("depth %d: latency %g below the pipeline floor %d", depth, q.Latency().Min(), cfg.Stages())
		}
	}
}

// TestDeeperBuffersDeliverMore: under sustained overload, raising the
// FIFO depth must not reduce delivered bandwidth — the queues absorb
// collisions the circuit-switched engine would drop. This is the
// qualitative claim the subsystem exists to quantify.
func TestDeeperBuffersDeliverMore(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	delivered := make(map[int]int64)
	for _, depth := range []int{1, 4, 16} {
		q, err := New(cfg, Options{Depth: depth, Policy: Drop})
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(33)
		gen := traffic.Uniform{Rate: 1, Rng: rng}
		dest := make([]int, cfg.Inputs())
		for cycle := 0; cycle < 400; cycle++ {
			gen.GenerateInto(dest, cfg.Outputs())
			if _, err := q.Cycle(dest); err != nil {
				t.Fatal(err)
			}
		}
		delivered[depth] = q.Totals().Delivered
	}
	if delivered[4] < delivered[1] || delivered[16] < delivered[4] {
		t.Errorf("delivered bandwidth should not degrade with depth: %v", delivered)
	}
}

func TestOptionValidation(t *testing.T) {
	cfg := mustCfg(t, 4, 4, 2, 2)
	if _, err := New(cfg, Options{Depth: -2}); err == nil {
		t.Error("depth -2 should be rejected")
	}
	if _, err := New(cfg, Options{Policy: Policy(9)}); err == nil {
		t.Error("unknown policy should be rejected")
	}
	if _, err := New(topology.Config{A: 3}, Options{}); err == nil {
		t.Error("invalid topology should be rejected")
	}
	q, err := New(cfg, Options{Depth: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Cycle(make([]int, 3)); err == nil {
		t.Error("wrong injection vector length should be rejected")
	}
	bad := make([]int, cfg.Inputs())
	bad[0] = cfg.Outputs()
	if _, err := q.Cycle(bad); err == nil {
		t.Error("out-of-range destination should be rejected")
	}
	q0, err := New(cfg, Options{Depth: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q0.Cycle(bad); err == nil {
		t.Error("depth-0 out-of-range destination should be rejected")
	}
}

// TestRejectedCycleLeavesStateConsistent pins that a rejected injection
// vector is a no-op: validation happens before any state mutation, so
// the conservation invariant and the clock survive a caller error
// mid-run (a mid-cycle abort would desynchronize Totals from the queue
// contents forever).
func TestRejectedCycleLeavesStateConsistent(t *testing.T) {
	for _, depth := range []int{0, 2} {
		cfg := mustCfg(t, 16, 4, 4, 2)
		q, err := New(cfg, Options{Depth: depth})
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(19)
		gen := traffic.Uniform{Rate: 0.8, Rng: rng}
		dest := make([]int, cfg.Inputs())
		for cycle := 0; cycle < 10; cycle++ {
			gen.GenerateInto(dest, cfg.Outputs())
			if _, err := q.Cycle(dest); err != nil {
				t.Fatal(err)
			}
		}
		before, nowBefore, queuedBefore := q.Totals(), q.Now(), q.Queued()
		bad := make([]int, cfg.Inputs())
		bad[cfg.Inputs()-1] = -7 // valid entries first, invalid last
		if _, err := q.Cycle(bad); err == nil {
			t.Fatal("bad vector accepted")
		}
		if q.Totals() != before || q.Now() != nowBefore || q.Queued() != queuedBefore {
			t.Errorf("depth %d: rejected cycle mutated state: totals %+v->%+v now %d->%d queued %d->%d",
				depth, before, q.Totals(), nowBefore, q.Now(), queuedBefore, q.Queued())
		}
		// The network must keep working and conserving afterward.
		for cycle := 0; cycle < 10; cycle++ {
			gen.GenerateInto(dest, cfg.Outputs())
			if _, err := q.Cycle(dest); err != nil {
				t.Fatal(err)
			}
			tot := q.Totals()
			if tot.Injected != tot.Refused+tot.Delivered+tot.Dropped+q.Queued() {
				t.Fatalf("depth %d: conservation broken after rejected cycle: %+v queued=%d", depth, tot, q.Queued())
			}
		}
	}
}

// TestCycleAllocationFree pins the acceptance criterion at the unit
// level: a bounded-depth steady-state cycle performs zero allocations
// (the benchmark BenchmarkQueueCycle tracks the same property at 1K/4K
// ports with -benchmem).
func TestCycleAllocationFree(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	q, err := New(cfg, Options{Depth: 4, Policy: Backpressure})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(8)
	gen := traffic.Uniform{Rate: 0.9, Rng: rng}
	dest := make([]int, cfg.Inputs())
	// Warm into steady state.
	for cycle := 0; cycle < 50; cycle++ {
		gen.GenerateInto(dest, cfg.Outputs())
		if _, err := q.Cycle(dest); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		gen.GenerateInto(dest, cfg.Outputs())
		if _, err := q.Cycle(dest); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Cycle allocates %.1f objects/op, want 0", allocs)
	}
}

// TestRefusalAccounting: a bounded depth-1 backpressure network under
// full load must refuse injections (the stage-1 FIFOs stay occupied)
// and count them.
func TestRefusalAccounting(t *testing.T) {
	cfg := mustCfg(t, 8, 2, 4, 2)
	q, err := New(cfg, Options{Depth: 1, Policy: Backpressure})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(14)
	gen := traffic.Uniform{Rate: 1, Rng: rng}
	dest := make([]int, cfg.Inputs())
	for cycle := 0; cycle < 100; cycle++ {
		gen.GenerateInto(dest, cfg.Outputs())
		if _, err := q.Cycle(dest); err != nil {
			t.Fatal(err)
		}
	}
	tot := q.Totals()
	if tot.Refused == 0 {
		t.Error("full load against depth-1 backpressure should refuse some injections")
	}
	if tot.Injected != tot.Refused+tot.Delivered+tot.Dropped+q.Queued() {
		t.Errorf("conservation broken: %+v queued=%d", tot, q.Queued())
	}
}
