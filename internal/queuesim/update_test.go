package queuesim

import (
	"fmt"
	"testing"

	"edn/internal/faults"
	"edn/internal/topology"
	"edn/internal/xrand"
)

func updCfg(t testing.TB, a, b, c, l int) topology.Config {
	t.Helper()
	cfg, err := topology.New(a, b, c, l)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// updEpochMasks mirrors the core test's timeline: churn, a blast epoch
// and a mid-life full repair.
func updEpochMasks(t testing.TB, cfg topology.Config, mode faults.Mode, seed uint64, epochs int) []*faults.Masks {
	t.Helper()
	rng := xrand.New(seed)
	masks := make([]*faults.Masks, epochs)
	for e := range masks {
		var set faults.Set
		switch {
		case e == epochs/2:
			set = faults.Set{}
		default:
			set = faults.Bernoulli(cfg, mode, 0.05+0.1*rng.Float64(), rng)
		}
		m, err := faults.Compile(cfg, set)
		if err != nil {
			t.Fatal(err)
		}
		masks[e] = m
	}
	return masks
}

func checkConservation(t testing.TB, net *Network, where string) {
	t.Helper()
	tot := net.Totals()
	if got := tot.Refused + tot.Delivered + tot.Dropped + tot.Stranded + net.Queued(); got != tot.Injected {
		t.Fatalf("%s: conservation violated: injected %d != refused+delivered+dropped+stranded+queued %d (%+v queued=%d)",
			where, tot.Injected, got, tot, net.Queued())
	}
}

// TestUpdateFaultsMatchesRebuildAtDrainedBoundaries is the queueing
// half of the incremental-mask property: with the network drained at
// every epoch boundary (Drop policy: every packet either advances or
// dies each cycle, so draining always terminates), a network receiving
// UpdateFaults per epoch must match a freshly built NewNetworkWithFaults
// cycle for cycle — injections, refusals, deliveries, drops, queue
// depth and the epoch's latency distribution — across geometries,
// depths and the fused/arbitrated paths.
func TestUpdateFaultsMatchesRebuildAtDrainedBoundaries(t *testing.T) {
	geometries := []struct{ a, b, c, l int }{
		{4, 4, 2, 2}, {8, 2, 4, 2}, {4, 4, 1, 2},
	}
	const epochs, cyclesPerEpoch = 8, 15
	for _, g := range geometries {
		cfg := updCfg(t, g.a, g.b, g.c, g.l)
		masks := updEpochMasks(t, cfg, faults.MixedFaults, 0xbeef+uint64(g.a*g.c), epochs)
		for _, depth := range []int{1, 4} {
			t.Run(fmt.Sprintf("%v/depth%d", cfg, depth), func(t *testing.T) {
				inc, err := New(cfg, Options{Depth: depth, Policy: Drop})
				if err != nil {
					t.Fatal(err)
				}
				rng := xrand.New(55)
				dest := make([]int, cfg.Inputs())
				for e, m := range masks {
					if _, err := inc.Drain(1000); err != nil {
						t.Fatalf("epoch %d: %v", e, err)
					}
					if err := inc.UpdateFaults(m); err != nil {
						t.Fatal(err)
					}
					inc.ResetLatency()
					ref, err := New(cfg, Options{Depth: depth, Policy: Drop, Faults: m})
					if err != nil {
						t.Fatal(err)
					}
					for c := 0; c < cyclesPerEpoch; c++ {
						for i := range dest {
							if rng.Bool(0.85) {
								dest[i] = rng.Intn(cfg.Outputs())
							} else {
								dest[i] = NoRequest
							}
						}
						ics, err := inc.Cycle(dest)
						if err != nil {
							t.Fatal(err)
						}
						rcs, err := ref.Cycle(dest)
						if err != nil {
							t.Fatal(err)
						}
						if ics != rcs {
							t.Fatalf("epoch %d cycle %d: %+v vs rebuilt %+v", e, c, ics, rcs)
						}
						if inc.Queued() != ref.Queued() {
							t.Fatalf("epoch %d cycle %d: queued %d vs rebuilt %d", e, c, inc.Queued(), ref.Queued())
						}
						checkConservation(t, inc, fmt.Sprintf("epoch %d cycle %d", e, c))
					}
					ih, rh := inc.Latency(), ref.Latency()
					if ih.N() != rh.N() || ih.Quantile(0.5) != rh.Quantile(0.5) || ih.Quantile(0.99) != rh.Quantile(0.99) {
						t.Fatalf("epoch %d: latency diverged: n=%d/%d p50=%g/%g p99=%g/%g",
							e, ih.N(), rh.N(), ih.Quantile(0.5), rh.Quantile(0.5), ih.Quantile(0.99), rh.Quantile(0.99))
					}
				}
			})
		}
	}
}

// TestUpdateFaultsMatchesConstructionFromEmpty covers Backpressure and
// the unbuffered corner, where queue state outlives epochs by design
// and rebuild-per-epoch is only well-defined from the empty state: a
// virgin network receiving the mask via UpdateFaults must match one
// constructed with it directly, cycle for cycle.
func TestUpdateFaultsMatchesConstructionFromEmpty(t *testing.T) {
	cfg := updCfg(t, 8, 4, 2, 2)
	masks := updEpochMasks(t, cfg, faults.MixedFaults, 99, 6)
	configs := []struct {
		name   string
		depth  int
		policy Policy
	}{
		{"depth0-backpressure", 0, Backpressure},
		{"depth0-drop", 0, Drop},
		{"depth2-backpressure", 2, Backpressure},
		{"unbounded-backpressure", Unbounded, Backpressure},
	}
	for _, qc := range configs {
		t.Run(qc.name, func(t *testing.T) {
			for e, m := range masks {
				inc, err := New(cfg, Options{Depth: qc.depth, Policy: qc.policy})
				if err != nil {
					t.Fatal(err)
				}
				if err := inc.UpdateFaults(m); err != nil {
					t.Fatal(err)
				}
				ref, err := New(cfg, Options{Depth: qc.depth, Policy: qc.policy, Faults: m})
				if err != nil {
					t.Fatal(err)
				}
				rng := xrand.New(uint64(e)*31 + 7)
				dest := make([]int, cfg.Inputs())
				for c := 0; c < 25; c++ {
					for i := range dest {
						dest[i] = rng.Intn(cfg.Outputs())
					}
					ics, err := inc.Cycle(dest)
					if err != nil {
						t.Fatal(err)
					}
					rcs, err := ref.Cycle(dest)
					if err != nil {
						t.Fatal(err)
					}
					if ics != rcs {
						t.Fatalf("mask %d cycle %d: %+v vs constructed %+v", e, c, ics, rcs)
					}
					if inc.Queued() != ref.Queued() {
						t.Fatalf("mask %d cycle %d: queued %d vs %d", e, c, inc.Queued(), ref.Queued())
					}
					checkConservation(t, inc, fmt.Sprintf("mask %d cycle %d", e, c))
				}
			}
		})
	}
}

// TestUpdateFaultsStrandsUnderDrop pins the stranded accounting: kill
// every wire feeding the loaded network under Drop and the queued
// packets move to Totals.Stranded, conservation intact.
func TestUpdateFaultsStrandsUnderDrop(t *testing.T) {
	cfg := updCfg(t, 4, 4, 2, 2)
	net, err := New(cfg, Options{Depth: 4, Policy: Drop})
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(3)
	dest := make([]int, cfg.Inputs())
	for c := 0; c < 30; c++ {
		for i := range dest {
			dest[i] = rng.Intn(cfg.Outputs())
		}
		if _, err := net.Cycle(dest); err != nil {
			t.Fatal(err)
		}
	}
	queued := net.Queued()
	if queued == 0 {
		t.Fatal("network failed to accumulate queued packets")
	}
	// Kill every stage-1 switch: every input ring's wire dies.
	var set faults.Set
	for sw := 0; sw < cfg.SwitchesInStage(1); sw++ {
		set.Switches = append(set.Switches, faults.SwitchID{Stage: 1, Switch: sw})
	}
	m, err := faults.Compile(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.UpdateFaults(m); err != nil {
		t.Fatal(err)
	}
	tot := net.Totals()
	if tot.Stranded == 0 {
		t.Error("no packets stranded by killing every stage-1 switch")
	}
	if net.Queued() >= queued {
		t.Errorf("queued did not shrink: %d -> %d", queued, net.Queued())
	}
	checkConservation(t, net, "after stranding")
}

// TestParkedOnDeadAndRepair pins the Backpressure corner end to end: a
// packet aimed at a dead output terminal parks at the crossbar head and
// is counted in ParkedOnDead every cycle — the conservation check can
// assert on the parked population directly — and a repairing update
// releases it for delivery, nothing lost.
func TestParkedOnDeadAndRepair(t *testing.T) {
	cfg := updCfg(t, 4, 4, 2, 2)
	for _, depth := range []int{0, 2} {
		t.Run(fmt.Sprintf("depth%d", depth), func(t *testing.T) {
			net, err := New(cfg, Options{Depth: depth, Policy: Backpressure})
			if err != nil {
				t.Fatal(err)
			}
			const deadTerminal = 5
			m, err := faults.Compile(cfg, faults.Set{Ports: []faults.PortID{
				{Stage: cfg.L + 1, Switch: deadTerminal / cfg.C, Bucket: deadTerminal % cfg.C},
			}})
			if err != nil {
				t.Fatal(err)
			}
			if err := net.UpdateFaults(m); err != nil {
				t.Fatal(err)
			}
			// Input 0 sends one packet to the dead terminal; everyone else
			// idles.
			dest := make([]int, cfg.Inputs())
			for i := range dest {
				dest[i] = NoRequest
			}
			dest[0] = deadTerminal
			if _, err := net.Cycle(dest); err != nil {
				t.Fatal(err)
			}
			dest[0] = NoRequest
			var lastParked int
			for c := 0; c < 3*cfg.Stages(); c++ {
				cs, err := net.Cycle(dest)
				if err != nil {
					t.Fatal(err)
				}
				lastParked = cs.ParkedOnDead
			}
			if lastParked != 1 {
				t.Fatalf("steady parked-on-dead = %d, want 1", lastParked)
			}
			if net.Queued() != 1 || net.Totals().Delivered != 0 {
				t.Fatalf("parked packet leaked: queued=%d totals=%+v", net.Queued(), net.Totals())
			}
			checkConservation(t, net, "while parked")
			// Repair: the terminal comes back, the packet delivers, the
			// parked census returns to zero.
			empty, err := faults.Compile(cfg, faults.Set{})
			if err != nil {
				t.Fatal(err)
			}
			if err := net.UpdateFaults(empty); err != nil {
				t.Fatal(err)
			}
			for c := 0; c < 3*cfg.Stages() && net.Queued() > 0; c++ {
				cs, err := net.Cycle(dest)
				if err != nil {
					t.Fatal(err)
				}
				if cs.ParkedOnDead != 0 {
					t.Fatalf("parked after repair: %+v", cs)
				}
			}
			if tot := net.Totals(); tot.Delivered != 1 || net.Queued() != 0 {
				t.Fatalf("repair did not release the packet: %+v queued=%d", tot, net.Queued())
			}
		})
	}
}

// TestStrandedRingParksAndRepairs pins the dead-wire stranding under
// Backpressure: packets queued on a wire that dies under them are
// skipped by arbitration, counted parked every cycle, and resume after
// the repair with their injection timestamps intact (their measured
// latency includes the outage).
func TestStrandedRingParksAndRepairs(t *testing.T) {
	cfg := updCfg(t, 4, 4, 2, 2)
	net, err := New(cfg, Options{Depth: 4, Policy: Backpressure})
	if err != nil {
		t.Fatal(err)
	}
	// Load the network, then sever every network input wire: boundary-0
	// rings hold their packets through the outage.
	rng := xrand.New(9)
	dest := make([]int, cfg.Inputs())
	for c := 0; c < 5; c++ {
		for i := range dest {
			dest[i] = rng.Intn(cfg.Outputs())
		}
		if _, err := net.Cycle(dest); err != nil {
			t.Fatal(err)
		}
	}
	var set faults.Set
	for w := 0; w < cfg.Inputs(); w++ {
		set.Wires = append(set.Wires, faults.WireID{Boundary: 0, Wire: w})
	}
	m, err := faults.Compile(cfg, set)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.UpdateFaults(m); err != nil {
		t.Fatal(err)
	}
	if net.Totals().Stranded != 0 {
		t.Fatalf("Backpressure stranded packets were dropped: %+v", net.Totals())
	}
	// Drain everything downstream of the severed inputs; the parked
	// packets in the input rings remain.
	for i := range dest {
		dest[i] = NoRequest
	}
	for c := 0; c < 20; c++ {
		if _, err := net.Cycle(dest); err != nil {
			t.Fatal(err)
		}
	}
	parked := net.Queued()
	if parked == 0 {
		t.Fatal("no packets parked in the severed input rings")
	}
	cs, err := net.Cycle(dest)
	if err != nil {
		t.Fatal(err)
	}
	if int64(cs.ParkedOnDead) != parked {
		t.Fatalf("ParkedOnDead = %d, want the %d parked packets", cs.ParkedOnDead, parked)
	}
	checkConservation(t, net, "during outage")
	// Repair and run: every parked packet must deliver.
	empty, err := faults.Compile(cfg, faults.Set{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.UpdateFaults(empty); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Drain(1000); err != nil {
		t.Fatal(err)
	}
	tot := net.Totals()
	if tot.Delivered != tot.Injected-tot.Refused {
		t.Fatalf("packets lost across the outage: %+v", tot)
	}
}

// TestParkedOnDeadStageOneBucketUnbuffered pins the unbuffered corner
// the buffered engine classifies via liveCap: a packet whose stage-1
// bucket has no live wire left is pinned (the switch is fixed by its
// input, the bucket by its destination) and must count as parked every
// cycle, then deliver after the repair.
func TestParkedOnDeadStageOneBucketUnbuffered(t *testing.T) {
	cfg := updCfg(t, 4, 4, 2, 2)
	net, err := New(cfg, Options{Depth: 0, Policy: Backpressure})
	if err != nil {
		t.Fatal(err)
	}
	// Kill both wires of bucket 0 of stage-1 switch 0: input 0's route
	// toward any destination with first digit 0 is severed at stage 1.
	m, err := faults.Compile(cfg, faults.Set{Ports: []faults.PortID{
		{Stage: 1, Switch: 0, Bucket: 0, Wire: 0},
		{Stage: 1, Switch: 0, Bucket: 0, Wire: 1},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.UpdateFaults(m); err != nil {
		t.Fatal(err)
	}
	dest := make([]int, cfg.Inputs())
	for i := range dest {
		dest[i] = NoRequest
	}
	dest[0] = 0 // first routing digit 0 -> the dead bucket
	if _, err := net.Cycle(dest); err != nil {
		t.Fatal(err)
	}
	dest[0] = NoRequest
	for c := 0; c < 10; c++ {
		cs, err := net.Cycle(dest)
		if err != nil {
			t.Fatal(err)
		}
		if cs.ParkedOnDead != 1 {
			t.Fatalf("cycle %d: ParkedOnDead = %d, want 1 (pinned resubmission)", c, cs.ParkedOnDead)
		}
		if cs.Delivered != 0 {
			t.Fatalf("cycle %d: packet crossed a fully dead bucket", c)
		}
	}
	empty, err := faults.Compile(cfg, faults.Set{})
	if err != nil {
		t.Fatal(err)
	}
	if err := net.UpdateFaults(empty); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Drain(100); err != nil {
		t.Fatal(err)
	}
	if tot := net.Totals(); tot.Delivered != 1 {
		t.Fatalf("repair did not release the pinned packet: %+v", tot)
	}
}

// TestUpdateFaultsZeroAllocQueue pins the epoch hot path for the
// pipelined engine: swapping precompiled masks and advancing allocates
// nothing, for both policies.
func TestUpdateFaultsZeroAllocQueue(t *testing.T) {
	cfg := updCfg(t, 16, 4, 4, 2)
	m1 := faults.MustCompile(cfg, faults.Bernoulli(cfg, faults.WireFaults, 0.1, xrand.New(3)))
	m2 := faults.MustCompile(cfg, faults.Bernoulli(cfg, faults.WireFaults, 0.2, xrand.New(4)))
	empty := faults.MustCompile(cfg, faults.Set{})
	masks := []*faults.Masks{m1, m2, empty}
	for _, policy := range []Policy{Drop, Backpressure} {
		t.Run(policy.String(), func(t *testing.T) {
			net, err := New(cfg, Options{Depth: 4, Policy: policy})
			if err != nil {
				t.Fatal(err)
			}
			rng := xrand.New(5)
			dest := make([]int, cfg.Inputs())
			gen := func() {
				for i := range dest {
					dest[i] = rng.Intn(cfg.Outputs())
				}
			}
			for c := 0; c < 50; c++ { // reach ring steady state first
				gen()
				if _, err := net.Cycle(dest); err != nil {
					t.Fatal(err)
				}
			}
			i := 0
			allocs := testing.AllocsPerRun(100, func() {
				if err := net.UpdateFaults(masks[i%len(masks)]); err != nil {
					t.Fatal(err)
				}
				gen()
				if _, err := net.Cycle(dest); err != nil {
					t.Fatal(err)
				}
				i++
			})
			if allocs != 0 {
				t.Errorf("mask swap + cycle allocated %.1f times per epoch", allocs)
			}
		})
	}
}

// TestUpdateFaultsConfigMismatchQueue pins the error path.
func TestUpdateFaultsConfigMismatchQueue(t *testing.T) {
	cfg := updCfg(t, 4, 4, 2, 2)
	other := updCfg(t, 8, 2, 4, 2)
	for _, depth := range []int{0, 2} {
		net, err := New(cfg, Options{Depth: depth})
		if err != nil {
			t.Fatal(err)
		}
		wrong := faults.MustCompile(other, faults.Bernoulli(other, faults.WireFaults, 0.2, xrand.New(1)))
		if err := net.UpdateFaults(wrong); err == nil {
			t.Errorf("depth %d: masks for another config should be refused", depth)
		}
	}
}
