// Package ringbuf holds the per-wire FIFO primitive and the packed
// packet representation shared by the buffered packet-level engines
// (internal/queuesim for EDNs, internal/dilatedsim for dilated deltas).
// Both engines attach one Ring to every stage-input wire and advance
// packets one hop per cycle; keeping the storage layout and the packing
// in one place means "same measured packet" is true by construction
// when the two simulators are compared under identical traffic.
package ringbuf

// Unbounded selects rings that grow without limit when passed as the
// depth to HasSpace.
const Unbounded = -1

// Ring is one per-wire FIFO of packed packets. Buffers are power-of-two
// sized so indexing is a mask; bounded networks preallocate every
// buffer at construction (typically carving slots out of one flat
// backing array so neighbors share cache lines), unbounded ones grow by
// doubling on demand. The fields are exported so the owning engine can
// wire up preallocated backing storage; the hot-path accessors are the
// methods.
type Ring struct {
	Buf  []uint64
	Head int32
	N    int32
}

// Peek returns the head packet without removing it. The caller has
// already checked N > 0.
func (r *Ring) Peek() uint64 { return r.Buf[r.Head] }

// Pop removes and returns the head packet.
func (r *Ring) Pop() uint64 {
	p := r.Buf[r.Head]
	r.Head = (r.Head + 1) & int32(len(r.Buf)-1)
	r.N--
	return p
}

// HasSpace reports whether the ring can accept a packet under the given
// depth (Unbounded always can).
func (r *Ring) HasSpace(depth int) bool {
	return depth == Unbounded || int(r.N) < depth
}

// Push appends a packet; the caller has already checked HasSpace.
func (r *Ring) Push(p uint64) {
	if int(r.N) == len(r.Buf) {
		r.grow()
	}
	r.Buf[(int(r.Head)+int(r.N))&(len(r.Buf)-1)] = p
	r.N++
}

func (r *Ring) grow() {
	nb := make([]uint64, max(4, 2*len(r.Buf)))
	for i := 0; i < int(r.N); i++ {
		nb[i] = r.Buf[(int(r.Head)+i)&(len(r.Buf)-1)]
	}
	r.Buf = nb
	r.Head = 0
}

// Packets are packed as inject-cycle (high 32 bits) | destination (low
// 32 bits). Destinations fit: the engines cap simulable wire counts at
// MaxInt32. Cycle counts wrap at 2^32; latency extraction uses uint32
// arithmetic, so individual latencies stay correct as long as no packet
// waits more than 2^32 cycles.

// TraceBit marks a packet carrying a flight-recorder trace record (see
// internal/probe). Every engine validates destinations against an
// output count no larger than 2^30, so bit 31 of the low word is never
// a destination bit; Dest masks it out and Latency reads only the high
// word, which is what makes a tagged packet route, queue and measure
// exactly like its untagged twin.
const TraceBit uint64 = 1 << 31

// Pack encodes a packet injected for dest at cycle now.
func Pack(dest int, now int64) uint64 {
	return uint64(uint32(now))<<32 | uint64(uint32(dest))
}

// Dest extracts the packet's destination terminal.
func Dest(p uint64) int { return int(uint32(p) &^ uint32(TraceBit)) }

// Latency returns the packet's age in cycles at time now.
func Latency(p uint64, now int64) float64 {
	return float64(uint32(now) - uint32(p>>32))
}
