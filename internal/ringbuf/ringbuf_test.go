package ringbuf

import "testing"

func TestRingFIFOOrder(t *testing.T) {
	var r Ring
	for i := 0; i < 100; i++ {
		r.Push(uint64(i))
	}
	if r.N != 100 {
		t.Fatalf("N = %d after 100 pushes", r.N)
	}
	for i := 0; i < 100; i++ {
		if got := r.Peek(); got != uint64(i) {
			t.Fatalf("peek %d, want %d", got, i)
		}
		if got := r.Pop(); got != uint64(i) {
			t.Fatalf("pop %d, want %d", got, i)
		}
	}
	if r.N != 0 {
		t.Fatalf("N = %d after draining", r.N)
	}
}

func TestRingWrapsPreallocatedBuffer(t *testing.T) {
	r := Ring{Buf: make([]uint64, 4)}
	// Interleave pushes and pops so the head walks around the buffer.
	next, want := uint64(0), uint64(0)
	for i := 0; i < 37; i++ {
		if r.HasSpace(4) {
			r.Push(next)
			next++
		}
		if r.N > 2 {
			if got := r.Pop(); got != want {
				t.Fatalf("pop %d, want %d", got, want)
			}
			want++
		}
	}
	if len(r.Buf) != 4 {
		t.Fatalf("bounded use grew the buffer to %d slots", len(r.Buf))
	}
}

func TestHasSpace(t *testing.T) {
	var r Ring
	for i := 0; i < 3; i++ {
		if !r.HasSpace(3) {
			t.Fatalf("ring with %d packets rejects depth 3", r.N)
		}
		r.Push(uint64(i))
	}
	if r.HasSpace(3) {
		t.Fatal("full ring accepts under bounded depth")
	}
	if !r.HasSpace(Unbounded) {
		t.Fatal("unbounded depth refused space")
	}
}

func TestPackRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		dest int
		at   int64
		now  int64
	}{
		{0, 1, 1},
		{12345, 7, 900},
		{1<<31 - 1, 1 << 30, 1<<30 + 17},
	} {
		p := Pack(tc.dest, tc.at)
		if got := Dest(p); got != tc.dest {
			t.Errorf("Dest(Pack(%d, %d)) = %d", tc.dest, tc.at, got)
		}
		if got := Latency(p, tc.now); got != float64(tc.now-tc.at) {
			t.Errorf("Latency(Pack(%d, %d), %d) = %g, want %d", tc.dest, tc.at, tc.now, got, tc.now-tc.at)
		}
	}
}

// TestRingGrowthPreservesOrder exercises the growable (unbounded) ring
// path: a burst far deeper than any initial capacity must be held and
// fully recovered in FIFO order, including growth with a head sheared
// into the middle of the buffer by interleaved pops.
func TestRingGrowthPreservesOrder(t *testing.T) {
	var r Ring
	const k = 100
	for i := 0; i < k; i++ {
		if !r.HasSpace(Unbounded) {
			t.Fatal("unbounded ring refused a push")
		}
		r.Push(Pack(i, int64(i)))
	}
	// Interleave pops and pushes to shear the head across the buffer.
	for i := 0; i < 40; i++ {
		if got := Dest(r.Pop()); got != i {
			t.Fatalf("pop %d: got dest %d", i, got)
		}
		r.Push(Pack(k+i, 0))
	}
	for i := 40; i < k+40; i++ {
		if got := Dest(r.Pop()); got != i {
			t.Fatalf("pop %d: got dest %d", i, got)
		}
	}
	if r.N != 0 {
		t.Fatalf("ring not empty: %d", r.N)
	}
}
