package routing

import (
	"testing"

	"edn/internal/topology"
)

// edge_test.go covers panic guards and error paths of the routing layer.

func TestTagDigitPanics(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	tag, err := Encode(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	assertPanics(t, "Digit(-1)", func() { tag.Digit(-1) })
	assertPanics(t, "Digit(l)", func() { tag.Digit(cfg.L) })
	assertPanics(t, "DigitForStage(0)", func() { tag.DigitForStage(0) })
	assertPanics(t, "DigitForStage(l+2)", func() { tag.DigitForStage(cfg.L + 2) })
}

func TestRetirementOrderDigitForStage(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	ro := ReversedOrder(cfg)
	tag, err := Encode(cfg, 54) // d1=3 d0=1 x=2
	if err != nil {
		t.Fatal(err)
	}
	// Reversed: stage 1 retires d0, stage 2 retires d1, stage 3 retires x.
	if got := ro.DigitForStage(tag, 1); got != 1 {
		t.Errorf("stage 1 digit = %d, want d0=1", got)
	}
	if got := ro.DigitForStage(tag, 2); got != 3 {
		t.Errorf("stage 2 digit = %d, want d1=3", got)
	}
	if got := ro.DigitForStage(tag, 3); got != 2 {
		t.Errorf("stage 3 digit = %d, want x=2", got)
	}
	assertPanics(t, "DigitForStage(0)", func() { ro.DigitForStage(tag, 0) })
}

func TestTraceRouteWithOrderErrors(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	ro := ReversedOrder(cfg)
	if _, err := TraceRouteWithOrder(topology.Config{A: 7}, 0, 0, nil, ro); err == nil {
		t.Error("expected config validation error")
	}
	if _, err := TraceRouteWithOrder(cfg, 0, -1, nil, ro); err == nil {
		t.Error("expected destination error")
	}
	if _, err := TraceRouteWithOrder(cfg, -1, 0, nil, ro); err == nil {
		t.Error("expected source error")
	}
}

func TestFErrors(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	ro := StandardOrder(cfg)
	if _, err := ro.F(-1); err == nil {
		t.Error("expected range error from F")
	}
	if _, err := ro.FInverse(cfg.Outputs()); err == nil {
		t.Error("expected range error from FInverse")
	}
}

func TestPermReturnsCopy(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	ro := StandardOrder(cfg)
	p := ro.Perm()
	p[0] = 99
	if ro.Perm()[0] == 99 {
		t.Error("Perm leaked internal state")
	}
	if ro.String() == "" {
		t.Error("empty String")
	}
}

func TestEncodeInvalidConfig(t *testing.T) {
	if _, err := Encode(topology.Config{A: 7, B: 2, C: 1, L: 1}, 0); err == nil {
		t.Error("expected config validation error")
	}
	if _, err := NewRetirementOrder(topology.Config{A: 7, B: 2, C: 1, L: 1}, []int{0}); err == nil {
		t.Error("expected config validation error")
	}
}

func assertPanics(t *testing.T, name string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", name)
		}
	}()
	f()
}
