package routing

import (
	"fmt"

	"edn/internal/topology"
)

// RetirementOrder captures Corollary 2: the network may retire the base-b
// digits of the destination tag in any order. Entry Perm[s] names the
// original digit index d_j fed to hyperbar stage s+1 (the standard order
// is Perm = [l-1, l-2, ..., 0]). The crossbar digit x is always retired
// last — it is the only base-c digit, so it cannot trade places with a
// base-b digit unless b == c, and the paper keeps it fixed.
//
// Feeding digits out of order delivers the message to F(D) instead of D,
// where F rearranges the digits of D. Following the network with the
// fixed output permutation F^-1 (an extra wiring stage, as in Figure 6)
// restores every destination while changing which *internal* paths carry
// which tags — the trick the paper uses to make EDN(64,16,4,2) perform
// the identity permutation in one pass.
type RetirementOrder struct {
	cfg  topology.Config
	perm []int // perm[s] = original digit index retired at stage s+1
}

// StandardOrder returns the paper's default order: d_(l-i) at stage i.
func StandardOrder(cfg topology.Config) RetirementOrder {
	perm := make([]int, cfg.L)
	for s := range perm {
		perm[s] = cfg.L - 1 - s
	}
	return RetirementOrder{cfg: cfg, perm: perm}
}

// NewRetirementOrder validates perm (a permutation of [0, l)) and returns
// the corresponding order.
func NewRetirementOrder(cfg topology.Config, perm []int) (RetirementOrder, error) {
	if err := cfg.Validate(); err != nil {
		return RetirementOrder{}, err
	}
	if len(perm) != cfg.L {
		return RetirementOrder{}, fmt.Errorf("routing: retirement order has %d entries, want %d", len(perm), cfg.L)
	}
	seen := make([]bool, cfg.L)
	for s, j := range perm {
		if j < 0 || j >= cfg.L || seen[j] {
			return RetirementOrder{}, fmt.Errorf("routing: retirement order %v is not a permutation of [0,%d)", perm, cfg.L)
		}
		seen[j] = true
		_ = s
	}
	return RetirementOrder{cfg: cfg, perm: append([]int(nil), perm...)}, nil
}

// ReversedOrder retires d_0 first and d_(l-1) last — the order used by the
// Figure 6 construction for EDN(64,16,4,2).
func ReversedOrder(cfg topology.Config) RetirementOrder {
	perm := make([]int, cfg.L)
	for s := range perm {
		perm[s] = s
	}
	ro, err := NewRetirementOrder(cfg, perm)
	if err != nil {
		panic(err) // perm is a permutation by construction
	}
	return ro
}

// IsStandard reports whether the order is the paper's default.
func (ro RetirementOrder) IsStandard() bool {
	for s, j := range ro.perm {
		if j != ro.cfg.L-1-s {
			return false
		}
	}
	return true
}

// DigitForStage returns the digit of tag retired at stage s under this
// order (stage l+1 always retires x).
func (ro RetirementOrder) DigitForStage(tag Tag, s int) int {
	if s == ro.cfg.L+1 {
		return tag.CrossbarDigit()
	}
	if s < 1 || s > ro.cfg.L {
		panic(fmt.Sprintf("routing: stage %d out of range [1,%d]", s, ro.cfg.L+1))
	}
	return tag.Digit(ro.perm[s-1])
}

// F maps a destination label to the label the network actually delivers
// it to when tags are retired under this order (Corollary 2's digit
// rearrangement): the digit retired at stage s lands in positional slot
// l-s of the delivered label.
func (ro RetirementOrder) F(dst int) (int, error) {
	tag, err := Encode(ro.cfg, dst)
	if err != nil {
		return 0, err
	}
	v := 0
	for s := 1; s <= ro.cfg.L; s++ {
		v = v*ro.cfg.B + tag.Digit(ro.perm[s-1])
	}
	return v*ro.cfg.C + tag.CrossbarDigit(), nil
}

// FInverse maps a delivered label back to the requested destination:
// FInverse(F(d)) == d for every d.
func (ro RetirementOrder) FInverse(y int) (int, error) {
	tag, err := Encode(ro.cfg, y)
	if err != nil {
		return 0, err
	}
	// Delivered digit at positional index l-s came from original index
	// perm[s-1]; invert that placement.
	orig := make([]int, ro.cfg.L)
	for s := 1; s <= ro.cfg.L; s++ {
		orig[ro.perm[s-1]] = tag.Digit(ro.cfg.L - s)
	}
	v := 0
	for i := ro.cfg.L - 1; i >= 0; i-- {
		v = v*ro.cfg.B + orig[i]
	}
	return v*ro.cfg.C + tag.CrossbarDigit(), nil
}

// OutputPermutation returns the table of the compensating permutation
// stage appended to the network in Figure 6: table[y] = FInverse(y), so
// that network-then-table delivers every message to its original
// destination D.
func (ro RetirementOrder) OutputPermutation() ([]int, error) {
	table := make([]int, ro.cfg.Outputs())
	for y := range table {
		v, err := ro.FInverse(y)
		if err != nil {
			return nil, err
		}
		table[y] = v
	}
	return table, nil
}

// Perm returns a copy of the underlying digit-order permutation.
func (ro RetirementOrder) Perm() []int { return append([]int(nil), ro.perm...) }

// String renders the order as the digit sequence retired stage by stage.
func (ro RetirementOrder) String() string {
	return fmt.Sprintf("retire %v then x", ro.perm)
}

// TraceRouteWithOrder walks a message like TraceRoute but retires digits
// under the given order. The message arrives at F(dst), not dst; the
// returned trace's Destination field records the *delivered* label.
func TraceRouteWithOrder(cfg topology.Config, src, dst int, choices []int, order RetirementOrder) (Trace, error) {
	if err := cfg.Validate(); err != nil {
		return Trace{}, err
	}
	delivered, err := order.F(dst)
	if err != nil {
		return Trace{}, err
	}
	// Feeding digit perm[s-1] at stage s is the same as standard-routing
	// to F(dst): reuse the standard walk against the delivered label.
	tr, err := TraceRoute(cfg, src, delivered, choices)
	if err != nil {
		return Trace{}, err
	}
	return tr, nil
}
