// Package routing implements the digit-controlled routing machinery of
// Expanded Delta Networks: destination-tag encoding and decoding, the
// constructive source-to-destination walk of Lemma 1 with full per-stage
// detail, and the retirement-order transformations of Corollary 2 together
// with the compensating output permutation of Figure 6.
//
// At every source a (l*log2(b) + log2(c))-bit destination tag
// D = d_(l-1) d_(l-2) ... d_0 x is used for routing: hyperbar stage i
// "retires" digit d_(l-i) (base b), and the final c x c crossbar stage
// retires x (base c).
package routing

import (
	"fmt"
	"strings"

	"edn/internal/topology"
)

// Tag is a decoded destination tag for a particular network geometry.
type Tag struct {
	cfg topology.Config
	d   []int // d[i] = digit d_i, base-b
	x   int   // base-c crossbar digit
}

// Encode decodes destination label dst into its routing tag
// D = d_(l-1) ... d_0 x, where dst = (d_(l-1)...d_0)_base-b * c + x.
func Encode(cfg topology.Config, dst int) (Tag, error) {
	if err := cfg.Validate(); err != nil {
		return Tag{}, err
	}
	if dst < 0 || dst >= cfg.Outputs() {
		return Tag{}, fmt.Errorf("routing: destination %d out of range [0,%d)", dst, cfg.Outputs())
	}
	t := Tag{cfg: cfg, d: make([]int, cfg.L), x: dst % cfg.C}
	rest := dst / cfg.C
	for i := 0; i < cfg.L; i++ {
		t.d[i] = rest % cfg.B
		rest /= cfg.B
	}
	return t, nil
}

// Dest returns the destination label the tag encodes.
func (t Tag) Dest() int {
	v := 0
	for i := t.cfg.L - 1; i >= 0; i-- {
		v = v*t.cfg.B + t.d[i]
	}
	return v*t.cfg.C + t.x
}

// Digit returns d_i (0 <= i < l), the base-b digit with positional weight
// b^i in the destination label.
func (t Tag) Digit(i int) int {
	if i < 0 || i >= t.cfg.L {
		panic(fmt.Sprintf("routing: digit index %d out of range [0,%d)", i, t.cfg.L))
	}
	return t.d[i]
}

// CrossbarDigit returns x, the base-c digit retired at stage l+1.
func (t Tag) CrossbarDigit() int { return t.x }

// DigitForStage returns the digit retired at stage s under the standard
// retirement order: d_(l-s) for hyperbar stages 1..l and x for stage l+1.
func (t Tag) DigitForStage(s int) int {
	if s == t.cfg.L+1 {
		return t.x
	}
	if s < 1 || s > t.cfg.L {
		panic(fmt.Sprintf("routing: stage %d out of range [1,%d]", s, t.cfg.L+1))
	}
	return t.d[t.cfg.L-s]
}

// String renders the tag in the paper's D = d_(l-1)...d_0 x notation.
func (t Tag) String() string {
	var sb strings.Builder
	sb.WriteString("D=")
	for i := t.cfg.L - 1; i >= 0; i-- {
		fmt.Fprintf(&sb, "%d.", t.d[i])
	}
	fmt.Fprintf(&sb, "x%d", t.x)
	return sb.String()
}

// SourceDigits decomposes a source label per the Lemma 1 proof:
// S = s_(l-1) s_(l-2) ... s_0 x', the s_i base-(a/c) and x' base-c.
// The returned slice holds s[i] = s_i; xPrime is x'.
func SourceDigits(cfg topology.Config, src int) (s []int, xPrime int, err error) {
	if src < 0 || src >= cfg.Inputs() {
		return nil, 0, fmt.Errorf("routing: source %d out of range [0,%d)", src, cfg.Inputs())
	}
	xPrime = src % cfg.C
	rest := src / cfg.C
	q := cfg.A / cfg.C
	s = make([]int, cfg.L)
	for i := 0; i < cfg.L; i++ {
		s[i] = rest % q
		rest /= q
	}
	return s, xPrime, nil
}
