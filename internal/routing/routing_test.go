package routing

import (
	"testing"
	"testing/quick"

	"edn/internal/topology"
)

func mustCfg(t *testing.T, a, b, c, l int) topology.Config {
	t.Helper()
	cfg, err := topology.New(a, b, c, l)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestTagRoundTrip(t *testing.T) {
	cfgs := []topology.Config{
		mustCfg(t, 16, 4, 4, 2),
		mustCfg(t, 64, 16, 4, 2),
		mustCfg(t, 8, 2, 4, 3),
		mustCfg(t, 4, 4, 1, 3),
	}
	for _, cfg := range cfgs {
		for dst := 0; dst < cfg.Outputs(); dst++ {
			tag, err := Encode(cfg, dst)
			if err != nil {
				t.Fatalf("%v dst=%d: %v", cfg, dst, err)
			}
			if got := tag.Dest(); got != dst {
				t.Fatalf("%v: Dest() = %d, want %d", cfg, got, dst)
			}
		}
	}
}

func TestEncodeRange(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	if _, err := Encode(cfg, -1); err == nil {
		t.Error("expected error for negative destination")
	}
	if _, err := Encode(cfg, cfg.Outputs()); err == nil {
		t.Error("expected error for destination == Outputs")
	}
}

func TestDigitForStageStandardOrder(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	// dst = (d1 d0)_4 * 4 + x with d1=3, d0=1, x=2 -> dst = (3*4+1)*4+2 = 54.
	tag, err := Encode(cfg, 54)
	if err != nil {
		t.Fatal(err)
	}
	if got := tag.DigitForStage(1); got != 3 {
		t.Errorf("stage 1 digit = %d, want d1=3", got)
	}
	if got := tag.DigitForStage(2); got != 1 {
		t.Errorf("stage 2 digit = %d, want d0=1", got)
	}
	if got := tag.DigitForStage(3); got != 2 {
		t.Errorf("stage 3 digit = %d, want x=2", got)
	}
}

func TestSourceDigits(t *testing.T) {
	cfg := mustCfg(t, 64, 16, 4, 2) // q = a/c = 16, c = 4
	// src = (s1 s0)_16 * 4 + x' with s1=9, s0=13, x'=3 -> (9*16+13)*4+3 = 631.
	s, xp, err := SourceDigits(cfg, 631)
	if err != nil {
		t.Fatal(err)
	}
	if xp != 3 || s[0] != 13 || s[1] != 9 {
		t.Fatalf("SourceDigits = s=%v x'=%d, want s=[13 9] x'=3", s, xp)
	}
	if _, _, err := SourceDigits(cfg, cfg.Inputs()); err == nil {
		t.Error("expected range error")
	}
}

// TestLemma1Algebra verifies the closed-form line positions derived in the
// Lemma 1 proof: the output of hyperbar stage i (before the interstage
// permutation) is the mixed-radix string (s_(l-i)...s_1 d_(l-1)...d_(l-i))
// times c plus the free wire choice K_i — so the crossbar stage receives
// line (d_(l-1)...d_0)*c + K_l, the s-part having been fully consumed.
func TestLemma1Algebra(t *testing.T) {
	cfgs := []topology.Config{
		mustCfg(t, 16, 4, 4, 2),
		mustCfg(t, 64, 16, 4, 2),
		mustCfg(t, 8, 2, 4, 3),
		mustCfg(t, 8, 4, 2, 3),
	}
	for _, cfg := range cfgs {
		q := cfg.A / cfg.C
		step := max(1, cfg.Inputs()/16)
		for src := 0; src < cfg.Inputs(); src += step {
			for dst := 0; dst < cfg.Outputs(); dst += max(1, cfg.Outputs()/16) {
				choices := make([]int, cfg.L)
				for i := range choices {
					choices[i] = (src + 3*i + dst) % cfg.C
				}
				tr, err := TraceRoute(cfg, src, dst, choices)
				if err != nil {
					t.Fatalf("%v %d->%d: %v", cfg, src, dst, err)
				}
				s, _, err := SourceDigits(cfg, src)
				if err != nil {
					t.Fatal(err)
				}
				tag, err := Encode(cfg, dst)
				if err != nil {
					t.Fatal(err)
				}
				for i := 1; i <= cfg.L; i++ {
					// Mixed-radix value of s_(l-i)..s_1 (base q) followed by
					// d_(l-1)..d_(l-i) (base b).
					v := 0
					for j := cfg.L - i; j >= 1; j-- {
						v = v*q + s[j]
					}
					for j := cfg.L - 1; j >= cfg.L-i; j-- {
						v = v*cfg.B + tag.Digit(j)
					}
					want := v*cfg.C + choices[i-1]
					if got := tr.Hops[i-1].OutLine; got != want {
						t.Fatalf("%v %d->%d stage %d: OutLine=%d, want %d", cfg, src, dst, i, got, want)
					}
				}
				// The crossbar stage receives line (d_(l-1)...d_0)*c + K_l and
				// the message lands exactly on dst.
				last := tr.Hops[cfg.L]
				if want := (dst/cfg.C)*cfg.C + choices[cfg.L-1]; last.InLine != want {
					t.Fatalf("%v %d->%d: crossbar in-line %d, want %d", cfg, src, dst, last.InLine, want)
				}
				if last.OutLine != dst {
					t.Fatalf("%v %d->%d: delivered to %d", cfg, src, dst, last.OutLine)
				}
			}
		}
	}
}

// TestCorollary1RenamingInvariance: routing depends only on the tag, not
// on which input carries it — any source reaches any destination.
func TestCorollary1RenamingInvariance(t *testing.T) {
	cfg := mustCfg(t, 8, 2, 4, 2)
	dst := 5
	for src := 0; src < cfg.Inputs(); src++ {
		tr, err := TraceRoute(cfg, src, dst, nil)
		if err != nil {
			t.Fatalf("src=%d: %v", src, err)
		}
		if got := tr.Hops[len(tr.Hops)-1].OutLine; got != dst {
			t.Fatalf("src=%d delivered to %d, want %d", src, got, dst)
		}
	}
}

func TestTraceRouteArgumentErrors(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	if _, err := TraceRoute(cfg, -1, 0, nil); err == nil {
		t.Error("expected source range error")
	}
	if _, err := TraceRoute(cfg, 0, -1, nil); err == nil {
		t.Error("expected destination range error")
	}
	if _, err := TraceRoute(cfg, 0, 0, []int{0}); err == nil {
		t.Error("expected choice length error")
	}
	if _, err := TraceRoute(cfg, 0, 0, []int{0, 99}); err == nil {
		t.Error("expected choice range error")
	}
}

func TestTraceStringMentionsStages(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	tr, err := TraceRoute(cfg, 17, 42, []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	s := tr.String()
	if len(s) == 0 {
		t.Fatal("empty trace rendering")
	}
	for _, want := range []string{"stage 1", "stage 2", "stage 3", "crossbar"} {
		if !contains(s, want) {
			t.Errorf("trace rendering missing %q:\n%s", want, s)
		}
	}
}

func TestRetirementOrderValidation(t *testing.T) {
	cfg := mustCfg(t, 16, 4, 4, 2)
	if _, err := NewRetirementOrder(cfg, []int{0}); err == nil {
		t.Error("expected length error")
	}
	if _, err := NewRetirementOrder(cfg, []int{0, 0}); err == nil {
		t.Error("expected duplicate error")
	}
	if _, err := NewRetirementOrder(cfg, []int{0, 2}); err == nil {
		t.Error("expected range error")
	}
	if _, err := NewRetirementOrder(cfg, []int{1, 0}); err != nil {
		t.Errorf("standard order rejected: %v", err)
	}
}

func TestStandardOrderIsIdentityF(t *testing.T) {
	cfg := mustCfg(t, 64, 16, 4, 2)
	ro := StandardOrder(cfg)
	if !ro.IsStandard() {
		t.Fatal("StandardOrder not reported standard")
	}
	for dst := 0; dst < cfg.Outputs(); dst += 7 {
		got, err := ro.F(dst)
		if err != nil {
			t.Fatal(err)
		}
		if got != dst {
			t.Fatalf("standard F(%d) = %d", dst, got)
		}
	}
}

// TestCorollary2FInverse: retiring digits in a different order delivers D
// to F(D); composing with FInverse restores every destination, and the
// Figure 6 output permutation table realizes exactly that compensation.
func TestCorollary2FInverse(t *testing.T) {
	cfgs := []topology.Config{
		mustCfg(t, 64, 16, 4, 2),
		mustCfg(t, 8, 4, 2, 3),
		mustCfg(t, 8, 2, 4, 3),
	}
	for _, cfg := range cfgs {
		orders := []RetirementOrder{ReversedOrder(cfg), StandardOrder(cfg)}
		if cfg.L >= 3 {
			ro, err := NewRetirementOrder(cfg, []int{1, 2, 0})
			if err != nil {
				t.Fatal(err)
			}
			orders = append(orders, ro)
		}
		for _, ro := range orders {
			table, err := ro.OutputPermutation()
			if err != nil {
				t.Fatal(err)
			}
			seen := make([]bool, len(table))
			for dst := 0; dst < cfg.Outputs(); dst++ {
				f, err := ro.F(dst)
				if err != nil {
					t.Fatal(err)
				}
				inv, err := ro.FInverse(f)
				if err != nil {
					t.Fatal(err)
				}
				if inv != dst {
					t.Fatalf("%v %v: FInverse(F(%d)) = %d", cfg, ro, dst, inv)
				}
				if table[f] != dst {
					t.Fatalf("%v %v: output table[%d] = %d, want %d", cfg, ro, f, table[f], dst)
				}
				if seen[f] {
					t.Fatalf("%v %v: F not injective at %d", cfg, ro, f)
				}
				seen[f] = true
			}
		}
	}
}

// TestCorollary2TraceDelivery: tracing with a non-standard order delivers
// the message to F(dst), and the compensating table maps it back.
func TestCorollary2TraceDelivery(t *testing.T) {
	cfg := mustCfg(t, 64, 16, 4, 2)
	ro := ReversedOrder(cfg)
	table, err := ro.OutputPermutation()
	if err != nil {
		t.Fatal(err)
	}
	for dst := 0; dst < cfg.Outputs(); dst += 37 {
		tr, err := TraceRouteWithOrder(cfg, dst%cfg.Inputs(), dst, nil, ro)
		if err != nil {
			t.Fatal(err)
		}
		delivered := tr.Hops[len(tr.Hops)-1].OutLine
		want, err := ro.F(dst)
		if err != nil {
			t.Fatal(err)
		}
		if delivered != want {
			t.Fatalf("delivered %d, want F(%d)=%d", delivered, dst, want)
		}
		if table[delivered] != dst {
			t.Fatalf("compensation failed: table[%d]=%d, want %d", delivered, table[delivered], dst)
		}
	}
}

// Property: for random orders, F is a bijection on destinations whose
// compensating table is its inverse.
func TestQuickRetirementBijection(t *testing.T) {
	cfg := mustCfg(t, 8, 4, 2, 3)
	f := func(seed uint32) bool {
		// Build a permutation of [0, l) from the seed.
		perm := []int{0, 1, 2}
		s := seed
		for i := len(perm) - 1; i > 0; i-- {
			s = s*1664525 + 1013904223
			j := int(s>>16) % (i + 1)
			perm[i], perm[j] = perm[j], perm[i]
		}
		ro, err := NewRetirementOrder(cfg, perm)
		if err != nil {
			return false
		}
		seen := make([]bool, cfg.Outputs())
		for dst := 0; dst < cfg.Outputs(); dst++ {
			v, err := ro.F(dst)
			if err != nil || v < 0 || v >= cfg.Outputs() || seen[v] {
				return false
			}
			seen[v] = true
			back, err := ro.FInverse(v)
			if err != nil || back != dst {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && index(s, sub) >= 0
}

func index(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
