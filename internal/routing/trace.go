package routing

import (
	"fmt"
	"strings"

	"edn/internal/topology"
)

// Hop records what happens to a message at one stage of the network.
type Hop struct {
	Stage    int  // 1-based stage number; stage l+1 is the crossbar stage
	InLine   int  // wire label entering the stage
	Switch   int  // switch index within the stage
	Port     int  // switch-local input port
	Digit    int  // tag digit retired at this stage
	Wire     int  // wire chosen within the bucket (always 0 at the crossbar)
	OutLine  int  // stage-output wire label (before interstage wiring)
	NextLine int  // wire label after the interstage permutation
	Crossbar bool // true for the final stage
}

// Trace is the full Lemma 1 walk of one message.
type Trace struct {
	Config      topology.Config
	Source      int
	Destination int
	Hops        []Hop
}

// TraceRoute walks a message from src to dst, retiring digits in the
// standard order and taking choices[i-1] as the free wire choice inside
// the bucket selected at hyperbar stage i (Theorem 2's c^l multipath
// freedom). A nil choices slice selects wire 0 everywhere.
func TraceRoute(cfg topology.Config, src, dst int, choices []int) (Trace, error) {
	if err := cfg.Validate(); err != nil {
		return Trace{}, err
	}
	if choices == nil {
		choices = make([]int, cfg.L)
	}
	if len(choices) != cfg.L {
		return Trace{}, fmt.Errorf("routing: got %d wire choices, want %d", len(choices), cfg.L)
	}
	tag, err := Encode(cfg, dst)
	if err != nil {
		return Trace{}, err
	}
	if src < 0 || src >= cfg.Inputs() {
		return Trace{}, fmt.Errorf("routing: source %d out of range [0,%d)", src, cfg.Inputs())
	}

	tr := Trace{Config: cfg, Source: src, Destination: dst}
	line := src
	for s := 1; s <= cfg.L; s++ {
		k := choices[s-1]
		if k < 0 || k >= cfg.C {
			return Trace{}, fmt.Errorf("routing: stage %d wire choice %d out of range [0,%d)", s, k, cfg.C)
		}
		sw, port := cfg.SwitchOfLine(s, line)
		d := tag.DigitForStage(s)
		out := cfg.LineOfSwitchOutput(s, sw, d, k)
		next := cfg.InterstageGamma(s).Apply(out)
		tr.Hops = append(tr.Hops, Hop{
			Stage: s, InLine: line, Switch: sw, Port: port,
			Digit: d, Wire: k, OutLine: out, NextLine: next,
		})
		line = next
	}
	sw, port := cfg.SwitchOfLine(cfg.L+1, line)
	out := cfg.LineOfSwitchOutput(cfg.L+1, sw, tag.CrossbarDigit(), 0)
	tr.Hops = append(tr.Hops, Hop{
		Stage: cfg.L + 1, InLine: line, Switch: sw, Port: port,
		Digit: tag.CrossbarDigit(), OutLine: out, NextLine: out, Crossbar: true,
	})
	if out != dst {
		return tr, fmt.Errorf("routing: trace from %d ended at %d, want %d", src, out, dst)
	}
	return tr, nil
}

// String renders the trace as a per-stage table, matching the walk in the
// Lemma 1 proof.
func (tr Trace) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%v: route %d -> %d\n", tr.Config, tr.Source, tr.Destination)
	for _, h := range tr.Hops {
		kind := "hyperbar"
		if h.Crossbar {
			kind = "crossbar"
		}
		fmt.Fprintf(&sb, "  stage %d (%s): line %4d -> switch %3d port %2d, digit %d, wire %d -> line %4d",
			h.Stage, kind, h.InLine, h.Switch, h.Port, h.Digit, h.Wire, h.OutLine)
		if h.NextLine != h.OutLine {
			fmt.Fprintf(&sb, " --gamma--> %4d", h.NextLine)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
