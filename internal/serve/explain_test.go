package serve_test

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"

	"edn"
	"edn/internal/serve"
)

// TestHTTPExplain pins the /v1/explain contract: the endpoint runs the
// same job as /v1/jobs and streams the same measured result byte for
// byte — the anatomy report rides beside it in the terminal event's
// explain field, never inside the result payload.
func TestHTTPExplain(t *testing.T) {
	s := serve.New(serve.Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	spec := sweepSpec()

	plain := postJob(t, ts.URL+"/v1/jobs?id=p1", spec)
	lastP := plain[len(plain)-1]
	if lastP.Event != "result" || lastP.Result == nil {
		t.Fatalf("plain terminal event: %+v", lastP)
	}
	if lastP.Explain != nil {
		t.Fatalf("/v1/jobs without an explain section grew one: %+v", lastP.Explain)
	}

	explained := postJob(t, ts.URL+"/v1/explain?id=e1", spec)
	lastE := explained[len(explained)-1]
	if lastE.Event != "result" || lastE.Result == nil {
		t.Fatalf("explain terminal event: %+v", lastE)
	}
	if lastE.Explain == nil || lastE.Explain.Delivered.Count == 0 {
		t.Fatalf("/v1/explain terminal event missing anatomy report: %+v", lastE.Explain)
	}

	// Identical measured payloads: the only legitimate difference is the
	// explain section the endpoint injected into the echoed spec.
	lastE.Result.Spec.Explain = nil
	got, _ := json.Marshal(lastE.Result)
	want, _ := json.Marshal(lastP.Result)
	if !bytes.Equal(got, want) {
		t.Fatalf("explained result differs from plain run:\n explain: %s\n plain:   %s", got, want)
	}

	// A spec that already carries an explain section passes through
	// either endpoint unchanged: result and report agree byte for byte.
	// (Job IDs and span timestamps are wall-clock, so the comparison is
	// per field, not whole-event.)
	spec.Explain = &edn.ExplainSpec{TopK: 4}
	viaJobs := postJob(t, ts.URL+"/v1/jobs", spec)
	viaExplain := postJob(t, ts.URL+"/v1/explain", spec)
	lastJ, lastX := viaJobs[len(viaJobs)-1], viaExplain[len(viaExplain)-1]
	if lastJ.Explain == nil || lastX.Explain == nil {
		t.Fatalf("explain-carrying spec lost its report: jobs=%v explain=%v", lastJ.Explain, lastX.Explain)
	}
	gotJ, _ := json.Marshal(lastJ.Result)
	gotX, _ := json.Marshal(lastX.Result)
	if !bytes.Equal(gotJ, gotX) {
		t.Fatalf("same explain-carrying spec diverged across endpoints:\n jobs:    %s\n explain: %s", gotJ, gotX)
	}
	repJ, _ := json.Marshal(lastJ.Explain)
	repX, _ := json.Marshal(lastX.Explain)
	if !bytes.Equal(repJ, repX) {
		t.Fatalf("anatomy reports diverged across endpoints:\n jobs:    %s\n explain: %s", repJ, repX)
	}
}

// TestStdioExplain pins the stdio explain verb: it behaves exactly like
// run plus a default explain section, and the report arrives on the
// terminal result event.
func TestStdioExplain(t *testing.T) {
	s := serve.New(serve.Options{Workers: 2})
	c := dial(t, s)

	spec := sweepSpec()
	c.send(serve.Request{ID: "x1", Op: "explain", Spec: &spec})
	ev := c.recvUntil(func(ev serve.Event) bool { return ev.ID == "x1" && ev.Event == "result" }, nil)
	if ev.Result == nil || ev.Explain == nil {
		t.Fatalf("stdio explain terminal event: result=%v explain=%v", ev.Result, ev.Explain)
	}
	if ev.Explain.Stages == 0 || ev.Explain.Delivered.Count == 0 {
		t.Fatalf("stdio explain report empty: %+v", ev.Explain)
	}

	c.send(serve.Request{ID: "x2", Op: "explain"})
	errEv := c.recvUntil(func(ev serve.Event) bool { return ev.ID == "x2" && ev.Event == "error" }, nil)
	if errEv.Error == "" {
		t.Fatalf("spec-less explain should error: %+v", errEv)
	}

	c.shutdown()
}
