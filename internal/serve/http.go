package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"

	"edn"
)

// Handler returns the HTTP face of the server:
//
//	POST /v1/jobs        body = one JobSpec JSON document; the response
//	                     streams the job's event lines as NDJSON
//	                     (accepted, point..., result|error), flushed per
//	                     event so a client sees sweep points live. The
//	                     job id is ?id=... or assigned; closing the
//	                     request cancels the job. Terminal events carry
//	                     the job's span tree unless spans are disabled.
//	POST /v1/explain     same grammar as /v1/jobs, but an explain
//	                     section is injected when the spec carries none,
//	                     so the terminal result event always carries the
//	                     latency-anatomy report on its explain field —
//	                     beside the result, never inside it (the result
//	                     field is byte-identical to a /v1/jobs run).
//	GET  /v1/healthz     {"ok":true}
//	GET  /v1/stats       the Stats snapshot (scheduler, cache, span
//	                     aggregates)
//	GET  /metrics        scheduler + cache + pool + Go runtime counters
//	                     as Prometheus text
//	GET  /debug/pprof/*  net/http/pprof, only when Options.Pprof
//
// The estimate mode rides POST /v1/jobs like every other mode: a
// co-simulating system simulator posts {"mode":"estimate",...} and
// reads the single result event.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		s.handleJob(w, r, false)
	})
	mux.HandleFunc("POST /v1/explain", func(w http.ResponseWriter, r *http.Request) {
		s.handleJob(w, r, true)
	})
	mux.HandleFunc("GET /v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"ok":true}`)
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(s.Stats()) //nolint:errcheck
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		s.writeMetrics(w) //nolint:errcheck
	})
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request, explain bool) {
	var spec edn.JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, fmt.Sprintf("bad spec: %v", err), http.StatusBadRequest)
		return
	}
	if explain && spec.Explain == nil {
		spec.Explain = &edn.ExplainSpec{}
	}
	if err := spec.Validate(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	id := s.assignID(r.URL.Query().Get("id"))

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	emit := func(ev Event) {
		enc.Encode(ev) //nolint:errcheck // client gone = request context cancelled
		if flusher != nil {
			flusher.Flush()
		}
	}
	// The request context carries client disconnects: closing the
	// response cancels the job.
	s.Execute(r.Context(), id, spec, emit) //nolint:errcheck // reported in the stream
}

// writeMetrics exports the full runtime surface as Prometheus text
// through the deterministic probe registry: scheduler and cache
// counters, the live pool instruments (queue depth, busy workers,
// jobs by mode x engine x outcome, job-duration histogram), span-stage
// aggregates, and Go runtime stats.
func (s *Server) writeMetrics(w http.ResponseWriter) error {
	st := s.Stats()
	reg := edn.NewMetricsRegistry()
	reg.Add("edn_serve_jobs_accepted_total", "counter", nil, float64(st.Accepted))
	reg.Add("edn_serve_jobs_completed_total", "counter", nil, float64(st.Completed))
	reg.Add("edn_serve_jobs_failed_total", "counter", nil, float64(st.Failed))
	reg.Add("edn_serve_jobs_cancelled_total", "counter", nil, float64(st.Cancelled))
	reg.Add("edn_serve_jobs_running", "gauge", nil, float64(st.Running))
	reg.Add("edn_serve_workers", "gauge", nil, float64(st.Workers))
	reg.Add("edn_serve_uptime_seconds", "gauge", nil, st.UptimeSeconds)
	reg.Add("edn_serve_cache_entries", "gauge", nil, float64(st.Cache.Entries))
	reg.Add("edn_serve_cache_bytes", "gauge", nil, float64(st.Cache.Bytes))
	reg.Add("edn_serve_cache_budget_bytes", "gauge", nil, float64(st.Cache.Budget))
	reg.Add("edn_serve_cache_hits_total", "counter", nil, float64(st.Cache.Hits))
	reg.Add("edn_serve_cache_misses_total", "counter", nil, float64(st.Cache.Misses))
	reg.Add("edn_serve_cache_evictions_total", "counter", nil, float64(st.Cache.Evictions))
	reg.Add("edn_serve_cache_singleflight_waits_total", "counter", nil, float64(st.Cache.SingleflightWaits))
	for _, sp := range st.Spans {
		labels := []edn.MetricLabel{{Key: "stage", Value: sp.Name}}
		reg.Add("edn_serve_span_count_total", "counter", labels, float64(sp.Count))
		reg.Add("edn_serve_span_seconds_total", "counter", labels, float64(sp.TotalNS)/1e9)
	}

	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	reg.Add("edn_go_goroutines", "gauge", nil, float64(runtime.NumGoroutine()))
	reg.Add("edn_go_heap_alloc_bytes", "gauge", nil, float64(ms.HeapAlloc))
	reg.Add("edn_go_heap_objects", "gauge", nil, float64(ms.HeapObjects))
	reg.Add("edn_go_sys_bytes", "gauge", nil, float64(ms.Sys))
	reg.Add("edn_go_alloc_bytes_total", "counter", nil, float64(ms.TotalAlloc))
	reg.Add("edn_go_gc_cycles_total", "counter", nil, float64(ms.NumGC))
	reg.Add("edn_go_gc_pause_seconds_total", "counter", nil, float64(ms.PauseTotalNs)/1e9)

	// Live instruments last: queue depth, busy workers, jobs_total by
	// mode x engine x outcome, and the job-duration histogram.
	s.liveMetrics().Gather(reg)
	return reg.WritePrometheus(w)
}

// liveMetrics exposes the live instrument surface (tests gather it
// directly).
func (s *Server) liveMetrics() *edn.LiveMetrics { return s.live }
