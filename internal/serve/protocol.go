package serve

import "edn"

// The wire protocol is JSON lines in both directions, over stdio or an
// HTTP chunked response — the shape an external system-level simulator
// (the uPIMulator/BookSim2 co-simulation arrangement) or a sweep
// harness scripts against without linking Go.
//
// Client → server, one Request per line:
//
//	{"id":"j1","op":"run","spec":{...}}   run a JobSpec; events follow
//	{"id":"j1","op":"explain","spec":{...}} run with a latency-anatomy
//	                                      report (an explain section is
//	                                      injected when the spec has none)
//	{"id":"j1","op":"cancel"}             cancel the job named id
//	{"id":"p1","op":"ping"}               liveness check
//	{"id":"s1","op":"stats"}              scheduler + cache snapshot
//	{"op":"shutdown"}                     cancel everything and exit
//
// Server → client, one Event per line. A run produces "accepted" when
// the request is parsed and queued, zero or more "point" events as
// sweep points complete (index/total/point), and exactly one terminal
// "result" or "error". Per-job Seq increases by one per event, so a
// client can detect drops; events of concurrent jobs interleave and
// are distinguished by ID.
type Request struct {
	// ID names the job (op run/explain/cancel) or correlates the reply
	// (other ops). Run requests without an ID are assigned one.
	ID string `json:"id,omitempty"`
	// Op is run, explain, cancel, ping, stats or shutdown.
	Op string `json:"op"`
	// Spec is the job to run (op run/explain only).
	Spec *edn.JobSpec `json:"spec,omitempty"`
}

// Event is one server reply line; see Request for the grammar.
type Event struct {
	ID    string `json:"id,omitempty"`
	Seq   int    `json:"seq"`
	Event string `json:"event"` // accepted, point, result, error, cancelled, pong, stats, bye

	// Point events: the index-th of total sweep points, carrying the
	// same result struct the final JobResult aggregates.
	Index int `json:"index,omitempty"`
	Total int `json:"total,omitempty"`
	Point any `json:"point,omitempty"`

	// Terminal events: exactly one of Result (the full JobResult) or
	// Error per run.
	Result *edn.JobResult `json:"result,omitempty"`
	Error  string         `json:"error,omitempty"`

	// Spans is the job's completed span tree (terminal events, span
	// tracing enabled): queue wait, validation, table builds with cache
	// verdicts, per-shard execution, merge, serialization. Spans ride
	// beside Result, never inside it — a traced job's Result is
	// byte-identical to an untraced one's.
	Spans *edn.Span `json:"spans,omitempty"`

	// Explain is the job's latency-anatomy report (terminal result
	// events of jobs whose spec carries an explain section): per-stage
	// wait/block/service attribution, switch blame, congestion trees,
	// and the closed-loop request split. Like Spans, it rides beside
	// Result, never inside it — an explained job's Result is
	// byte-identical to an unexplained one's.
	Explain *edn.AnatomyReport `json:"explain,omitempty"`

	// Stats events.
	Stats *Stats `json:"stats,omitempty"`
}

// Stats is a point-in-time scheduler and cache snapshot.
type Stats struct {
	Accepted      int64                  `json:"accepted"`
	Running       int                    `json:"running"`
	Completed     int64                  `json:"completed"`
	Failed        int64                  `json:"failed"`
	Cancelled     int64                  `json:"cancelled"`
	Workers       int                    `json:"workers"`
	QueueDepth    int                    `json:"queue_depth"`
	BusyWorkers   int                    `json:"busy_workers"`
	UptimeSeconds float64                `json:"uptime_seconds"`
	Cache         edn.GeometryCacheStats `json:"cache"`
	// Spans aggregates the span trees of every finished job by stage
	// name (sorted), the service-level view of where job time goes.
	Spans []SpanStat `json:"spans,omitempty"`
}

// SpanStat folds every completed job's spans of one stage name.
type SpanStat struct {
	Name    string `json:"name"`
	Count   int64  `json:"count"`
	TotalNS int64  `json:"total_ns"`
	MaxNS   int64  `json:"max_ns"`
}
