// Package serve is the long-lived simulation service behind the
// edn-serve daemon: a scheduler that runs edn.JobSpec jobs on a
// bounded worker pool, streams incremental per-point results as they
// complete, and keeps one shared edn.GeometryCache across requests so
// repeated jobs on the same geometry skip table and mask construction.
// Results are bit-for-bit those of edn.Run without the cache — caching
// and streaming are execution details, never measurement details.
//
// The same Server serves both transports: a JSON-line conversation
// over an io.Reader/Writer pair (ServeStdio) and an HTTP API
// (Handler). See protocol.go for the wire grammar.
//
// Observability follows the repo's observation-never-perturbs rule at
// the service level: every job records a deterministic span tree
// (queue wait, validation, builds with cache verdicts, shards, merge,
// serialization) that rides beside the result, never inside it; live
// counters/gauges/histograms cover the pool and the cache on /metrics;
// and an optional slog logger receives one structured completion
// record per job. All three are additive — disable them all and the
// event stream is unchanged byte for byte.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"edn"
	"edn/internal/probe"
)

// Options configure a Server.
type Options struct {
	// Workers bounds concurrently running jobs (0 selects GOMAXPROCS).
	// Jobs past the bound queue in arrival order.
	Workers int
	// CacheBytes budgets the shared geometry cache (0 selects the
	// 256 MiB default).
	CacheBytes int64
	// DisableSpans turns off per-job span tracing. Tracing is
	// observation-only — results are byte-identical either way — so the
	// only reason to disable it is to shave the spans field off the
	// wire.
	DisableSpans bool
	// Pprof mounts net/http/pprof under /debug/pprof/ on the HTTP
	// handler.
	Pprof bool
	// Log, when non-nil, receives one structured completion record per
	// job (id, mode, engine, outcome, durations) plus lifecycle notes.
	Log *slog.Logger
}

// Server schedules JobSpec runs. Safe for concurrent use by multiple
// transport goroutines.
type Server struct {
	workers      int
	cache        *edn.GeometryCache
	sem          chan struct{}
	start        time.Time
	disableSpans bool
	pprof        bool
	log          *slog.Logger

	// Live pool instruments, exported on /metrics and snapshotted into
	// Stats.
	live   *probe.Metrics
	gQueue *probe.Gauge
	gBusy  *probe.Gauge
	hDur   *probe.LiveHistogram

	mu        sync.Mutex
	jobs      map[string]context.CancelFunc
	nextID    int64
	accepted  int64
	completed int64
	failed    int64
	cancelled int64
	spanAgg   map[string]*SpanStat
}

// jobDurationBounds bucket the job-duration histogram: microjobs to
// minute-long sweeps.
var jobDurationBounds = []float64{0.001, 0.01, 0.1, 1, 10, 60}

// New returns an idle server; it holds no goroutines of its own, the
// transports drive it.
func New(o Options) *Server {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	live := probe.NewMetrics()
	return &Server{
		workers:      w,
		cache:        edn.NewGeometryCache(o.CacheBytes),
		sem:          make(chan struct{}, w),
		start:        time.Now(),
		disableSpans: o.DisableSpans,
		pprof:        o.Pprof,
		log:          o.Log,
		live:         live,
		gQueue:       live.Gauge("edn_serve_queue_depth"),
		gBusy:        live.Gauge("edn_serve_busy_workers"),
		hDur:         live.Histogram("edn_serve_job_duration_seconds", jobDurationBounds),
		jobs:         make(map[string]context.CancelFunc),
		spanAgg:      make(map[string]*SpanStat),
	}
}

// Cache exposes the shared geometry cache (for tests and stats).
func (s *Server) Cache() *edn.GeometryCache { return s.cache }

// Stats snapshots the scheduler and cache counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		Accepted:      s.accepted,
		Running:       len(s.jobs),
		Completed:     s.completed,
		Failed:        s.failed,
		Cancelled:     s.cancelled,
		Workers:       s.workers,
		QueueDepth:    int(s.gQueue.Value()),
		BusyWorkers:   int(s.gBusy.Value()),
		UptimeSeconds: time.Since(s.start).Seconds(),
		Cache:         s.cache.Stats(),
	}
	if len(s.spanAgg) > 0 {
		st.Spans = make([]SpanStat, 0, len(s.spanAgg))
		for _, agg := range s.spanAgg {
			st.Spans = append(st.Spans, *agg)
		}
		sort.Slice(st.Spans, func(i, j int) bool { return st.Spans[i].Name < st.Spans[j].Name })
	}
	return st
}

// assignID returns id, or a fresh "job-N" when the request named none.
func (s *Server) assignID(id string) string {
	if id != "" {
		return id
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return fmt.Sprintf("job-%d", s.nextID)
}

func (s *Server) register(id string, cancel context.CancelFunc) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.jobs[id]; dup {
		return false
	}
	s.jobs[id] = cancel
	s.accepted++
	return true
}

func (s *Server) unregister(id string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	switch {
	case err == nil:
		s.completed++
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.cancelled++
	default:
		s.failed++
	}
}

// outcome names a job's terminal state for metric labels and logs.
func outcome(err error) string {
	switch {
	case err == nil:
		return "ok"
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return "cancelled"
	default:
		return "failed"
	}
}

// finishJob records a job's terminal accounting: the jobs_total
// counter (mode x engine x outcome), the duration histogram, the
// span aggregates, and the structured completion log.
func (s *Server) finishJob(id, mode, engine, out string, d time.Duration, span *edn.Span) {
	s.live.Counter("edn_serve_jobs_total",
		probe.Label{Key: "mode", Value: mode},
		probe.Label{Key: "engine", Value: engine},
		probe.Label{Key: "outcome", Value: out}).Inc()
	s.hDur.Observe(d.Seconds())
	if span != nil {
		s.mu.Lock()
		span.Walk(func(_ int, sp *edn.Span) {
			agg := s.spanAgg[sp.Name]
			if agg == nil {
				agg = &SpanStat{Name: sp.Name}
				s.spanAgg[sp.Name] = agg
			}
			agg.Count++
			agg.TotalNS += sp.DurationNS
			if sp.DurationNS > agg.MaxNS {
				agg.MaxNS = sp.DurationNS
			}
		})
		s.mu.Unlock()
	}
	if s.log != nil {
		s.log.Info("job done",
			"id", id, "mode", mode, "engine", engine, "outcome", out,
			"duration_ms", float64(d.Nanoseconds())/1e6)
	}
}

// Cancel cancels the running or queued job named id; false when no
// such job is live.
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	cancel, ok := s.jobs[id]
	s.mu.Unlock()
	if ok {
		cancel()
	}
	return ok
}

// CancelAll cancels every live job (shutdown).
func (s *Server) CancelAll() {
	s.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(s.jobs))
	for _, c := range s.jobs {
		cancels = append(cancels, c)
	}
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// Execute runs one job to completion, emitting the run's event stream
// ("accepted", streamed "point"s, then one terminal "result" or
// "error") through emit, which is called sequentially from this
// goroutine. Execute blocks while the worker pool is full — the
// transports call it from a per-job goroutine — and returns the job's
// terminal error, nil on success.
//
// Unless the server was built with DisableSpans, the job records a
// span tree — queue wait, validation, table builds with their cache
// verdicts, per-shard execution, merge, serialization — delivered on
// the terminal event's spans field. Tracing is observation-only: the
// result field is byte-identical with tracing on or off.
func (s *Server) Execute(ctx context.Context, id string, spec edn.JobSpec, emit func(Event)) error {
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if !s.register(id, cancel) {
		err := fmt.Errorf("duplicate job id %q", id)
		emit(Event{ID: id, Event: "error", Error: err.Error()})
		return err
	}
	seq := 0
	next := func(ev Event) {
		ev.ID, ev.Seq = id, seq
		seq++
		emit(ev)
	}
	next(Event{Event: "accepted"})

	engine := spec.Engine
	if engine == "" {
		engine = edn.EngineEDN
	}
	var tr *edn.SpanCollector
	if !s.disableSpans {
		tr = edn.NewSpanCollector("job")
	}
	started := time.Now()

	// One worker slot per running job; queued jobs wait here and can
	// still be cancelled while waiting.
	qs := tr.Start("queue_wait")
	s.gQueue.Add(1)
	select {
	case s.sem <- struct{}{}:
	case <-jctx.Done():
		s.gQueue.Add(-1)
		err := jctx.Err()
		s.unregister(id, err)
		tr.End(qs)
		s.finishJob(id, spec.Mode, engine, outcome(err), time.Since(started), tr.Finish())
		next(Event{Event: "error", Error: err.Error()})
		return err
	}
	s.gQueue.Add(-1)
	tr.End(qs)
	s.gBusy.Add(1)
	defer func() { s.gBusy.Add(-1); <-s.sem }()

	var explain *edn.AnatomyReport
	res, err := edn.RunJob(jctx, spec, edn.RunOptions{
		Cache: s.cache,
		Trace: tr,
		OnPoint: func(index, total int, point any) {
			next(Event{Event: "point", Index: index, Total: total, Point: point})
		},
		OnExplain: func(r *edn.AnatomyReport) { explain = r },
	})
	s.unregister(id, err)
	if err != nil {
		s.finishJob(id, spec.Mode, engine, outcome(err), time.Since(started), tr.Finish())
		next(Event{Event: "error", Error: err.Error()})
		return err
	}
	// Price the result's serialization once, inside its own span; the
	// transport still encodes the event itself, so the measured
	// marshal changes nothing downstream.
	if ss := tr.Start("serialize"); ss != nil {
		b, merr := json.Marshal(res)
		tr.End(ss)
		if merr == nil {
			tr.SetAttr(ss, "bytes", strconv.Itoa(len(b)))
		}
	}
	span := tr.Finish()
	s.finishJob(id, spec.Mode, engine, "ok", time.Since(started), span)
	next(Event{Event: "result", Result: res, Spans: span, Explain: explain})
	return nil
}
