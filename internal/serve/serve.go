// Package serve is the long-lived simulation service behind the
// edn-serve daemon: a scheduler that runs edn.JobSpec jobs on a
// bounded worker pool, streams incremental per-point results as they
// complete, and keeps one shared edn.GeometryCache across requests so
// repeated jobs on the same geometry skip table and mask construction.
// Results are bit-for-bit those of edn.Run without the cache — caching
// and streaming are execution details, never measurement details.
//
// The same Server serves both transports: a JSON-line conversation
// over an io.Reader/Writer pair (ServeStdio) and an HTTP API
// (Handler). See protocol.go for the wire grammar.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"edn"
)

// Options configure a Server.
type Options struct {
	// Workers bounds concurrently running jobs (0 selects GOMAXPROCS).
	// Jobs past the bound queue in arrival order.
	Workers int
	// CacheBytes budgets the shared geometry cache (0 selects the
	// 256 MiB default).
	CacheBytes int64
}

// Server schedules JobSpec runs. Safe for concurrent use by multiple
// transport goroutines.
type Server struct {
	workers int
	cache   *edn.GeometryCache
	sem     chan struct{}
	start   time.Time

	mu        sync.Mutex
	jobs      map[string]context.CancelFunc
	nextID    int64
	accepted  int64
	completed int64
	failed    int64
	cancelled int64
}

// New returns an idle server; it holds no goroutines of its own, the
// transports drive it.
func New(o Options) *Server {
	w := o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Server{
		workers: w,
		cache:   edn.NewGeometryCache(o.CacheBytes),
		sem:     make(chan struct{}, w),
		start:   time.Now(),
		jobs:    make(map[string]context.CancelFunc),
	}
}

// Cache exposes the shared geometry cache (for tests and stats).
func (s *Server) Cache() *edn.GeometryCache { return s.cache }

// Stats snapshots the scheduler and cache counters.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Accepted:      s.accepted,
		Running:       len(s.jobs),
		Completed:     s.completed,
		Failed:        s.failed,
		Cancelled:     s.cancelled,
		Workers:       s.workers,
		UptimeSeconds: time.Since(s.start).Seconds(),
		Cache:         s.cache.Stats(),
	}
}

// assignID returns id, or a fresh "job-N" when the request named none.
func (s *Server) assignID(id string) string {
	if id != "" {
		return id
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	return fmt.Sprintf("job-%d", s.nextID)
}

func (s *Server) register(id string, cancel context.CancelFunc) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.jobs[id]; dup {
		return false
	}
	s.jobs[id] = cancel
	s.accepted++
	return true
}

func (s *Server) unregister(id string, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.jobs, id)
	switch {
	case err == nil:
		s.completed++
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		s.cancelled++
	default:
		s.failed++
	}
}

// Cancel cancels the running or queued job named id; false when no
// such job is live.
func (s *Server) Cancel(id string) bool {
	s.mu.Lock()
	cancel, ok := s.jobs[id]
	s.mu.Unlock()
	if ok {
		cancel()
	}
	return ok
}

// CancelAll cancels every live job (shutdown).
func (s *Server) CancelAll() {
	s.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(s.jobs))
	for _, c := range s.jobs {
		cancels = append(cancels, c)
	}
	s.mu.Unlock()
	for _, c := range cancels {
		c()
	}
}

// Execute runs one job to completion, emitting the run's event stream
// ("accepted", streamed "point"s, then one terminal "result" or
// "error") through emit, which is called sequentially from this
// goroutine. Execute blocks while the worker pool is full — the
// transports call it from a per-job goroutine — and returns the job's
// terminal error, nil on success.
func (s *Server) Execute(ctx context.Context, id string, spec edn.JobSpec, emit func(Event)) error {
	jctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if !s.register(id, cancel) {
		err := fmt.Errorf("duplicate job id %q", id)
		emit(Event{ID: id, Event: "error", Error: err.Error()})
		return err
	}
	seq := 0
	next := func(ev Event) {
		ev.ID, ev.Seq = id, seq
		seq++
		emit(ev)
	}
	next(Event{Event: "accepted"})

	// One worker slot per running job; queued jobs wait here and can
	// still be cancelled while waiting.
	select {
	case s.sem <- struct{}{}:
	case <-jctx.Done():
		err := jctx.Err()
		s.unregister(id, err)
		next(Event{Event: "error", Error: err.Error()})
		return err
	}
	defer func() { <-s.sem }()

	res, err := edn.RunJob(jctx, spec, edn.RunOptions{
		Cache: s.cache,
		OnPoint: func(index, total int, point any) {
			next(Event{Event: "point", Index: index, Total: total, Point: point})
		},
	})
	s.unregister(id, err)
	if err != nil {
		next(Event{Event: "error", Error: err.Error()})
		return err
	}
	next(Event{Event: "result", Result: res})
	return nil
}
