package serve_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"edn"
	"edn/internal/serve"
)

func sweepSpec() edn.JobSpec {
	return edn.JobSpec{
		Mode:     edn.JobSaturation,
		Geometry: &edn.GeometrySpec{A: 4, B: 2, C: 2, L: 2},
		Loads:    []float64{0.3, 0.6, 0.9},
		Queue:    &edn.QueueSpec{Depth: 2},
		Sim:      edn.SimSpec{Cycles: 120, Warmup: 20, Seed: 5, Shards: 2},
	}
}

func estimateSpec() edn.JobSpec {
	return edn.JobSpec{
		Mode:     edn.JobEstimate,
		Geometry: &edn.GeometrySpec{A: 4, B: 2, C: 2, L: 2},
		Load:     0.7,
		Estimate: &edn.EstimateSpec{Src: 1, Dst: 5},
		Queue:    &edn.QueueSpec{Depth: 2},
		Sim:      edn.SimSpec{Cycles: 200, Warmup: 20, Seed: 3, Shards: 1},
	}
}

// longSpec is a sweep with enough points that cancellation between
// points is observed promptly.
func longSpec() edn.JobSpec {
	spec := sweepSpec()
	spec.Loads = nil
	for i := 1; i <= 50; i++ {
		spec.Loads = append(spec.Loads, float64(i)/50)
	}
	spec.Sim.Cycles = 2000
	return spec
}

// client drives one stdio conversation against a Server. A pump
// goroutine drains the server's event lines into a buffered channel,
// so the server's writes never block on the test being mid-send — over
// raw unbuffered pipes, a request write and an event write could
// otherwise deadlock each other.
type client struct {
	t     *testing.T
	raw   io.Writer
	enc   *json.Encoder
	lines chan string
	done  chan error
}

func dial(t *testing.T, s *serve.Server) *client {
	t.Helper()
	inR, inW := io.Pipe()
	outR, outW := io.Pipe()
	done := make(chan error, 1)
	go func() {
		err := s.ServeStdio(context.Background(), inR, outW)
		outW.Close() //nolint:errcheck
		done <- err
	}()
	t.Cleanup(func() { inW.Close() }) //nolint:errcheck
	lines := make(chan string, 4096)
	go func() {
		sc := bufio.NewScanner(outR)
		sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
		for sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	return &client{t: t, raw: inW, enc: json.NewEncoder(inW), lines: lines, done: done}
}

func (c *client) send(req serve.Request) {
	c.t.Helper()
	if err := c.enc.Encode(req); err != nil {
		c.t.Fatalf("send: %v", err)
	}
}

func (c *client) recv() serve.Event {
	c.t.Helper()
	line, ok := <-c.lines
	if !ok {
		c.t.Fatal("event stream ended early")
	}
	var ev serve.Event
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		c.t.Fatalf("bad event line %q: %v", line, err)
	}
	return ev
}

// recvUntil reads events until pred accepts one, returning it; every
// event seen on the way is handed to each, if set.
func (c *client) recvUntil(pred func(serve.Event) bool, each func(serve.Event)) serve.Event {
	c.t.Helper()
	for i := 0; i < 1000; i++ {
		ev := c.recv()
		if each != nil {
			each(ev)
		}
		if pred(ev) {
			return ev
		}
	}
	c.t.Fatal("event never arrived")
	return serve.Event{}
}

func (c *client) shutdown() {
	c.t.Helper()
	c.send(serve.Request{Op: "shutdown"})
	ev := c.recvUntil(func(ev serve.Event) bool { return ev.Event == "bye" }, nil)
	if ev.Event != "bye" {
		c.t.Fatalf("want bye, got %+v", ev)
	}
	if err := <-c.done; err != nil {
		c.t.Fatalf("ServeStdio: %v", err)
	}
}

func TestStdioPingStatsShutdown(t *testing.T) {
	s := serve.New(serve.Options{Workers: 2})
	c := dial(t, s)

	c.send(serve.Request{ID: "p1", Op: "ping"})
	if ev := c.recv(); ev.Event != "pong" || ev.ID != "p1" {
		t.Fatalf("want pong p1, got %+v", ev)
	}

	c.send(serve.Request{ID: "s1", Op: "stats"})
	ev := c.recv()
	if ev.Event != "stats" || ev.Stats == nil {
		t.Fatalf("want stats, got %+v", ev)
	}
	if ev.Stats.Workers != 2 || ev.Stats.Accepted != 0 {
		t.Fatalf("fresh server stats off: %+v", *ev.Stats)
	}

	c.send(serve.Request{ID: "x", Op: "warp"})
	if ev := c.recv(); ev.Event != "error" || !strings.Contains(ev.Error, "unknown op") {
		t.Fatalf("want unknown-op error, got %+v", ev)
	}

	c.shutdown()
}

// TestStdioRunStreamsSweep pins the full event grammar of one sweep —
// accepted, one point per load in order, then a result whose JSON is
// byte-identical to a direct edn.Run of the same spec.
func TestStdioRunStreamsSweep(t *testing.T) {
	spec := sweepSpec()
	direct, err := edn.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}

	s := serve.New(serve.Options{})
	c := dial(t, s)
	c.send(serve.Request{ID: "sweep", Op: "run", Spec: &spec})

	ev := c.recv()
	if ev.Event != "accepted" || ev.ID != "sweep" || ev.Seq != 0 {
		t.Fatalf("want accepted seq 0, got %+v", ev)
	}
	for i := range spec.Loads {
		ev = c.recv()
		if ev.Event != "point" || ev.Index != i || ev.Total != len(spec.Loads) || ev.Seq != i+1 {
			t.Fatalf("point %d: got %+v", i, ev)
		}
		if ev.Point == nil {
			t.Fatalf("point %d carries no payload", i)
		}
	}
	ev = c.recv()
	if ev.Event != "result" || ev.Result == nil || ev.Seq != len(spec.Loads)+1 {
		t.Fatalf("want terminal result, got %+v", ev)
	}
	got, err := json.Marshal(ev.Result)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("daemon result differs from direct run:\n daemon: %s\n direct: %s", got, want)
	}

	c.send(serve.Request{ID: "s", Op: "stats"})
	st := c.recvUntil(func(ev serve.Event) bool { return ev.Event == "stats" }, nil)
	if st.Stats.Completed != 1 || st.Stats.Accepted != 1 {
		t.Fatalf("stats after one job: %+v", *st.Stats)
	}
	c.shutdown()
}

// TestStdioCancel cancels one queued and one running job: with a single
// worker the second job is parked before the pool, so both cancellation
// paths (waiting for a slot, between sweep points) are exercised.
func TestStdioCancel(t *testing.T) {
	s := serve.New(serve.Options{Workers: 1})
	c := dial(t, s)

	long := longSpec()
	c.send(serve.Request{ID: "j1", Op: "run", Spec: &long})
	if ev := c.recv(); ev.Event != "accepted" || ev.ID != "j1" {
		t.Fatalf("want j1 accepted, got %+v", ev)
	}
	c.send(serve.Request{ID: "j2", Op: "run", Spec: &long})
	c.recvUntil(func(ev serve.Event) bool { return ev.ID == "j2" && ev.Event == "accepted" }, nil)

	// j2 is queued behind j1; cancelling it must produce the ack and
	// j2's terminal error without waiting for j1.
	// The ack (from the request loop) and j2's terminal error (from the
	// job goroutine) may interleave in either order.
	c.send(serve.Request{ID: "j2", Op: "cancel"})
	sawAck, sawErr := false, false
	c.recvUntil(func(ev serve.Event) bool {
		if ev.ID == "j2" && ev.Event == "cancelled" {
			sawAck = true
		}
		if ev.ID == "j2" && ev.Event == "error" {
			sawErr = true
		}
		return sawAck && sawErr
	}, nil)

	c.send(serve.Request{ID: "j1", Op: "cancel"})
	c.recvUntil(func(ev serve.Event) bool { return ev.ID == "j1" && ev.Event == "error" }, nil)

	// A second cancel finds nothing live.
	c.send(serve.Request{ID: "j1", Op: "cancel"})
	ev := c.recvUntil(func(ev serve.Event) bool { return ev.Event == "error" && strings.Contains(ev.Error, "no live job") }, nil)
	if ev.ID != "j1" {
		t.Fatalf("stale cancel: %+v", ev)
	}

	c.send(serve.Request{ID: "s", Op: "stats"})
	st := c.recvUntil(func(ev serve.Event) bool { return ev.Event == "stats" }, nil)
	if st.Stats.Cancelled != 2 {
		t.Fatalf("want 2 cancelled, got %+v", *st.Stats)
	}
	c.shutdown()
}

func TestStdioBadRequests(t *testing.T) {
	s := serve.New(serve.Options{})
	c := dial(t, s)

	if _, err := io.WriteString(c.raw, "this is not json\n"); err != nil {
		t.Fatal(err)
	}
	if ev := c.recv(); ev.Event != "error" || !strings.Contains(ev.Error, "bad request") {
		t.Fatalf("want bad-request error, got %+v", ev)
	}

	c.send(serve.Request{ID: "r", Op: "run"})
	if ev := c.recv(); ev.Event != "error" || !strings.Contains(ev.Error, "needs a spec") {
		t.Fatalf("want missing-spec error, got %+v", ev)
	}

	bad := sweepSpec()
	bad.Loads = nil
	c.send(serve.Request{ID: "r2", Op: "run", Spec: &bad})
	ev := c.recvUntil(func(ev serve.Event) bool { return ev.ID == "r2" && ev.Event == "error" }, nil)
	if ev.Error == "" {
		t.Fatalf("invalid spec produced no error: %+v", ev)
	}

	c.shutdown()
}

func TestHTTPEndpoints(t *testing.T) {
	s := serve.New(serve.Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok":true`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, body)
	}

	// A streamed sweep over HTTP matches a direct run byte for byte.
	spec := sweepSpec()
	direct, err := edn.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(direct)
	events := postJob(t, ts.URL+"/v1/jobs?id=h1", spec)
	if events[0].Event != "accepted" || events[0].ID != "h1" {
		t.Fatalf("first event: %+v", events[0])
	}
	points := 0
	for _, ev := range events {
		if ev.Event == "point" {
			points++
		}
	}
	if points != len(spec.Loads) {
		t.Fatalf("want %d streamed points, got %d", len(spec.Loads), points)
	}
	last := events[len(events)-1]
	if last.Event != "result" || last.Result == nil {
		t.Fatalf("terminal event: %+v", last)
	}
	got, _ := json.Marshal(last.Result)
	if !bytes.Equal(got, want) {
		t.Fatalf("HTTP result differs from direct run:\n http: %s\n direct: %s", got, want)
	}

	// The one-shot estimate: a co-simulator's question in one request.
	est := postJob(t, ts.URL+"/v1/jobs", estimateSpec())
	lastE := est[len(est)-1]
	if lastE.Event != "result" || lastE.Result == nil || lastE.Result.Estimate == nil {
		t.Fatalf("estimate terminal event: %+v", lastE)
	}
	if !lastE.Result.Estimate.SrcLive || !lastE.Result.Estimate.DstReachable || lastE.Result.Estimate.LatencyP50 <= 0 {
		t.Fatalf("estimate result implausible: %+v", *lastE.Result.Estimate)
	}

	// Unknown fields and invalid specs are 400s, not stream errors.
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"mode":"latency","warp":9}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()              //nolint:errcheck
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: want 400, got %d", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"mode":"latency"}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()              //nolint:errcheck
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("invalid spec: want 400, got %d", resp.StatusCode)
	}

	var st serve.Stats
	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close() //nolint:errcheck
	if st.Completed != 2 || st.Accepted != 2 {
		t.Fatalf("stats after two jobs: %+v", st)
	}
	if st.Cache.Hits < 1 {
		t.Fatalf("second job on the same geometry should hit the cache: %+v", st.Cache)
	}

	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close() //nolint:errcheck
	for _, metric := range []string{
		"edn_serve_jobs_accepted_total 2",
		"edn_serve_jobs_completed_total 2",
		"edn_serve_cache_hits_total",
	} {
		if !strings.Contains(string(body), metric) {
			t.Fatalf("metrics missing %q:\n%s", metric, body)
		}
	}
}

func postJob(t *testing.T, url string, spec edn.JobSpec) []serve.Event {
	t.Helper()
	blob, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close() //nolint:errcheck
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: %d %s", url, resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var events []serve.Event
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		var ev serve.Event
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line %q: %v", sc.Text(), err)
		}
		events = append(events, ev)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events")
	}
	return events
}

// TestExecuteConcurrentStress runs a mixed fleet of jobs over a small
// worker pool — the -race exercise for the scheduler, the shared cache
// and the per-job event sequencing — and pins that identical specs
// produce identical results regardless of scheduling order.
func TestExecuteConcurrentStress(t *testing.T) {
	s := serve.New(serve.Options{Workers: 4})
	ctx := context.Background()

	avail := edn.JobSpec{
		Mode:     edn.JobAvailability,
		Geometry: &edn.GeometrySpec{A: 4, B: 2, C: 2, L: 2},
		Avail:    &edn.AvailabilitySpec{Fractions: []float64{0.1, 0.3}, Load: 0.9},
		Queue:    &edn.QueueSpec{Depth: 2},
		Sim:      edn.SimSpec{Cycles: 120, Warmup: 20, Seed: 2, Shards: 2},
	}
	specs := []edn.JobSpec{sweepSpec(), estimateSpec(), avail}

	type outcome struct {
		spec   int
		events []serve.Event
		err    error
	}
	const perSpec = 4
	results := make([]outcome, len(specs)*perSpec)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var mu sync.Mutex
			o := outcome{spec: i % len(specs)}
			o.err = s.Execute(ctx, fmt.Sprintf("stress-%d", i), specs[o.spec], func(ev serve.Event) {
				mu.Lock()
				o.events = append(o.events, ev)
				mu.Unlock()
			})
			results[i] = o
		}(i)
	}
	wg.Wait()

	// Every job completed; per-job seq is gapless; identical specs →
	// identical marshaled results.
	canonical := make(map[int][]byte)
	for i, o := range results {
		if o.err != nil {
			t.Fatalf("job %d: %v", i, o.err)
		}
		for seq, ev := range o.events {
			if ev.Seq != seq {
				t.Fatalf("job %d: event %d has seq %d", i, seq, ev.Seq)
			}
		}
		last := o.events[len(o.events)-1]
		if last.Event != "result" || last.Result == nil {
			t.Fatalf("job %d terminal: %+v", i, last)
		}
		blob, err := json.Marshal(last.Result)
		if err != nil {
			t.Fatal(err)
		}
		if prev, ok := canonical[o.spec]; ok {
			if !bytes.Equal(blob, prev) {
				t.Fatalf("job %d: same spec, different result under concurrency", i)
			}
		} else {
			canonical[o.spec] = blob
		}
	}
	st := s.Stats()
	if st.Completed != int64(len(results)) {
		t.Fatalf("want %d completed, got %+v", len(results), st)
	}
	if st.Cache.Hits == 0 {
		t.Fatalf("repeated specs never hit the shared cache: %+v", st.Cache)
	}
}

// TestDuplicateJobID pins that a live id cannot be claimed twice.
func TestDuplicateJobID(t *testing.T) {
	s := serve.New(serve.Options{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	long := longSpec()
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		first := true
		done <- s.Execute(ctx, "dup", long, func(ev serve.Event) {
			if first {
				first = false
				close(started)
			}
		})
	}()
	<-started

	err := s.Execute(ctx, "dup", sweepSpec(), func(serve.Event) {})
	if err == nil || !strings.Contains(err.Error(), "duplicate job id") {
		t.Fatalf("want duplicate-id error, got %v", err)
	}

	if !s.Cancel("dup") {
		t.Fatal("live job not cancellable")
	}
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("cancelled job returned nil")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled job never returned")
	}
}
