package serve_test

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"edn"
	"edn/internal/serve"
)

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close() //nolint:errcheck
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	return string(b)
}

func httpStatus(t *testing.T, url string) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	resp.Body.Close() //nolint:errcheck
	return resp.StatusCode
}

// runJob executes spec to completion on s and returns the terminal
// event.
func runJob(t *testing.T, s *serve.Server, spec edn.JobSpec) serve.Event {
	t.Helper()
	var term serve.Event
	err := s.Execute(context.Background(), "", spec, func(ev serve.Event) {
		if ev.Event == "result" || ev.Event == "error" {
			term = ev
		}
	})
	if err != nil {
		t.Fatalf("Execute: %v", err)
	}
	return term
}

// spanShape renders the structural identity of a span tree — names,
// child counts, parentage, per-shard identity — with every timing
// field erased. Two runs of the same JobSpec must agree on it exactly.
func spanShape(s *edn.Span) string {
	var b strings.Builder
	var walk func(s *edn.Span)
	walk = func(s *edn.Span) {
		b.WriteString(s.Name)
		if shard, ok := s.Attrs["shard"]; ok {
			fmt.Fprintf(&b, "#%s", shard)
		}
		if len(s.Children) > 0 {
			b.WriteByte('(')
			for i, c := range s.Children {
				if i > 0 {
					b.WriteByte(',')
				}
				walk(c)
			}
			b.WriteByte(')')
		}
	}
	walk(s)
	return b.String()
}

// propertySpecs is the spec set the determinism properties quantify
// over: one per mode family that exercises a distinct execution shape
// (single point, sweep, sharded, cached masks, paired engines).
func propertySpecs() map[string]edn.JobSpec {
	geo := &edn.GeometrySpec{A: 4, B: 2, C: 2, L: 2}
	return map[string]edn.JobSpec{
		"saturation": sweepSpec(),
		"estimate":   estimateSpec(),
		"latency": {
			Mode: edn.JobLatency, Geometry: geo, Load: 0.8,
			Queue: &edn.QueueSpec{Depth: 2},
			Sim:   edn.SimSpec{Cycles: 150, Warmup: 20, Seed: 7, Shards: 3},
		},
		"availability": {
			Mode: edn.JobAvailability, Geometry: geo,
			Avail: &edn.AvailabilitySpec{Fractions: []float64{0.05, 0.1}},
			Queue: &edn.QueueSpec{Depth: 2},
			Sim:   edn.SimSpec{Cycles: 120, Warmup: 10, Seed: 11, Shards: 2},
		},
		"closedloop-dilated": {
			Mode: edn.JobClosedLoop, Engine: edn.EngineDilated,
			Dilated: &edn.DilatedGeometrySpec{B: 2, D: 2, L: 3}, Rates: []float64{0.2, 0.5},
			Sim: edn.SimSpec{Cycles: 150, Warmup: 20, Seed: 9, Shards: 2},
		},
	}
}

// TestSpanShapeDeterministic pins the observability contract's first
// half: the span tree's shape is a pure function of the JobSpec —
// re-running the identical spec on a fresh server yields the identical
// structure no matter how the shard goroutines were scheduled.
func TestSpanShapeDeterministic(t *testing.T) {
	for name, spec := range propertySpecs() {
		t.Run(name, func(t *testing.T) {
			shapes := make([]string, 2)
			for i := range shapes {
				ev := runJob(t, serve.New(serve.Options{Workers: 2}), spec)
				if ev.Spans == nil {
					t.Fatal("terminal event carries no span tree")
				}
				if ev.Spans.Name != "job" {
					t.Fatalf("root span = %q, want job", ev.Spans.Name)
				}
				shapes[i] = spanShape(ev.Spans)
			}
			if shapes[0] != shapes[1] {
				t.Errorf("span shape differs between identical runs:\n%s\nvs\n%s", shapes[0], shapes[1])
			}
			for _, want := range []string{"queue_wait", "validate", "build", "execute", "serialize"} {
				if !strings.Contains(shapes[0], want) {
					t.Errorf("span tree missing %q stage:\n%s", want, shapes[0])
				}
			}
			if spec.Sim.Shards > 1 && !strings.Contains(shapes[0], "shard#1") {
				t.Errorf("sharded job records no shard spans:\n%s", shapes[0])
			}
		})
	}
}

// TestTracingDoesNotPerturbResults pins the contract's second half:
// tracing is observation-only. For every property spec, a traced
// server and a spans-disabled server produce byte-identical result
// payloads — and a warm re-run on the traced server (cache hits, spans
// attributed "hit") still matches.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	for name, spec := range propertySpecs() {
		t.Run(name, func(t *testing.T) {
			traced := serve.New(serve.Options{Workers: 2})
			bare := serve.New(serve.Options{Workers: 2, DisableSpans: true})

			onEv := runJob(t, traced, spec)
			offEv := runJob(t, bare, spec)
			if onEv.Spans == nil || offEv.Spans != nil {
				t.Fatalf("spans presence wrong: traced=%v bare=%v", onEv.Spans != nil, offEv.Spans != nil)
			}
			on, err := json.Marshal(onEv.Result)
			if err != nil {
				t.Fatal(err)
			}
			off, err := json.Marshal(offEv.Result)
			if err != nil {
				t.Fatal(err)
			}
			if string(on) != string(off) {
				t.Errorf("traced result differs from untraced:\n%s\nvs\n%s", on, off)
			}
			warmEv := runJob(t, traced, spec)
			warm, err := json.Marshal(warmEv.Result)
			if err != nil {
				t.Fatal(err)
			}
			if string(warm) != string(on) {
				t.Errorf("warm traced result differs from cold:\n%s\nvs\n%s", warm, on)
			}
		})
	}
}

// TestStatsSpanAggregates checks the service-level span view: after a
// traced job, /v1/stats carries per-stage aggregates and the cache
// counters thread through (hits on the warm run, singleflight field
// present).
func TestStatsSpanAggregates(t *testing.T) {
	s := serve.New(serve.Options{Workers: 2})
	runJob(t, s, estimateSpec())
	runJob(t, s, estimateSpec()) // warm: same geometry, cache hits

	st := s.Stats()
	if st.QueueDepth != 0 || st.BusyWorkers != 0 {
		t.Errorf("idle server reports queue=%d busy=%d", st.QueueDepth, st.BusyWorkers)
	}
	if st.Cache.Hits == 0 {
		t.Errorf("warm re-run recorded no cache hits: %+v", st.Cache)
	}
	agg := make(map[string]serve.SpanStat, len(st.Spans))
	for _, sp := range st.Spans {
		agg[sp.Name] = sp
	}
	for _, want := range []string{"job", "queue_wait", "validate", "build", "execute", "point", "serialize"} {
		sp, ok := agg[want]
		if !ok {
			t.Errorf("stats span aggregates missing stage %q: %+v", want, st.Spans)
			continue
		}
		if sp.Count < 2 {
			t.Errorf("stage %q count = %d, want >= 2 (two jobs ran)", want, sp.Count)
		}
	}

	// The same snapshot serves the stdio stats reply.
	c := dial(t, s)
	c.send(serve.Request{ID: "s1", Op: "stats"})
	ev := c.recvUntil(func(ev serve.Event) bool { return ev.Event == "stats" }, nil)
	if ev.Stats == nil || ev.Stats.Cache.Hits != st.Cache.Hits {
		t.Errorf("stdio stats cache mismatch: %+v vs %+v", ev.Stats, st)
	}
	if len(ev.Stats.Spans) == 0 {
		t.Error("stdio stats reply carries no span aggregates")
	}
	c.shutdown()
}

// TestMetricsSurface checks the /metrics export: pool instruments,
// jobs_total with its three labels, the duration histogram, cache
// singleflight waits and Go runtime stats.
func TestMetricsSurface(t *testing.T) {
	s := serve.New(serve.Options{Workers: 2})
	runJob(t, s, estimateSpec())
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	body := httpGet(t, srv.URL+"/metrics")
	for _, want := range []string{
		"edn_serve_queue_depth 0",
		"edn_serve_busy_workers 0",
		`edn_serve_jobs_total{mode="estimate",engine="edn",outcome="ok"} 1`,
		"# TYPE edn_serve_job_duration_seconds histogram",
		`edn_serve_job_duration_seconds_bucket{le="+Inf"} 1`,
		"edn_serve_job_duration_seconds_count 1",
		"edn_serve_cache_singleflight_waits_total 0",
		`edn_serve_span_count_total{stage="execute"} 1`,
		"edn_go_goroutines",
		"edn_go_heap_alloc_bytes",
		"edn_go_gc_cycles_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// TestPprofGate checks /debug/pprof/ is mounted only behind the
// option.
func TestPprofGate(t *testing.T) {
	off := httptest.NewServer(serve.New(serve.Options{}).Handler())
	defer off.Close()
	on := httptest.NewServer(serve.New(serve.Options{Pprof: true}).Handler())
	defer on.Close()

	if code := httpStatus(t, off.URL+"/debug/pprof/"); code != 404 {
		t.Errorf("pprof disabled but /debug/pprof/ = %d", code)
	}
	if code := httpStatus(t, on.URL+"/debug/pprof/"); code != 200 {
		t.Errorf("pprof enabled but /debug/pprof/ = %d", code)
	}
	body := httpGet(t, on.URL+"/debug/pprof/cmdline")
	if len(body) == 0 {
		t.Error("pprof cmdline endpoint returned nothing")
	}
}
