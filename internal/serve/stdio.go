package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"edn"
)

// maxLine bounds one request line; a JobSpec is a few hundred bytes,
// so 16 MiB is generous headroom for long fraction/load axes.
const maxLine = 16 << 20

// ServeStdio runs the JSON-line conversation: one Request per line on
// r, one Event per line on w (see protocol.go). Run requests execute
// concurrently on the worker pool while the loop keeps reading, so
// control traffic (ping, stats, cancel) stays responsive during long
// sweeps; event lines of concurrent jobs interleave whole, never
// fragmented. The call returns when r closes, a shutdown request
// arrives (after cancelling and draining live jobs), or ctx is
// cancelled.
func (s *Server) ServeStdio(ctx context.Context, r io.Reader, w io.Writer) error {
	var wmu sync.Mutex
	enc := json.NewEncoder(w)
	write := func(ev Event) {
		wmu.Lock()
		defer wmu.Unlock()
		enc.Encode(ev) //nolint:errcheck // a broken pipe also ends the read loop
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var jobs sync.WaitGroup
	defer jobs.Wait()

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), maxLine)
	for sc.Scan() {
		if err := ctx.Err(); err != nil {
			return err
		}
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var req Request
		if err := json.Unmarshal(line, &req); err != nil {
			write(Event{Event: "error", Error: fmt.Sprintf("bad request: %v", err)})
			continue
		}
		switch req.Op {
		case "run", "explain":
			if req.Spec == nil {
				write(Event{ID: req.ID, Event: "error", Error: req.Op + " request needs a spec"})
				continue
			}
			id, spec := s.assignID(req.ID), *req.Spec
			if req.Op == "explain" && spec.Explain == nil {
				spec.Explain = &edn.ExplainSpec{}
			}
			jobs.Add(1)
			go func() {
				defer jobs.Done()
				s.Execute(ctx, id, spec, write) //nolint:errcheck // reported in the event stream
			}()
		case "cancel":
			if s.Cancel(req.ID) {
				write(Event{ID: req.ID, Event: "cancelled"})
			} else {
				write(Event{ID: req.ID, Event: "error", Error: fmt.Sprintf("no live job %q", req.ID)})
			}
		case "ping":
			write(Event{ID: req.ID, Event: "pong"})
		case "stats":
			st := s.Stats()
			write(Event{ID: req.ID, Event: "stats", Stats: &st})
		case "shutdown":
			s.CancelAll()
			jobs.Wait()
			write(Event{ID: req.ID, Event: "bye"})
			return nil
		default:
			write(Event{ID: req.ID, Event: "error", Error: fmt.Sprintf("unknown op %q", req.Op)})
		}
	}
	return sc.Err()
}
