package simd

import (
	"fmt"

	"edn/internal/core"
	"edn/internal/stats"
	"edn/internal/xrand"
)

// RouteOptions configures a permutation-routing run.
type RouteOptions struct {
	Seed      uint64 // RNG seed (default 1)
	Scheduler Scheduler
	Factory   core.ArbiterFactory
	// MaxCycles aborts a run that fails to drain (default 100 * q *
	// clusters — far beyond any sane completion time).
	MaxCycles int
}

func (o RouteOptions) withDefaults(sys System) RouteOptions {
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Scheduler == nil {
		o.Scheduler = RandomScheduler{}
	}
	if o.MaxCycles <= 0 {
		o.MaxCycles = 100 * sys.Q * sys.P()
	}
	return o
}

// RouteResult reports one permutation delivery.
type RouteResult struct {
	System    System
	Scheduler string
	Cycles    int   // network cycles until every message was delivered
	Delivered []int // messages delivered in each cycle
}

// RoutePermutation delivers the permutation perm over the system's N
// processors: PE i sends one message to PE perm[i]. Each cycle every
// cluster offers at most one undelivered message (per the schedule); the
// network routes the batch; winners retire. It returns the cycle count —
// the quantity Section 5.1 estimates as q/PA(1) + J.
func RoutePermutation(sys System, perm []int, opts RouteOptions) (RouteResult, error) {
	if err := sys.Validate(); err != nil {
		return RouteResult{}, err
	}
	if len(perm) != sys.N() {
		return RouteResult{}, fmt.Errorf("simd: permutation over %d PEs, want %d", len(perm), sys.N())
	}
	seen := make([]bool, sys.N())
	for i, v := range perm {
		if v < 0 || v >= sys.N() || seen[v] {
			return RouteResult{}, fmt.Errorf("simd: perm[%d]=%d is not a permutation of [0,%d)", i, v, sys.N())
		}
		seen[v] = true
	}
	opts = opts.withDefaults(sys)

	net, err := core.NewNetwork(sys.Network, opts.Factory)
	if err != nil {
		return RouteResult{}, err
	}
	rng := xrand.New(opts.Seed)

	p := sys.P()
	// pending[x] holds the destination ports of cluster x's undelivered
	// messages. The trailer digit (destination PE within the cluster)
	// cannot conflict — the 1-to-q demultiplexer is dedicated — so only
	// ports matter, exactly as Section 5.1 argues.
	pending := make([][]int, p)
	for i, v := range perm {
		x := sys.Cluster(i)
		pending[x] = append(pending[x], sys.Cluster(v))
	}

	res := RouteResult{System: sys, Scheduler: opts.Scheduler.Name()}
	remaining := sys.N()
	dest := make([]int, p)
	out := make([]core.Outcome, p)
	for cycle := 0; remaining > 0; cycle++ {
		if cycle >= opts.MaxCycles {
			return RouteResult{}, fmt.Errorf("simd: %v did not drain after %d cycles (%d messages left)", sys, cycle, remaining)
		}
		choice := opts.Scheduler.Pick(pending, rng)
		if len(choice) != p {
			return RouteResult{}, fmt.Errorf("simd: scheduler %q returned %d choices, want %d", opts.Scheduler.Name(), len(choice), p)
		}
		for x := 0; x < p; x++ {
			if choice[x] < 0 {
				dest[x] = core.NoRequest
				continue
			}
			if choice[x] >= len(pending[x]) {
				return RouteResult{}, fmt.Errorf("simd: scheduler %q chose message %d of %d in cluster %d", opts.Scheduler.Name(), choice[x], len(pending[x]), x)
			}
			dest[x] = pending[x][choice[x]]
		}
		cs, err := net.RouteCycleInto(dest, out)
		if err != nil {
			return RouteResult{}, err
		}
		for x := 0; x < p; x++ {
			if choice[x] < 0 || !out[x].Delivered() {
				continue
			}
			// Remove the delivered message (order within a cluster does not
			// matter; swap-delete keeps this O(1)).
			msgs := pending[x]
			msgs[choice[x]] = msgs[len(msgs)-1]
			pending[x] = msgs[:len(msgs)-1]
		}
		remaining -= cs.Delivered
		res.Delivered = append(res.Delivered, cs.Delivered)
		res.Cycles++
	}
	return res, nil
}

// MeasurePermutationTime routes `trials` random permutations and returns
// the accumulated cycle counts, for comparison against the analytic
// q/PA(1) + J estimate.
func MeasurePermutationTime(sys System, trials int, opts RouteOptions) (stats.Accumulator, error) {
	var acc stats.Accumulator
	if trials < 1 {
		return acc, fmt.Errorf("simd: trials=%d must be positive", trials)
	}
	opts = opts.withDefaults(sys)
	rng := xrand.New(opts.Seed)
	for t := 0; t < trials; t++ {
		perm := rng.Perm(sys.N())
		trialOpts := opts
		trialOpts.Seed = rng.Uint64() | 1
		res, err := RoutePermutation(sys, perm, trialOpts)
		if err != nil {
			return acc, err
		}
		acc.Add(float64(res.Cycles))
	}
	return acc, nil
}
