// Package simd implements the Section 5 Restricted Access EDN (RA-EDN):
// a massively parallel SIMD machine in which a *cluster* of q processing
// elements shares a single input and output port of an EDN(bc,b,c,l) with
// p = b^l*c ports. Every PE holds one message of a permutation over all
// N = p*q processors; each network cycle every cluster offers at most one
// undelivered message, chosen by a schedule, and conflicts inside the
// network push losers to a later cycle.
//
// The paper's schedule is random selection ("a random schedule on a fixed
// permutation is equivalent to a fixed schedule on a random permutation");
// FIFO and greedy-distinct schedulers are provided as ablations. The
// MasPar MP-1 16K router is RA-EDN(16,4,2,16), logically EDN(64,16,4,2).
package simd

import (
	"fmt"

	"edn/internal/topology"
	"edn/internal/xrand"
)

// System is an RA-EDN(b,c,l,q): a square EDN plus clustering.
type System struct {
	Network topology.Config // EDN(bc,b,c,l); must be square
	Q       int             // processing elements per cluster
}

// RAEDN builds the RA-EDN(b,c,l,q) system of Section 5.1: the network is
// EDN(bc,b,c,l) and each of its p = b^l*c ports serves q PEs.
func RAEDN(b, c, l, q int) (System, error) {
	cfg, err := topology.New(b*c, b, c, l)
	if err != nil {
		return System{}, err
	}
	sys := System{Network: cfg, Q: q}
	if err := sys.Validate(); err != nil {
		return System{}, err
	}
	return sys, nil
}

// MasParMP1 returns the paper's flagship instance: RA-EDN(16,4,2,16),
// the 16K-PE MasPar MP-1 router (1024 clusters of 16 PEs over
// EDN(64,16,4,2)).
func MasParMP1() System {
	sys, err := RAEDN(16, 4, 2, 16)
	if err != nil {
		panic(err) // fixed parameters; cannot fail
	}
	return sys
}

// Validate checks the system is well formed.
func (s System) Validate() error {
	if err := s.Network.Validate(); err != nil {
		return err
	}
	if !s.Network.IsSquare() {
		return fmt.Errorf("simd: RA-EDN network must be square, got %v", s.Network)
	}
	if s.Q < 1 {
		return fmt.Errorf("simd: cluster size q=%d must be positive", s.Q)
	}
	return nil
}

// P returns the number of clusters (network ports).
func (s System) P() int { return s.Network.Inputs() }

// N returns the total number of processing elements, p*q.
func (s System) N() int { return s.P() * s.Q }

// String renders the system in the paper's RA-EDN(b,c,l,q) notation.
func (s System) String() string {
	return fmt.Sprintf("RA-EDN(%d,%d,%d,%d)", s.Network.B, s.Network.C, s.Network.L, s.Q)
}

// Cluster returns the cluster index of global PE label pe (pe = x*q + y
// for PE y of cluster x).
func (s System) Cluster(pe int) int { return pe / s.Q }

// Scheduler picks which undelivered message each cluster offers in a
// network cycle.
type Scheduler interface {
	// Pick returns, for every cluster, an index into pending[cluster]
	// (or -1 when that cluster has nothing left). pending holds the
	// destination *ports* of undelivered messages per cluster.
	Pick(pending [][]int, rng *xrand.Rand) []int
	// Name identifies the schedule in reports.
	Name() string
}

// RandomScheduler is the paper's schedule: each cluster picks an
// undelivered message uniformly at random.
type RandomScheduler struct{}

// Name implements Scheduler.
func (RandomScheduler) Name() string { return "random" }

// Pick implements Scheduler.
func (RandomScheduler) Pick(pending [][]int, rng *xrand.Rand) []int {
	choice := make([]int, len(pending))
	for x, msgs := range pending {
		if len(msgs) == 0 {
			choice[x] = -1
			continue
		}
		choice[x] = rng.Intn(len(msgs))
	}
	return choice
}

// FIFOScheduler always offers each cluster's oldest undelivered message.
type FIFOScheduler struct{}

// Name implements Scheduler.
func (FIFOScheduler) Name() string { return "fifo" }

// Pick implements Scheduler.
func (FIFOScheduler) Pick(pending [][]int, rng *xrand.Rand) []int {
	choice := make([]int, len(pending))
	for x, msgs := range pending {
		if len(msgs) == 0 {
			choice[x] = -1
			continue
		}
		choice[x] = 0
	}
	return choice
}

// GreedyDistinctScheduler tries to offer messages with pairwise-distinct
// destination clusters each cycle (the expensive schedule Section 5
// mentions and sidesteps): clusters are scanned in random order and each
// prefers an unclaimed destination if it has one. Conflicts inside the
// network can still occur — distinct outputs do not guarantee distinct
// internal wires — but output contention disappears.
type GreedyDistinctScheduler struct{}

// Name implements Scheduler.
func (GreedyDistinctScheduler) Name() string { return "greedy-distinct" }

// Pick implements Scheduler.
func (GreedyDistinctScheduler) Pick(pending [][]int, rng *xrand.Rand) []int {
	choice := make([]int, len(pending))
	claimed := make(map[int]bool, len(pending))
	order := rng.Perm(len(pending))
	for _, x := range order {
		msgs := pending[x]
		if len(msgs) == 0 {
			choice[x] = -1
			continue
		}
		choice[x] = -2
		for i, dst := range msgs {
			if !claimed[dst] {
				choice[x] = i
				claimed[dst] = true
				break
			}
		}
		if choice[x] == -2 {
			// Every destination already claimed: fall back to random.
			choice[x] = rng.Intn(len(msgs))
		}
	}
	return choice
}
