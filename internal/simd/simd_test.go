package simd

import (
	"math"
	"testing"

	"edn/internal/analytic"
	"edn/internal/xrand"
)

func TestRAEDNConstruction(t *testing.T) {
	sys, err := RAEDN(4, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Network.A != 8 || sys.Network.B != 4 || sys.Network.C != 2 || sys.Network.L != 2 {
		t.Fatalf("network = %v, want EDN(8,4,2,2)", sys.Network)
	}
	if sys.P() != 32 || sys.N() != 128 {
		t.Fatalf("p=%d n=%d, want 32/128", sys.P(), sys.N())
	}
	if _, err := RAEDN(3, 2, 2, 4); err == nil {
		t.Error("expected error for non-power-of-two b")
	}
	if _, err := RAEDN(4, 2, 2, 0); err == nil {
		t.Error("expected error for q=0")
	}
}

// TestMasParMP1Dimensions pins the paper's flagship: RA-EDN(16,4,2,16) is
// 1024 clusters of 16 PEs (16K machine) over EDN(64,16,4,2).
func TestMasParMP1Dimensions(t *testing.T) {
	sys := MasParMP1()
	if sys.P() != 1024 {
		t.Errorf("p = %d, want 1024", sys.P())
	}
	if sys.Q != 16 {
		t.Errorf("q = %d, want 16", sys.Q)
	}
	if sys.N() != 16384 {
		t.Errorf("N = %d, want 16384 (16K PEs)", sys.N())
	}
	if sys.Network.A != 64 || sys.Network.B != 16 || sys.Network.C != 4 || sys.Network.L != 2 {
		t.Errorf("network = %v, want EDN(64,16,4,2)", sys.Network)
	}
	if got := sys.String(); got != "RA-EDN(16,4,2,16)" {
		t.Errorf("String() = %q", got)
	}
}

func TestRoutePermutationValidation(t *testing.T) {
	sys, err := RAEDN(2, 2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RoutePermutation(sys, make([]int, 3), RouteOptions{}); err == nil {
		t.Error("expected length error")
	}
	bad := make([]int, sys.N())
	if _, err := RoutePermutation(sys, bad, RouteOptions{}); err == nil {
		t.Error("expected non-permutation error")
	}
}

// TestRoutePermutationDeliversEverything: every message of the
// permutation is delivered exactly once, and the per-cycle delivery
// counts sum to N.
func TestRoutePermutationDeliversEverything(t *testing.T) {
	sys, err := RAEDN(4, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(31)
	for trial := 0; trial < 5; trial++ {
		perm := rng.Perm(sys.N())
		res, err := RoutePermutation(sys, perm, RouteOptions{Seed: rng.Uint64() | 1})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		for _, d := range res.Delivered {
			total += d
		}
		if total != sys.N() {
			t.Fatalf("delivered %d messages, want %d", total, sys.N())
		}
		if res.Cycles < sys.Q {
			t.Fatalf("%d cycles is below the q=%d lower bound", res.Cycles, sys.Q)
		}
		if res.Cycles != len(res.Delivered) {
			t.Fatalf("cycle count %d != %d recorded cycles", res.Cycles, len(res.Delivered))
		}
	}
}

// TestIdentityPermutationFastPath: the identity over PEs maps every
// message to its own cluster, so each cluster sends q messages to its own
// port: no inter-cluster contention at the outputs, and the run takes
// close to q cycles (internal multipath absorbs the rest).
func TestIdentityPermutationFastPath(t *testing.T) {
	sys, err := RAEDN(4, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	perm := make([]int, sys.N())
	for i := range perm {
		perm[i] = i
	}
	res, err := RoutePermutation(sys, perm, RouteOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Identity over the RA-EDN means each cluster talks only to itself;
	// a cluster can deliver at most one message per cycle, so q is both
	// the lower bound and - when the network blocks nothing extra - the
	// achieved time. Conflicts can add a few cycles; bound it loosely.
	if res.Cycles < sys.Q || res.Cycles > 4*sys.Q {
		t.Fatalf("identity took %d cycles for q=%d", res.Cycles, sys.Q)
	}
}

// TestSection51ModelAgreement compares measured mean permutation time
// with the analytic q/PA(1)+J estimate on a mid-sized system. The model
// inherits the independence optimism of Equation 4, so measurement runs
// somewhat slower; both must agree within 25%.
func TestSection51ModelAgreement(t *testing.T) {
	sys, err := RAEDN(4, 4, 2, 8) // EDN(16,4,4,2), p=64, q=8, N=512
	if err != nil {
		t.Fatal(err)
	}
	model, err := analytic.ExpectedPermutationTime(sys.Network, sys.Q)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := MeasurePermutationTime(sys, 5, RouteOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := acc.Mean() / model.Cycles(); ratio < 0.75 || ratio > 1.25 {
		t.Errorf("measured %.2f cycles vs model %.2f (ratio %.3f)", acc.Mean(), model.Cycles(), ratio)
	}
}

// TestMasParPermutationTimeMeasured runs the paper's flagship system:
// the measured time for a random permutation on RA-EDN(16,4,2,16) should
// land in the mid-30s of cycles (paper's estimate: 34.41).
func TestMasParPermutationTimeMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("16K-PE system run skipped in -short mode")
	}
	sys := MasParMP1()
	acc, err := MeasurePermutationTime(sys, 2, RouteOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if acc.Mean() < 28 || acc.Mean() > 48 {
		t.Errorf("measured %.1f cycles, expected in [28,48] (paper: 34.41)", acc.Mean())
	}
}

// TestSchedulerAblation: offering distinct destination clusters cannot be
// slower than the random schedule on average.
func TestSchedulerAblation(t *testing.T) {
	sys, err := RAEDN(4, 2, 2, 8) // p=32, q=8
	if err != nil {
		t.Fatal(err)
	}
	random, err := MeasurePermutationTime(sys, 6, RouteOptions{Seed: 5, Scheduler: RandomScheduler{}})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := MeasurePermutationTime(sys, 6, RouteOptions{Seed: 5, Scheduler: GreedyDistinctScheduler{}})
	if err != nil {
		t.Fatal(err)
	}
	fifo, err := MeasurePermutationTime(sys, 6, RouteOptions{Seed: 5, Scheduler: FIFOScheduler{}})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Mean() > random.Mean()*1.05 {
		t.Errorf("greedy-distinct %.2f should not lose to random %.2f", greedy.Mean(), random.Mean())
	}
	// FIFO on a random permutation behaves like the random schedule
	// (fixed schedule on a random permutation, as the paper notes).
	if math.Abs(fifo.Mean()-random.Mean()) > random.Mean()*0.3 {
		t.Errorf("fifo %.2f deviates wildly from random %.2f", fifo.Mean(), random.Mean())
	}
}

func TestDeterministicRuns(t *testing.T) {
	sys, err := RAEDN(2, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	perm := xrand.New(1).Perm(sys.N())
	a, err := RoutePermutation(sys, perm, RouteOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RoutePermutation(sys, perm, RouteOptions{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cycles != b.Cycles {
		t.Errorf("same seed diverged: %d vs %d cycles", a.Cycles, b.Cycles)
	}
}

func TestClusterLabeling(t *testing.T) {
	sys, err := RAEDN(4, 2, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	// PE y of cluster x has global label x*q + y.
	if got := sys.Cluster(0); got != 0 {
		t.Errorf("Cluster(0) = %d", got)
	}
	if got := sys.Cluster(sys.Q); got != 1 {
		t.Errorf("Cluster(q) = %d, want 1", got)
	}
	if got := sys.Cluster(sys.N() - 1); got != sys.P()-1 {
		t.Errorf("Cluster(N-1) = %d, want %d", got, sys.P()-1)
	}
}

func TestMeasurePermutationTimeValidation(t *testing.T) {
	sys := MasParMP1()
	if _, err := MeasurePermutationTime(sys, 0, RouteOptions{}); err == nil {
		t.Error("expected trials validation error")
	}
}
