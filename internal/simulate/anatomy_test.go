package simulate

import (
	"reflect"
	"testing"

	"edn/internal/anatomy"
	"edn/internal/closedloop"
	"edn/internal/dilated"
	"edn/internal/dilatedsim"
	"edn/internal/queuesim"
	"edn/internal/topology"
)

func testAnatomyOptions() *anatomy.Options {
	return &anatomy.Options{TopK: 4}
}

// TestAnatomySweepShardInvariant pins the anatomy analogue of the probe
// contract: the collector rides the dedicated sequential observation
// pass, whose seed and cycle budget do not depend on the shard split,
// so the same Options yield the identical report whether the measured
// sweep ran on 1 shard or 3 — and an explained sweep never moves a
// measured number.
func TestAnatomySweepShardInvariant(t *testing.T) {
	cfg, err := topology.New(16, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	qopts := queuesim.Options{Depth: 4}
	run := func(shards int, ao *anatomy.Options) (LatencyResult, *anatomy.Report) {
		var rep *anatomy.Report
		opts := Options{Cycles: 1200, Warmup: 100, Seed: 9, Anatomy: ao,
			OnAnatomy: func(r *anatomy.Report) { rep = r }}
		res, err := SaturationSweep(cfg, []float64{0.8}, nil, qopts, opts, shards)
		if err != nil {
			t.Fatal(err)
		}
		return res[0], rep
	}

	plain1, _ := run(1, nil)
	explained1, rep1 := run(1, testAnatomyOptions())
	_, rep3 := run(3, testAnatomyOptions())

	if !reflect.DeepEqual(plain1, explained1) {
		t.Fatalf("explained sweep changed measured results:\n%+v\nvs\n%+v", plain1, explained1)
	}
	if rep1 == nil || rep3 == nil {
		t.Fatalf("missing anatomy reports: %v vs %v", rep1, rep3)
	}
	if !reflect.DeepEqual(rep1, rep3) {
		t.Fatalf("anatomy reports diverged across shard counts:\n%+v\nvs\n%+v", rep1, rep3)
	}
	if rep1.Delivered.Count == 0 {
		t.Fatalf("empty report: %+v", rep1)
	}
}

func TestAnatomyDilatedSweepShardInvariant(t *testing.T) {
	cfg, err := topology.New(16, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	dcfg, err := dilated.Counterpart(cfg)
	if err != nil {
		t.Fatal(err)
	}
	dopts := dilatedsim.Options{Depth: 4}
	run := func(shards int, ao *anatomy.Options) (LatencyResult, *anatomy.Report) {
		var rep *anatomy.Report
		opts := Options{Cycles: 1200, Warmup: 100, Seed: 9, Anatomy: ao,
			OnAnatomy: func(r *anatomy.Report) { rep = r }}
		res, err := DilatedSaturationSweep(dcfg, []float64{0.8}, nil, dopts, opts, shards)
		if err != nil {
			t.Fatal(err)
		}
		return res[0], rep
	}

	plain1, _ := run(1, nil)
	explained1, rep1 := run(1, testAnatomyOptions())
	_, rep3 := run(3, testAnatomyOptions())

	if !reflect.DeepEqual(plain1, explained1) {
		t.Fatalf("explained dilated sweep changed measured results")
	}
	if rep1 == nil || rep3 == nil || !reflect.DeepEqual(rep1, rep3) {
		t.Fatalf("dilated anatomy reports diverged across shard counts:\n%+v\nvs\n%+v", rep1, rep3)
	}
}

func TestAnatomyClosedLoopShardInvariant(t *testing.T) {
	cfg, err := topology.New(16, 4, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	lo := closedloop.Options{
		Window: 4, Timeout: 16, MaxAttempts: 4,
		Retry: closedloop.RetryBackoff, BackoffBase: 2, BackoffCap: 8,
	}
	qopts := queuesim.Options{Depth: 1, Policy: queuesim.Drop}
	run := func(shards int, ao *anatomy.Options) (ClosedLoopResult, *anatomy.Report) {
		var rep *anatomy.Report
		opts := Options{Cycles: 1000, Warmup: 100, Seed: 9, Anatomy: ao,
			OnAnatomy: func(r *anatomy.Report) { rep = r }}
		res, err := MeasureClosedLoop(cfg, []float64{0.4}, lo, qopts, opts, shards)
		if err != nil {
			t.Fatal(err)
		}
		return res[0], rep
	}

	plain1, _ := run(1, nil)
	explained1, rep1 := run(1, testAnatomyOptions())
	_, rep3 := run(3, testAnatomyOptions())

	if !reflect.DeepEqual(plain1, explained1) {
		t.Fatalf("explained closed-loop sweep changed measured results:\n%+v\nvs\n%+v", plain1, explained1)
	}
	if rep1 == nil || rep3 == nil || !reflect.DeepEqual(rep1, rep3) {
		t.Fatalf("closed-loop anatomy reports diverged across shard counts:\n%+v\nvs\n%+v", rep1, rep3)
	}
	if rep1.Requests == nil || rep1.Requests.Completed == 0 {
		t.Fatalf("empty request split: %+v", rep1)
	}
}
